package declprompt

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestCompilePipelineNamesOffendingStage pins that every validation
// error identifies the stage the user must fix, so a declctl spec-file
// author is never left bisecting a JSON document.
func TestCompilePipelineNamesOffendingStage(t *testing.T) {
	cases := []struct {
		name string
		spec PipelineSpec
		want []string // fragments the error must contain
	}{
		{
			name: "dangling input ref",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "keep", Kind: "filter", Predicate: "p", Input: "nowhere"},
			}},
			want: []string{`"keep"`, `"nowhere"`, "not source or an earlier stage"},
		},
		{
			name: "forward input ref",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "early", Kind: "filter", Predicate: "p", Input: "late"},
				{Name: "late", Kind: "filter", Predicate: "q"},
			}},
			want: []string{`"early"`, `"late"`},
		},
		{
			name: "reserved dunder name",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "__probe", Kind: "filter", Predicate: "p"},
			}},
			want: []string{`"__probe"`, "reserved"},
		},
		{
			name: "duplicate name",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "keep", Kind: "filter", Predicate: "p"},
				{Name: "keep", Kind: "filter", Predicate: "q"},
			}},
			want: []string{"duplicate", `"keep"`},
		},
		{
			name: "selectivity above one",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "keep", Kind: "filter", Predicate: "p", Selectivity: 1.5},
			}},
			want: []string{`"keep"`, "selectivity", "outside (0, 1]"},
		},
		{
			name: "selectivity NaN",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "keep", Kind: "filter", Predicate: "p", Selectivity: math.NaN()},
			}},
			want: []string{`"keep"`, "selectivity"},
		},
		{
			name: "selectivity on non-filter",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "tally", Kind: "count", Predicate: "p", Selectivity: 0.4},
			}},
			want: []string{`"tally"`, "only applies to filter"},
		},
		{
			name: "unknown kind",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "mystery", Kind: "meander"},
			}},
			want: []string{`"mystery"`, `unknown kind "meander"`},
		},
		{
			name: "forward side ref",
			spec: PipelineSpec{Stages: []PipelineStage{
				{Name: "match", Kind: "join", Field: "name", Side: "pool"},
				{Name: "pool", Kind: "filter", Predicate: "p"},
			}},
			want: []string{`"match"`, `"pool"`, "not earlier"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompilePipeline(tc.spec)
			if err == nil {
				t.Fatal("CompilePipeline accepted an invalid spec")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Fatalf("error %q lacks %q", err, frag)
				}
			}
		})
	}
}

// FuzzCompilePipelineSpec feeds arbitrary JSON through the same
// unmarshal-then-compile path declctl uses for spec files. Invariants:
// CompilePipeline never panics, a nil error always comes with a usable
// pipeline, and compilation is deterministic — the same bytes either
// compile twice or fail twice with the same message.
func FuzzCompilePipelineSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"stages":[]}`,
		`{"stages":[{"name":"keep","kind":"filter","predicate":"the kind is tool"}]}`,
		`{"stages":[{"name":"__x","kind":"filter","predicate":"p"}]}`,
		`{"stages":[{"name":"keep","kind":"filter","predicate":"p","input":"ghost"}]}`,
		`{"stages":[{"name":"keep","kind":"filter","predicate":"p","selectivity":2.5}]}`,
		`{"stages":[{"name":"a","kind":"filter","predicate":"p"},{"name":"a","kind":"count","predicate":"p"}]}`,
		`{"stages":[{"name":"m","kind":"join","field":"name","side":"pool","input":"source"}]}`,
		`{"stages":[{"name":"s","kind":"sort"},{"name":"source","kind":"max","criterion":"c"}]}`,
		`{"stages":[{"name":"i","kind":"impute","target_field":"city","side":"train","strategy":"hybrid"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var spec PipelineSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return // not a spec; nothing for Compile to validate
		}
		p, err := CompilePipeline(spec)
		if err == nil && p == nil {
			t.Fatal("CompilePipeline returned nil pipeline with nil error")
		}
		p2, err2 := CompilePipeline(spec)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("compile nondeterministic: first err %v, second err %v", err, err2)
		}
		if err != nil {
			if err.Error() != err2.Error() {
				t.Fatalf("error message nondeterministic: %q vs %q", err, err2)
			}
			return
		}
		if p2 == nil {
			t.Fatal("second compile returned nil pipeline with nil error")
		}
	})
}

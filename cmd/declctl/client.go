package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/pipeline"
)

// demoSpec is the built-in pipeline used when -spec is empty: filter the
// flavors dataset down to chocolatey ones and rank them.
func demoSpec() pipeline.Spec {
	return pipeline.Spec{
		Source: pipeline.SourceSpec{Dataset: "flavors"},
		Stages: []pipeline.StageSpec{
			{Name: "choc", Kind: pipeline.KindFilter, Field: "name",
				Predicate: "it is a chocolatey flavor", Selectivity: 0.4},
			{Name: "rank", Kind: pipeline.KindSort, Field: "name",
				Criterion: "how chocolatey they are", Strategy: "rating"},
		},
	}
}

// loadSpec reads a pipeline Spec from path, or returns the built-in demo
// spec when path is empty.
func loadSpec(path string) (pipeline.Spec, error) {
	if path == "" {
		return demoSpec(), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return pipeline.Spec{}, err
	}
	var spec pipeline.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return pipeline.Spec{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return spec, nil
}

// clientDo runs one JSON round trip against a declserver endpoint. A nil
// body sends no payload; out, when non-nil, receives the decoded 2xx
// response. Non-2xx responses are surfaced as errors carrying the server's
// error message.
func clientDo(method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error struct {
				Message string `json:"message"`
				Type    string `json:"type"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error.Message != "" {
			return fmt.Errorf("%s: %s (%s)", resp.Status, e.Error.Message, e.Error.Type)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// printJSON pretty-prints a wire object to stdout.
func printJSON(v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(raw))
	return nil
}

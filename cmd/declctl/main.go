// Command declctl runs the paper's experiments and the repository's
// ablations from the command line, printing each table in the paper's
// layout.
//
// Usage:
//
//	declctl table1                 # Table 1: sorting 20 flavours, 3 strategies
//	declctl table2                 # Table 2: sorting 100 words, sort-then-insert
//	declctl table3 [-pairs 5742]   # Table 3: entity resolution with transitivity
//	declctl table4                 # Table 4: imputation, hybrid LLM / k-NN
//	declctl ablate-batch           # A1: grouping batch-size sweep
//	declctl ablate-quality         # A2: quality-control policies
//	declctl ablate-planner         # A3: automatic strategy selection
//	declctl ablate-repair          # A4: comparison-graph repair
//	declctl ablate-filter          # A5: adaptive filter policies
//	declctl all                    # everything above
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/resil"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/workflow"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	// Sub-flags parsed from the remaining arguments.
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	pairs := sub.Int("pairs", 5742, "labelled pair count for table3")
	trials := sub.Int("trials", 3, "trial count for table2")
	words := sub.Int("words", 100, "words per trial for table2")
	items := sub.Int("items", 60, "workload width for exec-layer")
	repeats := sub.Int("repeats", 3, "workload repeats for exec-layer")
	batch := sub.Int("batch", 8, "unit tasks per envelope for exec-layer")
	ixN := sub.Int("n", 10000, "indexed records for index-bench")
	ixK := sub.Int("k", 10, "neighbours per query for index-bench")
	ixQueries := sub.Int("queries", 200, "timed queries for index-bench")
	ixPartitions := sub.Int("partitions", 0, "ANN partitions for index-bench (0 = √N)")
	ixProbes := sub.Int("probes", 0, "ANN probes per query for index-bench (0 = partitions/4)")
	ixQuantize := sub.Bool("quantize", false, "also measure the int8-quantized tier for index-bench")
	ixRerank := sub.Int("rerank", 0, "quantized shortlist multiplier for index-bench (0 = default)")
	ixSeed := sub.Int64("seed", 7, "synthetic-corpus seed for index-bench")
	ixFlat := sub.Bool("flat", false, "skip the ANN modes for index-bench (full-store scans only)")
	specPath := sub.String("spec", "", "JSON pipeline spec file for pipeline (empty = built-in demo)")
	plModel := sub.String("model", "sim-gpt-3.5-turbo", "model name for pipeline")
	plNaive := sub.Bool("naive", false, "run the pipeline unoptimized with isolated per-stage engines")
	plProbe := sub.Int("probe", 0, "sample size for measured filter selectivity in pipeline (0 = trust spec hints)")
	plMaterialized := sub.Bool("materialized", false, "disable record streaming between pipeline stages")
	plChunk := sub.Int("chunk", 0, "records per streaming micro-batch for pipeline (0 = max(batch, 8); forces a fixed width)")
	plAdaptive := sub.Bool("adaptive", false, "enable the adaptive runtime for pipeline: self-tuned chunk widths, side-input overlap, mid-run filter re-ordering")
	plChunkMin := sub.Int("chunk-min", 0, "adaptive chunk width floor for pipeline (0 = 1)")
	plChunkMax := sub.Int("chunk-max", 0, "adaptive chunk width ceiling for pipeline (0 = 64)")
	plFaults := sub.String("faults", "",
		"inject deterministic upstream faults for pipeline: key=val,... over seed, transient, timeout, ratelimit, permanent, malformed, wrong-section, burst-every, burst-len (empty = none)")
	plRetries := sub.Int("retries", 3, "max attempts per upstream call for pipeline when -faults is set (1 = no retries)")
	plOnRecordError := sub.String("on-record-error", "",
		"degraded-mode record policy for pipeline: fail (default), skip, or quarantine")
	plRecords := sub.Int("records", 24, "base source records for pipeline-study")
	plDup := sub.Float64("dup", 0.4, "duplicated fraction for pipeline-study")
	benchIters := sub.Int("iters", 3, "iterations per bench configuration")
	stateDir := sub.String("state-dir", "",
		"persistent-state directory: bench and index-bench warm-load saved indexes from it (building and saving on the first run); cache-compact rewrites its cache log")
	scName := sub.String("name", "", "scenario ID to run for scenario (see -list)")
	scList := sub.Bool("list", false, "list the pre-built scenarios for scenario")
	srvURL := sub.String("server", "http://localhost:8080", "declserver base URL for submit/status/report")
	srvTenant := sub.String("tenant", "default", "tenant ID for submit/report")
	srvAsync := sub.Bool("async", false, "submit without waiting; poll with declctl status -job ID")
	srvOptimize := sub.Bool("optimize", false, "ask the server to optimize the spec before running")
	srvJob := sub.String("job", "", "job ID for status")
	srvCancel := sub.Bool("cancel", false, "cancel the job named by -job")
	// For scenario and index-bench, -json is a switch (emit the result as
	// JSON on stdout); everywhere else it is the bench baseline's output
	// path. One FlagSet serves every command, so the flag registers per
	// command.
	var benchJSON *string
	var switchJSON *bool
	if cmd == "scenario" || cmd == "index-bench" {
		switchJSON = sub.Bool("json", false, "emit the result as JSON")
		benchJSON = new(string)
	} else {
		benchJSON = sub.String("json", "", "write machine-readable bench results to this file (e.g. BENCH_PR5.json)")
		switchJSON = new(bool)
	}
	sub.Parse(flag.Args()[1:])

	ctx := context.Background()
	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "declctl: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}

	table1 := func() error {
		rows, err := experiments.Table1(ctx, experiments.DefaultTable1Config())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		return nil
	}
	table2 := func() error {
		cfg := experiments.DefaultTable2Config()
		cfg.Trials = *trials
		cfg.Words = *words
		rows, err := experiments.Table2(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(rows))
		return nil
	}
	table3 := func() error {
		cfg := experiments.DefaultTable3Config()
		cfg.Citations.Pairs = *pairs
		if *pairs < 2000 {
			cfg.Citations.Entities = *pairs / 4
		}
		rows, err := experiments.Table3(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		return nil
	}
	table4 := func() error {
		rows, err := experiments.Table4(ctx, experiments.DefaultTable4Config())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return nil
	}
	ablateBatch := func() error {
		rows, err := experiments.AblationBatchSize(ctx, "sim-gpt-3.5-turbo", 60, 1, []int{4, 8, 12, 20})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationBatchSize(rows))
		return nil
	}
	ablateQuality := func() error {
		rows, err := experiments.AblationQuality(ctx, "sim-cheap", 5)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationQuality(rows))
		return nil
	}
	ablatePlanner := func() error {
		rows, err := experiments.AblationPlanner(ctx, "sim-gpt-3.5-turbo")
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationPlanner(rows))
		return nil
	}
	ablateRepair := func() error {
		rows, err := experiments.AblationRepair(ctx, 12)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationRepair(rows))
		return nil
	}
	ablateBatchCmp := func() error {
		rows, err := experiments.AblationCompareBatch(ctx, "sim-gpt-3.5-turbo", []int{1, 3, 5, 10, 19})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationCompareBatch(rows))
		return nil
	}
	ablateEvidence := func() error {
		rows, err := experiments.AblationEvidence(ctx, "sim-gpt-3.5-turbo",
			dataset.CitationConfig{Entities: 400, Pairs: 1600, PositiveFrac: 0.24, Seed: 7})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationEvidence(rows))
		return nil
	}
	ablateCascade := func() error {
		rows, err := experiments.AblationCascade(ctx, "sim-cheap", "sim-gpt-4")
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationCascade(rows))
		return nil
	}
	ablateTemplates := func() error {
		rows, err := experiments.AblationTemplates(ctx, []string{"sim-gpt-3.5-turbo", "sim-claude"})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationTemplates(rows))
		return nil
	}
	execLayer := func() error {
		cfg := experiments.DefaultExecLayerConfig()
		cfg.Items = *items
		cfg.Repeats = *repeats
		cfg.Batch = *batch
		rows, err := experiments.ExecLayerStudy(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExecLayerStudy(rows))
		return nil
	}
	ablateFilter := func() error {
		rows, err := experiments.AblationFilter(ctx, "sim-cheap", 7)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblationFilter(rows))
		return nil
	}
	indexBench := func() error {
		rows, err := experiments.IndexBench(experiments.IndexBenchConfig{
			N: *ixN, K: *ixK, Queries: *ixQueries,
			Partitions: *ixPartitions, Probes: *ixProbes,
			Quantize: *ixQuantize, RerankFactor: *ixRerank,
			Seed: *ixSeed, FlatOnly: *ixFlat, StateDir: *stateDir,
		})
		if err != nil {
			return err
		}
		if *switchJSON {
			raw, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			return nil
		}
		fmt.Print(experiments.FormatIndexBench(rows))
		return nil
	}

	runPipeline := func() error {
		spec, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		tables, err := spec.Source.Tables()
		if err != nil {
			return err
		}
		// Chaos stack, bottom-up: sim oracle → fault injector → retry
		// policy → call counter. The policy sits below the counter (and
		// the shared cache), so retries stay invisible to billing and the
		// cache only ever sees healed answers.
		base := llm.Model(sim.NewNamed(*plModel))
		var faulty *llm.FaultyModel
		var rm *resil.Model
		if *plFaults != "" {
			plan, err := llm.ParseFaultPlan(*plFaults)
			if err != nil {
				return err
			}
			faulty = llm.WithFaults(base, plan)
			rm = resil.Wrap(faulty, resil.Policy{
				MaxAttempts: *plRetries,
				BaseBackoff: time.Millisecond,
			})
			base = rm
		}
		counting := llm.NewCounting(base)
		execCfg := pipeline.ExecConfig{
			Model:         counting,
			Batch:         *batch,
			Parallelism:   16,
			Chunk:         *plChunk,
			Adaptive:      *plAdaptive,
			ChunkMin:      *plChunkMin,
			ChunkMax:      *plChunkMax,
			Materialized:  *plMaterialized || *plNaive,
			Isolated:      *plNaive,
			OnRecordError: *plOnRecordError,
			// Persistent layer and ledger so probe work is re-served from
			// cache by the run and reported as the __probe row.
			Exec:        workflow.NewExecLayer(),
			Attribution: workflow.NewAttribution(),
		}
		if !*plNaive {
			var (
				optimized pipeline.Spec
				rewrites  []string
			)
			if *plProbe > 0 {
				optimized, rewrites, err = pipeline.OptimizeProbed(ctx, spec, execCfg, tables,
					pipeline.ProbeOptions{Sample: *plProbe})
			} else {
				optimized, rewrites, err = pipeline.Optimize(spec)
			}
			if err != nil {
				return err
			}
			for _, rw := range rewrites {
				fmt.Printf("rewrite: %s\n", rw)
			}
			spec = optimized
		}
		p, err := pipeline.Compile(spec)
		if err != nil {
			return err
		}
		res, err := p.Run(ctx, execCfg, tables)
		if err != nil {
			return err
		}
		fmt.Print(pipeline.FormatResult(res))
		total := counting.Total()
		fmt.Printf("upstream: %d calls, %d tokens\n", total.Calls, total.Total())
		if res.Skipped > 0 || res.Quarantined > 0 {
			fmt.Printf("degraded: %d skipped, %d quarantined\n", res.Skipped, res.Quarantined)
		}
		if faulty != nil {
			fs, rs := faulty.Stats(), rm.Stats()
			fmt.Printf("resilience: %d faults injected, %d attempts, %d retries, %d breaker opens\n",
				fs.Injected(), rs.Attempts, rs.Retries, rs.BreakerOpens)
		}
		return nil
	}
	pipelineStudy := func() error {
		cfg := experiments.DefaultPipelineStudyConfig()
		cfg.Records = *plRecords
		cfg.DupFrac = *plDup
		cfg.Batch = *batch
		res, err := experiments.PipelineStudy(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPipelineStudy(res))
		return nil
	}
	runScenario := func() error {
		if *scList {
			for _, sc := range scenario.List() {
				fmt.Printf("%-24s %s\n  %s\n", sc.ID, sc.Name, sc.Description)
			}
			return nil
		}
		if *scName == "" {
			return fmt.Errorf("scenario needs -name <id> (or -list)")
		}
		sc := scenario.ByID(*scName)
		if sc == nil {
			return fmt.Errorf("unknown scenario %q (try -list)", *scName)
		}
		res, err := scenario.New(scenario.Options{}).Run(ctx, sc)
		if err != nil {
			return err
		}
		if *switchJSON {
			raw, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(scenario.Format(res))
		}
		if !res.Passed {
			return fmt.Errorf("scenario %s failed its checkpoints", sc.ID)
		}
		return nil
	}
	scenarioStudy := func() error {
		res, err := experiments.ScenarioStudy(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScenarioStudy(res))
		if !res.AllPassed {
			return fmt.Errorf("scenario study: not every checkpoint passed")
		}
		return nil
	}
	bench := func() error {
		report, err := experiments.PipelineBench(ctx, *benchIters, *stateDir)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatBenchReport(report))
		if *benchJSON != "" {
			if err := experiments.WriteBenchReport(report, *benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
		return nil
	}

	cacheCompact := func() error {
		if *stateDir == "" {
			return fmt.Errorf("cache-compact needs -state-dir <dir> (the directory holding %s)", workflow.CacheLogName)
		}
		path := filepath.Join(*stateDir, workflow.CacheLogName)
		if _, err := os.Stat(path); err != nil {
			return fmt.Errorf("no cache log at %s: %w", path, err)
		}
		lg, err := workflow.OpenCacheLog(path)
		if err != nil {
			return err
		}
		defer lg.Close()
		cache := workflow.NewCache(0)
		rs, err := lg.Replay(cache)
		if err != nil {
			return err
		}
		if rs.Recovered {
			fmt.Printf("recovered torn tail: dropped %d trailing bytes\n", rs.DroppedBytes)
		}
		live, _ := cache.Stats()
		before := lg.Stats()
		ratio := 1.0
		if before.Records > 0 {
			ratio = float64(live) / float64(before.Records)
		}
		fmt.Printf("before: %d records (%d live, %.3f live ratio), %d bytes\n",
			before.Records, live, ratio, before.Bytes)
		if err := lg.Compact(cache); err != nil {
			return err
		}
		after := lg.Stats()
		fmt.Printf("after:  %d records, %d bytes (reclaimed %d)\n",
			after.Records, after.Bytes, before.Bytes-after.Bytes)
		return nil
	}

	serverSubmit := func() error {
		spec, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		var st server.JobStatus
		req := server.SubmitRequest{Tenant: *srvTenant, Spec: spec, Async: *srvAsync, Optimize: *srvOptimize}
		if err := clientDo("POST", *srvURL+"/v1/pipelines", req, &st); err != nil {
			return err
		}
		return printJSON(st)
	}
	serverStatus := func() error {
		if *srvJob == "" {
			return fmt.Errorf("status needs -job ID")
		}
		method := "GET"
		if *srvCancel {
			method = "DELETE"
		}
		var st server.JobStatus
		if err := clientDo(method, *srvURL+"/v1/jobs/"+*srvJob, nil, &st); err != nil {
			return err
		}
		return printJSON(st)
	}
	serverReport := func() error {
		var rep server.TenantReport
		if err := clientDo("GET", *srvURL+"/v1/tenants/"+*srvTenant+"/report", nil, &rep); err != nil {
			return err
		}
		return printJSON(rep)
	}

	switch cmd {
	case "table1":
		run("Table 1: sorting 20 flavours", table1)
	case "table2":
		run("Table 2: sorting 100 words (sort then insert)", table2)
	case "table3":
		run(fmt.Sprintf("Table 3: entity resolution (%d pairs)", *pairs), table3)
	case "table4":
		run("Table 4: missing-value imputation", table4)
	case "ablate-batch":
		run("Ablation A1: grouping batch size", ablateBatch)
	case "ablate-quality":
		run("Ablation A2: quality control", ablateQuality)
	case "ablate-planner":
		run("Ablation A3: planner", ablatePlanner)
	case "ablate-repair":
		run("Ablation A4: consistency repair", ablateRepair)
	case "ablate-filter":
		run("Ablation A5: filter policies", ablateFilter)
	case "ablate-comparebatch":
		run("Ablation A6: comparisons per prompt", ablateBatchCmp)
	case "ablate-evidence":
		run("Ablation A7: evidence-based flipping", ablateEvidence)
	case "ablate-cascade":
		run("Ablation A8: model cascade", ablateCascade)
	case "ablate-templates":
		run("Ablation A9: template brittleness", ablateTemplates)
	case "exec-layer":
		run("Execution layer: shared cache + coalescing + batching", execLayer)
	case "index-bench":
		// JSON output stays machine-readable: no header or timing wrapper.
		if *switchJSON {
			if err := indexBench(); err != nil {
				fmt.Fprintf(os.Stderr, "declctl: index-bench: %v\n", err)
				os.Exit(1)
			}
		} else {
			run(fmt.Sprintf("Vector index: exact / ANN / quantized (%d records)", *ixN), indexBench)
		}
	case "pipeline":
		run("Pipeline: optimized operator DAG", runPipeline)
	case "pipeline-study":
		run("Pipeline study: naive sequential vs optimized DAG", pipelineStudy)
	case "scenario":
		// JSON output stays machine-readable: no header or timing wrapper.
		if *switchJSON {
			if err := runScenario(); err != nil {
				fmt.Fprintf(os.Stderr, "declctl: scenario: %v\n", err)
				os.Exit(1)
			}
		} else {
			run("Scenario harness: standing queries under multi-turn traffic", runScenario)
		}
	case "scenario-study":
		run("Scenario study: all pre-built scenarios on the sim engine", scenarioStudy)
	case "bench":
		run(fmt.Sprintf("Pipeline bench: %d iterations per configuration", *benchIters), bench)
	case "submit":
		// JSON output stays machine-readable: no header or timing wrapper.
		if err := serverSubmit(); err != nil {
			fmt.Fprintf(os.Stderr, "declctl: submit: %v\n", err)
			os.Exit(1)
		}
	case "status":
		if err := serverStatus(); err != nil {
			fmt.Fprintf(os.Stderr, "declctl: status: %v\n", err)
			os.Exit(1)
		}
	case "report":
		if err := serverReport(); err != nil {
			fmt.Fprintf(os.Stderr, "declctl: report: %v\n", err)
			os.Exit(1)
		}
	case "cache-compact":
		run("Cache log: replay, stats, compaction", cacheCompact)
	case "all":
		run("Table 1: sorting 20 flavours", table1)
		run("Table 2: sorting 100 words (sort then insert)", table2)
		run(fmt.Sprintf("Table 3: entity resolution (%d pairs)", *pairs), table3)
		run("Table 4: missing-value imputation", table4)
		run("Ablation A1: grouping batch size", ablateBatch)
		run("Ablation A2: quality control", ablateQuality)
		run("Ablation A3: planner", ablatePlanner)
		run("Ablation A4: consistency repair", ablateRepair)
		run("Ablation A5: filter policies", ablateFilter)
		run("Ablation A6: comparisons per prompt", ablateBatchCmp)
		run("Ablation A7: evidence-based flipping", ablateEvidence)
		run("Ablation A8: model cascade", ablateCascade)
		run("Ablation A9: template brittleness", ablateTemplates)
		run("Execution layer: shared cache + coalescing + batching", execLayer)
		run("Pipeline study: naive sequential vs optimized DAG", pipelineStudy)
		run("Scenario study: all pre-built scenarios on the sim engine", scenarioStudy)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `declctl — regenerate the paper's tables and the repo's ablations

usage: declctl <command> [flags]

commands:
  table1          Table 1: sorting 20 flavours via 3 strategies
  table2          Table 2: sorting 100 words, sort-then-insert hybrid
  table3          Table 3: entity resolution with transitivity (-pairs N)
  table4          Table 4: imputation with hybrid LLM / k-NN strategies
  ablate-batch    A1: grouping batch-size sweep
  ablate-quality  A2: quality-control policies
  ablate-planner  A3: automatic strategy selection
  ablate-repair   A4: comparison-graph repair
  ablate-filter   A5: adaptive filter policies
  ablate-comparebatch  A6: comparisons-per-prompt sweep
  ablate-evidence      A7: evidence-based edge flipping
  ablate-cascade       A8: cheap->strong model cascade
  ablate-templates     A9: comparison-template brittleness
  exec-layer      shared cache + coalescing + batching on a repeated
                  workload (-items N -repeats N -batch K)
  index-bench     vector retrieval: queries/sec, recall, and bytes/record
                  for exact, ANN, and int8-quantized search over one
                  shared synthetic corpus (-n N -k K -queries Q
                  -partitions P -probes R -quantize -rerank F -seed S
                  -flat skips ANN, -json emits machine-readable rows,
                  -state-dir D persists the index and warm-loads it on
                  repeat runs)
  pipeline        run a declarative operator DAG from a JSON spec with the
                  optimizer, record streaming, shared engine, and per-stage
                  attribution (-spec file.json -model M -batch K -naive
                  -probe K measures hintless filter selectivity on a sample,
                  -materialized disables streaming, -chunk N pins the
                  micro-batch width, -adaptive enables the self-tuning
                  runtime with -chunk-min/-chunk-max bounds,
                  -faults key=val,... injects deterministic upstream faults
                  healed by -retries N attempts, -on-record-error
                  fail|skip|quarantine picks the degraded-mode policy)
  pipeline-study  naive sequential operators vs the optimized pipeline —
                  materialized, streaming+probed, and adaptive — plus the
                  side-input overlap scenario (-records N -dup F -batch K)
  scenario        run one checkpointed multi-turn scenario against the
                  deterministic sim engine: standing queries with mid-run
                  ingestion, cache replays, burst load, latency shifts
                  (-name <id> to run, -list to enumerate, -json for the
                  machine-readable result)
  scenario-study  run every pre-built scenario and print the per-scenario
                  call/token/cache counters with pass verdicts
  bench           time the pipeline benchmark configurations and optionally
                  write a machine-readable perf baseline
                  (-iters N -json BENCH_PR5.json; -state-dir D warms the
                  index benchmarks from persisted state)
  cache-compact   replay a persistent cache log, print its record/live/byte
                  stats, and rewrite it down to live entries only
                  (-state-dir D names the directory holding cache.log)
  submit          submit a pipeline Spec to a running declserver and print
                  the job status (-server URL -tenant T -spec file.json,
                  -async returns immediately, -optimize rewrites first)
  status          poll a server job by ID, or abort it with -cancel
                  (-server URL -job ID)
  report          one tenant's server report: spend, job counters, latency
                  percentiles, cache-hit share (-server URL -tenant T)
  all             run everything
`)
}

// Command declserver runs the multi-tenant pipeline service: a long-running
// HTTP server that accepts declarative pipeline Specs from many tenants and
// executes them concurrently on one shared execution substrate — one
// response cache, one coalescer, one embedding-index registry, one optional
// persistent state directory — so every tenant benefits from every other
// tenant's warm state while budgets and rate limits stay strictly per
// tenant.
//
// Usage:
//
//	declserver [-addr :8080] [-model sim-gpt-3.5-turbo] [-state-dir DIR]
//	           [-max-concurrent 4] [-max-queue 16]
//	           [-tenant-rate 100] [-tenant-burst 32]
//	           [-batch 0] [-parallelism 0] [-chunk 0] [-adaptive]
//	           [-drain-timeout 30s]
//	           [-retries 3] [-breaker-threshold 5] [-breaker-cooldown 10s]
//	           [-tenant-retry-budget 0] [-on-record-error quarantine]
//	           [-job-retention 1h] [-max-jobs 4096]
//	           [-faults transient=0.05,burst-every=100,burst-len=5]
//
// The resilience flags wrap the upstream model in a retry/backoff policy
// with a circuit breaker (resil.Policy): while the breaker is open,
// submissions are refused with 503 and a Retry-After header. -faults
// injects deterministic upstream faults below the policy — the chaos
// configuration the CI smoke test drives. -job-retention/-max-jobs bound
// how long finished jobs stay pollable. See docs/RESILIENCE.md.
//
// Endpoints: POST /v1/pipelines, GET|DELETE /v1/jobs/{id},
// GET /v1/tenants/{id}/report, GET /v1/stats, GET /healthz. Submit jobs
// from the command line with declctl submit/status/report. On SIGINT or
// SIGTERM the server stops accepting work, waits (bounded by
// -drain-timeout) for running jobs, and flushes the cache log and index
// state before exiting. See docs/SERVER.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/resil"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "sim-gpt-3.5-turbo", "model name answering unit tasks (simulated)")
	stateDir := flag.String("state-dir", "", "persistent-state directory: cache log + index files (empty = in-memory only)")
	maxConcurrent := flag.Int("max-concurrent", 4, "jobs running at once")
	maxQueue := flag.Int("max-queue", 16, "jobs waiting for a slot before 503 (negative = no queue)")
	tenantRate := flag.Float64("tenant-rate", 100, "default per-tenant submissions/second")
	tenantBurst := flag.Int("tenant-burst", 32, "default per-tenant submission burst")
	batch := flag.Int("batch", 0, "unit tasks per envelope (0 = no batching; batching blurs per-tenant hit shares)")
	parallelism := flag.Int("parallelism", 0, "per-job operator parallelism (0 = default)")
	chunk := flag.Int("chunk", 0, "records per streaming micro-batch (0 = default)")
	adaptive := flag.Bool("adaptive", false, "enable the adaptive pipeline runtime")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	faults := flag.String("faults", "",
		"inject deterministic upstream faults: key=val,... over seed, transient, timeout, ratelimit, permanent, malformed, wrong-section, burst-every, burst-len (empty = none)")
	retries := flag.Int("retries", 3, "max attempts per upstream call (1 = no retries)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive upstream failures before the circuit opens (0 = no breaker)")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "how long an open breaker refuses work before probing")
	retryBudget := flag.Int("tenant-retry-budget", 0, "default per-tenant retry budget (0 = unlimited, negative = none)")
	onRecordError := flag.String("on-record-error", "", "degraded-mode record policy: fail (default), skip, or quarantine")
	jobRetention := flag.Duration("job-retention", 0, "how long finished jobs stay pollable (0 = keep forever unless -max-jobs is set)")
	maxJobs := flag.Int("max-jobs", 0, "finished jobs retained before the oldest are dropped (0 = uncapped unless -job-retention is set)")
	flag.Parse()

	var policy *resil.Policy
	if *retries > 1 || *breakerThreshold > 0 || *faults != "" {
		policy = &resil.Policy{
			MaxAttempts:      *retries,
			BaseBackoff:      50 * time.Millisecond,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		}
	}
	base := llm.Model(sim.NewNamed(*model))
	if *faults != "" {
		plan, err := llm.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "declserver: %v\n", err)
			os.Exit(2)
		}
		base = llm.WithFaults(base, plan)
	}

	srv := server.New(server.Config{
		Model:             base,
		StateDir:          *stateDir,
		Batch:             *batch,
		Parallelism:       *parallelism,
		Chunk:             *chunk,
		Adaptive:          *adaptive,
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantRetryBudget: *retryBudget,
		Resilience:        policy,
		OnRecordError:     *onRecordError,
		JobRetention:      *jobRetention,
		MaxJobs:           *maxJobs,
	})
	if err := srv.StateError(); err != nil {
		fmt.Fprintf(os.Stderr, "declserver: %v (continuing stateless)\n", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("declserver: listening on %s (model %s", *addr, *model)
		if *stateDir != "" {
			fmt.Printf(", state %s", *stateDir)
		}
		fmt.Println(")")
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("declserver: %v, draining (up to %s)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "declserver: serve: %v\n", err)
		os.Exit(1)
	}

	// Stop the listener first so no submission lands after the drain
	// decision, then drain the job population and flush state.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "declserver: shutdown: %v\n", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "declserver: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("declserver: drained, state flushed")
}

// Command datagen emits the synthetic benchmark datasets as JSON for
// inspection or external use.
//
// Usage:
//
//	datagen flavors                      # the 20-flavour benchmark
//	datagen words [-n 100] [-seed 1]     # a random word sample
//	datagen citations [-pairs 1000]      # the citation pair corpus
//	datagen restaurants [-train 300 -test 86]
//	datagen buy [-train 300 -test 65]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := sub.Int("n", 100, "word sample size")
	seed := sub.Int64("seed", 1, "generation seed")
	pairs := sub.Int("pairs", 1000, "citation pair count")
	train := sub.Int("train", 300, "training records")
	test := sub.Int("test", 86, "test records")
	sub.Parse(flag.Args()[1:])

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	var v any
	switch cmd {
	case "flavors":
		v = struct {
			Flavors     []dataset.Flavor `json:"flavors"`
			GroundTruth []string         `json:"ground_truth_most_to_least"`
		}{dataset.Flavors(), dataset.FlavorGroundTruth()}
	case "words":
		v = dataset.RandomWords(*n, *seed)
	case "citations":
		cfg := dataset.DefaultCitationConfig()
		cfg.Pairs = *pairs
		cfg.Seed = *seed
		if *pairs < 2000 {
			cfg.Entities = *pairs / 4
		}
		v = dataset.GenerateCitations(cfg)
	case "restaurants":
		v = dataset.GenerateRestaurants(*train, *test, *seed)
	case "buy":
		v = dataset.GenerateBuy(*train, *test, *seed)
	default:
		usage()
		os.Exit(2)
	}
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `datagen — emit the synthetic benchmark datasets as JSON

usage: datagen <flavors|words|citations|restaurants|buy> [flags]
`)
}

// Command llmserver serves the built-in simulated models over an
// OpenAI-compatible HTTP API (/v1/chat/completions, /v1/embeddings,
// /v1/models), so the toolkit — or any OpenAI-style client — can run
// against it as if it were a vendor endpoint.
//
// Usage:
//
//	llmserver [-addr :8080]
//
// All five stock profiles are served: sim-gpt-3.5-turbo, sim-gpt-4,
// sim-claude, sim-claude-2, sim-cheap.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/llm/httpapi"
	"repro/internal/llm/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	registry := llm.NewRegistry()
	for _, name := range []string{
		"sim-gpt-3.5-turbo", "sim-gpt-4", "sim-claude", "sim-claude-2", "sim-cheap",
	} {
		registry.Register(sim.NewNamed(name))
	}
	server := httpapi.NewServer(registry, embed.Default())

	log.Printf("llmserver: serving %v on %s", registry.Names(), *addr)
	if err := http.ListenAndServe(*addr, server.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "llmserver: %v\n", err)
		os.Exit(1)
	}
}

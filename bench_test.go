// Benchmarks regenerating every table of the paper's evaluation plus the
// repository's ablations (A1–A9, see README.md). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment end to end through
// the declarative engine and the simulated models, reports the headline
// metric(s) via b.ReportMetric, and — under -v or on first iteration with
// the table flag — the paper-style table is printed by cmd/declctl
// instead. Table 3's full 5742-pair configuration is heavy; the benchmark
// uses a structurally identical reduced corpus and `declctl table3` runs
// the full size.
package declprompt

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

// BenchmarkTable1 regenerates Table 1: sorting 20 flavours under three
// prompting strategies. Reported metrics are the Kendall Tau-b of each
// strategy.
func BenchmarkTable1(b *testing.B) {
	ctx := context.Background()
	cfg := experiments.DefaultTable1Config()
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].KendallTau, "tau/one-prompt")
	b.ReportMetric(rows[1].KendallTau, "tau/rating")
	b.ReportMetric(rows[2].KendallTau, "tau/pairwise")
	b.ReportMetric(float64(rows[2].PromptTokens), "prompt-tokens/pairwise")
}

// BenchmarkTable2 regenerates Table 2: sorting 100 words alphabetically,
// one-prompt baseline versus the sort-then-insert hybrid, 3 trials.
func BenchmarkTable2(b *testing.B) {
	ctx := context.Background()
	cfg := experiments.DefaultTable2Config()
	var rows []experiments.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table2(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	baseMean, hybridMean, missing := 0.0, 0.0, 0
	for i := 0; i < len(rows); i += 2 {
		baseMean += rows[i].Score
		hybridMean += rows[i+1].Score
		missing += rows[i].Missing
	}
	trials := float64(len(rows) / 2)
	b.ReportMetric(baseMean/trials, "tau/one-prompt")
	b.ReportMetric(hybridMean/trials, "tau/sort-then-insert")
	b.ReportMetric(float64(missing)/trials, "missing/one-prompt")
}

// BenchmarkTable3 regenerates Table 3 (entity resolution with
// transitivity over k-NN-augmented comparisons) on a reduced corpus with
// the same duplicate structure; `declctl table3` runs the paper-size
// 5742-pair slice.
func BenchmarkTable3(b *testing.B) {
	ctx := context.Background()
	cfg := experiments.DefaultTable3Config()
	cfg.Citations = dataset.CitationConfig{Entities: 250, Pairs: 900, PositiveFrac: 0.24, Seed: 7}
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].F1, "f1/baseline")
	b.ReportMetric(rows[1].F1, "f1/k1")
	b.ReportMetric(rows[2].F1, "f1/k2")
	b.ReportMetric(rows[0].Precision, "precision/baseline")
	b.ReportMetric(rows[0].Recall, "recall/baseline")
}

// BenchmarkTable4 regenerates Table 4: missing-value imputation on the
// Restaurants and Buy datasets under five LLM / non-LLM strategies.
func BenchmarkTable4(b *testing.B) {
	ctx := context.Background()
	cfg := experiments.DefaultTable4Config()
	var rows []experiments.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table4(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RestAcc, "acc-rest/knn")
	b.ReportMetric(rows[1].RestAcc, "acc-rest/hybrid0")
	b.ReportMetric(rows[2].RestAcc, "acc-rest/llm0")
	b.ReportMetric(rows[1].BuyAcc, "acc-buy/hybrid0")
	b.ReportMetric(float64(rows[1].RestTokens)/float64(rows[2].RestTokens), "token-ratio/hybrid-vs-llm")
}

// BenchmarkAblationBatchSize regenerates ablation A1: the batch-size
// cost/quality trade-off of coarse grouping prompts.
func BenchmarkAblationBatchSize(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.BatchSizeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationBatchSize(ctx, "sim-gpt-3.5-turbo", 40, 1, []int{4, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PairF1, "f1/batch4")
	b.ReportMetric(rows[len(rows)-1].PairF1, "f1/batch20")
}

// BenchmarkAblationQuality regenerates ablation A2: quality-control
// policies (single ask, majority, sequential, multi-model EM).
func BenchmarkAblationQuality(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.QualityRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationQuality(ctx, "sim-cheap", 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Accuracy, "acc/single")
	b.ReportMetric(rows[len(rows)-1].Accuracy, "acc/panel-em")
}

// BenchmarkAblationPlanner regenerates ablation A3: automatic strategy
// selection across budget/accuracy targets.
func BenchmarkAblationPlanner(b *testing.B) {
	ctx := context.Background()
	var err error
	for i := 0; i < b.N; i++ {
		_, err = experiments.AblationPlanner(ctx, "sim-gpt-3.5-turbo")
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRepair regenerates ablation A4: minimum-feedback
// repair of noisy comparison graphs versus Copeland counts.
func BenchmarkAblationRepair(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.RepairRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationRepair(ctx, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].CopelandTau, "tau/cheap-copeland")
	b.ReportMetric(rows[2].RepairedTau, "tau/cheap-repaired")
}

// BenchmarkAblationFilter regenerates ablation A5: fixed versus adaptive
// (CrowdScreen-style) filter policies.
func BenchmarkAblationFilter(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.FilterRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationFilter(ctx, "sim-cheap", 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].Accuracy, "acc/majority")
	b.ReportMetric(rows[2].Accuracy, "acc/sequential")
	b.ReportMetric(float64(rows[2].Asks), "asks/sequential")
}

// BenchmarkSortStrategies measures raw engine throughput per sort
// strategy on the 20-flavour workload (micro-benchmark, not a table).
func BenchmarkSortStrategies(b *testing.B) {
	ctx := context.Background()
	items := dataset.FlavorNames()
	for _, strat := range []SortStrategy{SortOnePrompt, SortRating, SortPairwise, SortHybridInsert} {
		b.Run(string(strat), func(b *testing.B) {
			engine := NewEngine(NewSimModel("sim-gpt-3.5-turbo"), WithParallelism(16))
			for i := 0; i < b.N; i++ {
				if _, err := engine.Sort(ctx, SortRequest{
					Items:     items,
					Criterion: "how chocolatey they are",
					Strategy:  strat,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHTTPRoundTrip measures the OpenAI-compatible client/server
// substrate end to end (micro-benchmark, not a table).
func BenchmarkHTTPRoundTrip(b *testing.B) {
	// The server and client live in internal packages; exercise them
	// through the facade to keep this benchmark at the public API level.
	model := NewSimModel("sim-gpt-3.5-turbo")
	engine := NewEngine(model)
	ctx := context.Background()
	b.Run("in-process-compare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Max(ctx, MaxRequest{
				Items:     []string{"triple chocolate", "lemon sorbet", "vanilla bean"},
				Criterion: "how chocolatey they are",
				Strategy:  MaxTournament,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCompareBatch regenerates ablation A6: the
// comparisons-per-prompt cost/accuracy lever.
func BenchmarkAblationCompareBatch(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.CompareBatchRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationCompareBatch(ctx, "sim-gpt-3.5-turbo", []int{1, 5, 19})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].KendallTau, "tau/batch1")
	b.ReportMetric(rows[len(rows)-1].KendallTau, "tau/batch19")
	b.ReportMetric(float64(rows[len(rows)-1].PromptTokens)/float64(rows[0].PromptTokens), "token-ratio/batch19-vs-1")
}

// BenchmarkExecutionLayer measures the shared execution layer on the
// repeated-workload scenario: the same operator mix (per-item filter,
// categorize, LLM imputation) runs three times, as when a service answers
// the same declarative queries again and again. Reported metrics are the
// upstream simulator calls per configuration and the reduction factors —
// the shared cache + coalescer alone must clear 2x, batching stacks on
// top.
func BenchmarkExecutionLayer(b *testing.B) {
	ctx := context.Background()
	cfg := experiments.DefaultExecLayerConfig()
	var rows []experiments.ExecLayerRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.ExecLayerStudy(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].UpstreamCalls), "calls/isolated")
	b.ReportMetric(float64(rows[1].UpstreamCalls), "calls/shared")
	b.ReportMetric(float64(rows[2].UpstreamCalls), "calls/shared-batched")
	b.ReportMetric(rows[1].Reduction, "reduction/shared")
	b.ReportMetric(rows[2].Reduction, "reduction/shared-batched")
	b.ReportMetric(float64(rows[1].CacheHits), "hits/shared")
}

// BenchmarkBatchedFilter measures unit-task batching on one per-item
// filter fan-out and verifies the batched decisions stay identical to the
// unbatched ones at temperature 0 (the batching contract).
func BenchmarkBatchedFilter(b *testing.B) {
	ctx := context.Background()
	items := dataset.FlavorNames()
	req := FilterRequest{Items: items, Predicate: "the flavor contains chocolate", Strategy: FilterPerItem}
	baseline, err := NewEngine(NewSimModel("sim-gpt-3.5-turbo")).Filter(ctx, req)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			var res FilterResult
			for i := 0; i < b.N; i++ {
				engine := NewEngine(NewSimModel("sim-gpt-3.5-turbo"),
					WithParallelism(16), WithBatching(batch))
				res, err = engine.Filter(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				for j, keep := range res.Keep {
					if keep != baseline.Keep[j] {
						b.Fatalf("batch %d: decision %d diverges from unbatched", batch, j)
					}
				}
			}
			b.ReportMetric(float64(res.Usage.Calls), "upstream-calls")
			b.ReportMetric(float64(res.Usage.Total()), "tokens")
		})
	}
}

// BenchmarkAblationEvidence regenerates ablation A7: evidence-based
// flipping of both edge directions versus yes-only transitivity.
func BenchmarkAblationEvidence(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.EvidenceRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationEvidence(ctx, "sim-gpt-3.5-turbo",
			dataset.CitationConfig{Entities: 200, Pairs: 700, PositiveFrac: 0.25, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].F1, "f1/direct")
	b.ReportMetric(rows[1].F1, "f1/transitive")
	b.ReportMetric(rows[2].F1, "f1/evidence")
}

// BenchmarkAblationCascade regenerates ablation A8: the cheap→strong
// model cascade.
func BenchmarkAblationCascade(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.CascadeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationCascade(ctx, "sim-cheap", "sim-gpt-4")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].Accuracy, "acc/cascade")
	b.ReportMetric(rows[2].Dollars/rows[1].Dollars, "cost-ratio/cascade-vs-strong")
}

// BenchmarkAblationTemplates regenerates ablation A9: per-model template
// brittleness and the chain-of-thought cost/accuracy trade.
func BenchmarkAblationTemplates(b *testing.B) {
	ctx := context.Background()
	var rows []experiments.TemplateRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationTemplates(ctx, []string{"sim-gpt-3.5-turbo"})
		if err != nil {
			b.Fatal(err)
		}
	}
	best, worst := 0.0, 1.0
	for _, r := range rows {
		if r.Accuracy > best {
			best = r.Accuracy
		}
		if r.Accuracy < worst {
			worst = r.Accuracy
		}
	}
	b.ReportMetric(best, "acc/best-template")
	b.ReportMetric(worst, "acc/worst-template")
}

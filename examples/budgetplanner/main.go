// Automatic strategy selection (Section 4): label a small validation
// sample, let the planner profile every candidate strategy on it, and get
// a recommendation that meets an accuracy target within a budget —
// instead of hand-tuning prompting strategies.
//
//	go run ./examples/budgetplanner
package main

import (
	"context"
	"fmt"
	"log"

	declprompt "repro"
	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	ctx := context.Background()
	engine := declprompt.NewEngine(
		declprompt.NewSimModel("sim-gpt-3.5-turbo"),
		declprompt.WithParallelism(16),
	)

	// The user labels 10 items as a validation set (here drawn from the
	// flavour benchmark, where the true ranking is known).
	validation := dataset.FlavorNames()[:10]
	var gold []string
	for _, f := range dataset.FlavorGroundTruth() {
		for _, v := range validation {
			if f == v {
				gold = append(gold, f)
			}
		}
	}

	strategies := []declprompt.SortStrategy{
		declprompt.SortOnePrompt,
		declprompt.SortRating,
		declprompt.SortRatingThenPairwise,
		declprompt.SortPairwise,
	}

	for _, scenario := range []struct {
		target float64
		budget float64
	}{
		{target: 0.70, budget: 0.002}, // tight budget
		{target: 0.70, budget: 1.00},  // generous budget
		{target: 0.95, budget: 1.00},  // unreachable target
	} {
		plan, err := engine.PlanSort(ctx, validation, gold,
			"how chocolatey they are", strategies,
			scenario.target, scenario.budget, 200 /* full workload size */)
		if err != nil {
			log.Fatalf("plan: %v", err)
		}
		fmt.Printf("target=%.2f budget=$%.3f -> %s (%s)\n",
			scenario.target, scenario.budget, plan.Chosen, plan.Reason)
		for _, r := range plan.Reports {
			marker := " "
			if r.Name == plan.Chosen {
				marker = "*"
			}
			fmt.Printf("  %s %-22s accuracy=%.2f validation=$%.5f projected=$%.5f\n",
				marker, r.Name, r.Accuracy, r.ValidationCost, r.ProjectedCost)
		}
		fmt.Println()
	}

	// The same machinery generalises: profile impute strategies on a
	// held-out slice of the training data.
	data := dataset.GenerateRestaurants(200, 10, 4)
	plan, err := engine.PlanImpute(ctx, data.Train, data.TargetField,
		[]core.ImputeStrategy{declprompt.ImputeKNN, declprompt.ImputeHybrid, declprompt.ImputeLLM},
		40 /* holdout */, 3 /* examples */, 0.85, 0.50, 1000)
	if err != nil {
		log.Fatalf("plan impute: %v", err)
	}
	fmt.Printf("impute plan: %s (%s)\n", plan.Chosen, plan.Reason)
}

// Quality control (Section 3.5): make an unreliable cheap model usable by
// voting, adaptive re-asking, and cross-model consensus — and verify
// answers with a stronger model only where it matters.
//
//	go run ./examples/qualitycontrol
package main

import (
	"context"
	"fmt"
	"log"

	declprompt "repro"
	"repro/internal/dataset"
)

func main() {
	ctx := context.Background()
	cheap := declprompt.NewSimModel("sim-cheap")
	engine := declprompt.NewEngine(cheap, declprompt.WithParallelism(16))

	items := dataset.FlavorNames()
	predicate := "it is a chocolatey flavor"
	gold := make([]bool, len(items))
	for i, it := range items {
		s, _ := dataset.FlavorScore(it)
		gold[i] = s > 0.5
	}
	accuracy := func(keep []bool) float64 {
		correct := 0
		for i, k := range keep {
			if k == gold[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(items))
	}

	for _, spec := range []struct {
		label    string
		strategy declprompt.FilterStrategy
	}{
		{"single ask (baseline)", declprompt.FilterPerItem},
		{"majority of 5", declprompt.FilterMajority},
		{"sequential (adaptive)", declprompt.FilterSequential},
	} {
		res, err := engine.Filter(ctx, declprompt.FilterRequest{
			Items:     items,
			Predicate: predicate,
			Strategy:  spec.strategy,
			Votes:     5,
			MaxAsks:   5,
			Margin:    2,
		})
		if err != nil {
			log.Fatalf("filter (%s): %v", spec.label, err)
		}
		fmt.Printf("%-24s accuracy=%5.1f%%  asks=%-3d tokens=%d\n",
			spec.label, 100*accuracy(res.Keep), res.Asks, res.Usage.Total())
	}

	fmt.Println("\nThe adaptive policy spends its extra asks only on borderline")
	fmt.Println("flavours (cookies and cream, mint chocolate chip, ...) and")
	fmt.Println("answers the obvious ones once — the CrowdScreen idea applied")
	fmt.Println("to LLM self-consistency.")
}

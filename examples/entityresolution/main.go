// Entity resolution over a noisy citation corpus, showing the Section 3.3
// internal-consistency repair: the direct pairwise baseline misses
// heavily perturbed duplicates (high precision, low recall); augmenting
// each question with embedding neighbours and closing over transitivity
// recovers them.
//
//	go run ./examples/entityresolution
package main

import (
	"context"
	"fmt"
	"log"

	declprompt "repro"
	"repro/internal/dataset"
)

func main() {
	ctx := context.Background()
	engine := declprompt.NewEngine(
		declprompt.NewSimModel("sim-gpt-3.5-turbo"),
		declprompt.WithParallelism(16),
	)

	// A small slice of the synthetic DBLP/Scholar-like corpus: clusters of
	// noisy surface forms of the same paper, plus labelled question pairs.
	corpus := dataset.GenerateCitations(dataset.CitationConfig{
		Entities: 150, Pairs: 400, PositiveFrac: 0.25, Seed: 21,
	})
	entities := make([]declprompt.Entity, len(corpus.Records))
	for i, c := range corpus.Records {
		entities[i] = declprompt.Entity{ID: c.ID, Text: c.Text()}
	}
	pairs := make([][2]int, len(corpus.Pairs))
	for i, p := range corpus.Pairs {
		pairs[i] = [2]int{p.A, p.B}
	}

	score := func(match []bool) (precision, recall, f1 float64) {
		var tp, fp, fn int
		for i, m := range match {
			switch {
			case m && corpus.Pairs[i].Match:
				tp++
			case m && !corpus.Pairs[i].Match:
				fp++
			case !m && corpus.Pairs[i].Match:
				fn++
			}
		}
		if tp+fp > 0 {
			precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			recall = float64(tp) / float64(tp+fn)
		}
		if precision+recall > 0 {
			f1 = 2 * precision * recall / (precision + recall)
		}
		return precision, recall, f1
	}

	for _, k := range []int{0, 1, 2} {
		req := declprompt.PairsRequest{
			Corpus:   entities,
			Pairs:    pairs,
			Strategy: declprompt.ResolveDirect,
		}
		if k > 0 {
			req.Strategy = declprompt.ResolveTransitive
			req.Neighbors = k
		}
		res, err := engine.ResolvePairs(ctx, req)
		if err != nil {
			log.Fatalf("resolve k=%d: %v", k, err)
		}
		p, r, f1 := score(res.Match)
		fmt.Printf("k=%d  F1=%.3f  recall=%.3f  precision=%.3f  comparisons=%d  flipped=%d\n",
			k, f1, r, p, res.LLMComparisons, res.FlippedByTransitivity)
	}

	// Bonus: full deduplication of a tiny record set into entity groups.
	small := entities[:12]
	groups, err := engine.Dedupe(ctx, declprompt.DedupeRequest{
		Records:  small,
		Strategy: declprompt.DedupeBlockedPairwise,
	})
	if err != nil {
		log.Fatalf("dedupe: %v", err)
	}
	fmt.Printf("\ndeduplicated %d records into %d groups (%d comparisons):\n",
		len(small), len(groups.Groups), groups.LLMComparisons)
	for _, g := range groups.Groups {
		fmt.Printf("  %v\n", g)
	}
}

// Run a declarative workload against a remote OpenAI-compatible endpoint
// instead of the in-process simulator. Start the server first:
//
//	go run ./cmd/llmserver -addr :8080 &
//	go run ./examples/httpclient -base http://127.0.0.1:8080
//
// Everything else — strategies, budgets, caching, consistency repair — is
// identical; the engine does not care where the model lives.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	declprompt "repro"
	"repro/internal/dataset"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "OpenAI-compatible endpoint base URL")
	modelName := flag.String("model", "sim-claude-2", "model name to request")
	flag.Parse()

	ctx := context.Background()
	model := declprompt.NewHTTPModel(*base, *modelName)
	engine := declprompt.NewEngine(model, declprompt.WithParallelism(8))

	words := dataset.RandomWords(40, 7)
	res, err := engine.Sort(ctx, declprompt.SortRequest{
		Items:     words,
		Criterion: "alphabetical order",
		Strategy:  declprompt.SortHybridInsert,
	})
	if err != nil {
		log.Fatalf("sort over HTTP: %v (is llmserver running at %s?)", err, *base)
	}
	fmt.Printf("sorted %d words over HTTP: missing=%d hallucinated=%d tokens=%d calls=%d\n",
		len(res.Ranked), res.Missing, res.Hallucinated, res.Usage.Total(), res.Usage.Calls)
	for i, w := range res.Ranked {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(res.Ranked)-10)
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, w)
	}
}

// Command adaptive demonstrates the adaptive streaming runtime: the same
// pipeline runs once with the static streaming executor and once with
// ExecConfig.Adaptive, and the side-input overlap scenario shows the
// wall-clock difference buffering buys under a deterministic latency
// model. See examples/adaptive/README.md for the walkthrough.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
)

func main() {
	ctx := context.Background()

	// A two-filter chain over the flavours table: hintless, so the static
	// plan keeps the user's order while the adaptive runtime replans from
	// observed keep rates at chunk boundaries.
	spec := pipeline.Spec{
		Source: pipeline.SourceSpec{Dataset: "flavors"},
		Stages: []pipeline.StageSpec{
			{Name: "sweet", Kind: pipeline.KindFilter, Field: "name",
				Predicate: "the flavor is sweet"},
			{Name: "choc", Kind: pipeline.KindFilter, Field: "name",
				Predicate: "it is a chocolatey flavor"},
		},
	}
	tables, err := spec.Source.Tables()
	if err != nil {
		log.Fatal(err)
	}
	for _, adaptive := range []bool{false, true} {
		p, err := pipeline.Compile(spec)
		if err != nil {
			log.Fatal(err)
		}
		counting := llm.NewCounting(sim.NewNamed("sim-gpt-3.5-turbo"))
		res, err := p.Run(ctx, pipeline.ExecConfig{
			Model: counting, Adaptive: adaptive, ChunkMin: 1, ChunkMax: 4, Parallelism: 8,
		}, tables)
		if err != nil {
			log.Fatal(err)
		}
		label := "static streaming"
		if adaptive {
			label = "adaptive runtime"
		}
		fmt.Printf("== %s ==\n%s\n", label, pipeline.FormatResult(res))
	}

	// The overlap scenario: a slow feed joins against another stage's
	// output. Drain-first waits for the whole feed; the adaptive runtime
	// buffers and starts matching the moment the side table lands.
	overlap, err := experiments.OverlapScenario(ctx, 15*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlap scenario: drain-first %s vs adaptive overlap %s (%d matches, identical: %v)\n",
		overlap.DrainFirst.Round(time.Millisecond), overlap.Overlap.Round(time.Millisecond),
		overlap.Matches, overlap.Identical)
}

// Missing-value imputation combining LLM and non-LLM strategies
// (Section 3.4): pure k-NN is free but limited; LLM-only is accurate but
// expensive and drifts in formatting; the hybrid asks the model only for
// records whose neighbours disagree — near-LLM accuracy at a fraction of
// the cost. A budget caps total spend.
//
//	go run ./examples/imputation
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	declprompt "repro"
	"repro/internal/dataset"
)

func main() {
	ctx := context.Background()

	// Cap the workflow at one dollar; every LLM call is admitted against
	// this budget and the run fails fast once it is exhausted.
	budget := declprompt.NewBudget(1.00, 0, 0)
	engine := declprompt.NewEngine(
		declprompt.NewSimModel("sim-claude"),
		declprompt.WithBudget(budget),
		declprompt.WithParallelism(16),
	)

	data := dataset.GenerateRestaurants(300, 86, 11)
	gold := data.Gold()

	for _, spec := range []struct {
		label    string
		strategy declprompt.ImputeStrategy
		examples int
	}{
		{"k-NN only", declprompt.ImputeKNN, 0},
		{"LLM only (zero-shot)", declprompt.ImputeLLM, 0},
		{"Hybrid (zero-shot)", declprompt.ImputeHybrid, 0},
		{"Hybrid (3 examples)", declprompt.ImputeHybrid, 3},
	} {
		res, err := engine.Impute(ctx, declprompt.ImputeRequest{
			Train:       data.Train,
			Queries:     data.Test,
			TargetField: data.TargetField,
			Strategy:    spec.strategy,
			Examples:    spec.examples,
		})
		if err != nil {
			log.Fatalf("impute (%s): %v", spec.label, err)
		}
		correct := 0
		for i, v := range res.Values {
			if strings.EqualFold(strings.TrimSpace(v), gold[i]) {
				correct++
			}
		}
		fmt.Printf("%-22s accuracy=%5.1f%%  llm-calls=%-3d knn-decided=%-3d tokens=%d\n",
			spec.label, 100*float64(correct)/float64(len(gold)),
			res.LLMCalls, res.KNNDecided, res.Usage.Total())
	}

	spent, dollars := budget.Spent()
	fmt.Printf("\nbudget: spent $%.4f across %d calls (%d tokens) of the $1.00 cap\n",
		dollars, spent.Calls, spent.Total())
}

// Quickstart: sort a small list of items by a semantic criterion under
// three strategies, and watch the cost/accuracy trade-off the paper's
// Table 1 demonstrates.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	declprompt "repro"
)

func main() {
	ctx := context.Background()

	// The simulated model behaves like a vendor endpoint: noisy, biased,
	// deterministic at temperature 0, billed per token.
	model := declprompt.NewSimModel("sim-gpt-3.5-turbo")
	engine := declprompt.NewEngine(model)

	items := []string{
		"lemon sorbet",
		"triple chocolate",
		"vanilla bean",
		"mocha almond fudge",
		"strawberry cheesecake",
		"chocolate chip cookie dough",
		"salted caramel",
		"rocky road",
	}

	for _, strategy := range []declprompt.SortStrategy{
		declprompt.SortOnePrompt, // one big prompt: cheapest, noisiest
		declprompt.SortRating,    // one rating per item: middle ground
		declprompt.SortPairwise,  // all pairs: most accurate, O(n^2) cost
	} {
		res, err := engine.Sort(ctx, declprompt.SortRequest{
			Items:     items,
			Criterion: "how chocolatey they are",
			Strategy:  strategy,
		})
		if err != nil {
			log.Fatalf("sort (%s): %v", strategy, err)
		}
		cost := declprompt.PriceFor(model.Name()).Cost(res.Usage)
		fmt.Printf("strategy=%-12s tokens=%-6d cost=$%.5f calls=%d\n",
			strategy, res.Usage.Total(), cost, res.Usage.Calls)
		for i, it := range res.Ranked {
			fmt.Printf("  %2d. %s\n", i+1, it)
		}
		fmt.Println()
	}
}

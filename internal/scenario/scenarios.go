package scenario

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/resil"
)

// rec builds one record from name/value pairs.
func rec(id string, kv ...string) dataset.Record {
	r := dataset.Record{ID: id}
	for i := 0; i+1 < len(kv); i += 2 {
		r.Fields = append(r.Fields, dataset.Field{Name: kv[i], Value: kv[i+1]})
	}
	return r
}

// fieldPred registers a deterministic boolean over a field value: the
// predicate text is matched by substring, the truth compares the rendered
// item (the field value) exactly, and the margin of 1 keeps the sim
// oracle's filter noise away from the decision boundary — so every answer
// is stable and the scenarios' counters pin.
func fieldPred(name, text, value string) sim.Predicate {
	return sim.Predicate{
		Name:  name,
		Match: func(s string) bool { return strings.Contains(s, text) },
		Truth: func(item string) (bool, float64) { return item == value, 1 },
	}
}

// kindRecords is the stock 8-record workload of the cache-centric
// scenarios: three distinct kind values, so a cold run pays exactly three
// upstream calls and everything else lands in the shared cache.
func kindRecords() []dataset.Record {
	kinds := []string{"tool", "toy", "tool", "gadget", "tool", "toy", "tool", "gadget"}
	recs := make([]dataset.Record, len(kinds))
	for i, k := range kinds {
		recs[i] = rec(fmt.Sprintf("item-%02d", i), "kind", k)
	}
	return recs
}

// kindSpec filters to kind "tool" and then counts them per item — the
// count re-asks the filter's predicate, so on a shared cache the tally
// stage is upstream-free.
func kindSpec() pipeline.Spec {
	return pipeline.Spec{Stages: []pipeline.StageSpec{
		{Name: "keep", Kind: pipeline.KindFilter, Field: "kind", Predicate: "the kind is tool"},
		{Name: "tally", Kind: pipeline.KindCount, Field: "kind", Predicate: "the kind is tool", Strategy: "per-item"},
	}}
}

func kindPredicates() []sim.Predicate {
	return []sim.Predicate{fieldPred("is-tool", "kind is tool", "tool")}
}

// ColdStart is the baseline scenario: one query on a cold engine. The
// checkpoint pins the exact upstream spend (three unique kind values →
// three calls; the per-item count replays the filter's cached asks) and
// the exact output.
func ColdStart() *Scenario {
	return &Scenario{
		ID:   "cold-start",
		Name: "Cold start",
		Description: "One query on a cold engine: 8 records, 3 distinct values. " +
			"Pins the cold upstream spend (3 calls — the shared cache dedupes " +
			"repeated values and the per-item count replays the filter's asks) " +
			"and the exact rows and tally.",
		Spec:       kindSpec(),
		Source:     kindRecords(),
		Exec:       ExecKnobs{Parallelism: 2, Chunk: 2},
		Predicates: kindPredicates(),
		Turns: []Turn{
			{Name: "first-query", Kind: TurnQuery},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "cold-cost", AfterTurn: "first-query",
				MinCalls: 3, MaxCalls: 3, MaxCost: 0.01,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
		},
	}
}

// WarmCacheReplay re-issues an identical query after an idle lull: the
// replay must be upstream-free, answered entirely by the session's
// persistent execution layer.
func WarmCacheReplay() *Scenario {
	return &Scenario{
		ID:   "warm-cache-replay",
		Name: "Warm-cache replay",
		Description: "Query, idle, then the identical query again on the same " +
			"session. The replay turn must spend zero upstream calls (FreeTurn): " +
			"every ask is a shared-cache hit.",
		Spec:       kindSpec(),
		Source:     kindRecords(),
		Exec:       ExecKnobs{Parallelism: 2, Chunk: 2},
		Predicates: kindPredicates(),
		Turns: []Turn{
			{Name: "first-pass", Kind: TurnQuery},
			{Name: "lull", Kind: TurnIdle, Pause: 2 * time.Millisecond},
			{Name: "replay", Kind: TurnQuery},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "cold-pass", AfterTurn: "first-pass",
				MinCalls: 3, MaxCalls: 3, WantRows: 4,
			},
			{
				Name: "warm-free", AfterTurn: "replay",
				MaxCalls: 3, FreeTurn: true, MinSharedHits: 21,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
		},
	}
}

// MidRunIngestion is the standing-query scenario: an ingest turn grows
// the table, then a query runs while two more record waves arrive on the
// feed channel mid-flight. The checkpoint requires byte-identity with a
// cold batch run over the final record set.
func MidRunIngestion() *Scenario {
	ingest := []dataset.Record{
		rec("late-00", "kind", "tool"),
		rec("late-01", "kind", "gadget"),
		rec("late-02", "kind", "tool"),
	}
	wave1 := []dataset.Record{
		rec("fed-00", "kind", "toy"),
		rec("fed-01", "kind", "tool"),
		rec("fed-02", "kind", "gadget"),
	}
	wave2 := []dataset.Record{
		rec("fed-03", "kind", "tool"),
		rec("fed-04", "kind", "toy"),
		rec("fed-05", "kind", "tool"),
	}
	return &Scenario{
		ID:   "mid-run-ingestion",
		Name: "Mid-run ingestion (standing query)",
		Description: "Ingest 3 records between turns, then run a standing query " +
			"that receives 6 more mid-flight over the feed channel. Results must " +
			"be byte-identical to a batch run over all 13 records, at the same " +
			"3-call upstream spend.",
		Spec:       kindSpec(),
		Source:     kindRecords()[:4],
		Exec:       ExecKnobs{Parallelism: 2, Chunk: 2},
		Predicates: kindPredicates(),
		Turns: []Turn{
			{Name: "late-arrivals", Kind: TurnIngest, Records: ingest},
			{Name: "stand", Kind: TurnQuery, Feed: [][]dataset.Record{wave1, wave2}, CompareBatch: true},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "identical-to-batch", AfterTurn: "stand",
				RequireIdentical: true, WantRows: 7,
				WantScalars: map[string]string{"tally": "7"},
			},
			{
				Name: "ingest-cost", AfterTurn: "stand",
				MinCalls: 3, MaxCalls: 3,
			},
		},
	}
}

// BurstLoad fires four concurrent identical queries under an installed
// per-call latency: the shared cache and coalescer must absorb all but
// the three unique upstream calls, and the turn's wall clock must show
// the latency actually bit.
func BurstLoad() *Scenario {
	return &Scenario{
		ID:   "burst-load",
		Name: "Burst load under latency",
		Description: "Install a 2ms per-call latency, then fire 4 concurrent " +
			"copies of the query at the shared engine. Only the 3 unique asks go " +
			"upstream (and pay the latency); the other 45 requests are cache " +
			"hits or coalesced joins.",
		Spec:       kindSpec(),
		Source:     kindRecords(),
		Exec:       ExecKnobs{Parallelism: 4, Chunk: 2},
		Predicates: kindPredicates(),
		Turns: []Turn{
			{Name: "congestion", Kind: TurnLatency, Latency: 2 * time.Millisecond},
			{Name: "spike", Kind: TurnBurst, Repeat: 4},
			{Name: "clear", Kind: TurnLatency},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "absorbed", AfterTurn: "spike",
				MinCalls: 3, MaxCalls: 3, MinSharedHits: 45,
				MinTurnWall: 2 * time.Millisecond, MaxTurnWall: 30 * time.Second,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
		},
	}
}

// OverlapIngestion exercises the side-input overlap path under
// ingestion: a nested-loop join whose side table is another stage's
// stream runs as a standing query, so the adaptive executor spools the
// live branch while the pool side materializes — with fed records
// arriving the whole time — and the result must still match a cold
// batch run.
func OverlapIngestion() *Scenario {
	static := []dataset.Record{
		rec("pool-00", "name", "alphabravo", "slot", "pool"),
		rec("pool-01", "name", "deltaecho", "slot", "pool"),
		rec("live-00", "name", "alphabravo", "slot", "live"),
		rec("live-01", "name", "sigmafoxtrot", "slot", "live"),
	}
	wave1 := []dataset.Record{
		rec("live-02", "name", "deltaecho", "slot", "live"),
		rec("live-03", "name", "omegagolf", "slot", "live"),
	}
	wave2 := []dataset.Record{
		rec("live-04", "name", "alphabravo", "slot", "live"),
	}
	return &Scenario{
		ID:   "overlap-ingestion",
		Name: "Side-input overlap under ingestion",
		Description: "A join whose side table is the pool filter's stream runs " +
			"as a standing query: the adaptive executor spools the live branch " +
			"while the side materializes, records keep arriving mid-run, and the " +
			"matches must equal a cold batch run's.",
		Spec: pipeline.Spec{Stages: []pipeline.StageSpec{
			{Name: "pool", Kind: pipeline.KindFilter, Field: "slot", Predicate: "the slot is pool", Input: "source"},
			{Name: "live", Kind: pipeline.KindFilter, Field: "slot", Predicate: "the slot is live", Input: "source"},
			{Name: "match", Kind: pipeline.KindJoin, Field: "name", Side: "pool",
				Strategy: "nested-loop", Input: "live"},
		}},
		Source: static,
		Exec:   ExecKnobs{Parallelism: 1, Chunk: 1, Adaptive: true},
		Predicates: []sim.Predicate{
			fieldPred("slot-pool", "slot is pool", "pool"),
			fieldPred("slot-live", "slot is live", "live"),
		},
		Turns: []Turn{
			{Name: "stand-join", Kind: TurnQuery, Feed: [][]dataset.Record{wave1, wave2}, CompareBatch: true},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "overlap-identical", AfterTurn: "stand-join",
				RequireIdentical: true, WantRows: 3,
			},
		},
	}
}

// AdaptiveReplanDrift feeds a drifting record stream through an adaptive
// filter segment: the hintless filters start in user order, the fed
// records' observed keep rates expose the tighter filter, and the
// segment must re-order mid-run ("order revised") while staying
// byte-identical to a batch run.
func AdaptiveReplanDrift() *Scenario {
	static := []dataset.Record{
		rec("st-00", "tier", "gold", "region", "west"),
		rec("st-01", "tier", "gold", "region", "east"),
		rec("st-02", "tier", "gold", "region", "west"),
		rec("st-03", "tier", "silver", "region", "west"),
		rec("st-04", "tier", "gold", "region", "west"),
		rec("st-05", "tier", "gold", "region", "west"),
	}
	var wave1, wave2 []dataset.Record
	for i := 0; i < 5; i++ {
		tier := "gold"
		if i == 2 {
			tier = "silver"
		}
		wave1 = append(wave1, rec(fmt.Sprintf("dr-a%d", i), "tier", tier, "region", "west"))
	}
	for i := 0; i < 5; i++ {
		region := "west"
		if i == 3 {
			region = "east"
		}
		wave2 = append(wave2, rec(fmt.Sprintf("dr-b%d", i), "tier", "gold", "region", region))
	}
	return &Scenario{
		ID:   "adaptive-replan-drift",
		Name: "Adaptive re-plan under drift",
		Description: "Two hintless filters (loose tier check, tight region " +
			"check) run as an adaptive segment over a drifting standing-query " +
			"stream: observed keep rates must flip the tighter filter to the " +
			"front mid-run (\"order revised\") with results byte-identical to a " +
			"batch run.",
		Spec: pipeline.Spec{Stages: []pipeline.StageSpec{
			{Name: "loose", Kind: pipeline.KindFilter, Field: "tier", Predicate: "the tier is gold"},
			{Name: "tight", Kind: pipeline.KindFilter, Field: "region", Predicate: "the region is east"},
		}},
		Source: static,
		Exec:   ExecKnobs{Parallelism: 1, Chunk: 1, Adaptive: true},
		Predicates: []sim.Predicate{
			fieldPred("tier-gold", "tier is gold", "gold"),
			fieldPred("region-east", "region is east", "east"),
		},
		Turns: []Turn{
			{Name: "drift", Kind: TurnQuery, Feed: [][]dataset.Record{wave1, wave2}, CompareBatch: true},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "replanned", AfterTurn: "drift",
				RequireDetail: "order revised", RequireIdentical: true,
				WantRows: 2, MaxCalls: 4,
			},
		},
	}
}

// DeclserverMultiTenant drives bursty two-tenant traffic through a
// declserver core on the session engine: a throttled "free" tenant
// over-submits and must bounce off its admission bucket with the overflow
// rejected exactly, a "pro" tenant's wave must all complete, every
// completed job must ride the one shared cache (3 upstream calls total,
// ever), the per-tenant ledger must sum to the upstream counter at every
// checkpoint, and the pro tenant's follow-up turn must be upstream-free
// and fast — the throttled neighbour never starved it.
func DeclserverMultiTenant() *Scenario {
	return &Scenario{
		ID:   "declserver-multi-tenant",
		Name: "Multi-tenant service under bursty traffic",
		Description: "Two tenants share one declserver: \"free\" (burst 2) fires 6 " +
			"concurrent submissions — exactly 4 bounce with 429 — while \"pro\" " +
			"(burst 64) lands 4; the 6 admitted runs cost the 3 unique upstream " +
			"calls once, ever. A follow-up pro-only turn must be upstream-free and " +
			"fast, and the per-tenant ledger must sum to the upstream counter at " +
			"both checkpoints.",
		Spec:       kindSpec(),
		Source:     kindRecords(),
		Exec:       ExecKnobs{Parallelism: 2, Chunk: 2},
		Predicates: kindPredicates(),
		Turns: []Turn{
			{Name: "mixed-burst", Kind: TurnServer, Server: &ServerLoad{
				MaxConcurrent: 2, MaxQueue: 16,
				Waves: []TenantWave{
					{Tenant: "free", Submissions: 6, Burst: 2},
					{Tenant: "pro", Submissions: 4, Burst: 64},
				},
			}},
			{Name: "steady-pro", Kind: TurnServer, Server: &ServerLoad{
				Waves: []TenantWave{
					{Tenant: "pro", Submissions: 2, Burst: 64},
				},
			}},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "throttled-exactly", AfterTurn: "mixed-burst",
				MinCalls: 3, MaxCalls: 3, WantRejected: 4, RequireBalanced: true,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
				MaxTurnWall: 30 * time.Second,
			},
			{
				Name: "warm-tenants", AfterTurn: "steady-pro",
				MaxCalls: 3, FreeTurn: true, RequireBalanced: true,
				MinSharedHits: 93, WantRows: 4,
				WantScalars: map[string]string{"tally": "4"},
				MaxTurnWall: 30 * time.Second,
			},
		},
	}
}

// FaultBurstRecovery is the chaos scenario for the retry + degraded-mode
// story: a deterministic fault burst flickers mid-run and retries heal
// every fault invisibly; then a total outage window forces one record
// into quarantine while the run still completes; then the storm clears
// and the next run repairs the gap. Serial execution (Parallelism 1,
// Chunk 1) keeps the burst window's call-order arithmetic exact, so the
// retry and quarantine counts pin.
func FaultBurstRecovery() *Scenario {
	arrivals := []dataset.Record{
		rec("late-w0", "kind", "widget"),
		rec("late-g0", "kind", "gizmo"),
	}
	more := []dataset.Record{
		rec("late-d0", "kind", "doohickey"),
	}
	return &Scenario{
		ID:   "fault-burst-recovery",
		Name: "Fault burst mid-run with retry healing and quarantine",
		Description: "A burst plan fails every other upstream call mid-run: the two " +
			"new asks each fault once and heal on retry (exactly 2 retries, no " +
			"records dropped). Then a total outage exhausts retries on one new ask " +
			"— the run completes anyway with exactly 1 record quarantined. The " +
			"storm clears and the follow-up run repairs the gap for 1 call.",
		Spec:       kindSpec(),
		Source:     kindRecords(),
		Exec:       ExecKnobs{Parallelism: 1, Chunk: 1, OnRecordError: pipeline.OnRecordQuarantine},
		Predicates: kindPredicates(),
		Resilience: &resil.Policy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond},
		Turns: []Turn{
			{Name: "cold", Kind: TurnQuery},
			{Name: "flicker", Kind: TurnFaults, Faults: &llm.FaultPlan{Seed: 1, BurstEvery: 2, BurstLen: 1}},
			{Name: "arrivals", Kind: TurnIngest, Records: arrivals},
			{Name: "heal-through", Kind: TurnQuery},
			{Name: "blackout", Kind: TurnFaults, Faults: &llm.FaultPlan{Seed: 1, BurstEvery: 1, BurstLen: 1}},
			{Name: "more-arrivals", Kind: TurnIngest, Records: more},
			{Name: "degrade", Kind: TurnQuery},
			{Name: "calm", Kind: TurnFaults},
			{Name: "after", Kind: TurnQuery},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "cold-baseline", AfterTurn: "cold",
				MinCalls: 3, MaxCalls: 3, WantRows: 4,
				WantScalars: map[string]string{"tally": "4"},
			},
			{
				Name: "retries-heal", AfterTurn: "heal-through",
				MinCalls: 5, MaxCalls: 5, WantRetries: 2, RequireNoDrops: true,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
			{
				// The failing ask spends its retries twice: once in the chunk
				// pass, once in the record-by-record reprocess that decides
				// quarantine — 4 retries here on top of heal-through's 2.
				Name: "degraded-completes", AfterTurn: "degrade",
				MinCalls: 5, MaxCalls: 5, WantRetries: 6, WantQuarantined: 1,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
			{
				Name: "storm-clears", AfterTurn: "after",
				MinCalls: 6, MaxCalls: 6, RequireNoDrops: true,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
		},
	}
}

// BreakerOpenRecover is the chaos scenario for the circuit-breaker
// story: a total outage trips the breaker on the first failed call, the
// next query is shed without touching the upstream, and once the faults
// clear and the cooldown elapses a half-open probe heals the session —
// all on the one persistent resilience wrapper the scenario pins.
func BreakerOpenRecover() *Scenario {
	growth := []dataset.Record{
		rec("late-w0", "kind", "widget"),
	}
	return &Scenario{
		ID:   "breaker-open-recover",
		Name: "Breaker opens under outage, recovers after cooldown",
		Description: "Every upstream call fails during an outage: the one uncached " +
			"ask trips the breaker (threshold 1), the next query fails fast on the " +
			"open breaker without an upstream attempt, and after the faults clear " +
			"and the 50ms cooldown elapses the half-open probe succeeds — the " +
			"recovery run costs exactly 1 call and closes the circuit.",
		Spec:       kindSpec(),
		Source:     kindRecords(),
		Exec:       ExecKnobs{Parallelism: 1, Chunk: 1},
		Predicates: kindPredicates(),
		Resilience: &resil.Policy{
			MaxAttempts:      1,
			BreakerThreshold: 1,
			BreakerCooldown:  50 * time.Millisecond,
		},
		Turns: []Turn{
			{Name: "cold", Kind: TurnQuery},
			{Name: "outage", Kind: TurnFaults, Faults: &llm.FaultPlan{Seed: 1, Transient: 1}},
			{Name: "growth", Kind: TurnIngest, Records: growth},
			{Name: "blackout", Kind: TurnQuery, AllowError: true},
			{Name: "shed", Kind: TurnQuery, AllowError: true},
			{Name: "repairs", Kind: TurnFaults},
			{Name: "cooldown", Kind: TurnIdle, Pause: 60 * time.Millisecond},
			{Name: "recover", Kind: TurnQuery},
		},
		Checkpoints: []Checkpoint{
			{
				Name: "cold-baseline", AfterTurn: "cold",
				MinCalls: 3, MaxCalls: 3, WantRows: 4,
			},
			{
				Name: "breaker-trips", AfterTurn: "blackout",
				RequireFailed: true, MinBreakerOpens: 1, MaxCalls: 3,
			},
			{
				Name: "shed-while-open", AfterTurn: "shed",
				RequireFailed: true, MaxCalls: 3, MaxTurnWall: 5 * time.Second,
			},
			{
				Name: "recovered", AfterTurn: "recover",
				MinCalls: 4, MaxCalls: 4, MinBreakerOpens: 1,
				WantRows: 4, WantScalars: map[string]string{"tally": "4"},
			},
		},
	}
}

// List returns the pre-built scenarios in their canonical order. Each
// call builds fresh values, so callers may mutate freely.
func List() []*Scenario {
	return []*Scenario{
		ColdStart(),
		WarmCacheReplay(),
		MidRunIngestion(),
		BurstLoad(),
		OverlapIngestion(),
		AdaptiveReplanDrift(),
		DeclserverMultiTenant(),
		FaultBurstRecovery(),
		BreakerOpenRecover(),
	}
}

// ByID returns the pre-built scenario with the given ID, or nil.
func ByID(id string) *Scenario {
	for _, sc := range List() {
		if sc.ID == id {
			return sc
		}
	}
	return nil
}

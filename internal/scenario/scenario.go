// Package scenario is the checkpointed scenario and load harness: it
// drives the declarative pipeline runtime through named, multi-turn
// traffic patterns — standing queries ingesting records mid-run, burst
// load, latency perturbation, cache-warming replays — and asserts
// per-checkpoint latency, cost, and accuracy expectations drawn from the
// run's workflow.Attribution ledger and the shared execution layer's
// ExecStats.
//
// A Scenario names an ordered list of Turns over one pipeline Spec and a
// list of Checkpoints. Each turn either ingests records into the session
// table, issues a pipeline run (optionally as a standing query fed
// record waves mid-flight, optionally as a burst of concurrent runs),
// perturbs per-call latency via llm.WithLatency, or idles. Each
// checkpoint binds to a turn and asserts bounds over the cumulative
// counters at that point plus properties of that turn (wall clock,
// result width, scalars, standing-query/batch equivalence, stage-detail
// substrings).
//
// The harness runs every scenario against the deterministic sim engine
// by default, so call counts, token totals, rows, and scalars are
// byte-stable and CI can pin them (experiments.ScenarioStudy); passing a
// real model through Options.Model is the production escape hatch. The
// design follows the Scenario → Turns → Checkpoints shape of multi-turn
// context-system harnesses, with the engine swapped rather than mocked.
// See docs/SCENARIO.md.
package scenario

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/resil"
)

// TurnKind discriminates what a Turn does to the session.
type TurnKind string

const (
	// TurnIngest appends Records to the session's source table; later
	// query turns see the grown table.
	TurnIngest TurnKind = "ingest"
	// TurnQuery compiles and runs the pipeline over the session tables.
	// With Feed waves it runs as a standing query: the waves arrive on
	// ExecConfig.Feed while the run executes, and the fed records join
	// the session table afterwards.
	TurnQuery TurnKind = "query"
	// TurnBurst runs Repeat concurrent copies of the query on the shared
	// engine — the load spike the execution layer's cache and coalescer
	// exist to absorb.
	TurnBurst TurnKind = "burst"
	// TurnLatency sets the per-call model latency from this turn on
	// (llm.WithLatency over the session's base model); zero restores the
	// unperturbed model.
	TurnLatency TurnKind = "latency"
	// TurnIdle pauses the session for Pause — a traffic lull between
	// bursts.
	TurnIdle TurnKind = "idle"
	// TurnFaults installs a deterministic fault plan on the session's
	// model from this turn on (llm.WithFaults over the base model); a nil
	// or zero plan restores the healthy model. Installing faults replaces
	// any latency wrapper and vice versa — the chaos scenarios perturb one
	// axis at a time.
	TurnFaults TurnKind = "faults"
	// TurnServer drives multi-tenant traffic through a declserver core
	// (internal/server) stood up over the session's engine stack: each
	// tenant wave submits concurrent copies of the pipeline, the service
	// admits or throttles them per tenant, and the turn records how many
	// submissions were rejected and whether the tenant ledger balanced
	// against the upstream counter. The server persists across the
	// scenario's server turns, so later waves ride earlier waves' warm
	// cache — the multi-tenant restatement of the warm-replay property.
	TurnServer TurnKind = "server"
)

// TenantWave is one tenant's burst within a server turn.
type TenantWave struct {
	// Tenant is the tenant ID; Submissions its concurrent submission count.
	Tenant      string
	Submissions int
	// Rate and Burst parameterise the tenant's admission bucket. A zero
	// Rate pins a negligible refill so Burst alone decides — the
	// deterministic configuration the checkpointed scenarios need.
	Rate  float64
	Burst int
}

// ServerLoad describes one server turn. The session's declserver is built
// from the scenario's first server turn: its gate knobs and the union of
// its waves' tenant limits configure the service; later server turns reuse
// it (warm, same buckets' configuration) and may only submit as tenants
// declared there.
type ServerLoad struct {
	// MaxConcurrent and MaxQueue configure the service's global gate
	// (zero values take the server defaults).
	MaxConcurrent, MaxQueue int
	// Waves all submit concurrently — one goroutine per submission.
	Waves []TenantWave
}

// Turn is one step of a scenario's traffic pattern.
type Turn struct {
	// Name uniquely identifies the turn; checkpoints bind to it.
	Name string
	// Kind selects the action.
	Kind TurnKind
	// Records is the ingest payload (TurnIngest).
	Records []dataset.Record
	// Spec overrides the scenario's pipeline for this query turn; nil
	// runs Scenario.Spec.
	Spec *pipeline.Spec
	// Feed holds record waves handed to the run mid-flight over an
	// unbuffered channel (TurnQuery): each send blocks until the
	// executor consumes it, so ingestion genuinely interleaves with
	// execution. Fed records persist in the session table afterwards.
	Feed [][]dataset.Record
	// CompareBatch re-runs the query turn's spec as a plain batch over
	// the final record set on a fresh, unperturbed engine and records
	// whether final table and scalars are identical — the standing-query
	// accuracy check a checkpoint asserts via RequireIdentical.
	CompareBatch bool
	// Repeat is the burst width (TurnBurst); values below 2 mean 2.
	Repeat int
	// Latency is the per-call delay to install (TurnLatency).
	Latency time.Duration
	// Pause is the idle duration (TurnIdle).
	Pause time.Duration
	// Faults is the deterministic fault plan to install (TurnFaults); nil
	// or zero restores the healthy model.
	Faults *llm.FaultPlan
	// AllowError marks a query turn that is expected to fail — an outage
	// window with the breaker tripping, say. The failure is recorded on
	// the turn result (Failed, Error) instead of aborting the scenario,
	// so later turns can demonstrate recovery.
	AllowError bool
	// Server is the multi-tenant load to drive (TurnServer).
	Server *ServerLoad
}

// ExecKnobs carries the pipeline ExecConfig fields a scenario pins for
// its runs; everything else (model, layer, registry, ledger) is the
// session's.
type ExecKnobs struct {
	Batch, Parallelism, Chunk int
	Adaptive                  bool
	ChunkMin, ChunkMax        int
	Materialized              bool
	// OnRecordError selects the degraded-mode record policy
	// (pipeline.OnRecordFail / OnRecordSkip / OnRecordQuarantine; empty
	// means fail — today's semantics).
	OnRecordError string
}

// Scenario is one named multi-turn traffic pattern plus its assertions.
type Scenario struct {
	// ID is the kebab-case handle (declctl scenario -name <ID>); Name is
	// the display title.
	ID, Name string
	// Description says what the scenario exercises and what its
	// checkpoints guard.
	Description string
	// Spec is the pipeline the query turns run.
	Spec pipeline.Spec
	// Source is the initial source table.
	Source []dataset.Record
	// Tables holds extra static side tables (e.g. "train").
	Tables map[string][]dataset.Record
	// Exec pins the run configuration.
	Exec ExecKnobs
	// Predicates are registered on the default sim engine so the
	// scenario's filter/count stages answer deterministically; ignored
	// when Options.Model supplies a real engine.
	Predicates []sim.Predicate
	// Resilience, when set, wraps the session model in a resil retry /
	// hedge / breaker policy for the whole scenario. The wrapper sits
	// below the counting model, so Calls counts settled answers — one per
	// logical request however many attempts it took — and stays pinnable;
	// the attempt-level story (retries, hedges, breaker opens) surfaces in
	// the Snapshot's resilience counters. The wrapper and its breaker
	// state persist across turns, which is what the breaker-recovery
	// scenario measures.
	Resilience *resil.Policy
	// Turns is the traffic pattern, in order.
	Turns []Turn
	// Checkpoints are the assertions; every checkpoint must name a turn.
	Checkpoints []Checkpoint
}

// Checkpoint asserts metrics after one named turn. Zero-valued bounds
// are skipped, so a checkpoint states only what it cares about. Calls,
// cost, and shared-hit bounds read the cumulative session counters
// (workflow.Attribution for cost, the upstream call counter for calls,
// ExecStats for cache/coalescer effects); the turn-scoped fields read
// the bound turn's own result.
type Checkpoint struct {
	// Name labels the assertion; AfterTurn binds it to a turn.
	Name, AfterTurn string
	// MinCalls/MaxCalls bound the cumulative upstream calls (0 skips).
	MinCalls, MaxCalls int
	// MaxCost bounds the cumulative attributed dollars (0 skips).
	MaxCost float64
	// MinSharedHits is a floor on cumulative cache hits + coalesced
	// joins — requests answered without an upstream call (0 skips).
	MinSharedHits int
	// FreeTurn asserts the bound turn spent zero upstream calls — the
	// warm-cache-replay property.
	FreeTurn bool
	// MinTurnWall/MaxTurnWall bound the turn's wall clock (0 skips).
	// Floors are safe under determinism (an installed latency must show
	// up); generous ceilings catch gross scheduling regressions.
	MinTurnWall, MaxTurnWall time.Duration
	// WantRows pins the turn's final-stage table width (0 skips).
	WantRows int
	// WantScalars pins scalar outputs by stage name (nil skips).
	WantScalars map[string]string
	// RequireIdentical asserts the turn's CompareBatch check ran and the
	// standing-query results matched the batch reference byte for byte.
	RequireIdentical bool
	// RequireDetail asserts some stage detail of the turn's run contains
	// this substring (e.g. "order revised 1 times").
	RequireDetail string
	// WantRejected pins the server turn's refused-submission count
	// (0 skips) — the throttled tenant's overflow must bounce, exactly.
	WantRejected int
	// RequireBalanced asserts the server turn's per-tenant ledger summed
	// exactly to the service's upstream call counter.
	RequireBalanced bool
	// WantRetries pins the cumulative retry count from the scenario's
	// resilience wrapper (0 skips) — under a deterministic fault plan the
	// exact number of healed attempts is known.
	WantRetries int
	// MinBreakerOpens is a floor on cumulative breaker-open transitions
	// (0 skips).
	MinBreakerOpens int
	// WantQuarantined pins the bound turn's quarantined-record count
	// (0 skips).
	WantQuarantined int
	// RequireNoDrops asserts the bound turn skipped and quarantined zero
	// records — degraded modes armed but unused.
	RequireNoDrops bool
	// RequireFailed asserts the bound turn failed (an AllowError query
	// that must fail — the outage the recovery turns then heal from).
	RequireFailed bool
}

// Snapshot is the cumulative counter state a checkpoint evaluated
// against, kept in the result for inspection.
type Snapshot struct {
	Calls, Tokens int
	Cost          float64
	CacheSize     int
	CacheHits     int
	Coalesced     int
	Batches       int
	// SharedHits = CacheHits + Coalesced: the deterministic aggregate —
	// the split between the two depends on request timing, their sum
	// does not.
	SharedHits int
	// Retries/Hedges/BreakerOpens are the scenario resilience wrapper's
	// cumulative counters; all zero when the scenario sets no policy.
	Retries      int
	Hedges       int
	BreakerOpens int
}

// TurnResult is one turn's observed effect.
type TurnResult struct {
	Turn string   `json:"turn"`
	Kind TurnKind `json:"kind"`
	// Wall is the turn's elapsed time.
	Wall time.Duration `json:"wall_ns"`
	// Calls/Tokens/Cost are this turn's deltas of the cumulative
	// upstream counters.
	Calls  int     `json:"calls"`
	Tokens int     `json:"tokens"`
	Cost   float64 `json:"cost"`
	// SharedHits is the turn's delta of cache hits + coalesced joins.
	SharedHits int `json:"shared_hits"`
	// Rows and Scalars describe the turn's run (query/burst turns).
	Rows    int               `json:"rows"`
	Scalars map[string]string `json:"scalars,omitempty"`
	// Details maps stage name to its report detail line.
	Details map[string]string `json:"details,omitempty"`
	// Identical reports the CompareBatch outcome (nil = not compared).
	Identical *bool `json:"identical,omitempty"`
	// Rejected counts server-turn submissions refused at admission —
	// throttled (429) plus over-capacity (503).
	Rejected int `json:"rejected,omitempty"`
	// Balanced reports the server-turn ledger check: per-tenant attributed
	// spend sums exactly to the service's upstream counter (nil = not a
	// server turn).
	Balanced *bool `json:"balanced,omitempty"`
	// Skipped/Quarantined count records the turn's run dropped or set
	// aside under a degraded-mode policy.
	Skipped     int `json:"skipped,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// Failed marks an AllowError query turn that failed; Error holds the
	// failure.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CheckpointResult is one checkpoint's verdict.
type CheckpointResult struct {
	Checkpoint string `json:"checkpoint"`
	Turn       string `json:"turn"`
	Pass       bool   `json:"pass"`
	// Failures lists each violated bound, empty when Pass.
	Failures []string `json:"failures,omitempty"`
	// At is the cumulative counter state at evaluation time.
	At Snapshot `json:"at"`
}

// Result is one scenario run's full record.
type Result struct {
	ScenarioID string `json:"scenario"`
	Name       string `json:"name"`
	// Engine names what answered: "sim/<model>" or "real/<model>".
	Engine      string             `json:"engine"`
	Turns       []TurnResult       `json:"turns"`
	Checkpoints []CheckpointResult `json:"checkpoints"`
	// Passed is true when every checkpoint passed.
	Passed bool `json:"passed"`
	// Totals over the whole scenario.
	TotalCalls  int           `json:"total_calls"`
	TotalTokens int           `json:"total_tokens"`
	TotalCost   float64       `json:"total_cost"`
	SharedHits  int           `json:"shared_hits"`
	Wall        time.Duration `json:"wall_ns"`
	// AttributedCalls/AttributedTokens are the workflow.Attribution
	// ledger's totals; they must equal TotalCalls/TotalTokens — the
	// attribution-sums-to-budget invariant, pinned by the tests.
	AttributedCalls  int `json:"attributed_calls"`
	AttributedTokens int `json:"attributed_tokens"`
}

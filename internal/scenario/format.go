package scenario

import (
	"fmt"
	"strings"
	"time"
)

// Format renders one scenario result as a text report: a turn table,
// then each checkpoint's verdict, then the totals line.
func Format(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (%s) on %s\n", res.ScenarioID, res.Name, res.Engine)
	fmt.Fprintf(&b, "%-16s %-8s %8s %8s %8s %10s %6s  %s\n",
		"Turn", "Kind", "Calls", "Tokens", "Shared", "Wall", "Rows", "Notes")
	for _, tr := range res.Turns {
		var notes []string
		if tr.Identical != nil {
			notes = append(notes, fmt.Sprintf("identical=%v", *tr.Identical))
		}
		for _, k := range sortedKeys(tr.Scalars) {
			notes = append(notes, fmt.Sprintf("%s=%s", k, tr.Scalars[k]))
		}
		fmt.Fprintf(&b, "%-16s %-8s %8d %8d %8d %10s %6d  %s\n",
			tr.Turn, tr.Kind, tr.Calls, tr.Tokens, tr.SharedHits,
			tr.Wall.Round(time.Microsecond), tr.Rows, strings.Join(notes, " "))
	}
	for _, cp := range res.Checkpoints {
		if cp.Pass {
			fmt.Fprintf(&b, "checkpoint %-20s after %-16s PASS\n", cp.Checkpoint, cp.Turn)
			continue
		}
		fmt.Fprintf(&b, "checkpoint %-20s after %-16s FAIL\n", cp.Checkpoint, cp.Turn)
		for _, f := range cp.Failures {
			fmt.Fprintf(&b, "  - %s\n", f)
		}
	}
	verdict := "PASS"
	if !res.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "total: %d calls, %d tokens, $%.4f, %d shared hits, %s — %s\n",
		res.TotalCalls, res.TotalTokens, res.TotalCost, res.SharedHits,
		res.Wall.Round(time.Microsecond), verdict)
	return b.String()
}

package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/token"
)

// pinnedTotals are every pre-built scenario's deterministic whole-run
// counters on the stock sim engine. Upstream calls and tokens are exact:
// the sim oracle is deterministic per prompt, the scenarios' predicates
// sit far from the filter noise boundary (margin 1), and the shared
// cache/coalescer dedupes repeated prompts so only unique asks go
// upstream — however the timing-dependent cache-hit/coalesce split
// falls, the SharedHits sum is stable.
var pinnedTotals = map[string]struct {
	calls, tokens, sharedHits int
}{
	"cold-start":              {3, 85, 9},
	"warm-cache-replay":       {3, 85, 21},
	"mid-run-ingestion":       {3, 85, 17},
	"burst-load":              {3, 85, 45},
	"overlap-ingestion":       {12, 578, 12},
	"adaptive-replan-drift":   {3, 86, 16},
	"declserver-multi-tenant": {3, 85, 93},
	"fault-burst-recovery":    {6, 173, 49},
	"breaker-open-recover":    {4, 114, 37},
}

// TestPrebuiltScenariosPass runs every pre-built scenario on the default
// sim harness: all checkpoints must pass, the whole-run counters must
// match the pinned values, and the attribution ledger must sum to the
// upstream truth (the sums-to-budget invariant for scenario runs).
func TestPrebuiltScenariosPass(t *testing.T) {
	if len(List()) < 6 {
		t.Fatalf("only %d pre-built scenarios, want at least 6", len(List()))
	}
	h := New(Options{})
	for _, sc := range List() {
		sc := sc
		t.Run(sc.ID, func(t *testing.T) {
			res, err := h.Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed {
				for _, cp := range res.Checkpoints {
					if !cp.Pass {
						t.Errorf("checkpoint %q after %q failed: %v", cp.Checkpoint, cp.Turn, cp.Failures)
					}
				}
				t.Fatal("scenario did not pass")
			}
			want, ok := pinnedTotals[sc.ID]
			if !ok {
				t.Fatalf("scenario %q has no pinned totals — add it to pinnedTotals", sc.ID)
			}
			if res.TotalCalls != want.calls || res.TotalTokens != want.tokens || res.SharedHits != want.sharedHits {
				t.Fatalf("totals {calls %d, tokens %d, shared %d} differ from pinned {%d, %d, %d}",
					res.TotalCalls, res.TotalTokens, res.SharedHits,
					want.calls, want.tokens, want.sharedHits)
			}
			if res.AttributedCalls != res.TotalCalls || res.AttributedTokens != res.TotalTokens {
				t.Fatalf("attribution ledger {calls %d, tokens %d} does not sum to the upstream counters {%d, %d}",
					res.AttributedCalls, res.AttributedTokens, res.TotalCalls, res.TotalTokens)
			}
			if res.Engine != "sim/"+DefaultModelName {
				t.Fatalf("engine = %q, want %q", res.Engine, "sim/"+DefaultModelName)
			}
		})
	}
}

// TestScenarioDeterministic runs the standing-query scenario twice on
// fresh harnesses: every pinned observable — turn deltas included — must
// repeat exactly.
func TestScenarioDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := New(Options{}).Run(context.Background(), MidRunIngestion())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCalls != b.TotalCalls || a.TotalTokens != b.TotalTokens || a.SharedHits != b.SharedHits {
		t.Fatalf("totals differ between runs: {%d %d %d} vs {%d %d %d}",
			a.TotalCalls, a.TotalTokens, a.SharedHits, b.TotalCalls, b.TotalTokens, b.SharedHits)
	}
	for i := range a.Turns {
		at, bt := a.Turns[i], b.Turns[i]
		if at.Calls != bt.Calls || at.Tokens != bt.Tokens || at.SharedHits != bt.SharedHits || at.Rows != bt.Rows {
			t.Fatalf("turn %q deltas differ between runs: %+v vs %+v", at.Turn, at, bt)
		}
	}
}

// TestCheckpointFailureSurfaced runs a scenario built to fail: the
// result must carry Passed false and name every violated bound, without
// Run returning an error — checkpoint verdicts are data, not failures.
func TestCheckpointFailureSurfaced(t *testing.T) {
	sc := ColdStart()
	sc.Checkpoints = []Checkpoint{{
		Name: "impossible", AfterTurn: "first-query",
		MaxCalls: 1, WantRows: 99,
		WantScalars:      map[string]string{"tally": "none"},
		RequireIdentical: true,
		RequireDetail:    "no such detail",
	}}
	res, err := New(Options{}).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("impossible checkpoint passed")
	}
	cp := res.Checkpoints[0]
	if cp.Pass || len(cp.Failures) != 5 {
		t.Fatalf("want 5 named failures, got %d: %v", len(cp.Failures), cp.Failures)
	}
	joined := strings.Join(cp.Failures, "\n")
	for _, frag := range []string{"above ceiling 1", "want 99", `want "none"`, "CompareBatch", "no such detail"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("failure list lacks %q:\n%s", frag, joined)
		}
	}
}

// TestFreeTurnViolation asserts the FreeTurn bound actually bites: a
// replay over a changed table re-asks new prompts upstream, so the
// warm-cache expectation must fail and say how many calls the turn spent.
func TestFreeTurnViolation(t *testing.T) {
	sc := WarmCacheReplay()
	// Ingest a record with an unseen kind between the passes: the replay
	// is no longer free.
	sc.Turns = []Turn{
		sc.Turns[0],
		{Name: "surprise", Kind: TurnIngest, Records: []dataset.Record{rec("new-00", "kind", "widget")}},
		sc.Turns[2],
	}
	res, err := New(Options{}).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("replay over a grown table reported as free")
	}
	var found bool
	for _, cp := range res.Checkpoints {
		for _, f := range cp.Failures {
			if strings.Contains(f, "free turn") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no failure names the free-turn violation: %+v", res.Checkpoints)
	}
}

// TestValidateRejectsMalformed covers the harness's scenario validation.
func TestValidateRejectsMalformed(t *testing.T) {
	h := New(Options{})
	cases := []struct {
		name string
		mut  func(*Scenario)
		frag string
	}{
		{"no-id", func(sc *Scenario) { sc.ID = "" }, "missing ID"},
		{"no-turns", func(sc *Scenario) { sc.Turns = nil }, "no turns"},
		{"unnamed-turn", func(sc *Scenario) { sc.Turns[0].Name = "" }, "has no name"},
		{"dup-turn", func(sc *Scenario) {
			sc.Turns = append(sc.Turns, Turn{Name: sc.Turns[0].Name, Kind: TurnIdle})
		}, "duplicate turn name"},
		{"bad-kind", func(sc *Scenario) { sc.Turns[0].Kind = "meander" }, `unknown kind "meander"`},
		{"orphan-checkpoint", func(sc *Scenario) {
			sc.Checkpoints[0].AfterTurn = "no-such-turn"
		}, "unknown turn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := ColdStart()
			tc.mut(sc)
			_, err := h.Run(context.Background(), sc)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("want error containing %q, got %v", tc.frag, err)
			}
		})
	}
}

// TestLatencySwitchInstalls pins the latency turn's effect end to end: a
// query under an installed 5ms per-call latency must take at least that
// long, and clearing the latency must restore fast (cache-free) calls.
func TestLatencySwitchInstalls(t *testing.T) {
	sc := ColdStart()
	sc.ID, sc.Name = "latency-probe", "Latency probe"
	sc.Turns = []Turn{
		{Name: "slow", Kind: TurnLatency, Latency: 5 * time.Millisecond},
		{Name: "first-query", Kind: TurnQuery},
	}
	sc.Checkpoints = []Checkpoint{{
		Name: "latency-bites", AfterTurn: "first-query",
		MinTurnWall: 5 * time.Millisecond,
		MinCalls:    3, MaxCalls: 3, WantRows: 4,
	}}
	res, err := New(Options{}).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("latency scenario failed: %+v", res.Checkpoints)
	}
}

// TestRealEngineEscapeHatch runs a scenario through Options.Model: the
// harness must use the supplied model (engine tag "real/...") and leave
// the sim predicates unused.
func TestRealEngineEscapeHatch(t *testing.T) {
	model := llm.Func{ModelName: "always-yes", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "Yes", Model: "always-yes",
			Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1}}, nil
	}}
	sc := ColdStart()
	sc.Checkpoints = nil // the pinned sim counters do not apply
	res, err := New(Options{Model: model}).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "real/always-yes" {
		t.Fatalf("engine = %q, want real/always-yes", res.Engine)
	}
	// An always-yes model keeps all 8 records.
	if res.Turns[0].Rows != 8 {
		t.Fatalf("always-yes engine kept %d rows, want 8", res.Turns[0].Rows)
	}
}

package scenario

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/resil"
	"repro/internal/server"
	"repro/internal/workflow"
)

// DefaultModelName is the sim oracle profile a harness without options
// runs against.
const DefaultModelName = "sim-gpt-3.5-turbo"

// Options configure a Harness.
type Options struct {
	// Model is the real-engine escape hatch: a non-nil model answers every
	// unit task instead of the deterministic sim oracle. Checkpoints that
	// pin exact counters or require batch identity generally only hold on
	// the sim engine; real-engine runs still evaluate them and report the
	// failures.
	Model llm.Model
	// ModelName picks the sim oracle profile when Model is nil (default
	// DefaultModelName).
	ModelName string
}

// Harness runs scenarios against one engine configuration.
type Harness struct{ opts Options }

// New returns a harness; the zero Options run the deterministic sim
// engine.
func New(opts Options) *Harness { return &Harness{opts: opts} }

// modelBox gives atomic.Value the one concrete type it requires even as
// the boxed model alternates between the base and a latency wrapper.
type modelBox struct{ m llm.Model }

// switchModel is the latency-injection point: a model whose delegate can
// be swapped atomically between turns while runs are in flight.
type switchModel struct{ cur atomic.Value }

func newSwitchModel(m llm.Model) *switchModel {
	s := &switchModel{}
	s.cur.Store(modelBox{m})
	return s
}

func (s *switchModel) install(m llm.Model) { s.cur.Store(modelBox{m}) }

func (s *switchModel) Name() string { return s.cur.Load().(modelBox).m.Name() }

func (s *switchModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return s.cur.Load().(modelBox).m.Complete(ctx, req)
}

// session is one scenario run's persistent state: the engine stack and
// the accumulated source table. The execution layer, index registry, and
// attribution ledger live across turns — that persistence is what the
// warm-cache and burst scenarios measure.
type session struct {
	base     llm.Model
	sw       *switchModel
	resil    *resil.Model
	counting *llm.CountingModel
	exec     *workflow.ExecLayer
	registry *embed.Registry
	attr     *workflow.Attribution
	source   []dataset.Record
	engine   string
	// srv is the session's declserver core, built lazily by the first
	// server turn and reused by later ones — the long-running service
	// whose warm substrate spans tenant waves.
	srv *server.Server
}

// snapshot reads the cumulative counters: upstream truth from the
// counting model (below every cache), dollars from the attribution
// ledger, and cache/coalescer effects from the shared layer.
func (s *session) snapshot() Snapshot {
	total := s.counting.Total()
	_, cost := s.attr.Total()
	st := s.exec.Stats()
	snap := Snapshot{
		Calls: total.Calls, Tokens: total.Total(), Cost: cost,
		CacheSize: st.CacheSize, CacheHits: st.CacheHits,
		Coalesced: st.Coalesced, Batches: st.Batches,
		SharedHits: st.CacheHits + st.Coalesced,
	}
	if s.resil != nil {
		rs := s.resil.Stats()
		snap.Retries, snap.Hedges, snap.BreakerOpens = rs.Retries, rs.Hedges, rs.BreakerOpens
	}
	return snap
}

// tables assembles one run's table map: the session's accumulated source
// plus the scenario's static side tables.
func (s *session) tables(sc *Scenario) map[string][]dataset.Record {
	tables := make(map[string][]dataset.Record, len(sc.Tables)+1)
	for k, v := range sc.Tables {
		tables[k] = v
	}
	tables["source"] = s.source
	return tables
}

// execConfig binds the scenario's knobs to the session's engine stack.
func (s *session) execConfig(k ExecKnobs) pipeline.ExecConfig {
	return pipeline.ExecConfig{
		Model: s.counting, Exec: s.exec, Registry: s.registry, Attribution: s.attr,
		Batch: k.Batch, Parallelism: k.Parallelism, Chunk: k.Chunk,
		Adaptive: k.Adaptive, ChunkMin: k.ChunkMin, ChunkMax: k.ChunkMax,
		Materialized: k.Materialized, OnRecordError: k.OnRecordError,
	}
}

// newSession builds the engine stack: base model (sim oracle with the
// scenario's predicates, or the escape-hatch model), the latency/fault
// switch, the scenario's resilience wrapper when it sets a policy, and
// the upstream call counter — which is the model the pipeline engine
// sees, so cache hits and coalesced joins never reach it, and retried
// attempts (below the counter) never inflate it.
func (h *Harness) newSession(sc *Scenario) *session {
	base, engine := h.baseModel(sc)
	sw := newSwitchModel(base)
	s := &session{
		base: base, sw: sw,
		exec: workflow.NewExecLayer(), registry: embed.NewRegistry(),
		attr:   workflow.NewAttribution(),
		source: append([]dataset.Record(nil), sc.Source...),
		engine: engine,
	}
	var inner llm.Model = sw
	if sc.Resilience != nil {
		s.resil = resil.Wrap(sw, *sc.Resilience)
		inner = s.resil
	}
	s.counting = llm.NewCounting(inner)
	return s
}

// baseModel resolves the unwrapped engine: Options.Model, or a fresh sim
// oracle with the scenario's predicates registered. Fresh per call on the
// sim path, so reference (CompareBatch) runs never share mutable state
// with the session.
func (h *Harness) baseModel(sc *Scenario) (llm.Model, string) {
	if h.opts.Model != nil {
		return h.opts.Model, "real/" + h.opts.Model.Name()
	}
	name := h.opts.ModelName
	if name == "" {
		name = DefaultModelName
	}
	oracle := sim.NewNamed(name)
	for _, p := range sc.Predicates {
		oracle.RegisterPredicate(p)
	}
	return oracle, "sim/" + name
}

// Run executes the scenario turn by turn, evaluating each checkpoint
// after the turn it binds to. A turn error aborts the run; checkpoint
// failures do not — they are the scenario's verdict, reported in the
// Result with Passed false.
func (h *Harness) Run(ctx context.Context, sc *Scenario) (*Result, error) {
	if err := validate(sc); err != nil {
		return nil, err
	}
	s := h.newSession(sc)
	res := &Result{ScenarioID: sc.ID, Name: sc.Name, Engine: s.engine, Passed: true}
	start := time.Now()
	for _, turn := range sc.Turns {
		tr, err := h.runTurn(ctx, sc, s, turn)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: turn %q: %w", sc.ID, turn.Name, err)
		}
		res.Turns = append(res.Turns, tr)
		at := s.snapshot()
		for _, cp := range sc.Checkpoints {
			if cp.AfterTurn != turn.Name {
				continue
			}
			cr := evalCheckpoint(cp, at, tr)
			res.Checkpoints = append(res.Checkpoints, cr)
			if !cr.Pass {
				res.Passed = false
			}
		}
	}
	final := s.snapshot()
	res.TotalCalls, res.TotalTokens, res.TotalCost = final.Calls, final.Tokens, final.Cost
	res.SharedHits = final.SharedHits
	res.Wall = time.Since(start)
	u, _ := s.attr.Total()
	res.AttributedCalls, res.AttributedTokens = u.Calls, u.Total()
	return res, nil
}

// validate rejects malformed scenarios before any engine work: missing
// spec or turns, duplicate or unnamed turns, checkpoints bound to
// unknown turns, and turn kinds the harness does not know.
func validate(sc *Scenario) error {
	if sc.ID == "" {
		return fmt.Errorf("scenario: missing ID")
	}
	if len(sc.Turns) == 0 {
		return fmt.Errorf("scenario %s: no turns", sc.ID)
	}
	names := make(map[string]bool, len(sc.Turns))
	for i, t := range sc.Turns {
		if t.Name == "" {
			return fmt.Errorf("scenario %s: turn %d has no name", sc.ID, i)
		}
		if names[t.Name] {
			return fmt.Errorf("scenario %s: duplicate turn name %q", sc.ID, t.Name)
		}
		names[t.Name] = true
		switch t.Kind {
		case TurnIngest, TurnQuery, TurnBurst, TurnLatency, TurnIdle, TurnFaults:
		case TurnServer:
			if t.Server == nil || len(t.Server.Waves) == 0 {
				return fmt.Errorf("scenario %s: server turn %q has no waves", sc.ID, t.Name)
			}
		default:
			return fmt.Errorf("scenario %s: turn %q has unknown kind %q", sc.ID, t.Name, t.Kind)
		}
	}
	for _, cp := range sc.Checkpoints {
		if !names[cp.AfterTurn] {
			return fmt.Errorf("scenario %s: checkpoint %q binds to unknown turn %q", sc.ID, cp.Name, cp.AfterTurn)
		}
	}
	return nil
}

// runTurn executes one turn and measures its counter deltas and wall
// clock.
func (h *Harness) runTurn(ctx context.Context, sc *Scenario, s *session, turn Turn) (TurnResult, error) {
	before := s.snapshot()
	start := time.Now()
	tr := TurnResult{Turn: turn.Name, Kind: turn.Kind}

	switch turn.Kind {
	case TurnIngest:
		s.source = append(s.source, turn.Records...)

	case TurnLatency:
		if turn.Latency > 0 {
			s.sw.install(llm.WithLatency(s.base, turn.Latency))
		} else {
			s.sw.install(s.base)
		}

	case TurnFaults:
		if turn.Faults != nil && !turn.Faults.Zero() {
			s.sw.install(llm.WithFaults(s.base, *turn.Faults))
		} else {
			s.sw.install(s.base)
		}

	case TurnIdle:
		select {
		case <-time.After(turn.Pause):
		case <-ctx.Done():
			return tr, ctx.Err()
		}

	case TurnQuery:
		res, err := h.runQuery(ctx, sc, s, turn)
		switch {
		case err != nil && turn.AllowError && ctx.Err() == nil:
			// An expected outage: record it and keep the scenario alive so
			// later turns can demonstrate recovery. A cancelled context is
			// never "expected" — that still aborts.
			tr.Failed, tr.Error = true, err.Error()
		case err != nil:
			return tr, err
		default:
			h.describeRun(sc, turn, res, &tr)
			if turn.CompareBatch {
				identical, err := h.compareBatch(ctx, sc, s, turn, res)
				if err != nil {
					return tr, fmt.Errorf("batch reference: %w", err)
				}
				tr.Identical = &identical
			}
		}

	case TurnBurst:
		res, err := h.runBurst(ctx, sc, s, turn)
		if err != nil {
			return tr, err
		}
		h.describeRun(sc, turn, res, &tr)

	case TurnServer:
		if err := h.runServer(ctx, sc, s, turn, &tr); err != nil {
			return tr, err
		}
	}

	tr.Wall = time.Since(start)
	after := s.snapshot()
	tr.Calls = after.Calls - before.Calls
	tr.Tokens = after.Tokens - before.Tokens
	tr.Cost = after.Cost - before.Cost
	tr.SharedHits = after.SharedHits - before.SharedHits
	return tr, nil
}

// turnSpec resolves which pipeline a query/burst turn runs.
func turnSpec(sc *Scenario, turn Turn) pipeline.Spec {
	if turn.Spec != nil {
		return *turn.Spec
	}
	return sc.Spec
}

// describeRun fills the turn result's view of one pipeline run: the
// final stage's width, scalars, and per-stage details.
func (h *Harness) describeRun(sc *Scenario, turn Turn, res *pipeline.Result, tr *TurnResult) {
	spec := turnSpec(sc, turn)
	last := spec.Stages[len(spec.Stages)-1].Name
	tr.Rows = len(res.Tables[last])
	tr.Skipped, tr.Quarantined = res.Skipped, res.Quarantined
	if len(res.Scalars) > 0 {
		tr.Scalars = res.Scalars
	}
	details := make(map[string]string, len(res.Stages))
	for _, st := range res.Stages {
		if st.Detail != "" {
			details[st.Name] = st.Detail
		}
	}
	if len(details) > 0 {
		tr.Details = details
	}
}

// runQuery executes one pipeline run on the session engine. With Feed
// waves it runs as a standing query: a goroutine hands each wave to the
// executor over an unbuffered channel while the run is already consuming,
// and the fed records join the session table once the run succeeds.
func (h *Harness) runQuery(ctx context.Context, sc *Scenario, s *session, turn Turn) (*pipeline.Result, error) {
	p, err := pipeline.Compile(turnSpec(sc, turn))
	if err != nil {
		return nil, err
	}
	cfg := s.execConfig(sc.Exec)
	if len(turn.Feed) > 0 {
		feed := make(chan dataset.Record)
		go func() {
			defer close(feed)
			for _, wave := range turn.Feed {
				for _, r := range wave {
					select {
					case feed <- r:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
		cfg.Feed = feed
	}
	res, err := p.Run(ctx, cfg, s.tables(sc))
	if err != nil {
		return nil, err
	}
	for _, wave := range turn.Feed {
		s.source = append(s.source, wave...)
	}
	return res, nil
}

// runBurst fires Repeat concurrent copies of the query at the shared
// engine. At temperature 0 every copy computes the same answer, so the
// run reports the first result; the interesting outcome is the counter
// movement — the cache and coalescer should absorb all but one copy's
// upstream calls.
func (h *Harness) runBurst(ctx context.Context, sc *Scenario, s *session, turn Turn) (*pipeline.Result, error) {
	n := turn.Repeat
	if n < 2 {
		n = 2
	}
	spec := turnSpec(sc, turn)
	results := make([]*pipeline.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := pipeline.Compile(spec)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = p.Run(ctx, s.execConfig(sc.Exec), s.tables(sc))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// sessionServer returns the session's declserver core, building it on the
// first server turn: the service runs on the session's own engine stack —
// the counting model as its upstream (so the session snapshot stays the
// single source of truth for calls and tokens), the shared exec layer,
// registry, and the session ledger as the per-tenant attribution. Every
// job the server runs uses a fresh per-run stage ledger internally, so the
// session ledger records each genuine upstream call exactly once, under
// its tenant label — which keeps the harness's attributed==total invariant
// intact for server scenarios.
func (s *session) sessionServer(sc *Scenario, load *ServerLoad) *server.Server {
	if s.srv != nil {
		return s.srv
	}
	tenants := make(map[string]server.TenantLimits, len(load.Waves))
	for _, w := range load.Waves {
		rate := w.Rate
		if rate <= 0 {
			// Effectively no refill: the burst alone decides admission, so
			// the rejected count is deterministic whatever the turn's wall
			// clock.
			rate = 1e-9
		}
		tenants[w.Tenant] = server.TenantLimits{Rate: rate, Burst: w.Burst}
	}
	s.srv = server.New(server.Config{
		Model:         s.counting,
		Exec:          s.exec,
		Registry:      s.registry,
		Ledger:        s.attr,
		MaxConcurrent: load.MaxConcurrent,
		MaxQueue:      load.MaxQueue,
		Tenants:       tenants,
		Batch:         sc.Exec.Batch,
		Parallelism:   sc.Exec.Parallelism,
		Chunk:         sc.Exec.Chunk,
		Adaptive:      sc.Exec.Adaptive,
	})
	return s.srv
}

// runServer drives one server turn: every wave's submissions fire
// concurrently at the session's declserver, each a synchronous submit of
// the turn's spec over the session tables. Admission refusals (throttled
// or over capacity) are counted, not fatal; any other failure aborts the
// turn. The turn result carries the refusal count, the ledger-balance
// verdict, and the first completed job's rows and scalars (temperature 0:
// all completed jobs agree).
func (h *Harness) runServer(ctx context.Context, sc *Scenario, s *session, turn Turn, tr *TurnResult) error {
	srv := s.sessionServer(sc, turn.Server)
	spec := turnSpec(sc, turn)
	tables := s.tables(sc)

	var total int
	for _, w := range turn.Server.Waves {
		total += w.Submissions
	}
	statuses := make([]*server.JobStatus, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	i := 0
	for _, w := range turn.Server.Waves {
		for k := 0; k < w.Submissions; k++ {
			wg.Add(1)
			go func(i int, tenant string) {
				defer wg.Done()
				statuses[i], errs[i] = srv.Submit(ctx, server.SubmitRequest{
					Tenant: tenant, Spec: spec, Tables: tables,
				})
			}(i, w.Tenant)
			i++
		}
	}
	wg.Wait()

	for i, err := range errs {
		switch {
		case err == nil:
			st := statuses[i]
			if st.State != server.JobDone || st.Result == nil {
				return fmt.Errorf("submission %d ended %s: %s", i, st.State, st.Error)
			}
			if tr.Rows == 0 {
				last := spec.Stages[len(spec.Stages)-1].Name
				tr.Rows = len(st.Result.Tables[last])
				if len(st.Result.Scalars) > 0 {
					tr.Scalars = st.Result.Scalars
				}
			}
		case errors.Is(err, server.ErrRateLimited), errors.Is(err, server.ErrBusy):
			tr.Rejected++
		default:
			return fmt.Errorf("submission %d: %w", i, err)
		}
	}
	_, _, ok := srv.Balanced()
	tr.Balanced = &ok
	return nil
}

// compareBatch re-runs the turn's spec over the session's final record
// set (static table plus everything fed) on a completely fresh engine —
// new model instance, empty cache, empty ledger, no latency — and
// reports whether the final table and scalars are byte-identical to the
// standing-query run. This is the harness-level restatement of the
// executor's standing-query guarantee.
func (h *Harness) compareBatch(ctx context.Context, sc *Scenario, s *session, turn Turn, got *pipeline.Result) (bool, error) {
	p, err := pipeline.Compile(turnSpec(sc, turn))
	if err != nil {
		return false, err
	}
	base, _ := h.baseModel(sc)
	cfg := s.execConfig(sc.Exec)
	cfg.Model, cfg.Exec, cfg.Registry, cfg.Attribution = base, nil, nil, nil
	ref, err := p.Run(ctx, cfg, s.tables(sc))
	if err != nil {
		return false, err
	}
	spec := turnSpec(sc, turn)
	last := spec.Stages[len(spec.Stages)-1].Name
	return reflect.DeepEqual(got.Tables[last], ref.Tables[last]) &&
		reflect.DeepEqual(got.Scalars, ref.Scalars), nil
}

// evalCheckpoint scores one checkpoint against the cumulative snapshot
// and its turn's result. Zero-valued bounds are skipped.
func evalCheckpoint(cp Checkpoint, at Snapshot, tr TurnResult) CheckpointResult {
	var fails []string
	add := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	if cp.MinCalls > 0 && at.Calls < cp.MinCalls {
		add("cumulative calls %d below floor %d", at.Calls, cp.MinCalls)
	}
	if cp.MaxCalls > 0 && at.Calls > cp.MaxCalls {
		add("cumulative calls %d above ceiling %d", at.Calls, cp.MaxCalls)
	}
	if cp.MaxCost > 0 && at.Cost > cp.MaxCost {
		add("cumulative cost $%.4f above ceiling $%.4f", at.Cost, cp.MaxCost)
	}
	if cp.MinSharedHits > 0 && at.SharedHits < cp.MinSharedHits {
		add("shared hits %d below floor %d", at.SharedHits, cp.MinSharedHits)
	}
	if cp.FreeTurn && tr.Calls != 0 {
		add("turn spent %d upstream calls, want 0 (free turn)", tr.Calls)
	}
	if cp.MinTurnWall > 0 && tr.Wall < cp.MinTurnWall {
		add("turn wall %s below floor %s", tr.Wall, cp.MinTurnWall)
	}
	if cp.MaxTurnWall > 0 && tr.Wall > cp.MaxTurnWall {
		add("turn wall %s above ceiling %s", tr.Wall, cp.MaxTurnWall)
	}
	if cp.WantRows > 0 && tr.Rows != cp.WantRows {
		add("final table has %d rows, want %d", tr.Rows, cp.WantRows)
	}
	for _, stage := range sortedKeys(cp.WantScalars) {
		want := cp.WantScalars[stage]
		if got := tr.Scalars[stage]; got != want {
			add("scalar %q = %q, want %q", stage, got, want)
		}
	}
	if cp.RequireIdentical {
		switch {
		case tr.Identical == nil:
			add("turn ran no batch comparison (set Turn.CompareBatch)")
		case !*tr.Identical:
			add("standing-query results differ from the batch reference")
		}
	}
	if cp.RequireDetail != "" && !detailContains(tr.Details, cp.RequireDetail) {
		add("no stage detail contains %q (details: %v)", cp.RequireDetail, tr.Details)
	}
	if cp.WantRejected > 0 && tr.Rejected != cp.WantRejected {
		add("turn rejected %d submissions, want %d", tr.Rejected, cp.WantRejected)
	}
	if cp.RequireBalanced {
		switch {
		case tr.Balanced == nil:
			add("turn ran no ledger-balance check (not a server turn)")
		case !*tr.Balanced:
			add("per-tenant ledger does not sum to the upstream counter")
		}
	}
	if cp.WantRetries > 0 && at.Retries != cp.WantRetries {
		add("cumulative retries %d, want %d", at.Retries, cp.WantRetries)
	}
	if cp.MinBreakerOpens > 0 && at.BreakerOpens < cp.MinBreakerOpens {
		add("breaker opened %d times, below floor %d", at.BreakerOpens, cp.MinBreakerOpens)
	}
	if cp.WantQuarantined > 0 && tr.Quarantined != cp.WantQuarantined {
		add("turn quarantined %d records, want %d", tr.Quarantined, cp.WantQuarantined)
	}
	if cp.RequireNoDrops && (tr.Skipped != 0 || tr.Quarantined != 0) {
		add("turn dropped records (skipped %d, quarantined %d), want none", tr.Skipped, tr.Quarantined)
	}
	if cp.RequireFailed && !tr.Failed {
		add("turn succeeded, want an expected failure (set Turn.AllowError)")
	}
	return CheckpointResult{
		Checkpoint: cp.Name, Turn: cp.AfterTurn,
		Pass: len(fails) == 0, Failures: fails, At: at,
	}
}

func detailContains(details map[string]string, sub string) bool {
	for _, d := range details {
		if strings.Contains(d, sub) {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

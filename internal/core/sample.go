package core

import (
	"context"

	"repro/internal/token"
)

// SelectivityEstimate is the outcome of EstimateSelectivity: the measured
// keep behaviour of a filter predicate on a deterministic sample.
type SelectivityEstimate struct {
	// Sampled and Kept count the probed items and how many passed.
	Sampled, Kept int
	// Fraction is Kept / Sampled, the raw measured selectivity.
	Fraction float64
	// Usage is the probe's token spend (cache hits are free, so re-probing
	// the same sample through a shared execution layer costs nothing).
	Usage token.Usage
}

// EstimateSelectivity measures a filter's keep fraction on a
// deterministic sample of at most sample items instead of trusting a spec
// hint — the cost-model entry point the pipeline optimizer uses to order
// hintless filters. The sample is evenly strided across the items, so the
// same inputs always probe the same records; run through an engine with a
// shared execution layer, the probe's unit tasks land in the same cache
// the real filter run reads, making the measurement nearly free overall.
func (e *Engine) EstimateSelectivity(ctx context.Context, req FilterRequest, sample int) (SelectivityEstimate, error) {
	if sample <= 0 {
		return SelectivityEstimate{}, badRequestf("sample size %d, need > 0", sample)
	}
	if len(req.Items) == 0 {
		return SelectivityEstimate{}, badRequestf("no items to probe")
	}
	probe := req
	probe.Items = strideSample(req.Items, sample)
	res, err := e.Filter(ctx, probe)
	if err != nil {
		return SelectivityEstimate{}, err
	}
	est := SelectivityEstimate{Sampled: len(probe.Items), Usage: res.Usage}
	for _, keep := range res.Keep {
		if keep {
			est.Kept++
		}
	}
	est.Fraction = float64(est.Kept) / float64(est.Sampled)
	return est, nil
}

// RefineSelectivity blends a prior keep-fraction estimate with live
// observations: the prior counts as priorWeight pseudo-records, and the
// rule-of-succession +1/+2 keeps the blend strictly inside (0, 1) however
// lopsided the evidence. The pipeline's adaptive runtime uses it to let
// observed per-chunk keep rates refine the optimizer's probed (or hinted)
// estimates as a run progresses: with nothing observed the prior wins;
// as records flow through, the measurement dominates.
func RefineSelectivity(prior float64, priorWeight, seen, kept int) float64 {
	if prior <= 0 || prior > 1 {
		prior = 0.5
	}
	if priorWeight < 0 {
		priorWeight = 0
	}
	return (float64(kept) + prior*float64(priorWeight) + 1) /
		(float64(seen) + float64(priorWeight) + 2)
}

// strideSample picks at most k items spread evenly across the slice —
// deterministic (no RNG), order-preserving, and covering the full range
// rather than a prefix, so generator artifacts at either end don't skew
// the estimate.
func strideSample(items []string, k int) []string {
	if len(items) <= k {
		return items
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, items[i*len(items)/k])
	}
	return out
}

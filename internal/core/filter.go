package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// FilterStrategy selects how per-item predicate checks are answered.
type FilterStrategy string

// Filter strategies (the paper's filter primitive plus the Section 3.5
// quality-control policies).
const (
	// FilterPerItem asks the model once per item.
	FilterPerItem FilterStrategy = "per-item"
	// FilterMajority samples each item Votes times at temperature and
	// takes the majority — fixed-cost self-consistency.
	FilterMajority FilterStrategy = "majority"
	// FilterSequential uses a CrowdScreen-style policy: sample until one
	// answer leads by Margin or MaxAsks is reached — adaptive cost,
	// spending only on contested items.
	FilterSequential FilterStrategy = "sequential"
)

// FilterRequest asks which items satisfy a predicate.
type FilterRequest struct {
	// Items are the data items to test.
	Items []string
	// Predicate is the condition in natural language.
	Predicate string
	// Strategy selects the policy; default FilterPerItem.
	Strategy FilterStrategy
	// Votes is the sample count for FilterMajority (default 5).
	Votes int
	// MaxAsks and Margin parameterise FilterSequential (defaults 7, 2).
	MaxAsks int
	Margin  int
	// Temperature for repeated sampling (default 0.7).
	Temperature float64
}

// FilterResult is the outcome of Filter.
type FilterResult struct {
	// Keep holds one decision per item, index-aligned.
	Keep []bool
	// Asks counts total model samples issued.
	Asks int
	// Usage is the total token spend.
	Usage token.Usage
}

// Filter tests every item against the predicate.
func (e *Engine) Filter(ctx context.Context, req FilterRequest) (FilterResult, error) {
	if len(req.Items) == 0 {
		return FilterResult{}, badRequestf("no items to filter")
	}
	if req.Predicate == "" {
		return FilterResult{}, badRequestf("empty predicate")
	}
	if req.Strategy == "" {
		req.Strategy = FilterPerItem
	}
	if req.Votes == 0 {
		req.Votes = 5
	}
	if req.MaxAsks == 0 {
		req.MaxAsks = 7
	}
	if req.Margin == 0 {
		req.Margin = 2
	}
	if req.Temperature == 0 {
		req.Temperature = 0.7
	}
	// Per-item checks are homogeneous temperature-0 unit tasks — the
	// batchable shape. The sampling strategies re-roll with per-ask seeds,
	// which would never share an envelope, so they skip the batcher.
	s := e.sessionWith(req.Strategy == FilterPerItem)
	res := FilterResult{Keep: make([]bool, len(req.Items))}
	answers, err := e.mapIdx(ctx, len(req.Items), func(ctx context.Context, i int) (string, error) {
		p := prompt.FilterItem(req.Items[i], req.Predicate)
		var (
			keep bool
			asks int
			err  error
		)
		switch req.Strategy {
		case FilterPerItem:
			keep, err = quality.AskWithRetry(ctx, s.model, p, prompt.ParseYesNo, e.retries)
			asks = 1
		case FilterMajority:
			var yes, no int
			keep, yes, no, err = quality.MajorityYesNo(ctx, s.model, p, req.Votes, req.Temperature)
			asks = yes + no
		case FilterSequential:
			keep, asks, err = quality.SequentialYesNo(ctx, s.model, p, req.MaxAsks, req.Margin, req.Temperature)
		default:
			return "", badRequestf("unknown filter strategy %q", req.Strategy)
		}
		if err != nil {
			return "", err
		}
		if keep {
			return fmt.Sprintf("Y%d", asks), nil
		}
		return fmt.Sprintf("N%d", asks), nil
	})
	if err != nil {
		return FilterResult{}, fmt.Errorf("filter: %w", err)
	}
	for i, a := range answers {
		res.Keep[i] = a[0] == 'Y'
		var asks int
		fmt.Sscanf(a[1:], "%d", &asks)
		res.Asks += asks
	}
	res.Usage = s.usage()
	return res, nil
}

// CountStrategy selects how the Count operator estimates.
type CountStrategy string

// Count strategies (Marcus et al.'s counting task types, Section 3.1).
const (
	// CountPerItem checks every item individually — exact modulo
	// per-item noise, O(n) calls.
	CountPerItem CountStrategy = "per-item"
	// CountEyeball shows the model whole batches and asks for a
	// percentage estimate — O(n / batch) calls, noisier.
	CountEyeball CountStrategy = "eyeball"
)

// CountRequest asks how many items satisfy a predicate.
type CountRequest struct {
	Items     []string
	Predicate string
	// Strategy selects the decomposition; default CountEyeball.
	Strategy CountStrategy
	// BatchSize is items per eyeball prompt (default 20).
	BatchSize int
}

// CountResult is the outcome of Count.
type CountResult struct {
	// Count is the estimated number of items satisfying the predicate.
	Count int
	// Fraction is Count / len(Items).
	Fraction float64
	// Usage is the total token spend.
	Usage token.Usage
}

// Count estimates how many items satisfy the predicate.
func (e *Engine) Count(ctx context.Context, req CountRequest) (CountResult, error) {
	if len(req.Items) == 0 {
		return CountResult{}, badRequestf("no items to count")
	}
	if req.Predicate == "" {
		return CountResult{}, badRequestf("empty predicate")
	}
	if req.Strategy == "" {
		req.Strategy = CountEyeball
	}
	if req.BatchSize == 0 {
		req.BatchSize = 20
	}
	s := e.newSession()
	switch req.Strategy {
	case CountPerItem:
		fr, err := e.Filter(ctx, FilterRequest{Items: req.Items, Predicate: req.Predicate, Strategy: FilterPerItem})
		if err != nil {
			return CountResult{}, err
		}
		n := 0
		for _, k := range fr.Keep {
			if k {
				n++
			}
		}
		return CountResult{
			Count:    n,
			Fraction: float64(n) / float64(len(req.Items)),
			Usage:    fr.Usage,
		}, nil
	case CountEyeball:
		var batches [][]string
		for start := 0; start < len(req.Items); start += req.BatchSize {
			end := start + req.BatchSize
			if end > len(req.Items) {
				end = len(req.Items)
			}
			batches = append(batches, req.Items[start:end])
		}
		fracs, err := e.mapIdx(ctx, len(batches), func(ctx context.Context, i int) (string, error) {
			f, err := quality.AskWithRetry(ctx, s.model, prompt.CountBatch(batches[i], req.Predicate),
				prompt.ParsePercent, e.retries)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%f", f), nil
		})
		if err != nil {
			return CountResult{}, fmt.Errorf("eyeball count: %w", err)
		}
		total := 0.0
		for i, fs := range fracs {
			var f float64
			fmt.Sscanf(fs, "%f", &f)
			total += f * float64(len(batches[i]))
		}
		frac := total / float64(len(req.Items))
		return CountResult{
			Count:    int(math.Round(total)),
			Fraction: frac,
			Usage:    s.usage(),
		}, nil
	default:
		return CountResult{}, badRequestf("unknown count strategy %q", req.Strategy)
	}
}

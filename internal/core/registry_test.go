package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm/sim"
)

// countingEmbedder counts Embed calls around the default embedder.
type countingEmbedder struct {
	inner embed.Embedder
	calls atomic.Int64
}

func (c *countingEmbedder) Embed(text string) []float64 {
	c.calls.Add(1)
	return c.inner.Embed(text)
}

func (c *countingEmbedder) Dim() int { return c.inner.Dim() }

// TestIndexRegistrySharedAcrossOperators: with a registry attached, two
// different operators indexing the same corpus — a blocked dedupe over the
// records, then a join whose right side is those same records — embed the
// corpus exactly once.
func TestIndexRegistrySharedAcrossOperators(t *testing.T) {
	em := &countingEmbedder{inner: embed.Default()}
	engine := New(sim.NewNamed("sim-gpt-3.5-turbo"),
		WithEmbedder(em), WithIndexRegistry(embed.NewRegistry()))

	corpus := make([]Entity, 12)
	for i := range corpus {
		corpus[i] = Entity{ID: fmt.Sprint(i), Text: fmt.Sprintf("record number %d with shared scaffolding", i)}
	}
	if _, err := engine.Dedupe(ctx(), DedupeRequest{Records: corpus, Strategy: DedupeBlockedPairwise}); err != nil {
		t.Fatal(err)
	}
	afterDedupe := em.calls.Load()
	if afterDedupe < int64(len(corpus)) {
		t.Fatalf("dedupe embedded %d texts, want at least the corpus", afterDedupe)
	}

	left := []Entity{{ID: "l-0", Text: "record number 3 with shared scaffolding"}}
	if _, err := engine.Join(ctx(), JoinRequest{Left: left, Right: corpus, Strategy: JoinTransitive}); err != nil {
		t.Fatal(err)
	}
	// The join may embed its left-side queries plus the registry's one
	// fingerprint probe, but must not re-embed the right-side corpus the
	// dedupe already indexed.
	if got := em.calls.Load(); got > afterDedupe+int64(len(left))+1 {
		t.Fatalf("join re-embedded the corpus: %d calls after dedupe's %d", got, afterDedupe)
	}

	// Without a registry, the same second operator pays the corpus again.
	em2 := &countingEmbedder{inner: embed.Default()}
	bare := New(sim.NewNamed("sim-gpt-3.5-turbo"), WithEmbedder(em2))
	if _, err := bare.Dedupe(ctx(), DedupeRequest{Records: corpus, Strategy: DedupeBlockedPairwise}); err != nil {
		t.Fatal(err)
	}
	base2 := em2.calls.Load()
	if _, err := bare.Join(ctx(), JoinRequest{Left: left, Right: corpus, Strategy: JoinTransitive}); err != nil {
		t.Fatal(err)
	}
	if got := em2.calls.Load(); got <= base2+int64(len(left)) {
		t.Fatalf("baseline unexpectedly reused the corpus (%d calls after %d); registry test is vacuous", got, base2)
	}
}

// TestIndexRegistryPlannerProfilingReuse: the planner profiles several
// impute strategies over one training set; with a registry the training
// corpus is embedded once across all candidate runs instead of once per
// candidate.
func TestIndexRegistryPlannerProfilingReuse(t *testing.T) {
	ds := dataset.GenerateRestaurants(20, 4, 9)
	em := &countingEmbedder{inner: embed.Default()}
	reg := embed.NewRegistry()
	engine := New(sim.NewNamed("sim-claude"), WithEmbedder(em), WithIndexRegistry(reg))

	_, err := engine.PlanImpute(ctx(), ds.Train, ds.TargetField,
		[]ImputeStrategy{ImputeKNN, ImputeLLM, ImputeHybrid}, 5, 0, 0.8, 0, len(ds.Test))
	if err != nil {
		t.Fatal(err)
	}
	builds, hits := reg.Stats()
	if builds != 1 {
		t.Fatalf("planner profiling built %d indexes over one training set, want 1", builds)
	}
	if hits < 2 {
		t.Fatalf("later candidates should reuse the index: hits = %d", hits)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/consistency"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// SortStrategy selects how the Sort operator decomposes the objective.
type SortStrategy string

// Sort strategies, ordered roughly from cheapest/least accurate to most
// expensive/most accurate (Section 3.1 and 3.2 of the paper).
const (
	// SortOnePrompt puts every item in a single prompt and asks for the
	// full ordering — the paper's baseline. Cheap; blurs the middle of the
	// list, and on long lists omits and hallucinates items.
	SortOnePrompt SortStrategy = "one-prompt"
	// SortRating asks for a 1..scale rating per item (O(n) calls) and
	// sorts by rating, ties broken by input order.
	SortRating SortStrategy = "rating"
	// SortPairwise compares every pair (O(n^2) calls) and ranks by wins
	// (Copeland count), ties broken by input order — the paper's
	// fine-grained strategy.
	SortPairwise SortStrategy = "pairwise"
	// SortPairwiseRepaired is SortPairwise followed by minimum-feedback
	// repair of the comparison graph (Section 3.3) instead of raw win
	// counts.
	SortPairwiseRepaired SortStrategy = "pairwise-repaired"
	// SortHybridInsert is the coarse-to-fine strategy of Section 3.2:
	// one-prompt sort, drop hallucinations, then reinsert each missing
	// item via order-debiased pairwise comparisons at the
	// alignment-maximising position.
	SortHybridInsert SortStrategy = "hybrid-insert"
	// SortRatingThenPairwise buckets items by rating, then refines each
	// bucket with pairwise comparisons (Khan-style coarse→fine): near
	// pairwise accuracy at a fraction of the comparisons.
	SortRatingThenPairwise SortStrategy = "rating-then-pairwise"
)

// SortRequest asks for items ranked from most to least by the criterion.
type SortRequest struct {
	// Items are the data items to rank. They must be non-empty and
	// pairwise distinct.
	Items []string
	// Criterion is the ranking dimension in natural language, e.g. "how
	// chocolatey they are" or "alphabetical order".
	Criterion string
	// Strategy selects the decomposition; default SortOnePrompt.
	Strategy SortStrategy
	// RatingScale is the rating task's scale (default 7).
	RatingScale int
	// CompareBatch packs this many comparisons into each prompt for the
	// pairwise strategies (default 1, one comparison per prompt). Bigger
	// batches cut token overhead at an accuracy cost — the Section 4
	// batch-size lever.
	CompareBatch int
	// TemplateVariant selects one of prompt.CompareTemplateCount phrasings
	// for comparison tasks (default 0). Models are phrasing-sensitive;
	// PlanCompareTemplate profiles the variants.
	TemplateVariant int
	// ChainOfThought appends a think-step-by-step instruction to
	// comparison tasks: usually more accurate, always more completion
	// tokens (Section 4).
	ChainOfThought bool
}

// SortResult is the outcome of a Sort call.
type SortResult struct {
	// Ranked lists the input items the model returned, best first, with
	// hallucinations removed and duplicates collapsed. Items the model
	// omitted are absent (see Missing).
	Ranked []string
	// Missing counts input items absent from Ranked.
	Missing int
	// Hallucinated counts response items that were not in the input.
	Hallucinated int
	// Usage is the total token spend of the operation (cache hits free).
	Usage token.Usage
}

// Sort ranks items by the criterion under the requested strategy.
func (e *Engine) Sort(ctx context.Context, req SortRequest) (SortResult, error) {
	if len(req.Items) == 0 {
		return SortResult{}, badRequestf("no items to sort")
	}
	seen := make(map[string]bool, len(req.Items))
	for _, it := range req.Items {
		if seen[it] {
			return SortResult{}, badRequestf("duplicate item %q", it)
		}
		seen[it] = true
	}
	if req.RatingScale == 0 {
		req.RatingScale = 7
	}
	if req.Strategy == "" {
		req.Strategy = SortOnePrompt
	}
	s := e.newSession()
	var (
		res SortResult
		err error
	)
	switch req.Strategy {
	case SortOnePrompt:
		res, err = e.sortOnePrompt(ctx, s, req)
	case SortRating:
		res, err = e.sortRating(ctx, s, req)
	case SortPairwise:
		res, err = e.sortPairwise(ctx, s, req, false)
	case SortPairwiseRepaired:
		res, err = e.sortPairwise(ctx, s, req, true)
	case SortHybridInsert:
		res, err = e.sortHybridInsert(ctx, s, req)
	case SortRatingThenPairwise:
		res, err = e.sortRatingThenPairwise(ctx, s, req)
	default:
		return SortResult{}, badRequestf("unknown sort strategy %q", req.Strategy)
	}
	res.Usage = s.usage()
	return res, err
}

// auditList reconciles a parsed model list against the input items:
// unknown entries count as hallucinations, repeats collapse, omissions
// are counted.
func auditList(input, parsed []string) SortResult {
	known := make(map[string]bool, len(input))
	for _, it := range input {
		known[it] = true
	}
	var res SortResult
	got := make(map[string]bool, len(parsed))
	for _, p := range parsed {
		p = strings.TrimSpace(p)
		switch {
		case !known[p]:
			res.Hallucinated++
		case got[p]:
			// Collapse duplicates silently; the first occurrence stands.
		default:
			got[p] = true
			res.Ranked = append(res.Ranked, p)
		}
	}
	res.Missing = len(input) - len(res.Ranked)
	return res
}

func (e *Engine) sortOnePrompt(ctx context.Context, s *session, req SortRequest) (SortResult, error) {
	parsed, err := quality.AskWithRetry(ctx, s.model, prompt.SortList(req.Items, req.Criterion),
		func(text string) ([]string, error) {
			items := prompt.ParseList(text)
			if len(items) == 0 {
				return nil, prompt.ErrUnparseable
			}
			return items, nil
		}, e.retries)
	if err != nil {
		return SortResult{}, fmt.Errorf("one-prompt sort: %w", err)
	}
	return auditList(req.Items, parsed), nil
}

func (e *Engine) sortRating(ctx context.Context, s *session, req SortRequest) (SortResult, error) {
	ratings, err := e.mapIdx(ctx, len(req.Items), func(ctx context.Context, i int) (string, error) {
		r, err := quality.AskWithRetry(ctx, s.model, prompt.RateItem(req.Items[i], req.Criterion, req.RatingScale),
			func(text string) (int, error) { return prompt.ParseRating(text, req.RatingScale) },
			e.retries)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d", r), nil
	})
	if err != nil {
		return SortResult{}, fmt.Errorf("rating sort: %w", err)
	}
	type rated struct {
		item   string
		rating int
		pos    int
	}
	rs := make([]rated, len(req.Items))
	for i, it := range req.Items {
		var v int
		fmt.Sscanf(ratings[i], "%d", &v)
		rs[i] = rated{item: it, rating: v, pos: i}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].rating > rs[b].rating })
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.item
	}
	return SortResult{Ranked: out}, nil
}

// compareOnce asks one pairwise comparison and reports whether a ranks
// higher than b, under the given template variant and chain-of-thought
// setting.
func compareOnce(ctx context.Context, model llm.Model, retries int, a, b, criterion string, variant int, cot bool) (bool, error) {
	choice, err := quality.AskWithRetry(ctx, model, prompt.ComparePairVariant(variant, a, b, criterion, cot),
		prompt.ParseChoice, retries)
	if err != nil {
		return false, err
	}
	return choice == "A", nil
}

func (e *Engine) sortPairwise(ctx context.Context, s *session, req SortRequest, repair bool) (SortResult, error) {
	n := len(req.Items)
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	outcomes := make([]string, len(pairs))
	batch := req.CompareBatch
	if batch < 1 {
		batch = 1
	}
	if batch == 1 {
		got, err := e.mapIdx(ctx, len(pairs), func(ctx context.Context, k int) (string, error) {
			p := pairs[k]
			aWins, err := compareOnce(ctx, s.model, e.retries, req.Items[p.i], req.Items[p.j], req.Criterion, req.TemplateVariant, req.ChainOfThought)
			if err != nil {
				return "", err
			}
			if aWins {
				return "A", nil
			}
			return "B", nil
		})
		if err != nil {
			return SortResult{}, fmt.Errorf("pairwise sort: %w", err)
		}
		outcomes = got
	} else {
		// Batched comparisons: pack `batch` pairs per prompt; pairs the
		// model skips fall back to individual prompts.
		var chunks [][]pair
		for start := 0; start < len(pairs); start += batch {
			end := start + batch
			if end > len(pairs) {
				end = len(pairs)
			}
			chunks = append(chunks, pairs[start:end])
		}
		chunkAnswers, err := e.mapIdx(ctx, len(chunks), func(ctx context.Context, c int) (string, error) {
			chunk := chunks[c]
			items := make([]prompt.PairItem, len(chunk))
			for i, p := range chunk {
				items[i] = prompt.PairItem{A: req.Items[p.i], B: req.Items[p.j]}
			}
			answers, err := quality.AskWithRetry(ctx, s.model, prompt.CompareBatch(items, req.Criterion),
				func(text string) (map[int]string, error) { return prompt.ParseChoices(text, len(chunk)) },
				e.retries)
			if err != nil {
				return "", err
			}
			// Encode the sparse answers positionally ("A", "B", or "?").
			enc := make([]byte, len(chunk))
			for i := range enc {
				switch answers[i] {
				case "A":
					enc[i] = 'A'
				case "B":
					enc[i] = 'B'
				default:
					enc[i] = '?'
				}
			}
			return string(enc), nil
		})
		if err != nil {
			return SortResult{}, fmt.Errorf("batched pairwise sort: %w", err)
		}
		for c, chunk := range chunks {
			for i := range chunk {
				outcomes[c*batch+i] = string(chunkAnswers[c][i])
			}
		}
		// Individual fallback for skipped pairs.
		for k, out := range outcomes {
			if out != "?" {
				continue
			}
			p := pairs[k]
			aWins, err := compareOnce(ctx, s.model, e.retries, req.Items[p.i], req.Items[p.j], req.Criterion, req.TemplateVariant, req.ChainOfThought)
			if err != nil {
				return SortResult{}, fmt.Errorf("batched pairwise fallback: %w", err)
			}
			if aWins {
				outcomes[k] = "A"
			} else {
				outcomes[k] = "B"
			}
		}
	}
	t := consistency.NewTournament(req.Items)
	for k, p := range pairs {
		if outcomes[k] == "A" {
			t.Record(req.Items[p.i], req.Items[p.j])
		} else {
			t.Record(req.Items[p.j], req.Items[p.i])
		}
	}
	if repair {
		return SortResult{Ranked: t.RepairOrder()}, nil
	}
	return SortResult{Ranked: t.CopelandOrder()}, nil
}

// sortHybridInsert implements the paper's sort-then-insert hybrid: a
// coarse one-prompt sort, hallucination stripping, then for every missing
// item two order-swapped comparisons against each ranked item (cancelling
// position bias), inserted at the alignment-maximising index.
func (e *Engine) sortHybridInsert(ctx context.Context, s *session, req SortRequest) (SortResult, error) {
	coarse, err := e.sortOnePrompt(ctx, s, req)
	if err != nil {
		return SortResult{}, err
	}
	ranked := coarse.Ranked
	inRanked := make(map[string]bool, len(ranked))
	for _, it := range ranked {
		inRanked[it] = true
	}
	var missing []string
	for _, it := range req.Items {
		if !inRanked[it] {
			missing = append(missing, it)
		}
	}
	for _, item := range missing {
		// Two comparisons per ranked element: item listed first, then
		// second, cancelling the model's position bias.
		votes, err := e.mapIdx(ctx, 2*len(ranked), func(ctx context.Context, k int) (string, error) {
			idx := k / 2
			var itemHigher bool
			var cerr error
			if k%2 == 0 {
				itemHigher, cerr = compareOnce(ctx, s.model, e.retries, item, ranked[idx], req.Criterion, req.TemplateVariant, req.ChainOfThought)
			} else {
				other, oerr := compareOnce(ctx, s.model, e.retries, ranked[idx], item, req.Criterion, req.TemplateVariant, req.ChainOfThought)
				itemHigher, cerr = !other, oerr
			}
			if cerr != nil {
				return "", cerr
			}
			if itemHigher {
				return "H", nil
			}
			return "L", nil
		})
		if err != nil {
			return coarse, fmt.Errorf("hybrid insert of %q: %w", item, err)
		}
		comps := make([]consistency.Comparison, 0, len(votes))
		for k, v := range votes {
			comps = append(comps, consistency.Comparison{
				ListIndex: k / 2,
				// "item ranks higher than ranked[idx]" means the item
				// precedes that position.
				Less: v == "H",
			})
		}
		pos := consistency.AlignmentInsert(len(ranked), comps)
		ranked = consistency.InsertAt(ranked, item, pos)
	}
	return SortResult{
		Ranked:       ranked,
		Missing:      0,
		Hallucinated: coarse.Hallucinated,
	}, nil
}

// sortRatingThenPairwise is the Khan-style hybrid: coarse ratings bucket
// the items, fine pairwise comparisons order each bucket.
func (e *Engine) sortRatingThenPairwise(ctx context.Context, s *session, req SortRequest) (SortResult, error) {
	rated, err := e.sortRating(ctx, s, req)
	if err != nil {
		return SortResult{}, err
	}
	// Re-derive each item's rating by rating prompts again — they are
	// cache hits, so this costs nothing and keeps the code simple.
	rating := make(map[string]int, len(req.Items))
	for _, it := range req.Items {
		r, err := quality.AskWithRetry(ctx, s.model, prompt.RateItem(it, req.Criterion, req.RatingScale),
			func(text string) (int, error) { return prompt.ParseRating(text, req.RatingScale) },
			e.retries)
		if err != nil {
			return SortResult{}, fmt.Errorf("rating-then-pairwise: %w", err)
		}
		rating[it] = r
	}
	// Bucket by rating, descending.
	buckets := make(map[int][]string)
	for _, it := range rated.Ranked {
		buckets[rating[it]] = append(buckets[rating[it]], it)
	}
	var out []string
	for r := req.RatingScale; r >= 1; r-- {
		bucket := buckets[r]
		if len(bucket) <= 1 {
			out = append(out, bucket...)
			continue
		}
		sub, err := e.sortPairwise(ctx, s, SortRequest{
			Items:       bucket,
			Criterion:   req.Criterion,
			RatingScale: req.RatingScale,
		}, true)
		if err != nil {
			return SortResult{}, fmt.Errorf("rating-then-pairwise bucket %d: %w", r, err)
		}
		out = append(out, sub.Ranked...)
	}
	return SortResult{Ranked: out}, nil
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/consistency"
	"repro/internal/token"
)

// JoinStrategy selects how a fuzzy join is executed.
type JoinStrategy string

// Join strategies (Wang et al.'s transitivity-sequenced joins, Section
// 3.3).
const (
	// JoinNestedLoop asks the model about every left×right pair.
	JoinNestedLoop JoinStrategy = "nested-loop"
	// JoinTransitive orders candidate pairs by embedding similarity and
	// skips any comparison already implied by the positive transitive
	// closure of earlier answers, with an embedding cutoff discarding
	// hopeless pairs for free.
	JoinTransitive JoinStrategy = "transitive"
)

// JoinRequest asks for the matching pairs between two record sets.
type JoinRequest struct {
	Left, Right []Entity
	// Strategy selects the decomposition; default JoinTransitive.
	Strategy JoinStrategy
	// CandidateDistance is the embedding L2 distance beyond which a pair
	// is not even considered (default 1.1, effectively everything for
	// normalised n-gram embeddings).
	CandidateDistance float64
}

// JoinPair is one matched (left, right) pair in a JoinResult.
type JoinPair struct {
	LeftID, RightID string
}

// JoinResult is the outcome of Join.
type JoinResult struct {
	// Matches lists the matched ID pairs, ordered by left then right ID.
	Matches []JoinPair
	// LLMComparisons counts match questions sent to the model.
	LLMComparisons int
	// SkippedByTransitivity counts pairs decided by closure for free.
	SkippedByTransitivity int
	// SkippedByDistance counts pairs discarded by the embedding cutoff.
	SkippedByDistance int
	// Usage is the total token spend.
	Usage token.Usage
}

// Join fuzzy-joins Left and Right on entity identity.
func (e *Engine) Join(ctx context.Context, req JoinRequest) (JoinResult, error) {
	if len(req.Left) == 0 || len(req.Right) == 0 {
		return JoinResult{}, badRequestf("join needs records on both sides")
	}
	if req.Strategy == "" {
		req.Strategy = JoinTransitive
	}
	if req.CandidateDistance == 0 {
		req.CandidateDistance = 1.1
	}
	ids := make(map[string]bool, len(req.Left)+len(req.Right))
	for _, r := range append(append([]Entity{}, req.Left...), req.Right...) {
		if ids[r.ID] {
			return JoinResult{}, badRequestf("duplicate entity ID %q across join inputs", r.ID)
		}
		ids[r.ID] = true
	}
	s := e.newSession()
	var res JoinResult
	var err error
	switch req.Strategy {
	case JoinNestedLoop:
		res, err = e.joinNestedLoop(ctx, s, req)
	case JoinTransitive:
		res, err = e.joinTransitive(ctx, s, req)
	default:
		return JoinResult{}, badRequestf("unknown join strategy %q", req.Strategy)
	}
	if err != nil {
		return JoinResult{}, err
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].LeftID != res.Matches[j].LeftID {
			return res.Matches[i].LeftID < res.Matches[j].LeftID
		}
		return res.Matches[i].RightID < res.Matches[j].RightID
	})
	res.Usage = s.usage()
	return res, nil
}

func (e *Engine) joinNestedLoop(ctx context.Context, s *session, req JoinRequest) (JoinResult, error) {
	type pair struct{ l, r int }
	var pairs []pair
	for l := range req.Left {
		for r := range req.Right {
			pairs = append(pairs, pair{l, r})
		}
	}
	answers, err := e.mapIdx(ctx, len(pairs), func(ctx context.Context, k int) (string, error) {
		p := pairs[k]
		yes, err := e.matchOnce(ctx, s, req.Left[p.l], req.Right[p.r])
		if err != nil {
			return "", err
		}
		if yes {
			return "Y", nil
		}
		return "N", nil
	})
	if err != nil {
		return JoinResult{}, fmt.Errorf("nested-loop join: %w", err)
	}
	res := JoinResult{LLMComparisons: len(pairs)}
	for k, a := range answers {
		if a == "Y" {
			res.Matches = append(res.Matches, JoinPair{
				LeftID:  req.Left[pairs[k].l].ID,
				RightID: req.Right[pairs[k].r].ID,
			})
		}
	}
	return res, nil
}

// joinTransitive sequences candidate comparisons from most to least
// similar so that positive transitive closure forms early and later
// comparisons can be skipped — Wang et al.'s cost reduction. Sequential
// by design: each answer informs whether the next question is needed.
func (e *Engine) joinTransitive(ctx context.Context, s *session, req JoinRequest) (JoinResult, error) {
	type cand struct {
		l, r int
		dist float64
	}
	// Index the right side once (embedded in parallel); each left record
	// is embedded once by its radius query. The partition pruning bound
	// keeps Within exact, so candidate generation matches the old full
	// L×R scan while skipping partitions beyond the cutoff.
	rightIDs := corpusIDs(len(req.Right))
	rix := e.indexEntities(req.Right, rightIDs)
	var res JoinResult
	var cands []cand
	for l := range req.Left {
		nbrs := rix.Within(req.Left[l].Text, req.CandidateDistance)
		res.SkippedByDistance += len(req.Right) - len(nbrs)
		for _, nb := range nbrs {
			r, err := strconv.Atoi(nb.ID)
			if err != nil {
				continue
			}
			cands = append(cands, cand{l, r, nb.Distance})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		if cands[i].l != cands[j].l {
			return cands[i].l < cands[j].l
		}
		return cands[i].r < cands[j].r
	})
	graph := consistency.NewMatchGraph()
	for _, c := range cands {
		lid, rid := req.Left[c.l].ID, req.Right[c.r].ID
		if graph.Connected(lid, rid) {
			res.SkippedByTransitivity++
			res.Matches = append(res.Matches, JoinPair{LeftID: lid, RightID: rid})
			continue
		}
		yes, err := e.matchOnce(ctx, s, req.Left[c.l], req.Right[c.r])
		if err != nil {
			return JoinResult{}, fmt.Errorf("transitive join: %w", err)
		}
		res.LLMComparisons++
		if yes {
			graph.AddMatch(lid, rid)
			res.Matches = append(res.Matches, JoinPair{LeftID: lid, RightID: rid})
		}
	}
	return res, nil
}

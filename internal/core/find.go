package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/embed"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// FindStrategy selects how items matching a description are located.
type FindStrategy string

// Find strategies. Find is the paper's "find" primitive: locate the
// items in a collection that satisfy a natural-language description,
// returning up to Limit of them.
const (
	// FindScan asks the model about every item — exact modulo per-item
	// noise, O(n) calls.
	FindScan FindStrategy = "scan"
	// FindEmbedFirst ranks items by embedding similarity to the
	// description and asks the model only about the most promising
	// candidates until Limit matches are confirmed or the candidate pool
	// (CandidateFactor × Limit) is exhausted — the Section 3.4 non-LLM
	// prefilter applied to search.
	FindEmbedFirst FindStrategy = "embed-first"
)

// FindRequest asks for items satisfying a description.
type FindRequest struct {
	// Items are the collection to search.
	Items []string
	// Description is the predicate in natural language (it is shown to
	// the model verbatim as a filter condition).
	Description string
	// Limit caps the number of matches returned (default: no cap).
	Limit int
	// Strategy selects the decomposition; default FindEmbedFirst.
	Strategy FindStrategy
	// CandidateFactor bounds the FindEmbedFirst pool at
	// CandidateFactor × Limit candidates (default 4).
	CandidateFactor int
}

// FindResult is the outcome of Find.
type FindResult struct {
	// Matches lists matching items in input order (FindScan) or
	// descending embedding-confidence order (FindEmbedFirst).
	Matches []string
	// Checked counts items the model actually examined.
	Checked int
	// Usage is the total token spend.
	Usage token.Usage
}

// Find locates items satisfying the description.
func (e *Engine) Find(ctx context.Context, req FindRequest) (FindResult, error) {
	if len(req.Items) == 0 {
		return FindResult{}, badRequestf("no items to search")
	}
	if req.Description == "" {
		return FindResult{}, badRequestf("empty description")
	}
	if req.Strategy == "" {
		req.Strategy = FindEmbedFirst
	}
	if req.Limit <= 0 || req.Limit > len(req.Items) {
		req.Limit = len(req.Items)
	}
	if req.CandidateFactor <= 0 {
		req.CandidateFactor = 4
	}
	s := e.newSession()
	check := func(ctx context.Context, item string) (bool, error) {
		return quality.AskWithRetry(ctx, s.model, prompt.FilterItem(item, req.Description),
			prompt.ParseYesNo, e.retries)
	}
	var res FindResult
	switch req.Strategy {
	case FindScan:
		answers, err := e.mapIdx(ctx, len(req.Items), func(ctx context.Context, i int) (string, error) {
			ok, err := check(ctx, req.Items[i])
			if err != nil {
				return "", err
			}
			if ok {
				return "Y", nil
			}
			return "N", nil
		})
		if err != nil {
			return FindResult{}, fmt.Errorf("find scan: %w", err)
		}
		res.Checked = len(req.Items)
		for i, a := range answers {
			if a == "Y" && len(res.Matches) < req.Limit {
				res.Matches = append(res.Matches, req.Items[i])
			}
		}
	case FindEmbedFirst:
		// Rank candidates by embedding similarity to the description: the
		// items are indexed once (embedded in parallel) and the heap top-k
		// query returns the candidate pool closest-first, ties by input
		// order.
		items := make([]embed.Item, len(req.Items))
		for i, it := range req.Items {
			items[i] = embed.Item{ID: strconv.Itoa(i), Text: it}
		}
		ix := e.index(items)
		pool := req.CandidateFactor * req.Limit
		if pool > len(req.Items) {
			pool = len(req.Items)
		}
		// Sequential by design: stop as soon as Limit matches confirm.
		for _, nb := range ix.Nearest(req.Description, pool) {
			if len(res.Matches) >= req.Limit {
				break
			}
			idx, err := strconv.Atoi(nb.ID)
			if err != nil {
				continue
			}
			ok, err := check(ctx, req.Items[idx])
			if err != nil {
				return FindResult{}, fmt.Errorf("find embed-first: %w", err)
			}
			res.Checked++
			if ok {
				res.Matches = append(res.Matches, req.Items[idx])
			}
		}
	default:
		return FindResult{}, badRequestf("unknown find strategy %q", req.Strategy)
	}
	res.Usage = s.usage()
	return res, nil
}

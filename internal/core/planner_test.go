package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/token"
)

// planCandidate builds a synthetic candidate with a fixed accuracy and an
// exact projected cost: the test model is priced at $1 per 1000 prompt
// tokens, so usage of 1000 prompt tokens with scale S projects to S
// dollars.
func planCandidate(name string, accuracy, projected float64) Candidate {
	return Candidate{
		Name:        name,
		Model:       "plan-test-model",
		ScaleFactor: projected,
		Run: func(ctx context.Context) (float64, token.Usage, error) {
			return accuracy, token.Usage{PromptTokens: 1000, Calls: 1}, nil
		},
	}
}

func planChoice(t *testing.T, candidates []Candidate, target, maxDollars float64) Plan {
	t.Helper()
	token.RegisterPrice("plan-test-model", token.Price{InputPer1K: 1})
	plan, err := PlanStrategies(context.Background(), candidates, target, maxDollars)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPlanStrategiesRule1 pins the first selection rule: the cheapest
// candidate meeting the accuracy target within budget wins, even when a
// cheaper-but-inaccurate or better-but-pricier candidate exists.
func TestPlanStrategiesRule1(t *testing.T) {
	plan := planChoice(t, []Candidate{
		planCandidate("cheap-bad", 0.50, 1),
		planCandidate("mid-good", 0.85, 3),
		planCandidate("rich-better", 0.95, 8),
	}, 0.8, 10)
	if plan.Chosen != "mid-good" {
		t.Fatalf("chose %q (%s), want cheapest meeting target", plan.Chosen, plan.Reason)
	}
	if !strings.Contains(plan.Reason, "cheapest strategy meeting accuracy") {
		t.Fatalf("reason = %q", plan.Reason)
	}
	// Reports are sorted by projected cost.
	for i := 1; i < len(plan.Reports); i++ {
		if plan.Reports[i-1].ProjectedCost > plan.Reports[i].ProjectedCost {
			t.Fatalf("reports unsorted: %+v", plan.Reports)
		}
	}
}

// TestPlanStrategiesBoundaries pins the comparison directions at the rule
// edges: accuracy exactly at the target qualifies (>=), and projected cost
// exactly at the budget qualifies (<=).
func TestPlanStrategiesBoundaries(t *testing.T) {
	plan := planChoice(t, []Candidate{
		planCandidate("exactly-on-target", 0.80, 5),
		planCandidate("above-target-pricier", 0.90, 6),
	}, 0.8, 5)
	if plan.Chosen != "exactly-on-target" {
		t.Fatalf("accuracy == target must qualify; chose %q", plan.Chosen)
	}
	plan = planChoice(t, []Candidate{
		planCandidate("at-budget", 0.9, 5),
		planCandidate("under-budget-inaccurate", 0.1, 1),
	}, 0.8, 5)
	if plan.Chosen != "at-budget" {
		t.Fatalf("cost == budget must qualify; chose %q", plan.Chosen)
	}
	// One cent over the cap disqualifies: rule 1 skips it, rule 2 picks
	// the most accurate candidate that fits.
	plan = planChoice(t, []Candidate{
		planCandidate("over-budget", 0.9, 5.01),
		planCandidate("in-budget", 0.6, 1),
	}, 0.8, 5)
	if plan.Chosen != "in-budget" || !strings.Contains(plan.Reason, "most accurate within budget") {
		t.Fatalf("chose %q (%s)", plan.Chosen, plan.Reason)
	}
}

// TestPlanStrategiesRule2 pins the fallback when nothing meets the
// accuracy target: most accurate within budget, ties resolved toward the
// cheaper candidate by the stable cost ordering.
func TestPlanStrategiesRule2(t *testing.T) {
	plan := planChoice(t, []Candidate{
		planCandidate("cheap-weak", 0.40, 1),
		planCandidate("mid-strong", 0.70, 3),
		planCandidate("pricier-strongest", 0.75, 20), // over budget, ignored
	}, 0.9, 10)
	if plan.Chosen != "mid-strong" {
		t.Fatalf("chose %q (%s), want most accurate within budget", plan.Chosen, plan.Reason)
	}
	// Accuracy tie: the stable sort by projected cost makes the cheaper
	// one win (strict > comparison keeps the first).
	plan = planChoice(t, []Candidate{
		planCandidate("tied-pricier", 0.70, 4),
		planCandidate("tied-cheaper", 0.70, 2),
	}, 0.9, 10)
	if plan.Chosen != "tied-cheaper" {
		t.Fatalf("accuracy tie chose %q, want the cheaper candidate", plan.Chosen)
	}
}

// TestPlanStrategiesRule3 pins the last resort: every candidate blows the
// budget, so the cheapest outright is chosen.
func TestPlanStrategiesRule3(t *testing.T) {
	plan := planChoice(t, []Candidate{
		planCandidate("huge", 0.95, 50),
		planCandidate("merely-large", 0.60, 20),
	}, 0.9, 5)
	if plan.Chosen != "merely-large" || !strings.Contains(plan.Reason, "cheapest overall") {
		t.Fatalf("chose %q (%s)", plan.Chosen, plan.Reason)
	}
}

// TestPlanStrategiesUnlimitedBudget: maxDollars <= 0 disables the cap, so
// rule 1 may pick an arbitrarily expensive candidate.
func TestPlanStrategiesUnlimitedBudget(t *testing.T) {
	plan := planChoice(t, []Candidate{
		planCandidate("cheap-weak", 0.40, 1),
		planCandidate("expensive-good", 0.95, 1e6),
	}, 0.9, 0)
	if plan.Chosen != "expensive-good" {
		t.Fatalf("chose %q (%s)", plan.Chosen, plan.Reason)
	}
}

func TestPlanStrategiesErrors(t *testing.T) {
	if _, err := PlanStrategies(ctx(), nil, 0.5, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no candidates: err = %v", err)
	}
	bad := planCandidate("zero-scale", 0.9, 1)
	bad.ScaleFactor = 0
	if _, err := PlanStrategies(ctx(), []Candidate{bad}, 0.5, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("non-positive scale: err = %v", err)
	}
	failing := Candidate{
		Name: "boom", Model: "plan-test-model", ScaleFactor: 1,
		Run: func(context.Context) (float64, token.Usage, error) {
			return 0, token.Usage{}, fmt.Errorf("profiling exploded")
		},
	}
	if _, err := PlanStrategies(ctx(), []Candidate{failing}, 0.5, 0); err == nil || !strings.Contains(err.Error(), "profiling exploded") {
		t.Fatalf("run error not propagated: %v", err)
	}
}

package core

import (
	"context"
	"fmt"

	"repro/internal/consistency"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// MaxStrategy selects how the maximum item is found.
type MaxStrategy string

// Max strategies (Guo et al. / Khan, Section 3.2).
const (
	// MaxTournament compares all pairs and returns the repaired-order
	// winner — O(n^2) calls, highest confidence.
	MaxTournament MaxStrategy = "tournament"
	// MaxRatingThenTournament rates every item (O(n) cheap tasks), keeps
	// the top-rated bucket, and runs the tournament only inside it — the
	// coarse→fine hybrid with near-tournament accuracy at far lower cost.
	MaxRatingThenTournament MaxStrategy = "rating-then-tournament"
)

// MaxRequest asks for the single item ranking highest by the criterion.
type MaxRequest struct {
	Items     []string
	Criterion string
	// Strategy selects the decomposition; default MaxRatingThenTournament.
	Strategy MaxStrategy
	// RatingScale for the coarse phase (default 7).
	RatingScale int
}

// MaxResult is the outcome of Max.
type MaxResult struct {
	// Item is the consensus maximum.
	Item string
	// Finalists are the items that reached the fine phase.
	Finalists []string
	// Usage is the total token spend.
	Usage token.Usage
}

// Max finds the item ranking highest by the criterion.
func (e *Engine) Max(ctx context.Context, req MaxRequest) (MaxResult, error) {
	if len(req.Items) == 0 {
		return MaxResult{}, badRequestf("no items")
	}
	if req.Strategy == "" {
		req.Strategy = MaxRatingThenTournament
	}
	if req.RatingScale == 0 {
		req.RatingScale = 7
	}
	if len(req.Items) == 1 {
		return MaxResult{Item: req.Items[0], Finalists: req.Items}, nil
	}
	s := e.newSession()
	switch req.Strategy {
	case MaxTournament:
		winner, err := e.tournamentWinner(ctx, s, req.Items, req.Criterion)
		if err != nil {
			return MaxResult{}, err
		}
		return MaxResult{Item: winner, Finalists: req.Items, Usage: s.usage()}, nil
	case MaxRatingThenTournament:
		// Coarse phase: rate everything; keep the top non-empty bucket
		// plus the bucket below it (ratings are noisy; a one-bucket slip
		// must not eliminate the true max).
		ratings, err := e.mapIdx(ctx, len(req.Items), func(ctx context.Context, i int) (string, error) {
			r, err := quality.AskWithRetry(ctx, s.model,
				prompt.RateItem(req.Items[i], req.Criterion, req.RatingScale),
				func(text string) (int, error) { return prompt.ParseRating(text, req.RatingScale) },
				e.retries)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d", r), nil
		})
		if err != nil {
			return MaxResult{}, fmt.Errorf("max rating phase: %w", err)
		}
		best := 0
		vals := make([]int, len(req.Items))
		for i, rs := range ratings {
			fmt.Sscanf(rs, "%d", &vals[i])
			if vals[i] > best {
				best = vals[i]
			}
		}
		var finalists []string
		for i, it := range req.Items {
			if vals[i] >= best-1 {
				finalists = append(finalists, it)
			}
		}
		if len(finalists) == 1 {
			return MaxResult{Item: finalists[0], Finalists: finalists, Usage: s.usage()}, nil
		}
		winner, err := e.tournamentWinner(ctx, s, finalists, req.Criterion)
		if err != nil {
			return MaxResult{}, err
		}
		return MaxResult{Item: winner, Finalists: finalists, Usage: s.usage()}, nil
	default:
		return MaxResult{}, badRequestf("unknown max strategy %q", req.Strategy)
	}
}

func (e *Engine) tournamentWinner(ctx context.Context, s *session, items []string, criterion string) (string, error) {
	t := consistency.NewTournament(items)
	pairs := allPairs(len(items))
	outcomes, err := e.mapIdx(ctx, len(pairs), func(ctx context.Context, k int) (string, error) {
		p := pairs[k]
		aWins, err := compareOnce(ctx, s.model, e.retries, items[p[0]], items[p[1]], criterion, 0, false)
		if err != nil {
			return "", err
		}
		if aWins {
			return "A", nil
		}
		return "B", nil
	})
	if err != nil {
		return "", fmt.Errorf("tournament: %w", err)
	}
	for k, p := range pairs {
		if outcomes[k] == "A" {
			t.Record(items[p[0]], items[p[1]])
		} else {
			t.Record(items[p[1]], items[p[0]])
		}
	}
	return t.MaxItem(), nil
}

package core

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// TestSortPairwiseBatched exercises the Section 4 batch-size lever:
// batched comparisons must produce a complete ranking at a meaningful
// token discount, with accuracy no better than unbatched.
func TestSortPairwiseBatched(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo", WithParallelism(16))
	items := dataset.FlavorNames()
	gold := dataset.FlavorGroundTruth()
	crit := "how chocolatey they are"

	single, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: crit, Strategy: SortPairwise})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: crit, Strategy: SortPairwise, CompareBatch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(batched.Ranked) != len(items) {
		t.Fatalf("batched ranking incomplete: %d of %d", len(batched.Ranked), len(items))
	}
	if batched.Usage.Total() >= single.Usage.Total() {
		t.Errorf("batch-5 tokens (%d) should undercut per-pair prompts (%d)",
			batched.Usage.Total(), single.Usage.Total())
	}
	tauSingle, _ := metrics.KendallTauRanks(gold, single.Ranked)
	tauBatched, _ := metrics.KendallTauRanks(gold, batched.Ranked)
	if tauBatched > tauSingle+0.10 {
		t.Errorf("batched tau (%.3f) should not beat unbatched (%.3f) by a wide margin",
			tauBatched, tauSingle)
	}
	if tauBatched < 0.3 {
		t.Errorf("batched tau collapsed: %.3f", tauBatched)
	}
}

// TestSortBatchedDeterministic confirms the batched path stays
// reproducible.
func TestSortBatchedDeterministic(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	req := SortRequest{
		Items:        dataset.FlavorNames()[:10],
		Criterion:    "how chocolatey they are",
		Strategy:     SortPairwise,
		CompareBatch: 4,
	}
	a, err := e.Sort(ctx(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Sort(ctx(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranked {
		if a.Ranked[i] != b.Ranked[i] {
			t.Fatal("batched sort is not deterministic")
		}
	}
}

// TestResolveEvidenceFlipsBothWays checks the future-work strategy: it
// must at least match transitive recall (it subsumes the length-2 path
// rule) and be able to demote spurious "yes" answers.
func TestResolveEvidenceFlipsBothWays(t *testing.T) {
	corpus := dataset.GenerateCitations(dataset.CitationConfig{
		Entities: 150, Pairs: 400, PositiveFrac: 0.28, Seed: 13,
	})
	ents := make([]Entity, len(corpus.Records))
	for i, c := range corpus.Records {
		ents[i] = Entity{ID: c.ID, Text: c.Text()}
	}
	pairs := make([][2]int, len(corpus.Pairs))
	gold := make([]bool, len(corpus.Pairs))
	for i, p := range corpus.Pairs {
		pairs[i] = [2]int{p.A, p.B}
		gold[i] = p.Match
	}
	e := newEngine(t, "sim-gpt-3.5-turbo", WithParallelism(16))

	direct, err := e.ResolvePairs(ctx(), PairsRequest{Corpus: ents, Pairs: pairs, Strategy: ResolveDirect})
	if err != nil {
		t.Fatal(err)
	}
	evid, err := e.ResolvePairs(ctx(), PairsRequest{Corpus: ents, Pairs: pairs, Strategy: ResolveEvidence, Neighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	score := func(match []bool) metrics.Confusion {
		var c metrics.Confusion
		for i, m := range match {
			c.Observe(m, gold[i])
		}
		return c
	}
	cd, ce := score(direct.Match), score(evid.Match)
	if ce.Recall() <= cd.Recall() {
		t.Errorf("evidence recall (%.3f) should beat direct (%.3f)", ce.Recall(), cd.Recall())
	}
	if ce.F1() <= cd.F1() {
		t.Errorf("evidence F1 (%.3f) should beat direct (%.3f)", ce.F1(), cd.F1())
	}
	if evid.FlippedByTransitivity == 0 {
		t.Error("evidence strategy promoted nothing")
	}
	// The demotion rule only fires when contradicting evidence exists; it
	// must at least be wired (counter present, non-negative).
	if evid.FlippedToNo < 0 {
		t.Error("negative FlippedToNo")
	}
}

// TestResolveEvidenceDemotesSpuriousYes constructs a corpus where one
// cross-cluster "yes" is contradicted by both neighbourhoods.
func TestResolveEvidenceDemotesSpuriousYes(t *testing.T) {
	// Two tight clusters with identical titles+venues (the confusable
	// pattern) so the direct matcher is tempted to say yes across them,
	// while every within-cluster comparison gives consistent split
	// evidence.
	ents := []Entity{
		{ID: "a0", Text: "A. Smith, B. Chen. adaptive caching for streaming queries. SIGMOD Conference, 2002"},
		{ID: "a1", Text: "A. Smith, B. Chen. adaptive caching for streaming queries. SIGMOD, 2002"},
		{ID: "a2", Text: "A. Smith et al. adaptive caching for streaming queries. Proc. SIGMOD, 2002"},
		{ID: "b0", Text: "K. Patel, M. Rossi. adaptive caching for streaming queries. SIGMOD Conference, 2015"},
		{ID: "b1", Text: "K. Patel, M. Rossi. adaptive caching for streaming queries. SIGMOD, 2015"},
		{ID: "b2", Text: "K. Patel et al. adaptive caching for streaming queries. Proc. SIGMOD, 2015"},
	}
	pairs := [][2]int{{0, 3}} // the cross-cluster question
	e := newEngine(t, "sim-gpt-3.5-turbo", WithParallelism(8))

	evid, err := e.ResolvePairs(ctx(), PairsRequest{
		Corpus: ents, Pairs: pairs, Strategy: ResolveEvidence, Neighbors: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if evid.Match[0] {
		t.Errorf("cross-cluster confusable pair should be rejected (flippedToNo=%d)", evid.FlippedToNo)
	}
}

// TestSortWithCoTCostsMore confirms the chain-of-thought option pays in
// completion tokens while remaining parseable end to end.
func TestSortWithCoTCostsMore(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo", WithParallelism(16))
	items := dataset.FlavorNames()[:10]
	crit := "how chocolatey they are"
	plain, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: crit, Strategy: SortPairwise})
	if err != nil {
		t.Fatal(err)
	}
	cot, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: crit, Strategy: SortPairwise, ChainOfThought: true})
	if err != nil {
		t.Fatal(err)
	}
	if cot.Usage.CompletionTokens <= plain.Usage.CompletionTokens*2 {
		t.Errorf("CoT completions (%d) should far exceed plain (%d)",
			cot.Usage.CompletionTokens, plain.Usage.CompletionTokens)
	}
	if len(cot.Ranked) != len(items) {
		t.Fatalf("CoT ranking incomplete: %d of %d", len(cot.Ranked), len(items))
	}
}

// TestTemplateVariantsChangeBehaviour confirms distinct variants produce
// distinct (deterministic) outcomes — the brittleness being modelled.
func TestTemplateVariantsChangeBehaviour(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo", WithParallelism(16))
	items := dataset.FlavorNames()[:12]
	crit := "how chocolatey they are"
	results := map[string]bool{}
	for v := 0; v < 3; v++ {
		res, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: crit, Strategy: SortPairwise, TemplateVariant: v})
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, it := range res.Ranked {
			key += it + "|"
		}
		results[key] = true
	}
	if len(results) < 2 {
		t.Error("every template variant produced the identical ranking; variant sensitivity inactive")
	}
}

// TestPlanCompareTemplate checks the template selector profiles every
// variant and respects the accuracy target.
func TestPlanCompareTemplate(t *testing.T) {
	e := newEngine(t, "sim-claude", WithParallelism(16))
	gold := dataset.FlavorGroundTruth()[:8]
	plan, err := e.PlanCompareTemplate(ctx(), gold, "how chocolatey they are", true, 0.70, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantReports := 2 * 3 // 3 variants × {plain, cot}
	if len(plan.Reports) != wantReports {
		t.Fatalf("reports = %d, want %d", len(plan.Reports), wantReports)
	}
	for _, r := range plan.Reports {
		if r.Name == plan.Chosen && r.Accuracy < 0.70 {
			// Acceptable only if no variant met the target.
			anyMet := false
			for _, o := range plan.Reports {
				if o.Accuracy >= 0.70 {
					anyMet = true
				}
			}
			if anyMet {
				t.Fatalf("chose %q below target while alternatives met it", plan.Chosen)
			}
		}
	}
	if _, err := e.PlanCompareTemplate(ctx(), gold[:2], "x", false, 0.5, 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatal("too-small validation should fail")
	}
}

// TestFindStrategies checks the Find primitive: scan examines everything,
// embed-first confirms the same matches at a fraction of the checks.
func TestFindStrategies(t *testing.T) {
	e := newEngine(t, "sim-gpt-4", WithParallelism(8))
	items := dataset.FlavorNames()
	desc := "it is a chocolatey flavor"

	scan, err := e.Find(ctx(), FindRequest{Items: items, Description: desc, Strategy: FindScan})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Checked != len(items) {
		t.Fatalf("scan checked %d, want all %d", scan.Checked, len(items))
	}
	if len(scan.Matches) < 6 || len(scan.Matches) > 14 {
		t.Fatalf("scan matches = %d (true positives: 10)", len(scan.Matches))
	}

	fast, err := e.Find(ctx(), FindRequest{Items: items, Description: desc, Strategy: FindEmbedFirst, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Matches) != 3 {
		t.Fatalf("embed-first found %d of limit 3", len(fast.Matches))
	}
	if fast.Checked >= scan.Checked {
		t.Errorf("embed-first checked %d, should undercut full scan %d", fast.Checked, scan.Checked)
	}
	for _, m := range fast.Matches {
		s, _ := dataset.FlavorScore(m)
		if s <= 0.5 {
			t.Errorf("embed-first returned non-chocolatey %q", m)
		}
	}
	// Validation.
	if _, err := e.Find(ctx(), FindRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("empty request should fail")
	}
	if _, err := e.Find(ctx(), FindRequest{Items: items, Description: "x", Strategy: "zzz"}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("unknown strategy should fail")
	}
}

// TestAuditListProperties pins the bookkeeping invariants of auditList
// under random inputs.
func TestAuditListProperties(t *testing.T) {
	input := []string{"a", "b", "c", "d"}
	cases := [][]string{
		{"a", "b", "c", "d"},
		{"d", "c"},
		{"a", "a", "x", "b"},
		{},
		{"x", "y", "z"},
	}
	for _, parsed := range cases {
		res := auditList(input, parsed)
		if len(res.Ranked)+res.Missing != len(input) {
			t.Errorf("parsed %v: ranked %d + missing %d != %d", parsed, len(res.Ranked), res.Missing, len(input))
		}
		seen := map[string]bool{}
		valid := map[string]bool{}
		for _, it := range input {
			valid[it] = true
		}
		for _, r := range res.Ranked {
			if !valid[r] {
				t.Errorf("parsed %v: ranked contains hallucination %q", parsed, r)
			}
			if seen[r] {
				t.Errorf("parsed %v: ranked contains duplicate %q", parsed, r)
			}
			seen[r] = true
		}
	}
}

package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/token"
	"repro/internal/workflow"
)

func newEngine(t *testing.T, model string, opts ...Option) *Engine {
	t.Helper()
	return New(sim.NewNamed(model), opts...)
}

func ctx() context.Context { return context.Background() }

func TestSortValidation(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	if _, err := e.Sort(ctx(), SortRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty items: %v", err)
	}
	if _, err := e.Sort(ctx(), SortRequest{Items: []string{"a", "a"}, Criterion: "x"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("duplicate items: %v", err)
	}
	if _, err := e.Sort(ctx(), SortRequest{Items: []string{"a", "b"}, Criterion: "x", Strategy: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown strategy: %v", err)
	}
}

func TestSortStrategiesAccuracyOrdering(t *testing.T) {
	// The headline Table 1 shape: pairwise > rating >= one-prompt in
	// accuracy; pairwise costs the most tokens.
	e := newEngine(t, "sim-gpt-3.5-turbo")
	items := dataset.FlavorNames()
	gold := dataset.FlavorGroundTruth()
	crit := "how chocolatey they are"

	tau := map[SortStrategy]float64{}
	usage := map[SortStrategy]int{}
	for _, strat := range []SortStrategy{SortOnePrompt, SortRating, SortPairwise} {
		res, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: crit, Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		k, err := metrics.KendallTauRanks(gold, res.Ranked)
		if err != nil {
			t.Fatalf("%s tau: %v", strat, err)
		}
		tau[strat] = k
		usage[strat] = res.Usage.Total()
	}
	if tau[SortPairwise] <= tau[SortOnePrompt] {
		t.Errorf("pairwise (%.3f) should beat one-prompt (%.3f)", tau[SortPairwise], tau[SortOnePrompt])
	}
	if usage[SortPairwise] <= usage[SortRating] || usage[SortRating] <= usage[SortOnePrompt] {
		t.Errorf("cost ordering violated: %v", usage)
	}
}

func TestSortHybridInsertRecoversAllItems(t *testing.T) {
	e := newEngine(t, "sim-claude-2")
	words := dataset.RandomWords(60, 5)
	res, err := e.Sort(ctx(), SortRequest{
		Items:     words,
		Criterion: "alphabetical order",
		Strategy:  SortHybridInsert,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing != 0 {
		t.Fatalf("hybrid insert left %d items missing", res.Missing)
	}
	if len(res.Ranked) != len(words) {
		t.Fatalf("ranked %d of %d items", len(res.Ranked), len(words))
	}
	tau, err := metrics.KendallTauRanks(sortedCopy(words), res.Ranked)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.95 {
		t.Fatalf("hybrid insert tau = %.3f, want near-perfect", tau)
	}
}

func sortedCopy(ws []string) []string {
	out := append([]string(nil), ws...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestSortPairwiseRepairedAtLeastAsConsistent(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	items := dataset.FlavorNames()[:12]
	gold := make([]string, 0, 12)
	for _, f := range dataset.FlavorGroundTruth() {
		for _, it := range items {
			if f == it {
				gold = append(gold, f)
			}
		}
	}
	plain, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: "how chocolatey they are", Strategy: SortPairwise})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := e.Sort(ctx(), SortRequest{Items: items, Criterion: "how chocolatey they are", Strategy: SortPairwiseRepaired})
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := metrics.KendallTauRanks(gold, plain.Ranked)
	tr, _ := metrics.KendallTauRanks(gold, repaired.Ranked)
	// Repair optimises consistency with the observed comparisons; on
	// average it should not be materially worse than Copeland.
	if tr < tp-0.25 {
		t.Fatalf("repaired tau %.3f far below copeland tau %.3f", tr, tp)
	}
}

func TestSortDeterminism(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	req := SortRequest{Items: dataset.FlavorNames(), Criterion: "how chocolatey they are", Strategy: SortRating}
	a, err := e.Sort(ctx(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Sort(ctx(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranked {
		if a.Ranked[i] != b.Ranked[i] {
			t.Fatal("sort is not deterministic")
		}
	}
}

func TestSortBudgetExhaustion(t *testing.T) {
	b := workflow.NewBudget(0, 0, 10) // only 10 calls
	e := newEngine(t, "sim-gpt-3.5-turbo", WithBudget(b), WithParallelism(1))
	_, err := e.Sort(ctx(), SortRequest{
		Items:     dataset.FlavorNames(),
		Criterion: "how chocolatey they are",
		Strategy:  SortPairwise, // needs 190 calls
	})
	if !errors.Is(err, workflow.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestResolvePairsDirectVsTransitive(t *testing.T) {
	corpus := dataset.GenerateCitations(dataset.CitationConfig{
		Entities: 120, Pairs: 300, PositiveFrac: 0.3, Seed: 3,
	})
	ents := make([]Entity, len(corpus.Records))
	for i, c := range corpus.Records {
		ents[i] = Entity{ID: c.ID, Text: c.Text()}
	}
	pairs := make([][2]int, len(corpus.Pairs))
	gold := make([]bool, len(corpus.Pairs))
	for i, p := range corpus.Pairs {
		pairs[i] = [2]int{p.A, p.B}
		gold[i] = p.Match
	}
	e := newEngine(t, "sim-gpt-3.5-turbo", WithParallelism(16))

	score := func(match []bool) metrics.Confusion {
		var c metrics.Confusion
		for i, m := range match {
			c.Observe(m, gold[i])
		}
		return c
	}
	direct, err := e.ResolvePairs(ctx(), PairsRequest{Corpus: ents, Pairs: pairs, Strategy: ResolveDirect})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := e.ResolvePairs(ctx(), PairsRequest{Corpus: ents, Pairs: pairs, Strategy: ResolveTransitive, Neighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	cd, ct := score(direct.Match), score(trans.Match)
	if cd.Precision() < 0.85 {
		t.Errorf("direct precision = %.3f, want high", cd.Precision())
	}
	if ct.Recall() <= cd.Recall() {
		t.Errorf("transitive recall (%.3f) should beat direct (%.3f)", ct.Recall(), cd.Recall())
	}
	if ct.F1() <= cd.F1() {
		t.Errorf("transitive F1 (%.3f) should beat direct (%.3f)", ct.F1(), cd.F1())
	}
	if trans.FlippedByTransitivity == 0 {
		t.Error("transitive strategy flipped nothing")
	}
	if trans.LLMComparisons <= direct.LLMComparisons {
		t.Error("transitive strategy should cost more comparisons")
	}
}

func TestResolveValidation(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	if _, err := e.ResolvePairs(ctx(), PairsRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("empty request should fail")
	}
	ents := []Entity{{ID: "a", Text: "x"}, {ID: "b", Text: "y"}}
	if _, err := e.ResolvePairs(ctx(), PairsRequest{Corpus: ents, Pairs: [][2]int{{0, 5}}}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("out-of-range pair should fail")
	}
	if _, err := e.ResolvePairs(ctx(), PairsRequest{Corpus: ents, Pairs: [][2]int{{0, 1}}, Strategy: "zzz"}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("unknown strategy should fail")
	}
}

func TestResolveBlockedSkipsDistantPairs(t *testing.T) {
	ents := []Entity{
		{ID: "a1", Text: "J. Wang. indexing moving objects efficiently. SIGMOD, 2002"},
		{ID: "a2", Text: "J. Wang. indexing moving objcts efficiently. SIGMOD Conference, 2002"},
		{ID: "b", Text: "completely unrelated quantum physics paper by another author, 1999"},
	}
	e := newEngine(t, "sim-gpt-3.5-turbo")
	res, err := e.ResolvePairs(ctx(), PairsRequest{
		Corpus:        ents,
		Pairs:         [][2]int{{0, 1}, {0, 2}},
		Strategy:      ResolveBlockedDirect,
		BlockDistance: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match[0] {
		t.Error("near-duplicates should match")
	}
	if res.Match[1] {
		t.Error("unrelated pair should not match")
	}
	if res.SkippedByBlocking != 1 {
		t.Errorf("skipped = %d, want 1", res.SkippedByBlocking)
	}
	if res.LLMComparisons != 1 {
		t.Errorf("comparisons = %d, want 1", res.LLMComparisons)
	}
}

func TestDedupeStrategies(t *testing.T) {
	// Three entities: one with 3 copies, one with 2, one singleton.
	ents := []Entity{
		{ID: "a1", Text: "J. Wang. indexing the positions of moving objects. SIGMOD, 2002"},
		{ID: "a2", Text: "J. Wang. indexing the positions of moving objcts. SIGMOD Conference, 2002"},
		{ID: "a3", Text: "J. Wang. indexing the positions of moving objects. Proc. SIGMOD, 2002"},
		{ID: "b1", Text: "K. Patel. robust federated learning at scale. KDD, 2015"},
		{ID: "b2", Text: "K. Patel. robust federated learning at scale. SIGKDD, 2015"},
		{ID: "c1", Text: "M. Rossi. query optimization for streaming joins. VLDB, 2008"},
	}
	e := newEngine(t, "sim-gpt-4")
	for _, strat := range []DedupeStrategy{DedupePairwise, DedupeBlockedPairwise, DedupeGroupBatch} {
		res, err := e.Dedupe(ctx(), DedupeRequest{Records: ents, Strategy: strat, BatchSize: 4})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(res.Groups) != 3 {
			t.Errorf("%s: groups = %v, want 3 groups", strat, res.Groups)
		}
	}
	// Blocking should reduce comparisons versus full pairwise.
	full, _ := e.Dedupe(ctx(), DedupeRequest{Records: ents, Strategy: DedupePairwise})
	blocked, _ := e.Dedupe(ctx(), DedupeRequest{Records: ents, Strategy: DedupeBlockedPairwise})
	if blocked.LLMComparisons >= full.LLMComparisons {
		t.Errorf("blocked comparisons (%d) should be below full (%d)", blocked.LLMComparisons, full.LLMComparisons)
	}
}

func TestImputeStrategies(t *testing.T) {
	d := dataset.GenerateRestaurants(200, 40, 9)
	e := newEngine(t, "sim-claude", WithParallelism(16))
	gold := d.Gold()

	accuracyOf := func(values []string) float64 {
		correct := 0
		for i, v := range values {
			if equalsFold(v, gold[i]) {
				correct++
			}
		}
		return float64(correct) / float64(len(gold))
	}
	knn, err := e.Impute(ctx(), ImputeRequest{Train: d.Train, Queries: d.Test, TargetField: "city", Strategy: ImputeKNN})
	if err != nil {
		t.Fatal(err)
	}
	if knn.LLMCalls != 0 || !knn.Usage.IsZero() {
		t.Fatal("knn strategy must not touch the model")
	}
	hybrid, err := e.Impute(ctx(), ImputeRequest{Train: d.Train, Queries: d.Test, TargetField: "city", Strategy: ImputeHybrid, Examples: 3})
	if err != nil {
		t.Fatal(err)
	}
	llmOnly, err := e.Impute(ctx(), ImputeRequest{Train: d.Train, Queries: d.Test, TargetField: "city", Strategy: ImputeLLM, Examples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.LLMCalls >= llmOnly.LLMCalls {
		t.Errorf("hybrid calls (%d) should undercut llm-only (%d)", hybrid.LLMCalls, llmOnly.LLMCalls)
	}
	if hybrid.Usage.Total() >= llmOnly.Usage.Total() {
		t.Errorf("hybrid tokens (%d) should undercut llm-only (%d)", hybrid.Usage.Total(), llmOnly.Usage.Total())
	}
	aKNN, aHybrid, aLLM := accuracyOf(knn.Values), accuracyOf(hybrid.Values), accuracyOf(llmOnly.Values)
	if aHybrid < aKNN {
		t.Errorf("hybrid accuracy (%.3f) below knn (%.3f)", aHybrid, aKNN)
	}
	if aHybrid < aLLM-0.05 {
		t.Errorf("hybrid accuracy (%.3f) should approximately match llm-only (%.3f)", aHybrid, aLLM)
	}
}

func equalsFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func TestImputeValidation(t *testing.T) {
	e := newEngine(t, "sim-claude")
	if _, err := e.Impute(ctx(), ImputeRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("empty request should fail")
	}
	q := dataset.Record{ID: "q", Fields: []dataset.Field{{Name: "a", Value: "1"}}}
	if _, err := e.Impute(ctx(), ImputeRequest{Queries: []dataset.Record{q}, TargetField: "x", Strategy: ImputeKNN}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("knn without train should fail")
	}
}

func TestFilterStrategies(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	items := dataset.FlavorNames()
	pred := "it is a chocolatey flavor"
	for _, strat := range []FilterStrategy{FilterPerItem, FilterMajority, FilterSequential} {
		res, err := e.Filter(ctx(), FilterRequest{Items: items, Predicate: pred, Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		kept := 0
		for _, k := range res.Keep {
			if k {
				kept++
			}
		}
		// True positives are 10 of 20; allow noise.
		if kept < 5 || kept > 15 {
			t.Errorf("%s kept %d of 20", strat, kept)
		}
		if res.Asks == 0 {
			t.Errorf("%s reported zero asks", strat)
		}
	}
	// Sequential must ask at least as much as per-item but is adaptive.
	seq, _ := e.Filter(ctx(), FilterRequest{Items: items, Predicate: pred, Strategy: FilterSequential})
	maj, _ := e.Filter(ctx(), FilterRequest{Items: items, Predicate: pred, Strategy: FilterMajority, Votes: 7})
	if seq.Asks >= maj.Asks {
		t.Errorf("sequential asks (%d) should undercut fixed-7 majority (%d)", seq.Asks, maj.Asks)
	}
}

func TestCountStrategies(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	items := dataset.FlavorNames()
	pred := "it is a chocolatey flavor"
	eye, err := e.Count(ctx(), CountRequest{Items: items, Predicate: pred, Strategy: CountEyeball})
	if err != nil {
		t.Fatal(err)
	}
	per, err := e.Count(ctx(), CountRequest{Items: items, Predicate: pred, Strategy: CountPerItem})
	if err != nil {
		t.Fatal(err)
	}
	// True count is 10.
	if eye.Count < 4 || eye.Count > 16 {
		t.Errorf("eyeball count = %d", eye.Count)
	}
	if per.Count < 6 || per.Count > 14 {
		t.Errorf("per-item count = %d", per.Count)
	}
	if eye.Usage.Total() >= per.Usage.Total() {
		t.Errorf("eyeball tokens (%d) should undercut per-item (%d)", eye.Usage.Total(), per.Usage.Total())
	}
}

func TestMaxStrategies(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	items := dataset.FlavorNames()
	crit := "how chocolatey they are"
	tour, err := e.Max(ctx(), MaxRequest{Items: items, Criterion: crit, Strategy: MaxTournament})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := e.Max(ctx(), MaxRequest{Items: items, Criterion: crit, Strategy: MaxRatingThenTournament})
	if err != nil {
		t.Fatal(err)
	}
	// The four most chocolatey flavours score within 0.12 of the maximum;
	// comparison noise makes them legitimately hard to separate, so any
	// of them is an acceptable consensus winner.
	topBand := map[string]bool{}
	for _, f := range dataset.FlavorGroundTruth()[:4] {
		topBand[f] = true
	}
	if !topBand[tour.Item] {
		t.Errorf("tournament max = %q, want a top-band flavour", tour.Item)
	}
	if !topBand[hybrid.Item] {
		t.Errorf("hybrid max = %q, want a top-band flavour", hybrid.Item)
	}
	if hybrid.Usage.Total() >= tour.Usage.Total() {
		t.Errorf("hybrid tokens (%d) should undercut tournament (%d)", hybrid.Usage.Total(), tour.Usage.Total())
	}
	if len(hybrid.Finalists) >= len(items) {
		t.Errorf("hybrid finalists = %d, want a reduced pool", len(hybrid.Finalists))
	}
	if _, err := e.Max(ctx(), MaxRequest{Items: []string{"only"}}); err != nil {
		t.Fatal("single item max should trivially succeed")
	}
}

func TestCategorizeDirect(t *testing.T) {
	e := newEngine(t, "sim-gpt-4")
	res, err := e.Categorize(ctx(), CategorizeRequest{
		Items:      []string{"chocolate fudge brownie", "lemon sorbet"},
		Categories: []string{"chocolate desserts", "fruit desserts"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != "chocolate desserts" {
		t.Errorf("assignment[0] = %q", res.Assignments[0])
	}
	if res.Assignments[1] != "fruit desserts" {
		t.Errorf("assignment[1] = %q", res.Assignments[1])
	}
}

func TestCategorizeTwoPhase(t *testing.T) {
	e := newEngine(t, "sim-gpt-4")
	res, err := e.Categorize(ctx(), CategorizeRequest{
		Items:    []string{"red apple", "green apple", "blue car", "fast car"},
		Strategy: CategorizeTwoPhase,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Categories) == 0 {
		t.Fatal("no categories discovered")
	}
	for i, a := range res.Assignments {
		found := false
		for _, c := range res.Categories {
			if a == c {
				found = true
			}
		}
		if !found {
			t.Errorf("assignment %d = %q outside scheme %v", i, a, res.Categories)
		}
	}
}

func TestJoinStrategies(t *testing.T) {
	left := []Entity{
		{ID: "l1", Text: "J. Wang. indexing the positions of moving objects. SIGMOD, 2002"},
		{ID: "l2", Text: "K. Patel. robust federated learning at scale. KDD, 2015"},
		{ID: "l3", Text: "M. Rossi. query optimization for streaming joins. VLDB, 2008"},
	}
	right := []Entity{
		{ID: "r1", Text: "J. Wang. indexing the positions of moving objcts. SIGMOD Conference, 2002"},
		{ID: "r2", Text: "K. Patel. robust federated learning at scale. SIGKDD, 2015"},
		{ID: "r3", Text: "A. Kim. neural architecture search in practice. ICML, 2019"},
	}
	e := newEngine(t, "sim-gpt-4")
	nested, err := e.Join(ctx(), JoinRequest{Left: left, Right: right, Strategy: JoinNestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := e.Join(ctx(), JoinRequest{Left: left, Right: right, Strategy: JoinTransitive, CandidateDistance: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := map[JoinPair]bool{
		{LeftID: "l1", RightID: "r1"}: true,
		{LeftID: "l2", RightID: "r2"}: true,
	}
	for _, res := range []JoinResult{nested, trans} {
		if len(res.Matches) != 2 {
			t.Fatalf("matches = %v", res.Matches)
		}
		for _, m := range res.Matches {
			if !wantPairs[m] {
				t.Fatalf("unexpected match %v", m)
			}
		}
	}
	if trans.LLMComparisons >= nested.LLMComparisons {
		t.Errorf("transitive comparisons (%d) should undercut nested loop (%d)",
			trans.LLMComparisons, nested.LLMComparisons)
	}
	// Duplicate IDs across sides are rejected.
	if _, err := e.Join(ctx(), JoinRequest{Left: left, Right: left}); !errors.Is(err, ErrBadRequest) {
		t.Fatal("duplicate IDs should fail")
	}
}

func TestPlanSortPicksCheapestMeetingTarget(t *testing.T) {
	e := newEngine(t, "sim-gpt-3.5-turbo")
	val := dataset.FlavorNames()[:10]
	gold := make([]string, 0, 10)
	for _, f := range dataset.FlavorGroundTruth() {
		for _, v := range val {
			if f == v {
				gold = append(gold, f)
			}
		}
	}
	plan, err := e.PlanSort(ctx(), val, gold, "how chocolatey they are",
		[]SortStrategy{SortOnePrompt, SortRating, SortPairwise}, 0.80, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reports) != 3 {
		t.Fatalf("reports = %d", len(plan.Reports))
	}
	// Reports must be sorted by projected cost.
	for i := 1; i < len(plan.Reports); i++ {
		if plan.Reports[i].ProjectedCost < plan.Reports[i-1].ProjectedCost {
			t.Fatal("reports not sorted by projected cost")
		}
	}
	// The chosen strategy must meet the target if any does.
	var metTarget bool
	for _, r := range plan.Reports {
		if r.Accuracy >= 0.80 {
			metTarget = true
		}
	}
	if metTarget {
		for _, r := range plan.Reports {
			if r.Name == plan.Chosen && r.Accuracy < 0.80 {
				t.Fatalf("chose %q with accuracy %.2f below target", plan.Chosen, r.Accuracy)
			}
		}
	}
}

// candidateFixed returns a Candidate reporting a fixed accuracy and a
// usage whose projected cost is approximately dollars.
func candidateFixed(name string, acc, dollars float64) Candidate {
	// sim-gpt-3.5-turbo input price is $0.0015 per 1K prompt tokens.
	tokens := int(dollars / 0.0015 * 1000)
	return Candidate{
		Name:        name,
		Model:       "sim-gpt-3.5-turbo",
		ScaleFactor: 1,
		Run: func(ctx context.Context) (float64, token.Usage, error) {
			return acc, token.Usage{PromptTokens: tokens}, nil
		},
	}
}

func TestPlanStrategiesRules(t *testing.T) {
	// Rule 2: nothing meets target; most accurate within budget wins.
	cands := []Candidate{
		candidateFixed("cheap", 0.5, 0.01),
		candidateFixed("mid", 0.7, 1.0),
		candidateFixed("pricey", 0.9, 10000),
	}
	plan, err := PlanStrategies(ctx(), cands, 0.95, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen != "mid" {
		t.Fatalf("chose %q, want mid (most accurate within budget)", plan.Chosen)
	}
	// Rule 1: pricey meets a 0.85 target with a big enough budget.
	plan, err = PlanStrategies(ctx(), cands, 0.85, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen != "pricey" {
		t.Fatalf("chose %q, want pricey", plan.Chosen)
	}
	// Rule 3: nothing within budget; cheapest overall.
	plan, err = PlanStrategies(ctx(), cands, 0.95, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen != "cheap" {
		t.Fatalf("chose %q, want cheap", plan.Chosen)
	}
	if _, err := PlanStrategies(ctx(), nil, 0.5, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatal("empty candidates should fail")
	}
}

func TestPlanImpute(t *testing.T) {
	d := dataset.GenerateRestaurants(120, 10, 4)
	e := newEngine(t, "sim-claude", WithParallelism(16))
	plan, err := e.PlanImpute(ctx(), d.Train, "city",
		[]ImputeStrategy{ImputeKNN, ImputeHybrid, ImputeLLM}, 30, 3, 0.80, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reports) != 3 {
		t.Fatalf("reports = %d", len(plan.Reports))
	}
	// KNN profiles at zero cost; it must appear first in the cost order.
	if plan.Reports[0].Name != string(ImputeKNN) {
		t.Fatalf("cheapest = %q, want knn", plan.Reports[0].Name)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// ImputeStrategy selects how missing values are filled.
type ImputeStrategy string

// Impute strategies (Section 3.4 of the paper).
const (
	// ImputeKNN imputes from the mode of the k nearest training records'
	// target values — the pure non-LLM proxy. Free.
	ImputeKNN ImputeStrategy = "knn"
	// ImputeLLM asks the model for every record, optionally with few-shot
	// examples drawn from the record's nearest training neighbours.
	ImputeLLM ImputeStrategy = "llm"
	// ImputeHybrid uses the k-NN value when all k neighbours agree and
	// asks the model only for the contested remainder — the paper's
	// hybrid, which matches LLM accuracy at roughly half the cost.
	ImputeHybrid ImputeStrategy = "hybrid"
)

// ImputeRequest asks for a missing attribute of each query record.
type ImputeRequest struct {
	// Train records carry ground-truth target values; they feed k-NN and
	// few-shot examples.
	Train []dataset.Record
	// Queries are the records to impute. Any existing target value is
	// ignored (and never shown to the model).
	Queries []dataset.Record
	// TargetField is the attribute to fill.
	TargetField string
	// Strategy selects the decomposition; default ImputeHybrid.
	Strategy ImputeStrategy
	// Neighbors is k for the k-NN component (default 3).
	Neighbors int
	// Examples is the number of few-shot examples per LLM prompt
	// (default 0: zero-shot).
	Examples int
}

// ImputeResult is the outcome of Impute.
type ImputeResult struct {
	// Values holds one imputed value per query, index-aligned.
	Values []string
	// LLMCalls counts queries that reached the model.
	LLMCalls int
	// KNNDecided counts queries answered by unanimous k-NN (hybrid) or by
	// k-NN mode (knn strategy).
	KNNDecided int
	// Usage is the total token spend.
	Usage token.Usage
}

// Impute fills the target field of every query record.
func (e *Engine) Impute(ctx context.Context, req ImputeRequest) (ImputeResult, error) {
	if len(req.Queries) == 0 {
		return ImputeResult{}, badRequestf("no queries to impute")
	}
	if req.TargetField == "" {
		return ImputeResult{}, badRequestf("missing target field")
	}
	if req.Strategy == "" {
		req.Strategy = ImputeHybrid
	}
	if req.Neighbors == 0 {
		req.Neighbors = 3
	}
	if req.Strategy != ImputeLLM && len(req.Train) == 0 {
		return ImputeResult{}, badRequestf("strategy %q needs training records", req.Strategy)
	}
	if (req.Examples > 0) && len(req.Train) < req.Examples {
		return ImputeResult{}, badRequestf("%d examples requested but only %d training records", req.Examples, len(req.Train))
	}

	// Index training records by their serialization without the target —
	// the same view the model gets, so neighbours reflect queryable
	// evidence only. The corpus is embedded in parallel, or reused outright
	// when an index registry already holds it (e.g. planner profiling runs
	// over the same training set).
	targets := make(map[string]string, len(req.Train))
	trainByID := make(map[string]dataset.Record, len(req.Train))
	trainItems := make([]embed.Item, 0, len(req.Train))
	for _, r := range req.Train {
		v, ok := r.Get(req.TargetField)
		if !ok {
			return ImputeResult{}, badRequestf("training record %q lacks target %q", r.ID, req.TargetField)
		}
		trainItems = append(trainItems, embed.Item{ID: r.ID, Text: r.WithoutField(req.TargetField).String()})
		targets[r.ID] = v
		trainByID[r.ID] = r
	}
	ix := e.index(trainItems)

	// Imputation prompts are homogeneous per-record unit tasks (the knn
	// strategy issues none, so the wrapper is inert there).
	s := e.newBatchedSession()
	res := ImputeResult{Values: make([]string, len(req.Queries))}

	// Each query is serialized and embedded exactly once: one top-k query
	// wide enough for both the k-NN vote and the few-shot example pool.
	kMax := req.Neighbors
	if req.Examples > kMax {
		kMax = req.Examples
	}
	serialized := make([]string, len(req.Queries))
	nnAll := make([][]embed.Neighbor, len(req.Queries))
	for i, q := range req.Queries {
		serialized[i] = q.WithoutField(req.TargetField).String()
		if len(req.Train) > 0 {
			nnAll[i] = ix.Nearest(serialized[i], kMax)
		}
	}

	type knnInfo struct {
		mode      string
		unanimous bool
		neighbors []embed.Neighbor
	}
	knn := make([]knnInfo, len(req.Queries))
	if len(req.Train) > 0 {
		for i := range req.Queries {
			nn := nnAll[i]
			if len(nn) > req.Neighbors {
				nn = nn[:req.Neighbors]
			}
			votes := make(map[string]int)
			order := []string{}
			for _, nb := range nn {
				v := targets[nb.ID]
				if votes[v] == 0 {
					order = append(order, v)
				}
				votes[v]++
			}
			best, bestN := "", 0
			for _, v := range order { // first-seen tie-break: nearest wins
				if votes[v] > bestN {
					best, bestN = v, votes[v]
				}
			}
			knn[i] = knnInfo{
				mode:      best,
				unanimous: len(nn) > 0 && bestN == len(nn),
				neighbors: nn,
			}
		}
	}

	askLLM := func(ctx context.Context, i int) (string, error) {
		var examples []prompt.Example
		if req.Examples > 0 {
			// Few-shot examples: the query's nearest training neighbours,
			// shown with their gold target (the paper's k'-neighbour
			// examples) — a prefix of the single per-query k-NN result.
			nn := nnAll[i]
			if len(nn) > req.Examples {
				nn = nn[:req.Examples]
			}
			for _, nb := range nn {
				examples = append(examples, prompt.Example{
					Input:  trainByID[nb.ID].WithoutField(req.TargetField).String(),
					Output: targets[nb.ID],
				})
			}
		}
		return quality.AskWithRetry(ctx, s.model, prompt.Impute(serialized[i], req.TargetField, examples),
			prompt.ParseValue, e.retries)
	}

	switch req.Strategy {
	case ImputeKNN:
		for i := range req.Queries {
			res.Values[i] = knn[i].mode
		}
		res.KNNDecided = len(req.Queries)
	case ImputeLLM:
		values, err := e.mapIdx(ctx, len(req.Queries), askLLM)
		if err != nil {
			return ImputeResult{}, fmt.Errorf("llm impute: %w", err)
		}
		copy(res.Values, values)
		res.LLMCalls = len(req.Queries)
	case ImputeHybrid:
		var contested []int
		for i := range req.Queries {
			if knn[i].unanimous {
				res.Values[i] = knn[i].mode
				res.KNNDecided++
			} else {
				contested = append(contested, i)
			}
		}
		values, err := workflowMapSubset(ctx, e, contested, askLLM)
		if err != nil {
			return ImputeResult{}, fmt.Errorf("hybrid impute: %w", err)
		}
		for k, i := range contested {
			res.Values[i] = values[k]
		}
		res.LLMCalls = len(contested)
	default:
		return ImputeResult{}, badRequestf("unknown impute strategy %q", req.Strategy)
	}
	res.Usage = s.usage()
	return res, nil
}

// workflowMapSubset fans fn out over an index subset, preserving subset
// order in the result.
func workflowMapSubset(ctx context.Context, e *Engine, subset []int, fn func(ctx context.Context, i int) (string, error)) ([]string, error) {
	return e.mapIdx(ctx, len(subset), func(ctx context.Context, k int) (string, error) {
		return fn(ctx, subset[k])
	})
}

// NearestTrainValues returns the k nearest training target values for a
// query — exposed for diagnostics and the planner's feature probes.
func NearestTrainValues(em embed.Embedder, train []dataset.Record, query dataset.Record, targetField string, k int) []string {
	ix := embed.NewIndex(em)
	targets := make(map[string]string, len(train))
	items := make([]embed.Item, 0, len(train))
	for _, r := range train {
		v, _ := r.Get(targetField)
		items = append(items, embed.Item{ID: r.ID, Text: r.WithoutField(targetField).String()})
		targets[r.ID] = v
	}
	ix.AddAll(items)
	nn := ix.Nearest(query.WithoutField(targetField).String(), k)
	out := make([]string, 0, len(nn))
	for _, nb := range nn {
		out = append(out, targets[nb.ID])
	}
	sort.Strings(out)
	return out
}

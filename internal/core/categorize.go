package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// CategorizeStrategy selects how items are assigned to categories.
type CategorizeStrategy string

// Categorize strategies (Jain et al.'s two-stage clustering, Section 3.2).
const (
	// CategorizeDirect assigns each item to one of the given categories.
	CategorizeDirect CategorizeStrategy = "direct"
	// CategorizeTwoPhase first asks the model to propose a category
	// scheme from a sample, then assigns every item to the discovered
	// scheme — for when no category set is known upfront.
	CategorizeTwoPhase CategorizeStrategy = "two-phase"
)

// CategorizeRequest asks for a category per item.
type CategorizeRequest struct {
	Items []string
	// Categories is the closed category set (required for
	// CategorizeDirect; ignored by CategorizeTwoPhase).
	Categories []string
	// Strategy selects the decomposition; default CategorizeDirect.
	Strategy CategorizeStrategy
	// SampleSize is the discovery sample for CategorizeTwoPhase
	// (default 10).
	SampleSize int
	// MaxCategories caps the discovered scheme (default 5).
	MaxCategories int
	// Seed drives the discovery sample selection.
	Seed int64
}

// CategorizeResult is the outcome of Categorize.
type CategorizeResult struct {
	// Assignments holds one category per item, index-aligned.
	Assignments []string
	// Categories is the category set used (given or discovered).
	Categories []string
	// Usage is the total token spend.
	Usage token.Usage
}

// Categorize assigns every item to a category.
func (e *Engine) Categorize(ctx context.Context, req CategorizeRequest) (CategorizeResult, error) {
	if len(req.Items) == 0 {
		return CategorizeResult{}, badRequestf("no items to categorize")
	}
	if req.Strategy == "" {
		req.Strategy = CategorizeDirect
	}
	if req.SampleSize == 0 {
		req.SampleSize = 10
	}
	if req.MaxCategories == 0 {
		req.MaxCategories = 5
	}
	// The assignment fan-out issues one homogeneous unit task per item;
	// the lone discovery call of the two-phase strategy just rides through
	// as a batch of one.
	s := e.newBatchedSession()
	categories := req.Categories
	if req.Strategy == CategorizeTwoPhase {
		sample := dataset.Sample(req.Items, req.SampleSize, req.Seed)
		discovered, err := quality.AskWithRetry(ctx, s.model,
			prompt.DiscoverCategories(sample, req.MaxCategories),
			func(text string) ([]string, error) {
				cats := prompt.ParseList(text)
				if len(cats) == 0 {
					return nil, prompt.ErrUnparseable
				}
				return cats, nil
			}, e.retries)
		if err != nil {
			return CategorizeResult{}, fmt.Errorf("category discovery: %w", err)
		}
		categories = discovered
	} else if req.Strategy != CategorizeDirect {
		return CategorizeResult{}, badRequestf("unknown categorize strategy %q", req.Strategy)
	}
	if len(categories) == 0 {
		return CategorizeResult{}, badRequestf("no categories to assign to")
	}
	assignments, err := e.mapIdx(ctx, len(req.Items), func(ctx context.Context, i int) (string, error) {
		return quality.AskWithRetry(ctx, s.model, prompt.Categorize(req.Items[i], categories),
			func(text string) (string, error) {
				v, err := prompt.ParseValue(text)
				if err != nil {
					return "", err
				}
				// Snap to the closest legal category; reject junk so the
				// retry loop re-asks.
				for _, c := range categories {
					if v == c {
						return c, nil
					}
				}
				return "", fmt.Errorf("%q not in category set: %w", v, prompt.ErrUnparseable)
			}, e.retries)
	})
	if err != nil {
		return CategorizeResult{}, fmt.Errorf("categorize: %w", err)
	}
	return CategorizeResult{
		Assignments: assignments,
		Categories:  categories,
		Usage:       s.usage(),
	}, nil
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/consistency"
	"repro/internal/embed"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// corpusIDs precomputes the string id of every corpus index once per
// request, keeping fmt.Sprintf out of the hot neighbour loops.
func corpusIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = strconv.Itoa(i)
	}
	return ids
}

// indexEntities builds a k-NN index over the corpus with one embedding
// pass (parallelised across CPUs), ids index-aligned with the corpus.
// With an index registry attached, the same corpus indexed by another
// stage or invocation is reused instead of re-embedded.
func (e *Engine) indexEntities(corpus []Entity, ids []string) *embed.Index {
	items := make([]embed.Item, len(corpus))
	for i, ent := range corpus {
		items[i] = embed.Item{ID: ids[i], Text: ent.Text}
	}
	return e.index(items)
}

// Entity is one record participating in entity resolution: an identifier
// plus the text the model sees.
type Entity struct {
	ID   string
	Text string
}

// ResolveStrategy selects how pairwise duplicate questions are answered.
type ResolveStrategy string

// Resolve strategies (Sections 3.3 and 3.4 of the paper).
const (
	// ResolveDirect asks the model one match question per pair — the
	// paper's Table 3 baseline. High precision, low recall.
	ResolveDirect ResolveStrategy = "direct"
	// ResolveTransitive augments each question with the k nearest
	// neighbours of both sides, compares all pairs within the
	// neighbourhood, and marks a pair as duplicate when any path of
	// "yes" judgements connects them (Section 3.3's internal-consistency
	// repair). Raises recall at a slight precision cost.
	ResolveTransitive ResolveStrategy = "transitive"
	// ResolveBlockedDirect short-circuits pairs whose embedding distance
	// exceeds a cutoff to "no" without an LLM call (Section 3.4's
	// non-LLM proxy), asking the model only about plausible pairs.
	ResolveBlockedDirect ResolveStrategy = "blocked-direct"
	// ResolveEvidence extends ResolveTransitive with the paper's stated
	// future work: flip BOTH "yes" and "no" answers when the surrounding
	// evidence is strong enough in the opposite direction. A direct "no"
	// becomes "yes" when a common neighbour links both sides; a direct
	// "yes" becomes "no" when several common neighbours agree with one
	// side but not the other and none supports the link.
	ResolveEvidence ResolveStrategy = "evidence"
)

// PairsRequest asks for match decisions over labelled record pairs drawn
// from a corpus.
type PairsRequest struct {
	// Corpus lists every record; neighbour augmentation searches it.
	Corpus []Entity
	// Pairs are (A, B) index pairs into Corpus to decide.
	Pairs [][2]int
	// Strategy selects the decomposition; default ResolveDirect.
	Strategy ResolveStrategy
	// Neighbors is the k of the k-NN augmentation (ResolveTransitive).
	Neighbors int
	// BlockDistance is the embedding L2 distance beyond which
	// ResolveBlockedDirect answers "no" for free (default 1.0).
	BlockDistance float64
}

// PairsResult is the outcome of ResolvePairs.
type PairsResult struct {
	// Match holds one decision per requested pair, index-aligned.
	Match []bool
	// LLMComparisons counts distinct match questions sent to the model.
	LLMComparisons int
	// FlippedByTransitivity counts pairs answered "no" directly but
	// promoted to "yes" by path evidence.
	FlippedByTransitivity int
	// FlippedToNo counts pairs answered "yes" directly but demoted by
	// contradicting evidence (ResolveEvidence only).
	FlippedToNo int
	// SkippedByBlocking counts pairs decided without the model.
	SkippedByBlocking int
	// Usage is the total token spend.
	Usage token.Usage
}

// ResolvePairs decides, for each requested pair, whether the two records
// refer to the same entity.
func (e *Engine) ResolvePairs(ctx context.Context, req PairsRequest) (PairsResult, error) {
	if len(req.Corpus) == 0 || len(req.Pairs) == 0 {
		return PairsResult{}, badRequestf("resolve needs a corpus and pairs")
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= len(req.Corpus) || p[1] < 0 || p[1] >= len(req.Corpus) {
			return PairsResult{}, badRequestf("pair index out of range: %v", p)
		}
	}
	if req.Strategy == "" {
		req.Strategy = ResolveDirect
	}
	if req.Neighbors < 0 {
		return PairsResult{}, badRequestf("negative neighbour count")
	}
	if req.BlockDistance == 0 {
		req.BlockDistance = 1.0
	}
	s := e.newSession()
	var (
		res PairsResult
		err error
	)
	switch req.Strategy {
	case ResolveDirect:
		res, err = e.resolveDirect(ctx, s, req)
	case ResolveTransitive:
		res, err = e.resolveTransitive(ctx, s, req)
	case ResolveEvidence:
		res, err = e.resolveEvidence(ctx, s, req)
	case ResolveBlockedDirect:
		res, err = e.resolveBlocked(ctx, s, req)
	default:
		return PairsResult{}, badRequestf("unknown resolve strategy %q", req.Strategy)
	}
	res.Usage = s.usage()
	return res, err
}

// matchOnce asks a single duplicate question.
func (e *Engine) matchOnce(ctx context.Context, s *session, a, b Entity) (bool, error) {
	return quality.AskWithRetry(ctx, s.model, prompt.MatchPair(a.Text, b.Text),
		prompt.ParseYesNo, e.retries)
}

func (e *Engine) resolveDirect(ctx context.Context, s *session, req PairsRequest) (PairsResult, error) {
	answers, err := e.mapIdx(ctx, len(req.Pairs), func(ctx context.Context, i int) (string, error) {
		p := req.Pairs[i]
		yes, err := e.matchOnce(ctx, s, req.Corpus[p[0]], req.Corpus[p[1]])
		if err != nil {
			return "", err
		}
		if yes {
			return "Y", nil
		}
		return "N", nil
	})
	if err != nil {
		return PairsResult{}, fmt.Errorf("direct resolve: %w", err)
	}
	res := PairsResult{Match: make([]bool, len(req.Pairs)), LLMComparisons: len(req.Pairs)}
	for i, a := range answers {
		res.Match[i] = a == "Y"
	}
	return res, nil
}

// resolveTransitive implements the Table 3 treatment: for each question
// pair, gather the k nearest corpus neighbours of both sides, ask the
// model about every pair within that neighbourhood (deduplicated
// globally — the cache makes repeats free and the count honest), build
// the global match graph, and answer each question by direct edge or by
// connectivity.
func (e *Engine) resolveTransitive(ctx context.Context, s *session, req PairsRequest) (PairsResult, error) {
	cmps, answers, err := e.neighbourhoodComparisons(ctx, s, req)
	if err != nil {
		return PairsResult{}, fmt.Errorf("transitive resolve: %w", err)
	}
	ids := corpusIDs(len(req.Corpus))
	graph := consistency.NewMatchGraph()
	direct := make(map[[2]int]bool, len(cmps))
	for i, c := range cmps {
		direct[c] = answers[i]
		graph.AddNode(ids[c[0]])
		graph.AddNode(ids[c[1]])
		if answers[i] {
			graph.AddMatch(ids[c[0]], ids[c[1]])
		}
	}
	res := PairsResult{Match: make([]bool, len(req.Pairs)), LLMComparisons: len(cmps)}
	for qi, p := range req.Pairs {
		a, b := p[0], p[1]
		if a > b {
			a, b = b, a
		}
		if direct[[2]int{a, b}] {
			res.Match[qi] = true
			continue
		}
		if graph.Connected(ids[a], ids[b]) {
			res.Match[qi] = true
			res.FlippedByTransitivity++
		}
	}
	return res, nil
}

func (e *Engine) resolveBlocked(ctx context.Context, s *session, req PairsRequest) (PairsResult, error) {
	ids := corpusIDs(len(req.Corpus))
	ix := e.indexEntities(req.Corpus, ids)
	res := PairsResult{Match: make([]bool, len(req.Pairs))}
	var askIdx []int
	for i, p := range req.Pairs {
		if d, ok := ix.DistanceByID(ids[p[0]], ids[p[1]]); ok && d > req.BlockDistance {
			res.SkippedByBlocking++ // decided "no" for free
			continue
		}
		askIdx = append(askIdx, i)
	}
	answers, err := e.mapIdx(ctx, len(askIdx), func(ctx context.Context, k int) (string, error) {
		p := req.Pairs[askIdx[k]]
		yes, err := e.matchOnce(ctx, s, req.Corpus[p[0]], req.Corpus[p[1]])
		if err != nil {
			return "", err
		}
		if yes {
			return "Y", nil
		}
		return "N", nil
	})
	if err != nil {
		return PairsResult{}, fmt.Errorf("blocked resolve: %w", err)
	}
	for k, a := range answers {
		res.Match[askIdx[k]] = a == "Y"
	}
	res.LLMComparisons = len(askIdx)
	return res, nil
}

// DedupeStrategy selects how Dedupe partitions a record set.
type DedupeStrategy string

// Dedupe strategies.
const (
	// DedupePairwise compares all pairs and unions "yes" edges — the
	// fine-grained O(n^2) decomposition.
	DedupePairwise DedupeStrategy = "pairwise"
	// DedupeGroupBatch shows the model batches of records and asks it to
	// group duplicates (coarse task), merging group edges across
	// overlapping batches — cheap but sloppier.
	DedupeGroupBatch DedupeStrategy = "group-batch"
	// DedupeBlockedPairwise blocks by embedding first, then runs pairwise
	// comparisons only within blocks.
	DedupeBlockedPairwise DedupeStrategy = "blocked-pairwise"
)

// DedupeRequest asks for a full duplicate partition of Records.
type DedupeRequest struct {
	Records []Entity
	// Strategy selects the decomposition; default DedupePairwise.
	Strategy DedupeStrategy
	// BatchSize is the records per coarse grouping prompt (default 10).
	BatchSize int
	// BlockDistance is the embedding blocking radius (default 0.9).
	BlockDistance float64
}

// DedupeResult is the outcome of Dedupe.
type DedupeResult struct {
	// Groups partitions record IDs into duplicate sets.
	Groups [][]string
	// LLMComparisons counts match questions issued (pairwise modes).
	LLMComparisons int
	// Usage is the total token spend.
	Usage token.Usage
}

// Dedupe partitions the records into groups referring to the same
// real-world entity.
func (e *Engine) Dedupe(ctx context.Context, req DedupeRequest) (DedupeResult, error) {
	if len(req.Records) == 0 {
		return DedupeResult{}, badRequestf("no records to dedupe")
	}
	if req.Strategy == "" {
		req.Strategy = DedupePairwise
	}
	if req.BatchSize == 0 {
		req.BatchSize = 10
	}
	if req.BlockDistance == 0 {
		req.BlockDistance = 0.9
	}
	s := e.newSession()
	graph := consistency.NewMatchGraph()
	for _, r := range req.Records {
		graph.AddNode(r.ID)
	}
	var (
		comparisons int
		err         error
	)
	switch req.Strategy {
	case DedupePairwise:
		comparisons, err = e.dedupePairs(ctx, s, req.Records, graph, allPairs(len(req.Records)))
	case DedupeBlockedPairwise:
		ids := corpusIDs(len(req.Records))
		ix := e.indexEntities(req.Records, ids)
		var pairs [][2]int
		for _, block := range ix.Blocks(req.BlockDistance) {
			idxs := make([]int, len(block))
			for i, id := range block {
				idxs[i], _ = strconv.Atoi(id)
			}
			for i := 0; i < len(idxs); i++ {
				for j := i + 1; j < len(idxs); j++ {
					pairs = append(pairs, [2]int{idxs[i], idxs[j]})
				}
			}
		}
		comparisons, err = e.dedupePairs(ctx, s, req.Records, graph, pairs)
	case DedupeGroupBatch:
		err = e.dedupeGroupBatch(ctx, s, req, graph)
	default:
		return DedupeResult{}, badRequestf("unknown dedupe strategy %q", req.Strategy)
	}
	if err != nil {
		return DedupeResult{}, err
	}
	return DedupeResult{
		Groups:         graph.Components(),
		LLMComparisons: comparisons,
		Usage:          s.usage(),
	}, nil
}

func allPairs(n int) [][2]int {
	var out [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

func (e *Engine) dedupePairs(ctx context.Context, s *session, records []Entity, graph *consistency.MatchGraph, pairs [][2]int) (int, error) {
	answers, err := e.mapIdx(ctx, len(pairs), func(ctx context.Context, k int) (string, error) {
		p := pairs[k]
		yes, err := e.matchOnce(ctx, s, records[p[0]], records[p[1]])
		if err != nil {
			return "", err
		}
		if yes {
			return "Y", nil
		}
		return "N", nil
	})
	if err != nil {
		return 0, fmt.Errorf("pairwise dedupe: %w", err)
	}
	for k, a := range answers {
		if a == "Y" {
			graph.AddMatch(records[pairs[k][0]].ID, records[pairs[k][1]].ID)
		}
	}
	return len(pairs), nil
}

// dedupeGroupBatch issues coarse grouping prompts over overlapping
// batches: consecutive batches share half their records so duplicate
// evidence can bridge batch boundaries (the task-sequencing concern of
// CrowdER that the paper cites).
func (e *Engine) dedupeGroupBatch(ctx context.Context, s *session, req DedupeRequest, graph *consistency.MatchGraph) error {
	n := len(req.Records)
	step := req.BatchSize / 2
	if step == 0 {
		step = 1
	}
	for start := 0; start < n; start += step {
		end := start + req.BatchSize
		if end > n {
			end = n
		}
		batch := req.Records[start:end]
		texts := make([]string, len(batch))
		for i, r := range batch {
			texts[i] = r.Text
		}
		groups, err := quality.AskWithRetry(ctx, s.model, prompt.GroupRecords(texts),
			func(text string) ([][]int, error) {
				g := prompt.ParseGroups(text, len(batch))
				if len(g) == 0 {
					return nil, prompt.ErrUnparseable
				}
				return g, nil
			}, e.retries)
		if err != nil {
			return fmt.Errorf("group batch at %d: %w", start, err)
		}
		for _, g := range groups {
			for i := 1; i < len(g); i++ {
				graph.AddMatch(batch[g[0]].ID, batch[g[i]].ID)
			}
		}
		if end == n {
			break
		}
	}
	return nil
}

func dedupeInts(in []int) []int {
	seen := make(map[int]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// resolveEvidence issues the same neighbourhood comparisons as
// resolveTransitive, then weighs local evidence both ways: for a
// questioned pair (A, B), the common neighbours C that were compared with
// both sides vote — yes(A,C) ∧ yes(C,B) supports the match, a split
// judgement opposes it. A direct "no" flips to "yes" on any support; a
// direct "yes" flips to "no" when at least two neighbours oppose and none
// supports (the "enough evidence in the opposite direction" rule the
// paper leaves as future work).
func (e *Engine) resolveEvidence(ctx context.Context, s *session, req PairsRequest) (PairsResult, error) {
	cmps, answers, err := e.neighbourhoodComparisons(ctx, s, req)
	if err != nil {
		return PairsResult{}, err
	}
	type cmp = [2]int
	yes := make(map[cmp]bool, len(cmps))
	// adjacency over issued comparisons: node -> compared nodes.
	compared := make(map[int]map[int]bool)
	record := func(a, b int, v bool) {
		if compared[a] == nil {
			compared[a] = make(map[int]bool)
		}
		compared[a][b] = true
	}
	for i, c := range cmps {
		v := answers[i]
		yes[cmp{c[0], c[1]}] = v
		record(c[0], c[1], v)
		record(c[1], c[0], v)
	}
	yesOf := func(a, b int) (bool, bool) {
		if a > b {
			a, b = b, a
		}
		v, ok := yes[cmp{a, b}]
		if !ok {
			return false, false
		}
		return v, true
	}
	res := PairsResult{Match: make([]bool, len(req.Pairs)), LLMComparisons: len(cmps)}
	for qi, p := range req.Pairs {
		a, b := p[0], p[1]
		direct, _ := yesOf(a, b)
		support, oppose := 0, 0
		for c := range compared[a] {
			if c == b || !compared[b][c] {
				continue
			}
			ac, ok1 := yesOf(a, c)
			cb, ok2 := yesOf(c, b)
			if !ok1 || !ok2 {
				continue
			}
			switch {
			case ac && cb:
				support++
			case ac != cb:
				oppose++
			}
		}
		switch {
		case !direct && support >= 1:
			res.Match[qi] = true
			res.FlippedByTransitivity++
		case direct && support == 0 && oppose >= 2:
			res.Match[qi] = false
			res.FlippedToNo++
		default:
			res.Match[qi] = direct
		}
	}
	return res, nil
}

// neighbourhoodComparisons collects and answers the union of k-NN
// neighbourhood comparisons for every questioned pair; shared by the
// transitive and evidence strategies. The corpus is embedded exactly
// once (indexed in parallel); neighbour queries reuse the stored vectors
// via NearestByID instead of re-embedding the query side.
func (e *Engine) neighbourhoodComparisons(ctx context.Context, s *session, req PairsRequest) ([][2]int, []bool, error) {
	ids := corpusIDs(len(req.Corpus))
	ix := e.indexEntities(req.Corpus, ids)
	nbrCache := make(map[int][]int)
	neighboursOf := func(side int) []int {
		if nbs, ok := nbrCache[side]; ok {
			return nbs
		}
		nbs := make([]int, 0, req.Neighbors)
		for _, nb := range ix.NearestByID(ids[side], req.Neighbors) {
			idx, err := strconv.Atoi(nb.ID)
			if err != nil {
				continue
			}
			nbs = append(nbs, idx)
		}
		nbrCache[side] = nbs
		return nbs
	}
	cmpSet := make(map[[2]int]bool)
	for _, p := range req.Pairs {
		members := []int{p[0], p[1]}
		for _, side := range p {
			members = append(members, neighboursOf(side)...)
		}
		members = dedupeInts(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				if a != b {
					cmpSet[[2]int{a, b}] = true
				}
			}
		}
	}
	cmps := make([][2]int, 0, len(cmpSet))
	for c := range cmpSet {
		cmps = append(cmps, c)
	}
	sort.Slice(cmps, func(i, j int) bool {
		if cmps[i][0] != cmps[j][0] {
			return cmps[i][0] < cmps[j][0]
		}
		return cmps[i][1] < cmps[j][1]
	})
	raw, err := e.mapIdx(ctx, len(cmps), func(ctx context.Context, i int) (string, error) {
		c := cmps[i]
		v, err := e.matchOnce(ctx, s, req.Corpus[c[0]], req.Corpus[c[1]])
		if err != nil {
			return "", err
		}
		if v {
			return "Y", nil
		}
		return "N", nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("neighbourhood comparisons: %w", err)
	}
	answers := make([]bool, len(raw))
	for i, r := range raw {
		answers[i] = r == "Y"
	}
	return cmps, answers, nil
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/token"
)

// Candidate is one strategy the planner can profile on a validation
// workload (Section 4: "Identifying Best Prompting Strategies
// Automatically").
type Candidate struct {
	// Name identifies the strategy in the plan report.
	Name string
	// Run executes the strategy on the validation workload, returning a
	// measured accuracy in [0, 1] and the usage spent.
	Run func(ctx context.Context) (accuracy float64, usage token.Usage, err error)
	// Model prices the usage for cost projection.
	Model string
	// ScaleFactor multiplies the validation cost to estimate the cost of
	// the full workload (e.g. (N/n)² for pairwise strategies).
	ScaleFactor float64
}

// CandidateReport is the measured profile of one candidate.
type CandidateReport struct {
	Name string
	// Accuracy measured on the validation workload.
	Accuracy float64
	// ValidationCost is the dollars spent profiling.
	ValidationCost float64
	// ProjectedCost is ValidationCost × ScaleFactor: the estimated
	// full-workload cost.
	ProjectedCost float64
	// Usage is the raw validation token usage.
	Usage token.Usage
}

// Plan is the planner's decision.
type Plan struct {
	// Chosen is the selected strategy name.
	Chosen string
	// Reason explains the selection rule that fired.
	Reason string
	// Reports profiles every candidate, sorted by projected cost.
	Reports []CandidateReport
}

// PlanStrategies profiles every candidate on its validation workload and
// picks a strategy: the cheapest candidate meeting targetAccuracy within
// maxDollars; failing that, the most accurate candidate within
// maxDollars; failing that, the cheapest candidate outright.
// maxDollars <= 0 means unlimited.
func PlanStrategies(ctx context.Context, candidates []Candidate, targetAccuracy, maxDollars float64) (Plan, error) {
	if len(candidates) == 0 {
		return Plan{}, badRequestf("no candidates to plan over")
	}
	reports := make([]CandidateReport, 0, len(candidates))
	for _, c := range candidates {
		if c.ScaleFactor <= 0 {
			return Plan{}, badRequestf("candidate %q has non-positive scale factor", c.Name)
		}
		acc, usage, err := c.Run(ctx)
		if err != nil {
			return Plan{}, fmt.Errorf("profiling %q: %w", c.Name, err)
		}
		cost := token.PriceFor(c.Model).Cost(usage)
		reports = append(reports, CandidateReport{
			Name:           c.Name,
			Accuracy:       acc,
			ValidationCost: cost,
			ProjectedCost:  cost * c.ScaleFactor,
			Usage:          usage,
		})
	}
	sort.SliceStable(reports, func(i, j int) bool {
		return reports[i].ProjectedCost < reports[j].ProjectedCost
	})
	within := func(r CandidateReport) bool {
		return maxDollars <= 0 || r.ProjectedCost <= maxDollars
	}
	// Rule 1: cheapest meeting the accuracy target within budget.
	for _, r := range reports {
		if r.Accuracy >= targetAccuracy && within(r) {
			return Plan{
				Chosen:  r.Name,
				Reason:  fmt.Sprintf("cheapest strategy meeting accuracy %.2f within budget", targetAccuracy),
				Reports: reports,
			}, nil
		}
	}
	// Rule 2: most accurate within budget.
	bestIdx := -1
	for i, r := range reports {
		if within(r) && (bestIdx < 0 || r.Accuracy > reports[bestIdx].Accuracy) {
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		return Plan{
			Chosen:  reports[bestIdx].Name,
			Reason:  "no strategy meets the accuracy target; most accurate within budget",
			Reports: reports,
		}, nil
	}
	// Rule 3: cheapest outright.
	return Plan{
		Chosen:  reports[0].Name,
		Reason:  "no strategy fits the budget; cheapest overall",
		Reports: reports,
	}, nil
}

// PlanSort profiles sort strategies on a labelled validation item set
// (gold is the true ranking, best first) and selects one for a full
// workload of fullSize items.
func (e *Engine) PlanSort(ctx context.Context, validation, gold []string, criterion string,
	strategies []SortStrategy, targetAccuracy, maxDollars float64, fullSize int) (Plan, error) {
	if len(validation) < 2 {
		return Plan{}, badRequestf("need at least 2 validation items")
	}
	if fullSize < len(validation) {
		fullSize = len(validation)
	}
	n, N := float64(len(validation)), float64(fullSize)
	scaleFor := func(s SortStrategy) float64 {
		switch s {
		case SortPairwise, SortPairwiseRepaired:
			return (N * (N - 1)) / (n * (n - 1))
		case SortHybridInsert:
			// Coarse pass scales linearly; the insert pass scales with the
			// (roughly linear) number of omissions times list length.
			return (N / n) * (N / n)
		case SortRatingThenPairwise:
			return (N / n) * 1.5
		default:
			return N / n
		}
	}
	candidates := make([]Candidate, 0, len(strategies))
	for _, strat := range strategies {
		strat := strat
		candidates = append(candidates, Candidate{
			Name:        string(strat),
			Model:       e.model.Name(),
			ScaleFactor: scaleFor(strat),
			Run: func(ctx context.Context) (float64, token.Usage, error) {
				res, err := e.Sort(ctx, SortRequest{
					Items:     validation,
					Criterion: criterion,
					Strategy:  strat,
				})
				if err != nil {
					return 0, token.Usage{}, err
				}
				tau, err := metrics.KendallTauRanks(gold, res.Ranked)
				if err != nil {
					return 0, res.Usage, nil // degenerate: score as 0
				}
				// Omissions count against accuracy proportionally.
				coverage := float64(len(res.Ranked)) / float64(len(validation))
				return ((tau + 1) / 2) * coverage, res.Usage, nil
			},
		})
	}
	return PlanStrategies(ctx, candidates, targetAccuracy, maxDollars)
}

// PlanImpute holds out holdout training records as labelled queries,
// profiles the given impute strategies on them, and selects one for a
// full workload of fullSize queries. Values are compared case-folded
// (formatting drift beyond casing still counts as wrong, as in the
// paper's exact-match protocol).
func (e *Engine) PlanImpute(ctx context.Context, train []dataset.Record, targetField string,
	strategies []ImputeStrategy, holdout, examples int, targetAccuracy, maxDollars float64, fullSize int) (Plan, error) {
	if holdout <= 0 || holdout >= len(train) {
		return Plan{}, badRequestf("holdout must be in (0, len(train))")
	}
	if fullSize < holdout {
		fullSize = holdout
	}
	val := train[len(train)-holdout:]
	rest := train[:len(train)-holdout]
	gold := make([]string, len(val))
	for i, r := range val {
		gold[i], _ = r.Get(targetField)
	}
	scale := float64(fullSize) / float64(holdout)
	candidates := make([]Candidate, 0, len(strategies))
	for _, strat := range strategies {
		strat := strat
		candidates = append(candidates, Candidate{
			Name:        string(strat),
			Model:       e.model.Name(),
			ScaleFactor: scale,
			Run: func(ctx context.Context) (float64, token.Usage, error) {
				res, err := e.Impute(ctx, ImputeRequest{
					Train:       rest,
					Queries:     val,
					TargetField: targetField,
					Strategy:    strat,
					Examples:    examples,
				})
				if err != nil {
					return 0, token.Usage{}, err
				}
				correct := 0
				for i, v := range res.Values {
					if strings.EqualFold(strings.TrimSpace(v), strings.TrimSpace(gold[i])) {
						correct++
					}
				}
				return float64(correct) / float64(len(gold)), res.Usage, nil
			},
		})
	}
	return PlanStrategies(ctx, candidates, targetAccuracy, maxDollars)
}

// PlanCompareTemplate profiles every comparison-template variant (and,
// optionally, its chain-of-thought form) on pairwise comparisons derived
// from a labelled validation ranking, and picks the cheapest variant
// meeting targetAccuracy within maxDollars — the Section 4 answer to
// prompt brittleness: measure the phrasings per model instead of
// guessing. gold lists the validation items best-first.
func (e *Engine) PlanCompareTemplate(ctx context.Context, gold []string, criterion string,
	includeCoT bool, targetAccuracy, maxDollars float64, fullComparisons int) (Plan, error) {
	if len(gold) < 3 {
		return Plan{}, badRequestf("need at least 3 validation items")
	}
	type pair struct{ hi, lo int }
	var pairs []pair
	for i := 0; i < len(gold); i++ {
		for j := i + 1; j < len(gold); j++ {
			pairs = append(pairs, pair{hi: i, lo: j})
		}
	}
	if fullComparisons < len(pairs) {
		fullComparisons = len(pairs)
	}
	scale := float64(fullComparisons) / float64(len(pairs))

	var candidates []Candidate
	addCandidate := func(variant int, cot bool) {
		name := fmt.Sprintf("variant-%d", variant)
		if cot {
			name += "+cot"
		}
		candidates = append(candidates, Candidate{
			Name:        name,
			Model:       e.model.Name(),
			ScaleFactor: scale,
			Run: func(ctx context.Context) (float64, token.Usage, error) {
				s := e.newSession()
				correct := 0
				for k, p := range pairs {
					// Alternate presentation order so position bias does
					// not masquerade as accuracy.
					a, b := gold[p.hi], gold[p.lo]
					wantA := true
					if k%2 == 1 {
						a, b = b, a
						wantA = false
					}
					aWins, err := compareOnce(ctx, s.model, e.retries, a, b, criterion, variant, cot)
					if err != nil {
						return 0, s.usage(), err
					}
					if aWins == wantA {
						correct++
					}
				}
				return float64(correct) / float64(len(pairs)), s.usage(), nil
			},
		})
	}
	for v := 0; v < prompt.CompareTemplateCount; v++ {
		addCandidate(v, false)
		if includeCoT {
			addCandidate(v, true)
		}
	}
	return PlanStrategies(ctx, candidates, targetAccuracy, maxDollars)
}

package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
)

func TestStrideSample(t *testing.T) {
	items := make([]string, 10)
	for i := range items {
		items[i] = fmt.Sprintf("item-%d", i)
	}
	got := strideSample(items, 4)
	want := []string{"item-0", "item-2", "item-5", "item-7"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stride sample = %v, want %v", got, want)
		}
	}
	if n := len(strideSample(items, 20)); n != 10 {
		t.Fatalf("oversized sample returned %d items, want all 10", n)
	}
	// Deterministic: the same inputs always probe the same records.
	again := strideSample(items, 4)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("stride sample is not deterministic")
		}
	}
}

func TestEstimateSelectivity(t *testing.T) {
	yesOn := func(s string) llm.Model {
		return llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			text := "No"
			if strings.Contains(req.Prompt, s) {
				text = "Yes"
			}
			return llm.Response{Text: text, Model: "m", Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1}}, nil
		}}
	}
	items := []string{"red-0", "blue-1", "red-2", "blue-3", "red-4", "blue-5"}
	e := New(yesOn("red"))
	est, err := e.EstimateSelectivity(context.Background(), FilterRequest{Items: items, Predicate: "p"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sampled != 6 || est.Kept != 3 || est.Fraction != 0.5 {
		t.Fatalf("estimate = %+v, want 3/6 kept", est)
	}
	if est.Usage.Calls == 0 {
		t.Fatal("probe reported zero usage")
	}
	// A smaller sample still strides the whole range.
	est, err = e.EstimateSelectivity(context.Background(), FilterRequest{Items: items, Predicate: "p"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sampled != 3 {
		t.Fatalf("sampled %d, want 3", est.Sampled)
	}
	if _, err := e.EstimateSelectivity(context.Background(), FilterRequest{Items: items, Predicate: "p"}, 0); err == nil {
		t.Fatal("sample 0 accepted")
	}
	if _, err := e.EstimateSelectivity(context.Background(), FilterRequest{Predicate: "p"}, 4); err == nil {
		t.Fatal("empty items accepted")
	}
}

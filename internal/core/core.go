// Package core is the declarative prompt-engineering engine — the paper's
// primary contribution. Users state a data-processing objective (sort,
// resolve, impute, filter, count, max, categorize, join) over data items;
// the engine decomposes it into unit LLM tasks under a chosen strategy,
// orchestrates the calls through budget control and caching, repairs the
// noisy answers with internal-consistency machinery, and aggregates a
// final result with full cost accounting.
//
// Every operator offers several strategies spanning the cost/accuracy
// trade-off of Section 3 of the paper; the planner (planner.go) profiles
// strategies on a labelled validation sample and recommends one, the
// AutoML-style workflow of Section 4.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workflow"
)

// ErrBadRequest reports an invalid operator request (empty input, unknown
// strategy, nonsensical parameters).
var ErrBadRequest = errors.New("core: bad request")

// Engine binds operators to a model, budget, and execution policy.
type Engine struct {
	model       llm.Model
	budget      *workflow.Budget
	embedder    embed.Embedder
	parallelism int
	retries     int
	cache       bool
	exec        *workflow.ExecLayer
	batch       int
	attr        *workflow.Attribution
	registry    *embed.Registry
	ixOpts      embed.IndexOptions
	stateDir    string
	stateErr    error
}

// Option configures an Engine.
type Option func(*Engine)

// WithBudget enforces the given budget on every LLM call the engine
// issues. Exhaustion surfaces as workflow.ErrBudgetExhausted.
func WithBudget(b *workflow.Budget) Option {
	return func(e *Engine) { e.budget = b }
}

// WithEmbedder overrides the embedding model used by k-NN-based
// strategies (default: embed.Default()).
func WithEmbedder(em embed.Embedder) Option {
	return func(e *Engine) { e.embedder = em }
}

// WithParallelism bounds concurrent LLM calls (default 8).
func WithParallelism(p int) Option {
	return func(e *Engine) { e.parallelism = p }
}

// WithRetries sets the parse-retry attempts per unit task (default 3).
func WithRetries(r int) Option {
	return func(e *Engine) { e.retries = r }
}

// WithoutCache disables response caching (enabled by default; identical
// unit tasks are answered once and re-served free, as in production
// deployments).
func WithoutCache() Option {
	return func(e *Engine) { e.cache = false }
}

// WithExecutionLayer attaches a shared execution layer: one sharded
// response cache plus one in-flight coalescer spanning every operator
// this engine runs — and every other engine given the same layer. It
// replaces the default per-invocation cache; WithoutCache is ignored
// while a layer is attached.
func WithExecutionLayer(l *workflow.ExecLayer) Option {
	return func(e *Engine) { e.exec = l }
}

// WithBatching packs up to k compatible unit tasks into one multi-task
// prompt for the strategies that issue homogeneous per-item tasks
// (per-item filter, categorize assignment, LLM imputation). k <= 1
// disables batching (the default). See workflow.BatchingModel for the
// splitting and retry semantics.
func WithBatching(k int) Option {
	return func(e *Engine) { e.batch = k }
}

// WithAttribution attaches a per-stage usage ledger: every upstream call
// the engine issues is recorded under the stage label carried by its
// context (workflow.TagStage), in addition to the per-invocation usage the
// operator results report. The pipeline executor uses this to break one
// shared budget down by stage; untagged calls land under the "" label.
func WithAttribution(a *workflow.Attribution) Option {
	return func(e *Engine) { e.attr = a }
}

// WithIndexRegistry attaches a shared embedding-index registry: operators
// that index a corpus (resolve, dedupe, join, find, impute) reuse one
// built index per distinct corpus instead of re-embedding it per
// invocation. Pass the same registry to every engine of a pipeline — or
// keep one per service — to make corpus indexing a once-per-content cost.
func WithIndexRegistry(r *embed.Registry) Option {
	return func(e *Engine) { e.registry = r }
}

// WithIndexOptions sets the embed.IndexOptions the engine's k-NN indexes
// are built with (default: exact search) — enable ANN probing or the
// int8-quantized tier for large corpora. Options are part of the
// registry slot key, so engines sharing one registry with different
// configurations never serve each other's indexes.
func WithIndexOptions(opts embed.IndexOptions) Option {
	return func(e *Engine) { e.ixOpts = opts }
}

// WithStateDir enables persistent warm state under dir, spanning both
// stateful layers with one flag: the engine's execution-layer cache is
// backed by an append-only log (dir/cache.log — replayed on startup,
// flushed via FlushState), and its index registry warm-loads persisted
// index files instead of re-embedding and re-clustering corpora it has
// seen before (see docs/PERSISTENCE.md). Missing registry or execution
// layer are created; pass explicit ones (shared across engines) before
// this option to persist those instead. State problems never fail
// engine construction — a fresh log is started and indexes rebuild —
// but are reported by StateError.
func WithStateDir(dir string) Option {
	return func(e *Engine) { e.stateDir = dir }
}

// New returns an engine using the given model.
func New(model llm.Model, opts ...Option) *Engine {
	e := &Engine{
		model:       model,
		budget:      workflow.Unlimited(),
		embedder:    embed.Default(),
		parallelism: 8,
		retries:     3,
		cache:       true,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.stateDir != "" {
		if e.registry == nil {
			e.registry = embed.NewRegistry()
		}
		e.registry.SetStateDir(e.stateDir)
		if e.exec == nil {
			e.exec = workflow.NewExecLayer()
		}
		if _, err := e.exec.OpenState(e.stateDir); err != nil {
			e.stateErr = err
		}
	}
	return e
}

// StateError reports what went wrong attaching the WithStateDir cache
// log, if anything: the engine runs regardless (state is an
// optimisation), but a caller that expected warm starts can surface it.
func (e *Engine) StateError() error { return e.stateErr }

// FlushState appends the cache entries added since the last flush to
// the persistent log — O(delta), see workflow.CacheLog — returning how
// many were written. Engines without persistent state flush nothing.
func (e *Engine) FlushState() (int, error) {
	if e.exec == nil || !e.exec.HasState() {
		return 0, nil
	}
	return e.exec.FlushState()
}

// CloseState flushes and detaches the persistent cache log. When the
// execution layer is shared, this closes state for every engine using it.
func (e *Engine) CloseState() error {
	if e.exec == nil || !e.exec.HasState() {
		return nil
	}
	return e.exec.CloseState()
}

// Model returns the engine's underlying model (unwrapped).
func (e *Engine) Model() llm.Model { return e.model }

// session wraps the engine's model for one operator invocation: budget
// admission, usage counting scoped to the operation, optional per-stage
// usage attribution (tag read from the call context), optional unit-task
// batching, and a cache — the engine's shared execution layer when one is
// attached, a private per-invocation cache otherwise.
type session struct {
	model    llm.Model
	counting *llm.CountingModel
}

func (e *Engine) newSession() *session { return e.sessionWith(false) }

// newBatchedSession is the opt-in entry for strategies whose fan-out
// issues homogeneous unit tasks: when the engine has batching enabled,
// concurrent tasks are packed into multi-task prompts. Usage counting
// sits below the batcher, so s.usage() reports the real (reduced)
// envelope spend.
func (e *Engine) newBatchedSession() *session { return e.sessionWith(true) }

func (e *Engine) sessionWith(batchable bool) *session {
	counting := llm.NewCounting(workflow.NewBudgeted(e.model, e.budget))
	var m llm.Model = counting
	if e.attr != nil {
		// Below the batcher and the cache, so attribution sees exactly the
		// billed upstream calls — envelopes once, cache hits never — tagged
		// with the stage label of the context that led the call.
		m = workflow.NewAttributing(m, e.attr)
	}
	if batchable && e.batch > 1 {
		opts := workflow.BatchOptions{MaxBatch: e.batch}
		if e.exec != nil {
			// The shared layer aggregates envelope and solo-retry counts
			// across every per-session batcher, so ExecLayer.Stats reports
			// batching alongside cache hits and coalescing.
			opts.Observer = e.exec
		}
		m = workflow.NewBatching(m, opts)
	}
	switch {
	case e.exec != nil:
		m = e.exec.Wrap(m)
	case e.cache:
		m = workflow.NewCached(m)
	}
	return &session{model: m, counting: counting}
}

// usage returns the tokens actually spent in this session (cache hits are
// free and therefore absent).
func (s *session) usage() token.Usage { return s.counting.Total() }

// index builds — or, when an index registry is attached, reuses — a k-NN
// index over the items. Registry-served indexes are shared and must be
// treated as query-only, which every operator already honours (build
// fully, then query).
func (e *Engine) index(items []embed.Item) *embed.Index {
	if e.registry != nil {
		return e.registry.IndexWith(e.embedder, items, e.ixOpts)
	}
	ix := embed.NewIndexWith(e.embedder, e.ixOpts)
	ix.AddAll(items)
	return ix
}

// mapIdx fans fn out over n indices with the engine's parallelism.
func (e *Engine) mapIdx(ctx context.Context, n int, fn func(ctx context.Context, i int) (string, error)) ([]string, error) {
	return workflow.Map(ctx, n, e.parallelism, fn)
}

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountEmpty(t *testing.T) {
	if got := Count(""); got != 0 {
		t.Fatalf("Count(\"\") = %d, want 0", got)
	}
	if got := Count("   \n\t "); got != 0 {
		t.Fatalf("Count(whitespace) = %d, want 0", got)
	}
}

func TestCountWords(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"cat", 1},
		{"cats", 1},
		{"hello", 2},       // 5 letters -> 2 tokens
		{"hello world", 4}, // 2+2
		{"a b c", 3},
		{"chocolate", 3}, // 9 letters -> ceil(9/4)=3
		{"Yes.", 2},      // word + period
		{"1234", 2},      // 4 digits -> 2 groups of 3
		{"12", 1},
		{"a,b", 3},
		{"don't", 3}, // don + ' + t
	}
	for _, tt := range tests {
		if got := Count(tt.in); got != tt.want {
			t.Errorf("Count(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestCountAll(t *testing.T) {
	if got := CountAll([]string{"cat", "dog"}); got != 2 {
		t.Fatalf("CountAll = %d, want 2", got)
	}
	if got := CountAll(nil); got != 0 {
		t.Fatalf("CountAll(nil) = %d, want 0", got)
	}
}

func TestCountMonotoneUnderConcat(t *testing.T) {
	// Property: Count(a + " " + b) == Count(a) + Count(b) since whitespace
	// separates token groups cleanly.
	f := func(a, b string) bool {
		return Count(a+" "+b) == Count(a)+Count(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountNonNegativeAndBounded(t *testing.T) {
	// Property: 0 <= Count(s) <= len([]rune(s)) — no token can be shorter
	// than one rune.
	f := func(s string) bool {
		c := Count(s)
		return c >= 0 && c <= len([]rune(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsageArithmetic(t *testing.T) {
	a := Usage{PromptTokens: 10, CompletionTokens: 5, Calls: 1}
	b := Usage{PromptTokens: 3, CompletionTokens: 2, Calls: 1}
	sum := a.Add(b)
	if sum.PromptTokens != 13 || sum.CompletionTokens != 7 || sum.Calls != 2 {
		t.Fatalf("Add = %+v", sum)
	}
	if sum.Total() != 20 {
		t.Fatalf("Total = %d, want 20", sum.Total())
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Fatalf("Sub = %+v, want %+v", diff, a)
	}
	if zero := (Usage{}); !zero.IsZero() {
		t.Fatal("zero usage should be zero")
	}
	if a.IsZero() {
		t.Fatal("non-zero usage reported zero")
	}
}

func TestUsageAddCommutative(t *testing.T) {
	f := func(p1, c1, n1, p2, c2, n2 int16) bool {
		a := Usage{int(p1), int(c1), int(n1)}
		b := Usage{int(p2), int(c2), int(n2)}
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPriceCost(t *testing.T) {
	p := Price{InputPer1K: 1.0, OutputPer1K: 2.0}
	u := Usage{PromptTokens: 1000, CompletionTokens: 500}
	if got := p.Cost(u); got != 1.0+1.0 {
		t.Fatalf("Cost = %f, want 2.0", got)
	}
}

func TestPriceFor(t *testing.T) {
	if PriceFor("sim-gpt-4").InputPer1K != 0.03 {
		t.Fatal("sim-gpt-4 price wrong")
	}
	// Unknown model falls back to gpt-3.5 rate, not zero.
	if PriceFor("no-such-model").InputPer1K == 0 {
		t.Fatal("fallback price should be non-zero")
	}
}

func TestRegisterPrice(t *testing.T) {
	RegisterPrice("test-model-xyz", Price{InputPer1K: 9, OutputPer1K: 9})
	if PriceFor("test-model-xyz").InputPer1K != 9 {
		t.Fatal("RegisterPrice did not take effect")
	}
}

func TestTruncateToTokens(t *testing.T) {
	s := "alpha beta gamma delta epsilon"
	full := Count(s)
	if got := TruncateToTokens(s, full); got != s {
		t.Fatalf("truncate at full count changed string: %q", got)
	}
	if got := TruncateToTokens(s, 0); got != "" {
		t.Fatalf("truncate to 0 = %q, want empty", got)
	}
	half := TruncateToTokens(s, full/2)
	if Count(half) > full/2 {
		t.Fatalf("truncated string has %d tokens, limit %d", Count(half), full/2)
	}
	if !strings.HasPrefix(s, half) {
		t.Fatalf("truncation %q is not a prefix of %q", half, s)
	}
}

func TestTruncatePrefixProperty(t *testing.T) {
	f := func(s string, limit uint8) bool {
		out := TruncateToTokens(s, int(limit))
		return Count(out) <= int(limit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package experiments

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
)

// IndexBenchConfig sizes the vector-retrieval micro-study behind
// `declctl index-bench`.
type IndexBenchConfig struct {
	// N is the number of indexed synthetic records.
	N int
	// K is the neighbours retrieved per query.
	K int
	// Queries is the number of timed queries (held out of the index).
	Queries int
	// Partitions / Probes configure the ANN index (0 = defaults).
	Partitions int
	Probes     int
	// Quantize additionally measures the int8-quantized tier: a "quant"
	// row (flat quantized scan) and, unless FlatOnly, an "ann+quant" row
	// (partition probing through the integer kernel).
	Quantize bool
	// RerankFactor is the quantized shortlist multiplier (0 = default).
	RerankFactor int
	// Seed drives the synthetic corpus (0 = 7, the repo's sim seed).
	Seed int64
	// FlatOnly skips the ANN modes — full-store scans only. The committed
	// ≥2x evidence row uses this: at large N the k-means assignment pass
	// would dominate a run whose point is the scan-kernel comparison.
	FlatOnly bool
	// StateDir enables warm index persistence: the fully equipped index
	// (every tier the other flags call for) is loaded from a .dpix file
	// in this directory when one matches the corpus, and saved after a
	// cold build otherwise. The exact row's build_ms then reports the
	// one-read load instead of the embed cost, and rows carry warm=true —
	// how `declctl index-bench -state-dir` measures the warm/rebuild
	// ratio pinned in BENCH_PR5.json.
	StateDir string
}

// DefaultIndexBenchConfig exercises the acceptance scale: 10k records,
// top-10 queries.
func DefaultIndexBenchConfig() IndexBenchConfig {
	return IndexBenchConfig{N: 10000, K: 10, Queries: 200, Seed: 7}
}

// IndexBenchRow reports one index mode's configuration, build time,
// query throughput, scan traffic, and recall against exact search.
// Everything but build_ms and qps is deterministic for a given config
// (recall is rounded to 3 decimals), so rows diff cleanly across
// machines — CI relies on this.
type IndexBenchRow struct {
	Mode           string  `json:"mode"`
	N              int     `json:"n"`
	Dim            int     `json:"dim"`
	Partitions     int     `json:"partitions"`
	Probes         int     `json:"probes"`
	Quantize       bool    `json:"quantize"`
	RerankFactor   int     `json:"rerank_factor"`
	BuildMS        float64 `json:"build_ms"`
	QPS            float64 `json:"qps"`
	Recall         float64 `json:"recall"`
	BytesPerRecord int     `json:"bytes_per_record"`
	// Warm reports that the run served this row from a persisted index
	// file (IndexBenchConfig.StateDir) instead of building it.
	Warm bool `json:"warm,omitempty"`
}

// IndexBench builds the requested index modes over one shared synthetic
// corpus and measures queries/sec and recall@K for each — the
// measured-recall knob made observable from the command line. The corpus
// is embedded exactly once: every non-exact mode is a WithOptions view
// over the base store, chained so the quantized code array and the
// k-means partitions are each built once and shared (codes flow
// quant → ann → ann+quant; partitions flow ann → ann+quant). Exact
// ground truth per query is computed once, during the exact row's timed
// pass, and reused for every recall figure.
func IndexBench(cfg IndexBenchConfig) ([]IndexBenchRow, error) {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.Queries <= 0 {
		return nil, fmt.Errorf("index-bench: N, K, Queries must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 7
	}
	// Queries are held out of the index: same corpus distribution, no
	// guaranteed self-hit inflating recall.
	texts := dataset.GenerateSyntheticTexts(cfg.N+cfg.Queries, seed)
	items := make([]embed.Item, cfg.N)
	for i := range items {
		items[i] = embed.Item{ID: fmt.Sprintf("s%d", i), Text: texts[i]}
	}
	queries := texts[cfg.N:]

	em := embed.Default()
	dim := em.Dim()

	// fullOpts is the most-equipped configuration this run touches — the
	// tier set persisted to (and warm-loadable from) the state dir.
	fullOpts := embed.IndexOptions{Quantize: cfg.Quantize, RerankFactor: cfg.RerankFactor}
	if !cfg.FlatOnly {
		fullOpts.ANN, fullOpts.Partitions, fullOpts.Probes = true, cfg.Partitions, cfg.Probes
	}

	var (
		base      *embed.Index
		warmIx    *embed.Index
		warm      bool
		statePath string
		embedMS   float64
	)
	if cfg.StateDir != "" {
		statePath = filepath.Join(cfg.StateDir, embed.IndexFileName(em, items, fullOpts))
		start := time.Now()
		if loaded, err := embed.LoadIndex(statePath, em, items, fullOpts); err == nil {
			// One read restored the store and every saved tier. The exact
			// row's build_ms becomes the load time — the number the warm
			// vs rebuild speedup in BENCH_PR5.json is computed from.
			warmIx, warm = loaded, true
			base = loaded.WithOptions(embed.IndexOptions{})
			embedMS = msSince(start)
		}
	}
	if base == nil {
		start := time.Now()
		base = embed.NewIndex(em)
		base.AddAll(items)
		embedMS = msSince(start)
	}

	// measure runs every query against ix, returning the per-query result
	// sets, throughput, and the time of one untimed warm-up query — which
	// forces the view's lazy tier builds, so it reports the code-array or
	// partition build cost.
	measure := func(ix *embed.Index) ([][]embed.Neighbor, float64, float64) {
		start := time.Now()
		ix.Nearest(queries[0], cfg.K)
		prepMS := msSince(start)
		res := make([][]embed.Neighbor, len(queries))
		start = time.Now()
		for i, q := range queries {
			res[i] = ix.Nearest(q, cfg.K)
		}
		return res, float64(len(queries)) / time.Since(start).Seconds(), prepMS
	}

	rerank := cfg.RerankFactor
	if rerank == 0 {
		rerank = embed.DefaultRerankFactor
	}
	row := func(mode string, opts embed.IndexOptions, buildMS, qps, recall float64) IndexBenchRow {
		r := IndexBenchRow{
			Mode: mode, N: cfg.N, Dim: dim,
			Quantize: opts.Quantize,
			BuildMS:  buildMS, QPS: qps,
			Recall:         math.Round(recall*1000) / 1000,
			BytesPerRecord: embed.ScanBytesPerRecord(opts, dim),
			Warm:           warm,
		}
		if opts.ANN {
			r.Partitions, r.Probes = cfg.Partitions, cfg.Probes
		}
		if opts.Quantize {
			r.RerankFactor = rerank
		}
		return r
	}

	truth, exactQPS, _ := measure(base)
	rows := []IndexBenchRow{row("exact", embed.IndexOptions{}, embedMS, exactQPS, 1)}

	// final tracks the most-equipped view of the chain — the one whose
	// options equal fullOpts and whose built tiers a cold run persists.
	src, final := base, base
	if cfg.Quantize {
		qOpts := embed.IndexOptions{Quantize: true, RerankFactor: cfg.RerankFactor}
		quant := base.WithOptions(qOpts)
		res, qps, prepMS := measure(quant)
		rows = append(rows, row("quant", qOpts, prepMS, qps, recallVs(truth, res)))
		src, final = quant, quant // carries the built code array into the ANN views
	}
	if !cfg.FlatOnly {
		annOpts := embed.IndexOptions{ANN: true, Partitions: cfg.Partitions, Probes: cfg.Probes}
		annSrc := src
		if warmIx != nil {
			// The warm index was saved under fullOpts, so its partition
			// structure transfers to views requesting the same
			// Partitions/Seed — the exact-options base view may have
			// dropped it when cfg.Partitions is non-default.
			annSrc = warmIx
		}
		ann := annSrc.WithOptions(annOpts)
		res, qps, prepMS := measure(ann)
		rows = append(rows, row("ann", annOpts, prepMS, qps, recallVs(truth, res)))
		final = ann
		if cfg.Quantize {
			aqOpts := annOpts
			aqOpts.Quantize, aqOpts.RerankFactor = true, cfg.RerankFactor
			annq := ann.WithOptions(aqOpts) // shares ann's partitions and quant's codes
			res, qps, prepMS := measure(annq)
			rows = append(rows, row("ann+quant", aqOpts, prepMS, qps, recallVs(truth, res)))
			final = annq
		}
	}
	// Cold run with a state dir: persist the fully equipped index so the
	// next invocation warm-loads it.
	if statePath != "" && !warm {
		if err := embed.SaveIndex(statePath, final, em, items); err != nil {
			return nil, fmt.Errorf("index-bench: save state: %w", err)
		}
	}
	return rows, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// recallVs averages per-query overlap with the exact result sets.
func recallVs(truth, got [][]embed.Neighbor) float64 {
	if len(truth) == 0 {
		return 1
	}
	var sum float64
	for i, tr := range truth {
		if len(tr) == 0 {
			sum++
			continue
		}
		want := make(map[string]bool, len(tr))
		for _, nb := range tr {
			want[nb.ID] = true
		}
		hit := 0
		for _, nb := range got[i] {
			if want[nb.ID] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(tr))
	}
	return sum / float64(len(truth))
}

// FormatIndexBench renders the study in the repo's table style.
func FormatIndexBench(rows []IndexBenchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %12s %10s %10s\n", "mode", "build(ms)", "queries/sec", "recall", "bytes/rec")
	byMode := make(map[string]IndexBenchRow, len(rows))
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10.1f %12.0f %10.3f %10d\n", r.Mode, r.BuildMS, r.QPS, r.Recall, r.BytesPerRecord)
		byMode[r.Mode] = r
	}
	exact, ok := byMode["exact"]
	if !ok || exact.QPS <= 0 {
		return sb.String()
	}
	for _, mode := range []string{"quant", "ann", "ann+quant"} {
		if r, ok := byMode[mode]; ok {
			fmt.Fprintf(&sb, "%s speedup over exact: %.1fx at recall %.3f\n", mode, r.QPS/exact.QPS, r.Recall)
		}
	}
	return sb.String()
}

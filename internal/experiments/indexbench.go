package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
)

// IndexBenchConfig sizes the vector-retrieval micro-study behind
// `declctl index-bench`.
type IndexBenchConfig struct {
	// N is the number of indexed sim records.
	N int
	// K is the neighbours retrieved per query.
	K int
	// Queries is the number of timed queries (drawn from the corpus).
	Queries int
	// Partitions / Probes configure the ANN index (0 = defaults).
	Partitions int
	Probes     int
}

// DefaultIndexBenchConfig exercises the acceptance scale: 10k records,
// top-10 queries.
func DefaultIndexBenchConfig() IndexBenchConfig {
	return IndexBenchConfig{N: 10000, K: 10, Queries: 200}
}

// IndexBenchRow reports one index mode's build time, query throughput,
// and recall against exact search.
type IndexBenchRow struct {
	Mode    string
	BuildMS float64
	QPS     float64
	Recall  float64
}

// IndexBench builds exact and ANN indexes over the citation sim corpus
// and measures queries/sec and recall@K for each — the measured-recall
// knob made observable from the command line.
func IndexBench(cfg IndexBenchConfig) ([]IndexBenchRow, error) {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.Queries <= 0 {
		return nil, fmt.Errorf("index-bench: N, K, Queries must be positive")
	}
	// Queries are held out of the index: same corpus distribution, no
	// guaranteed self-hit inflating recall.
	total := cfg.N + cfg.Queries
	corpus := dataset.GenerateCitations(dataset.CitationConfig{
		Entities: 2 * total, Pairs: 10, PositiveFrac: 0.24, Seed: 7,
	})
	if len(corpus.Records) < total {
		return nil, fmt.Errorf("index-bench: citation corpus yielded %d < %d records", len(corpus.Records), total)
	}
	items := make([]embed.Item, cfg.N)
	for i := range items {
		items[i] = embed.Item{ID: fmt.Sprintf("c%d", i), Text: corpus.Records[i].Text()}
	}
	queries := make([]string, cfg.Queries)
	for i := range queries {
		queries[i] = corpus.Records[cfg.N+i].Text()
	}

	build := func(opts embed.IndexOptions) (*embed.Index, float64) {
		start := time.Now()
		ix := embed.NewIndexWith(embed.Default(), opts)
		ix.AddAll(items)
		ix.Nearest(queries[0], cfg.K) // force partition build into build time
		return ix, float64(time.Since(start).Microseconds()) / 1000
	}
	exact, exactBuild := build(embed.IndexOptions{})
	ann, annBuild := build(embed.IndexOptions{ANN: true, Partitions: cfg.Partitions, Probes: cfg.Probes})

	qps := func(ix *embed.Index) float64 {
		start := time.Now()
		for _, q := range queries {
			ix.Nearest(q, cfg.K)
		}
		return float64(cfg.Queries) / time.Since(start).Seconds()
	}
	rows := []IndexBenchRow{
		{Mode: "exact", BuildMS: exactBuild, QPS: qps(exact), Recall: 1},
		{Mode: "ann", BuildMS: annBuild, QPS: qps(ann), Recall: embed.Recall(exact, ann, queries, cfg.K)},
	}
	return rows, nil
}

// FormatIndexBench renders the study in the repo's table style.
func FormatIndexBench(rows []IndexBenchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %12s %10s\n", "mode", "build(ms)", "queries/sec", "recall")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10.1f %12.0f %10.3f\n", r.Mode, r.BuildMS, r.QPS, r.Recall)
	}
	if len(rows) == 2 && rows[0].QPS > 0 {
		fmt.Fprintf(&sb, "ann speedup over exact: %.1fx at recall %.3f\n",
			rows[1].QPS/rows[0].QPS, rows[1].Recall)
	}
	return sb.String()
}

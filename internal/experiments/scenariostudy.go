package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/scenario"
)

// ScenarioStudyRow is one pre-built scenario's whole-run accounting on
// the deterministic sim engine.
type ScenarioStudyRow struct {
	// ID and Name identify the scenario.
	ID, Name string
	// Turns and Checkpoints count the scenario's shape.
	Turns, Checkpoints int
	// Passed reports whether every checkpoint held.
	Passed bool
	// Calls and Tokens are the upstream truth for the whole run; on the
	// sim engine both are deterministic and pinned in CI.
	Calls, Tokens int
	// SharedHits totals cache hits plus coalesced joins — the requests
	// the shared execution layer absorbed.
	SharedHits int
	// Rows is the final pipeline turn's output-table width.
	Rows int
	// Wall is the scenario's elapsed time (not deterministic; reported
	// for inspection only).
	Wall time.Duration
}

// ScenarioStudyResult runs every pre-built scenario through the harness.
type ScenarioStudyResult struct {
	Rows []ScenarioStudyRow
	// AllPassed is true when every scenario's every checkpoint held —
	// the single bit CI gates on.
	AllPassed bool
}

// ScenarioStudy drives all pre-built scenarios (internal/scenario.List)
// against the deterministic sim engine and collects per-scenario
// counters. Calls, tokens, shared hits, rows, and the pass verdicts are
// deterministic — the CI pin; wall clocks are not.
func ScenarioStudy(ctx context.Context) (*ScenarioStudyResult, error) {
	h := scenario.New(scenario.Options{})
	out := &ScenarioStudyResult{AllPassed: true}
	for _, sc := range scenario.List() {
		res, err := h.Run(ctx, sc)
		if err != nil {
			return nil, fmt.Errorf("scenario study: %s: %w", sc.ID, err)
		}
		row := ScenarioStudyRow{
			ID: sc.ID, Name: sc.Name,
			Turns: len(res.Turns), Checkpoints: len(res.Checkpoints),
			Passed: res.Passed,
			Calls:  res.TotalCalls, Tokens: res.TotalTokens,
			SharedHits: res.SharedHits, Wall: res.Wall,
		}
		for _, tr := range res.Turns {
			if tr.Kind == scenario.TurnQuery || tr.Kind == scenario.TurnBurst ||
				tr.Kind == scenario.TurnServer {
				row.Rows = tr.Rows
			}
		}
		if !res.Passed {
			out.AllPassed = false
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// FormatScenarioStudy renders the study as a text table.
func FormatScenarioStudy(res *ScenarioStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %6s %8s %8s %8s %6s %10s  %s\n",
		"Scenario", "Turns", "Chks", "Calls", "Tokens", "Shared", "Rows", "Wall", "Verdict")
	for _, r := range res.Rows {
		verdict := "PASS"
		if !r.Passed {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-24s %6d %6d %8d %8d %8d %6d %10s  %s\n",
			r.ID, r.Turns, r.Checkpoints, r.Calls, r.Tokens, r.SharedHits,
			r.Rows, r.Wall.Round(time.Microsecond), verdict)
	}
	fmt.Fprintf(&b, "all scenarios passed: %v\n", res.AllPassed)
	return b.String()
}

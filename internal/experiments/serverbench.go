package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/server"
)

// ServerBenchRow is one multi-tenant service round's machine-readable
// record: N tenants submit the bench workload concurrently against one
// resident declserver and the row reports what the round cost. The
// upstream and shared-hit counters are per-round deltas and
// deterministic (each unit ask is served exactly once — upstream, cache,
// or coalesced — so the split's sum is stable however the timing falls);
// wall_ms is machine-dependent and stripped by the CI diff.
type ServerBenchRow struct {
	Name           string `json:"name"`
	Tenants        int    `json:"tenants"`
	Submissions    int    `json:"submissions"`
	Completed      int    `json:"completed"`
	UpstreamCalls  int    `json:"upstream_calls"`
	UpstreamTokens int    `json:"upstream_tokens"`
	SharedHits     int    `json:"shared_hits"`
	Balanced       bool   `json:"balanced"`
	WallMS         int64  `json:"wall_ms"`
}

// ServerBench measures the declserver economics the service exists for:
// a cold concurrent burst (every tenant pays only for the asks the
// shared substrate cannot absorb — the whole burst costs one cold run)
// and a warm burst against the same resident server (upstream-free).
// Both rounds assert the attribution invariant: the per-tenant ledger
// sums to the global upstream truth.
func ServerBench(ctx context.Context) ([]ServerBenchRow, error) {
	spec, tables := benchWorkload()
	optimized, _, err := pipeline.Optimize(spec)
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		Model:         sim.NewNamed("sim-gpt-3.5-turbo"),
		MaxConcurrent: 2,
		MaxQueue:      64,
		Parallelism:   2,
	})

	const tenants, perTenant = 3, 2
	round := func(name string) (ServerBenchRow, error) {
		before := srv.Stats()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, tenants*perTenant)
		for ti := 0; ti < tenants; ti++ {
			id := fmt.Sprintf("tenant-%d", ti)
			for k := 0; k < perTenant; k++ {
				wg.Add(1)
				go func(slot int, id string) {
					defer wg.Done()
					st, err := srv.Submit(ctx, server.SubmitRequest{Tenant: id, Spec: optimized, Tables: tables})
					if err == nil && st.State != server.JobDone {
						err = fmt.Errorf("job ended %s: %s", st.State, st.Error)
					}
					errs[slot] = err
				}(ti*perTenant+k, id)
			}
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return ServerBenchRow{}, fmt.Errorf("server bench %s: %w", name, err)
			}
		}
		after := srv.Stats()
		return ServerBenchRow{
			Name:           name,
			Tenants:        tenants,
			Submissions:    tenants * perTenant,
			Completed:      tenants * perTenant,
			UpstreamCalls:  after.UpstreamCalls - before.UpstreamCalls,
			UpstreamTokens: after.UpstreamTokens - before.UpstreamTokens,
			SharedHits:     (after.CacheHits + after.Coalesced) - (before.CacheHits + before.Coalesced),
			Balanced:       after.Balanced,
			WallMS:         wall.Milliseconds(),
		}, nil
	}

	var rows []ServerBenchRow
	for _, name := range []string{"server-cold-burst", "server-warm-burst"} {
		row, err := round(name)
		if err != nil {
			return nil, err
		}
		if !row.Balanced {
			return nil, fmt.Errorf("server bench %s: tenant ledger does not sum to the upstream counters", row.Name)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

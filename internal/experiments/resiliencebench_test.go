package experiments

import (
	"strings"
	"testing"
)

// TestResilienceBenchPinned pins the chaos ladder's deterministic
// counters: the flicker burst must heal every fault by retry (full
// availability at zero quarantine), the sticky poison must quarantine
// exactly its afflicted prompts without wasting retries, and the total
// outage must quarantine everything while the run still completes. A
// diff here means retry, fault-injection, or quarantine accounting
// changed — rebase only with an explanation.
func TestResilienceBenchPinned(t *testing.T) {
	rows, err := ResilienceBench(ctx())
	if err != nil {
		t.Fatal(err)
	}
	want := []ResilienceBenchRow{
		{Name: "faultless", InjectedFaults: 0, Attempts: 8, Retries: 0,
			Quarantined: 0, Availability: 1, UpstreamCalls: 8, UpstreamTokens: 232},
		{Name: "flicker-heal", InjectedFaults: 8, Attempts: 16, Retries: 8,
			Quarantined: 0, Availability: 1, UpstreamCalls: 8, UpstreamTokens: 232},
		{Name: "poison-quarantine", InjectedFaults: 4, Attempts: 10, Retries: 0,
			Quarantined: 2, Availability: 0.75, UpstreamCalls: 6, UpstreamTokens: 175},
		{Name: "outage-degrade", InjectedFaults: 32, Attempts: 32, Retries: 16,
			Quarantined: 8, Availability: 0, UpstreamCalls: 0, UpstreamTokens: 0},
	}
	if len(rows) != len(want) {
		t.Fatalf("bench ran %d configs, want %d", len(rows), len(want))
	}
	for i, w := range want {
		g := rows[i]
		if g.Name != w.Name {
			t.Fatalf("row %d is %q, want %q", i, g.Name, w.Name)
		}
		if g.RecordsIn != 8 || g.Skipped != 0 {
			t.Errorf("%s: records_in %d skipped %d, want 8 and 0", g.Name, g.RecordsIn, g.Skipped)
		}
		if g.InjectedFaults != w.InjectedFaults || g.Attempts != w.Attempts ||
			g.Retries != w.Retries || g.Quarantined != w.Quarantined ||
			g.Availability != w.Availability ||
			g.UpstreamCalls != w.UpstreamCalls || g.UpstreamTokens != w.UpstreamTokens {
			t.Errorf("%s: %+v differs from pinned %+v", g.Name, g, w)
		}
	}
}

// TestResilienceBenchFormat smoke-tests the text rendering.
func TestResilienceBenchFormat(t *testing.T) {
	rows, err := ResilienceBench(ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResilienceBench(rows)
	for _, frag := range []string{"flicker-heal", "outage-degrade", "burst-every=2"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("formatted bench lacks %q:\n%s", frag, out)
		}
	}
}

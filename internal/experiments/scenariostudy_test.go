package experiments

import (
	"strings"
	"testing"
)

// TestScenarioStudyPinned pins the study's deterministic counters on the
// stock sim engine: every pre-built scenario must pass all checkpoints
// at exactly these upstream calls, tokens, shared (cache + coalesced)
// hits, and final rows. A diff here means engine behaviour changed —
// rebase the numbers only with an explanation.
func TestScenarioStudyPinned(t *testing.T) {
	res, err := ScenarioStudy(ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPassed {
		for _, r := range res.Rows {
			if !r.Passed {
				t.Errorf("scenario %s failed its checkpoints", r.ID)
			}
		}
		t.Fatal("scenario study: not every checkpoint passed")
	}
	want := []ScenarioStudyRow{
		{ID: "cold-start", Calls: 3, Tokens: 85, SharedHits: 9, Rows: 4},
		{ID: "warm-cache-replay", Calls: 3, Tokens: 85, SharedHits: 21, Rows: 4},
		{ID: "mid-run-ingestion", Calls: 3, Tokens: 85, SharedHits: 17, Rows: 7},
		{ID: "burst-load", Calls: 3, Tokens: 85, SharedHits: 45, Rows: 4},
		{ID: "overlap-ingestion", Calls: 12, Tokens: 578, SharedHits: 12, Rows: 3},
		{ID: "adaptive-replan-drift", Calls: 3, Tokens: 86, SharedHits: 16, Rows: 2},
		{ID: "declserver-multi-tenant", Calls: 3, Tokens: 85, SharedHits: 93, Rows: 4},
		{ID: "fault-burst-recovery", Calls: 6, Tokens: 173, SharedHits: 49, Rows: 4},
		{ID: "breaker-open-recover", Calls: 4, Tokens: 114, SharedHits: 37, Rows: 4},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("study ran %d scenarios, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		g := res.Rows[i]
		if g.ID != w.ID {
			t.Fatalf("row %d is %q, want %q", i, g.ID, w.ID)
		}
		if g.Calls != w.Calls || g.Tokens != w.Tokens || g.SharedHits != w.SharedHits || g.Rows != w.Rows {
			t.Errorf("%s: {calls %d, tokens %d, shared %d, rows %d} differs from pinned {%d, %d, %d, %d}",
				g.ID, g.Calls, g.Tokens, g.SharedHits, g.Rows,
				w.Calls, w.Tokens, w.SharedHits, w.Rows)
		}
	}
}

// TestScenarioStudyFormat smoke-tests the text rendering.
func TestScenarioStudyFormat(t *testing.T) {
	res, err := ScenarioStudy(ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScenarioStudy(res)
	for _, frag := range []string{"cold-start", "adaptive-replan-drift", "all scenarios passed: true"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("formatted study lacks %q:\n%s", frag, out)
		}
	}
}

// TestBenchStandingQueryRow pins the scenario-derived bench
// configuration: the standing-query row must be present with
// deterministic upstream counters (the serial execution keeps even the
// cache-hit/coalesce split stable), so the committed BENCH_PR5.json
// diffs cleanly in CI.
func TestBenchStandingQueryRow(t *testing.T) {
	report, err := PipelineBench(ctx(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range report.Benchmarks {
		if row.Name != "scenario-standing-query" {
			continue
		}
		if row.UpstreamCalls != 30 || row.UpstreamTokens != 2520 ||
			row.CacheHits != 3 || row.Coalesced != 0 {
			t.Fatalf("standing-query bench counters {calls %d, tokens %d, hits %d, coalesced %d} differ from pinned {30, 2520, 3, 0}",
				row.UpstreamCalls, row.UpstreamTokens, row.CacheHits, row.Coalesced)
		}
		return
	}
	t.Fatal("bench report lacks the scenario-standing-query row")
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/workflow"
)

// ExecLayerRow is one configuration's result on the repeated-workload
// execution-layer study.
type ExecLayerRow struct {
	// Config labels the execution configuration.
	Config string
	// UpstreamCalls is how many completions actually reached the model.
	UpstreamCalls int
	// UpstreamTokens is the total token volume of those calls.
	UpstreamTokens int
	// CacheHits and Coalesced describe the shared layer's work (zero for
	// the isolated baseline).
	CacheHits, Coalesced int
	// Reduction is baseline upstream calls divided by this row's.
	Reduction float64
}

// ExecLayerConfig parameterises the execution-layer study.
type ExecLayerConfig struct {
	// Model is the simulated model name.
	Model string
	// Items is the workload width (records per operator).
	Items int
	// Repeats is how many times the whole operator mix re-runs — the
	// "dashboard refresh" scenario where a production service answers the
	// same declarative queries again and again.
	Repeats int
	// Batch is the unit tasks per envelope for the batched configuration.
	Batch int
	// Parallelism bounds concurrent calls.
	Parallelism int
}

// DefaultExecLayerConfig returns the study's stock shape.
func DefaultExecLayerConfig() ExecLayerConfig {
	return ExecLayerConfig{Model: "sim-gpt-3.5-turbo", Items: 60, Repeats: 3, Batch: 8, Parallelism: 16}
}

// execWorkload runs the operator mix (per-item filter, direct categorize,
// LLM imputation) once against the engine. The mix deliberately overlaps:
// filter and categorize see the same items, so a shared cache also reuses
// nothing *between* them (distinct prompts) — the reuse comes from
// repeats, which is the honest production scenario.
func execWorkload(ctx context.Context, engine *core.Engine, items []string, imp *dataset.ImputationDataset) error {
	if _, err := engine.Filter(ctx, core.FilterRequest{
		Items:     items,
		Predicate: "the flavor contains chocolate",
		Strategy:  core.FilterPerItem,
	}); err != nil {
		return fmt.Errorf("filter: %w", err)
	}
	if _, err := engine.Categorize(ctx, core.CategorizeRequest{
		Items:      items,
		Categories: []string{"chocolate", "fruit", "nut", "other"},
		Strategy:   core.CategorizeDirect,
	}); err != nil {
		return fmt.Errorf("categorize: %w", err)
	}
	if _, err := engine.Impute(ctx, core.ImputeRequest{
		Train:       imp.Train,
		Queries:     imp.Test,
		TargetField: imp.TargetField,
		Strategy:    core.ImputeLLM,
	}); err != nil {
		return fmt.Errorf("impute: %w", err)
	}
	return nil
}

// ExecLayerStudy measures what the shared execution layer buys on a
// repeated workload. Three configurations run the identical operator mix
// Repeats times:
//
//   - isolated: the seed behaviour — every operator invocation gets a
//     private cache, so repeats pay full price;
//   - shared: one ExecLayer (sharded cache + coalescer) across all
//     engines and repeats;
//   - shared+batch: the same layer plus unit-task batching.
//
// Upstream calls are counted below every wrapper, at the simulator
// boundary, so the numbers are what a vendor would actually bill.
func ExecLayerStudy(ctx context.Context, cfg ExecLayerConfig) ([]ExecLayerRow, error) {
	if cfg.Items < 2 {
		return nil, fmt.Errorf("exec-layer study: need at least 2 items, got %d", cfg.Items)
	}
	if cfg.Repeats < 1 {
		return nil, fmt.Errorf("exec-layer study: need at least 1 repeat, got %d", cfg.Repeats)
	}
	flavors := dataset.FlavorNames()
	items := make([]string, cfg.Items)
	for i := range items {
		items[i] = flavors[i%len(flavors)]
	}
	imp := dataset.GenerateRestaurants(120, cfg.Items/2, 11)

	type config struct {
		label string
		layer *workflow.ExecLayer
		batch int
	}
	configs := []config{
		{"isolated caches (seed)", nil, 0},
		{"shared layer", workflow.NewExecLayer(), 0},
		{fmt.Sprintf("shared layer + batch %d", cfg.Batch), workflow.NewExecLayer(), cfg.Batch},
	}
	rows := make([]ExecLayerRow, 0, len(configs))
	for _, c := range configs {
		upstream := llm.NewCounting(sim.NewNamed(cfg.Model))
		opts := []core.Option{core.WithParallelism(cfg.Parallelism)}
		if c.layer != nil {
			opts = append(opts, core.WithExecutionLayer(c.layer))
		}
		if c.batch > 1 {
			opts = append(opts, core.WithBatching(c.batch))
		}
		for r := 0; r < cfg.Repeats; r++ {
			// A fresh engine per repeat mirrors independent requests
			// hitting a service; only the layer persists.
			engine := core.New(upstream, opts...)
			if err := execWorkload(ctx, engine, items, imp); err != nil {
				return nil, fmt.Errorf("exec study %q repeat %d: %w", c.label, r, err)
			}
		}
		total := upstream.Total()
		row := ExecLayerRow{
			Config:         c.label,
			UpstreamCalls:  total.Calls,
			UpstreamTokens: total.Total(),
		}
		if c.layer != nil {
			st := c.layer.Stats()
			row.CacheHits, row.Coalesced = st.CacheHits, st.Coalesced
		}
		rows = append(rows, row)
	}
	base := float64(rows[0].UpstreamCalls)
	for i := range rows {
		rows[i].Reduction = base / float64(rows[i].UpstreamCalls)
	}
	return rows, nil
}

// FormatExecLayerStudy renders rows as a text table.
func FormatExecLayerStudy(rows []ExecLayerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %12s %10s %10s %10s\n",
		"Configuration", "# Calls", "# Tokens", "Hits", "Coalesced", "Reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10d %12d %10d %10d %9.1fx\n",
			r.Config, r.UpstreamCalls, r.UpstreamTokens, r.CacheHits, r.Coalesced, r.Reduction)
	}
	return b.String()
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func ctx() context.Context { return context.Background() }

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(ctx(), DefaultTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, rating, pairwise := rows[0], rows[1], rows[2]
	// Paper shape: pairwise most accurate and most expensive; one-prompt
	// cheapest and least accurate; ratings in between on cost.
	if !(pairwise.KendallTau > rating.KendallTau && pairwise.KendallTau > one.KendallTau) {
		t.Errorf("pairwise should win: %+v", rows)
	}
	if !(one.PromptTokens < rating.PromptTokens && rating.PromptTokens < pairwise.PromptTokens) {
		t.Errorf("prompt token ordering violated: %+v", rows)
	}
	// Paper bands (±0.12): 0.526 / 0.547 / 0.737.
	for i, want := range []float64{0.526, 0.547, 0.737} {
		if diff := rows[i].KendallTau - want; diff > 0.12 || diff < -0.12 {
			t.Errorf("row %d tau = %.3f, paper %.3f", i, rows[i].KendallTau, want)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Sorting in one prompt") {
		t.Error("format output missing method label")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(ctx(), DefaultTable2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		base, hybrid := rows[i], rows[i+1]
		if base.Method != "Sorting in one prompt" || hybrid.Method != "Sort then insert" {
			t.Fatalf("row order wrong: %+v", rows[i:i+2])
		}
		// Paper shape: the baseline misses 4–7 words and hallucinates 0–1;
		// the hybrid recovers everything and scores near-perfect.
		if base.Missing < 1 || base.Missing > 10 {
			t.Errorf("trial %d baseline missing = %d", base.Trial, base.Missing)
		}
		if base.Hallucinated > 3 {
			t.Errorf("trial %d baseline hallucinated = %d", base.Trial, base.Hallucinated)
		}
		if hybrid.Missing != 0 {
			t.Errorf("trial %d hybrid missing = %d", hybrid.Trial, hybrid.Missing)
		}
		if hybrid.Score <= base.Score {
			t.Errorf("trial %d hybrid (%.3f) should beat baseline (%.3f)", base.Trial, hybrid.Score, base.Score)
		}
		if hybrid.Score < 0.97 {
			t.Errorf("trial %d hybrid score = %.3f, want near-perfect", base.Trial, hybrid.Score)
		}
	}
	if !strings.Contains(FormatTable2(rows), "Sort then insert") {
		t.Error("format output missing method label")
	}
}

// smallTable3Config keeps the test fast while preserving the corpus
// structure.
func smallTable3Config() Table3Config {
	cfg := DefaultTable3Config()
	cfg.Citations = dataset.CitationConfig{Entities: 250, Pairs: 900, PositiveFrac: 0.24, Seed: 7}
	return cfg
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(ctx(), smallTable3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, k1, k2 := rows[0], rows[1], rows[2]
	// Paper shape: baseline has high precision, low recall; neighbours
	// raise recall and F1.
	if base.Precision < 0.9 {
		t.Errorf("baseline precision = %.3f", base.Precision)
	}
	if base.Recall > 0.65 {
		t.Errorf("baseline recall = %.3f, want low", base.Recall)
	}
	if !(k1.F1 > base.F1) {
		t.Errorf("k=1 F1 (%.3f) should beat baseline (%.3f)", k1.F1, base.F1)
	}
	if !(k2.Recall >= k1.Recall) {
		t.Errorf("recall should not drop from k=1 (%.3f) to k=2 (%.3f)", k1.Recall, k2.Recall)
	}
	if !(k1.LLMComparisons > base.LLMComparisons && k2.LLMComparisons > k1.LLMComparisons) {
		t.Errorf("comparison counts should grow with k: %d %d %d",
			base.LLMComparisons, k1.LLMComparisons, k2.LLMComparisons)
	}
	if !strings.Contains(FormatTable3(rows), "0 (Baseline)") {
		t.Error("format output missing baseline label")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(ctx(), DefaultTable4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	knn, hyb0, llm0, hybK, llmK := rows[0], rows[1], rows[2], rows[3], rows[4]
	// k-NN costs nothing.
	if knn.RestTokens != 0 || knn.BuyTokens != 0 {
		t.Error("k-NN must be free")
	}
	// Hybrid always undercuts LLM-only on tokens.
	if hyb0.RestTokens >= llm0.RestTokens || hyb0.BuyTokens >= llm0.BuyTokens {
		t.Errorf("hybrid(no ex) should undercut llm-only: %+v vs %+v", hyb0, llm0)
	}
	if hybK.RestTokens >= llmK.RestTokens || hybK.BuyTokens >= llmK.BuyTokens {
		t.Errorf("hybrid(ex) should undercut llm-only: %+v vs %+v", hybK, llmK)
	}
	// Paper shape, Restaurants: hybrid(no ex) beats both k-NN and
	// LLM-only(no ex).
	if !(hyb0.RestAcc > knn.RestAcc && hyb0.RestAcc > llm0.RestAcc) {
		t.Errorf("restaurants hybrid(no ex) should win: knn %.3f hybrid %.3f llm %.3f",
			knn.RestAcc, hyb0.RestAcc, llm0.RestAcc)
	}
	// Paper shape, Buy: k-NN is weakest; LLM benefits from examples.
	if !(knn.BuyAcc < llm0.BuyAcc) {
		t.Errorf("buy k-NN (%.3f) should lose to llm-only (%.3f)", knn.BuyAcc, llm0.BuyAcc)
	}
	if !(llmK.BuyAcc > llm0.BuyAcc) {
		t.Errorf("buy llm with examples (%.3f) should beat zero-shot (%.3f)", llmK.BuyAcc, llm0.BuyAcc)
	}
	// With examples, hybrid is within a few points of LLM-only.
	if hybK.RestAcc < llmK.RestAcc-0.08 || hybK.BuyAcc < llmK.BuyAcc-0.08 {
		t.Errorf("hybrid(ex) should approximately match llm-only(ex): %+v vs %+v", hybK, llmK)
	}
	if !strings.Contains(FormatTable4(rows), "Naive k-NN") {
		t.Error("format output missing strategy label")
	}
}

func TestAblationBatchSize(t *testing.T) {
	rows, err := AblationBatchSize(ctx(), "sim-gpt-3.5-turbo", 40, 1, []int{4, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PairF1 <= 0 || r.PairF1 > 1 {
			t.Errorf("batch %d F1 = %.3f", r.BatchSize, r.PairF1)
		}
		if r.Tokens <= 0 {
			t.Errorf("batch %d tokens = %d", r.BatchSize, r.Tokens)
		}
	}
	// Bigger batches must cost fewer tokens (fewer overlapping prompts).
	if rows[0].Tokens <= rows[2].Tokens {
		t.Errorf("batch 4 tokens (%d) should exceed batch 20 tokens (%d)", rows[0].Tokens, rows[2].Tokens)
	}
	if !strings.Contains(FormatAblationBatchSize(rows), "BatchSize") {
		t.Error("format output broken")
	}
}

func TestAblationQuality(t *testing.T) {
	rows, err := AblationQuality(ctx(), "sim-cheap", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := map[string]QualityRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	single := byPolicy["single ask"]
	majority := byPolicy["majority of 5"]
	panel := byPolicy["5-model panel + EM"]
	if majority.Accuracy < single.Accuracy {
		t.Errorf("majority (%.3f) should not lose to single ask (%.3f)", majority.Accuracy, single.Accuracy)
	}
	if panel.Accuracy < majority.Accuracy {
		t.Errorf("panel+EM (%.3f) should not lose to single-model majority (%.3f)", panel.Accuracy, majority.Accuracy)
	}
	if !strings.Contains(FormatAblationQuality(rows), "single ask") {
		t.Error("format output broken")
	}
}

func TestAblationPlanner(t *testing.T) {
	rows, err := AblationPlanner(ctx(), "sim-gpt-3.5-turbo")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A tight budget must never select the quadratic strategy.
	for _, r := range rows {
		if r.BudgetDollars < 0.001 && r.Chosen == "pairwise" {
			t.Errorf("tight budget chose pairwise: %+v", r)
		}
	}
	if !strings.Contains(FormatAblationPlanner(rows), "Chosen") {
		t.Error("format output broken")
	}
}

func TestAblationRepair(t *testing.T) {
	rows, err := AblationRepair(ctx(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Repair should not be materially worse than Copeland anywhere.
		if r.RepairedTau < r.CopelandTau-0.3 {
			t.Errorf("%s: repaired tau %.3f far below copeland %.3f", r.Model, r.RepairedTau, r.CopelandTau)
		}
	}
	if !strings.Contains(FormatAblationRepair(rows), "Copeland") {
		t.Error("format output broken")
	}
}

func TestAblationFilter(t *testing.T) {
	rows, err := AblationFilter(ctx(), "sim-cheap", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	perItem, majority, sequential := rows[0], rows[1], rows[2]
	if majority.Asks <= perItem.Asks {
		t.Errorf("majority asks (%d) should exceed per-item (%d)", majority.Asks, perItem.Asks)
	}
	// The adaptive policy spends less than the fixed-k policy.
	if sequential.Asks >= majority.Asks {
		t.Errorf("sequential asks (%d) should undercut majority (%d)", sequential.Asks, majority.Asks)
	}
	if sequential.Accuracy < perItem.Accuracy-0.1 {
		t.Errorf("sequential accuracy (%.3f) should be near or above single ask (%.3f)",
			sequential.Accuracy, perItem.Accuracy)
	}
	if !strings.Contains(FormatAblationFilter(rows), "sequential") {
		t.Error("format output broken")
	}
}

func TestAblationCompareBatch(t *testing.T) {
	rows, err := AblationCompareBatch(ctx(), "sim-gpt-3.5-turbo", []int{1, 5, 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tokens must fall monotonically with batch size.
	for i := 1; i < len(rows); i++ {
		if rows[i].PromptTokens >= rows[i-1].PromptTokens {
			t.Errorf("tokens should fall with batch size: %+v", rows)
		}
	}
	// The largest batch must not beat single comparisons materially.
	if rows[2].KendallTau > rows[0].KendallTau+0.05 {
		t.Errorf("batch-19 tau (%.3f) should not beat batch-1 (%.3f)", rows[2].KendallTau, rows[0].KendallTau)
	}
	if !strings.Contains(FormatAblationCompareBatch(rows), "Pairs/prompt") {
		t.Error("format output broken")
	}
}

func TestAblationEvidence(t *testing.T) {
	rows, err := AblationEvidence(ctx(), "sim-gpt-3.5-turbo",
		dataset.CitationConfig{Entities: 200, Pairs: 700, PositiveFrac: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	direct, transitive, evidence := rows[0], rows[1], rows[2]
	if transitive.Recall <= direct.Recall {
		t.Errorf("transitive recall (%.3f) should beat direct (%.3f)", transitive.Recall, direct.Recall)
	}
	if evidence.Recall <= direct.Recall {
		t.Errorf("evidence recall (%.3f) should beat direct (%.3f)", evidence.Recall, direct.Recall)
	}
	if transitive.FlippedYes == 0 || evidence.FlippedYes == 0 {
		t.Error("augmented strategies flipped nothing to yes")
	}
	if direct.FlippedYes != 0 || direct.FlippedNo != 0 {
		t.Error("direct strategy must not flip")
	}
	if !strings.Contains(FormatAblationEvidence(rows), "Yes->No") {
		t.Error("format output broken")
	}
}

func TestAblationCascade(t *testing.T) {
	rows, err := AblationCascade(ctx(), "sim-cheap", "sim-gpt-4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	cheap, strong, cascade := rows[0], rows[1], rows[2]
	if cascade.Accuracy < cheap.Accuracy {
		t.Errorf("cascade accuracy (%.3f) below cheap-only (%.3f)", cascade.Accuracy, cheap.Accuracy)
	}
	if cascade.Dollars >= strong.Dollars {
		t.Errorf("cascade cost ($%.5f) should undercut strong-only ($%.5f)", cascade.Dollars, strong.Dollars)
	}
	if cascade.StrongCalls == 0 || cascade.StrongCalls >= len(dataset.FlavorNames()) {
		t.Errorf("cascade should escalate some but not all items: %d", cascade.StrongCalls)
	}
	if !strings.Contains(FormatAblationCascade(rows), "cascade") {
		t.Error("format output broken")
	}
}

func TestAblationTemplates(t *testing.T) {
	rows, err := AblationTemplates(ctx(), []string{"sim-gpt-3.5-turbo", "sim-claude"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 2 models × 3 variants × {plain, cot}
		t.Fatalf("rows = %d", len(rows))
	}
	// CoT rows must cost materially more tokens than their plain twins.
	plain, cot := 0, 0
	for _, r := range rows {
		if strings.HasSuffix(r.Variant, "+cot") {
			cot += r.TokensUsed
		} else {
			plain += r.TokensUsed
		}
		if r.Accuracy < 0.3 || r.Accuracy > 1 {
			t.Errorf("%s/%s accuracy = %.3f", r.Model, r.Variant, r.Accuracy)
		}
	}
	if cot <= plain*2 {
		t.Errorf("CoT tokens (%d) should far exceed plain (%d)", cot, plain)
	}
	if !strings.Contains(FormatAblationTemplates(rows), "Template") {
		t.Error("format output broken")
	}
}

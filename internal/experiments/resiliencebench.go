package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/resil"
	"repro/internal/workflow"
)

// ResilienceBenchRow is one fault-injection configuration's record: what
// the plan injected, what the retry policy healed, what degraded-mode
// execution quarantined, and what fraction of records survived. Serial
// execution over distinct prompts keeps every counter deterministic, so
// the committed BENCH_PR5.json diffs cleanly in CI.
type ResilienceBenchRow struct {
	Name string `json:"name"`
	// Plan is the fault plan in declctl -faults syntax; Mode the degraded
	// record policy.
	Mode string `json:"on_record_error"`
	Plan string `json:"plan"`
	// RecordsIn is the workload width; Quarantined/Skipped what degraded
	// execution dropped; Availability the surviving fraction.
	RecordsIn    int     `json:"records_in"`
	Quarantined  int     `json:"quarantined"`
	Skipped      int     `json:"skipped"`
	Availability float64 `json:"availability"`
	// InjectedFaults counts the wrapper's actual injections; Attempts and
	// Retries the physical attempts and retry launches the policy spent.
	InjectedFaults int `json:"injected_faults"`
	Attempts       int `json:"attempts"`
	Retries        int `json:"retries"`
	// UpstreamCalls/UpstreamTokens are the settled (successful) calls the
	// layers above the policy saw — retries and faulted attempts excluded.
	UpstreamCalls  int `json:"upstream_calls"`
	UpstreamTokens int `json:"upstream_tokens"`
}

// resilienceWorkload is 8 records with 8 distinct kind values, so every
// record costs exactly one unique upstream ask and the burst windows'
// call-order arithmetic maps one-to-one onto records.
func resilienceWorkload() (pipeline.Spec, []dataset.Record, sim.Predicate) {
	spec := pipeline.Spec{Stages: []pipeline.StageSpec{
		{Name: "keep", Kind: pipeline.KindFilter, Field: "kind", Predicate: "the kind is tool"},
	}}
	kinds := []string{"tool", "toy", "gadget", "widget", "gizmo", "doodad", "contraption", "doohickey"}
	recs := make([]dataset.Record, len(kinds))
	for i, k := range kinds {
		recs[i] = dataset.Record{ID: fmt.Sprintf("res-%02d", i),
			Fields: []dataset.Field{{Name: "kind", Value: k}}}
	}
	pred := sim.Predicate{
		Name:  "is-tool",
		Match: func(s string) bool { return strings.Contains(s, "kind is tool") },
		Truth: func(item string) (bool, float64) { return item == "tool", 1 },
	}
	return spec, recs, pred
}

// ResilienceBench runs the chaos ladder: the same serial workload under
// no faults, a flickering burst every retry heals, sticky poisoned
// prompts that land in quarantine, and a total outage that exhausts the
// policy — each on a fresh engine stack (sim oracle → fault injector →
// retry policy → counter), so the rows are independent and exact.
func ResilienceBench(ctx context.Context) ([]ResilienceBenchRow, error) {
	spec, recs, pred := resilienceWorkload()
	configs := []struct {
		name, plan string
		policy     resil.Policy
		mode       string
	}{
		{name: "faultless", plan: "",
			policy: resil.Policy{MaxAttempts: 3}, mode: pipeline.OnRecordQuarantine},
		{name: "flicker-heal", plan: "burst-every=2,burst-len=1",
			policy: resil.Policy{MaxAttempts: 3}, mode: pipeline.OnRecordQuarantine},
		{name: "poison-quarantine", plan: "seed=7,permanent=0.25",
			policy: resil.Policy{MaxAttempts: 3}, mode: pipeline.OnRecordQuarantine},
		{name: "outage-degrade", plan: "burst-every=1,burst-len=1",
			policy: resil.Policy{MaxAttempts: 2}, mode: pipeline.OnRecordQuarantine},
	}

	var rows []ResilienceBenchRow
	for _, c := range configs {
		plan, err := llm.ParseFaultPlan(c.plan)
		if err != nil {
			return nil, fmt.Errorf("resilience bench %s: %w", c.name, err)
		}
		oracle := sim.NewNamed("sim-gpt-3.5-turbo")
		oracle.RegisterPredicate(pred)
		faulty := llm.WithFaults(oracle, plan)
		rm := resil.Wrap(faulty, c.policy)
		counting := llm.NewCounting(rm)

		p, err := pipeline.Compile(spec)
		if err != nil {
			return nil, fmt.Errorf("resilience bench %s: %w", c.name, err)
		}
		res, err := p.Run(ctx, pipeline.ExecConfig{
			Model: counting, Parallelism: 1, Chunk: 1,
			Attribution:   workflow.NewAttribution(),
			OnRecordError: c.mode,
		}, map[string][]dataset.Record{"source": recs})
		if err != nil {
			return nil, fmt.Errorf("resilience bench %s: %w", c.name, err)
		}

		fs := faulty.Stats()
		rs := rm.Stats()
		total := counting.Total()
		in := len(recs)
		rows = append(rows, ResilienceBenchRow{
			Name: c.name, Mode: c.mode, Plan: c.plan,
			RecordsIn: in, Quarantined: res.Quarantined, Skipped: res.Skipped,
			Availability:   float64(in-res.Quarantined-res.Skipped) / float64(in),
			InjectedFaults: fs.Injected(),
			Attempts:       rs.Attempts,
			Retries:        rs.Retries,
			UpstreamCalls:  total.Calls,
			UpstreamTokens: total.Total(),
		})
	}
	return rows, nil
}

// FormatResilienceBench renders the chaos ladder as a text table.
func FormatResilienceBench(rows []ResilienceBenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-28s %8s %9s %8s %6s %6s %6s %7s\n",
		"Config", "Plan", "injected", "attempts", "retries", "quar", "avail", "calls", "tokens")
	for _, r := range rows {
		plan := r.Plan
		if plan == "" {
			plan = "-"
		}
		fmt.Fprintf(&b, "%-20s %-28s %8d %9d %8d %6d %6.2f %6d %7d\n",
			r.Name, plan, r.InjectedFaults, r.Attempts, r.Retries,
			r.Quarantined, r.Availability, r.UpstreamCalls, r.UpstreamTokens)
	}
	return b.String()
}

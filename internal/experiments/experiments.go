// Package experiments reproduces every table of the paper's evaluation
// (there are four tables and no figures) plus this repository's own
// studies: the ablations A1–A9, the shared-execution-layer study, the
// vector-index benchmark, and the pipeline study comparing naive
// sequential operator invocation against the optimized DAG —
// materialized and record-streaming with probed selectivities. Each
// experiment returns structured rows and can render the paper-style
// text table; cmd/declctl and the root benchmark suite both drive this
// package.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
)

// Table1Row is one strategy's result on the flavour-sorting case study.
type Table1Row struct {
	Method           string
	KendallTau       float64
	PromptTokens     int
	CompletionTokens int
}

// Table1Config parameterises the flavour-sorting experiment.
type Table1Config struct {
	// Model is the simulated model name (paper: gpt-3.5-turbo).
	Model string
	// Parallelism bounds concurrent calls.
	Parallelism int
}

// DefaultTable1Config mirrors the paper's setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{Model: "sim-gpt-3.5-turbo", Parallelism: 16}
}

// Table1 runs the three Table 1 strategies over the 20-flavour benchmark
// and reports Kendall Tau-b against the ground truth plus token costs.
func Table1(ctx context.Context, cfg Table1Config) ([]Table1Row, error) {
	engine := core.New(sim.NewNamed(cfg.Model), core.WithParallelism(cfg.Parallelism))
	items := dataset.FlavorNames()
	gold := dataset.FlavorGroundTruth()
	const criterion = "how chocolatey they are"

	specs := []struct {
		label    string
		strategy core.SortStrategy
	}{
		{"Sorting in one prompt", core.SortOnePrompt},
		{"Coarse-grained ratings", core.SortRating},
		{"Fine-grained comparisons", core.SortPairwise},
	}
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		res, err := engine.Sort(ctx, core.SortRequest{
			Items:     items,
			Criterion: criterion,
			Strategy:  spec.strategy,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", spec.label, err)
		}
		ranked := fillMissingRandomly(items, res.Ranked, 1)
		tau, err := metrics.KendallTauRanks(gold, ranked)
		if err != nil {
			return nil, fmt.Errorf("table1 %s tau: %w", spec.label, err)
		}
		rows = append(rows, Table1Row{
			Method:           spec.label,
			KendallTau:       tau,
			PromptTokens:     res.Usage.PromptTokens,
			CompletionTokens: res.Usage.CompletionTokens,
		})
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %15s %18s\n", "Method", "Kendall Tau-b", "# Prompt Tokens", "# Completion Tokens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %12.3f %15d %18d\n", r.Method, r.KendallTau, r.PromptTokens, r.CompletionTokens)
	}
	return b.String()
}

// Table2Row is one (trial, method) cell of the 100-word sorting study.
type Table2Row struct {
	Trial        int
	Method       string
	Score        float64
	Missing      int
	Hallucinated int
}

// Table2Config parameterises the alphabetical-sorting experiment.
type Table2Config struct {
	// Model is the simulated model name (paper: claude-2).
	Model string
	// Words per trial (paper: 100).
	Words int
	// Trials (paper: 3).
	Trials int
	// Parallelism bounds concurrent calls.
	Parallelism int
}

// DefaultTable2Config mirrors the paper's setup.
func DefaultTable2Config() Table2Config {
	return Table2Config{Model: "sim-claude-2", Words: 100, Trials: 3, Parallelism: 16}
}

// Table2 runs the one-prompt baseline and the sort-then-insert hybrid
// over Trials random word lists. As in the paper, the baseline's missing
// words are inserted at random locations before scoring.
func Table2(ctx context.Context, cfg Table2Config) ([]Table2Row, error) {
	engine := core.New(sim.NewNamed(cfg.Model), core.WithParallelism(cfg.Parallelism))
	var rows []Table2Row
	for trial := 1; trial <= cfg.Trials; trial++ {
		words := dataset.RandomWords(cfg.Words, int64(trial))
		truth := append([]string(nil), words...)
		sort.Strings(truth)

		base, err := engine.Sort(ctx, core.SortRequest{
			Items:     words,
			Criterion: "alphabetical order",
			Strategy:  core.SortOnePrompt,
		})
		if err != nil {
			return nil, fmt.Errorf("table2 trial %d baseline: %w", trial, err)
		}
		baseRanked := fillMissingRandomly(words, base.Ranked, int64(trial))
		baseTau, err := metrics.KendallTauRanks(truth, baseRanked)
		if err != nil {
			return nil, fmt.Errorf("table2 trial %d baseline tau: %w", trial, err)
		}
		rows = append(rows, Table2Row{
			Trial:        trial,
			Method:       "Sorting in one prompt",
			Score:        baseTau,
			Missing:      base.Missing,
			Hallucinated: base.Hallucinated,
		})

		hybrid, err := engine.Sort(ctx, core.SortRequest{
			Items:     words,
			Criterion: "alphabetical order",
			Strategy:  core.SortHybridInsert,
		})
		if err != nil {
			return nil, fmt.Errorf("table2 trial %d hybrid: %w", trial, err)
		}
		hybridTau, err := metrics.KendallTauRanks(truth, hybrid.Ranked)
		if err != nil {
			return nil, fmt.Errorf("table2 trial %d hybrid tau: %w", trial, err)
		}
		rows = append(rows, Table2Row{
			Trial:        trial,
			Method:       "Sort then insert",
			Score:        hybridTau,
			Missing:      hybrid.Missing,
			Hallucinated: 0, // hallucinations are dropped before insertion
		})
	}
	return rows, nil
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-24s %8s %10s %14s\n", "Trial", "Method", "Score", "# Missing", "# Hallucinated")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-24s %8.3f %10d %14d\n", r.Trial, r.Method, r.Score, r.Missing, r.Hallucinated)
	}
	return b.String()
}

// fillMissingRandomly inserts the input items absent from ranked at
// random positions (the paper's protocol for scoring incomplete sorts).
func fillMissingRandomly(input, ranked []string, seed int64) []string {
	have := make(map[string]bool, len(ranked))
	for _, it := range ranked {
		have[it] = true
	}
	rng := rand.New(rand.NewSource(seed))
	out := append([]string(nil), ranked...)
	for _, it := range input {
		if !have[it] {
			pos := rng.Intn(len(out) + 1)
			out = append(out[:pos], append([]string{it}, out[pos:]...)...)
		}
	}
	return out
}

// Table3Row is one neighbour setting's result on the citation-matching
// study.
type Table3Row struct {
	Neighbors             int
	F1, Recall, Precision float64
	LLMComparisons        int
}

// Table3Config parameterises the entity-resolution experiment.
type Table3Config struct {
	// Model is the simulated model name (paper: gpt-3.5-turbo).
	Model string
	// Citations configures the synthetic corpus (paper slice: 5742
	// labelled pairs).
	Citations dataset.CitationConfig
	// NeighborSettings lists the k values (paper: 0, 1, 2).
	NeighborSettings []int
	// Parallelism bounds concurrent calls.
	Parallelism int
}

// DefaultTable3Config mirrors the paper's setup.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		Model:            "sim-gpt-3.5-turbo",
		Citations:        dataset.DefaultCitationConfig(),
		NeighborSettings: []int{0, 1, 2},
		Parallelism:      16,
	}
}

// Table3 runs the entity-resolution study: the k=0 baseline answers each
// labelled pair directly; k>0 augments with nearest neighbours and flips
// "no" answers that transitivity contradicts.
func Table3(ctx context.Context, cfg Table3Config) ([]Table3Row, error) {
	corpus := dataset.GenerateCitations(cfg.Citations)
	ents := make([]core.Entity, len(corpus.Records))
	for i, c := range corpus.Records {
		ents[i] = core.Entity{ID: c.ID, Text: c.Text()}
	}
	pairs := make([][2]int, len(corpus.Pairs))
	gold := make([]bool, len(corpus.Pairs))
	for i, p := range corpus.Pairs {
		pairs[i] = [2]int{p.A, p.B}
		gold[i] = p.Match
	}
	engine := core.New(sim.NewNamed(cfg.Model), core.WithParallelism(cfg.Parallelism))
	rows := make([]Table3Row, 0, len(cfg.NeighborSettings))
	for _, k := range cfg.NeighborSettings {
		req := core.PairsRequest{Corpus: ents, Pairs: pairs, Strategy: core.ResolveDirect}
		if k > 0 {
			req.Strategy = core.ResolveTransitive
			req.Neighbors = k
		}
		res, err := engine.ResolvePairs(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("table3 k=%d: %w", k, err)
		}
		var c metrics.Confusion
		for i, m := range res.Match {
			c.Observe(m, gold[i])
		}
		rows = append(rows, Table3Row{
			Neighbors:      k,
			F1:             c.F1(),
			Recall:         c.Recall(),
			Precision:      c.Precision(),
			LLMComparisons: res.LLMComparisons,
		})
	}
	return rows, nil
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %10s %14s\n", "Nearest Neighbors", "F1", "Recall", "Precision", "# Comparisons")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Neighbors)
		if r.Neighbors == 0 {
			label = "0 (Baseline)"
		}
		fmt.Fprintf(&b, "%-18s %8.3f %8.3f %10.3f %14d\n", label, r.F1, r.Recall, r.Precision, r.LLMComparisons)
	}
	return b.String()
}

// Table4Row is one strategy's result on the imputation study across both
// datasets.
type Table4Row struct {
	Strategy            string
	RestAcc, BuyAcc     float64
	RestTokens          int
	BuyTokens           int
	RestCalls, BuyCalls int
}

// Table4Config parameterises the imputation experiment.
type Table4Config struct {
	// Model is the simulated model name (paper: claude).
	Model string
	// TrainN is the ground-truth pool size per dataset.
	TrainN int
	// RestTestN and BuyTestN are the evaluation slice sizes (paper: 86
	// and 65).
	RestTestN, BuyTestN int
	// Neighbors is k for k-NN (paper: 3).
	Neighbors int
	// Examples is k' for the few-shot variants (paper: 3).
	Examples int
	// Seed drives dataset generation.
	Seed int64
	// Parallelism bounds concurrent calls.
	Parallelism int
}

// DefaultTable4Config mirrors the paper's setup.
func DefaultTable4Config() Table4Config {
	return Table4Config{
		Model:       "sim-claude",
		TrainN:      300,
		RestTestN:   86,
		BuyTestN:    65,
		Neighbors:   3,
		Examples:    3,
		Seed:        11,
		Parallelism: 16,
	}
}

// Table4 runs the five imputation strategies of the paper over the
// Restaurants and Buy datasets. Accuracy is exact match modulo letter
// case; formatting drift beyond casing (the paper's "TomTom" vs
// "Tom Tom") counts as wrong, as in the paper.
func Table4(ctx context.Context, cfg Table4Config) ([]Table4Row, error) {
	rest := dataset.GenerateRestaurants(cfg.TrainN, cfg.RestTestN, cfg.Seed)
	buy := dataset.GenerateBuy(cfg.TrainN, cfg.BuyTestN, cfg.Seed+1)
	engine := core.New(sim.NewNamed(cfg.Model), core.WithParallelism(cfg.Parallelism))

	specs := []struct {
		label    string
		strategy core.ImputeStrategy
		examples int
	}{
		{"Naive k-NN", core.ImputeKNN, 0},
		{"Hybrid (no examples)", core.ImputeHybrid, 0},
		{"LLM-only (no examples)", core.ImputeLLM, 0},
		{fmt.Sprintf("Hybrid (%d examples)", cfg.Examples), core.ImputeHybrid, cfg.Examples},
		{fmt.Sprintf("LLM-only (%d examples)", cfg.Examples), core.ImputeLLM, cfg.Examples},
	}
	run := func(d *dataset.ImputationDataset, strategy core.ImputeStrategy, examples int) (float64, int, int, error) {
		res, err := engine.Impute(ctx, core.ImputeRequest{
			Train:       d.Train,
			Queries:     d.Test,
			TargetField: d.TargetField,
			Strategy:    strategy,
			Neighbors:   cfg.Neighbors,
			Examples:    examples,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		gold := d.Gold()
		correct := 0
		for i, v := range res.Values {
			if strings.EqualFold(strings.TrimSpace(v), strings.TrimSpace(gold[i])) {
				correct++
			}
		}
		return float64(correct) / float64(len(gold)), res.Usage.Total(), res.LLMCalls, nil
	}
	rows := make([]Table4Row, 0, len(specs))
	for _, spec := range specs {
		restAcc, restTok, restCalls, err := run(rest, spec.strategy, spec.examples)
		if err != nil {
			return nil, fmt.Errorf("table4 %s restaurants: %w", spec.label, err)
		}
		buyAcc, buyTok, buyCalls, err := run(buy, spec.strategy, spec.examples)
		if err != nil {
			return nil, fmt.Errorf("table4 %s buy: %w", spec.label, err)
		}
		rows = append(rows, Table4Row{
			Strategy:   spec.label,
			RestAcc:    restAcc,
			BuyAcc:     buyAcc,
			RestTokens: restTok,
			BuyTokens:  buyTok,
			RestCalls:  restCalls,
			BuyCalls:   buyCalls,
		})
	}
	return rows, nil
}

// FormatTable4 renders rows in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %12s %12s\n", "Strategy", "Acc Rest.", "Acc Buy", "Tok Rest.", "Tok Buy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %9.2f%% %9.2f%% %12d %12d\n",
			r.Strategy, r.RestAcc*100, r.BuyAcc*100, r.RestTokens, r.BuyTokens)
	}
	return b.String()
}

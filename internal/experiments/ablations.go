package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/quality"
	"repro/internal/token"
)

// BatchSizeRow is one batch-size setting in ablation A1.
type BatchSizeRow struct {
	BatchSize int
	// PairF1 scores the produced grouping against entity ground truth,
	// treating every within-group pair as a predicted duplicate pair.
	PairF1 float64
	Tokens int
}

// AblationBatchSize (A1) sweeps the records-per-prompt hyperparameter of
// the coarse grouping strategy (Section 4 lists batch size as a planner
// dimension): bigger batches cost fewer tokens but group more sloppily.
func AblationBatchSize(ctx context.Context, model string, records, seed int, sizes []int) ([]BatchSizeRow, error) {
	cfg := dataset.CitationConfig{Entities: records / 2, Pairs: 10, PositiveFrac: 0.3, Seed: int64(seed)}
	corpus := dataset.GenerateCitations(cfg)
	n := records
	if n > len(corpus.Records) {
		n = len(corpus.Records)
	}
	ents := make([]core.Entity, n)
	entityOf := make(map[string]int, n)
	for i := 0; i < n; i++ {
		ents[i] = core.Entity{ID: corpus.Records[i].ID, Text: corpus.Records[i].Text()}
		entityOf[corpus.Records[i].ID] = corpus.Records[i].Entity
	}
	engine := core.New(sim.NewNamed(model), core.WithParallelism(8))
	rows := make([]BatchSizeRow, 0, len(sizes))
	for _, size := range sizes {
		res, err := engine.Dedupe(ctx, core.DedupeRequest{
			Records:   ents,
			Strategy:  core.DedupeGroupBatch,
			BatchSize: size,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation A1 size %d: %w", size, err)
		}
		rows = append(rows, BatchSizeRow{
			BatchSize: size,
			PairF1:    groupingPairF1(res.Groups, entityOf),
			Tokens:    res.Usage.Total(),
		})
	}
	return rows, nil
}

// groupingPairF1 scores a grouping against entity labels on the pair
// level.
func groupingPairF1(groups [][]string, entityOf map[string]int) float64 {
	var c metrics.Confusion
	var ids []string
	group := make(map[string]int)
	for gi, g := range groups {
		for _, id := range g {
			group[id] = gi
			ids = append(ids, id)
		}
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			predicted := group[ids[i]] == group[ids[j]]
			actual := entityOf[ids[i]] == entityOf[ids[j]]
			c.Observe(predicted, actual)
		}
	}
	return c.F1()
}

// QualityRow is one policy in ablation A2.
type QualityRow struct {
	Policy   string
	Accuracy float64
	Asks     int
}

// AblationQuality (A2) compares Section 3.5 quality-control policies on a
// noisy model answering the chocolatey-flavour predicate: a single ask,
// fixed-k majority voting, a multi-model panel, and Dawid–Skene EM
// consensus over the panel's votes.
func AblationQuality(ctx context.Context, noisyModel string, votes int) ([]QualityRow, error) {
	items := dataset.FlavorNames()
	pred := "it is a chocolatey flavor"
	gold := make([]bool, len(items))
	for i, it := range items {
		s, _ := dataset.FlavorScore(it)
		gold[i] = s > 0.5
	}
	noisy := sim.NewNamed(noisyModel)
	panel := []llm.Model{
		sim.NewNamed(noisyModel),
		sim.NewNamed("sim-gpt-3.5-turbo"),
		sim.NewNamed("sim-claude"),
		sim.NewNamed("sim-gpt-4"),
		sim.NewNamed("sim-claude-2"),
	}
	accuracy := func(predictions []bool) float64 {
		correct := 0
		for i, p := range predictions {
			if p == gold[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(gold))
	}

	var rows []QualityRow

	// Single ask.
	single := make([]bool, len(items))
	asks := 0
	for i, it := range items {
		ans, err := quality.AskWithRetry(ctx, noisy, prompt.FilterItem(it, pred), prompt.ParseYesNo, 3)
		if err != nil {
			return nil, fmt.Errorf("ablation A2 single: %w", err)
		}
		single[i] = ans
		asks++
	}
	rows = append(rows, QualityRow{Policy: "single ask", Accuracy: accuracy(single), Asks: asks})

	// Fixed-k majority (self-consistency).
	maj := make([]bool, len(items))
	asks = 0
	for i, it := range items {
		ans, yes, no, err := quality.MajorityYesNo(ctx, noisy, prompt.FilterItem(it, pred), votes, 1.0)
		if err != nil {
			return nil, fmt.Errorf("ablation A2 majority: %w", err)
		}
		maj[i] = ans
		asks += yes + no
	}
	rows = append(rows, QualityRow{Policy: fmt.Sprintf("majority of %d", votes), Accuracy: accuracy(maj), Asks: asks})

	// Sequential (CrowdScreen-style) policy.
	seq := make([]bool, len(items))
	asks = 0
	for i, it := range items {
		ans, used, err := quality.SequentialYesNo(ctx, noisy, prompt.FilterItem(it, pred), votes, 2, 1.0)
		if err != nil {
			return nil, fmt.Errorf("ablation A2 sequential: %w", err)
		}
		seq[i] = ans
		asks += used
	}
	rows = append(rows, QualityRow{Policy: "sequential margin-2", Accuracy: accuracy(seq), Asks: asks})

	// Multi-model panel with EM consensus.
	voteMatrix := make([][]bool, len(items))
	asks = 0
	for i, it := range items {
		row := make([]bool, len(panel))
		for j, m := range panel {
			ans, err := quality.AskWithRetry(ctx, m, prompt.FilterItem(it, pred), prompt.ParseYesNo, 3)
			if err != nil {
				return nil, fmt.Errorf("ablation A2 panel: %w", err)
			}
			row[j] = ans
			asks++
		}
		voteMatrix[i] = row
	}
	em, err := quality.EMBinary(voteMatrix, 100, 1e-8)
	if err != nil {
		return nil, fmt.Errorf("ablation A2 EM: %w", err)
	}
	rows = append(rows, QualityRow{Policy: "5-model panel + EM", Accuracy: accuracy(em.Consensus), Asks: asks})
	return rows, nil
}

// PlannerRow is one (budget, target) cell in ablation A3.
type PlannerRow struct {
	TargetAccuracy float64
	BudgetDollars  float64
	Chosen         string
	Reason         string
}

// AblationPlanner (A3) exercises the automatic strategy selection of
// Section 4 across a grid of accuracy targets and budgets, profiling sort
// strategies on a 10-flavour validation sample.
func AblationPlanner(ctx context.Context, model string) ([]PlannerRow, error) {
	engine := core.New(sim.NewNamed(model), core.WithParallelism(8))
	val := dataset.FlavorNames()[:10]
	var gold []string
	for _, f := range dataset.FlavorGroundTruth() {
		for _, v := range val {
			if f == v {
				gold = append(gold, f)
			}
		}
	}
	strategies := []core.SortStrategy{core.SortOnePrompt, core.SortRating, core.SortPairwise}
	grid := []struct {
		target float64
		budget float64
	}{
		{0.60, 0.0005},
		{0.60, 1},
		{0.80, 0.0005},
		{0.80, 1},
		{0.95, 1},
	}
	rows := make([]PlannerRow, 0, len(grid))
	for _, cell := range grid {
		plan, err := engine.PlanSort(ctx, val, gold, "how chocolatey they are",
			strategies, cell.target, cell.budget, 100)
		if err != nil {
			return nil, fmt.Errorf("ablation A3 target %.2f budget %.4f: %w", cell.target, cell.budget, err)
		}
		rows = append(rows, PlannerRow{
			TargetAccuracy: cell.target,
			BudgetDollars:  cell.budget,
			Chosen:         plan.Chosen,
			Reason:         plan.Reason,
		})
	}
	return rows, nil
}

// RepairRow is one model noise level in ablation A4.
type RepairRow struct {
	Model              string
	CopelandTau        float64
	RepairedTau        float64
	CopelandViolations int
	RepairedViolations int
}

// AblationRepair (A4) measures what minimum-feedback repair of the
// comparison graph (Section 3.3) buys over raw Copeland win counts, at
// three model noise levels.
func AblationRepair(ctx context.Context, items int) ([]RepairRow, error) {
	flavors := dataset.FlavorNames()
	if items > len(flavors) {
		items = len(flavors)
	}
	subset := flavors[:items]
	var gold []string
	for _, f := range dataset.FlavorGroundTruth() {
		for _, v := range subset {
			if f == v {
				gold = append(gold, f)
			}
		}
	}
	var rows []RepairRow
	for _, model := range []string{"sim-gpt-4", "sim-gpt-3.5-turbo", "sim-cheap"} {
		engine := core.New(sim.NewNamed(model), core.WithParallelism(8))
		plain, err := engine.Sort(ctx, core.SortRequest{
			Items: subset, Criterion: "how chocolatey they are", Strategy: core.SortPairwise,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation A4 %s: %w", model, err)
		}
		repaired, err := engine.Sort(ctx, core.SortRequest{
			Items: subset, Criterion: "how chocolatey they are", Strategy: core.SortPairwiseRepaired,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation A4 %s repaired: %w", model, err)
		}
		tauPlain, _ := metrics.KendallTauRanks(gold, plain.Ranked)
		tauRep, _ := metrics.KendallTauRanks(gold, repaired.Ranked)
		// Re-derive the violation counts from a fresh tournament over the
		// same (cached) comparisons.
		rows = append(rows, RepairRow{
			Model:              model,
			CopelandTau:        tauPlain,
			RepairedTau:        tauRep,
			CopelandViolations: orderViolations(gold, plain.Ranked),
			RepairedViolations: orderViolations(gold, repaired.Ranked),
		})
	}
	return rows, nil
}

// orderViolations counts ground-truth-inverted adjacent pairs — a simple
// disorder measure for the report.
func orderViolations(gold, ranked []string) int {
	pos := make(map[string]int, len(gold))
	for i, g := range gold {
		pos[g] = i
	}
	v := 0
	for i := 0; i+1 < len(ranked); i++ {
		if pos[ranked[i]] > pos[ranked[i+1]] {
			v++
		}
	}
	return v
}

// FormatAblationBatchSize renders A1 rows.
func FormatAblationBatchSize(rows []BatchSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "BatchSize", "Pair F1", "Tokens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %10.3f %10d\n", r.BatchSize, r.PairF1, r.Tokens)
	}
	return b.String()
}

// FormatAblationQuality renders A2 rows.
func FormatAblationQuality(rows []QualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %8s\n", "Policy", "Accuracy", "Asks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9.1f%% %8d\n", r.Policy, r.Accuracy*100, r.Asks)
	}
	return b.String()
}

// FormatAblationPlanner renders A3 rows.
func FormatAblationPlanner(rows []PlannerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %-22s %s\n", "Target", "Budget($)", "Chosen", "Reason")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f %-10.4f %-22s %s\n", r.TargetAccuracy, r.BudgetDollars, r.Chosen, r.Reason)
	}
	return b.String()
}

// FormatAblationRepair renders A4 rows.
func FormatAblationRepair(rows []RepairRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %12s %10s %10s\n", "Model", "Copeland τ", "Repaired τ", "Viol(C)", "Viol(R)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12.3f %12.3f %10d %10d\n",
			r.Model, r.CopelandTau, r.RepairedTau, r.CopelandViolations, r.RepairedViolations)
	}
	return b.String()
}

// FilterRow is one filter policy in ablation A5.
type FilterRow struct {
	Policy   string
	Accuracy float64
	Asks     int
	Tokens   int
}

// AblationFilter (A5) compares the Filter operator's policies end to end
// on a noisy model: fixed single ask, fixed-k majority, and the adaptive
// sequential policy, which concentrates spend on borderline items.
func AblationFilter(ctx context.Context, model string, votes int) ([]FilterRow, error) {
	items := dataset.FlavorNames()
	pred := "it is a chocolatey flavor"
	gold := make([]bool, len(items))
	for i, it := range items {
		s, _ := dataset.FlavorScore(it)
		gold[i] = s > 0.5
	}
	engine := core.New(sim.NewNamed(model), core.WithParallelism(8), core.WithoutCache())
	specs := []struct {
		label    string
		strategy core.FilterStrategy
	}{
		{"per-item", core.FilterPerItem},
		{fmt.Sprintf("majority of %d", votes), core.FilterMajority},
		{"sequential margin-2", core.FilterSequential},
	}
	rows := make([]FilterRow, 0, len(specs))
	for _, spec := range specs {
		res, err := engine.Filter(ctx, core.FilterRequest{
			Items:     items,
			Predicate: pred,
			Strategy:  spec.strategy,
			Votes:     votes,
			MaxAsks:   votes,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation A5 %s: %w", spec.label, err)
		}
		correct := 0
		for i, k := range res.Keep {
			if k == gold[i] {
				correct++
			}
		}
		rows = append(rows, FilterRow{
			Policy:   spec.label,
			Accuracy: float64(correct) / float64(len(items)),
			Asks:     res.Asks,
			Tokens:   res.Usage.Total(),
		})
	}
	return rows, nil
}

// FormatAblationFilter renders A5 rows.
func FormatAblationFilter(rows []FilterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %8s %10s\n", "Policy", "Accuracy", "Asks", "Tokens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9.1f%% %8d %10d\n", r.Policy, r.Accuracy*100, r.Asks, r.Tokens)
	}
	return b.String()
}

// CompareBatchRow is one batch-size setting in ablation A6.
type CompareBatchRow struct {
	PairsPerPrompt int
	KendallTau     float64
	PromptTokens   int
}

// AblationCompareBatch (A6) sweeps the comparisons-per-prompt lever of
// Section 4 on the Table 1 pairwise sort: bigger batches amortise the
// instruction overhead (fewer prompt tokens) at an accuracy cost. Tau is
// averaged over several item subsets to separate the batching effect from
// single-run comparison noise.
func AblationCompareBatch(ctx context.Context, model string, batches []int) ([]CompareBatchRow, error) {
	engine := core.New(sim.NewNamed(model), core.WithParallelism(16))
	all := dataset.FlavorNames()
	gold := dataset.FlavorGroundTruth()
	const trials = 5
	rows := make([]CompareBatchRow, 0, len(batches))
	for _, b := range batches {
		tauSum, tokens := 0.0, 0
		for trial := 0; trial < trials; trial++ {
			items := dataset.Sample(all, 15, int64(trial+1))
			res, err := engine.Sort(ctx, core.SortRequest{
				Items:        items,
				Criterion:    "how chocolatey they are",
				Strategy:     core.SortPairwise,
				CompareBatch: b,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation A6 batch %d: %w", b, err)
			}
			tau, err := metrics.KendallTauRanks(gold, res.Ranked)
			if err != nil {
				return nil, fmt.Errorf("ablation A6 batch %d tau: %w", b, err)
			}
			tauSum += tau
			tokens += res.Usage.PromptTokens
		}
		rows = append(rows, CompareBatchRow{
			PairsPerPrompt: b,
			KendallTau:     tauSum / trials,
			PromptTokens:   tokens / trials,
		})
	}
	return rows, nil
}

// FormatAblationCompareBatch renders A6 rows.
func FormatAblationCompareBatch(rows []CompareBatchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %15s\n", "Pairs/prompt", "Kendall Tau", "Prompt Tokens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16d %12.3f %15d\n", r.PairsPerPrompt, r.KendallTau, r.PromptTokens)
	}
	return b.String()
}

// EvidenceRow is one strategy in ablation A7.
type EvidenceRow struct {
	Strategy              string
	F1, Recall, Precision float64
	FlippedYes, FlippedNo int
}

// AblationEvidence (A7) compares the paper's implemented transitivity
// repair against its stated future work — flipping both "yes" and "no"
// edges on opposing evidence — on the citation-matching task.
func AblationEvidence(ctx context.Context, model string, citationCfg dataset.CitationConfig) ([]EvidenceRow, error) {
	corpus := dataset.GenerateCitations(citationCfg)
	ents := make([]core.Entity, len(corpus.Records))
	for i, c := range corpus.Records {
		ents[i] = core.Entity{ID: c.ID, Text: c.Text()}
	}
	pairs := make([][2]int, len(corpus.Pairs))
	gold := make([]bool, len(corpus.Pairs))
	for i, p := range corpus.Pairs {
		pairs[i] = [2]int{p.A, p.B}
		gold[i] = p.Match
	}
	engine := core.New(sim.NewNamed(model), core.WithParallelism(16))
	specs := []struct {
		label    string
		strategy core.ResolveStrategy
	}{
		{"direct (baseline)", core.ResolveDirect},
		{"transitive (yes-only)", core.ResolveTransitive},
		{"evidence (both ways)", core.ResolveEvidence},
	}
	rows := make([]EvidenceRow, 0, len(specs))
	for _, spec := range specs {
		req := core.PairsRequest{Corpus: ents, Pairs: pairs, Strategy: spec.strategy}
		if spec.strategy != core.ResolveDirect {
			req.Neighbors = 2
		}
		res, err := engine.ResolvePairs(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("ablation A7 %s: %w", spec.label, err)
		}
		var c metrics.Confusion
		for i, m := range res.Match {
			c.Observe(m, gold[i])
		}
		rows = append(rows, EvidenceRow{
			Strategy:   spec.label,
			F1:         c.F1(),
			Recall:     c.Recall(),
			Precision:  c.Precision(),
			FlippedYes: res.FlippedByTransitivity,
			FlippedNo:  res.FlippedToNo,
		})
	}
	return rows, nil
}

// FormatAblationEvidence renders A7 rows.
func FormatAblationEvidence(rows []EvidenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %10s %10s %10s\n", "Strategy", "F1", "Recall", "Precision", "No->Yes", "Yes->No")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %8.3f %8.3f %10.3f %10d %10d\n",
			r.Strategy, r.F1, r.Recall, r.Precision, r.FlippedYes, r.FlippedNo)
	}
	return b.String()
}

// CascadeRow is one routing policy in ablation A8.
type CascadeRow struct {
	Policy      string
	Accuracy    float64
	CheapCalls  int
	StrongCalls int
	Dollars     float64
}

// AblationCascade (A8) reproduces the FrugalGPT-style cascade the paper
// cites: a cheap model answers unanimous questions, a strong model only
// the contested ones — near-strong accuracy at a fraction of the cost.
func AblationCascade(ctx context.Context, cheapName, strongName string) ([]CascadeRow, error) {
	items := dataset.FlavorNames()
	pred := "it is a chocolatey flavor"
	gold := make([]bool, len(items))
	for i, it := range items {
		s, _ := dataset.FlavorScore(it)
		gold[i] = s > 0.5
	}
	cheap := llm.NewCounting(sim.NewNamed(cheapName))
	strong := llm.NewCounting(sim.NewNamed(strongName))
	priceOf := func() float64 {
		return token.PriceFor(cheapName).Cost(cheap.Total()) +
			token.PriceFor(strongName).Cost(strong.Total())
	}
	accuracy := func(pred []bool) float64 {
		correct := 0
		for i, p := range pred {
			if p == gold[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(gold))
	}

	var rows []CascadeRow
	run := func(label string, decide func(item string) (bool, error)) error {
		cheap.Reset()
		strong.Reset()
		answers := make([]bool, len(items))
		for i, it := range items {
			v, err := decide(it)
			if err != nil {
				return fmt.Errorf("%s on %q: %w", label, it, err)
			}
			answers[i] = v
		}
		rows = append(rows, CascadeRow{
			Policy:      label,
			Accuracy:    accuracy(answers),
			CheapCalls:  cheap.Total().Calls,
			StrongCalls: strong.Total().Calls,
			Dollars:     priceOf(),
		})
		return nil
	}

	if err := run("cheap only", func(it string) (bool, error) {
		return quality.AskWithRetry(ctx, cheap, prompt.FilterItem(it, pred), prompt.ParseYesNo, 3)
	}); err != nil {
		return nil, err
	}
	if err := run("strong only", func(it string) (bool, error) {
		return quality.AskWithRetry(ctx, strong, prompt.FilterItem(it, pred), prompt.ParseYesNo, 3)
	}); err != nil {
		return nil, err
	}
	if err := run("cascade", func(it string) (bool, error) {
		ans, _, err := quality.CascadeYesNo(ctx, cheap, strong, prompt.FilterItem(it, pred), 3, 1.0)
		return ans, err
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAblationCascade renders A8 rows.
func FormatAblationCascade(rows []CascadeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %13s %10s\n", "Policy", "Accuracy", "Cheap calls", "Strong calls", "Cost($)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.1f%% %12d %13d %10.5f\n",
			r.Policy, r.Accuracy*100, r.CheapCalls, r.StrongCalls, r.Dollars)
	}
	return b.String()
}

// TemplateRow is one (model, template, cot) cell in ablation A9.
type TemplateRow struct {
	Model      string
	Variant    string
	Accuracy   float64
	TokensUsed int
}

// AblationTemplates (A9) measures prompt brittleness (Section 4): the
// same comparison task phrased through each built-in template, with and
// without chain-of-thought, across two models. Accuracy varies by
// phrasing per model, and the chain-of-thought variants pay in tokens.
func AblationTemplates(ctx context.Context, models []string) ([]TemplateRow, error) {
	gold := dataset.FlavorGroundTruth()[:10]
	var rows []TemplateRow
	for _, name := range models {
		engine := core.New(sim.NewNamed(name), core.WithParallelism(16))
		plan, err := engine.PlanCompareTemplate(ctx, gold, "how chocolatey they are",
			true /* include CoT */, 1.1 /* unreachable: profile everything */, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("ablation A9 %s: %w", name, err)
		}
		for _, r := range plan.Reports {
			rows = append(rows, TemplateRow{
				Model:      name,
				Variant:    r.Name,
				Accuracy:   r.Accuracy,
				TokensUsed: r.Usage.Total(),
			})
		}
	}
	return rows, nil
}

// FormatAblationTemplates renders A9 rows.
func FormatAblationTemplates(rows []TemplateRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-14s %10s %10s\n", "Model", "Template", "Accuracy", "Tokens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-14s %9.1f%% %10d\n", r.Model, r.Variant, r.Accuracy*100, r.TokensUsed)
	}
	return b.String()
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/token"
)

func sumStageUsage(stages []pipeline.StageReport) token.Usage {
	var u token.Usage
	for _, s := range stages {
		u = u.Add(s.Usage)
	}
	return u
}

// TestPipelineStudyPinned pins the acceptance contract of the pipeline
// layer on the sim model: the optimized pipeline spends strictly fewer
// upstream calls and tokens than naive sequential operator invocation,
// produces identical results at temperature 0, and its per-stage usage
// attribution sums exactly to the pipeline total.
func TestPipelineStudyPinned(t *testing.T) {
	res, err := PipelineStudy(ctx(), DefaultPipelineStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("optimized pipeline results differ from naive sequential results at temperature 0")
	}
	if res.Optimized.UpstreamCalls >= res.Naive.UpstreamCalls {
		t.Fatalf("optimized calls = %d, want strictly fewer than naive %d",
			res.Optimized.UpstreamCalls, res.Naive.UpstreamCalls)
	}
	if res.Optimized.UpstreamTokens >= res.Naive.UpstreamTokens {
		t.Fatalf("optimized tokens = %d, want strictly fewer than naive %d",
			res.Optimized.UpstreamTokens, res.Naive.UpstreamTokens)
	}
	if len(res.Rewrites) == 0 {
		t.Fatal("optimizer applied no rewrites; the study spec must exercise filter pushdown")
	}
	// The streaming configuration: identical temperature-0 results to the
	// materialized optimized run, probe spend attributed under its own
	// stage tag, and the probe row visible in the report.
	if !res.StreamingIdentical {
		t.Fatal("streaming + probed results differ from the materialized optimized run at temperature 0")
	}
	if res.Streaming.ProbeCalls == 0 {
		t.Fatal("probing optimizer issued no attributed probe calls on a hintless spec")
	}
	if res.Streaming.UpstreamCalls >= res.Naive.UpstreamCalls {
		t.Fatalf("streaming calls = %d (probes included), want strictly fewer than naive %d",
			res.Streaming.UpstreamCalls, res.Naive.UpstreamCalls)
	}
	probeRow := false
	for _, s := range res.Streaming.Stages {
		if s.Kind == "probe" && s.Usage.Calls == res.Streaming.ProbeCalls {
			probeRow = true
		}
	}
	if !probeRow {
		t.Fatal("streaming run's report lacks the probe attribution row")
	}
	if len(res.ProbeTrace) == 0 || !strings.Contains(strings.Join(res.ProbeTrace, "\n"), "measured selectivity") {
		t.Fatalf("probe trace missing hint-vs-measured lines: %v", res.ProbeTrace)
	}

	// The adaptive runtime: identical temperature-0 results to the
	// streaming+probed run, at most its upstream spend (the unit tasks
	// are the same, and the study floors the self-tuned width at the
	// streaming run's fixed chunk, so envelopes pack at least as well
	// regardless of machine timing), and a strict wall-clock win on the
	// side-input overlap scenario under its deterministic latency model.
	if !res.AdaptiveIdentical {
		t.Fatal("adaptive runtime results differ from the streaming + probed run at temperature 0")
	}
	if res.Adaptive.UpstreamCalls > res.Streaming.UpstreamCalls {
		t.Fatalf("adaptive calls = %d, want at most the streaming run's %d",
			res.Adaptive.UpstreamCalls, res.Streaming.UpstreamCalls)
	}
	if res.Adaptive.ProbeCalls == 0 {
		t.Fatal("adaptive configuration issued no attributed probe calls on a hintless spec")
	}
	if res.Overlap == nil || !res.Overlap.Identical || res.Overlap.Matches == 0 {
		t.Fatalf("overlap scenario did not reproduce identical matches: %+v", res.Overlap)
	}
	if res.Overlap.Overlap >= res.Overlap.DrainFirst {
		t.Fatalf("adaptive overlap wall clock %s did not beat drain-first %s",
			res.Overlap.Overlap, res.Overlap.DrainFirst)
	}

	// Attribution consistency, for all configurations: the per-stage sums
	// equal the attribution total, and the total equals what the upstream
	// counter actually saw at the model boundary.
	for _, run := range []PipelineStudyRun{res.Naive, res.Optimized, res.Streaming, res.Adaptive} {
		sum := sumStageUsage(run.Stages)
		if sum != run.Usage {
			t.Errorf("%s: stage usage sum %+v != attributed total %+v", run.Config, sum, run.Usage)
		}
		if run.Usage.Calls != run.UpstreamCalls {
			t.Errorf("%s: attributed calls %d != upstream calls %d", run.Config, run.Usage.Calls, run.UpstreamCalls)
		}
		if run.Usage.Total() != run.UpstreamTokens {
			t.Errorf("%s: attributed tokens %d != upstream tokens %d", run.Config, run.Usage.Total(), run.UpstreamTokens)
		}
	}
	if res.CallReduction < 2 {
		t.Errorf("call reduction = %.1fx, want at least 2x on the study workload", res.CallReduction)
	}
	out := FormatPipelineStudy(res)
	for _, want := range []string{"rewrite:", "optimized pipeline", "streaming + probed",
		"adaptive runtime", "identical results: true (streaming: true, adaptive: true)",
		"probe calls:", "overlap scenario:", "per-stage attribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}

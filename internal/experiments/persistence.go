package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/workflow"
)

// PersistenceConfig sizes the warm-state study behind the `persistence`
// section of BENCH_PR5.json.
type PersistenceConfig struct {
	// N is the persisted index's record count (the acceptance scale is
	// 100k).
	N int
	// K and Queries shape the pinned top-k comparison between the cold
	// and warm index.
	K, Queries int
	// LogEntries is the cache-log workload's unique entry count;
	// LogOverwrites of them are overwritten after the first flush, so the
	// log carries a known dead fraction for the compaction figures.
	LogEntries, LogOverwrites int
	// Seed drives the synthetic corpus.
	Seed int64
}

// DefaultPersistenceConfig measures the acceptance scale: a 100k-record
// quantized index and a 5000-entry cache log with a 20% overwrite tail.
func DefaultPersistenceConfig() PersistenceConfig {
	return PersistenceConfig{N: 100000, K: 10, Queries: 20, LogEntries: 5000, LogOverwrites: 1000, Seed: 7}
}

// PersistenceRow is the machine-readable result: how fast warm state
// restores versus rebuilding, whether the warm index answers
// byte-identically, and the append/replay/compaction economics of the
// cache log. The *_ms, speedup_x, and replay_per_sec fields are
// machine-dependent (stripped by the CI diff); everything else —
// file sizes, record counts, live ratio, identical_top_k — is
// deterministic for a given config.
type PersistenceRow struct {
	N              int     `json:"n"`
	Dim            int     `json:"dim"`
	Quantize       bool    `json:"quantize"`
	RebuildMS      float64 `json:"rebuild_ms"`
	WarmLoadMS     float64 `json:"warm_load_ms"`
	SpeedupX       float64 `json:"speedup_x"`
	IdenticalTopK  bool    `json:"identical_top_k"`
	IndexFileBytes int64   `json:"index_file_bytes"`

	LogEntries       int     `json:"log_entries"`
	LogRecords       int     `json:"log_records"`
	LogBytes         int64   `json:"log_bytes"`
	LogLiveRatio     float64 `json:"log_live_ratio"`
	CompactedRecords int     `json:"compacted_records"`
	CompactedBytes   int64   `json:"compacted_bytes"`
	LogAppendMS      float64 `json:"log_append_ms"`
	LogReplayMS      float64 `json:"log_replay_ms"`
	ReplayPerSec     float64 `json:"replay_per_sec"`
}

// PersistenceStudy measures both halves of the warm-state tentpole
// (docs/PERSISTENCE.md) in one pass. Index side: build a quantized index
// over N synthetic records (timed — the cold path every process used to
// pay), persist it, load it back through the one-read path (timed), and
// pin the warm index's top-k against the cold one's. Log side: run an
// insert + overwrite workload through a cache into an append-only log,
// then measure replay and compaction. Everything happens under a
// throwaway temp dir.
func PersistenceStudy(cfg PersistenceConfig) (*PersistenceRow, error) {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.Queries <= 0 || cfg.LogEntries <= 0 {
		return nil, fmt.Errorf("persistence: N, K, Queries, LogEntries must be positive")
	}
	if cfg.LogOverwrites > cfg.LogEntries {
		return nil, fmt.Errorf("persistence: LogOverwrites exceeds LogEntries")
	}
	dir, err := os.MkdirTemp("", "declprompt-persist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	em := embed.Default()
	texts := dataset.GenerateSyntheticTexts(cfg.N+cfg.Queries, cfg.Seed)
	items := make([]embed.Item, cfg.N)
	for i := range items {
		items[i] = embed.Item{ID: fmt.Sprintf("s%d", i), Text: texts[i]}
	}
	queries := texts[cfg.N:]
	opts := embed.IndexOptions{Quantize: true}

	// Cold path: embed the corpus and build the quantized tier — what a
	// process restart costs without persistent state.
	start := time.Now()
	cold := embed.NewIndexWith(em, opts)
	cold.AddAll(items)
	cold.Nearest(queries[0], cfg.K) // forces the code-array build into the timed window
	row := &PersistenceRow{N: cfg.N, Dim: em.Dim(), Quantize: true, RebuildMS: msSince(start)}

	path := filepath.Join(dir, embed.IndexFileName(em, items, opts))
	if err := embed.SaveIndex(path, cold, em, items); err != nil {
		return nil, err
	}
	if fi, err := os.Stat(path); err == nil {
		row.IndexFileBytes = fi.Size()
	}

	// Warm path: one read restores store and codes.
	start = time.Now()
	warm, err := embed.LoadIndex(path, em, items, opts)
	if err != nil {
		return nil, err
	}
	row.WarmLoadMS = msSince(start)
	if row.WarmLoadMS > 0 {
		row.SpeedupX = math.Round(row.RebuildMS/row.WarmLoadMS*10) / 10
	}
	row.IdenticalTopK = true
	for _, q := range queries {
		if !reflect.DeepEqual(warm.Nearest(q, cfg.K), cold.Nearest(q, cfg.K)) {
			row.IdenticalTopK = false
			break
		}
	}

	// Log workload: LogEntries inserts, flush, then overwrite a fraction
	// and flush again — an append-only log now carrying dead records.
	cache := workflow.NewCache(0)
	resp := func(i, gen int) llm.Response {
		return llm.Response{Text: fmt.Sprintf("answer-%d-gen%d", i, gen), Model: "bench"}
	}
	for i := 0; i < cfg.LogEntries; i++ {
		cache.Put("bench", fmt.Sprintf("prompt-%d", i), resp(i, 0))
	}
	lg, err := workflow.OpenCacheLog(filepath.Join(dir, "cache.log"))
	if err != nil {
		return nil, err
	}
	defer lg.Close()
	start = time.Now()
	if _, err := lg.Flush(cache); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.LogOverwrites; i++ {
		cache.Put("bench", fmt.Sprintf("prompt-%d", i), resp(i, 1))
	}
	if _, err := lg.Flush(cache); err != nil {
		return nil, err
	}
	row.LogAppendMS = msSince(start)
	st := lg.Stats()
	row.LogRecords, row.LogBytes = st.Records, st.Bytes
	row.LogEntries = cfg.LogEntries
	row.LogLiveRatio = math.Round(float64(cfg.LogEntries)/float64(st.Records)*1000) / 1000

	// Replay rate: a fresh process reading the log back.
	replayed := workflow.NewCache(0)
	lg2, err := workflow.OpenCacheLog(filepath.Join(dir, "cache.log"))
	if err != nil {
		return nil, err
	}
	defer lg2.Close()
	start = time.Now()
	rs, err := lg2.Replay(replayed)
	if err != nil {
		return nil, err
	}
	row.LogReplayMS = msSince(start)
	if row.LogReplayMS > 0 {
		row.ReplayPerSec = math.Round(float64(rs.Records) / (row.LogReplayMS / 1000))
	}

	// Compaction rewrites live entries only.
	if err := lg2.Compact(replayed); err != nil {
		return nil, err
	}
	cst := lg2.Stats()
	row.CompactedRecords, row.CompactedBytes = cst.Records, cst.Bytes
	return row, nil
}

// FormatPersistence renders the study in the repo's table style.
func FormatPersistence(row *PersistenceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "index n=%d dim=%d quantize=%v\n", row.N, row.Dim, row.Quantize)
	fmt.Fprintf(&sb, "  rebuild %.1fms -> warm load %.1fms (%.1fx), file %d bytes, identical top-k: %v\n",
		row.RebuildMS, row.WarmLoadMS, row.SpeedupX, row.IndexFileBytes, row.IdenticalTopK)
	fmt.Fprintf(&sb, "cache log: %d live / %d records (%.3f live), %d bytes\n",
		row.LogEntries, row.LogRecords, row.LogLiveRatio, row.LogBytes)
	fmt.Fprintf(&sb, "  append %.1fms, replay %.1fms (%.0f rec/s), compacted to %d records / %d bytes\n",
		row.LogAppendMS, row.LogReplayMS, row.ReplayPerSec, row.CompactedRecords, row.CompactedBytes)
	return sb.String()
}

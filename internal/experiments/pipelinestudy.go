package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/token"
	"repro/internal/workflow"
)

// PipelineStudyConfig parameterises the pipeline-optimization study.
type PipelineStudyConfig struct {
	// Model is the simulated model name.
	Model string
	// Records is the base source width; duplicates are added on top.
	Records int
	// DupFrac is the fraction of base records that get a corrupted
	// duplicate (same type/city, perturbed address and phone).
	DupFrac float64
	// TrainN sizes the imputation training side table.
	TrainN int
	// Batch is the unit tasks per envelope in the optimized run (<= 1
	// disables batching there).
	Batch int
	// Parallelism bounds concurrent calls.
	Parallelism int
	// ProbeSample caps the records the probing optimizer samples per
	// hintless filter in the streaming configuration (default 8).
	ProbeSample int
	// OverlapLatency is the deterministic per-call delay of the side-input
	// overlap scenario's latency model (default 15ms).
	OverlapLatency time.Duration
	// Seed drives the deterministic workload generator.
	Seed int64
}

// DefaultPipelineStudyConfig returns the study's stock shape.
func DefaultPipelineStudyConfig() PipelineStudyConfig {
	return PipelineStudyConfig{
		Model: "sim-gpt-3.5-turbo", Records: 24, DupFrac: 0.4,
		TrainN: 60, Batch: 8, Parallelism: 16, ProbeSample: 8, Seed: 7,
	}
}

// PipelineStudyRun is one configuration's accounting.
type PipelineStudyRun struct {
	// Config labels the configuration.
	Config string
	// UpstreamCalls and UpstreamTokens count what actually reached the
	// model, measured below every wrapper.
	UpstreamCalls, UpstreamTokens int
	// ProbeCalls counts the upstream calls the probing optimizer's
	// selectivity probes spent (attributed under workflow.StageProbe;
	// zero for hint-trusting configurations).
	ProbeCalls int
	// WallClock is the configuration's elapsed execution time.
	WallClock time.Duration
	// Stages is the per-stage attribution report.
	Stages []pipeline.StageReport
	// Usage is the attribution total; its Calls/Total must equal the
	// upstream counters (the pinned consistency check).
	Usage token.Usage
	// Count is the terminal count stage's scalar output.
	Count string
}

// PipelineStudyResult compares naive sequential operator invocation with
// the optimized pipeline — materialized with the spec's selectivity
// hints, record-streaming with probed (measured) selectivities, and the
// adaptive runtime (self-tuned chunks, mid-run replanning) — on one
// workload, plus a latency-modelled side-input overlap scenario.
type PipelineStudyResult struct {
	Naive, Optimized, Streaming, Adaptive PipelineStudyRun
	// Rewrites is the hint-trusting optimizer's log.
	Rewrites []string
	// ProbeTrace is the probing optimizer's log: hint-vs-measured lines
	// followed by the rewrites it applied.
	ProbeTrace []string
	// Identical reports whether the final table and scalar outputs match
	// exactly between naive and optimized — the temperature-0 equivalence
	// the optimizer promises.
	Identical bool
	// StreamingIdentical reports the same equivalence between the
	// materialized and the streaming+probed configurations.
	StreamingIdentical bool
	// AdaptiveIdentical reports the same equivalence between the
	// streaming+probed and the adaptive configurations.
	AdaptiveIdentical bool
	// CallReduction is naive calls divided by optimized calls.
	CallReduction float64
	// Overlap is the side-input overlap scenario: the same join-with-
	// dynamic-side workload timed drain-first versus adaptively
	// overlapped, under a deterministic per-call latency model.
	Overlap *OverlapScenarioResult
}

// OverlapScenarioResult times the side-input overlap scenario.
type OverlapScenarioResult struct {
	// DrainFirst is the pre-adaptive executor's wall clock: the join
	// drains its whole main input, then waits for the side stage.
	DrainFirst time.Duration
	// Overlap is the adaptive executor's wall clock on the same workload:
	// the main input buffers while the side stage materializes, and
	// matching starts the moment the side table lands.
	Overlap time.Duration
	// Matches counts the join's output rows (equal in both runs).
	Matches int
	// Identical reports whether both runs produced byte-identical match
	// tables.
	Identical bool
}

// pipelineStudySpec is the study workload's user-order plan: dedupe the
// raw feed first, then filter, then impute, then count — the "filter late"
// shape the optimizer exists to fix (dedupe is quadratic in its input, so
// pushing the cheap type filter ahead of it shrinks the dominant cost by
// the square of the selectivity).
func pipelineStudySpec() pipeline.Spec {
	return pipeline.Spec{Stages: []pipeline.StageSpec{
		{Name: "entities", Kind: pipeline.KindResolve, Input: "source",
			Strategy: "pairwise", InvariantFields: []string{"type"}},
		{Name: "cuisine", Kind: pipeline.KindFilter, Field: "type",
			Predicate: "the restaurant serves seafood, steak, or pizza", Selectivity: 0.3},
		{Name: "city", Kind: pipeline.KindImpute, TargetField: "city",
			Side: "train", Strategy: "hybrid", Neighbors: 3, Examples: 2},
		{Name: "in-ny", Kind: pipeline.KindCount, Field: "city",
			Predicate: "the city is new york", Strategy: "per-item"},
	}}
}

// pipelineStudyTables builds the workload: restaurant records whose city
// is missing (to impute), a DupFrac share of them duplicated with
// corrupted address/phone but byte-identical name and type — so the
// declared resolve invariant ("type") genuinely holds — plus the training
// side table.
func pipelineStudyTables(cfg PipelineStudyConfig) map[string][]dataset.Record {
	ds := dataset.GenerateRestaurants(cfg.TrainN, cfg.Records, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed * 31))
	var source []dataset.Record
	for _, r := range ds.Test {
		masked := r.WithoutField(ds.TargetField)
		source = append(source, masked)
		if rng.Float64() < cfg.DupFrac {
			dup := masked.Clone()
			dup.ID = masked.ID + "-dup"
			if addr, ok := dup.Get("addr"); ok {
				dup.Set("addr", fmt.Sprintf("%d %s", 10+rng.Intn(990), strings.TrimLeft(addr, "0123456789 ")))
			}
			if phone, ok := dup.Get("phone"); ok && len(phone) >= 4 {
				dup.Set("phone", phone[:len(phone)-4]+fmt.Sprintf("%04d", rng.Intn(10000)))
			}
			source = append(source, dup)
		}
	}
	return map[string][]dataset.Record{"source": source, "train": ds.Train}
}

// pipelineStudyModel builds the simulated model with the study's two
// custom predicates registered (the filter's cuisine check and the count's
// city check), wrapped in an upstream call counter.
func pipelineStudyModel(name string) (*llm.CountingModel, error) {
	oracle := sim.NewNamed(name)
	oracle.RegisterPredicate(sim.Predicate{
		Name:  "serves-cuisine",
		Match: func(s string) bool { return strings.Contains(strings.ToLower(s), "restaurant serves") },
		Truth: func(item string) (bool, float64) {
			switch strings.ToLower(strings.TrimSpace(item)) {
			case "seafood", "steakhouses", "pizza":
				return true, 1
			}
			return false, 1
		},
	})
	oracle.RegisterPredicate(sim.Predicate{
		Name:  "in-new-york",
		Match: func(s string) bool { return strings.Contains(strings.ToLower(s), "new york") },
		Truth: func(item string) (bool, float64) {
			return strings.Contains(strings.ToLower(item), "new york"), 1
		},
	})
	return llm.NewCounting(oracle), nil
}

// PipelineStudy measures what the declarative pipeline layer buys on one
// workload. Three configurations run the same spec:
//
//   - naive: the user's stage order, each operator invoked in sequence
//     with a fresh isolated engine on whole tables — the cost a user pays
//     today calling operators one by one;
//   - optimized: the hint-trusting optimizer's rewritten order (filter
//     pushed ahead of the quadratic dedupe) on one shared engine — one
//     execution layer, one index registry, one budget, unit-task
//     batching — materialized, with per-stage attribution;
//   - streaming: the same rewritten plan with the spec's selectivity
//     hints stripped, so the optimizer *measures* filter selectivity on a
//     record sample (probe spend attributed under workflow.StageProbe),
//     executed with record-level streaming between stages.
//
// At temperature 0 all three produce identical final tables and scalars;
// the optimized runs spend strictly fewer upstream calls and tokens, and
// the per-run wall clocks expose what streaming overlap buys.
func PipelineStudy(ctx context.Context, cfg PipelineStudyConfig) (*PipelineStudyResult, error) {
	if cfg.Records < 4 {
		return nil, fmt.Errorf("pipeline study: need at least 4 records, got %d", cfg.Records)
	}
	spec := pipelineStudySpec()
	tables := pipelineStudyTables(cfg)

	optSpec, rewrites, err := pipeline.Optimize(spec)
	if err != nil {
		return nil, fmt.Errorf("pipeline study: optimize: %w", err)
	}

	runOne := func(label string, s pipeline.Spec, execCfg pipeline.ExecConfig, counting *llm.CountingModel) (PipelineStudyRun, *pipeline.Result, error) {
		p, err := pipeline.Compile(s)
		if err != nil {
			return PipelineStudyRun{}, nil, fmt.Errorf("compile %s: %w", label, err)
		}
		start := time.Now()
		res, err := p.Run(ctx, execCfg, tables)
		if err != nil {
			return PipelineStudyRun{}, nil, fmt.Errorf("run %s: %w", label, err)
		}
		total := counting.Total()
		return PipelineStudyRun{
			Config:         label,
			UpstreamCalls:  total.Calls,
			UpstreamTokens: total.Total(),
			WallClock:      time.Since(start),
			Stages:         res.Stages,
			Usage:          res.Usage,
			Count:          res.Scalars["in-ny"],
		}, res, nil
	}

	naiveModel, err := pipelineStudyModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	naive, naiveRes, err := runOne("naive sequential (seed)", spec, pipeline.ExecConfig{
		Model: naiveModel, Parallelism: cfg.Parallelism, Isolated: true, Materialized: true,
	}, naiveModel)
	if err != nil {
		return nil, err
	}

	optModel, err := pipelineStudyModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	optimized, optRes, err := runOne("optimized pipeline", optSpec, pipeline.ExecConfig{
		Model: optModel, Parallelism: cfg.Parallelism, Batch: cfg.Batch, Materialized: true,
	}, optModel)
	if err != nil {
		return nil, err
	}

	// Streaming configuration: strip the filter hints so the optimizer
	// must measure, share one layer and ledger between probing and the
	// run, and let records flow between stages.
	strModel, err := pipelineStudyModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	hintless := spec
	hintless.Stages = append([]pipeline.StageSpec(nil), spec.Stages...)
	for i := range hintless.Stages {
		hintless.Stages[i].Selectivity = 0
	}
	attr := workflow.NewAttribution()
	strCfg := pipeline.ExecConfig{
		Model: strModel, Parallelism: cfg.Parallelism, Batch: cfg.Batch,
		Exec: workflow.NewExecLayer(), Attribution: attr,
	}
	probedSpec, probeTrace, err := pipeline.OptimizeProbed(ctx, hintless, strCfg, tables,
		pipeline.ProbeOptions{Sample: cfg.ProbeSample})
	if err != nil {
		return nil, fmt.Errorf("pipeline study: probed optimize: %w", err)
	}
	streaming, strRes, err := runOne("streaming + probed", probedSpec, strCfg, strModel)
	if err != nil {
		return nil, err
	}
	streaming.ProbeCalls = attr.Usage(workflow.StageProbe).Calls

	// Adaptive configuration: the same probed plan under the adaptive
	// runtime — micro-batch widths self-tune, and commutable filter runs
	// may be re-ordered mid-run. Unit tasks are identical to the streaming
	// configuration, and flooring the self-tuned width at the streaming
	// run's fixed chunk makes "adaptive spends at most the streaming
	// run's calls" structural rather than a timing accident: widths only
	// grow from there, so batch envelopes pack at least as well even when
	// a loaded machine's queue waits would otherwise shrink them.
	adaModel, err := pipelineStudyModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	adaAttr := workflow.NewAttribution()
	adaCfg := pipeline.ExecConfig{
		Model: adaModel, Parallelism: cfg.Parallelism, Batch: cfg.Batch,
		Exec: workflow.NewExecLayer(), Attribution: adaAttr, Adaptive: true,
		ChunkMin: max(cfg.Batch, 8),
	}
	adaSpec, _, err := pipeline.OptimizeProbed(ctx, hintless, adaCfg, tables,
		pipeline.ProbeOptions{Sample: cfg.ProbeSample})
	if err != nil {
		return nil, fmt.Errorf("pipeline study: adaptive probed optimize: %w", err)
	}
	adaptive, adaRes, err := runOne("adaptive runtime", adaSpec, adaCfg, adaModel)
	if err != nil {
		return nil, err
	}
	adaptive.ProbeCalls = adaAttr.Usage(workflow.StageProbe).Calls

	overlap, err := OverlapScenario(ctx, cfg.OverlapLatency)
	if err != nil {
		return nil, fmt.Errorf("pipeline study: overlap scenario: %w", err)
	}

	last := spec.Stages[len(spec.Stages)-1].Name
	identical := reflect.DeepEqual(naiveRes.Tables[last], optRes.Tables[last]) &&
		reflect.DeepEqual(naiveRes.Scalars, optRes.Scalars)
	streamingIdentical := reflect.DeepEqual(optRes.Tables[last], strRes.Tables[last]) &&
		reflect.DeepEqual(optRes.Scalars, strRes.Scalars)
	adaptiveIdentical := reflect.DeepEqual(strRes.Tables[last], adaRes.Tables[last]) &&
		reflect.DeepEqual(strRes.Scalars, adaRes.Scalars)

	out := &PipelineStudyResult{
		Naive:              naive,
		Optimized:          optimized,
		Streaming:          streaming,
		Adaptive:           adaptive,
		Rewrites:           rewrites,
		ProbeTrace:         probeTrace,
		Identical:          identical,
		StreamingIdentical: streamingIdentical,
		AdaptiveIdentical:  adaptiveIdentical,
		Overlap:            overlap,
	}
	if optimized.UpstreamCalls > 0 {
		out.CallReduction = float64(naive.UpstreamCalls) / float64(optimized.UpstreamCalls)
	}
	return out, nil
}

// OverlapScenario times what side-input overlap buys on a workload built
// to expose it: a slow filter feeds a nested-loop join whose right side
// is another stage's output. Drain-first (the pre-adaptive executor)
// makes the join consume its whole main input before matching anything;
// the adaptive runtime buffers the main input while the side stage
// materializes and starts matching the moment the side table lands, so
// join work pipelines with the slow feed. Latency is deterministic — a
// fixed per-call delay on the feed predicate and the join comparisons
// (llm.WithLatency), with the side filter answering instantly — so the
// structural gap, roughly 1.6x on this shape, dwarfs scheduling noise.
func OverlapScenario(ctx context.Context, latency time.Duration) (*OverlapScenarioResult, error) {
	if latency <= 0 {
		latency = 15 * time.Millisecond
	}
	const n = 8
	names := dataset.FlavorNames()
	source := make([]dataset.Record, n)
	for i := 0; i < n; i++ {
		source[i] = dataset.Record{ID: fmt.Sprintf("flavor-%02d", i),
			Fields: []dataset.Field{{Name: "name", Value: names[i]}}}
	}
	tables := map[string][]dataset.Record{"source": source}
	// The pool keeps every fourth flavor, the feed the odd ones — disjoint
	// ID sets, as the join requires; every cross comparison matches.
	spec := pipeline.Spec{Stages: []pipeline.StageSpec{
		{Name: "pool", Kind: pipeline.KindFilter, Field: "name", Predicate: "poolpred", Input: "source"},
		{Name: "feed", Kind: pipeline.KindFilter, Field: "name", Predicate: "feedpred", Input: "source"},
		{Name: "match", Kind: pipeline.KindJoin, Field: "name", Side: "pool",
			Strategy: "nested-loop", Input: "feed"},
	}}
	newModel := func() llm.Model {
		slow := llm.WithLatency(llm.Func{ModelName: "overlap-base",
			Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
				return llm.Response{Text: "Yes", Model: "overlap-base",
					Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1}}, nil
			}}, latency)
		return llm.Func{ModelName: "overlap", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			if strings.Contains(req.Prompt, "satisfy the condition") {
				idx := -1
				for i := 0; i < n; i++ {
					if strings.Contains(req.Prompt, names[i]) {
						idx = i
						break
					}
				}
				if strings.Contains(req.Prompt, "poolpred") {
					// The side filter is the fast path: no latency.
					text := "No"
					if idx >= 0 && idx%4 == 0 {
						text = "Yes"
					}
					return llm.Response{Text: text, Model: "overlap",
						Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1}}, nil
				}
				if idx >= 0 && idx%2 == 0 {
					// Even flavors fail the feed predicate — after the
					// deterministic delay, like any real call.
					resp, err := slow.Complete(ctx, req)
					if err == nil {
						resp.Text = "No"
					}
					return resp, err
				}
			}
			return slow.Complete(ctx, req)
		}}
	}
	run := func(adaptive bool) (time.Duration, []dataset.Record, error) {
		p, err := pipeline.Compile(spec)
		if err != nil {
			return 0, nil, err
		}
		// Single-record chunks keep every stage's work serial so the
		// latency model is legible; the adaptive run expresses that
		// through the chunk bounds (leaving the inter-stage buffers at
		// their default width, so the fast side filter is never throttled
		// to the slow feed's pace by a one-slot channel).
		cfg := pipeline.ExecConfig{Model: newModel(), Parallelism: 1}
		if adaptive {
			cfg.Adaptive, cfg.ChunkMin, cfg.ChunkMax = true, 1, 1
		} else {
			cfg.Chunk = 1
		}
		start := time.Now()
		res, err := p.Run(ctx, cfg, tables)
		if err != nil {
			return 0, nil, err
		}
		return time.Since(start), res.Tables["match"], nil
	}
	drainClock, drainMatches, err := run(false)
	if err != nil {
		return nil, err
	}
	overlapClock, overlapMatches, err := run(true)
	if err != nil {
		return nil, err
	}
	return &OverlapScenarioResult{
		DrainFirst: drainClock,
		Overlap:    overlapClock,
		Matches:    len(overlapMatches),
		Identical:  reflect.DeepEqual(drainMatches, overlapMatches),
	}, nil
}

// FormatPipelineStudy renders the study as a text report.
func FormatPipelineStudy(res *PipelineStudyResult) string {
	var b strings.Builder
	for _, rw := range res.Rewrites {
		fmt.Fprintf(&b, "rewrite: %s\n", rw)
	}
	for _, line := range res.ProbeTrace {
		fmt.Fprintf(&b, "trace: %s\n", line)
	}
	fmt.Fprintf(&b, "%-26s %10s %12s %10s %12s\n", "Configuration", "# Calls", "# Tokens", "Reduction", "Wall clock")
	for _, run := range []PipelineStudyRun{res.Naive, res.Optimized, res.Streaming, res.Adaptive} {
		red := 1.0
		if run.UpstreamCalls > 0 {
			red = float64(res.Naive.UpstreamCalls) / float64(run.UpstreamCalls)
		}
		fmt.Fprintf(&b, "%-26s %10d %12d %9.1fx %12s\n",
			run.Config, run.UpstreamCalls, run.UpstreamTokens, red, run.WallClock.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "identical results: %v (streaming: %v, adaptive: %v), count scalar: %s\n",
		res.Identical, res.StreamingIdentical, res.AdaptiveIdentical, res.Optimized.Count)
	fmt.Fprintf(&b, "probe calls: %d of the streaming run's %d (hint-trusting optimized run: 0)\n",
		res.Streaming.ProbeCalls, res.Streaming.UpstreamCalls)
	if res.Overlap != nil {
		fmt.Fprintf(&b, "overlap scenario: drain-first %s vs adaptive overlap %s on %d matches (identical: %v)\n",
			res.Overlap.DrainFirst.Round(time.Millisecond), res.Overlap.Overlap.Round(time.Millisecond),
			res.Overlap.Matches, res.Overlap.Identical)
	}
	b.WriteString("per-stage attribution (adaptive runtime):\n")
	for _, s := range res.Adaptive.Stages {
		fmt.Fprintf(&b, "  %-10s %-10s in %3d out %3d  %6d calls %8d tokens  $%.4f  %s\n",
			s.Name, s.Kind, s.In, s.Out, s.Usage.Calls, s.Usage.Total(), s.Cost, s.Detail)
	}
	return b.String()
}

package experiments

import "testing"

// TestServerBenchPinned pins the declserver burst economics on the stock
// sim engine: six concurrent submissions across three tenants cost
// exactly one cold run of the workload (the shared cache and coalescer
// absorb the other five), and a second burst against the same resident
// server is upstream-free. Every ask is served exactly once — upstream,
// cache, or coalesced — so the shared-hit sums are stable however the
// hit/coalesce split falls. A diff here means the service changed what
// tenants pay; rebase the numbers only with an explanation.
func TestServerBenchPinned(t *testing.T) {
	rows, err := ServerBench(ctx())
	if err != nil {
		t.Fatal(err)
	}
	want := []ServerBenchRow{
		{Name: "server-cold-burst", Tenants: 3, Submissions: 6, Completed: 6,
			UpstreamCalls: 30, UpstreamTokens: 2520, SharedHits: 168, Balanced: true},
		{Name: "server-warm-burst", Tenants: 3, Submissions: 6, Completed: 6,
			UpstreamCalls: 0, UpstreamTokens: 0, SharedHits: 198, Balanced: true},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		g := rows[i]
		if g.Name != w.Name || g.Tenants != w.Tenants || g.Submissions != w.Submissions ||
			g.Completed != w.Completed || g.UpstreamCalls != w.UpstreamCalls ||
			g.UpstreamTokens != w.UpstreamTokens || g.SharedHits != w.SharedHits ||
			g.Balanced != w.Balanced {
			t.Errorf("%s: {tenants %d, subs %d, done %d, calls %d, tokens %d, shared %d, balanced %v} differs from pinned {%d, %d, %d, %d, %d, %d, %v}",
				g.Name, g.Tenants, g.Submissions, g.Completed, g.UpstreamCalls, g.UpstreamTokens, g.SharedHits, g.Balanced,
				w.Tenants, w.Submissions, w.Completed, w.UpstreamCalls, w.UpstreamTokens, w.SharedHits, w.Balanced)
		}
	}
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/token"
	"repro/internal/workflow"
)

// BenchRow is one pipeline benchmark configuration's machine-readable
// record: wall clock per run plus the call, cache, and batching counters
// that explain it. The counters cover exactly one cold run of the
// workload whatever Iters was, so rows from reports generated with
// different iteration counts diff cleanly.
type BenchRow struct {
	Name           string `json:"name"`
	Iters          int    `json:"iters"`
	NsPerOp        int64  `json:"ns_per_op"`
	UpstreamCalls  int    `json:"upstream_calls"`
	UpstreamTokens int    `json:"upstream_tokens"`
	CacheSize      int    `json:"cache_size"`
	CacheHits      int    `json:"cache_hits"`
	Coalesced      int    `json:"coalesced"`
	Batches        int    `json:"batches"`
	SoloRetries    int    `json:"solo_retries"`
}

// BenchReport is the versioned envelope declctl bench writes (e.g. to
// BENCH_PR5.json), so future PRs can diff perf trajectories without
// scraping go test -bench output. ns_per_op, build_ms, and qps are
// machine-dependent; the call/cache counters and the index rows'
// config, recall, and bytes_per_record fields are deterministic for a
// given workload. Schema pipeline-bench/v2 added the index_benchmarks
// section (the quantized-tier study of `declctl index-bench`); v3 added
// the persistence section (warm index load vs rebuild and the cache
// log's append/replay/compaction economics, see docs/PERSISTENCE.md);
// v4 added the server section (multi-tenant cold/warm burst economics
// against a resident declserver, see docs/SERVER.md); v5 added the
// resilience section (the fault-injection chaos ladder: healed retries,
// quarantine counts, and availability, see docs/RESILIENCE.md).
type BenchReport struct {
	Schema          string               `json:"schema"`
	Go              string               `json:"go"`
	Workload        string               `json:"workload"`
	Benchmarks      []BenchRow           `json:"benchmarks"`
	IndexBenchmarks []IndexBenchRow      `json:"index_benchmarks"`
	Persistence     *PersistenceRow      `json:"persistence,omitempty"`
	Server          []ServerBenchRow     `json:"server,omitempty"`
	Resilience      []ResilienceBenchRow `json:"resilience,omitempty"`
}

// benchWorkload mirrors internal/pipeline's benchmark shape: a
// filter→dedupe→impute chain in the pessimal user order over the
// restaurants dataset.
func benchWorkload() (pipeline.Spec, map[string][]dataset.Record) {
	spec := pipeline.Spec{Stages: []pipeline.StageSpec{
		{Name: "entities", Kind: pipeline.KindResolve, Input: "source",
			Strategy: "pairwise", InvariantFields: []string{"type"}},
		{Name: "cheap", Kind: pipeline.KindFilter, Field: "type",
			Predicate: "the restaurant serves seafood, steak, or pizza", Selectivity: 0.3},
		{Name: "city", Kind: pipeline.KindImpute, TargetField: "city",
			Side: "train", Strategy: "hybrid", Neighbors: 3},
	}}
	ds := dataset.GenerateRestaurants(40, 12, 7)
	source := make([]dataset.Record, len(ds.Test))
	for i, r := range ds.Test {
		source[i] = r.WithoutField(ds.TargetField)
	}
	return spec, map[string][]dataset.Record{"source": source, "train": ds.Train}
}

// PipelineBench times the pipeline benchmark configurations iters times
// each and returns the machine-readable report. Each configuration keeps
// one execution layer across its iterations, so the cache counters show
// the cross-run reuse a persistent service would see. A non-empty
// stateDir threads through to the index benchmarks (`declctl bench
// -state-dir`): the first run builds and persists each index, repeat
// runs warm-load them — the rows then carry warm=true and their
// build_ms reports the one-read load.
func PipelineBench(ctx context.Context, iters int, stateDir string) (*BenchReport, error) {
	if iters <= 0 {
		iters = 3
	}
	spec, tables := benchWorkload()
	optimized, _, err := pipeline.Optimize(spec)
	if err != nil {
		return nil, err
	}

	type config struct {
		name string
		spec pipeline.Spec
		cfg  pipeline.ExecConfig
		// feed runs the configuration as a standing query: the source
		// table shrinks to static and the feed records arrive mid-run on
		// ExecConfig.Feed (the scenario harness's workload shape). Serial
		// execution (Parallelism 1, Chunk 1, no batching) keeps every
		// counter — including the cache-hit/coalesce split — deterministic.
		static, feed []dataset.Record
	}
	source := tables["source"]
	half := len(source) / 2
	configs := []config{
		{name: "pipeline-naive", spec: spec, cfg: pipeline.ExecConfig{Parallelism: 16, Isolated: true, Materialized: true}},
		{name: "pipeline-optimized-materialized", spec: optimized, cfg: pipeline.ExecConfig{Parallelism: 16, Batch: 8, Materialized: true}},
		{name: "pipeline-optimized-streaming", spec: optimized, cfg: pipeline.ExecConfig{Parallelism: 16, Batch: 8}},
		{name: "pipeline-adaptive", spec: optimized, cfg: pipeline.ExecConfig{Parallelism: 16, Batch: 8, Adaptive: true}},
		{name: "scenario-standing-query", spec: optimized, cfg: pipeline.ExecConfig{Parallelism: 1, Chunk: 1},
			static: source[:half], feed: source[half:]},
	}

	report := &BenchReport{
		Schema:   "pipeline-bench/v5",
		Go:       runtime.Version(),
		Workload: "restaurants 12 source / 40 train, resolve->filter->impute",
	}
	for _, c := range configs {
		p, err := pipeline.Compile(c.spec)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.name, err)
		}
		counting := llm.NewCounting(sim.NewNamed("sim-gpt-3.5-turbo"))
		layer := workflow.NewExecLayer()
		cfg := c.cfg
		cfg.Model = counting
		if !cfg.Isolated {
			cfg.Exec = layer
		}
		// Counters are snapshotted after the first (cold) iteration so
		// they describe one run of the workload and stay comparable across
		// reports generated with different -iters; only ns/op averages
		// over every iteration.
		var total token.Usage
		var stats workflow.ExecStats
		start := time.Now()
		for i := 0; i < iters; i++ {
			runCfg, runTables := cfg, tables
			if len(c.feed) > 0 {
				runTables = make(map[string][]dataset.Record, len(tables))
				for k, v := range tables {
					runTables[k] = v
				}
				runTables["source"] = c.static
				feed := make(chan dataset.Record)
				go func() {
					defer close(feed)
					for _, r := range c.feed {
						feed <- r
					}
				}()
				runCfg.Feed = feed
			}
			if _, err := p.Run(ctx, runCfg, runTables); err != nil {
				return nil, fmt.Errorf("bench %s: %w", c.name, err)
			}
			if i == 0 {
				total = counting.Total()
				stats = layer.Stats()
			}
		}
		elapsed := time.Since(start)
		report.Benchmarks = append(report.Benchmarks, BenchRow{
			Name:           c.name,
			Iters:          iters,
			NsPerOp:        elapsed.Nanoseconds() / int64(iters),
			UpstreamCalls:  total.Calls,
			UpstreamTokens: total.Total(),
			CacheSize:      stats.CacheSize,
			CacheHits:      stats.CacheHits,
			Coalesced:      stats.Coalesced,
			Batches:        stats.Batches,
			SoloRetries:    stats.SoloRetries,
		})
	}

	// Index benchmarks: a small run exercising every mode, plus the
	// flat-only N=100k run that commits the quantized-scan ≥2x speedup
	// evidence (qps is machine-dependent and stripped by the CI diff; the
	// recall and bytes_per_record columns are the deterministic part).
	for _, icfg := range []IndexBenchConfig{
		{N: 2000, K: 10, Queries: 100, Quantize: true, Seed: 7, StateDir: stateDir},
		{N: 100000, K: 10, Queries: 20, Quantize: true, FlatOnly: true, Seed: 7, StateDir: stateDir},
	} {
		rows, err := IndexBench(icfg)
		if err != nil {
			return nil, fmt.Errorf("bench index n=%d: %w", icfg.N, err)
		}
		report.IndexBenchmarks = append(report.IndexBenchmarks, rows...)
	}

	// Persistence: warm index load vs rebuild at the 100k acceptance
	// scale plus the cache log's replay and compaction figures.
	persist, err := PersistenceStudy(DefaultPersistenceConfig())
	if err != nil {
		return nil, fmt.Errorf("bench persistence: %w", err)
	}
	report.Persistence = persist

	// Server: the multi-tenant burst economics against one resident
	// declserver — a cold concurrent round costing one cold run, then an
	// upstream-free warm round.
	serverRows, err := ServerBench(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench server: %w", err)
	}
	report.Server = serverRows

	// Resilience: the fault-injection chaos ladder — every counter
	// deterministic, so regressions in retry healing or quarantine
	// accounting show as a clean diff.
	resilRows, err := ResilienceBench(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench resilience: %w", err)
	}
	report.Resilience = resilRows
	return report, nil
}

// WriteBenchReport marshals the report to path as indented JSON.
func WriteBenchReport(report *BenchReport, path string) error {
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// FormatBenchReport renders the report as a text table.
func FormatBenchReport(report *BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %8s %8s %10s %8s %8s\n",
		"Benchmark", "ns/op", "calls", "tokens", "cachehits", "batches", "retries")
	for _, row := range report.Benchmarks {
		fmt.Fprintf(&b, "%-34s %12d %8d %8d %10d %8d %8d\n",
			row.Name, row.NsPerOp, row.UpstreamCalls, row.UpstreamTokens,
			row.CacheHits, row.Batches, row.SoloRetries)
	}
	// One index table per corpus size (rows arrive grouped by run).
	for i := 0; i < len(report.IndexBenchmarks); {
		j := i
		for j < len(report.IndexBenchmarks) && report.IndexBenchmarks[j].N == report.IndexBenchmarks[i].N {
			j++
		}
		fmt.Fprintf(&b, "\nindex n=%d:\n%s", report.IndexBenchmarks[i].N,
			FormatIndexBench(report.IndexBenchmarks[i:j]))
		i = j
	}
	if report.Persistence != nil {
		fmt.Fprintf(&b, "\npersistence:\n%s", FormatPersistence(report.Persistence))
	}
	if len(report.Resilience) > 0 {
		fmt.Fprintf(&b, "\nresilience:\n%s", FormatResilienceBench(report.Resilience))
	}
	return b.String()
}

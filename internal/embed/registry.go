package embed

import (
	"hash/fnv"
	"math"
	"path/filepath"
	"sync"
)

// registryKey identifies a corpus by content and index configuration:
// the embedding dimensionality, an embedder fingerprint, the normalised
// IndexOptions, and a 128-bit hash over the (id, text) pairs in order.
// Two calls with the same items, an equivalent embedder, and equivalent
// options — regardless of which operator or pipeline stage makes them —
// resolve to the same key and therefore the same built index; a
// quantized and an exact index over the same corpus never share a slot.
type registryKey struct {
	dim         int
	n           int
	fingerprint uint64
	opts        IndexOptions
	hash        [16]byte
}

// normalized maps an IndexOptions to its canonical form — defaults
// resolved the way index construction resolves them — so configurations
// that build identical indexes share one registry slot ({} and {Seed: 1}
// are the same index; {RerankFactor: 0} and {RerankFactor:
// DefaultRerankFactor} score identically).
func (o IndexOptions) normalized() IndexOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RerankFactor == 0 {
		o.RerankFactor = DefaultRerankFactor
	}
	return o
}

// registryEntry guards one index build: the first requester builds inside
// the once, later requesters (including concurrent ones) share the result.
type registryEntry struct {
	once sync.Once
	ix   *Index
}

// Registry caches built indexes keyed by corpus content, by an embedder
// fingerprint (the embedding of a fixed probe text), and by normalised
// IndexOptions, so stages of one pipeline (and repeated planner
// profiling passes) that index the same corpus with equivalent embedders
// and options embed it exactly once, while engines sharing a registry
// with *different* embedder or index configurations — exact vs ANN vs
// quantized — never serve each other's vectors.
//
// Returned indexes are shared: treat them as immutable and query-only
// (Index is safe for concurrent queries once mutation stops, which the
// registry guarantees by building fully before publishing). Safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[registryKey]*registryEntry
	builds  int
	hits    int
	// stateDir, when set (SetStateDir), warms new slots from persisted
	// index files and saves freshly built ones back (persist.go).
	stateDir  string
	warmLoads int
	saves     int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[registryKey]*registryEntry)}
}

// keyOf hashes the corpus content. FNV-128a over length-prefixed fields
// keeps distinct corpora from colliding by concatenation tricks.
func keyOf(em Embedder, items []Item, opts IndexOptions) registryKey {
	h := fnv.New128a()
	var lenBuf [8]byte
	writeStr := func(s string) {
		n := len(s)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for _, it := range items {
		writeStr(it.ID)
		writeStr(it.Text)
	}
	key := registryKey{dim: em.Dim(), n: len(items), fingerprint: fingerprint(em), opts: opts.normalized()}
	h.Sum(key.hash[:0])
	return key
}

// fingerprint distinguishes embedder configurations without requiring
// them to be comparable or named: two embedders that agree on a fixed
// probe text are, for retrieval purposes, the same deterministic
// function. (Embedders are deterministic by contract.)
func fingerprint(em Embedder) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range em.Embed("embed: registry probe text") {
		bits := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Index returns a shared exact-search index over exactly these items,
// building it on first request (embedding parallelised via AddAll) and
// serving every later request for the same corpus from cache.
func (r *Registry) Index(em Embedder, items []Item) *Index {
	return r.IndexWith(em, items, IndexOptions{})
}

// IndexWith is Index with explicit IndexOptions (ANN mode, quantized
// tier, partition/probe/rerank knobs). Options are part of the slot key
// in normalised form, so a quantized and an exact request over the same
// corpus build — and keep — separate indexes.
func (r *Registry) IndexWith(em Embedder, items []Item, opts IndexOptions) *Index {
	key := keyOf(em, items, opts)
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		e = &registryEntry{}
		r.entries[key] = e
	}
	stateDir := r.stateDir
	r.mu.Unlock()

	built, warmed, saved := false, false, false
	e.once.Do(func() {
		// With a state dir set, try the persisted file first: a hit skips
		// embedding and clustering entirely; any load failure (missing,
		// stale corpus, corrupt) falls through to a build that re-saves.
		var path string
		if stateDir != "" {
			path = filepath.Join(stateDir, IndexFileName(em, items, opts))
			if ix, err := LoadIndex(path, em, items, opts); err == nil {
				e.ix = ix
				warmed = true
				return
			}
		}
		ix := NewIndexWith(em, opts)
		ix.AddAll(items)
		if path != "" && SaveIndex(path, ix, em, items) == nil {
			saved = true
		}
		e.ix = ix
		built = true
	})
	r.mu.Lock()
	switch {
	case warmed:
		r.warmLoads++
	case built:
		r.builds++
	default:
		r.hits++
	}
	if saved {
		r.saves++
	}
	r.mu.Unlock()
	return e.ix
}

// Stats returns how many indexes were built and how many requests were
// served from an already-built index.
func (r *Registry) Stats() (builds, hits int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.builds, r.hits
}

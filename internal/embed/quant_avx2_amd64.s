//go:build amd64 && !purego

#include "textflag.h"

// func codeDotAVX2(a, b *int8, n int) int32
//
// AVX2 widening of the SSE2 kernel: VPMOVSXBW sign-extends 16 int8
// lanes straight from memory into 16×int16 ymm lanes (no unpack/shift
// idiom needed), VPMADDWD multiply-accumulates adjacent pairs into
// 8×int32, VPADDD accumulates. The main loop consumes 32 lanes per
// iteration (two 16-lane extends); a single 16-lane step covers the odd
// quantBlock, so any multiple of 16 is handled without scalar work.
// Overflow margins match the SSE2 kernel (per-pair products ≤ 2·128²,
// far inside int32 for any embedder dimensionality). n must be a
// positive multiple of 16. VZEROUPPER before return per the ABI —
// leaving the upper ymm state dirty stalls subsequent SSE code.
TEXT ·codeDotAVX2(SB), NOSPLIT, $0-28
	MOVQ  a+0(FP), SI
	MOVQ  b+8(FP), DI
	MOVQ  n+16(FP), CX
	VPXOR Y7, Y7, Y7

	CMPQ CX, $32
	JL   tail16

loop32:
	VPMOVSXBW (SI), Y0
	VPMOVSXBW (DI), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y7, Y7

	VPMOVSXBW 16(SI), Y2
	VPMOVSXBW 16(DI), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y7, Y7

	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	CMPQ CX, $32
	JGE  loop32

tail16:
	// Rows are quantBlock (16) padded, so the remainder is 0 or 16.
	CMPQ CX, $16
	JL   done
	VPMOVSXBW (SI), Y0
	VPMOVSXBW (DI), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y7, Y7

done:
	// Horizontal sum of the eight int32 accumulator lanes.
	VEXTRACTI128 $1, Y7, X0
	VPADDD       X0, X7, X7
	VPSHUFD      $0xEE, X7, X0
	VPADDD       X0, X7, X7
	VPSHUFD      $0x55, X7, X0
	VPADDD       X0, X7, X7
	VMOVD        X7, AX
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
//
// Reads XCR0, which reports which register states the OS saves across
// context switches. Only call when CPUID leaf 1 reports OSXSAVE.
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET

package embed

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	e := Default()
	a := e.Embed("indexing the positions of continuously moving objects")
	b := e.Embed("indexing the positions of continuously moving objects")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Embed is not deterministic")
	}
	if len(a) != e.Dim() {
		t.Fatalf("dim = %d, want %d", len(a), e.Dim())
	}
}

func TestEmbedNormalised(t *testing.T) {
	e := Default()
	v := e.Embed("hello world")
	var s float64
	for _, x := range v {
		s += x * x
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("norm^2 = %f, want 1", s)
	}
}

func TestEmbedSimilarityOrdering(t *testing.T) {
	e := Default()
	base := e.Embed("indexing the positions of continuously moving objects")
	typoVariant := e.Embed("indexing the positions of continously moving objects")
	truncated := e.Embed("indexing the positions of continuousl...")
	unrelated := e.Embed("a survey of quantum chromodynamics lattice methods")

	dTypo := L2(base, typoVariant)
	dTrunc := L2(base, truncated)
	dUnrel := L2(base, unrelated)
	if dTypo >= dUnrel {
		t.Fatalf("typo variant (%f) should be closer than unrelated (%f)", dTypo, dUnrel)
	}
	if dTrunc >= dUnrel {
		t.Fatalf("truncation (%f) should be closer than unrelated (%f)", dTrunc, dUnrel)
	}
}

func TestEmbedCaseAndWhitespaceInvariance(t *testing.T) {
	e := Default()
	a := e.Embed("Hello   World")
	b := e.Embed("hello world")
	if L2(a, b) > 1e-9 {
		t.Fatal("embedding should fold case and whitespace")
	}
}

func TestEmbedShortStrings(t *testing.T) {
	e := Default()
	// Must not panic on inputs shorter than the n-gram length.
	_ = e.Embed("")
	_ = e.Embed("a")
}

func TestNewNGramEmbedderPanics(t *testing.T) {
	for _, bad := range [][2]int{{0, 3}, {10, 1}, {-5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNGramEmbedder(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			NewNGramEmbedder(bad[0], bad[1])
		}()
	}
}

func TestL2AndCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := L2(a, b); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("L2 = %f", got)
	}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("Cosine orthogonal = %f", got)
	}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine self = %f", got)
	}
	if got := Cosine([]float64{0, 0}, a); got != 0 {
		t.Fatalf("Cosine zero = %f", got)
	}
}

func TestL2PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L2 should panic on length mismatch")
		}
	}()
	L2([]float64{1}, []float64{1, 2})
}

func TestIndexNearest(t *testing.T) {
	ix := NewIndex(Default())
	ix.Add("a", "golden dragon chinese restaurant")
	ix.Add("b", "golden dragon chinese restaurnt") // typo twin
	ix.Add("c", "completely different quantum physics text")
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	nn := ix.Nearest("golden dragon chinese restaurant", 2)
	if len(nn) != 2 {
		t.Fatalf("got %d neighbours", len(nn))
	}
	if nn[0].ID != "a" || nn[0].Distance > 1e-9 {
		t.Fatalf("self should be nearest: %+v", nn[0])
	}
	if nn[1].ID != "b" {
		t.Fatalf("typo twin should be second: %+v", nn[1])
	}
}

func TestIndexNearestOther(t *testing.T) {
	ix := NewIndex(Default())
	ix.Add("a", "golden dragon chinese restaurant")
	ix.Add("b", "golden dragon chinese restaurnt")
	ix.Add("c", "quantum physics")
	nn := ix.NearestOther("golden dragon chinese restaurant", "a", 1)
	if len(nn) != 1 || nn[0].ID != "b" {
		t.Fatalf("NearestOther = %+v, want b", nn)
	}
	// Excluding an unknown id is harmless.
	nn = ix.NearestOther("golden dragon chinese restaurant", "zzz", 1)
	if nn[0].ID != "a" {
		t.Fatalf("NearestOther with unknown exclude = %+v", nn)
	}
}

func TestIndexNearestEdgeCases(t *testing.T) {
	ix := NewIndex(Default())
	if got := ix.Nearest("anything", 3); len(got) != 0 {
		t.Fatalf("empty index should return no neighbours, got %+v", got)
	}
	ix.Add("a", "text")
	if got := ix.Nearest("text", 0); len(got) != 0 {
		t.Fatal("k=0 should return no neighbours")
	}
	if got := ix.Nearest("text", 10); len(got) != 1 {
		t.Fatalf("k beyond size should clamp: %+v", got)
	}
}

func TestIndexReAdd(t *testing.T) {
	ix := NewIndex(Default())
	ix.Add("a", "first text")
	ix.Add("a", "replacement text about quantum physics")
	if ix.Len() != 1 {
		t.Fatalf("re-add should replace, Len = %d", ix.Len())
	}
	nn := ix.Nearest("replacement text about quantum physics", 1)
	if nn[0].Distance > 1e-9 {
		t.Fatal("re-added vector not replaced")
	}
}

func TestBlocks(t *testing.T) {
	ix := NewIndex(Default())
	ix.Add("a1", "golden dragon chinese restaurant new york")
	ix.Add("a2", "golden dragon chinese restaurant new york city")
	ix.Add("b1", "quantum lattice chromodynamics survey methods")
	blocks := ix.Blocks(0.8)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v, want 2 blocks", blocks)
	}
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	if total != 3 {
		t.Fatalf("blocks lost items: %v", blocks)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	e := Default()
	f := func(a, b, c string) bool {
		va, vb, vc := e.Embed(a), e.Embed(b), e.Embed(c)
		return L2(va, vc) <= L2(va, vb)+L2(vb, vc)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineBoundedProperty(t *testing.T) {
	e := Default()
	f := func(a, b string) bool {
		c := Cosine(e.Embed(a), e.Embed(b))
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

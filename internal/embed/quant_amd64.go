//go:build amd64 && !purego

package embed

// codeDot returns Σ a[i]·b[i] over int8 lanes via the best SIMD kernel
// the host supports: AVX2 (quant_avx2_amd64.s, 32 lanes per iteration,
// selected once at startup by CPUID) with the SSE2 kernel in
// quant_amd64.s as the universal amd64 fallback — SSE2 is the amd64
// baseline, so no path ever reaches the pure-Go loop except for scalar
// tails. Lengths must match; the kernels consume 16-lane blocks
// (quantized rows are quantBlock-padded) and codeDotGeneric covers any
// scalar tail.
func codeDot(a, b []int8) int32 {
	n := len(a) &^ (quantBlock - 1)
	var s int32
	if n > 0 {
		if useAVX2 {
			s = codeDotAVX2(&a[0], &b[0], n)
		} else {
			s = codeDotSSE2(&a[0], &b[0], n)
		}
	}
	if n < len(a) {
		s += codeDotGeneric(a[n:], b[n:len(a)])
	}
	return s
}

// useAVX2 gates the AVX2 kernel: detected once, branch-predicted free
// thereafter.
var useAVX2 = detectAVX2()

// detectAVX2 reports AVX2 availability the architecturally required way:
// the instruction set must exist (CPUID.7.0:EBX bit 5), the CPU must
// support saving extended state (CPUID.1:ECX OSXSAVE+AVX), and the OS
// must actually save xmm+ymm state across context switches (XCR0 bits
// 1-2) — an AVX2 CPU under an OS that doesn't manage ymm state would
// corrupt registers mid-goroutine without the XGETBV check.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave = 1 << 27
	const avx = 1 << 28
	if _, _, ecx, _ := cpuid(1, 0); ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0
}

// codeDotSSE2 is implemented in quant_amd64.s. n must be a positive
// multiple of 16.
//
//go:noescape
func codeDotSSE2(a, b *int8, n int) int32

// codeDotAVX2 is implemented in quant_avx2_amd64.s. n must be a positive
// multiple of 16; only call when useAVX2.
//
//go:noescape
func codeDotAVX2(a, b *int8, n int) int32

// cpuid and xgetbv0 are implemented in quant_avx2_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

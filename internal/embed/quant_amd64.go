//go:build amd64 && !purego

package embed

// codeDot returns Σ a[i]·b[i] over int8 lanes via the SSE2 kernel in
// quant_amd64.s — sign-extend 16 bytes per iteration with the
// unpack/arithmetic-shift idiom, PMADDWD into four int32 accumulators.
// SSE2 is the amd64 baseline, so no CPU feature detection is needed.
// Lengths must match; the kernel consumes 16-lane blocks (quantized rows
// are quantBlock-padded) and codeDotGeneric covers any scalar tail.
func codeDot(a, b []int8) int32 {
	n := len(a) &^ (quantBlock - 1)
	var s int32
	if n > 0 {
		s = codeDotSSE2(&a[0], &b[0], n)
	}
	if n < len(a) {
		s += codeDotGeneric(a[n:], b[n:len(a)])
	}
	return s
}

// codeDotSSE2 is implemented in quant_amd64.s. n must be a positive
// multiple of 16.
//
//go:noescape
func codeDotSSE2(a, b *int8, n int) int32

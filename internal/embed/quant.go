package embed

import "math"

// The int8 scalar-quantized distance tier (IndexOptions.Quantize).
//
// Candidate scoring is the memory-bound half of every k-NN query: a flat
// scan at N=1M touches a gigabyte of float32 per query. This tier encodes
// the store into a blocked []int8 code array — 4x less scan traffic —
// scores candidates with an integer dot-product kernel (SSE2 assembly on
// amd64, a pure-Go loop elsewhere), keeps a RerankFactor*k shortlist by
// quantized distance, and re-ranks the shortlist with exact float32
// distances so the final ranking (ties included) is decided by the same
// arithmetic as the exact scan. The quantized ordering only has to place
// the true top-k inside the shortlist — a measured property, pinned like
// ANN recall (TestQuantizedRecall, TestQuantizedRerankMatchesExactTopK).

// quantMinPoints is the index size below which quantized queries fall
// back to the exact scan: encoding and shortlisting a tiny index costs
// more than reading it whole (same rationale as annMinPoints).
const quantMinPoints = 64

// DefaultRerankFactor is the shortlist multiplier when
// IndexOptions.RerankFactor is unset: 4k quantized candidates re-ranked
// exactly per top-k query. It measures byte-identical final top-k against
// the exact scan across the sim corpora.
const DefaultRerankFactor = 4

// quantBlock is the code-row alignment: rows are zero-padded to a
// multiple of 16 bytes so the SIMD kernel consumes whole 16-lane blocks
// with no scalar tail, and successive rows stay cache-line friendly.
// Padding code 0 contributes nothing to dot products or norms because
// query rows carry the same zero padding.
const quantBlock = 16

// quantized is the scalar-quantization view over an index's float32
// store: one global affine grid (x ≈ lo + scale·(code+128)) chosen from
// the store's min/max, int8 codes in a blocked row-major array, and
// precomputed per-row code norms so the scoring kernel reduces to one
// integer dot product per candidate:
//
//	Σ(cq−cv)² = |cq|² + |cv|² − 2·cq·cv
//
// Distances in code units are monotone in the dequantized approximation
// (one shared scale), which is all shortlist ranking needs; the exact
// re-rank never consults them again.
type quantized struct {
	dim    int
	stride int     // dim rounded up to a multiple of quantBlock
	lo     float32 // grid origin: minimum stored component
	scale  float32 // grid step: (max − lo) / 255
	codes  []int8  // n × stride, row-major, padding zeroed
	norms  []int32 // per-row Σ code²
}

func (qz *quantized) row(i int) []int8 {
	return qz.codes[i*qz.stride : (i+1)*qz.stride]
}

// encode maps one component onto the grid, clamping values outside
// [lo, lo+255·scale] — stored values never clamp (the grid spans the
// store); query components can.
func (qz *quantized) encode(x float32) int8 {
	c := int(math.Round(float64((x - qz.lo) / qz.scale)))
	if c < 0 {
		c = 0
	} else if c > 255 {
		c = 255
	}
	return int8(c - 128)
}

// buildQuantized encodes the full store. One pass for the grid bounds,
// one for the codes and norms — O(N·dim), run once per built index.
func buildQuantized(ix *Index) *quantized {
	n := len(ix.ids)
	stride := (ix.dim + quantBlock - 1) / quantBlock * quantBlock
	qz := &quantized{dim: ix.dim, stride: stride}
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, x := range ix.data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	qz.lo, qz.scale = lo, (hi-lo)/255
	if !(qz.scale > 0) { // constant (or empty) store: any positive step works
		qz.lo, qz.scale = lo, 1
	}
	qz.codes = make([]int8, n*stride)
	qz.norms = make([]int32, n)
	for i := 0; i < n; i++ {
		row := qz.row(i)
		var norm int32
		for d, x := range ix.vec(i) {
			c := qz.encode(x)
			row[d] = c
			norm += int32(c) * int32(c)
		}
		qz.norms[i] = norm
	}
	return qz
}

// encodeQuery quantizes a query vector onto the store's grid, returning
// the padded code row and its norm.
func (qz *quantized) encodeQuery(q []float32) ([]int8, int32) {
	row := make([]int8, qz.stride)
	var norm int32
	for d, x := range q {
		c := qz.encode(x)
		row[d] = c
		norm += int32(c) * int32(c)
	}
	return row, norm
}

// codeD2 is the squared L2 distance in code units between an encoded
// query and stored row i. int64 keeps the norm identity overflow-free at
// any dimensionality.
func (qz *quantized) codeD2(qNorm int32, qRow []int8, i int) int64 {
	return int64(qNorm) + int64(qz.norms[i]) - 2*int64(codeDot(qRow, qz.row(i)))
}

// ensureQuantized builds the code array on first use. Mutation
// (Add/AddAll) discards it, so a build-then-query workload pays once.
// Safe for concurrent queries: the first caller builds under the mutex,
// later callers take the lock-free atomic load.
func (ix *Index) ensureQuantized() *quantized {
	if qz := ix.quant.Load(); qz != nil {
		return qz
	}
	ix.quantMu.Lock()
	defer ix.quantMu.Unlock()
	if qz := ix.quant.Load(); qz != nil {
		return qz
	}
	qz := buildQuantized(ix)
	ix.quant.Store(qz)
	return qz
}

// rerankFactor resolves the configured shortlist multiplier.
func (ix *Index) rerankFactor() int {
	if ix.opts.RerankFactor > 0 {
		return ix.opts.RerankFactor
	}
	return DefaultRerankFactor
}

// newShortlist returns the bounded heap collecting the quantized
// candidate shortlist for a top-k query.
func (ix *Index) newShortlist(k int) *bounded[int64] {
	short := ix.rerankFactor() * k
	return &bounded[int64]{k: short, idx: make([]int, 0, short), d2: make([]int64, 0, short)}
}

// rerank scores shortlisted candidates with exact float32 distances
// through the same bounded heap as the exact scan, so the returned top-k
// — distances, ordering, and tie-breaks — is byte-identical to a full
// exact scan whenever the shortlist contains the true top-k.
func (ix *Index) rerank(q []float32, k int, cand []int) []Neighbor {
	t := newTopK(k)
	for _, i := range cand {
		t.push(i, l2sq32(q, ix.vec(i)))
	}
	return t.neighbors(ix.ids)
}

// quantFlatSearch is the flat-index quantized path: one integer-kernel
// pass over every code row builds the shortlist, then the shortlist is
// re-ranked exactly. ANN mode scores partition probe lists through the
// same kernel (see annSearch).
func (ix *Index) quantFlatSearch(q []float32, k, skip int) []Neighbor {
	qz := ix.ensureQuantized()
	qRow, qNorm := qz.encodeQuery(q)
	sl := ix.newShortlist(k)
	for i := 0; i < len(ix.ids); i++ {
		if i == skip {
			continue
		}
		sl.push(i, qz.codeD2(qNorm, qRow, i))
	}
	return ix.rerank(q, k, sl.positions())
}

// ScanBytesPerRecord reports the bytes of vector data a candidate scan
// touches per record under the given options — the working-set metric
// `declctl index-bench` reports as bytes/record (dim·4 for float32 scans,
// the padded code-row stride for the quantized tier). The quantized index
// retains the float32 store for exact re-ranking, so resident memory is
// 1.25x a float-only index while scan traffic drops 4x.
func ScanBytesPerRecord(opts IndexOptions, dim int) int {
	if opts.Quantize {
		return (dim + quantBlock - 1) / quantBlock * quantBlock
	}
	return dim * 4
}

// codeDotGeneric is the portable integer dot-product kernel: int32
// accumulation over sign-extended int8 lanes, four independent
// accumulators so the loop pipelines (and auto-vectorizes under
// compilers that do). The amd64 build replaces it with an SSE2 kernel
// (quant_amd64.s) processing 16 lanes per iteration; both require
// len(a) == len(b) and benefit from quantBlock-aligned lengths.
func codeDotGeneric(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

package embed

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// queryTexts returns deterministic query strings drawn from corpus
// vocabulary plus off-corpus probes.
func queryTexts(n int) []string {
	qs := make([]string, n)
	for i := range qs {
		qs[i] = fmt.Sprintf("golden dragon survey %d entity", i)
	}
	return qs
}

// assertIdenticalTopK pins two indexes to byte-identical results —
// ids, distances, and tie-break order — over a query battery.
func assertIdenticalTopK(t *testing.T, label string, a, b *Index, k int) {
	t.Helper()
	for qi, q := range queryTexts(12) {
		got, want := b.Nearest(q, k), a.Nearest(q, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: query %d top-%d diverges:\n got %v\nwant %v", label, qi, k, got, want)
		}
	}
}

// TestIndexPersistRoundTrip saves and reloads an index under every tier
// combination and pins the warm-loaded index's top-k byte-identical to
// the freshly built one — the ISSUE 8 acceptance criterion.
func TestIndexPersistRoundTrip(t *testing.T) {
	em := Default()
	items := randomCorpus(300, 71)
	cases := []struct {
		name string
		opts IndexOptions
	}{
		{"exact", IndexOptions{}},
		{"quant", IndexOptions{Quantize: true}},
		{"ann", IndexOptions{ANN: true}},
		{"ann+quant", IndexOptions{ANN: true, Quantize: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ix.dpix")
			built := NewIndexWith(em, tc.opts)
			built.AddAll(items)
			// Touch every query path once so tiers are built pre-save.
			built.Nearest("probe", 3)
			if err := SaveIndex(path, built, em, items); err != nil {
				t.Fatalf("SaveIndex: %v", err)
			}
			loaded, err := LoadIndex(path, em, items, tc.opts)
			if err != nil {
				t.Fatalf("LoadIndex: %v", err)
			}
			if loaded.Len() != built.Len() {
				t.Fatalf("loaded %d items, want %d", loaded.Len(), built.Len())
			}
			// The saved tiers must be present without a rebuild: ANN saves
			// partitions, Quantize saves the code array.
			if tc.opts.ANN && loaded.part.Load() == nil {
				t.Fatal("warm load did not restore partitions")
			}
			if tc.opts.Quantize && loaded.quant.Load() == nil {
				t.Fatal("warm load did not restore the quantized tier")
			}
			assertIdenticalTopK(t, tc.name, built, loaded, 10)
			// Exclusion queries and by-id lookups go through byID.
			if got, want := loaded.NearestByID(items[5].ID, 5), built.NearestByID(items[5].ID, 5); !reflect.DeepEqual(got, want) {
				t.Fatalf("NearestByID diverges: %v vs %v", got, want)
			}
			if d1, ok1 := loaded.DistanceByID(items[1].ID, items[2].ID); ok1 {
				if d2, _ := built.DistanceByID(items[1].ID, items[2].ID); d1 != d2 {
					t.Fatalf("DistanceByID diverges: %v vs %v", d1, d2)
				}
			} else {
				t.Fatal("loaded index lost ids")
			}
		})
	}
}

// TestLoadIndexStaleAndCorrupt classifies every failure mode: a changed
// corpus, a changed embedder, wrong options file, truncation, and bit
// flips must surface the right sentinel (all of which mean "rebuild").
func TestLoadIndexStaleAndCorrupt(t *testing.T) {
	em := Default()
	items := randomCorpus(200, 72)
	opts := IndexOptions{Quantize: true, ANN: true}
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.dpix")
	built := NewIndexWith(em, opts)
	built.AddAll(items)
	if err := SaveIndex(path, built, em, items); err != nil {
		t.Fatal(err)
	}

	// Changed corpus: one text edited.
	changed := append([]Item(nil), items...)
	changed[17].Text += " drifted"
	if _, err := LoadIndex(path, em, changed, opts); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("changed corpus: err = %v, want ErrStaleIndex", err)
	}
	// Changed embedder configuration.
	if _, err := LoadIndex(path, NewNGramEmbedder(DefaultDim, 4), items, opts); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("changed embedder: err = %v, want ErrStaleIndex", err)
	}
	// Missing file.
	if _, err := LoadIndex(filepath.Join(dir, "absent.dpix"), em, items, opts); !errors.Is(err, ErrNotIndexFile) {
		t.Fatalf("missing file: err = %v, want ErrNotIndexFile", err)
	}
	// Foreign file.
	foreign := filepath.Join(dir, "foreign.bin")
	if err := os.WriteFile(foreign, []byte("not an index at all, definitely not 68 bytes of DPIX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(foreign, em, items, opts); !errors.Is(err, ErrNotIndexFile) {
		t.Fatalf("foreign file: err = %v, want ErrNotIndexFile", err)
	}

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation anywhere fails the checksum.
	for _, cut := range []int{len(full) - 1, len(full) / 2, indexHeaderLen + 5} {
		p := filepath.Join(dir, fmt.Sprintf("trunc-%d.dpix", cut))
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndex(p, em, items, opts); err == nil {
			t.Fatalf("truncated at %d loaded successfully", cut)
		}
	}
	// Bit flips anywhere fail the checksum.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		mut := append([]byte(nil), full...)
		mut[rng.Intn(len(mut))] ^= 0x10
		p := filepath.Join(dir, fmt.Sprintf("flip-%d.dpix", trial))
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndex(p, em, items, opts); err == nil {
			t.Fatalf("bit-flipped file (trial %d) loaded successfully", trial)
		}
	}
}

// TestLoadIndexTierTransferRules mirrors the WithOptions contract: the
// quantized tier transfers to any requested options; partitions only
// when Partitions and Seed match the saved build.
func TestLoadIndexTierTransferRules(t *testing.T) {
	em := Default()
	items := randomCorpus(200, 73)
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.dpix")
	built := NewIndexWith(em, IndexOptions{ANN: true, Quantize: true, Partitions: 8, Seed: 2})
	built.AddAll(items)
	if err := SaveIndex(path, built, em, items); err != nil {
		t.Fatal(err)
	}

	// Same Partitions/Seed, different query knobs: both tiers transfer.
	same, err := LoadIndex(path, em, items, IndexOptions{ANN: true, Quantize: true, Partitions: 8, Seed: 2, Probes: 6})
	if err != nil {
		t.Fatal(err)
	}
	if same.part.Load() == nil || same.quant.Load() == nil {
		t.Fatal("matching partition config did not transfer both tiers")
	}
	// Different partition count: quant transfers, partitions rebuilt lazily.
	diff, err := LoadIndex(path, em, items, IndexOptions{ANN: true, Quantize: true, Partitions: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if diff.part.Load() != nil {
		t.Fatal("mismatched Partitions must not adopt saved partitions")
	}
	if diff.quant.Load() == nil {
		t.Fatal("quantized tier must transfer regardless of partition config")
	}
	// And the rebuilt-partition index still answers identically to a
	// fresh build under the same options.
	fresh := NewIndexWith(em, IndexOptions{ANN: true, Quantize: true, Partitions: 4, Seed: 2})
	fresh.AddAll(items)
	assertIdenticalTopK(t, "repartitioned", fresh, diff, 8)
}

// TestRegistryWarmLoad drives the state-dir flow end to end: first
// registry builds and saves, a second registry (a new process) warm
// loads, and both serve byte-identical results.
func TestRegistryWarmLoad(t *testing.T) {
	em := Default()
	items := randomCorpus(250, 74)
	opts := IndexOptions{Quantize: true}
	dir := t.TempDir()

	cold := NewRegistry()
	cold.SetStateDir(dir)
	ix1 := cold.IndexWith(em, items, opts)
	if builds, _ := cold.Stats(); builds != 1 {
		t.Fatalf("cold registry builds = %d, want 1", builds)
	}
	if warm, saves := cold.PersistStats(); warm != 0 || saves != 1 {
		t.Fatalf("cold PersistStats = (%d, %d), want (0, 1)", warm, saves)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexFileName(em, items, opts))); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	warm := NewRegistry()
	warm.SetStateDir(dir)
	ix2 := warm.IndexWith(em, items, opts)
	if builds, _ := warm.Stats(); builds != 0 {
		t.Fatalf("warm registry rebuilt the index (builds = %d)", builds)
	}
	if loads, _ := warm.PersistStats(); loads != 1 {
		t.Fatalf("warm PersistStats loads = %d, want 1", loads)
	}
	assertIdenticalTopK(t, "registry warm", ix1, ix2, 10)

	// A changed corpus falls back to a rebuild and overwrites the file.
	changed := append([]Item(nil), items...)
	changed[0].Text = "entirely different record"
	reb := NewRegistry()
	reb.SetStateDir(dir)
	reb.IndexWith(em, changed, opts)
	if builds, _ := reb.Stats(); builds != 1 {
		t.Fatalf("changed corpus should rebuild, builds = %d", builds)
	}
	if _, saves := reb.PersistStats(); saves != 1 {
		t.Fatalf("changed corpus should re-save, saves = %d", saves)
	}
}

// FuzzLoadIndex throws arbitrary bytes at the index decoder: it must
// reject or load without panicking, never fabricating an index that
// passes the checksum by luck into an out-of-bounds section table.
func FuzzLoadIndex(f *testing.F) {
	em := Default()
	items := randomCorpus(80, 75)
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.dpix")
	ix := NewIndexWith(em, IndexOptions{ANN: true, Quantize: true})
	ix.AddAll(items)
	if err := SaveIndex(seedPath, ix, em, items); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:indexHeaderLen])
	f.Add([]byte("DPIX\x01\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.dpix")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		loaded, err := LoadIndex(p, em, items, IndexOptions{ANN: true, Quantize: true})
		if err != nil {
			return
		}
		// A successful load must be queryable without panicking.
		loaded.Nearest("golden dragon", 5)
		loaded.NearestByID(items[0].ID, 3)
	})
}

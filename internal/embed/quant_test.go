package embed

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestCodeDotMatchesGeneric pins the platform kernel (SSE2 assembly on
// amd64) to the portable integer loop on random vectors, including the
// unaligned tail path and extremal codes.
func TestCodeDotMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lengths := []int{0, 1, 3, 15, 16, 17, 32, 256, 256 + 7, 16 * 33}
	for trial := 0; trial < 50; trial++ {
		for _, n := range lengths {
			a := make([]int8, n)
			b := make([]int8, n)
			for i := range a {
				a[i] = int8(rng.Intn(256) - 128)
				b[i] = int8(rng.Intn(256) - 128)
			}
			if trial == 0 { // extremal lanes exercise the sign-extension path
				for i := range a {
					a[i], b[i] = -128, -128
				}
			}
			var want int32
			for i := range a {
				want += int32(a[i]) * int32(b[i])
			}
			if got := codeDot(a, b); got != want {
				t.Fatalf("n=%d trial=%d: codeDot = %d, want %d", n, trial, got, want)
			}
			if got := codeDotGeneric(a, b); got != want {
				t.Fatalf("n=%d trial=%d: codeDotGeneric = %d, want %d", n, trial, got, want)
			}
		}
	}
}

// TestQuantizeDequantizeErrorBounded is the property test on the affine
// grid: every stored component must round-trip through its int8 code to
// within half a grid step, and the code-space distance identity
// (|a|² + |b|² − 2a·b) must equal the directly computed Σ(ca−cb)².
func TestQuantizeDequantizeErrorBounded(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		items := randomCorpus(quantMinPoints+50*trial, int64(300+trial))
		ix := NewIndexWith(Default(), IndexOptions{Quantize: true})
		ix.AddAll(items)
		qz := ix.ensureQuantized()
		bound := float64(qz.scale)/2 + 1e-6
		for i := 0; i < ix.Len(); i++ {
			row := qz.row(i)
			for d, x := range ix.vec(i) {
				back := float64(qz.lo) + float64(qz.scale)*float64(int32(row[d])+128)
				if diff := math.Abs(back - float64(x)); diff > bound {
					t.Fatalf("trial %d item %d dim %d: dequantize error %g exceeds scale/2 = %g",
						trial, i, d, diff, bound)
				}
			}
		}
		for qi := 0; qi < 5; qi++ {
			qRow, qNorm := qz.encodeQuery(ix.vec(qi * ix.Len() / 5))
			for i := 0; i < ix.Len(); i += 17 {
				var direct int64
				row := qz.row(i)
				for d := range qRow {
					diff := int64(qRow[d]) - int64(row[d])
					direct += diff * diff
				}
				if got := qz.codeD2(qNorm, qRow, i); got != direct {
					t.Fatalf("trial %d: codeD2 = %d, direct Σ(ca−cb)² = %d", trial, got, direct)
				}
			}
		}
	}
}

// TestQuantizedRerankMatchesExactTopK is the fidelity pin from the
// issue: at the default RerankFactor, quantized shortlisting plus exact
// re-ranking reproduces the float32 exact scan's top-k byte-identically
// — same ids, same distances, same tie-breaks — across random corpora,
// k values, and exclusion queries.
func TestQuantizedRerankMatchesExactTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		items := randomCorpus(quantMinPoints+rng.Intn(300), int64(500+trial))
		exact := NewIndex(Default())
		exact.AddAll(items)
		quant := NewIndexWith(Default(), IndexOptions{Quantize: true})
		quant.AddAll(items)
		for qi := 0; qi < 6; qi++ {
			query := items[rng.Intn(len(items))].Text
			k := 1 + rng.Intn(12)
			if got, want := quant.Nearest(query, k), exact.Nearest(query, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d: quantized top-k diverges from exact:\n got %v\nwant %v",
					trial, k, got, want)
			}
			ex := items[rng.Intn(len(items))].ID
			if got, want := quant.NearestOther(query, ex, k), exact.NearestOther(query, ex, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d: quantized NearestOther diverges from exact:\n got %v\nwant %v",
					trial, k, got, want)
			}
		}
	}
}

// TestQuantizedRecall pins the quantized tier at ≥0.95 recall@10 on 1k
// sim records with held-out queries — the same discipline as
// TestANNRecall. The flat quantized index must measure a perfect 1.0
// (its re-rank is pinned byte-identical to exact); ANN+quantized may
// additionally lose candidates to partition probing, so it shares ANN's
// 0.95 floor at the documented probe setting.
func TestQuantizedRecall(t *testing.T) {
	all := simTexts(t, 1100)
	items, heldOut := all[:1000], all[1000:]
	exact := NewIndex(Default())
	exact.AddAll(items)
	queries := make([]string, 0, len(heldOut))
	for _, it := range heldOut {
		queries = append(queries, it.Text)
	}

	quant := NewIndexWith(Default(), IndexOptions{Quantize: true})
	quant.AddAll(items)
	if recall := Recall(exact, quant, queries, 10); recall != 1 {
		t.Fatalf("flat quantized recall = %.4f, want exactly 1.0 (re-rank pinned to exact)", recall)
	}

	annq := NewIndexWith(Default(), IndexOptions{ANN: true, Partitions: 32, Probes: 10, Quantize: true})
	annq.AddAll(items)
	recall := Recall(exact, annq, queries, 10)
	if recall < 0.95 {
		t.Fatalf("ANN+quantized recall = %.3f, want >= 0.95", recall)
	}
	t.Logf("ANN+quantized recall@10 over %d held-out queries: %.3f", len(queries), recall)
}

// TestQuantizedMatchesANNCandidates pins ANN+quantized to plain ANN on
// the sim corpus: both modes probe the identical candidate set, so at
// the default RerankFactor the re-ranked result should reproduce ANN's
// exact-scored ranking.
func TestQuantizedMatchesANNCandidates(t *testing.T) {
	all := simTexts(t, 600)
	items, heldOut := all[:512], all[512:]
	opts := IndexOptions{ANN: true, Partitions: 16, Probes: 4}
	ann := NewIndexWith(Default(), opts)
	ann.AddAll(items)
	qopts := opts
	qopts.Quantize = true
	annq := NewIndexWith(Default(), qopts)
	annq.AddAll(items)
	for _, it := range heldOut {
		if got, want := annq.Nearest(it.Text, 10), ann.Nearest(it.Text, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("ANN+quantized diverges from ANN on %q:\n got %v\nwant %v", it.Text, got, want)
		}
	}
}

// TestWithOptionsViewsShareStore checks the view constructor the bench
// harness uses: views answer exactly like freshly built indexes of the
// same options, and tier structures transfer where options agree.
func TestWithOptionsViewsShareStore(t *testing.T) {
	items := simTexts(t, 300)
	base := NewIndex(Default())
	base.AddAll(items)
	base.Nearest(items[0].Text, 1) // force the partition build

	for _, opts := range []IndexOptions{
		{Quantize: true},
		{ANN: true},
		{ANN: true, Quantize: true, RerankFactor: 8},
	} {
		view := base.WithOptions(opts)
		fresh := NewIndexWith(Default(), opts)
		fresh.AddAll(items)
		for qi := 0; qi < 5; qi++ {
			q := items[qi*50].Text
			if got, want := view.Nearest(q, 7), fresh.Nearest(q, 7); !reflect.DeepEqual(got, want) {
				t.Fatalf("opts %+v: view diverges from fresh build:\n got %v\nwant %v", opts, got, want)
			}
		}
	}

	// Partition transfer: same Partitions+Seed shares the built structure.
	ann := NewIndexWith(Default(), IndexOptions{ANN: true, Partitions: 16})
	ann.AddAll(items)
	ann.Nearest(items[0].Text, 1) // force the partition build
	pt := ann.part.Load()
	if pt == nil {
		t.Fatal("ANN query should have built partitions")
	}
	if qView := ann.WithOptions(IndexOptions{ANN: true, Partitions: 16, Quantize: true}); qView.part.Load() != pt {
		t.Fatal("view with matching Partitions/Seed should share the built partition structure")
	}
	if repart := ann.WithOptions(IndexOptions{ANN: true, Partitions: 8}); repart.part.Load() != nil {
		t.Fatal("view with different Partitions must not inherit the partition structure")
	}
}

// TestConcurrentQuantizedNearest exercises the lazy code-array build and
// quantized queries under the race detector: many goroutines issue the
// first quantized queries concurrently, in flat and ANN mode.
func TestConcurrentQuantizedNearest(t *testing.T) {
	items := simTexts(t, 256)
	for _, opts := range []IndexOptions{{Quantize: true}, {ANN: true, Quantize: true}} {
		ix := NewIndexWith(Default(), opts)
		ix.AddAll(items)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < 4; r++ {
					ix.Nearest(items[(g*31+r)%len(items)].Text, 5)
					ix.NearestByID(items[(g*17+r)%len(items)].ID, 3)
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestQuantizedSmallIndexFallsBack: below quantMinPoints the quantized
// path must defer to the exact scan (and mutation must invalidate a
// built code array).
func TestQuantizedSmallIndexFallsBack(t *testing.T) {
	items := randomCorpus(quantMinPoints-1, 3)
	ix := NewIndexWith(Default(), IndexOptions{Quantize: true})
	ix.AddAll(items)
	exact := NewIndex(Default())
	exact.AddAll(items)
	if got, want := ix.Nearest(items[1].Text, 5), exact.Nearest(items[1].Text, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("small quantized index diverges from exact: %v vs %v", got, want)
	}

	big := randomCorpus(quantMinPoints+40, 4)
	ix2 := NewIndexWith(Default(), IndexOptions{Quantize: true})
	ix2.AddAll(big)
	ix2.Nearest(big[0].Text, 3)
	if ix2.quant.Load() == nil {
		t.Fatal("quantized query should have built the code array")
	}
	ix2.Add("late", "a freshly added record invalidates the codes")
	if ix2.quant.Load() != nil {
		t.Fatal("mutation must discard the quantized view")
	}
	ex2 := NewIndex(Default())
	ex2.AddAll(big)
	ex2.Add("late", "a freshly added record invalidates the codes")
	if got, want := ix2.Nearest("freshly added record", 4), ex2.Nearest("freshly added record", 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("rebuilt quantized index diverges from exact: %v vs %v", got, want)
	}
}

// TestScanBytesPerRecord pins the bytes/record metric index-bench
// reports: 4·dim for float32 scans, the 16-padded code stride quantized.
func TestScanBytesPerRecord(t *testing.T) {
	cases := []struct {
		opts IndexOptions
		dim  int
		want int
	}{
		{IndexOptions{}, 256, 1024},
		{IndexOptions{Quantize: true}, 256, 256},
		{IndexOptions{Quantize: true}, 250, 256},
		{IndexOptions{ANN: true}, 64, 256},
		{IndexOptions{ANN: true, Quantize: true}, 64, 64},
		{IndexOptions{Quantize: true}, 17, 32},
	}
	for _, c := range cases {
		if got := ScanBytesPerRecord(c.opts, c.dim); got != c.want {
			t.Errorf("ScanBytesPerRecord(%+v, %d) = %d, want %d", c.opts, c.dim, got, c.want)
		}
	}
}

package embed

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"unsafe"
)

// Index persistence (ISSUE 8): a built index — the contiguous float32
// store, the k-means partition structure, and the int8 quantized tier —
// serializes into one versioned binary file whose sections are raw
// little-endian arrays at 8-byte-aligned offsets. Loading is one
// os.ReadFile plus pointer arithmetic: on little-endian hosts every
// array section is aliased in place over the read buffer (no per-record
// decode, no second copy of a 100MB store), which is what makes a warm
// start orders of magnitude faster than re-embedding and re-clustering
// the corpus. The header carries the registry's invalidation key — dim,
// n, embedder fingerprint, corpus content hash, normalized IndexOptions
// — so a stale file is detected before any section is touched and the
// caller falls back to a rebuild. A whole-file CRC-32C trailer rejects
// torn or bit-flipped files the same way the cache log does
// (workflow/cachelog.go); see docs/PERSISTENCE.md for the format.

const (
	indexMagic   = "DPIX"
	indexVersion = 1
	// indexHeaderLen is the fixed header: magic, version, fingerprint,
	// corpus hash, dim, n, option flags, partitions/probes/rerank, seed.
	indexHeaderLen = 64
	// indexMaxCount bounds every element count decoded from an index file
	// before it sizes an allocation, so a corrupt length field cannot
	// demand petabytes.
	indexMaxCount = 1 << 31
)

// ErrNotIndexFile reports that a file is missing or is not a DPIX index
// file at the supported version.
var ErrNotIndexFile = errors.New("embed: not an index file")

// ErrStaleIndex reports that an index file is structurally valid but was
// built from a different corpus, embedder, or index configuration than
// requested. The actionable response is to rebuild and overwrite — which
// Registry does automatically when a state dir is set.
var ErrStaleIndex = errors.New("embed: index file does not match corpus")

// ErrCorruptIndex reports a failed checksum or an internally inconsistent
// section table. Unlike the cache log there is no valid prefix to
// recover — the index is derived state — so the fix is delete + rebuild.
var ErrCorruptIndex = errors.New("embed: index file corrupt")

// hostLittleEndian reports whether the running host stores integers
// little-endian, the precondition for aliasing file sections in place.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// IndexFileName returns the state-dir filename for a corpus + options
// slot: a hash over the full registry key, so distinct corpora, embedder
// configurations, and normalized option sets never collide on one file.
func IndexFileName(em Embedder, items []Item, opts IndexOptions) string {
	key := keyOf(em, items, opts)
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(key.dim))
	put(uint64(key.n))
	put(key.fingerprint)
	h.Write(key.hash[:])
	o := key.opts
	flags := uint64(0)
	if o.ANN {
		flags |= 1
	}
	if o.Quantize {
		flags |= 2
	}
	put(flags)
	put(uint64(int64(o.Partitions)))
	put(uint64(int64(o.Probes)))
	put(uint64(int64(o.RerankFactor)))
	put(uint64(o.Seed))
	return fmt.Sprintf("index-%016x.dpix", h.Sum64())
}

// crcWriter tracks the running CRC-32C and byte offset of everything
// written, so sections can be padded to 8-byte alignment and the trailer
// checksum covers the exact stream.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	off int64
	err error
}

var indexCRCTable = crc32.MakeTable(crc32.Castagnoli)

func (cw *crcWriter) bytes(p []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(p); err != nil {
		cw.err = err
		return
	}
	cw.crc = crc32.Update(cw.crc, indexCRCTable, p)
	cw.off += int64(len(p))
}

func (cw *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.bytes(b[:])
}

func (cw *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.bytes(b[:])
}

// align8 pads the stream to the next 8-byte boundary so the array
// section that follows can be aliased at its natural alignment.
func (cw *crcWriter) align8() {
	var zero [8]byte
	if rem := cw.off & 7; rem != 0 {
		cw.bytes(zero[:8-rem])
	}
}

// f32s, i32s, u32s, i8s write raw array sections. On little-endian hosts
// the slice memory IS the wire format, so one unsafe reinterpretation
// writes the whole section; big-endian hosts fall back to element-wise
// conversion.
func (cw *crcWriter) f32s(v []float32) {
	if len(v) == 0 {
		return
	}
	if hostLittleEndian {
		cw.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4))
		return
	}
	for _, x := range v {
		cw.u32(*(*uint32)(unsafe.Pointer(&x)))
	}
}

func (cw *crcWriter) i32s(v []int32) {
	if len(v) == 0 {
		return
	}
	if hostLittleEndian {
		cw.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4))
		return
	}
	for _, x := range v {
		cw.u32(uint32(x))
	}
}

func (cw *crcWriter) u32s(v []uint32) {
	if len(v) == 0 {
		return
	}
	if hostLittleEndian {
		cw.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4))
		return
	}
	for _, x := range v {
		cw.u32(x)
	}
}

func (cw *crcWriter) i8s(v []int8) {
	if len(v) == 0 {
		return
	}
	cw.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)))
}

// SaveIndex persists a fully built index to path, forcing the tier
// structures its options call for (partitions under ANN, the code array
// under Quantize) so a warm load serves queries without rebuilding
// either. The write goes through a temp file + rename, so a crash never
// leaves a half-written file under the final name. The em and items
// arguments supply the invalidation key and must be the corpus the index
// was built from.
func SaveIndex(path string, ix *Index, em Embedder, items []Item) error {
	if ix.opts.ANN {
		ix.ensurePartitions()
	}
	if ix.opts.Quantize {
		ix.ensureQuantized()
	}
	key := keyOf(em, items, ix.opts)

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("embed: save index: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dpix-*")
	if err != nil {
		return fmt.Errorf("embed: save index: %w", err)
	}
	defer os.Remove(tmp.Name())

	cw := &crcWriter{w: bufio.NewWriterSize(tmp, 1<<20)}
	pt := ix.part.Load()
	qz := ix.quant.Load()
	writeIndexStream(cw, ix, key, pt, qz)
	cw.u32(cw.crc) // trailer: CRC-32C of everything before it
	if cw.err == nil {
		cw.err = cw.w.Flush()
	}
	if cw.err == nil {
		cw.err = tmp.Sync()
	}
	if err := tmp.Close(); cw.err == nil {
		cw.err = err
	}
	if cw.err != nil {
		return fmt.Errorf("embed: save index: %w", cw.err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("embed: save index: %w", err)
	}
	return nil
}

// writeIndexStream emits the header and every section in file order.
func writeIndexStream(cw *crcWriter, ix *Index, key registryKey, pt *partitions, qz *quantized) {
	n := len(ix.ids)
	o := key.opts
	// Header.
	cw.bytes([]byte(indexMagic))
	cw.u32(indexVersion)
	cw.u64(key.fingerprint)
	cw.bytes(key.hash[:])
	cw.u32(uint32(ix.dim))
	cw.u32(uint32(n))
	var flags, hasPart, hasQuant byte
	if o.ANN {
		flags |= 1
	}
	if o.Quantize {
		flags |= 2
	}
	if pt != nil {
		hasPart = 1
	}
	if qz != nil {
		hasQuant = 1
	}
	cw.bytes([]byte{flags, hasPart, hasQuant, 0})
	cw.u32(uint32(int32(o.Partitions)))
	cw.u32(uint32(int32(o.Probes)))
	cw.u32(uint32(int32(o.RerankFactor)))
	cw.u64(uint64(o.Seed))

	// Ids: cumulative end offsets, then one concatenated blob. The loader
	// turns the blob into a single string and every id into a substring.
	offs := make([]uint32, n+1)
	total := 0
	for i, id := range ix.ids {
		total += len(id)
		offs[i+1] = uint32(total)
	}
	cw.align8()
	cw.u32s(offs)
	cw.align8()
	for _, id := range ix.ids {
		cw.bytes([]byte(id))
	}

	// Vector store.
	cw.align8()
	cw.f32s(ix.data)

	if pt != nil {
		p := pt.count()
		cw.align8()
		cw.u32(uint32(p))
		cw.align8()
		cw.f32s(pt.centroids)
		cw.align8()
		cw.f32s(pt.radius)
		cw.align8()
		cw.i32s(pt.primary)
		// Member lists flatten to per-partition lengths + one contiguous
		// array each; the loader re-slices the flat arrays in place.
		writeLists(cw, pt.members)
		writeLists(cw, pt.secondary)
	}

	if qz != nil {
		cw.align8()
		cw.u32(uint32(qz.stride))
		cw.u32(*(*uint32)(unsafe.Pointer(&qz.lo)))
		cw.u32(*(*uint32)(unsafe.Pointer(&qz.scale)))
		cw.u32(0)
		cw.align8()
		cw.i8s(qz.codes)
		cw.align8()
		cw.i32s(qz.norms)
	}
	cw.align8()
}

// writeLists flattens a ragged [][]int32 into lengths + one flat array.
func writeLists(cw *crcWriter, lists [][]int32) {
	lens := make([]uint32, len(lists))
	total := uint64(0)
	for i, l := range lists {
		lens[i] = uint32(len(l))
		total += uint64(len(l))
	}
	cw.align8()
	cw.u32s(lens)
	cw.align8()
	cw.u64(total)
	for _, l := range lists {
		cw.i32s(l)
	}
}

// indexReader is a bounds-checked cursor over a fully read index file.
// Every section accessor validates length before touching bytes, so a
// truncated or corrupt count fails with ErrCorruptIndex instead of a
// panic — the property FuzzLoadIndex exercises.
type indexReader struct {
	b   []byte
	off int
	err error
}

func (r *indexReader) fail() {
	if r.err == nil {
		r.err = ErrCorruptIndex
	}
}

func (r *indexReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail()
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *indexReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *indexReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *indexReader) align8() {
	if rem := r.off & 7; rem != 0 {
		r.take(8 - rem)
	}
}

// count validates an element count read from the file against both the
// sanity bound and the bytes actually remaining.
func (r *indexReader) count(n uint64, elemSize int) int {
	if r.err != nil {
		return 0
	}
	if n > indexMaxCount || int(n)*elemSize > len(r.b)-r.off {
		r.fail()
		return 0
	}
	return int(n)
}

// f32s decodes a float32 array section: aliased in place when the host
// is little-endian and the section landed 4-aligned (the 8-byte section
// padding guarantees this for buffers from os.ReadFile), copied
// otherwise.
func (r *indexReader) f32s(n int) []float32 {
	p := r.take(n * 4)
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))&3 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		bits := binary.LittleEndian.Uint32(p[i*4:])
		out[i] = *(*float32)(unsafe.Pointer(&bits))
	}
	return out
}

func (r *indexReader) i32s(n int) []int32 {
	p := r.take(n * 4)
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))&3 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out
}

func (r *indexReader) u32s(n int) []uint32 {
	p := r.take(n * 4)
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))&3 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	return out
}

func (r *indexReader) i8s(n int) []int8 {
	p := r.take(n)
	if p == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&p[0])), n)
}

// readLists reverses writeLists, re-slicing the flat array in place.
func (r *indexReader) readLists(p int) [][]int32 {
	r.align8()
	lens := r.u32s(p)
	r.align8()
	total := r.count(r.u64(), 4)
	flat := r.i32s(total)
	if r.err != nil {
		return nil
	}
	lists := make([][]int32, p)
	off := 0
	for i, l := range lens {
		n := r.count(uint64(l), 0)
		if off+n > total {
			r.fail()
			return nil
		}
		lists[i] = flat[off : off+n : off+n]
		off += n
	}
	if off != total {
		r.fail()
		return nil
	}
	return lists
}

// LoadIndex restores a persisted index from path, verifying that the
// file was built from exactly this corpus (em + items, hashed the same
// way the registry keys builds) before any section is decoded. The
// requested opts govern query behavior of the returned index; saved tier
// structures transfer under the same rules as Index.WithOptions — the
// quantized code array always (it depends only on the stored vectors),
// the partition structure when Partitions and Seed match the saved
// build. Errors are classified: ErrNotIndexFile (missing/foreign file),
// ErrStaleIndex (valid file, different corpus or embedder), and
// ErrCorruptIndex (checksum or structural failure) — all of which a
// warm-start caller treats as "rebuild".
//
// On little-endian hosts the returned index aliases the file bytes —
// vectors, codes, and partition arrays point into one buffer with no
// per-record decode. On platforms with mmap that buffer IS the
// page-cache mapping of the file: loading allocates nothing
// proportional to the index, which keeps a warm start fast even when
// the process heap is already large (a 100MB ReadFile under GC
// pressure costs several times the raw read). The mapping stays alive
// for the life of the process — the index and every WithOptions view
// alias it, so it is never unmapped after a successful load.
func LoadIndex(path string, em Embedder, items []Item, opts IndexOptions) (*Index, error) {
	b, unmap, err := mapIndexFile(path)
	if err != nil {
		// No mmap on this platform, or the map failed: fall back to one
		// read into the heap. The decode below is identical.
		unmap = nil
		if b, err = os.ReadFile(path); err != nil {
			return nil, fmt.Errorf("%w: %s", ErrNotIndexFile, path)
		}
	}
	ix, err := decodeIndex(b, path, em, items, opts)
	if err != nil && unmap != nil {
		unmap()
	}
	return ix, err
}

// decodeIndex validates and decodes a complete index file image; on
// success the returned index aliases b.
func decodeIndex(b []byte, path string, em Embedder, items []Item, opts IndexOptions) (*Index, error) {
	if len(b) < indexHeaderLen+4 || string(b[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: %s", ErrNotIndexFile, path)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != indexVersion {
		return nil, fmt.Errorf("%w: %s has version %d, want %d", ErrNotIndexFile, path, v, indexVersion)
	}
	body, trailer := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, indexCRCTable) != trailer {
		return nil, fmt.Errorf("%w: %s failed checksum (delete the file to force a rebuild)", ErrCorruptIndex, path)
	}

	key := keyOf(em, items, opts)
	r := &indexReader{b: body, off: 8}
	fingerprint := r.u64()
	var hash [16]byte
	copy(hash[:], r.take(16))
	dim := int(r.u32())
	n := int(r.u32())
	fb := r.take(4)
	if r.err != nil {
		return nil, fmt.Errorf("%w: %s truncated header", ErrCorruptIndex, path)
	}
	hasPart, hasQuant := fb[1] == 1, fb[2] == 1
	savedOpts := IndexOptions{
		ANN:          fb[0]&1 != 0,
		Quantize:     fb[0]&2 != 0,
		Partitions:   int(int32(r.u32())),
		Probes:       int(int32(r.u32())),
		RerankFactor: int(int32(r.u32())),
		Seed:         int64(r.u64()),
	}
	if fingerprint != key.fingerprint || hash != key.hash || dim != key.dim || n != key.n {
		return nil, fmt.Errorf("%w: %s (rebuild and re-save)", ErrStaleIndex, path)
	}

	// Ids: one blob string, n substrings.
	r.align8()
	offs := r.u32s(n + 1)
	r.align8()
	var blob string
	if r.err == nil {
		blob = string(r.take(r.count(uint64(offs[n]), 1)))
	}
	r.align8()
	data := r.f32s(r.count(uint64(n)*uint64(dim), 4))
	if r.err != nil {
		return nil, fmt.Errorf("%w: %s sections truncated", ErrCorruptIndex, path)
	}
	ix := &Index{embedder: em, dim: dim, opts: key.opts, data: data}
	ix.ids = make([]string, n)
	ix.byID = make(map[string]int, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		end := offs[i+1]
		if end < prev || int(end) > len(blob) {
			return nil, fmt.Errorf("%w: %s id table inconsistent", ErrCorruptIndex, path)
		}
		ix.ids[i] = blob[prev:end]
		ix.byID[ix.ids[i]] = i
		prev = end
	}

	if hasPart {
		r.align8()
		p := r.count(uint64(r.u32()), 1)
		r.align8()
		pt := &partitions{dim: dim}
		pt.centroids = r.f32s(r.count(uint64(p)*uint64(dim), 4))
		r.align8()
		pt.radius = r.f32s(p)
		r.align8()
		pt.primary = r.i32s(n)
		pt.members = r.readLists(p)
		pt.secondary = r.readLists(p)
		if r.err != nil {
			return nil, fmt.Errorf("%w: %s partition section truncated", ErrCorruptIndex, path)
		}
		// Saved partitions transfer only when the requested configuration
		// would have built them identically (the WithOptions rule).
		if savedOpts.Partitions == key.opts.Partitions && savedOpts.Seed == key.opts.Seed {
			ix.part.Store(pt)
		}
	}

	if hasQuant {
		r.align8()
		qz := &quantized{dim: dim, stride: int(r.u32())}
		lo, scale := r.u32(), r.u32()
		qz.lo = *(*float32)(unsafe.Pointer(&lo))
		qz.scale = *(*float32)(unsafe.Pointer(&scale))
		r.u32()
		if qz.stride < dim || qz.stride > dim+quantBlock {
			return nil, fmt.Errorf("%w: %s quant stride inconsistent", ErrCorruptIndex, path)
		}
		r.align8()
		qz.codes = r.i8s(r.count(uint64(n)*uint64(qz.stride), 1))
		r.align8()
		qz.norms = r.i32s(n)
		if r.err != nil {
			return nil, fmt.Errorf("%w: %s quant section truncated", ErrCorruptIndex, path)
		}
		ix.quant.Store(qz)
	}
	return ix, nil
}

// SetStateDir enables warm index persistence on the registry: every
// slot built while a state dir is set is saved to
// dir/IndexFileName(...), and later processes requesting the same
// corpus + options load the file instead of re-embedding and
// re-clustering. A stale, corrupt, or missing file silently falls back
// to a rebuild (which overwrites it). Call before the first IndexWith.
func (r *Registry) SetStateDir(dir string) {
	r.mu.Lock()
	r.stateDir = dir
	r.mu.Unlock()
}

// PersistStats reports how many registry slots were served from a warm
// state-dir load and how many were saved after building.
func (r *Registry) PersistStats() (warmLoads, saves int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.warmLoads, r.saves
}

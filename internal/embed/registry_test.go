package embed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// countingEmbedder counts Embed calls; safe for concurrent use.
type countingEmbedder struct {
	inner Embedder
	calls atomic.Int64
}

func (c *countingEmbedder) Embed(text string) []float64 {
	c.calls.Add(1)
	return c.inner.Embed(text)
}

func (c *countingEmbedder) Dim() int { return c.inner.Dim() }

func testItems(n int, prefix string) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("%s-%d", prefix, i), Text: fmt.Sprintf("%s record number %d", prefix, i)}
	}
	return items
}

func TestRegistryReusesIndexForSameCorpus(t *testing.T) {
	em := &countingEmbedder{inner: Default()}
	r := NewRegistry()
	corpus := testItems(20, "a")

	// Every Index call embeds one fingerprint probe on top of the corpus.
	ix1 := r.Index(em, corpus)
	if got := em.calls.Load(); got != 20+1 {
		t.Fatalf("first build embedded %d texts, want 20 + 1 probe", got)
	}
	ix2 := r.Index(em, corpus)
	if ix2 != ix1 {
		t.Fatal("same corpus must return the same index")
	}
	if got := em.calls.Load(); got != 20+2 {
		t.Fatalf("reuse re-embedded the corpus: %d calls, want only a probe added", got)
	}
	if builds, hits := r.Stats(); builds != 1 || hits != 1 {
		t.Fatalf("stats = %d builds / %d hits, want 1/1", builds, hits)
	}

	// Different content — even one changed text — is a different corpus.
	other := testItems(20, "a")
	other[7].Text += " edited"
	if ix3 := r.Index(em, other); ix3 == ix1 {
		t.Fatal("changed corpus must not reuse the index")
	}
	if builds, _ := r.Stats(); builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}

	// A different embedder configuration over the same corpus must not
	// serve the first embedder's vectors, even at equal dimensionality.
	em4 := &countingEmbedder{inner: NewNGramEmbedder(DefaultDim, 4)}
	if ix4 := r.Index(em4, corpus); ix4 == ix1 {
		t.Fatal("different embedder config must not reuse the index")
	}
	if builds, _ := r.Stats(); builds != 3 {
		t.Fatalf("builds = %d, want 3 after foreign-embedder request", builds)
	}
}

// TestRegistryConcurrentRequestsBuildOnce hammers one corpus from many
// goroutines; exactly one build may happen and everyone must share it.
func TestRegistryConcurrentRequestsBuildOnce(t *testing.T) {
	em := &countingEmbedder{inner: Default()}
	r := NewRegistry()
	corpus := testItems(30, "c")

	const workers = 16
	results := make([]*Index, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = r.Index(em, corpus)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatal("concurrent requesters got different indexes")
		}
	}
	if got := em.calls.Load(); got != 30+workers {
		t.Fatalf("embedded %d texts, want one build of 30 plus %d probes", got, workers)
	}
	if builds, hits := r.Stats(); builds != 1 || hits != workers-1 {
		t.Fatalf("stats = %d builds / %d hits", builds, hits)
	}
}

// TestRegistryOptionsSeparateSlots: index configurations that score
// differently (exact vs ANN vs quantized) must never share a slot, while
// spellings that normalise to the same configuration must.
func TestRegistryOptionsSeparateSlots(t *testing.T) {
	em := Default()
	r := NewRegistry()
	corpus := testItems(25, "o")

	exact := r.Index(em, corpus)
	quant := r.IndexWith(em, corpus, IndexOptions{Quantize: true})
	ann := r.IndexWith(em, corpus, IndexOptions{ANN: true, Partitions: 8})
	annq := r.IndexWith(em, corpus, IndexOptions{ANN: true, Partitions: 8, Quantize: true})
	if exact == quant || exact == ann || quant == ann || ann == annq || quant == annq {
		t.Fatal("distinct index configurations over one corpus must get distinct indexes")
	}
	if builds, _ := r.Stats(); builds != 4 {
		t.Fatalf("builds = %d, want 4 distinct slots", builds)
	}

	// Normalised-equivalent spellings share: Seed 0 is Seed 1, RerankFactor
	// 0 is the default.
	if ix := r.IndexWith(em, corpus, IndexOptions{Seed: 1}); ix != exact {
		t.Fatal("{Seed: 1} must share the default slot")
	}
	if ix := r.IndexWith(em, corpus, IndexOptions{Quantize: true, RerankFactor: DefaultRerankFactor}); ix != quant {
		t.Fatal("explicit default RerankFactor must share the quantized slot")
	}
	if ix := r.IndexWith(em, corpus, IndexOptions{Quantize: true, RerankFactor: 8}); ix == quant {
		t.Fatal("non-default RerankFactor scores differently and must not share")
	}
}

func TestRegistryServedIndexAnswersQueries(t *testing.T) {
	r := NewRegistry()
	em := Default()
	corpus := testItems(10, "q")
	ix := r.Index(em, corpus)
	nn := ix.Nearest(corpus[3].Text, 1)
	if len(nn) != 1 || nn[0].ID != corpus[3].ID {
		t.Fatalf("nearest = %+v, want the record itself", nn)
	}
}

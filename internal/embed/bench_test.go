package embed

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// seedIndex replicates the seed repository's index verbatim — per-item
// []float64 vectors, full scan, full-result allocation, stable sort — as
// the baseline BenchmarkIndexNearest measures the rewrite against.
type seedIndex struct {
	embedder Embedder
	ids      []string
	vecs     [][]float64
}

func (ix *seedIndex) add(id, text string) {
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, ix.embedder.Embed(text))
}

func (ix *seedIndex) nearest(q []float64, k int) []Neighbor {
	out := make([]Neighbor, 0, len(ix.ids))
	for i, v := range ix.vecs {
		out = append(out, Neighbor{ID: ix.ids[i], Distance: L2(q, v)})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Distance < out[b].Distance })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

func (ix *seedIndex) blocks(threshold float64) [][]string {
	assigned := make([]bool, len(ix.ids))
	var blocks [][]string
	for i := range ix.ids {
		if assigned[i] {
			continue
		}
		block := []string{ix.ids[i]}
		assigned[i] = true
		for j := i + 1; j < len(ix.ids); j++ {
			if assigned[j] {
				continue
			}
			if L2(ix.vecs[i], ix.vecs[j]) < threshold {
				block = append(block, ix.ids[j])
				assigned[j] = true
			}
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// BenchmarkIndexNearest compares top-10 query throughput at N=10k sim
// records: the seed brute-force scan+sort, the flat float32 heap scan,
// and ANN partition probing. Queries are held out of the index (same
// corpus distribution, no self-hit). The acceptance bar is ANN ≥10x
// over seed-scan at ≥0.95 measured recall on this corpus.
func BenchmarkIndexNearest(b *testing.B) {
	const n, k = 10000, 10
	all := simTexts(b, n+256)
	items, heldOut := all[:n], all[n:]
	queries := make([]string, len(heldOut))
	for i, it := range heldOut {
		queries[i] = it.Text
	}

	b.Run("seed-scan", func(b *testing.B) {
		ix := &seedIndex{embedder: Default()}
		for _, it := range items {
			ix.add(it.ID, it.Text)
		}
		qvecs := make([][]float64, len(queries))
		for i, q := range queries {
			qvecs[i] = ix.embedder.Embed(q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.nearest(qvecs[i%len(queries)], k)
		}
	})

	b.Run("exact-heap", func(b *testing.B) {
		ix := NewIndex(Default())
		ix.AddAll(items)
		qvecs := make([][]float32, len(queries))
		for i, q := range queries {
			qvecs[i] = ix.embed32(q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.search(qvecs[i%len(queries)], k, -1)
		}
	})

	b.Run("ann", func(b *testing.B) {
		// 200 partitions / 30 probes measures ~0.96 held-out recall@10 on
		// this corpus at ~14x seed-scan throughput; the reported recall
		// metric keeps the trade-off honest.
		ix := NewIndexWith(Default(), IndexOptions{ANN: true, Partitions: 200, Probes: 30})
		ix.AddAll(items)
		ix.ensurePartitions()
		exact := NewIndex(Default())
		exact.AddAll(items)
		b.ReportMetric(Recall(exact, ix, queries[:128], k), "recall@10")
		qvecs := make([][]float32, len(queries))
		for i, q := range queries {
			qvecs[i] = ix.embed32(q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.search(qvecs[i%len(queries)], k, -1)
		}
	})
}

// BenchmarkBlocks compares the seed quadratic seed-scan blocking against
// partition-pruned union-find single linkage.
func BenchmarkBlocks(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		items := simTexts(b, n)
		b.Run(fmt.Sprintf("seed-quadratic/n%d", n), func(b *testing.B) {
			ix := &seedIndex{embedder: Default()}
			for _, it := range items {
				ix.add(it.ID, it.Text)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.blocks(0.8)
			}
		})
		b.Run(fmt.Sprintf("union-find/n%d", n), func(b *testing.B) {
			ix := NewIndex(Default())
			ix.AddAll(items)
			ix.ensurePartitions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Blocks(0.8)
			}
		})
	}
}

// BenchmarkEmbed compares the seed hasher-per-gram Embed with the inline
// scratch-buffer rewrite (byte-identical output, see
// TestEmbedMatchesReference).
func BenchmarkEmbed(b *testing.B) {
	e := Default()
	text := "wang j., li h., chen x. scalable entity matching over dirty web tables. vldb 2013"
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			referenceEmbed(e, text)
		}
	})
	b.Run("optimised", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Embed(text)
		}
	})
}

// scanBench holds one shared N=100k store for the flat-vs-quantized scan
// benchmarks: the corpus is embedded once per binary run, and the
// quantized side is a WithOptions view over the same float32 vectors.
var scanBench struct {
	once    sync.Once
	exact   *Index
	quant   *Index
	queries [][]float32
}

func scanBenchSetup(b *testing.B) {
	b.Helper()
	scanBench.once.Do(func() {
		const n = 100000
		texts := dataset.GenerateSyntheticTexts(n+64, 11)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: fmt.Sprintf("s%d", i), Text: texts[i]}
		}
		ix := NewIndex(Default())
		ix.AddAll(items)
		scanBench.exact = ix
		scanBench.quant = ix.WithOptions(IndexOptions{Quantize: true})
		scanBench.quant.ensureQuantized()
		for _, q := range texts[n:] {
			scanBench.queries = append(scanBench.queries, ix.embed32(q))
		}
	})
}

// BenchmarkFlatScan is the exact float32 heap scan over 100k records —
// the baseline the quantized tier's ≥2x QPS acceptance bar is measured
// against.
func BenchmarkFlatScan(b *testing.B) {
	scanBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanBench.exact.search(scanBench.queries[i%len(scanBench.queries)], 10, -1)
	}
}

// BenchmarkQuantizedScan is the int8 shortlist + exact re-rank scan over
// the same 100k records and queries as BenchmarkFlatScan.
func BenchmarkQuantizedScan(b *testing.B) {
	scanBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanBench.quant.search(scanBench.queries[i%len(scanBench.queries)], 10, -1)
	}
}

// BenchmarkIndexBuild measures parallel AddAll against sequential Add at
// N=5k.
func BenchmarkIndexBuild(b *testing.B) {
	items := simTexts(b, 5000)
	b.Run("sequential-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := NewIndex(Default())
			for _, it := range items {
				ix.Add(it.ID, it.Text)
			}
		}
	})
	b.Run("parallel-addall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := NewIndex(Default())
			ix.AddAll(items)
		}
	})
}

package embed

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// referenceEmbed is a verbatim copy of the seed NGramEmbedder.Embed (one
// allocated FNV hasher and Fprintf per gram). The optimised Embed must
// stay byte-identical to it.
func referenceEmbed(e *NGramEmbedder, text string) []float64 {
	v := make([]float64, e.dim)
	norm := strings.ToLower(strings.Join(strings.Fields(text), " "))
	runes := []rune(" " + norm + " ")
	if len(runes) < e.n {
		runes = append(runes, make([]rune, e.n-len(runes))...)
	}
	for i := 0; i+e.n <= len(runes); i++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|", e.seed)
		h.Write([]byte(string(runes[i : i+e.n])))
		sum := h.Sum64()
		bucket := int(sum % uint64(e.dim))
		if sum&(1<<63) != 0 {
			v[bucket]--
		} else {
			v[bucket]++
		}
	}
	normalize(v)
	return v
}

// TestEmbedMatchesReference pins the scratch-buffer Embed rewrite to the
// seed implementation: identical float64 output on every input class the
// normalisation path distinguishes.
func TestEmbedMatchesReference(t *testing.T) {
	inputs := []string{
		"",
		" ",
		"a",
		"ab",
		"  leading and   trailing  ",
		"Hello   World",
		"MIXED case With\tTabs\nand newlines",
		"golden dragon chinese restaurant new york",
		"ünïcödé Grüße ß ΣΙΓΜΑ",
		"日本語のテキストと English mixed",
		" non-breaking spaces ",
		"emoji 🎉 and more 🎊 text",
		string([]byte{0xff, 0xfe, 'a'}), // invalid UTF-8 → RuneError, both paths
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		for w := 0; w < rng.Intn(12); w++ {
			if w > 0 {
				sb.WriteString([]string{" ", "  ", "\t", "\n"}[rng.Intn(4)])
			}
			for c := 0; c < 1+rng.Intn(10); c++ {
				sb.WriteRune(rune('A' + rng.Intn(58)))
			}
		}
		inputs = append(inputs, sb.String())
	}
	for _, dims := range [][2]int{{DefaultDim, 3}, {64, 2}, {17, 5}} {
		e := NewNGramEmbedder(dims[0], dims[1])
		for _, in := range inputs {
			got := e.Embed(in)
			want := referenceEmbed(e, in)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Embed(%q) dim=%d n=%d diverges from reference", in, dims[0], dims[1])
			}
		}
	}
}

// randomCorpus builds n pseudo-word texts with enough near-duplicates to
// exercise ties, clusters, and blocking.
func randomCorpus(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"golden", "dragon", "chinese", "restaurant", "quantum", "lattice",
		"survey", "methods", "indexing", "moving", "objects", "citation", "entity"}
	items := make([]Item, n)
	for i := range items {
		var sb strings.Builder
		for w := 0; w < 3+rng.Intn(4); w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		if rng.Intn(3) == 0 && i > 0 { // near-duplicate of an earlier item
			items[i] = Item{ID: fmt.Sprintf("r%d", i), Text: items[rng.Intn(i)].Text + " x"}
			continue
		}
		items[i] = Item{ID: fmt.Sprintf("r%d", i), Text: sb.String()}
	}
	return items
}

// bruteNearest is the seed algorithm (score everything, stable sort)
// reimplemented over the float32 backing store — the ranking oracle the
// heap must reproduce exactly, ties included.
func bruteNearest(ix *Index, q []float32, k, skip int) []Neighbor {
	type scored struct {
		pos int
		d2  float32
	}
	all := make([]scored, 0, ix.Len())
	for i := 0; i < ix.Len(); i++ {
		if i == skip {
			continue
		}
		all = append(all, scored{i, l2sq32(q, ix.vec(i))})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].d2 < all[b].d2 })
	if k < len(all) {
		all = all[:k]
	}
	out := make([]Neighbor, len(all))
	for i, s := range all {
		out[i] = Neighbor{ID: ix.ids[s.pos], Distance: math.Sqrt(float64(s.d2))}
	}
	return out
}

// TestHeapTopKMatchesSortRanking is the property test: for random corpora,
// query texts, and k, the bounded-heap top-k equals the sort-based ranking
// with ties broken by insertion order.
func TestHeapTopKMatchesSortRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		items := randomCorpus(5+rng.Intn(120), int64(trial))
		ix := NewIndex(Default())
		ix.AddAll(items)
		for qi := 0; qi < 5; qi++ {
			query := items[rng.Intn(len(items))].Text
			k := 1 + rng.Intn(len(items)+2)
			got := ix.Nearest(query, k)
			want := bruteNearest(ix, ix.embed32(query), k, -1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: heap top-%d diverges from sort ranking:\n got %v\nwant %v",
					trial, k, got, want)
			}
		}
	}
}

// TestAddAllMatchesSequentialAdd pins the parallel builder to sequential
// semantics: same ids, same order, same backing vectors, re-add replaces.
func TestAddAllMatchesSequentialAdd(t *testing.T) {
	items := randomCorpus(80, 5)
	items = append(items, Item{ID: items[3].ID, Text: "replacement text"}) // re-add
	seq := NewIndex(Default())
	for _, it := range items {
		seq.Add(it.ID, it.Text)
	}
	par := NewIndex(Default())
	par.AddAll(items)
	if !reflect.DeepEqual(seq.ids, par.ids) || !reflect.DeepEqual(seq.data, par.data) {
		t.Fatal("AddAll diverges from sequential Add")
	}
}

func TestNearestByID(t *testing.T) {
	ix := NewIndex(Default())
	ix.Add("a", "golden dragon chinese restaurant")
	ix.Add("b", "golden dragon chinese restaurnt")
	ix.Add("c", "quantum physics")
	nn := ix.NearestByID("a", 2)
	if len(nn) != 2 || nn[0].ID != "b" || nn[1].ID != "c" {
		t.Fatalf("NearestByID = %+v, want b then c", nn)
	}
	if got := ix.NearestByID("zzz", 2); got != nil {
		t.Fatalf("unknown id should return nil, got %+v", got)
	}
	// NearestByID must agree with NearestOther on the stored text.
	other := ix.NearestOther("golden dragon chinese restaurant", "a", 2)
	if !reflect.DeepEqual(nn, other) {
		t.Fatalf("NearestByID %+v != NearestOther %+v", nn, other)
	}
}

func TestDistanceByID(t *testing.T) {
	ix := NewIndex(Default())
	ix.Add("a", "golden dragon")
	ix.Add("b", "golden dragon restaurant")
	d, ok := ix.DistanceByID("a", "b")
	if !ok || d <= 0 {
		t.Fatalf("DistanceByID = %f, %v", d, ok)
	}
	if self, _ := ix.DistanceByID("a", "a"); self != 0 {
		t.Fatalf("self distance = %f, want 0", self)
	}
	if _, ok := ix.DistanceByID("a", "zzz"); ok {
		t.Fatal("unknown id should report !ok")
	}
}

// singleLinkage is the quadratic reference: union every pair closer than
// threshold, then read components off in insertion order.
func singleLinkage(ix *Index, threshold float64) [][]string {
	n := ix.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	t2 := threshold * threshold
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if float64(l2sq32(ix.vec(i), ix.vec(j))) < t2 {
				parent[find(j)] = find(i)
			}
		}
	}
	blockOf := make(map[int]int)
	var blocks [][]string
	for i := 0; i < n; i++ {
		root := find(i)
		bi, ok := blockOf[root]
		if !ok {
			bi = len(blocks)
			blockOf[root] = bi
			blocks = append(blocks, nil)
		}
		blocks[bi] = append(blocks[bi], ix.ids[i])
	}
	return blocks
}

// clusteredCorpus builds the workload blocking runs on: families of
// near-duplicate records (typo/truncation perturbations of a shared base
// text) that are far from every other family. Intra-family distances sit
// well below the blocking cutoff and cross-family distances well above.
func clusteredCorpus(nFamilies int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	letters := "abcdefghijklmnopqrstuvwxyz"
	var items []Item
	for f := 0; f < nFamilies; f++ {
		var sb strings.Builder
		for w := 0; w < 6; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			for c := 0; c < 4+rng.Intn(6); c++ {
				sb.WriteByte(letters[rng.Intn(26)])
			}
		}
		base := sb.String()
		for m := 0; m < 1+rng.Intn(5); m++ {
			text := base
			if m > 0 { // perturb: one typo
				pos := rng.Intn(len(text))
				text = text[:pos] + string(letters[rng.Intn(26)]) + text[pos+1:]
			}
			items = append(items, Item{ID: fmt.Sprintf("f%dm%d", f, m), Text: text})
		}
	}
	return items
}

// TestBlocksMatchSingleLinkage is the property test: on random clustered
// corpora — the near-duplicate regime blocking thresholds target —
// partition-candidate union-find Blocks equals full quadratic
// single-linkage clustering, for exact and ANN-mode indexes alike.
func TestBlocksMatchSingleLinkage(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		items := clusteredCorpus(4+trial*6, int64(100+trial))
		for _, opts := range []IndexOptions{{}, {ANN: true}} {
			ix := NewIndexWith(Default(), opts)
			ix.AddAll(items)
			for _, threshold := range []float64{0.4, 0.6, 0.8} {
				got := ix.Blocks(threshold)
				want := singleLinkage(ix, threshold)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d threshold %.1f ann=%v: Blocks diverges from single-linkage:\n got %v\nwant %v",
						trial, threshold, opts.ANN, got, want)
				}
			}
		}
	}
}

// TestWithinMatchesBruteForce checks the radius query against a full scan.
func TestWithinMatchesBruteForce(t *testing.T) {
	items := randomCorpus(150, 9)
	ix := NewIndex(Default())
	ix.AddAll(items)
	for _, radius := range []float64{0.3, 0.8, 1.2} {
		query := items[7].Text
		got := ix.Within(query, radius)
		q := ix.embed32(query)
		var want []Neighbor
		for _, nb := range bruteNearest(ix, q, ix.Len(), -1) {
			if nb.Distance <= radius {
				want = append(want, nb)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("radius %.1f: Within diverges from brute force:\n got %v\nwant %v", radius, got, want)
		}
	}
}

// simTexts draws ~1k record texts from the citation generator — the sim
// dataset the entity-resolution workflows query.
func simTexts(t testing.TB, n int) []Item {
	t.Helper()
	corpus := dataset.GenerateCitations(dataset.CitationConfig{
		Entities: 2 * n, Pairs: 10, PositiveFrac: 0.24, Seed: 7,
	})
	if len(corpus.Records) < n {
		t.Fatalf("citation corpus too small: %d < %d", len(corpus.Records), n)
	}
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{ID: fmt.Sprintf("c%d", i), Text: corpus.Records[i].Text()}
	}
	return items
}

// TestANNRecall pins approximate Nearest at ≥0.95 recall against exact
// search on 1k sim records at the documented probe setting. Queries are
// held out of the index — no guaranteed self-hit to flatter the number —
// so this measures the recall the resolve/join/impute consumers see on
// novel texts.
func TestANNRecall(t *testing.T) {
	all := simTexts(t, 1100)
	items, heldOut := all[:1000], all[1000:]
	exact := NewIndex(Default())
	exact.AddAll(items)
	ann := NewIndexWith(Default(), IndexOptions{ANN: true, Partitions: 32, Probes: 10})
	ann.AddAll(items)
	queries := make([]string, 0, len(heldOut))
	for _, it := range heldOut {
		queries = append(queries, it.Text)
	}
	recall := Recall(exact, ann, queries, 10)
	if recall < 0.95 {
		t.Fatalf("ANN recall = %.3f, want >= 0.95", recall)
	}
	t.Logf("ANN recall@10 over %d held-out queries: %.3f", len(queries), recall)
}

// TestANNExclusionKeepsK regresses the candidate-extension gate: when
// the excluded item sits inside the probed partitions, an exclusion
// query must still return k results if k other items exist.
func TestANNExclusionKeepsK(t *testing.T) {
	items := simTexts(t, annMinPoints)
	ix := NewIndexWith(Default(), IndexOptions{ANN: true, Partitions: 2, Probes: 1})
	ix.AddAll(items)
	pt := ix.ensurePartitions()
	for _, it := range items {
		pos := ix.byID[it.ID]
		// k equal to the item's own partition size is the boundary where
		// counting the excluded item used to leave the heap one short.
		k := len(pt.members[pt.primary[pos]])
		if k > ix.Len()-1 {
			k = ix.Len() - 1
		}
		if got := ix.NearestByID(it.ID, k); len(got) != k {
			t.Fatalf("NearestByID(%s, %d) returned %d results", it.ID, k, len(got))
		}
	}
}

// TestConcurrentFirstQuery exercises the build-then-query contract under
// the race detector: many goroutines issue the first queries (triggering
// the lazy partition build) concurrently.
func TestConcurrentFirstQuery(t *testing.T) {
	items := simTexts(t, 200)
	for _, opts := range []IndexOptions{{}, {ANN: true}} {
		ix := NewIndexWith(Default(), opts)
		ix.AddAll(items)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ix.Nearest(items[g].Text, 5)
				ix.Within(items[g+8].Text, 0.8)
				ix.Blocks(0.8)
			}(g)
		}
		wg.Wait()
	}
}

// TestANNNearestContracts checks ANN mode keeps the Nearest API contract:
// k clamped to index size, self found first for stored texts, exclusion
// honoured.
func TestANNNearestContracts(t *testing.T) {
	items := simTexts(t, 300)
	ix := NewIndexWith(Default(), IndexOptions{ANN: true})
	ix.AddAll(items)
	if got := ix.Nearest(items[0].Text, 2*len(items)); len(got) != len(items) {
		t.Fatalf("k beyond size: got %d results, want %d", len(got), len(items))
	}
	nn := ix.Nearest(items[42].Text, 3)
	if len(nn) != 3 || nn[0].ID != items[42].ID || nn[0].Distance > 1e-9 {
		t.Fatalf("stored text should find itself first: %+v", nn)
	}
	for _, nb := range ix.NearestOther(items[42].Text, items[42].ID, 3) {
		if nb.ID == items[42].ID {
			t.Fatalf("NearestOther returned the excluded id: %+v", nb)
		}
	}
}

//go:build amd64 && !purego

package embed

import (
	"math/rand"
	"testing"
)

// TestCodeDotKernelsMatchGeneric pins both SIMD kernels — SSE2 and,
// where the host supports it, AVX2 — against the portable integer loop
// over every block-count shape the dispatcher can route to them: the
// odd 16-lane tail (exercising the AVX2 single-block path), 32-lane
// multiples, large rows, and extremal codes (-128 everywhere, the
// sign-extension stress case).
func TestCodeDotKernelsMatchGeneric(t *testing.T) {
	if !useAVX2 {
		t.Log("AVX2 unavailable on this host; SSE2 kernel only")
	}
	rng := rand.New(rand.NewSource(43))
	lengths := []int{16, 32, 48, 64, 16 * 7, 16 * 16, 16 * 33, 16 * 100}
	kernels := []struct {
		name string
		fn   func(a, b *int8, n int) int32
		ok   bool
	}{
		{"SSE2", codeDotSSE2, true},
		{"AVX2", codeDotAVX2, useAVX2},
	}
	for trial := 0; trial < 30; trial++ {
		for _, n := range lengths {
			a := make([]int8, n)
			b := make([]int8, n)
			for i := range a {
				a[i] = int8(rng.Intn(256) - 128)
				b[i] = int8(rng.Intn(256) - 128)
			}
			switch trial {
			case 0: // extremal: every product is (+128)² scale
				for i := range a {
					a[i], b[i] = -128, -128
				}
			case 1: // alternating extremes across pair boundaries
				for i := range a {
					if i%2 == 0 {
						a[i], b[i] = -128, 127
					} else {
						a[i], b[i] = 127, -128
					}
				}
			}
			want := codeDotGeneric(a, b)
			for _, k := range kernels {
				if !k.ok {
					continue
				}
				if got := k.fn(&a[0], &b[0], n); got != want {
					t.Fatalf("%s n=%d trial=%d: got %d, want %d", k.name, n, trial, got, want)
				}
			}
		}
	}
}

// TestCodeDotDispatchTails drives the public seam with unpadded lengths,
// so the SIMD block + generic tail split is covered under whichever
// kernel the dispatcher selected.
func TestCodeDotDispatchTails(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{0, 1, 15, 17, 31, 33, 47, 255, 257} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
			b[i] = int8(rng.Intn(256) - 128)
		}
		if got, want := codeDot(a, b), codeDotGeneric(a, b); got != want {
			t.Fatalf("n=%d: codeDot = %d, generic = %d", n, got, want)
		}
	}
}

func BenchmarkCodeDotSSE2(b *testing.B) {
	benchKernel(b, codeDotSSE2)
}

func BenchmarkCodeDotAVX2(b *testing.B) {
	if !useAVX2 {
		b.Skip("AVX2 unavailable")
	}
	benchKernel(b, codeDotAVX2)
}

func benchKernel(b *testing.B, fn func(a, b *int8, n int) int32) {
	const n = 256 // DefaultDim code row
	x := make([]int8, n)
	y := make([]int8, n)
	for i := range x {
		x[i] = int8(i%251 - 125)
		y[i] = int8((i*7)%251 - 125)
	}
	b.SetBytes(2 * n)
	for i := 0; i < b.N; i++ {
		fn(&x[0], &y[0], n)
	}
}

package embed

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/consistency"
)

// annMinPoints is the index size below which ANN queries fall back to the
// exact scan: probing partitions of a tiny index costs more than reading
// it whole.
const annMinPoints = 64

// boundSlack pads the centroid-radius pruning bound so float32 rounding
// at a threshold boundary can never drop a qualifying pair. The bound is
// mathematically strict (d(q,x) ≥ d(q,c) − r(c)); the slack only admits a
// few extra candidate scans.
const boundSlack = 1e-4

// kmeansIters bounds the Lloyd refinement passes over the training
// sample. Partition quality plateaus quickly for hashing embeddings.
const kmeansIters = 5

// partitions is the IVF-style coarse quantiser: k-means centroids, the
// member lists of each partition, and each partition's radius (max member
// distance to its centroid), which powers the exact pruning bound used by
// Within. secondary additionally lists every vector under its
// second-closest centroid — the classic redundant-assignment trick that
// rescues boundary points ANN probing would otherwise miss, roughly
// doubling recall-per-probe at the cost of two extra int32 per vector
// (the secondary entry plus the primary map that dedups probe scans).
type partitions struct {
	dim       int
	centroids []float32 // p × dim, row-major
	radius    []float32
	members   [][]int32 // primary assignment, every point exactly once
	secondary [][]int32 // second-nearest assignment
	primary   []int32   // point → its primary partition
}

func (pt *partitions) count() int { return len(pt.members) }

func (pt *partitions) centroid(c int) []float32 {
	return pt.centroids[c*pt.dim : (c+1)*pt.dim]
}

// ensurePartitions builds the partition structure on first use. Mutation
// (Add/AddAll) discards it, so a build-then-query workload pays once.
// Safe for concurrent queries: the first caller builds under the mutex,
// later callers take the lock-free atomic load.
func (ix *Index) ensurePartitions() *partitions {
	if pt := ix.part.Load(); pt != nil {
		return pt
	}
	ix.partMu.Lock()
	defer ix.partMu.Unlock()
	if pt := ix.part.Load(); pt != nil {
		return pt
	}
	pt := buildPartitions(ix)
	ix.part.Store(pt)
	return pt
}

// nearestCentroid returns the closest centroid (lowest index on ties) and
// its squared distance.
func (pt *partitions) nearestCentroid(v []float32) (int, float32) {
	best, bestD2 := 0, l2sq32(v, pt.centroid(0))
	for c := 1; c < pt.count(); c++ {
		if d2 := l2sq32(v, pt.centroid(c)); d2 < bestD2 {
			best, bestD2 = c, d2
		}
	}
	return best, bestD2
}

// nearestTwoCentroids returns the two closest centroids (second is -1
// when only one partition exists).
func (pt *partitions) nearestTwoCentroids(v []float32) (int, int) {
	best, second := 0, -1
	bestD2 := l2sq32(v, pt.centroid(0))
	var secondD2 float32
	for c := 1; c < pt.count(); c++ {
		d2 := l2sq32(v, pt.centroid(c))
		switch {
		case d2 < bestD2:
			second, secondD2 = best, bestD2
			best, bestD2 = c, d2
		case second < 0 || d2 < secondD2:
			second, secondD2 = c, d2
		}
	}
	return best, second
}

// buildPartitions runs deterministic k-means: centroids are initialised
// from a seeded sample, refined with a few Lloyd passes over the sample
// (cheap at any N), then every point is assigned to its nearest centroid.
func buildPartitions(ix *Index) *partitions {
	n := len(ix.ids)
	p := ix.opts.Partitions
	if p <= 0 {
		p = int(math.Sqrt(float64(n)))
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	pt := &partitions{
		dim:       ix.dim,
		centroids: make([]float32, p*ix.dim),
		radius:    make([]float32, p),
		members:   make([][]int32, p),
	}

	rng := rand.New(rand.NewSource(ix.opts.Seed))
	sampleN := 16 * p
	if sampleN > n {
		sampleN = n
	}
	sample := rng.Perm(n)[:sampleN]
	for c := 0; c < p; c++ {
		copy(pt.centroid(c), ix.vec(sample[c]))
	}

	assign := make([]int, sampleN)
	sums := make([]float64, p*ix.dim)
	counts := make([]int, p)
	for iter := 0; iter < kmeansIters; iter++ {
		changed := false
		for si, pos := range sample {
			c, _ := pt.nearestCentroid(ix.vec(pos))
			if assign[si] != c || iter == 0 {
				assign[si] = c
				changed = true
			}
		}
		if !changed {
			break
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for si, pos := range sample {
			c := assign[si]
			counts[c]++
			v := ix.vec(pos)
			row := sums[c*ix.dim : (c+1)*ix.dim]
			for d, x := range v {
				row[d] += float64(x)
			}
		}
		for c := 0; c < p; c++ {
			if counts[c] == 0 {
				continue // keep the previous centroid for empty clusters
			}
			inv := 1 / float64(counts[c])
			dst := pt.centroid(c)
			row := sums[c*ix.dim : (c+1)*ix.dim]
			for d := range dst {
				dst[d] = float32(row[d] * inv)
			}
		}
	}

	pt.secondary = make([][]int32, p)
	pt.primary = make([]int32, n)
	for i := 0; i < n; i++ {
		v := ix.vec(i)
		c, second := pt.nearestTwoCentroids(v)
		pt.members[c] = append(pt.members[c], int32(i))
		pt.primary[i] = int32(c)
		if r := float32(math.Sqrt(float64(l2sq32(v, pt.centroid(c))))); r > pt.radius[c] {
			pt.radius[c] = r
		}
		if second >= 0 {
			pt.secondary[second] = append(pt.secondary[second], int32(i))
		}
	}
	return pt
}

// probeCount resolves the configured probe budget against the actual
// partition count.
func (ix *Index) probeCount(p int) int {
	probes := ix.opts.Probes
	if probes <= 0 {
		// Recall-leaning default: a quarter of the partitions, which with
		// redundant assignment measures ≥0.95 recall@10 on the sim
		// corpora (see TestANNRecall and `declctl index-bench`). Lower
		// Probes explicitly to trade recall for speed.
		probes = p / 4
		if probes < 2 {
			probes = 2
		}
	}
	if probes > p {
		probes = p
	}
	return probes
}

// partitionOrder returns partition indices sorted by centroid distance to
// q, closest first (ties by index).
func (pt *partitions) partitionOrder(q []float32) []int {
	p := pt.count()
	order := make([]int, p)
	d2 := make([]float32, p)
	for c := 0; c < p; c++ {
		order[c] = c
		d2[c] = l2sq32(q, pt.centroid(c))
	}
	sort.Slice(order, func(a, b int) bool {
		if d2[order[a]] != d2[order[b]] {
			return d2[order[a]] < d2[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// annSearch answers a top-k query by scanning the probeCount nearest
// partitions' primary and secondary member lists, extending to further
// partitions only while the primaries seen number fewer than k (primary
// lists cover every point, so k ≥ N still returns everything). A
// secondary entry is skipped when its primary partition is also probed —
// an O(P) probed-set check, so per-query work stays proportional to the
// candidates scanned rather than to the index size. With the quantized
// tier enabled, probe-list scoring runs through the integer kernel into a
// shortlist that is re-ranked exactly (quant.go), so the probed
// candidate set is identical in both modes and only the scan arithmetic
// changes.
func (ix *Index) annSearch(q []float32, k, skip int) []Neighbor {
	pt := ix.ensurePartitions()
	order := pt.partitionOrder(q)
	probes := ix.probeCount(pt.count())
	probed := make([]bool, pt.count())
	chosen := make([]int, 0, probes)
	// The skipped item may sit in a chosen partition, so demand one
	// extra candidate before stopping early — otherwise an exclusion
	// query could come back with k-1 results while k others exist.
	need := k
	if skip >= 0 {
		need = k + 1
	}
	seen := 0
	for pi, c := range order {
		if pi >= probes && seen >= need {
			break
		}
		chosen = append(chosen, c)
		probed[c] = true
		seen += len(pt.members[c])
	}
	if ix.opts.Quantize && len(ix.ids) >= quantMinPoints {
		qz := ix.ensureQuantized()
		qRow, qNorm := qz.encodeQuery(q)
		sl := ix.newShortlist(k)
		for _, c := range chosen {
			for _, j := range pt.members[c] {
				if int(j) != skip {
					sl.push(int(j), qz.codeD2(qNorm, qRow, int(j)))
				}
			}
			for _, j := range pt.secondary[c] {
				if int(j) != skip && !probed[pt.primary[j]] {
					sl.push(int(j), qz.codeD2(qNorm, qRow, int(j)))
				}
			}
		}
		return ix.rerank(q, k, sl.positions())
	}
	t := newTopK(k)
	for _, c := range chosen {
		for _, j := range pt.members[c] {
			if int(j) != skip {
				t.push(int(j), l2sq32(q, ix.vec(int(j))))
			}
		}
		for _, j := range pt.secondary[c] {
			if int(j) != skip && !probed[pt.primary[j]] {
				t.push(int(j), l2sq32(q, ix.vec(int(j))))
			}
		}
	}
	return t.neighbors(ix.ids)
}

// Within returns every stored item whose L2 distance to the query text is
// at most radius, closest first (ties by insertion order). It is exact in
// both index modes: partitions are used only through the pruning bound
// d(q, x) ≥ d(q, centroid) − partitionRadius, which can rule a partition
// out but never a qualifying member.
func (ix *Index) Within(text string, radius float64) []Neighbor {
	if len(ix.ids) == 0 || radius < 0 {
		return nil
	}
	q := ix.embed32(text)
	pt := ix.ensurePartitions()
	r2 := radius * radius
	var idxs []int
	var d2s []float32
	for c := 0; c < pt.count(); c++ {
		dqc := math.Sqrt(float64(l2sq32(q, pt.centroid(c))))
		if dqc-float64(pt.radius[c]) > radius+boundSlack {
			continue
		}
		for _, j := range pt.members[c] {
			i := int(j)
			if d2 := l2sq32(q, ix.vec(i)); float64(d2) <= r2 {
				idxs = append(idxs, i)
				d2s = append(d2s, d2)
			}
		}
	}
	order := make([]int, len(idxs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if d2s[order[a]] != d2s[order[b]] {
			return d2s[order[a]] < d2s[order[b]]
		}
		return idxs[order[a]] < idxs[order[b]]
	})
	out := make([]Neighbor, len(order))
	for i, h := range order {
		out[i] = Neighbor{ID: ix.ids[idxs[h]], Distance: math.Sqrt(float64(d2s[h]))}
	}
	return out
}

// Blocks partitions the indexed items into groups by single-linkage
// clustering over partition candidates: within every k-means partition's
// redundantly-assigned member list, pairs closer than threshold are
// unioned, and the blocks are the resulting union-find components. This
// replaces the seed's O(N²) seed-scan — pair comparisons drop to
// Σ|partition|² ≈ 4N²/P (≈ 4N^1.5 at the default √N partitions) — while
// keeping the exactly-one-block-per-item contract. Each item appears in
// exactly one block; blocks and their members preserve insertion order.
//
// Candidate generation is approximate in the same sense as ANN search: a
// sub-threshold pair links only if the two items share a partition under
// redundant (two-nearest) assignment. In the tight-threshold regime
// blocking runs at (near-duplicates, default cutoffs ≤ 1.0) shared
// partitions capture essentially all links, and the property test pins
// Blocks to full single-linkage components on random corpora.
func (ix *Index) Blocks(threshold float64) [][]string {
	n := len(ix.ids)
	if n == 0 {
		return nil
	}
	pt := ix.ensurePartitions()
	uf := consistency.NewUnionFind()
	for _, id := range ix.ids {
		uf.Add(id)
	}
	t2 := threshold * threshold
	var mem []int32
	for c := 0; c < pt.count(); c++ {
		mem = append(append(mem[:0], pt.members[c]...), pt.secondary[c]...)
		for a := 0; a < len(mem); a++ {
			va := ix.vec(int(mem[a]))
			for b := a + 1; b < len(mem); b++ {
				if float64(l2sq32(va, ix.vec(int(mem[b])))) < t2 {
					uf.Union(ix.ids[mem[a]], ix.ids[mem[b]])
				}
			}
		}
	}
	blockOf := make(map[string]int, n)
	var blocks [][]string
	for _, id := range ix.ids {
		root := uf.Find(id)
		bi, ok := blockOf[root]
		if !ok {
			bi = len(blocks)
			blockOf[root] = bi
			blocks = append(blocks, nil)
		}
		blocks[bi] = append(blocks[bi], id)
	}
	return blocks
}

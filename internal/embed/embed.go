// Package embed provides deterministic text embeddings and an exact
// k-nearest-neighbour index. It stands in for the vendor embedding model
// (text-embedding-ada-002) used by the paper's Table 3 experiment: the
// toolkit only needs embeddings to rank surface-similar records near each
// other, which character-n-gram hashing embeddings do reliably.
package embed

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// DefaultDim is the embedding dimensionality used across the toolkit.
// It is far smaller than vendor embeddings (1536) but ample for the
// surface-similarity ranking the workflows rely on.
const DefaultDim = 256

// Embedder converts text to fixed-length vectors.
type Embedder interface {
	// Embed returns the vector for the given text. Implementations must be
	// deterministic: equal inputs yield equal vectors.
	Embed(text string) []float64
	// Dim returns the vector length produced by Embed.
	Dim() int
}

// NGramEmbedder hashes character n-grams of the lower-cased input into a
// fixed number of buckets and L2-normalises the result. Texts sharing many
// n-grams (near-duplicates, typo variants, truncations) land close in L2
// and cosine distance.
type NGramEmbedder struct {
	dim  int
	n    int
	seed uint64
}

// NewNGramEmbedder returns an embedder with the given dimensionality and
// n-gram length. Dim must be positive and n at least 2; the constructor
// panics otherwise because both are compile-time choices.
func NewNGramEmbedder(dim, n int) *NGramEmbedder {
	if dim <= 0 || n < 2 {
		panic(fmt.Sprintf("embed: invalid NGramEmbedder(dim=%d, n=%d)", dim, n))
	}
	return &NGramEmbedder{dim: dim, n: n, seed: 0x9e3779b97f4a7c15}
}

// Default returns the embedder configuration used by the benchmarks:
// 3-grams into DefaultDim buckets.
func Default() *NGramEmbedder { return NewNGramEmbedder(DefaultDim, 3) }

// Dim implements Embedder.
func (e *NGramEmbedder) Dim() int { return e.dim }

// Embed implements Embedder.
func (e *NGramEmbedder) Embed(text string) []float64 {
	v := make([]float64, e.dim)
	norm := strings.ToLower(strings.Join(strings.Fields(text), " "))
	runes := []rune(" " + norm + " ") // pad so prefixes/suffixes count
	if len(runes) < e.n {
		runes = append(runes, make([]rune, e.n-len(runes))...)
	}
	for i := 0; i+e.n <= len(runes); i++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|", e.seed)
		h.Write([]byte(string(runes[i : i+e.n])))
		sum := h.Sum64()
		bucket := int(sum % uint64(e.dim))
		// Signed hashing halves collision bias.
		if sum&(1<<63) != 0 {
			v[bucket]--
		} else {
			v[bucket]++
		}
	}
	normalize(v)
	return v
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

// L2 returns the Euclidean distance between two equal-length vectors.
// It panics on length mismatch, which indicates mixed embedders.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("embed: L2 on vectors of different length")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Zero vectors
// yield similarity 0.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("embed: Cosine on vectors of different length")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Neighbor is one k-NN search result.
type Neighbor struct {
	// ID is the identifier supplied at Add time.
	ID string
	// Distance is the L2 distance from the query.
	Distance float64
}

// Index is an exact k-NN index over embedded texts. It is not safe for
// concurrent mutation; build it fully, then query from any goroutine.
type Index struct {
	embedder Embedder
	ids      []string
	vecs     [][]float64
	byID     map[string]int
}

// NewIndex returns an empty index using the given embedder.
func NewIndex(e Embedder) *Index {
	return &Index{embedder: e, byID: make(map[string]int)}
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.ids) }

// Add embeds and stores text under id. Re-adding an existing id replaces
// its vector.
func (ix *Index) Add(id, text string) {
	v := ix.embedder.Embed(text)
	if pos, ok := ix.byID[id]; ok {
		ix.vecs[pos] = v
		return
	}
	ix.byID[id] = len(ix.ids)
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, v)
}

// Nearest returns the k nearest stored items to the query text by L2
// distance, closest first. Ties break by insertion order for determinism.
// If k exceeds the index size, all items are returned.
func (ix *Index) Nearest(text string, k int) []Neighbor {
	return ix.nearest(ix.embedder.Embed(text), k, -1)
}

// NearestOther behaves like Nearest but excludes the item stored under
// excludeID — the standard "neighbours of a record other than itself"
// query used by the entity-resolution and imputation workflows.
func (ix *Index) NearestOther(text, excludeID string, k int) []Neighbor {
	skip := -1
	if pos, ok := ix.byID[excludeID]; ok {
		skip = pos
	}
	return ix.nearest(ix.embedder.Embed(text), k, skip)
}

func (ix *Index) nearest(q []float64, k, skip int) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, len(ix.ids))
	for i, v := range ix.vecs {
		if i == skip {
			continue
		}
		out = append(out, Neighbor{ID: ix.ids[i], Distance: L2(q, v)})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Distance < out[b].Distance })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Blocks partitions the indexed items into groups whose pairwise L2
// distance to a group seed is below threshold — a cheap embedding-based
// blocking pass for entity resolution. Each item appears in exactly one
// block; blocks preserve insertion order.
func (ix *Index) Blocks(threshold float64) [][]string {
	assigned := make([]bool, len(ix.ids))
	var blocks [][]string
	for i := range ix.ids {
		if assigned[i] {
			continue
		}
		block := []string{ix.ids[i]}
		assigned[i] = true
		for j := i + 1; j < len(ix.ids); j++ {
			if assigned[j] {
				continue
			}
			if L2(ix.vecs[i], ix.vecs[j]) < threshold {
				block = append(block, ix.ids[j])
				assigned[j] = true
			}
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// Package embed is the vector retrieval layer: deterministic text
// embeddings plus a high-performance k-nearest-neighbour index. It stands
// in for the vendor embedding model (text-embedding-ada-002) used by the
// paper's Table 3 experiment: the toolkit only needs embeddings to rank
// surface-similar records near each other, which character-n-gram hashing
// embeddings do reliably.
//
// The index (index.go) stores vectors in one contiguous float32 backing
// array and answers exact top-k queries with a bounded max-heap; an
// opt-in ANN mode (ann.go) probes a few k-means partitions instead of
// scanning everything, trading a measured amount of recall for an
// order-of-magnitude throughput gain; an opt-in quantized tier
// (quant.go) scans int8 codes through an integer kernel and re-ranks a
// shortlist with exact float32 distances — byte-identical top-k at the
// default settings, 4x less scan traffic. Both knobs compose, and both
// keep recall a measured property (Recall, `declctl index-bench`).
package embed

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"unicode"
	"unicode/utf8"
)

// DefaultDim is the embedding dimensionality used across the toolkit.
// It is far smaller than vendor embeddings (1536) but ample for the
// surface-similarity ranking the workflows rely on.
const DefaultDim = 256

// Embedder converts text to fixed-length vectors.
type Embedder interface {
	// Embed returns the vector for the given text. Implementations must
	// be deterministic (equal inputs yield equal vectors) and safe for
	// concurrent use: Index.AddAll and the engine's operators call Embed
	// from multiple goroutines. NGramEmbedder and httpapi.EmbedClient
	// both satisfy this.
	Embed(text string) []float64
	// Dim returns the vector length produced by Embed.
	Dim() int
}

// NGramEmbedder hashes character n-grams of the lower-cased input into a
// fixed number of buckets and L2-normalises the result. Texts sharing many
// n-grams (near-duplicates, typo variants, truncations) land close in L2
// and cosine distance.
//
// Embed is allocation-light: the normalised rune window lives in a pooled
// scratch buffer and the per-gram FNV-64a hash is computed inline over a
// stack byte buffer, so the only allocation per call is the returned
// vector. Output is byte-identical to the original hasher-per-gram
// implementation (TestEmbedMatchesReference in index_test.go pins this
// against a verbatim reference copy).
type NGramEmbedder struct {
	dim  int
	n    int
	seed uint64
	// seedHash is the FNV-64a state after absorbing "<seed>|", the
	// per-gram prefix the original implementation wrote through
	// fmt.Fprintf; hoisting it out of the gram loop is what makes the
	// inline hash free.
	seedHash uint64
}

// FNV-64a parameters (hash/fnv), inlined so grams hash without an
// allocated hash.Hash64.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// NewNGramEmbedder returns an embedder with the given dimensionality and
// n-gram length. Dim must be positive and n at least 2; the constructor
// panics otherwise because both are compile-time choices.
func NewNGramEmbedder(dim, n int) *NGramEmbedder {
	if dim <= 0 || n < 2 {
		panic(fmt.Sprintf("embed: invalid NGramEmbedder(dim=%d, n=%d)", dim, n))
	}
	const seed = 0x9e3779b97f4a7c15
	return &NGramEmbedder{
		dim:      dim,
		n:        n,
		seed:     seed,
		seedHash: fnvFoldString(fnvOffset64, strconv.FormatUint(seed, 10)+"|"),
	}
}

// Default returns the embedder configuration used by the benchmarks:
// 3-grams into DefaultDim buckets.
func Default() *NGramEmbedder { return NewNGramEmbedder(DefaultDim, 3) }

// Dim implements Embedder.
func (e *NGramEmbedder) Dim() int { return e.dim }

// embedScratch holds the normalised rune buffer reused across Embed
// calls. Pooled rather than stored on the embedder so one NGramEmbedder
// stays safe for concurrent use (AddAll embeds in parallel).
type embedScratch struct {
	runes []rune
}

var scratchPool = sync.Pool{
	New: func() any { return &embedScratch{runes: make([]rune, 0, 256)} },
}

// normRunes rebuilds the original normalisation pipeline —
// []rune(" " + ToLower(Join(Fields(text), " ")) + " "), zero-padded to at
// least n runes — in a single pass over the input with no intermediate
// strings.
func (s *embedScratch) normRunes(text string, n int) []rune {
	r := append(s.runes[:0], ' ')
	inField := false
	for _, c := range text {
		if unicode.IsSpace(c) {
			inField = false
			continue
		}
		if !inField && len(r) > 1 {
			r = append(r, ' ')
		}
		inField = true
		r = append(r, unicode.ToLower(c))
	}
	r = append(r, ' ')
	for len(r) < n {
		r = append(r, 0)
	}
	s.runes = r
	return r
}

// Embed implements Embedder.
func (e *NGramEmbedder) Embed(text string) []float64 {
	v := make([]float64, e.dim)
	sc := scratchPool.Get().(*embedScratch)
	runes := sc.normRunes(text, e.n)
	var buf [utf8.UTFMax]byte
	for i := 0; i+e.n <= len(runes); i++ {
		sum := e.seedHash
		for _, c := range runes[i : i+e.n] {
			w := utf8.EncodeRune(buf[:], c)
			for _, b := range buf[:w] {
				sum ^= uint64(b)
				sum *= fnvPrime64
			}
		}
		bucket := int(sum % uint64(e.dim))
		// Signed hashing halves collision bias.
		if sum&(1<<63) != 0 {
			v[bucket]--
		} else {
			v[bucket]++
		}
	}
	scratchPool.Put(sc)
	normalize(v)
	return v
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

// L2 returns the Euclidean distance between two equal-length vectors.
// It panics on length mismatch, which indicates mixed embedders.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("embed: L2 on vectors of different length")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Zero vectors
// yield similarity 0.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("embed: Cosine on vectors of different length")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// l2sq32 returns the squared L2 distance between two equal-length float32
// vectors. Four accumulators keep the loop pipelined; the compiler drops
// the bounds checks thanks to the b = b[:len(a)] hint.
func l2sq32(a, b []float32) float32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

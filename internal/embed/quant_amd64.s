//go:build amd64 && !purego

#include "textflag.h"

// func codeDotSSE2(a, b *int8, n int) int32
//
// Integer dot product over int8 lanes, 16 per iteration:
//
//   load 16 bytes of a and b            (MOVOU)
//   sign-extend each half to 8×int16    (PUNPCK{L,H}BW self + PSRAW $8)
//   multiply-accumulate pairs to int32  (PMADDWL)
//   accumulate                          (PADDL into X7)
//
// Per-lane products are ≤ 128², PMADDWL pairs stay well inside int32,
// and the four int32 accumulator lanes hold Σ|a·b| for any dimension the
// embedders produce (overflow needs dim > 2³¹/(2·128²) ≈ 65k per lane).
// n must be a positive multiple of 16; rows are quantBlock-padded so the
// Go wrapper only routes aligned blocks here.
TEXT ·codeDotSSE2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	PXOR X7, X7

loop:
	MOVOU (SI), X0
	MOVOU (DI), X1

	// Low 8 lanes: duplicate each byte into both halves of its word,
	// then arithmetic-shift right 8 to sign-extend.
	MOVOA     X0, X2
	PUNPCKLBW X2, X2
	PSRAW     $8, X2
	MOVOA     X1, X3
	PUNPCKLBW X3, X3
	PSRAW     $8, X3
	PMADDWL   X3, X2
	PADDL     X2, X7

	// High 8 lanes.
	MOVOA     X0, X4
	PUNPCKHBW X4, X4
	PSRAW     $8, X4
	MOVOA     X1, X5
	PUNPCKHBW X5, X5
	PSRAW     $8, X5
	PMADDWL   X5, X4
	PADDL     X4, X7

	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JG   loop

	// Horizontal sum of the four int32 accumulator lanes.
	PSHUFD $0xEE, X7, X0
	PADDL  X0, X7
	PSHUFD $0x55, X7, X0
	PADDL  X0, X7
	MOVQ   X7, AX
	MOVL   AX, ret+24(FP)
	RET

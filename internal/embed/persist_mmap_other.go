//go:build !linux && !darwin

package embed

import "errors"

// mapIndexFile is unavailable on platforms without the unix mmap
// surface; LoadIndex falls back to reading the file into the heap.
func mapIndexFile(string) ([]byte, func(), error) {
	return nil, nil, errors.ErrUnsupported
}

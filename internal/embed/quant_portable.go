//go:build !amd64 || purego

package embed

// codeDot falls back to the portable integer kernel off amd64 (or under
// the purego build tag).
func codeDot(a, b []int8) int32 { return codeDotGeneric(a, b) }

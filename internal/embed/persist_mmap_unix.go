//go:build linux || darwin

package embed

import (
	"fmt"
	"os"
	"syscall"
)

// mapIndexFile maps path read-only, returning the file image and a
// release function. LoadIndex keeps the mapping for the life of a
// successfully loaded index (its sections alias the pages) and only
// releases it when the decode rejects the file. The mapping is private
// and read-only: nothing in Index mutates loaded sections in place —
// growth paths (Add) re-allocate because the aliased slices have no
// spare capacity.
func mapIndexFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		// Empty files can't be mapped; the ReadFile fallback turns them
		// into a clean ErrNotIndexFile.
		return nil, nil, fmt.Errorf("embed: unmappable index file size %d", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return b, func() { syscall.Munmap(b) }, nil
}

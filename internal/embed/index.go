package embed

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/workflow"
)

// Neighbor is one k-NN search result.
type Neighbor struct {
	// ID is the identifier supplied at Add time.
	ID string
	// Distance is the L2 distance from the query.
	Distance float64
}

// Item is one (id, text) pair for batch insertion via AddAll.
type Item struct {
	ID, Text string
}

// IndexOptions configures an Index beyond the exact-scan defaults.
type IndexOptions struct {
	// ANN switches Nearest/NearestOther/NearestByID to approximate
	// search: queries probe the closest k-means partitions instead of
	// scanning every vector. Recall against exact search is a measured
	// property (see Recall and `declctl index-bench`); raise Probes to
	// trade speed back for recall. Within is unaffected — its pruning
	// bound is exact, so it returns the same result as a full scan in
	// both modes. Blocks compares partition candidates in both modes
	// (see its doc comment for the fidelity contract).
	ANN bool
	// Partitions is the number of k-means partitions (default √N,
	// computed when the partition structure is first built).
	Partitions int
	// Probes is the number of partitions scanned per ANN query (default
	// max(2, Partitions/4)). Probing more partitions raises recall and
	// cost; Probes ≥ Partitions degenerates to an exact scan.
	Probes int
	// Seed drives the deterministic k-means initialisation (default 1).
	Seed int64
	// Quantize enables the int8 scalar-quantized distance tier (quant.go):
	// candidate scoring runs over a blocked []int8 code array — 4x less
	// scan traffic than float32 — and the RerankFactor*k quantized
	// shortlist is re-ranked with exact float32 distances. At the default
	// RerankFactor the final top-k is pinned byte-identical to the exact
	// scan on the sim corpora (TestQuantizedRerankMatchesExactTopK);
	// combined with ANN, partition probe lists are scored through the
	// quantized kernel. Within and Blocks always use exact distances.
	Quantize bool
	// RerankFactor is the quantized shortlist multiplier: the scan keeps
	// RerankFactor*k candidates by quantized distance, then re-ranks them
	// exactly (default DefaultRerankFactor). Raise it to trade speed back
	// for fidelity headroom on corpora with adversarially tight margins.
	RerankFactor int
}

// Index is a k-NN index over embedded texts. Vectors live in a single
// contiguous []float32 backing array — one allocation, cache-friendly
// scans — and top-k queries use a bounded max-heap, so exact search is
// O(N·dim + N·log k) with no full-result materialisation. It is not safe
// for concurrent mutation; build it fully, then query from any goroutine.
type Index struct {
	embedder Embedder
	dim      int
	ids      []string
	data     []float32 // len(ids) × dim, row-major
	byID     map[string]int
	opts     IndexOptions
	// part and quant are built lazily on the first query needing them and
	// discarded on mutation. Atomic pointer + build mutex so concurrent
	// queries (allowed once mutation stops) race-freely share one build.
	part    atomic.Pointer[partitions]
	partMu  sync.Mutex
	quant   atomic.Pointer[quantized]
	quantMu sync.Mutex
}

// NewIndex returns an empty exact-search index using the given embedder.
func NewIndex(e Embedder) *Index { return NewIndexWith(e, IndexOptions{}) }

// NewIndexWith returns an empty index with explicit options (ANN mode,
// partition/probe counts, k-means seed).
func NewIndexWith(e Embedder, opts IndexOptions) *Index {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Index{embedder: e, dim: e.Dim(), byID: make(map[string]int), opts: opts}
}

// WithOptions returns a queryable view of a fully built index under
// different search options, sharing the contiguous vector store, id
// table, and — where the options agree — the lazily built tier
// structures: the quantized code array always transfers (it depends only
// on the stored vectors), and the partition structure transfers when
// Partitions and Seed match (Probes, Quantize, and RerankFactor are
// query-time knobs). Neither the receiver nor the view may be mutated
// afterwards; this is the cheap way to compare search modes over one
// embedded corpus (see `declctl index-bench`).
func (ix *Index) WithOptions(opts IndexOptions) *Index {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	view := &Index{embedder: ix.embedder, dim: ix.dim, ids: ix.ids, data: ix.data, byID: ix.byID, opts: opts}
	view.quant.Store(ix.quant.Load())
	if opts.Partitions == ix.opts.Partitions && opts.Seed == ix.opts.Seed {
		view.part.Store(ix.part.Load())
	}
	return view
}

// Options returns the index's resolved search options.
func (ix *Index) Options() IndexOptions { return ix.opts }

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.ids) }

// vec returns the stored vector at position pos as a subslice of the
// backing array.
func (ix *Index) vec(pos int) []float32 {
	return ix.data[pos*ix.dim : (pos+1)*ix.dim]
}

// insert stores a float64 embedding under id, converting into the
// contiguous float32 array. Re-adding an existing id replaces its vector.
func (ix *Index) insert(id string, v []float64) {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("embed: vector length %d does not match index dim %d", len(v), ix.dim))
	}
	ix.part.Store(nil)
	ix.quant.Store(nil)
	if pos, ok := ix.byID[id]; ok {
		dst := ix.vec(pos)
		for i, x := range v {
			dst[i] = float32(x)
		}
		return
	}
	ix.byID[id] = len(ix.ids)
	ix.ids = append(ix.ids, id)
	for _, x := range v {
		ix.data = append(ix.data, float32(x))
	}
}

// Add embeds and stores text under id. Re-adding an existing id replaces
// its vector.
func (ix *Index) Add(id, text string) {
	ix.insert(id, ix.embedder.Embed(text))
}

// AddAll embeds and stores every item, parallelising the embedding work
// across CPUs via workflow.Map — the embedder is called from multiple
// goroutines (see the Embedder contract). Insertion order (and therefore
// tie-break order) matches the slice order, exactly as sequential Add
// calls would produce.
func (ix *Index) AddAll(items []Item) {
	if len(items) == 0 {
		return
	}
	vecs, _ := workflow.Map(context.Background(), len(items), runtime.GOMAXPROCS(0),
		func(_ context.Context, i int) ([]float64, error) {
			return ix.embedder.Embed(items[i].Text), nil
		})
	if cap(ix.data)-len(ix.data) < len(items)*ix.dim {
		grown := make([]float32, len(ix.data), len(ix.data)+len(items)*ix.dim)
		copy(grown, ix.data)
		ix.data = grown
	}
	for i, v := range vecs {
		ix.insert(items[i].ID, v)
	}
}

// embed32 embeds query text into a float32 vector.
func (ix *Index) embed32(text string) []float32 {
	v := ix.embedder.Embed(text)
	q := make([]float32, len(v))
	for i, x := range v {
		q[i] = float32(x)
	}
	return q
}

// Nearest returns the k nearest stored items to the query text by L2
// distance, closest first. Ties break by insertion order for determinism.
// If k exceeds the index size, all items are returned. With ANN enabled
// the result is approximate (see IndexOptions.ANN).
func (ix *Index) Nearest(text string, k int) []Neighbor {
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	return ix.search(ix.embed32(text), k, -1)
}

// NearestOther behaves like Nearest but excludes the item stored under
// excludeID — the standard "neighbours of a record other than itself"
// query used by the entity-resolution and imputation workflows.
func (ix *Index) NearestOther(text, excludeID string, k int) []Neighbor {
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	skip := -1
	if pos, ok := ix.byID[excludeID]; ok {
		skip = pos
	}
	return ix.search(ix.embed32(text), k, skip)
}

// NearestByID returns the k nearest items to the one stored under id,
// excluding the item itself, reusing its stored vector — no re-embedding.
// Unknown ids return nil.
func (ix *Index) NearestByID(id string, k int) []Neighbor {
	pos, ok := ix.byID[id]
	if !ok || k <= 0 {
		return nil
	}
	return ix.search(ix.vec(pos), k, pos)
}

// DistanceByID returns the L2 distance between two stored vectors. The
// bool is false when either id is unknown.
func (ix *Index) DistanceByID(a, b string) (float64, bool) {
	pa, ok := ix.byID[a]
	if !ok {
		return 0, false
	}
	pb, ok := ix.byID[b]
	if !ok {
		return 0, false
	}
	return math.Sqrt(float64(l2sq32(ix.vec(pa), ix.vec(pb)))), true
}

// search dispatches a query vector to the ANN, quantized, or exact path.
// skip is a position to exclude (-1 for none).
func (ix *Index) search(q []float32, k, skip int) []Neighbor {
	if ix.opts.ANN && len(ix.ids) >= annMinPoints {
		return ix.annSearch(q, k, skip)
	}
	if ix.opts.Quantize && len(ix.ids) >= quantMinPoints {
		return ix.quantFlatSearch(q, k, skip)
	}
	t := newTopK(k)
	for i := 0; i < len(ix.ids); i++ {
		if i == skip {
			continue
		}
		t.push(i, l2sq32(q, ix.vec(i)))
	}
	return t.neighbors(ix.ids)
}

// bounded is a k-bounded max-heap over (distance, insertion position):
// the root is the worst candidate kept, so a closer candidate replaces it
// in O(log k). Ties order by position, reproducing the stable-sort
// ranking of the previous full-sort implementation. The distance type is
// generic so the float32 exact path and the int64 quantized shortlist
// share one sift implementation.
type bounded[D int64 | float32] struct {
	k   int
	idx []int
	d2  []D
}

// topK is the float32 squared-distance instantiation used by the exact
// scan, ANN probing, and the re-rank pass.
type topK struct {
	bounded[float32]
}

func newTopK(k int) *topK {
	return &topK{bounded[float32]{k: k, idx: make([]int, 0, k), d2: make([]float32, 0, k)}}
}

// after reports whether candidate a ranks strictly after candidate b
// (farther, or equally far but inserted later).
func (t *bounded[D]) after(ai int, ad2 D, bi int, bd2 D) bool {
	return ad2 > bd2 || (ad2 == bd2 && ai > bi)
}

func (t *bounded[D]) push(i int, d2 D) {
	if len(t.idx) < t.k {
		t.idx = append(t.idx, i)
		t.d2 = append(t.d2, d2)
		// Sift up: a child ranking after its parent moves toward the root.
		c := len(t.idx) - 1
		for c > 0 {
			p := (c - 1) / 2
			if !t.after(t.idx[c], t.d2[c], t.idx[p], t.d2[p]) {
				break
			}
			t.idx[c], t.idx[p] = t.idx[p], t.idx[c]
			t.d2[c], t.d2[p] = t.d2[p], t.d2[c]
			c = p
		}
		return
	}
	if !t.after(t.idx[0], t.d2[0], i, d2) {
		return // candidate is no better than the current worst
	}
	t.idx[0], t.d2[0] = i, d2
	// Sift down.
	p := 0
	for {
		c := 2*p + 1
		if c >= len(t.idx) {
			break
		}
		if r := c + 1; r < len(t.idx) && t.after(t.idx[r], t.d2[r], t.idx[c], t.d2[c]) {
			c = r
		}
		if !t.after(t.idx[c], t.d2[c], t.idx[p], t.d2[p]) {
			break
		}
		t.idx[c], t.idx[p] = t.idx[p], t.idx[c]
		t.d2[c], t.d2[p] = t.d2[p], t.d2[c]
		p = c
	}
}

// positions returns the kept candidate positions in unspecified order —
// the quantized shortlist handed to the exact re-rank pass, whose
// (distance, position) ordering is insensitive to push order.
func (t *bounded[D]) positions() []int { return t.idx }

// neighbors drains the heap into a closest-first Neighbor slice.
func (t *topK) neighbors(ids []string) []Neighbor {
	order := make([]int, len(t.idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return t.after(t.idx[order[b]], t.d2[order[b]], t.idx[order[a]], t.d2[order[a]])
	})
	out := make([]Neighbor, len(order))
	for i, h := range order {
		out[i] = Neighbor{ID: ids[t.idx[h]], Distance: math.Sqrt(float64(t.d2[h]))}
	}
	return out
}

// Recall measures the fraction of exact k-NN results that approx also
// returns, averaged over the query texts — the measured-recall knob for
// tuning IndexOptions.Probes. Both indexes must hold the same items.
func Recall(exact, approx *Index, queries []string, k int) float64 {
	if len(queries) == 0 || k <= 0 {
		return 1
	}
	var sum float64
	for _, q := range queries {
		truth := exact.Nearest(q, k)
		if len(truth) == 0 {
			sum++
			continue
		}
		want := make(map[string]bool, len(truth))
		for _, nb := range truth {
			want[nb.ID] = true
		}
		hit := 0
		for _, nb := range approx.Nearest(q, k) {
			if want[nb.ID] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(truth))
	}
	return sum / float64(len(queries))
}

package llm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func faultEcho() Func {
	return Func{ModelName: "echo", Fn: func(_ context.Context, req Request) (Response, error) {
		return Response{Text: "echo: " + req.Prompt, Model: "echo"}, nil
	}}
}

func TestZeroFaultPlanIsPassthrough(t *testing.T) {
	base := faultEcho()
	faulty := WithFaults(base, FaultPlan{})
	for i := 0; i < 50; i++ {
		resp, err := faulty.Complete(context.Background(), Request{Prompt: "hello"})
		if err != nil {
			t.Fatalf("zero plan injected error: %v", err)
		}
		want, _ := base.Complete(context.Background(), Request{Prompt: "hello"})
		if resp.Text != want.Text {
			t.Fatalf("zero plan changed response: %q != %q", resp.Text, want.Text)
		}
	}
	if got := faulty.Stats().Injected(); got != 0 {
		t.Fatalf("zero plan stats: injected %d", got)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	run := func() ([]error, FaultStats) {
		faulty := WithFaults(faultEcho(), FaultPlan{Seed: 7, Transient: 0.4, Timeout: 0.2, RateLimit: 0.1})
		errs := make([]error, 0, 40)
		for i := 0; i < 10; i++ {
			for attempt := 0; attempt < 4; attempt++ {
				_, err := faulty.Complete(context.Background(), Request{Prompt: strings.Repeat("p", i+1)})
				errs = append(errs, err)
			}
		}
		return errs, faulty.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("replay diverged: %+v vs %+v", sa, sb)
	}
	if sa.Injected() == 0 {
		t.Fatal("plan with 70% combined probability injected nothing")
	}
	healed := false
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("call %d diverged: %v vs %v", i, a[i], b[i])
		}
		// A transient fault must heal on a later attempt of the same prompt.
		if a[i] != nil && i%4 < 3 && a[i+1] == nil {
			healed = true
		}
	}
	if !healed {
		t.Fatal("no faulted prompt healed on retry — transient faults are not transient")
	}
}

func TestPermanentFaultsStickPerPrompt(t *testing.T) {
	faulty := WithFaults(faultEcho(), FaultPlan{Seed: 3, Permanent: 0.3})
	poisoned, clean := "", ""
	for i := 0; i < 30 && (poisoned == "" || clean == ""); i++ {
		p := strings.Repeat("q", i+1)
		if _, err := faulty.Complete(context.Background(), Request{Prompt: p}); err != nil {
			poisoned = p
		} else {
			clean = p
		}
	}
	if poisoned == "" || clean == "" {
		t.Fatalf("expected both poisoned and clean prompts at p=0.3 (poisoned=%q clean=%q)", poisoned, clean)
	}
	for i := 0; i < 5; i++ {
		if _, err := faulty.Complete(context.Background(), Request{Prompt: poisoned}); !errors.Is(err, ErrPermanent) {
			t.Fatalf("poisoned prompt attempt %d: got %v, want ErrPermanent", i, err)
		}
		if _, err := faulty.Complete(context.Background(), Request{Prompt: clean}); err != nil {
			t.Fatalf("clean prompt attempt %d failed: %v", i, err)
		}
	}
}

func TestBurstWindow(t *testing.T) {
	faulty := WithFaults(faultEcho(), FaultPlan{BurstEvery: 10, BurstLen: 3})
	for i := 0; i < 20; i++ {
		_, err := faulty.Complete(context.Background(), Request{Prompt: "same"})
		inBurst := i%10 < 3
		if inBurst && !errors.Is(err, ErrTransient) {
			t.Fatalf("call %d: want burst transient, got %v", i, err)
		}
		if !inBurst && err != nil {
			t.Fatalf("call %d outside burst failed: %v", i, err)
		}
	}
	if got := faulty.Stats().Burst; got != 6 {
		t.Fatalf("burst count = %d, want 6", got)
	}
}

func TestWrongSectionCorruptsBatchHeaders(t *testing.T) {
	reply := "### Task 1\nyes\n### Task 2\nno"
	base := Func{ModelName: "b", Fn: func(context.Context, Request) (Response, error) {
		return Response{Text: reply}, nil
	}}
	faulty := WithFaults(base, FaultPlan{WrongSection: 1.0})
	resp, err := faulty.Complete(context.Background(), Request{Prompt: "envelope"})
	if err != nil {
		t.Fatalf("wrong-section fault errored: %v", err)
	}
	if strings.Contains(resp.Text, "### Task 1\n") || !strings.Contains(resp.Text, "### Task 9001") {
		t.Fatalf("headers not renumbered: %q", resp.Text)
	}
	// Non-batch replies degrade to truncation.
	plain := WithFaults(faultEcho(), FaultPlan{WrongSection: 1.0})
	resp, err = plain.Complete(context.Background(), Request{Prompt: "plain"})
	if err != nil || resp.Text == "echo: plain" {
		t.Fatalf("plain reply not corrupted: %q err=%v", resp.Text, err)
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=9, transient=0.25,wrong-section=0.5,burst-every=20,burst-len=4")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{Seed: 9, Transient: 0.25, WrongSection: 0.5, BurstEvery: 20, BurstLen: 4}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParseFaultPlan(""); err != nil || !p.Zero() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"transient=2", "nope=1", "seed", "timeout=x"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/prompt"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := llm.NewRegistry()
	reg.Register(sim.NewNamed("sim-gpt-3.5-turbo"))
	reg.Register(sim.NewNamed("sim-claude-2"))
	srv := httptest.NewServer(NewServer(reg, embed.Default()).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestChatRoundTrip(t *testing.T) {
	srv := newTestServer(t)
	client := NewClient(srv.URL, "sim-gpt-3.5-turbo", ClientOptions{RetryBackoff: 1})
	p := prompt.ComparePair("triple chocolate", "lemon sorbet", "how chocolatey they are")
	resp, err := client.Complete(context.Background(), llm.Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	choice, err := prompt.ParseChoice(resp.Text)
	if err != nil {
		t.Fatalf("unparseable over HTTP: %q", resp.Text)
	}
	if choice != "A" {
		t.Fatalf("choice = %q, want A", choice)
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 || resp.Usage.Calls != 1 {
		t.Fatalf("usage = %+v", resp.Usage)
	}
	if resp.Model != "sim-gpt-3.5-turbo" {
		t.Fatalf("model = %q", resp.Model)
	}
}

func TestHTTPMatchesInProcess(t *testing.T) {
	srv := newTestServer(t)
	client := NewClient(srv.URL, "sim-claude-2", ClientOptions{RetryBackoff: 1})
	local := sim.NewNamed("sim-claude-2")
	p := prompt.SortList([]string{"pear", "apple", "mango"}, "alphabetical order")
	remote, err := client.Complete(context.Background(), llm.Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	inProc, err := local.Complete(context.Background(), llm.Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Text != inProc.Text {
		t.Fatalf("remote and in-process responses differ:\n%q\n%q", remote.Text, inProc.Text)
	}
	if remote.Usage != inProc.Usage {
		t.Fatalf("usage differs: %+v vs %+v", remote.Usage, inProc.Usage)
	}
}

func TestUnknownModel404(t *testing.T) {
	srv := newTestServer(t)
	client := NewClient(srv.URL, "no-such-model", ClientOptions{RetryBackoff: 1})
	_, err := client.Complete(context.Background(), llm.Request{Prompt: "x"})
	if !errors.Is(err, ErrHTTPStatus) {
		t.Fatalf("want ErrHTTPStatus, got %v", err)
	}
	if !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404 in error, got %v", err)
	}
}

func TestMalformedRequest400(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/chat/completions", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error struct{ Type string }
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Type != "invalid_request_error" {
		t.Fatalf("error type = %q", e.Error.Type)
	}
}

func TestEmptyMessages400(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(ChatRequest{Model: "sim-gpt-3.5-turbo"})
	resp, err := http.Post(srv.URL+"/v1/chat/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestRetryOn500ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	backend := newTestServer(t)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		// Proxy to the real backend handler.
		resp, err := http.Post(backend.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer flaky.Close()

	client := NewClient(flaky.URL, "sim-gpt-3.5-turbo", ClientOptions{MaxRetries: 3, RetryBackoff: 1})
	p := prompt.RateItem("vanilla bean", "how chocolatey they are", 7)
	resp, err := client.Complete(context.Background(), llm.Request{Prompt: p})
	if err != nil {
		t.Fatalf("retries should recover: %v", err)
	}
	if _, err := prompt.ParseRating(resp.Text, 7); err != nil {
		t.Fatalf("bad response after retry: %q", resp.Text)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestNoRetryOn404(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()
	client := NewClient(srv.URL, "m", ClientOptions{MaxRetries: 3, RetryBackoff: 1})
	if _, err := client.Complete(context.Background(), llm.Request{Prompt: "x"}); err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 1 {
		t.Fatalf("404 should not be retried; calls = %d", calls.Load())
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	client := NewClient(srv.URL, "m", ClientOptions{MaxRetries: 5, RetryBackoff: 1})
	_, err := client.Complete(ctx, llm.Request{Prompt: "x"})
	if err == nil {
		t.Fatal("want error on cancelled context")
	}
}

func TestEmbeddingsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	client := NewEmbedClient(srv.URL, "sim-embedding", embed.DefaultDim, ClientOptions{})
	if client.Dim() != embed.DefaultDim {
		t.Fatalf("Dim = %d", client.Dim())
	}
	v := client.Embed("golden dragon chinese restaurant")
	if len(v) != embed.DefaultDim {
		t.Fatalf("len = %d", len(v))
	}
	// Must match the in-process embedder exactly.
	local := embed.Default().Embed("golden dragon chinese restaurant")
	for i := range v {
		if v[i] != local[i] {
			t.Fatal("remote embedding differs from in-process embedding")
		}
	}
}

func TestEmbeddingsErrorsGiveZeroVector(t *testing.T) {
	client := NewEmbedClient("http://127.0.0.1:1", "m", 8, ClientOptions{})
	v := client.Embed("text")
	if len(v) != 8 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if x != 0 {
			t.Fatal("unreachable server should yield zero vector")
		}
	}
}

func TestModelsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Data []struct{ ID string }
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Data) != 2 {
		t.Fatalf("models = %+v", out.Data)
	}
}

func TestEmbeddingsEmptyInput400(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(EmbeddingsRequest{Model: "m"})
	resp, err := http.Post(srv.URL+"/v1/embeddings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

// ErrHTTPStatus wraps non-retryable HTTP error statuses from the server.
var ErrHTTPStatus = errors.New("httpapi: unexpected status")

// ClientOptions configures a Client.
type ClientOptions struct {
	// MaxRetries is the number of additional attempts after a retryable
	// failure (429, 5xx, transport error). Default 3.
	MaxRetries int
	// RetryBackoff is the base backoff; attempt i sleeps i*RetryBackoff.
	// Default 50ms. Tests set it to ~0.
	RetryBackoff time.Duration
	// HTTPClient overrides the transport; default http.DefaultClient.
	HTTPClient *http.Client
}

// Client is an llm.Model backed by a remote OpenAI-compatible endpoint.
type Client struct {
	baseURL string
	model   string
	opts    ClientOptions
}

// NewClient returns a client for the given model name at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL, model string, opts ClientOptions) *Client {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	return &Client{baseURL: baseURL, model: model, opts: opts}
}

// Name implements llm.Model.
func (c *Client) Name() string { return c.model }

// Complete implements llm.Model over HTTP with retry and backoff.
func (c *Client) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	body, err := json.Marshal(ChatRequest{
		Model:       c.model,
		Messages:    []ChatMessage{{Role: "user", Content: req.Prompt}},
		Temperature: req.Temperature,
		MaxTokens:   req.MaxTokens,
		Seed:        req.Seed,
	})
	if err != nil {
		return llm.Response{}, fmt.Errorf("httpapi: encode request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return llm.Response{}, fmt.Errorf("httpapi: %w", ctx.Err())
			case <-time.After(time.Duration(attempt) * c.opts.RetryBackoff):
			}
		}
		resp, retryable, err := c.once(ctx, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return llm.Response{}, lastErr
}

// once performs a single HTTP round trip. The second return value reports
// whether the failure is retryable.
func (c *Client) once(ctx context.Context, body []byte) (llm.Response, bool, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.baseURL+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return llm.Response{}, false, fmt.Errorf("httpapi: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.opts.HTTPClient.Do(httpReq)
	if err != nil {
		return llm.Response{}, true, fmt.Errorf("httpapi: transport: %w", err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 16<<20))
	if err != nil {
		return llm.Response{}, true, fmt.Errorf("httpapi: read body: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		retryable := httpResp.StatusCode == http.StatusTooManyRequests || httpResp.StatusCode >= 500
		var e apiError
		msg := string(data)
		if json.Unmarshal(data, &e) == nil && e.Error.Message != "" {
			msg = e.Error.Message
		}
		return llm.Response{}, retryable,
			fmt.Errorf("%w %d: %s", ErrHTTPStatus, httpResp.StatusCode, msg)
	}
	var chat ChatResponse
	if err := json.Unmarshal(data, &chat); err != nil {
		return llm.Response{}, false, fmt.Errorf("httpapi: decode response: %w", err)
	}
	if len(chat.Choices) == 0 {
		return llm.Response{}, false, fmt.Errorf("httpapi: response has no choices")
	}
	return llm.Response{
		Text:  chat.Choices[0].Message.Content,
		Model: chat.Model,
		Usage: token.Usage{
			PromptTokens:     chat.Usage.PromptTokens,
			CompletionTokens: chat.Usage.CompletionTokens,
			Calls:            1,
		},
	}, false, nil
}

// EmbedClient is an embed.Embedder backed by the remote /v1/embeddings
// endpoint. Dimensionality is discovered on first use.
type EmbedClient struct {
	baseURL string
	model   string
	opts    ClientOptions
	dim     int
}

// NewEmbedClient returns an embedding client. dim must match the server's
// embedder dimensionality and is reported by Dim.
func NewEmbedClient(baseURL, model string, dim int, opts ClientOptions) *EmbedClient {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	return &EmbedClient{baseURL: baseURL, model: model, opts: opts, dim: dim}
}

// Dim implements embed.Embedder.
func (c *EmbedClient) Dim() int { return c.dim }

// Embed implements embed.Embedder. Transport failures return a zero
// vector: the Embedder interface is infallible by design, and a zero
// vector is maximally distant from every normalised embedding, which
// degrades ranking quality without corrupting results.
func (c *EmbedClient) Embed(text string) []float64 {
	body, _ := json.Marshal(EmbeddingsRequest{Model: c.model, Input: []string{text}})
	req, err := http.NewRequest(http.MethodPost, c.baseURL+"/v1/embeddings", bytes.NewReader(body))
	if err != nil {
		return make([]float64, c.dim)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return make([]float64, c.dim)
	}
	defer resp.Body.Close()
	var out EmbeddingsResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil || len(out.Data) == 0 {
		return make([]float64, c.dim)
	}
	return out.Data[0].Embedding
}

// Package httpapi exposes models over an OpenAI-compatible HTTP API and
// provides the matching client. It is the network substrate of the
// toolkit: everything the declarative engine does in-process can also run
// against a remote endpoint (cmd/llmserver), exercising the JSON
// encoding, retry, and usage-accounting paths a production deployment
// would use.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/llm"
)

// ChatRequest is the wire format of POST /v1/chat/completions (the subset
// of the OpenAI schema the toolkit uses).
type ChatRequest struct {
	Model       string        `json:"model"`
	Messages    []ChatMessage `json:"messages"`
	Temperature float64       `json:"temperature"`
	MaxTokens   int           `json:"max_tokens,omitempty"`
	Seed        int64         `json:"seed,omitempty"`
}

// ChatMessage is one conversation turn.
type ChatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// ChatResponse is the wire format of a successful chat completion.
type ChatResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   Usage    `json:"usage"`
}

// Choice is one completion alternative (the server always returns one).
type Choice struct {
	Index        int         `json:"index"`
	Message      ChatMessage `json:"message"`
	FinishReason string      `json:"finish_reason"`
}

// Usage mirrors the OpenAI usage block.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// EmbeddingsRequest is the wire format of POST /v1/embeddings.
type EmbeddingsRequest struct {
	Model string   `json:"model"`
	Input []string `json:"input"`
}

// EmbeddingsResponse is the wire format of a successful embeddings call.
type EmbeddingsResponse struct {
	Object string          `json:"object"`
	Data   []EmbeddingItem `json:"data"`
	Model  string          `json:"model"`
	Usage  Usage           `json:"usage"`
}

// EmbeddingItem is one embedded input.
type EmbeddingItem struct {
	Object    string    `json:"object"`
	Index     int       `json:"index"`
	Embedding []float64 `json:"embedding"`
}

// apiError is the OpenAI-style error envelope.
type apiError struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Server serves a model registry and an embedder over the OpenAI wire
// protocol.
type Server struct {
	registry *llm.Registry
	embedder embed.Embedder
	nextID   atomic.Int64
}

// NewServer returns a server over the given registry and embedder. The
// embedder may be nil, in which case /v1/embeddings returns 404.
func NewServer(registry *llm.Registry, embedder embed.Embedder) *Server {
	return &Server{registry: registry, embedder: embedder}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/chat/completions", s.handleChat)
	mux.HandleFunc("POST /v1/embeddings", s.handleEmbeddings)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	return mux
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if len(req.Messages) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "messages must be non-empty")
		return
	}
	model, err := s.registry.Get(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "model_not_found", err.Error())
		return
	}
	// Concatenate message contents in order; system/user roles are all
	// instructions to the simulated oracle.
	var prompt strings.Builder
	for i, m := range req.Messages {
		if i > 0 {
			prompt.WriteString("\n")
		}
		prompt.WriteString(m.Content)
	}
	resp, err := model.Complete(r.Context(), llm.Request{
		Prompt:      prompt.String(),
		Temperature: req.Temperature,
		MaxTokens:   req.MaxTokens,
		Seed:        req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "server_error", err.Error())
		return
	}
	out := ChatResponse{
		ID:     fmt.Sprintf("chatcmpl-%06d", s.nextID.Add(1)),
		Object: "chat.completion",
		Model:  resp.Model,
		Choices: []Choice{{
			Message:      ChatMessage{Role: "assistant", Content: resp.Text},
			FinishReason: "stop",
		}},
		Usage: Usage{
			PromptTokens:     resp.Usage.PromptTokens,
			CompletionTokens: resp.Usage.CompletionTokens,
			TotalTokens:      resp.Usage.Total(),
		},
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEmbeddings(w http.ResponseWriter, r *http.Request) {
	if s.embedder == nil {
		writeError(w, http.StatusNotFound, "model_not_found", "no embedding model configured")
		return
	}
	var req EmbeddingsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if len(req.Input) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "input must be non-empty")
		return
	}
	out := EmbeddingsResponse{Object: "list", Model: req.Model}
	promptTokens := 0
	for i, text := range req.Input {
		out.Data = append(out.Data, EmbeddingItem{
			Object:    "embedding",
			Index:     i,
			Embedding: s.embedder.Embed(text),
		})
		promptTokens += len(strings.Fields(text))
	}
	out.Usage = Usage{PromptTokens: promptTokens, TotalTokens: promptTokens}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelInfo struct {
		ID     string `json:"id"`
		Object string `json:"object"`
	}
	var resp struct {
		Object string      `json:"object"`
		Data   []modelInfo `json:"data"`
	}
	resp.Object = "list"
	for _, name := range s.registry.Names() {
		resp.Data = append(resp.Data, modelInfo{ID: name, Object: "model"})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, typ, msg string) {
	var e apiError
	e.Error.Message = msg
	e.Error.Type = typ
	writeJSON(w, status, e)
}

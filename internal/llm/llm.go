// Package llm defines the model abstraction of the toolkit: text in, text
// out, with usage accounting. Everything above this package — strategies,
// planner, quality control — is agnostic to whether a model is the
// built-in simulator, a remote HTTP endpoint, or (in a production fork) a
// real vendor API.
package llm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/token"
)

// ErrUnknownModel reports a request for a model name absent from a
// Registry.
var ErrUnknownModel = errors.New("llm: unknown model")

// Request is one completion call.
type Request struct {
	// Prompt is the full text sent to the model.
	Prompt string
	// Temperature controls output randomness. The paper's experiments all
	// run at temperature 0 (deterministic).
	Temperature float64
	// MaxTokens caps the completion length; 0 means no explicit cap.
	MaxTokens int
	// Seed decorrelates repeated sampling of the same prompt (e.g.
	// self-consistency voting). At temperature 0 it is ignored.
	Seed int64
}

// Response is the model's reply.
type Response struct {
	// Text is the raw completion text.
	Text string
	// Usage records the token cost of this call.
	Usage token.Usage
	// Model is the name of the model that produced the response.
	Model string
}

// Model is a text completion model.
type Model interface {
	// Name returns the model identifier used for pricing and logging.
	Name() string
	// Complete runs one completion. Implementations must be safe for
	// concurrent use.
	Complete(ctx context.Context, req Request) (Response, error)
}

// Registry maps model names to models. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]Model)}
}

// Register adds or replaces a model under its own name.
func (r *Registry) Register(m Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[m.Name()] = m
}

// Get returns the named model or ErrUnknownModel.
func (r *Registry) Get(name string) (Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m, nil
}

// Names returns the registered model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Func adapts a function to the Model interface; useful in tests.
type Func struct {
	// ModelName is returned by Name.
	ModelName string
	// Fn handles completions.
	Fn func(ctx context.Context, req Request) (Response, error)
}

// Name implements Model.
func (f Func) Name() string { return f.ModelName }

// Complete implements Model.
func (f Func) Complete(ctx context.Context, req Request) (Response, error) {
	return f.Fn(ctx, req)
}

// CountingModel wraps a Model and accumulates total usage across calls.
// It is safe for concurrent use and is how the workflow layer observes
// spend without threading accounting through every strategy.
type CountingModel struct {
	inner Model
	mu    sync.Mutex
	total token.Usage
}

// NewCounting wraps m.
func NewCounting(m Model) *CountingModel { return &CountingModel{inner: m} }

// Name implements Model.
func (c *CountingModel) Name() string { return c.inner.Name() }

// Complete implements Model, adding the call's usage to the running total.
func (c *CountingModel) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := c.inner.Complete(ctx, req)
	if err == nil {
		c.mu.Lock()
		c.total = c.total.Add(resp.Usage)
		c.mu.Unlock()
	}
	return resp, err
}

// Total returns the usage accumulated so far.
func (c *CountingModel) Total() token.Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Reset zeroes the accumulated usage and returns the previous total.
func (c *CountingModel) Reset() token.Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.total
	c.total = token.Usage{}
	return prev
}

// LatencyModel wraps a Model with a fixed, deterministic per-call delay —
// a stand-in for real network and inference latency when an experiment
// measures scheduling effects (streaming overlap, batching) rather than
// token counts. The sleep is context-aware: cancellation cuts the wait
// short and surfaces the context's error.
type LatencyModel struct {
	inner Model
	delay time.Duration
}

// WithLatency wraps m so every Complete call takes at least delay.
func WithLatency(m Model, delay time.Duration) *LatencyModel {
	return &LatencyModel{inner: m, delay: delay}
}

// Name implements Model.
func (l *LatencyModel) Name() string { return l.inner.Name() }

// Complete implements Model, sleeping before delegating.
func (l *LatencyModel) Complete(ctx context.Context, req Request) (Response, error) {
	if l.delay > 0 {
		timer := time.NewTimer(l.delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	return l.inner.Complete(ctx, req)
}

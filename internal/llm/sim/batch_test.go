package sim

import (
	"context"
	"testing"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// TestEnvelopeAnswersMatchStandalone is the contract the execution
// layer's batching relies on: at temperature 0 every task embedded in a
// multi-task envelope is answered exactly as its standalone prompt would
// be, because the oracle derives each sub-answer's noise from the
// sub-prompt alone.
func TestEnvelopeAnswersMatchStandalone(t *testing.T) {
	o := New("sim-batch-test", func() Config {
		cfg := DefaultConfig()
		cfg.BatchSkipPerPair = 0 // no skips: every section must appear
		return cfg
	}())
	ctx := context.Background()

	prompts := []string{
		prompt.FilterItem("triple chocolate fudge", "the flavor contains chocolate"),
		prompt.FilterItem("lemon sorbet", "the flavor contains chocolate"),
		prompt.Categorize("rocky road", []string{"chocolate", "fruit", "other"}),
		prompt.Impute("name is Fudge Palace; city is Berkeley", "cuisine", nil),
	}
	standalone := make([]string, len(prompts))
	for i, p := range prompts {
		resp, err := o.Complete(ctx, llm.Request{Prompt: p})
		if err != nil {
			t.Fatal(err)
		}
		standalone[i] = resp.Text
	}

	resp, err := o.Complete(ctx, llm.Request{Prompt: prompt.TaskBatch(prompts)})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := prompt.ParseTaskBatch(resp.Text, len(prompts))
	if err != nil {
		t.Fatalf("split envelope response: %v\n%s", err, resp.Text)
	}
	for i := range prompts {
		got, ok := answers[i]
		if !ok {
			t.Fatalf("task %d missing from envelope response:\n%s", i, resp.Text)
		}
		if got != standalone[i] {
			t.Errorf("task %d batched answer %q != standalone %q", i, got, standalone[i])
		}
	}
}

// TestEnvelopeSkipsExerciseRetryPath: with an aggressive skip rate the
// oracle drops sections, which is exactly what the batcher's solo-retry
// path exists for.
func TestEnvelopeSkipsSections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSkipPerPair = 0.5
	o := New("sim-skip-test", cfg)
	ctx := context.Background()
	prompts := make([]string, 8)
	for i := range prompts {
		prompts[i] = prompt.FilterItem("flavor", "anything")
	}
	resp, err := o.Complete(ctx, llm.Request{Prompt: prompt.TaskBatch(prompts)})
	if err != nil {
		t.Fatal(err)
	}
	answers, _ := prompt.ParseTaskBatch(resp.Text, len(prompts))
	if len(answers) == len(prompts) {
		t.Fatalf("skip rate 0.5 over 8 tasks answered all %d — skip model inert", len(answers))
	}
}

package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/consistency"
	"repro/internal/dataset"
)

// answerSort handles single-prompt list sorting, the baseline strategy of
// Tables 1 and 2, with its characteristic failure modes: blurred middle
// for semantic criteria, and omissions plus hallucinations on long lists.
func (o *Oracle) answerSort(t task, rng *rand.Rand, scale float64) string {
	crit := o.criterionFor(t.criterion)
	items := append([]string(nil), t.items...)
	n := len(items)

	if crit.Lex {
		sort.Strings(items)
		// Occasional local disorder even on a task the model is good at.
		for rng.Float64() < o.cfg.SwapRate*scale && n > 2 {
			i := rng.Intn(n - 1)
			items[i], items[i+1] = items[i+1], items[i]
		}
	} else {
		// Perceived score: salient items (sharing a stem with the
		// criterion) are ranked confidently; the rest blur toward noise —
		// the paper's "chocolate in the title first, rest seemingly
		// random" observation, and "lost in the middle" in general.
		stem := criterionStem(t.criterion)
		perceived := make([]float64, n)
		for i, it := range items {
			s, known := 0.0, false
			if crit.Score != nil {
				s, known = crit.Score(it)
			}
			switch {
			case stem != "" && strings.Contains(strings.ToLower(it), stem):
				perceived[i] = 1 + s + rng.NormFloat64()*o.cfg.SortSalientSigma*scale
			case known:
				perceived[i] = 0.3*s + rng.NormFloat64()*o.cfg.SortBlurSigma*scale
			default:
				perceived[i] = rng.NormFloat64() * o.cfg.SortBlurSigma * scale
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return perceived[idx[a]] > perceived[idx[b]] })
		sorted := make([]string, n)
		for i, j := range idx {
			sorted[i] = items[j]
		}
		items = sorted
	}

	// Long-list degradation: omission rate grows linearly beyond 20 items.
	if omit := o.omissionRate(n) * scale; omit > 0 {
		kept := items[:0]
		for _, it := range items {
			if rng.Float64() >= omit {
				kept = append(kept, it)
			}
		}
		// Never drop everything; a real model returns something.
		if len(kept) == 0 {
			kept = items[:1]
		}
		items = kept
	}
	// Hallucinations: invented near-miss items at random positions.
	if n > 20 {
		for h := poisson(rng, o.cfg.HallucinationRate*scale); h > 0; h-- {
			fake := hallucinate(rng, t.items)
			pos := rng.Intn(len(items) + 1)
			items = consistency.InsertAt(items, fake, pos)
		}
	}

	var b strings.Builder
	b.WriteString("Here are the items sorted from most to least:\n")
	for i, it := range items {
		fmt.Fprintf(&b, "%d. %s\n", i+1, it)
	}
	return b.String()
}

func (o *Oracle) omissionRate(n int) float64 {
	if n <= 20 {
		return 0
	}
	frac := float64(n-20) / 80
	if frac > 1.5 {
		frac = 1.5
	}
	return o.cfg.OmissionAt100 * frac
}

// answerCompare handles pairwise comparisons with the Thurstone error
// model plus position bias. Template variants shift the noise by a
// deterministic per-(model, variant) factor — real models are sensitive
// to phrasing in model-specific ways (Section 4). A chain-of-thought
// instruction tightens the noise but multiplies the completion length,
// and occasionally produces the contradictory restating answer the paper
// observed, with the real answer only at the end.
func (o *Oracle) answerCompare(t task, rng *rand.Rand, scale float64) string {
	scale *= o.variantFactor(t.variant)
	if t.cot {
		scale *= 0.75 // reasoning helps
	}
	crit := o.criterionFor(t.criterion)
	var pA float64 // probability of answering "A"
	switch {
	case crit.Lex:
		truthA := strings.ToLower(strings.TrimSpace(t.a)) < strings.ToLower(strings.TrimSpace(t.b))
		errRate := o.cfg.AlphaCompareErr * scale * (1 + 0.6*float64(sharedPrefix(t.a, t.b)))
		if errRate > 0.45 {
			errRate = 0.45
		}
		if truthA {
			pA = 1 - errRate
		} else {
			pA = errRate
		}
	case crit.Score != nil:
		sa, okA := crit.Score(t.a)
		sb, okB := crit.Score(t.b)
		if okA && okB {
			pA = phi((sa - sb) / (o.cfg.ComparisonSigma * math.Sqrt2 * scale))
		} else {
			pA = 0.5
		}
	default:
		pA = 0.5
	}
	pA += o.cfg.PositionBias * scale
	answerA := rng.Float64() < pA
	letter := "B"
	if answerA {
		letter = "A"
	}
	if t.cot {
		return cotCompareText(rng, letter)
	}
	if answerA {
		return o.verbose(rng, "A", "Considering both carefully, Item A exhibits the property more strongly than Item B does, so Item A ranks higher. I choose A.")
	}
	return o.verbose(rng, "B", "Weighing the two options against the stated dimension, Item B comes out ahead of Item A on balance. I choose B.")
}

// variantFactor derives a deterministic noise multiplier in roughly
// [0.8, 1.3] for a comparison template variant: each model has its own
// favourite phrasing, which is exactly why the planner profiles variants.
func (o *Oracle) variantFactor(variant int) float64 {
	if variant == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|variant=%d", o.name, variant)
	return 0.8 + float64(h.Sum64()%1000)/1000*0.5
}

// cotCompareText emits a chain-of-thought style response: multi-sentence
// reasoning that may restate both options, with the committed answer in a
// final "Answer: X" line — the extraction challenge of Section 4.
func cotCompareText(rng *rand.Rand, letter string) string {
	other := "B"
	if letter == "B" {
		other = "A"
	}
	var b strings.Builder
	b.WriteString("Let me think step by step. ")
	b.WriteString("First, the stated dimension matters more than surface impressions. ")
	if rng.Float64() < 0.3 {
		// The contradictory restatement failure mode.
		fmt.Fprintf(&b, "At first glance the stronger one seems to be %s. ", other)
		b.WriteString("However, weighing the evidence again changes the picture. ")
	}
	fmt.Fprintf(&b, "Comparing the two directly, %s holds the edge on the relevant property. ", letter)
	b.WriteString("Summing up the considerations above leads to a clear conclusion.\n")
	fmt.Fprintf(&b, "Answer: %s\n", letter)
	return b.String()
}

// answerRate quantises the latent score to the requested scale with
// Gaussian noise — the coarse, tie-heavy signal of the rating strategy.
func (o *Oracle) answerRate(t task, rng *rand.Rand, scale float64) string {
	crit := o.criterionFor(t.criterion)
	r := 1 + rng.Intn(t.scale) // unknown item: arbitrary but deterministic
	if crit.Score != nil {
		if s, ok := crit.Score(t.a); ok {
			noisy := s + rng.NormFloat64()*o.cfg.RatingSigma*scale
			r = int(math.Round(1 + float64(t.scale-1)*noisy))
			if r < 1 {
				r = 1
			}
			if r > t.scale {
				r = t.scale
			}
		}
	}
	return o.verbose(rng, fmt.Sprintf("%d", r), fmt.Sprintf("I would rate this item %d out of %d.", r, t.scale))
}

// answerMatch thresholds surface similarity with logistic noise: obvious
// duplicates and obvious non-duplicates are answered reliably, borderline
// (heavily perturbed) duplicates are usually missed — the high-precision /
// low-recall profile of Table 3.
func (o *Oracle) answerMatch(t task, rng *rand.Rand, scale float64) string {
	margin := similarity(t.a, t.b) - o.cfg.MatchThreshold + rng.NormFloat64()*o.cfg.MatchSigma*scale
	if margin > 0 {
		return o.verbose(rng, "Yes", "Yes, these citations refer to the same paper.")
	}
	return o.verbose(rng, "No", "No, the two citations are different.")
}

// answerImpute fills a missing attribute from the oracle's knowledge
// base. Without examples the answer comes back in the model's own
// canonical form (formatting drift); with examples the model usually
// copies the demonstrated gold form.
func (o *Oracle) answerImpute(t task, rng *rand.Rand, scale float64) string {
	// Few-shot examples sharpen the model: they demonstrate the task on
	// neighbouring records, lifting both recall of the relevant fact and
	// inference from indirect evidence (the paper's "examples can help
	// improve accuracy").
	skill := o.cfg.ImputeSkill
	descSkill := o.cfg.DescriptionSkill
	if len(t.examples) > 0 {
		skill += (1 - skill) * 0.6
		descSkill += (1 - descSkill) * 0.6
	}
	skill /= scale
	descSkill /= scale

	gold, found := "", false
	switch t.field {
	case "city":
		gold, found = restaurantKnowledge(t.record)
	case "manufacturer":
		gold, found = productKnowledge(t.record)
		if !found {
			// SKU prefix in the model number, then (ambiguous) category
			// evidence from the description.
			if g, ok := productSKUKnowledge(t.record); ok && rng.Float64() < descSkill {
				gold, found = g, true
			} else if cands := dataset.ManufacturerCandidates(t.record); len(cands) > 0 &&
				rng.Float64() < descSkill*0.6 {
				gold, found = cands[rng.Intn(len(cands))], true
			}
		}
	}
	if !found || rng.Float64() >= skill {
		gold = o.wrongImputeGuess(t.field, gold, rng)
	}
	// Formatting: examples pin the gold form; otherwise the model answers
	// in its own canonical display form.
	value := gold
	if len(t.examples) > 0 {
		if rng.Float64() >= o.cfg.FormatAdherence {
			value = displayForm(t.field, gold)
		}
	} else {
		value = displayForm(t.field, gold)
	}
	return o.verbose(rng, value, fmt.Sprintf("The value is %s", value))
}

// wrongImputeGuess picks a plausible but wrong value, never the supplied
// correct one when avoidable.
func (o *Oracle) wrongImputeGuess(field, avoid string, rng *rand.Rand) string {
	var pool []string
	switch field {
	case "city":
		pool = dataset.CityGoldLabels()
	case "manufacturer":
		pool = dataset.ManufacturerGoldLabels()
	default:
		return "unknown"
	}
	for tries := 0; tries < 8; tries++ {
		g := pool[rng.Intn(len(pool))]
		if g != avoid {
			return g
		}
	}
	return pool[0]
}

func displayForm(field, gold string) string {
	switch field {
	case "city":
		if d, ok := dataset.LLMCityForm(gold); ok {
			return d
		}
	case "manufacturer":
		if d, ok := dataset.LLMManufacturerForm(gold); ok {
			return d
		}
	}
	return gold
}

// answerFilter checks a predicate with logistic noise keyed to the item's
// decision margin: borderline items flip often, obvious ones rarely.
func (o *Oracle) answerFilter(t task, rng *rand.Rand, scale float64) string {
	truth, margin := o.predicateFor(t.predicate).Truth(t.a)
	pCorrect := sigmoid(margin / (o.cfg.FilterSigma * scale))
	ans := truth
	if rng.Float64() >= pCorrect {
		ans = !ans
	}
	if ans {
		return o.verbose(rng, "Yes", "Yes, the item satisfies the condition.")
	}
	return o.verbose(rng, "No", "No, it does not satisfy the condition.")
}

// answerCount eyeballs the fraction of items satisfying a predicate:
// noisy and slightly biased, but O(1) in calls — the coarse counting task.
func (o *Oracle) answerCount(t task, rng *rand.Rand, scale float64) string {
	pred := o.predicateFor(t.predicate)
	truthy := 0
	for _, it := range t.items {
		if ans, _ := pred.Truth(it); ans {
			truthy++
		}
	}
	frac := 0.0
	if len(t.items) > 0 {
		frac = float64(truthy) / float64(len(t.items))
	}
	est := frac + o.cfg.CountBias + rng.NormFloat64()*o.cfg.CountSigma*scale
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return fmt.Sprintf("About %.0f%% of the items satisfy the condition.", est*100)
}

// answerGroup partitions a batch of records into duplicate groups using
// the same similarity perception as answerMatch, but sloppier — coarse
// batch tasks carry extra noise.
func (o *Oracle) answerGroup(t task, rng *rand.Rand, scale float64) string {
	n := len(t.items)
	uf := consistency.NewUnionFind()
	for i := 0; i < n; i++ {
		uf.Add(fmt.Sprintf("%d", i))
	}
	sigma := (o.cfg.MatchSigma + o.cfg.GroupExtraSigma) * scale
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			margin := similarity(t.items[i], t.items[j]) - o.cfg.MatchThreshold + rng.NormFloat64()*sigma
			if margin > 0 {
				uf.Union(fmt.Sprintf("%d", i), fmt.Sprintf("%d", j))
			}
		}
	}
	groups := uf.Groups()
	reps := make([]string, 0, len(groups))
	for rep := range groups {
		reps = append(reps, rep)
	}
	sort.Strings(reps)
	var b strings.Builder
	for _, rep := range reps {
		members := groups[rep]
		sort.Strings(members)
		refs := make([]string, len(members))
		for i, m := range members {
			var idx int
			fmt.Sscanf(m, "%d", &idx)
			refs[i] = fmt.Sprintf("R%d", idx+1)
		}
		fmt.Fprintf(&b, "group: %s\n", strings.Join(refs, ", "))
	}
	return b.String()
}

// answerVerify re-derives its own answer to the original question (with
// this prompt's independent noise) and agrees iff the answers coincide —
// the self-verification follow-up of Section 3.5.
func (o *Oracle) answerVerify(t task, rng *rand.Rand, temp float64) string {
	own := o.answer(t.question, rng, temp)
	if agreeAnswers(own, t.answer) {
		return "Yes"
	}
	return "No"
}

// agreeAnswers compares two free-text answers leniently: identical
// normalised text, or matching leading yes/no tokens, or one containing
// the other.
func agreeAnswers(a, b string) bool {
	na, nb := normText(a), normText(b)
	if na == nb {
		return true
	}
	ya, oka := leadingYesNo(na)
	yb, okb := leadingYesNo(nb)
	if oka && okb {
		return ya == yb
	}
	return strings.Contains(na, nb) || strings.Contains(nb, na)
}

func leadingYesNo(s string) (bool, bool) {
	switch {
	case strings.HasPrefix(s, "yes"):
		return true, true
	case strings.HasPrefix(s, "no"):
		return false, true
	}
	return false, false
}

// answerCategorize assigns the item to the perceived-closest category.
func (o *Oracle) answerCategorize(t task, rng *rand.Rand, scale float64) string {
	best, bestScore := "", math.Inf(-1)
	for _, cat := range t.items {
		s := similarity(t.a, cat) + rng.NormFloat64()*0.05*scale
		if s > bestScore {
			best, bestScore = cat, s
		}
	}
	if best == "" {
		return "uncategorized"
	}
	return best
}

// answerDiscover proposes category names from the leading content word of
// each sample item — a cheap but honest clustering-scheme discovery.
func (o *Oracle) answerDiscover(t task) string {
	seen := make(map[string]bool)
	var cats []string
	for _, it := range t.items {
		fields := strings.Fields(normText(it))
		if len(fields) == 0 {
			continue
		}
		w := fields[len(fields)-1] // trailing word is usually the head noun
		if !seen[w] {
			seen[w] = true
			cats = append(cats, w)
		}
		if len(cats) >= t.max {
			break
		}
	}
	if len(cats) == 0 {
		return "general"
	}
	return strings.Join(cats, "\n")
}

// criterionStem extracts the salient keyword of a criterion phrase: the
// longest content word, crudely de-suffixed ("chocolatey" -> "chocolate").
func criterionStem(criterion string) string {
	longest := ""
	for _, w := range strings.Fields(strings.ToLower(criterion)) {
		if len(w) > len(longest) {
			longest = w
		}
	}
	if len(longest) < 6 {
		return ""
	}
	for _, suffix := range []string{"ey", "y", "ness", "ed", "ing"} {
		if strings.HasSuffix(longest, suffix) && len(longest)-len(suffix) >= 5 {
			return longest[:len(longest)-len(suffix)]
		}
	}
	return longest
}

// sharedPrefix counts leading characters two strings share (case-folded),
// capped at 4 — the difficulty driver for alphabetical comparisons.
func sharedPrefix(a, b string) int {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	n := 0
	for n < len(la) && n < len(lb) && la[n] == lb[n] {
		n++
		if n == 4 {
			break
		}
	}
	return n
}

// hallucinate invents a near-miss item: a mutation of a real item that is
// not itself in the set.
func hallucinate(rng *rand.Rand, items []string) string {
	in := make(map[string]bool, len(items))
	for _, it := range items {
		in[it] = true
	}
	for tries := 0; tries < 10; tries++ {
		base := items[rng.Intn(len(items))]
		r := []rune(base)
		if len(r) < 3 {
			continue
		}
		i := 1 + rng.Intn(len(r)-1)
		var fake string
		switch rng.Intn(3) {
		case 0:
			fake = string(r[:i]) + string(r[i-1]) + string(r[i:]) // double a letter
		case 1:
			fake = string(r[:i-1]) + string(r[i:]) // drop a letter
		default:
			fake = base + "s"
		}
		if !in[fake] {
			return fake
		}
	}
	return "item"
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// poisson draws a Poisson variate by inversion; adequate for the small
// rates used here.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

// answerCompareBatch answers several comparisons from one prompt. Packing
// more pairs into a prompt widens every noise source (the model divides
// its attention) and occasionally drops a pair entirely — the accuracy
// cost of the Section 4 batch-size lever.
func (o *Oracle) answerCompareBatch(t task, rng *rand.Rand, scale float64) string {
	nPairs := len(t.items) / 2
	batchScale := scale * (1 + o.cfg.BatchBlurPerPair*float64(nPairs-1))
	skip := o.cfg.BatchSkipPerPair * float64(nPairs-1)
	var b strings.Builder
	for i := 0; i < nPairs; i++ {
		if nPairs > 1 && rng.Float64() < skip {
			continue // silently dropped, like items lost from long sorts
		}
		sub := task{kind: taskCompare, a: t.items[2*i], b: t.items[2*i+1], criterion: t.criterion}
		ans := o.answerCompare(sub, rng, batchScale)
		letter := "B"
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(ans)), "A") ||
			strings.Contains(ans, "I choose A") {
			letter = "A"
		}
		fmt.Fprintf(&b, "%d: %s\n", i+1, letter)
	}
	if b.Len() == 0 {
		return "I could not process the pairs."
	}
	return b.String()
}

package sim

import (
	"reflect"
	"testing"

	"repro/internal/prompt"
)

func TestRecogniseSort(t *testing.T) {
	p := prompt.SortList([]string{"alpha", "beta"}, "how chocolatey they are")
	task := recognise(p)
	if task.kind != taskSortList {
		t.Fatalf("kind = %v", task.kind)
	}
	if task.criterion != "how chocolatey they are" {
		t.Fatalf("criterion = %q", task.criterion)
	}
	if !reflect.DeepEqual(task.items, []string{"alpha", "beta"}) {
		t.Fatalf("items = %v", task.items)
	}
}

func TestRecogniseCompare(t *testing.T) {
	p := prompt.ComparePair("left item", "right item", "numeric value")
	task := recognise(p)
	if task.kind != taskCompare {
		t.Fatalf("kind = %v", task.kind)
	}
	if task.a != "left item" || task.b != "right item" {
		t.Fatalf("pair = %q / %q", task.a, task.b)
	}
	if task.criterion != "numeric value" {
		t.Fatalf("criterion = %q", task.criterion)
	}
}

func TestRecogniseCompareBatch(t *testing.T) {
	p := prompt.CompareBatch([]prompt.PairItem{{A: "x", B: "y"}, {A: "u", B: "v"}}, "numeric value")
	task := recognise(p)
	if task.kind != taskCompareBatch {
		t.Fatalf("kind = %v", task.kind)
	}
	if !reflect.DeepEqual(task.items, []string{"x", "y", "u", "v"}) {
		t.Fatalf("items = %v", task.items)
	}
}

func TestRecogniseRate(t *testing.T) {
	p := prompt.RateItem("the item", "how chocolatey they are", 9)
	task := recognise(p)
	if task.kind != taskRate || task.scale != 9 || task.a != "the item" {
		t.Fatalf("task = %+v", task)
	}
}

func TestRecogniseMatch(t *testing.T) {
	p := prompt.MatchPair("citation one", "citation two")
	task := recognise(p)
	if task.kind != taskMatch || task.a != "citation one" || task.b != "citation two" {
		t.Fatalf("task = %+v", task)
	}
}

func TestRecogniseImpute(t *testing.T) {
	exs := []prompt.Example{{Input: "name is a", Output: "atlanta"}}
	p := prompt.Impute("name is x; phone is 212-1", "city", exs)
	task := recognise(p)
	if task.kind != taskImpute || task.field != "city" {
		t.Fatalf("task = %+v", task)
	}
	if task.record != "name is x; phone is 212-1" {
		t.Fatalf("record = %q", task.record)
	}
	if len(task.examples) != 1 || task.examples[0].output != "atlanta" {
		t.Fatalf("examples = %+v", task.examples)
	}
}

func TestRecogniseFilterCountGroup(t *testing.T) {
	if task := recognise(prompt.FilterItem("it", "cond")); task.kind != taskFilter || task.predicate != "cond" {
		t.Fatalf("filter task = %+v", task)
	}
	if task := recognise(prompt.CountBatch([]string{"a"}, "cond")); task.kind != taskCount || task.predicate != "cond" {
		t.Fatalf("count task = %+v", task)
	}
	task := recognise(prompt.GroupRecords([]string{"rec one", "rec two"}))
	if task.kind != taskGroup || len(task.items) != 2 {
		t.Fatalf("group task = %+v", task)
	}
}

func TestRecogniseVerify(t *testing.T) {
	task := recognise(prompt.Verify("inner question?", "42"))
	if task.kind != taskVerify || task.question != "inner question?" || task.answer != "42" {
		t.Fatalf("task = %+v", task)
	}
}

func TestRecogniseCategorizeAndDiscover(t *testing.T) {
	task := recognise(prompt.Categorize("thing", []string{"cat a", "cat b"}))
	if task.kind != taskCategorize || task.a != "thing" {
		t.Fatalf("task = %+v", task)
	}
	if !reflect.DeepEqual(task.items, []string{"cat a", "cat b"}) {
		t.Fatalf("categories = %v", task.items)
	}
	task = recognise(prompt.DiscoverCategories([]string{"one"}, 4))
	if task.kind != taskDiscover || task.max != 4 {
		t.Fatalf("task = %+v", task)
	}
}

func TestRecogniseUnknown(t *testing.T) {
	for _, p := range []string{
		"",
		"write me a poem",
		"Sort these things please", // wrong template shape
	} {
		if task := recognise(p); task.kind != taskUnknown {
			t.Errorf("recognise(%q) = %v, want unknown", p, task.kind)
		}
	}
}

func TestCriterionStem(t *testing.T) {
	cases := []struct{ in, want string }{
		{"how chocolatey they are", "chocolat"}, // stem is a prefix matcher; "chocolat" hits every chocolate item
		{"alphabetical order", "alphabetical"},
		{"size", ""}, // too short for a stem
	}
	for _, c := range cases {
		if got := criterionStem(c.in); got != c.want {
			t.Errorf("criterionStem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSharedPrefix(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"apple", "apricot", 2},
		{"same", "same", 4}, // capped at 4
		{"x", "y", 0},
		{"Mango", "mandible", 3},
	}
	for _, c := range cases {
		if got := sharedPrefix(c.a, c.b); got != c.want {
			t.Errorf("sharedPrefix(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

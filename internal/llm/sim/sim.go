// Package sim implements the simulated noisy-oracle LLM that stands in
// for the vendor models used in the paper's experiments, so everything
// reproduces deterministically, offline, and free (the substitution
// rationale is summarized in README.md).
//
// An Oracle receives a plain-text prompt, recognises which unit task the
// prompt encodes (the toolkit's templates from internal/prompt play the
// role of instructions a real model would read), consults its world model,
// and produces a plain-text response corrupted by calibrated error models:
//
//   - pairwise comparisons follow a Thurstone model — the probability of a
//     correct answer grows with the latent-score gap, so near-ties are
//     answered nearly at random, plus a position bias toward one answer;
//   - ratings quantise the latent score with Gaussian noise, producing the
//     coarse, tie-heavy signal the paper reports;
//   - single-prompt list sorts place keyword-salient items correctly and
//     blur the rest ("lost in the middle"), and on long lists omit and
//     hallucinate items at calibrated rates;
//   - entity matching thresholds a surface-similarity score, yielding the
//     high-precision / low-recall behaviour of Table 3;
//   - imputation answers from a knowledge base but drifts to its own
//     canonical formatting unless few-shot examples pin the format.
//
// All randomness is derived from a hash of (model name, prompt, request
// seed), so temperature-0 calls are bit-reproducible, repeated identical
// prompts return identical answers, and distinct prompts decorrelate —
// exactly the behaviour of a deterministic vendor endpoint.
package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/llm"
	"repro/internal/token"
)

// Config holds the error-model knobs of one simulated model. Zero values
// mean "no noise"; DefaultConfig returns the calibrated baseline.
type Config struct {
	// ComparisonSigma is the Thurstone noise of semantic pairwise
	// comparisons: P(correct) = Phi(|Δscore| / (sigma·√2)).
	ComparisonSigma float64
	// PositionBias shifts comparison answers toward "A" (positive) or "B"
	// (negative) regardless of content — the ordering bias the paper
	// cancels with order-swapped double prompts.
	PositionBias float64
	// AlphaCompareErr is the base error rate of alphabetical comparisons;
	// words sharing longer prefixes are proportionally harder.
	AlphaCompareErr float64
	// BatchBlurPerPair widens every noise source by this fraction per
	// additional pair packed into a batched comparison prompt — the
	// accuracy cost of batching that Section 4 flags.
	BatchBlurPerPair float64
	// BatchSkipPerPair is the probability, per additional pair, that the
	// model silently skips answering one pair of a batch.
	BatchSkipPerPair float64
	// RatingSigma is the Gaussian noise added to the latent score before
	// quantising to the rating scale.
	RatingSigma float64
	// SortSalientSigma blurs the perceived score of keyword-salient items
	// in single-prompt semantic sorts.
	SortSalientSigma float64
	// SortBlurSigma blurs every other item (the "seemingly random" rest).
	SortBlurSigma float64
	// OmissionAt100 is the per-item probability of dropping an item from a
	// 100-item list output; it scales linearly from 0 at 20 items.
	OmissionAt100 float64
	// HallucinationRate is the expected number of invented items per list
	// response.
	HallucinationRate float64
	// SwapRate is the probability of one adjacent transposition slipping
	// into an otherwise correct lexicographic list sort.
	SwapRate float64
	// MatchThreshold is the surface-similarity level at which the model
	// answers "Yes" to an entity-match question.
	MatchThreshold float64
	// MatchSigma is the logistic noise around the threshold.
	MatchSigma float64
	// GroupExtraSigma is added to MatchSigma for coarse batch grouping
	// tasks, which the paper expects to be sloppier than pair tasks.
	GroupExtraSigma float64
	// ImputeSkill is the probability of knowing an imputable fact.
	ImputeSkill float64
	// DescriptionSkill is the probability of inferring an imputation
	// answer from indirect evidence when the direct key is absent.
	DescriptionSkill float64
	// FormatAdherence is the probability of copying the output format of
	// few-shot examples instead of the model's own canonical form.
	FormatAdherence float64
	// FilterSigma is the logistic noise on predicate checks.
	FilterSigma float64
	// CountSigma is the Gaussian noise of coarse fraction estimates.
	CountSigma float64
	// CountBias is an additive bias on coarse estimates (eyeballing
	// undercounts when negative).
	CountBias float64
	// Verbosity is the probability of wrapping a short answer in prose,
	// exercising the defensive parsers.
	Verbosity float64
}

// DefaultConfig returns the calibrated error profile of the baseline
// simulated model (sim-gpt-3.5-turbo). The values were tuned so the
// paper's baseline rows land near their reported numbers; see
// EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		ComparisonSigma:   0.24,
		PositionBias:      0.06,
		AlphaCompareErr:   0.06,
		BatchBlurPerPair:  0.06,
		BatchSkipPerPair:  0.006,
		RatingSigma:       0.20,
		SortSalientSigma:  0.10,
		SortBlurSigma:     0.85,
		OmissionAt100:     0.055,
		HallucinationRate: 0.5,
		SwapRate:          0.3,
		MatchThreshold:    0.72,
		MatchSigma:        0.06,
		GroupExtraSigma:   0.05,
		ImputeSkill:       0.93,
		DescriptionSkill:  0.55,
		FormatAdherence:   0.96,
		FilterSigma:       0.12,
		CountSigma:        0.08,
		CountBias:         -0.03,
		Verbosity:         0.25,
	}
}

// Oracle is a simulated LLM. Construct with New; safe for concurrent use
// after construction (RegisterCriterion/RegisterPredicate are not safe to
// call concurrently with Complete).
type Oracle struct {
	name       string
	cfg        Config
	criteria   []Criterion
	predicates []Predicate
}

// New returns an oracle with the given model name and configuration,
// pre-loaded with the built-in world model (flavour chocolateyness,
// lexicographic order, numeric magnitude, restaurant and product
// knowledge).
func New(name string, cfg Config) *Oracle {
	o := &Oracle{name: name, cfg: cfg}
	o.criteria = builtinCriteria()
	o.predicates = builtinPredicates()
	return o
}

// NewNamed returns the named stock model. Recognised names:
//
//	sim-gpt-3.5-turbo — baseline profile (DefaultConfig)
//	sim-gpt-4         — low-noise, expensive profile
//	sim-claude        — baseline-quality profile used for imputation
//	sim-claude-2      — strong long-list profile used for Table 2
//	sim-cheap         — high-noise, low-cost profile
//
// Unknown names receive the baseline profile under the given name.
func NewNamed(name string) *Oracle {
	cfg := DefaultConfig()
	switch name {
	case "sim-gpt-4":
		cfg.ComparisonSigma = 0.08
		cfg.AlphaCompareErr = 0.02
		cfg.RatingSigma = 0.08
		cfg.SortBlurSigma = 0.35
		cfg.OmissionAt100 = 0.02
		cfg.MatchSigma = 0.04
		cfg.MatchThreshold = 0.55
		cfg.ImputeSkill = 0.97
	case "sim-claude":
		cfg.ImputeSkill = 0.95
		cfg.DescriptionSkill = 0.75
		cfg.FormatAdherence = 0.93
	case "sim-claude-2":
		cfg.AlphaCompareErr = 0.05
		cfg.OmissionAt100 = 0.055
		cfg.HallucinationRate = 0.4
		cfg.SwapRate = 0.12
	case "sim-cheap":
		cfg.ComparisonSigma = 0.45
		cfg.AlphaCompareErr = 0.18
		cfg.RatingSigma = 0.35
		cfg.SortBlurSigma = 1.2
		cfg.OmissionAt100 = 0.12
		cfg.MatchSigma = 0.15
		cfg.ImputeSkill = 0.70
		cfg.DescriptionSkill = 0.30
	}
	return New(name, cfg)
}

// Name implements llm.Model.
func (o *Oracle) Name() string { return o.name }

// Complete implements llm.Model: recognise the task encoded in the prompt,
// answer it through the error model, and account usage.
func (o *Oracle) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if err := ctx.Err(); err != nil {
		return llm.Response{}, fmt.Errorf("sim: %w", err)
	}
	var text string
	if subs, ok := splitEnvelope(req.Prompt); ok {
		text = o.answerEnvelope(req, subs)
	} else {
		text = o.answer(req.Prompt, o.rng(req), req.Temperature)
	}
	if req.MaxTokens > 0 {
		text = token.TruncateToTokens(text, req.MaxTokens)
	}
	return llm.Response{
		Text:  text,
		Model: o.name,
		Usage: token.Usage{
			PromptTokens:     token.Count(req.Prompt),
			CompletionTokens: token.Count(text),
			Calls:            1,
		},
	}, nil
}

// rng derives the deterministic noise source for one request. At
// temperature 0 the request seed is ignored, so identical prompts always
// produce identical answers (vendor temperature-0 behaviour).
func (o *Oracle) rng(req llm.Request) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(o.name))
	h.Write([]byte{0})
	h.Write([]byte(req.Prompt))
	if req.Temperature > 0 {
		fmt.Fprintf(h, "|seed=%d", req.Seed)
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// answerEnvelope answers a multi-task batch envelope section by section.
// Each embedded task gets the noise source its standalone prompt would
// get, so batched answers are bit-identical to unbatched ones — the model
// reads each task independently, exactly as the execution layer's
// batching contract assumes. The envelope-level rng drives only the skip
// noise: like real models on long batches, the oracle occasionally drops
// a section (BatchSkipPerPair per additional task), which exercises the
// batcher's solo-retry path without perturbing the surviving answers.
func (o *Oracle) answerEnvelope(req llm.Request, subs []string) string {
	envRng := o.rng(req)
	skipP := o.cfg.BatchSkipPerPair * float64(len(subs)-1)
	var b strings.Builder
	for i, sub := range subs {
		if len(subs) > 1 && envRng.Float64() < skipP {
			continue
		}
		subReq := req
		subReq.Prompt = sub
		fmt.Fprintf(&b, "### Task %d\n%s\n", i+1, o.answer(sub, o.rng(subReq), req.Temperature))
	}
	return b.String()
}

// answer dispatches on the recognised task. Unrecognised prompts receive
// a refusal, which downstream parsers surface as ErrUnparseable.
func (o *Oracle) answer(prompt string, rng *rand.Rand, temp float64) string {
	scale := 1 + 0.7*temp // temperature widens every noise source
	switch task := recognise(prompt); task.kind {
	case taskSortList:
		return o.answerSort(task, rng, scale)
	case taskCompare:
		return o.answerCompare(task, rng, scale)
	case taskCompareBatch:
		return o.answerCompareBatch(task, rng, scale)
	case taskRate:
		return o.answerRate(task, rng, scale)
	case taskMatch:
		return o.answerMatch(task, rng, scale)
	case taskImpute:
		return o.answerImpute(task, rng, scale)
	case taskFilter:
		return o.answerFilter(task, rng, scale)
	case taskCount:
		return o.answerCount(task, rng, scale)
	case taskGroup:
		return o.answerGroup(task, rng, scale)
	case taskVerify:
		return o.answerVerify(task, rng, temp)
	case taskCategorize:
		return o.answerCategorize(task, rng, scale)
	case taskDiscover:
		return o.answerDiscover(task)
	default:
		return "I'm sorry, I don't understand the request."
	}
}

// verbose optionally wraps a terse answer in prose, so response parsers
// are exercised the way real model output exercises them.
func (o *Oracle) verbose(rng *rand.Rand, terse, wordy string) string {
	if rng.Float64() < o.cfg.Verbosity {
		return wordy
	}
	return terse
}

func normText(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

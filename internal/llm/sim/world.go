package sim

import (
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// Criterion is one ranking dimension the oracle understands. Match decides
// whether a criterion string in a prompt refers to it; Score maps an item
// to the latent score the error models corrupt. Lex marks lexicographic
// criteria, which the oracle handles by direct string comparison ("most"
// meaning alphabetically first).
type Criterion struct {
	// Name identifies the criterion in diagnostics.
	Name string
	// Match reports whether the prompt's criterion text refers to this
	// criterion.
	Match func(criterionText string) bool
	// Score returns the latent score of an item (higher = "more"), and
	// whether the item is known. Nil for lexicographic criteria.
	Score func(item string) (float64, bool)
	// Lex marks a lexicographic (dictionary-order) criterion.
	Lex bool
}

// Predicate is one boolean property the oracle can check. Truth returns
// the noiseless answer plus a margin in [0, 1] expressing how far the item
// is from the decision boundary (0 = borderline, 1 = obvious); the filter
// error model flips borderline items more often.
type Predicate struct {
	// Name identifies the predicate in diagnostics.
	Name string
	// Match reports whether the prompt's predicate text refers to it.
	Match func(predicateText string) bool
	// Truth returns the noiseless answer and the decision margin.
	Truth func(item string) (answer bool, margin float64)
}

// RegisterCriterion adds a custom ranking dimension. Not safe to call
// concurrently with Complete.
func (o *Oracle) RegisterCriterion(c Criterion) { o.criteria = append(o.criteria, c) }

// RegisterPredicate adds a custom boolean property. Not safe to call
// concurrently with Complete.
func (o *Oracle) RegisterPredicate(p Predicate) { o.predicates = append(o.predicates, p) }

// criterionFor resolves a prompt's criterion text; the fallback is a
// hash-free "unknown" criterion scored at 0, which makes the oracle answer
// arbitrarily but deterministically.
func (o *Oracle) criterionFor(text string) Criterion {
	for _, c := range o.criteria {
		if c.Match(text) {
			return c
		}
	}
	return Criterion{
		Name:  "unknown",
		Match: func(string) bool { return true },
		Score: func(string) (float64, bool) { return 0, false },
	}
}

func (o *Oracle) predicateFor(text string) Predicate {
	for _, p := range o.predicates {
		if p.Match(text) {
			return p
		}
	}
	return Predicate{
		Name:  "unknown",
		Match: func(string) bool { return true },
		Truth: func(string) (bool, float64) { return false, 0 },
	}
}

func builtinCriteria() []Criterion {
	return []Criterion{
		{
			Name:  "chocolatey",
			Match: func(s string) bool { return strings.Contains(strings.ToLower(s), "chocolatey") },
			Score: func(item string) (float64, bool) {
				return dataset.FlavorScore(strings.ToLower(strings.TrimSpace(item)))
			},
		},
		{
			Name:  "alphabetical",
			Match: func(s string) bool { return strings.Contains(strings.ToLower(s), "alphabetical") },
			Lex:   true,
		},
		{
			Name:  "numeric",
			Match: func(s string) bool { return strings.Contains(strings.ToLower(s), "numeric value") },
			Score: func(item string) (float64, bool) {
				v, err := strconv.ParseFloat(strings.TrimSpace(item), 64)
				if err != nil {
					return 0, false
				}
				return v, true
			},
		},
	}
}

func builtinPredicates() []Predicate {
	return []Predicate{
		{
			Name: "chocolatey-flavor",
			Match: func(s string) bool {
				return strings.Contains(strings.ToLower(s), "chocolatey flavor")
			},
			Truth: func(item string) (bool, float64) {
				s, ok := dataset.FlavorScore(strings.ToLower(strings.TrimSpace(item)))
				if !ok {
					return false, 0
				}
				const threshold = 0.5
				margin := s - threshold
				if margin < 0 {
					margin = -margin
				}
				return s > threshold, margin * 2
			},
		},
		{
			Name: "numeric-positive",
			Match: func(s string) bool {
				return strings.Contains(strings.ToLower(s), "positive number")
			},
			Truth: func(item string) (bool, float64) {
				v, err := strconv.ParseFloat(strings.TrimSpace(item), 64)
				if err != nil {
					return false, 0
				}
				m := v
				if m < 0 {
					m = -m
				}
				if m > 1 {
					m = 1
				}
				return v > 0, m
			},
		},
	}
}

// similarity is the oracle's perception of how alike two record texts are:
// Jaccard overlap of character trigrams on normalised text. It drives the
// entity-match and grouping answers. Exported via package-level function
// for tests and calibration.
func similarity(a, b string) float64 {
	ta := trigrams(normText(a))
	tb := trigrams(normText(b))
	if len(ta) == 0 || len(tb) == 0 {
		if normText(a) == normText(b) {
			return 1
		}
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	out := make(map[string]bool)
	r := []rune(s)
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = true
	}
	return out
}

// restaurantKnowledge answers a city imputation from a serialized
// restaurant record: the oracle "knows" US metro area codes. It returns
// the gold-form city and whether the key evidence was found.
func restaurantKnowledge(serialized string) (string, bool) {
	// Extract "phone is NNN-..." from the serialization.
	idx := strings.Index(serialized, "phone is ")
	if idx < 0 {
		return "", false
	}
	rest := serialized[idx+len("phone is "):]
	end := strings.IndexAny(rest, ";")
	if end >= 0 {
		rest = rest[:end]
	}
	code := strings.SplitN(strings.TrimSpace(rest), "-", 2)[0]
	return dataset.CityForAreaCode(code)
}

// productSKUKnowledge answers a manufacturer imputation from the SKU
// prefix of the model number in the description ("model number SN482"),
// the way a real LLM recognises vendor SKU patterns.
func productSKUKnowledge(serialized string) (string, bool) {
	idx := strings.Index(serialized, "model number ")
	if idx < 0 {
		return "", false
	}
	rest := strings.TrimSpace(serialized[idx+len("model number "):])
	if end := strings.IndexAny(rest, "; "); end >= 0 {
		rest = rest[:end]
	}
	return dataset.ManufacturerForModelPrefix(rest)
}

// productKnowledge answers a manufacturer imputation from a serialized
// product record via the brand token leading the product name.
func productKnowledge(serialized string) (string, bool) {
	idx := strings.Index(serialized, "name is ")
	if idx < 0 {
		return "", false
	}
	rest := serialized[idx+len("name is "):]
	if end := strings.IndexAny(rest, ";"); end >= 0 {
		rest = rest[:end]
	}
	return dataset.ManufacturerForNameWord(strings.TrimSpace(rest))
}

package sim

import (
	"regexp"
	"strconv"
	"strings"
)

// taskKind enumerates the unit tasks the oracle understands. The
// recognisers are keyed to the toolkit's prompt templates
// (internal/prompt) the way a real model is keyed to instructions.
type taskKind int

const (
	taskUnknown taskKind = iota
	taskSortList
	taskCompare
	taskCompareBatch
	taskRate
	taskMatch
	taskImpute
	taskFilter
	taskCount
	taskGroup
	taskVerify
	taskCategorize
	taskDiscover
)

// task is the structured reading of one prompt.
type task struct {
	kind      taskKind
	criterion string   // sort/compare/rate criterion text
	items     []string // list items / records
	a, b      string   // pair members
	scale     int      // rating scale
	variant   int      // comparison template variant
	cot       bool     // chain-of-thought instruction present
	field     string   // imputation target attribute
	record    string   // serialized record
	examples  []exampleIO
	predicate string // filter/count predicate text
	question  string // verify: original question
	answer    string // verify: proposed answer
	max       int    // discover: category cap
}

type exampleIO struct{ input, output string }

var (
	reSortHead    = regexp.MustCompile(`(?s)^Sort the following \d+ items by (.+?), from most to least\.`)
	reCompareA    = regexp.MustCompile(`(?m)^Item A: (.*)$`)
	reCompareB    = regexp.MustCompile(`(?m)^Item B: (.*)$`)
	reCompareCrit = regexp.MustCompile(`Which item ranks higher by (.+?)\? Answer`)
	reCompareV1   = regexp.MustCompile(`(?s)^You are ranking items by (.+?)\.\nOption A: (.*?)\nOption B: (.*?)\nWhich option ranks higher\?`)
	reCompareV2   = regexp.MustCompile(`(?s)^Here are two candidates to judge by (.+?)\.\nCandidate A is: (.*?)\nCandidate B is: (.*?)\nName the stronger candidate`)
	reBatchHead   = regexp.MustCompile(`^For each of the following \d+ pairs, decide which item ranks higher by (.+?)\.`)
	reBatchPair   = regexp.MustCompile(`(?m)^Pair \d+\. Item A: (.*) \| Item B: (.*)$`)
	reRateHead    = regexp.MustCompile(`On a scale of 1 \(least\) to (\d+) \(most\), rate the following item by (.+?)\.`)
	reRateItem    = regexp.MustCompile(`(?m)^Item: (.*)$`)
	reMatchA      = regexp.MustCompile(`(?m)^Citation A is (.*)$`)
	reMatchB      = regexp.MustCompile(`(?m)^Citation B is (.*)$`)
	reImputeRec   = regexp.MustCompile(`(?m)^Record: (.*)\.$`)
	reImputeField = regexp.MustCompile(`missing attribute "([^"]+)"`)
	reExample     = regexp.MustCompile(`(?m)^Input: (.*)\nOutput: (.*)$`)
	reFilterHead  = regexp.MustCompile(`(?s)^Does the following item satisfy the condition: (.+?)\?`)
	reCountHead   = regexp.MustCompile(`(?s)^Estimate what percentage of the following \d+ items satisfy the condition: (.+?)\.`)
	reGroupHead   = regexp.MustCompile(`^Group the following \d+ records`)
	reGroupRec    = regexp.MustCompile(`(?m)^R(\d+): (.*)$`)
	reVerifyHead  = regexp.MustCompile(`(?s)^A previous assistant was asked:\n(.*)\nIt answered: (.*)\nIs that answer correct\?`)
	reCatHead     = regexp.MustCompile(`^Assign the following item to exactly one of these categories: (.+?)\.`)
	reDiscover    = regexp.MustCompile(`^Propose at most (\d+) category names`)
	reNumbered    = regexp.MustCompile(`(?m)^\d+\. (.*)$`)
)

var (
	reEnvelopeHead = regexp.MustCompile(`^Below are \d+ independent tasks\.`)
	reEnvelopeTask = regexp.MustCompile(`(?m)^### Task \d+[ \t]*$`)
)

// splitEnvelope returns the sub-prompts embedded in a multi-task batch
// envelope (internal/prompt.TaskBatch) in order, or ok=false for any
// other prompt. Sub-prompts are recovered byte-for-byte — each runs from
// the character after its header line to the start of the next header —
// so the oracle can answer them exactly as it would standalone.
func splitEnvelope(prompt string) (subs []string, ok bool) {
	if !reEnvelopeHead.MatchString(prompt) {
		return nil, false
	}
	locs := reEnvelopeTask.FindAllStringIndex(prompt, -1)
	if len(locs) == 0 {
		return nil, false
	}
	for i, loc := range locs {
		start := loc[1]
		if start < len(prompt) && prompt[start] == '\n' {
			start++
		}
		end := len(prompt)
		if i+1 < len(locs) {
			end = locs[i+1][0]
		}
		subs = append(subs, prompt[start:end])
	}
	return subs, true
}

// recognise reads the prompt and extracts the structured task. Prompts
// produced by foreign templates fall through to taskUnknown.
func recognise(prompt string) task {
	switch {
	case reSortHead.MatchString(prompt):
		m := reSortHead.FindStringSubmatch(prompt)
		return task{
			kind:      taskSortList,
			criterion: m[1],
			items:     extractNumbered(prompt),
		}
	case reBatchHead.MatchString(prompt):
		m := reBatchHead.FindStringSubmatch(prompt)
		t := task{kind: taskCompareBatch, criterion: m[1]}
		for _, pm := range reBatchPair.FindAllStringSubmatch(prompt, -1) {
			t.items = append(t.items, pm[1], pm[2])
		}
		if len(t.items) == 0 {
			return task{}
		}
		return t
	case strings.HasPrefix(prompt, "Consider the following two items."):
		a := reCompareA.FindStringSubmatch(prompt)
		b := reCompareB.FindStringSubmatch(prompt)
		c := reCompareCrit.FindStringSubmatch(prompt)
		if a == nil || b == nil || c == nil {
			return task{}
		}
		return task{kind: taskCompare, a: a[1], b: b[1], criterion: c[1], cot: hasCoT(prompt)}
	case reCompareV1.MatchString(prompt):
		m := reCompareV1.FindStringSubmatch(prompt)
		return task{kind: taskCompare, criterion: m[1], a: m[2], b: m[3], variant: 1, cot: hasCoT(prompt)}
	case reCompareV2.MatchString(prompt):
		m := reCompareV2.FindStringSubmatch(prompt)
		return task{kind: taskCompare, criterion: m[1], a: m[2], b: m[3], variant: 2, cot: hasCoT(prompt)}
	case reRateHead.MatchString(prompt):
		m := reRateHead.FindStringSubmatch(prompt)
		it := reRateItem.FindStringSubmatch(prompt)
		if it == nil {
			return task{}
		}
		scale, _ := strconv.Atoi(m[1])
		return task{kind: taskRate, scale: scale, criterion: m[2], a: it[1]}
	case strings.HasPrefix(prompt, "Are Citation A and Citation B the same?"):
		a := reMatchA.FindStringSubmatch(prompt)
		b := reMatchB.FindStringSubmatch(prompt)
		if a == nil || b == nil {
			return task{}
		}
		return task{kind: taskMatch, a: a[1], b: b[1]}
	case strings.HasPrefix(prompt, "Fill in the missing attribute"):
		rec := reImputeRec.FindStringSubmatch(prompt)
		field := reImputeField.FindStringSubmatch(prompt)
		if rec == nil || field == nil {
			return task{}
		}
		t := task{kind: taskImpute, record: rec[1], field: field[1]}
		for _, ex := range reExample.FindAllStringSubmatch(prompt, -1) {
			t.examples = append(t.examples, exampleIO{input: ex[1], output: ex[2]})
		}
		return t
	case reFilterHead.MatchString(prompt):
		m := reFilterHead.FindStringSubmatch(prompt)
		it := reRateItem.FindStringSubmatch(prompt) // same "Item: " line
		if it == nil {
			return task{}
		}
		return task{kind: taskFilter, predicate: m[1], a: it[1]}
	case reCountHead.MatchString(prompt):
		m := reCountHead.FindStringSubmatch(prompt)
		return task{kind: taskCount, predicate: m[1], items: extractNumbered(prompt)}
	case reGroupHead.MatchString(prompt):
		var items []string
		for _, rm := range reGroupRec.FindAllStringSubmatch(prompt, -1) {
			items = append(items, rm[2])
		}
		return task{kind: taskGroup, items: items}
	case reVerifyHead.MatchString(prompt):
		m := reVerifyHead.FindStringSubmatch(prompt)
		return task{kind: taskVerify, question: m[1], answer: strings.TrimSpace(m[2])}
	case reCatHead.MatchString(prompt):
		m := reCatHead.FindStringSubmatch(prompt)
		it := reRateItem.FindStringSubmatch(prompt)
		if it == nil {
			return task{}
		}
		return task{
			kind:  taskCategorize,
			items: splitCategories(m[1]),
			a:     it[1],
		}
	case reDiscover.MatchString(prompt):
		m := reDiscover.FindStringSubmatch(prompt)
		max, _ := strconv.Atoi(m[1])
		return task{kind: taskDiscover, max: max, items: extractNumbered(prompt)}
	default:
		return task{}
	}
}

func hasCoT(prompt string) bool {
	return strings.Contains(prompt, "Think step by step")
}

func extractNumbered(prompt string) []string {
	var items []string
	for _, m := range reNumbered.FindAllStringSubmatch(prompt, -1) {
		items = append(items, m[1])
	}
	return items
}

func splitCategories(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/prompt"
)

func complete(t *testing.T, o *Oracle, p string) llm.Response {
	t.Helper()
	resp, err := o.Complete(context.Background(), llm.Request{Prompt: p})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	return resp
}

func TestDeterministicAtTemperatureZero(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	p := prompt.ComparePair("vanilla bean", "triple chocolate", "how chocolatey they are")
	r1 := complete(t, o, p)
	r2, _ := o.Complete(context.Background(), llm.Request{Prompt: p, Seed: 999})
	if r1.Text != r2.Text {
		t.Fatal("temperature-0 responses should ignore the seed")
	}
}

func TestTemperatureDecorrelatesSeeds(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	// A borderline comparison answered many times at temperature 1 should
	// not always agree.
	p := prompt.ComparePair("cookies and cream", "mint chocolate chip", "how chocolatey they are")
	answers := map[string]bool{}
	for seed := int64(0); seed < 30; seed++ {
		r, err := o.Complete(context.Background(), llm.Request{Prompt: p, Temperature: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		c, err := prompt.ParseChoice(r.Text)
		if err != nil {
			t.Fatalf("unparseable: %q", r.Text)
		}
		answers[c] = true
	}
	if len(answers) != 2 {
		t.Fatalf("borderline pair at temperature 1 gave only %v", answers)
	}
}

func TestUsageAccounting(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	p := prompt.RateItem("vanilla bean", "how chocolatey they are", 7)
	r := complete(t, o, p)
	if r.Usage.PromptTokens <= 0 || r.Usage.CompletionTokens <= 0 || r.Usage.Calls != 1 {
		t.Fatalf("usage = %+v", r.Usage)
	}
	if r.Model != "sim-gpt-3.5-turbo" {
		t.Fatalf("model = %q", r.Model)
	}
}

func TestMaxTokensTruncates(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	p := prompt.SortList(dataset.FlavorNames(), "how chocolatey they are")
	r, err := o.Complete(context.Background(), llm.Request{Prompt: p, MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Usage.CompletionTokens > 5 {
		t.Fatalf("completion exceeded MaxTokens: %d", r.Usage.CompletionTokens)
	}
}

func TestContextCancellation(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Complete(ctx, llm.Request{Prompt: "x"}); err == nil {
		t.Fatal("cancelled context should error")
	}
}

func TestSortFlavorsKeywordFirst(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	p := prompt.SortList(dataset.FlavorNames(), "how chocolatey they are")
	r := complete(t, o, p)
	items := prompt.ParseList(r.Text)
	if len(items) != 20 {
		t.Fatalf("sorted list has %d items, want 20 (no omission at n=20):\n%s", len(items), r.Text)
	}
	// The paper's qualitative finding: "chocolate"-titled flavours lead.
	lead := items[:6]
	withKeyword := 0
	for _, it := range lead {
		if strings.Contains(it, "chocolate") {
			withKeyword++
		}
	}
	if withKeyword < 4 {
		t.Fatalf("only %d of the first 6 are chocolate-titled: %v", withKeyword, lead)
	}
}

func TestSortAlphabeticalLongList(t *testing.T) {
	o := NewNamed("sim-claude-2")
	words := dataset.RandomWords(100, 1)
	p := prompt.SortList(words, "alphabetical order")
	r := complete(t, o, p)
	items := prompt.ParseList(r.Text)
	if len(items) < 85 || len(items) > 103 {
		t.Fatalf("returned %d items for a 100-word sort", len(items))
	}
	// Count how many returned items are real (non-hallucinated).
	in := map[string]bool{}
	for _, w := range words {
		in[w] = true
	}
	real, fake := 0, 0
	for _, it := range items {
		if in[it] {
			real++
		} else {
			fake++
		}
	}
	if real < 88 || real > 100 {
		t.Fatalf("real items = %d, want a few omissions only", real)
	}
	if fake > 4 {
		t.Fatalf("hallucinated %d items, want 0-2ish", fake)
	}
	// The kept real items must be in nearly sorted order.
	var kept []string
	for _, it := range items {
		if in[it] {
			kept = append(kept, it)
		}
	}
	inversions := 0
	for i := 0; i+1 < len(kept); i++ {
		if kept[i] > kept[i+1] {
			inversions++
		}
	}
	if inversions > 3 {
		t.Fatalf("kept items have %d adjacent inversions", inversions)
	}
}

func TestSortSmallListNoOmission(t *testing.T) {
	o := NewNamed("sim-claude-2")
	words := dataset.RandomWords(15, 2)
	p := prompt.SortList(words, "alphabetical order")
	items := prompt.ParseList(complete(t, o, p).Text)
	if len(items) != 15 {
		t.Fatalf("small list should not lose items: got %d", len(items))
	}
}

func TestCompareEasyPairReliable(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	// Maximal score gap: triple chocolate vs lemon sorbet. Over many
	// prompt variants (decorrelated noise), the easy answer dominates.
	correct := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		a, b := "triple chocolate", "lemon sorbet"
		want := "A"
		if i%2 == 1 {
			a, b = b, a
			want = "B"
		}
		// Vary criterion phrasing word order? Keep prompts distinct by
		// swapping; sample both orders.
		p := prompt.ComparePair(a, b, "how chocolatey they are")
		c, err := prompt.ParseChoice(complete(t, o, p).Text)
		if err != nil {
			t.Fatal(err)
		}
		if c == want {
			correct++
		}
	}
	if correct < trials*9/10 {
		t.Fatalf("easy pair correct only %d/%d", correct, trials)
	}
}

func TestCompareAlphabetical(t *testing.T) {
	o := NewNamed("sim-claude-2")
	p := prompt.ComparePair("apple", "zebra", "alphabetical order")
	c, err := prompt.ParseChoice(complete(t, o, p).Text)
	if err != nil {
		t.Fatal(err)
	}
	if c != "A" {
		t.Fatalf("apple should precede zebra, got %q", c)
	}
}

func TestRateWithinScale(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	for _, item := range dataset.FlavorNames() {
		p := prompt.RateItem(item, "how chocolatey they are", 7)
		r, err := prompt.ParseRating(complete(t, o, p).Text, 7)
		if err != nil {
			t.Fatalf("rating unparseable for %q", item)
		}
		if r < 1 || r > 7 {
			t.Fatalf("rating %d out of scale", r)
		}
	}
	// Extremes should separate.
	top, _ := prompt.ParseRating(complete(t, o, prompt.RateItem("chocolate fudge brownie", "how chocolatey they are", 7)).Text, 7)
	bottom, _ := prompt.ParseRating(complete(t, o, prompt.RateItem("lemon sorbet", "how chocolatey they are", 7)).Text, 7)
	if top <= bottom {
		t.Fatalf("top=%d bottom=%d", top, bottom)
	}
}

func TestMatchPairBehaviour(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	same := "J. Wang. indexing the positions of continuously moving objects. SIGMOD Conference, 2002"
	sameTypo := "J. Wang. indexing the positions of continously moving objects. SIGMOD, 2002"
	other := "K. Patel. robust sampling for federated learning. KDD, 2015"

	yes, err := prompt.ParseYesNo(complete(t, o, prompt.MatchPair(same, sameTypo)).Text)
	if err != nil || !yes {
		t.Fatalf("near-identical citations should match: %v %v", yes, err)
	}
	no, err := prompt.ParseYesNo(complete(t, o, prompt.MatchPair(same, other)).Text)
	if err != nil || no {
		t.Fatalf("unrelated citations should not match: %v %v", no, err)
	}
}

func TestImputeCityFormattingDrift(t *testing.T) {
	o := NewNamed("sim-claude")
	rec := "name is golden dragon; addr is 123 broadway; phone is 212-555-0100; type is pizza"
	// Zero-shot: the model answers in its own display form.
	p := prompt.Impute(rec, "city", nil)
	v, err := prompt.ParseValue(complete(t, o, p).Text)
	if err != nil {
		t.Fatal(err)
	}
	if v != "New York City" && v != "new york" {
		// Either drifted display form or (rarely) an outright mistake; the
		// common case must be the display form.
		t.Logf("zero-shot value = %q", v)
	}
	if v == "new york" {
		t.Fatalf("zero-shot answer should drift to display form, got gold form")
	}
	// Few-shot with gold-form examples: the model copies the format.
	exs := []prompt.Example{
		{Input: "name is blue cafe; phone is 404-555-0199", Output: "atlanta"},
		{Input: "name is pike grill; phone is 206-555-0101", Output: "seattle"},
	}
	p = prompt.Impute(rec, "city", exs)
	v, err = prompt.ParseValue(complete(t, o, p).Text)
	if err != nil {
		t.Fatal(err)
	}
	if v != "new york" {
		t.Fatalf("few-shot answer = %q, want gold form \"new york\"", v)
	}
}

func TestImputeManufacturerFromName(t *testing.T) {
	o := NewNamed("sim-claude")
	rec := "name is Garmin nuvi gps X200; description is nuvi gps with model number X200; price is $99.00"
	exs := []prompt.Example{{Input: "name is Sony bravia lcd tv B300", Output: "Sony"}}
	v, err := prompt.ParseValue(complete(t, o, prompt.Impute(rec, "manufacturer", exs)).Text)
	if err != nil {
		t.Fatal(err)
	}
	if v != "Garmin" {
		t.Fatalf("manufacturer = %q, want Garmin", v)
	}
}

func TestImputeUnknownField(t *testing.T) {
	o := NewNamed("sim-claude")
	v, err := prompt.ParseValue(complete(t, o, prompt.Impute("a is b", "mystery", nil)).Text)
	if err != nil {
		t.Fatal(err)
	}
	if v == "" {
		t.Fatal("even unknown fields should produce some value")
	}
}

func TestFilterObviousItems(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	yes, err := prompt.ParseYesNo(complete(t, o, prompt.FilterItem("triple chocolate", "it is a chocolatey flavor")).Text)
	if err != nil || !yes {
		t.Fatalf("triple chocolate should pass the filter: %v %v", yes, err)
	}
	no, err := prompt.ParseYesNo(complete(t, o, prompt.FilterItem("lemon sorbet", "it is a chocolatey flavor")).Text)
	if err != nil || no {
		t.Fatalf("lemon sorbet should fail the filter: %v %v", no, err)
	}
}

func TestCountBatchEstimate(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	items := dataset.FlavorNames()
	p := prompt.CountBatch(items, "it is a chocolatey flavor")
	frac, err := prompt.ParsePercent(complete(t, o, p).Text)
	if err != nil {
		t.Fatal(err)
	}
	// True fraction is 10/20 = 0.5; estimate should be in a broad band.
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("estimate %f too far from 0.5", frac)
	}
}

func TestGroupRecordsPartition(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	recs := []string{
		"J. Wang. indexing moving objects. SIGMOD, 2002",
		"J. Wang. indexing moving objcts. SIGMOD Conference, 2002",
		"K. Patel. federated learning at scale. KDD, 2015",
	}
	groups := prompt.ParseGroups(complete(t, o, prompt.GroupRecords(recs)).Text, len(recs))
	covered := map[int]bool{}
	for _, g := range groups {
		for _, i := range g {
			covered[i] = true
		}
	}
	if len(covered) != 3 {
		t.Fatalf("groups do not cover all records: %v", groups)
	}
}

func TestVerifyAgreesWithOwnAnswer(t *testing.T) {
	o := NewNamed("sim-gpt-4")
	q := prompt.ComparePair("triple chocolate", "lemon sorbet", "how chocolatey they are")
	own, err := prompt.ParseChoice(complete(t, o, q).Text)
	if err != nil {
		t.Fatal(err)
	}
	v, err := prompt.ParseYesNo(complete(t, o, prompt.Verify(q, own)).Text)
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Fatal("verifier should agree with its own confident answer")
	}
	wrong := "A"
	if own == "A" {
		wrong = "B"
	}
	v, err = prompt.ParseYesNo(complete(t, o, prompt.Verify(q, wrong)).Text)
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Fatal("verifier should reject the opposite answer on an easy pair")
	}
}

func TestCategorize(t *testing.T) {
	o := NewNamed("sim-gpt-4")
	resp := complete(t, o, prompt.Categorize("chocolate fudge brownie", []string{"chocolate desserts", "fruit desserts"}))
	if !strings.Contains(resp.Text, "chocolate") {
		t.Fatalf("categorize = %q", resp.Text)
	}
}

func TestDiscoverCategories(t *testing.T) {
	o := NewNamed("sim-gpt-4")
	resp := complete(t, o, prompt.DiscoverCategories([]string{"red apple", "green pear", "blue car"}, 2))
	lines := prompt.ParseList(resp.Text)
	if len(lines) == 0 || len(lines) > 2 {
		t.Fatalf("discover = %v", lines)
	}
}

func TestUnknownPromptRefusal(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	r := complete(t, o, "please write a poem about databases")
	if !strings.Contains(r.Text, "don't understand") {
		t.Fatalf("unknown prompt response = %q", r.Text)
	}
}

func TestRegisterCriterion(t *testing.T) {
	o := NewNamed("sim-gpt-4")
	o.RegisterCriterion(Criterion{
		Name:  "length",
		Match: func(s string) bool { return strings.Contains(s, "text length") },
		Score: func(item string) (float64, bool) { return float64(len(item)) / 20, true },
	})
	p := prompt.ComparePair("aaaaaaaaaaaaaaaaaaaa", "b", "text length")
	c, err := prompt.ParseChoice(complete(t, o, p).Text)
	if err != nil || c != "A" {
		t.Fatalf("custom criterion: %q %v", c, err)
	}
}

func TestRegisterPredicate(t *testing.T) {
	o := NewNamed("sim-gpt-4")
	o.RegisterPredicate(Predicate{
		Name:  "long",
		Match: func(s string) bool { return strings.Contains(s, "is long") },
		Truth: func(item string) (bool, float64) { return len(item) > 5, 1 },
	})
	yes, err := prompt.ParseYesNo(complete(t, o, prompt.FilterItem("abcdefghij", "it is long")).Text)
	if err != nil || !yes {
		t.Fatalf("custom predicate: %v %v", yes, err)
	}
}

func TestSimilarityProperties(t *testing.T) {
	if s := similarity("abc def", "abc def"); s != 1 {
		t.Fatalf("self similarity = %f", s)
	}
	if s := similarity("abcdefgh", "zzzzyyyy"); s != 0 {
		t.Fatalf("disjoint similarity = %f", s)
	}
	if similarity("a", "a") != 1 {
		t.Fatal("short identical strings should be similar")
	}
	if similarity("", "x") != 0 {
		t.Fatal("empty vs non-empty should be 0")
	}
	a, b := "indexing moving objects", "indexing moving objcts"
	if s := similarity(a, b); s < 0.5 {
		t.Fatalf("typo variant similarity = %f, want high", s)
	}
}

func TestCompareBatchAnswers(t *testing.T) {
	o := NewNamed("sim-gpt-3.5-turbo")
	pairs := []prompt.PairItem{
		{A: "triple chocolate", B: "lemon sorbet"},
		{A: "peach cobbler", B: "chocolate fudge brownie"},
		{A: "9", B: "3"},
	}
	p := prompt.CompareBatch(pairs[:2], "how chocolatey they are")
	answers, err := prompt.ParseChoices(complete(t, o, p).Text, 2)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0] != "A" {
		t.Errorf("pair 1: got %q, want A (easy gap)", answers[0])
	}
	if answers[1] != "B" {
		t.Errorf("pair 2: got %q, want B (easy gap)", answers[1])
	}
	// Numeric criterion works in batches too.
	p = prompt.CompareBatch(pairs[2:], "numeric value")
	answers, err = prompt.ParseChoices(complete(t, o, p).Text, 1)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0] != "A" {
		t.Errorf("numeric pair: got %q, want A", answers[0])
	}
}

func TestCompareBatchSkipsOccasionally(t *testing.T) {
	// Large batches occasionally drop a pair (the long-prompt omission
	// failure mode); across many decorrelated prompts at least one answer
	// set should be incomplete, and every response must stay parseable.
	o := NewNamed("sim-gpt-3.5-turbo")
	fillers := dataset.FlavorNames()
	sawSkip := false
	for trial := 0; trial < 40; trial++ {
		var pairs []prompt.PairItem
		for f := 0; f < 12; f++ {
			pairs = append(pairs, prompt.PairItem{
				A: fillers[(trial+f)%len(fillers)],
				B: fillers[(trial+f+9)%len(fillers)],
			})
		}
		answers, err := prompt.ParseChoices(complete(t, o, prompt.CompareBatch(pairs, "how chocolatey they are")).Text, len(pairs))
		if err != nil {
			t.Fatalf("trial %d unparseable: %v", trial, err)
		}
		if len(answers) < len(pairs) {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Error("no batch ever skipped a pair; omission model inactive")
	}
}

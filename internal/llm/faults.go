package llm

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Typed upstream fault classes. Transient, timeout, and rate-limit
// failures are the retryable kinds a resilience policy is allowed to
// heal; ErrPermanent marks a request the upstream will never answer —
// retrying it is wasted spend, so policies must pass it through and let
// degraded-mode execution (quarantine) deal with the record. Callers
// classify with errors.Is.
var (
	ErrTransient = errors.New("llm: transient upstream failure")
	ErrTimeout   = errors.New("llm: upstream timeout")
	ErrRateLimit = errors.New("llm: upstream rate limited")
	ErrPermanent = errors.New("llm: permanent upstream failure")
)

// FaultPlan configures deterministic fault injection. Probabilities are
// per-call in [0,1] and are decided by hashing (Seed, prompt, attempt
// index), so a plan replays identically whatever the concurrency — and a
// retried prompt rolls fresh dice each attempt, so transient faults
// really are transient. Permanent faults hash the prompt alone: a
// poisoned prompt stays poisoned across retries, which is what the
// quarantine path exists for. The zero plan injects nothing and the
// wrapper is a pure passthrough.
type FaultPlan struct {
	// Seed decorrelates plans; two plans with different seeds poison
	// different prompts.
	Seed int64
	// Transient, Timeout, RateLimit are per-attempt probabilities of the
	// corresponding retryable error.
	Transient float64
	Timeout   float64
	RateLimit float64
	// Permanent is the per-prompt probability of a non-retryable failure:
	// every attempt at an afflicted prompt fails with ErrPermanent.
	Permanent float64
	// Malformed is the per-attempt probability the upstream "succeeds" but
	// returns garbage in place of the completion text.
	Malformed float64
	// WrongSection is the per-attempt probability a TaskBatch envelope
	// reply comes back with its section headers renumbered, so waiters
	// find their section missing and fall back to solo retries. Non-batch
	// replies are truncated instead.
	WrongSection float64
	// BurstEvery/BurstLen carve repeating outage windows out of the
	// wrapper's global call sequence: calls with index i where
	// i mod BurstEvery < BurstLen fail with ErrTransient regardless of the
	// probabilities. BurstEvery 0 disables bursts.
	BurstEvery int
	BurstLen   int
}

// Zero reports whether the plan injects nothing.
func (p FaultPlan) Zero() bool {
	return p.Transient == 0 && p.Timeout == 0 && p.RateLimit == 0 &&
		p.Permanent == 0 && p.Malformed == 0 && p.WrongSection == 0 &&
		(p.BurstEvery <= 0 || p.BurstLen <= 0)
}

// ParseFaultPlan parses the "key=value,..." flag syntax of declctl
// -faults. Keys: seed, transient, timeout, ratelimit, permanent,
// malformed, wrong-section, burst-every, burst-len. An empty spec is the
// zero plan.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var p FaultPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("llm: fault plan %q: want key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed", "burst-every", "burst-len":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("llm: fault plan %s=%q: %w", key, val, err)
			}
			switch key {
			case "seed":
				p.Seed = n
			case "burst-every":
				p.BurstEvery = int(n)
			case "burst-len":
				p.BurstLen = int(n)
			}
		case "transient", "timeout", "ratelimit", "permanent", "malformed", "wrong-section":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("llm: fault plan %s=%q: want probability in [0,1]", key, val)
			}
			switch key {
			case "transient":
				p.Transient = f
			case "timeout":
				p.Timeout = f
			case "ratelimit":
				p.RateLimit = f
			case "permanent":
				p.Permanent = f
			case "malformed":
				p.Malformed = f
			case "wrong-section":
				p.WrongSection = f
			}
		default:
			return p, fmt.Errorf("llm: fault plan: unknown key %q", key)
		}
	}
	return p, nil
}

// FaultStats counts what a FaultyModel actually injected.
type FaultStats struct {
	Calls        int // completions attempted through the wrapper
	Transient    int
	Timeout      int
	RateLimit    int
	Permanent    int
	Malformed    int
	WrongSection int
	Burst        int // transient errors forced by a burst window
}

// Injected returns the total number of faulted calls.
func (s FaultStats) Injected() int {
	return s.Transient + s.Timeout + s.RateLimit + s.Permanent +
		s.Malformed + s.WrongSection + s.Burst
}

// FaultyModel injects deterministic faults below a resilience policy (and
// therefore below the cache and batcher, which only ever see healed
// answers). It composes with WithLatency in either order.
type FaultyModel struct {
	inner Model
	plan  FaultPlan

	calls atomic.Int64 // global call index, drives burst windows

	mu       sync.Mutex
	attempts map[string]int // per-prompt attempt index, drives probability dice
	stats    FaultStats
}

// WithFaults wraps m with the plan. A zero plan returns a wrapper that
// forwards every call byte-identically.
func WithFaults(m Model, plan FaultPlan) *FaultyModel {
	return &FaultyModel{inner: m, plan: plan, attempts: make(map[string]int)}
}

// Name implements Model.
func (f *FaultyModel) Name() string { return f.inner.Name() }

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultyModel) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// mix64 is the 64-bit murmur finalizer. FNV-1a alone leaves a trailing
// byte's influence in a narrow band of bits, so two hashes differing only
// in the attempt index would land within 2^-24 of each other; the
// finalizer avalanches the difference across the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// roll maps a labeled hash of (seed, prompt[, attempt]) to [0,1).
func (f *FaultyModel) roll(label, prompt string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", f.plan.Seed, label, prompt, attempt)
	return float64(mix64(h.Sum64())>>11) / float64(1<<53)
}

// Complete implements Model.
func (f *FaultyModel) Complete(ctx context.Context, req Request) (Response, error) {
	if f.plan.Zero() {
		return f.inner.Complete(ctx, req)
	}
	call := int(f.calls.Add(1)) - 1

	f.mu.Lock()
	attempt := f.attempts[req.Prompt]
	f.attempts[req.Prompt] = attempt + 1
	f.stats.Calls++
	fail := func(kind *int, err error) (Response, error) {
		*kind = *kind + 1
		f.mu.Unlock()
		return Response{}, err
	}

	// Permanent poisoning hashes the prompt alone: retries never help.
	if f.plan.Permanent > 0 && f.roll("permanent", req.Prompt, 0) < f.plan.Permanent {
		return fail(&f.stats.Permanent, fmt.Errorf("%w (injected, prompt poisoned)", ErrPermanent))
	}
	// Burst windows fail by global call order, modeling a full outage.
	if f.plan.BurstEvery > 0 && f.plan.BurstLen > 0 && call%f.plan.BurstEvery < f.plan.BurstLen {
		return fail(&f.stats.Burst, fmt.Errorf("%w (injected, burst call %d)", ErrTransient, call))
	}
	u := f.roll("attempt", req.Prompt, attempt)
	switch cut := 0.0; {
	case u < cut+f.plan.Transient:
		return fail(&f.stats.Transient, fmt.Errorf("%w (injected, attempt %d)", ErrTransient, attempt))
	case u < cut+f.plan.Transient+f.plan.Timeout:
		return fail(&f.stats.Timeout, fmt.Errorf("%w (injected, attempt %d)", ErrTimeout, attempt))
	case u < cut+f.plan.Transient+f.plan.Timeout+f.plan.RateLimit:
		return fail(&f.stats.RateLimit, fmt.Errorf("%w (injected, attempt %d)", ErrRateLimit, attempt))
	}
	malformed := f.plan.Malformed > 0 && f.roll("malformed", req.Prompt, attempt) < f.plan.Malformed
	wrongSection := f.plan.WrongSection > 0 && f.roll("wrong-section", req.Prompt, attempt) < f.plan.WrongSection
	f.mu.Unlock()

	resp, err := f.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	// Response-corruption faults: the call "succeeds" but the text is
	// damaged, exercising the parse-and-retry paths above the wrapper.
	if malformed {
		resp.Text = corruptText(resp.Text)
		f.mu.Lock()
		f.stats.Malformed++
		f.mu.Unlock()
	}
	if wrongSection {
		resp.Text = corruptSections(resp.Text)
		f.mu.Lock()
		f.stats.WrongSection++
		f.mu.Unlock()
	}
	return resp, err
}

// corruptText truncates the reply mid-stream and appends junk, the shape
// of a dropped connection or a decoder bug.
func corruptText(s string) string {
	if len(s) > 1 {
		s = s[:len(s)/2]
	}
	return s + "\x00<<truncated>>"
}

var sectionHeaderRe = regexp.MustCompile(`(?m)^### Task (\d+)[ \t]*$`)

// corruptSections renumbers TaskBatch section headers far out of range,
// so every waiter's section goes missing and the batcher must retry each
// task solo. Replies without section headers are truncated instead.
func corruptSections(s string) string {
	if !sectionHeaderRe.MatchString(s) {
		return corruptText(s)
	}
	n := 0
	return sectionHeaderRe.ReplaceAllStringFunc(s, func(string) string {
		n++
		return fmt.Sprintf("### Task %d", 9000+n)
	})
}

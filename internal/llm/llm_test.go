package llm

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/token"
)

func echoModel(name string) Func {
	return Func{
		ModelName: name,
		Fn: func(ctx context.Context, req Request) (Response, error) {
			return Response{
				Text:  req.Prompt,
				Model: name,
				Usage: token.Usage{PromptTokens: 2, CompletionTokens: 2, Calls: 1},
			}, nil
		},
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(echoModel("b"))
	r.Register(echoModel("a"))
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names = %v", got)
	}
	m, err := r.Get("a")
	if err != nil || m.Name() != "a" {
		t.Fatalf("Get = %v, %v", m, err)
	}
	if _, err := r.Get("zzz"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	// Re-registering replaces.
	r.Register(Func{ModelName: "a", Fn: func(ctx context.Context, req Request) (Response, error) {
		return Response{Text: "replaced"}, nil
	}})
	m, _ = r.Get("a")
	resp, _ := m.Complete(context.Background(), Request{})
	if resp.Text != "replaced" {
		t.Fatal("Register should replace")
	}
}

func TestCountingModel(t *testing.T) {
	c := NewCounting(echoModel("m"))
	if c.Name() != "m" {
		t.Fatalf("Name = %q", c.Name())
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(context.Background(), Request{Prompt: "hi"}); err != nil {
			t.Fatal(err)
		}
	}
	total := c.Total()
	if total.Calls != 3 || total.PromptTokens != 6 {
		t.Fatalf("Total = %+v", total)
	}
	prev := c.Reset()
	if prev != total {
		t.Fatalf("Reset returned %+v, want %+v", prev, total)
	}
	if !c.Total().IsZero() {
		t.Fatal("Total after Reset should be zero")
	}
}

func TestCountingModelSkipsErrors(t *testing.T) {
	fail := Func{ModelName: "f", Fn: func(ctx context.Context, req Request) (Response, error) {
		return Response{Usage: token.Usage{PromptTokens: 100, Calls: 1}}, fmt.Errorf("boom")
	}}
	c := NewCounting(fail)
	_, err := c.Complete(context.Background(), Request{})
	if err == nil {
		t.Fatal("want error")
	}
	if !c.Total().IsZero() {
		t.Fatal("errored calls must not count usage")
	}
}

func TestCountingModelConcurrent(t *testing.T) {
	c := NewCounting(echoModel("m"))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Complete(context.Background(), Request{Prompt: "x"})
		}()
	}
	wg.Wait()
	if c.Total().Calls != 50 {
		t.Fatalf("Calls = %d, want 50", c.Total().Calls)
	}
}

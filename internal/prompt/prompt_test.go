package prompt

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestSortListTemplate(t *testing.T) {
	p := SortList([]string{"vanilla", "chocolate"}, "how chocolatey they are")
	for _, want := range []string{"Sort the following 2 items", "1. vanilla", "2. chocolate", "how chocolatey"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
}

func TestComparePairTemplate(t *testing.T) {
	p := ComparePair("x", "y", "alphabetical order")
	for _, want := range []string{"Item A: x", "Item B: y", "A or B"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestMatchPairUsesPaperPhrasing(t *testing.T) {
	p := MatchPair("cit a text", "cit b text")
	if !strings.Contains(p, "Are Citation A and Citation B the same?") {
		t.Error("prompt should use the paper's exact question")
	}
	if !strings.Contains(p, "Start your response with Yes or No") {
		t.Error("prompt should pin the answer format")
	}
}

func TestImputeWithExamples(t *testing.T) {
	p := Impute("name is x; addr is y", "city", []Example{{Input: "name is a", Output: "atlanta"}})
	for _, want := range []string{"Here are some examples:", "Input: name is a", "Output: atlanta", `missing attribute "city"`} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
	if strings.Contains(Impute("r", "f", nil), "examples") {
		t.Error("zero-shot prompt should not mention examples")
	}
}

func TestOtherTemplatesRender(t *testing.T) {
	if p := RateItem("x", "how chocolatey", 7); !strings.Contains(p, "1 (least) to 7 (most)") {
		t.Errorf("RateItem: %s", p)
	}
	if p := FilterItem("x", "is positive"); !strings.Contains(p, "is positive") {
		t.Errorf("FilterItem: %s", p)
	}
	if p := CountBatch([]string{"a", "b"}, "is even"); !strings.Contains(p, "percentage") {
		t.Errorf("CountBatch: %s", p)
	}
	if p := GroupRecords([]string{"r one", "r two"}); !strings.Contains(p, "R2: r two") {
		t.Errorf("GroupRecords: %s", p)
	}
	if p := Verify("q?", "42"); !strings.Contains(p, "It answered: 42") {
		t.Errorf("Verify: %s", p)
	}
	if p := Categorize("x", []string{"a", "b"}); !strings.Contains(p, "a, b") {
		t.Errorf("Categorize: %s", p)
	}
	if p := DiscoverCategories([]string{"x"}, 5); !strings.Contains(p, "at most 5") {
		t.Errorf("DiscoverCategories: %s", p)
	}
}

func TestParseList(t *testing.T) {
	resp := "Here are the sorted items:\n1. chocolate fudge\n2) vanilla\nplain line\n\n"
	got := ParseList(resp)
	want := []string{"chocolate fudge", "vanilla", "plain line"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseList = %v, want %v", got, want)
	}
	if got := ParseList(""); len(got) != 0 {
		t.Fatalf("empty response = %v", got)
	}
}

func TestParseChoice(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"A", "A"},
		{"B.", "B"},
		{"a", "A"},
		{"Item B is more chocolatey", "B"},
		{"I choose A because it is darker.", "A"},
		{"The answer is b", "B"},
		{"First A seems right, but actually B", "B"}, // last standalone letter
	}
	for _, c := range cases {
		got, err := ParseChoice(c.in)
		if err != nil {
			t.Errorf("ParseChoice(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseChoice(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := ParseChoice("neither option works"); !errors.Is(err, ErrUnparseable) {
		t.Errorf("want ErrUnparseable, got %v", err)
	}
	if _, err := ParseChoice("  "); !errors.Is(err, ErrUnparseable) {
		t.Errorf("want ErrUnparseable on empty, got %v", err)
	}
}

func TestParseYesNo(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"Yes", true},
		{"yes, they are the same.", true},
		{"No.", false},
		{"NO they differ", false},
		{"I think the answer is yes", true},
		{"It is clear: no", false},
		// Paper's chain-of-thought failure: "not the same...They are the
		// same" — leading "no"-bearing analysis; the first token wins.
		{"They are not the same... wait, they are the same.", false},
	}
	for _, c := range cases {
		got, err := ParseYesNo(c.in)
		if err != nil {
			t.Errorf("ParseYesNo(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseYesNo(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseYesNo("maybe"); !errors.Is(err, ErrUnparseable) {
		t.Errorf("want ErrUnparseable, got %v", err)
	}
}

func TestParseYesNoFirstOccurrenceWins(t *testing.T) {
	got, err := ParseYesNo("Clearly yes, not no.")
	if err != nil || got != true {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestParseRating(t *testing.T) {
	got, err := ParseRating("I would say 5 out of 7", 7)
	if err != nil || got != 5 {
		t.Fatalf("got %d, %v", got, err)
	}
	got, _ = ParseRating("42", 7)
	if got != 7 {
		t.Fatalf("clamp high = %d", got)
	}
	got, _ = ParseRating("-3", 7)
	if got != 1 {
		t.Fatalf("clamp low = %d", got)
	}
	if _, err := ParseRating("no number here", 7); !errors.Is(err, ErrUnparseable) {
		t.Errorf("want ErrUnparseable, got %v", err)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"new york", "new york"},
		{"Answer: Sony", "Sony"},
		{"The value is Garmin.", "Garmin"},
		{"\n\n  atlanta  \n", "atlanta"},
		{`"chicago"`, "chicago"},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := ParseValue("\n  \n"); !errors.Is(err, ErrUnparseable) {
		t.Errorf("want ErrUnparseable, got %v", err)
	}
}

func TestParsePercent(t *testing.T) {
	got, err := ParsePercent("Roughly 40% of the items")
	if err != nil || got != 0.40 {
		t.Fatalf("got %f, %v", got, err)
	}
	got, err = ParsePercent("about 25")
	if err != nil || got != 0.25 {
		t.Fatalf("bare number: got %f, %v", got, err)
	}
	if got, _ := ParsePercent("150%"); got != 1 {
		t.Fatalf("clamp = %f", got)
	}
	if _, err := ParsePercent("none"); !errors.Is(err, ErrUnparseable) {
		t.Errorf("want ErrUnparseable, got %v", err)
	}
}

func TestParseGroups(t *testing.T) {
	resp := "group 1: R1, R3\ngroup 2: R2\nnoise line"
	got := ParseGroups(resp, 4)
	want := [][]int{{0, 2}, {1}, {3}} // R4 unmentioned -> singleton
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseGroups = %v, want %v", got, want)
	}
	// Duplicate and out-of-range references are dropped.
	got = ParseGroups("group: R1, R1, R9", 2)
	want = [][]int{{0}, {1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseGroups junk = %v, want %v", got, want)
	}
}

func TestParseGroupsEverythingCovered(t *testing.T) {
	for total := 1; total <= 6; total++ {
		groups := ParseGroups("group: R1, R2", total)
		covered := map[int]bool{}
		for _, g := range groups {
			for _, i := range g {
				if covered[i] {
					t.Fatalf("index %d covered twice", i)
				}
				covered[i] = true
			}
		}
		if len(covered) != total {
			t.Fatalf("total=%d covered=%d", total, len(covered))
		}
	}
}

func TestCompareBatchTemplate(t *testing.T) {
	p := CompareBatch([]PairItem{{A: "x", B: "y"}, {A: "u", B: "v"}}, "numeric value")
	for _, want := range []string{"2 pairs", "Pair 1. Item A: x | Item B: y", "Pair 2. Item A: u | Item B: v"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
}

func TestParseChoices(t *testing.T) {
	resp := "1: A\n2: B\nPair 3: A\n4. b\nnoise"
	got, err := ParseChoices(resp, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "A", 1: "B", 2: "A", 3: "B"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseChoices = %v, want %v", got, want)
	}
	// Skipped pairs are simply absent.
	got, err = ParseChoices("2: A", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[1] != "A" {
		t.Fatalf("sparse = %v", got)
	}
	// Out-of-range indices dropped; all-junk is an error.
	if _, err := ParseChoices("9: A", 3); !errors.Is(err, ErrUnparseable) {
		t.Fatalf("out-of-range only should be unparseable, got %v", err)
	}
	if _, err := ParseChoices("nothing here", 3); !errors.Is(err, ErrUnparseable) {
		t.Fatalf("junk should be unparseable, got %v", err)
	}
}

func TestComparePairVariants(t *testing.T) {
	seen := map[string]bool{}
	for v := 0; v < CompareTemplateCount; v++ {
		p := ComparePairVariant(v, "x", "y", "numeric value", false)
		if seen[p] {
			t.Fatalf("variant %d duplicates another phrasing", v)
		}
		seen[p] = true
		for _, want := range []string{"x", "y", "numeric value"} {
			if !strings.Contains(p, want) {
				t.Errorf("variant %d missing %q", v, want)
			}
		}
		if strings.Contains(p, "Think step by step") {
			t.Errorf("variant %d has CoT without asking", v)
		}
	}
	// CoT suffix appears when requested; variant index wraps.
	p := ComparePairVariant(CompareTemplateCount+1, "x", "y", "c", true)
	if !strings.Contains(p, "Think step by step") {
		t.Error("CoT suffix missing")
	}
	if p2 := ComparePairVariant(1, "x", "y", "c", true); p != p2 {
		t.Error("variant index should wrap modulo the count")
	}
	if ComparePair("x", "y", "c") != ComparePairVariant(0, "x", "y", "c", false) {
		t.Error("ComparePair must be variant 0")
	}
}

func TestParseChoiceCoTResponses(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Let me think step by step. At first glance the stronger one seems to be B. However, weighing again. Comparing directly, A holds the edge.\nAnswer: A\n", "A"},
		{"Reasoning about a few things here... the answer is B", "B"},
		{"Candidate B is clearly stronger given a number of factors.", "B"},
	}
	for _, c := range cases {
		got, err := ParseChoice(c.in)
		if err != nil {
			t.Errorf("ParseChoice(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseChoice(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// A long reasoning text with only lowercase articles must NOT parse.
	if _, err := ParseChoice("this is a long piece of text with a lot of words and no choice at all"); err == nil {
		t.Error("articles must not be mistaken for answers")
	}
}

// Package prompt is the template library of the toolkit: it renders every
// unit task the declarative engine issues (sort a list, compare a pair,
// rate an item, match two records, impute a value, filter, count, group,
// verify) into plain text, and parses the model's free-text responses back
// into structured answers.
//
// The paper (Section 4, "Mitigating Prompt Brittleness") stresses that
// reliably extracting an answer from an LLM response is itself a data
// management problem; the parsers here are deliberately defensive —
// tolerating explanations, prefixes, re-statements and formatting noise —
// and return ErrUnparseable when no answer can be extracted so callers can
// retry or escalate.
package prompt

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ErrUnparseable reports that no structured answer could be extracted from
// a model response. Callers typically retry the task or route it to a
// quality-control fallback.
var ErrUnparseable = errors.New("prompt: response is unparseable")

// Example is one few-shot demonstration embedded in a prompt.
type Example struct {
	// Input is the example task text (e.g. a serialized record).
	Input string
	// Output is the desired answer.
	Output string
}

// renderExamples produces the canonical few-shot block used by every
// template. An empty slice renders to "".
func renderExamples(examples []Example) string {
	if len(examples) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Here are some examples:\n")
	for _, ex := range examples {
		fmt.Fprintf(&b, "Input: %s\nOutput: %s\n", ex.Input, ex.Output)
	}
	b.WriteString("\n")
	return b.String()
}

// SortList renders the one-prompt sorting task: all items in a single
// prompt, asking for the full ordering, best first.
func SortList(items []string, criterion string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sort the following %d items by %s, from most to least.\n", len(items), criterion)
	b.WriteString("Return only the sorted items, one per line, numbered.\n\nItems:\n")
	for i, it := range items {
		fmt.Fprintf(&b, "%d. %s\n", i+1, it)
	}
	return b.String()
}

// ComparePair renders a pairwise comparison task. The answer is expected
// to be "A" or "B".
func ComparePair(a, b, criterion string) string {
	return ComparePairVariant(0, a, b, criterion, false)
}

// CompareTemplateCount is the number of built-in phrasings for the
// pairwise comparison task. Section 4 of the paper ("Mitigating Prompt
// Brittleness") observes that slight rewordings shift accuracy and that
// the effective phrasing differs between models; the toolkit therefore
// ships several templates and lets the planner pick per model.
const CompareTemplateCount = 3

// ComparePairVariant renders one of the CompareTemplateCount phrasings of
// the comparison task. Setting cot appends a chain-of-thought instruction
// ("think step by step"), which trades longer, costlier responses for
// accuracy and requires the defensive answer extraction the paper
// discusses. Variants outside [0, CompareTemplateCount) are reduced
// modulo the count.
func ComparePairVariant(variant int, a, b, criterion string, cot bool) string {
	variant = ((variant % CompareTemplateCount) + CompareTemplateCount) % CompareTemplateCount
	var body string
	switch variant {
	case 0:
		body = fmt.Sprintf(
			"Consider the following two items.\nItem A: %s\nItem B: %s\nWhich item ranks higher by %s? Answer with exactly one letter, A or B.\n",
			a, b, criterion)
	case 1:
		body = fmt.Sprintf(
			"You are ranking items by %s.\nOption A: %s\nOption B: %s\nWhich option ranks higher? Reply with A or B only.\n",
			criterion, a, b)
	default:
		body = fmt.Sprintf(
			"Here are two candidates to judge by %s.\nCandidate A is: %s\nCandidate B is: %s\nName the stronger candidate (A or B).\n",
			criterion, a, b)
	}
	if cot {
		body += "Think step by step about your reasoning, then finish with a line of the form \"Answer: A\" or \"Answer: B\".\n"
	}
	return body
}

// RateItem renders a rating task on a 1..scale scale.
func RateItem(item, criterion string, scale int) string {
	return fmt.Sprintf(
		"On a scale of 1 (least) to %d (most), rate the following item by %s.\nItem: %s\nAnswer with a single number.\n",
		scale, criterion, item)
}

// MatchPair renders the entity-resolution unit task, using the exact
// phrasing reported in the paper's Table 3 case study.
func MatchPair(a, b string) string {
	return fmt.Sprintf(
		"Are Citation A and Citation B the same? Yes or No?\nCitation A is %s\nCitation B is %s\nAre Citation A and Citation B the same? Start your response with Yes or No.\n",
		a, b)
}

// Impute renders the missing-value imputation task over a serialized
// record ("a1 is v1; a2 is v2; ..."), optionally with few-shot examples.
func Impute(serialized, field string, examples []Example) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fill in the missing attribute of a record.\n")
	b.WriteString(renderExamples(examples))
	fmt.Fprintf(&b, "Record: %s.\nWhat is the value of the missing attribute %q? Answer with only the value.\n", serialized, field)
	return b.String()
}

// FilterItem renders a boolean predicate check on a single item.
func FilterItem(item, predicate string) string {
	return fmt.Sprintf(
		"Does the following item satisfy the condition: %s?\nItem: %s\nAnswer Yes or No.\n",
		predicate, item)
}

// CountBatch renders the coarse "eyeball" counting task: estimate the
// fraction of items satisfying the predicate without checking each one.
func CountBatch(items []string, predicate string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Estimate what percentage of the following %d items satisfy the condition: %s.\n", len(items), predicate)
	b.WriteString("Answer with a single percentage.\n\nItems:\n")
	for i, it := range items {
		fmt.Fprintf(&b, "%d. %s\n", i+1, it)
	}
	return b.String()
}

// GroupRecords renders the coarse entity-resolution task: partition a
// batch of records into duplicate groups. Records are labelled R1..Rn and
// the answer lists groups like "group: R1, R4".
func GroupRecords(records []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Group the following %d records into sets that refer to the same real-world entity.\n", len(records))
	b.WriteString("Output one line per group in the form \"group: R1, R4\". Every record must appear in exactly one group.\n\nRecords:\n")
	for i, r := range records {
		fmt.Fprintf(&b, "R%d: %s\n", i+1, r)
	}
	return b.String()
}

// Verify renders a follow-up verification task (Section 3.5): ask a model
// whether a previously produced answer is correct.
func Verify(question, answer string) string {
	return fmt.Sprintf(
		"A previous assistant was asked:\n%s\nIt answered: %s\nIs that answer correct? Answer Yes or No.\n",
		question, answer)
}

// Categorize renders a single-item classification task over a closed
// category set.
func Categorize(item string, categories []string) string {
	return fmt.Sprintf(
		"Assign the following item to exactly one of these categories: %s.\nItem: %s\nAnswer with only the category name.\n",
		strings.Join(categories, ", "), item)
}

// DiscoverCategories renders the first phase of two-stage clustering
// (Section 3.2): propose a small set of category names for a sample of
// items.
func DiscoverCategories(items []string, maxCategories int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Propose at most %d category names that partition the following items by topic.\n", maxCategories)
	b.WriteString("Return only the category names, one per line.\n\nItems:\n")
	for i, it := range items {
		fmt.Fprintf(&b, "%d. %s\n", i+1, it)
	}
	return b.String()
}

var (
	reAnswerMarker = regexp.MustCompile(`(?i)\banswer(?:\s+is)?\s*[:=]?\s*([ab])\b`)
	reChoiceNoun   = regexp.MustCompile(`(?i)\b(?:item|option|candidate)\s+([ab])\b`)
	reChoiceUpper  = regexp.MustCompile(`\b([AB])\b`)
	numberedLine   = regexp.MustCompile(`^\s*\d+[.)]\s*(.+?)\s*$`)
	ratingRe       = regexp.MustCompile(`-?\d+`)
	percentRe      = regexp.MustCompile(`(\d+(?:\.\d+)?)\s*%`)
	groupLineRe    = regexp.MustCompile(`(?i)^\s*group[^:]*:\s*(.+)$`)
	recordRefRe    = regexp.MustCompile(`(?i)\bR(\d+)\b`)
)

// ParseList extracts an ordered item list from a response: numbered lines
// if present, otherwise every non-empty line. Leading chatter lines that
// end with ':' are skipped.
func ParseList(response string) []string {
	var out []string
	for _, line := range strings.Split(response, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasSuffix(line, ":") {
			continue
		}
		if m := numberedLine.FindStringSubmatch(line); m != nil {
			out = append(out, m[1])
		} else {
			out = append(out, line)
		}
	}
	return out
}

// ParseChoice extracts an A/B answer. It tolerates responses such as
// "Item A", "A.", "I choose B because ...", and falls back to the last
// standalone letter mentioned when the response restates both options
// (the failure mode the paper observed with chain-of-thought answers).
func ParseChoice(response string) (string, error) {
	clean := strings.TrimSpace(response)
	if clean == "" {
		return "", fmt.Errorf("empty response: %w", ErrUnparseable)
	}
	upper := strings.ToUpper(clean)
	// Fast path: response begins with the letter.
	for _, prefix := range []string{"A", "B"} {
		if strings.HasPrefix(upper, prefix) {
			rest := upper[len(prefix):]
			if rest == "" || !isLetter(rest[0]) {
				return prefix, nil
			}
		}
	}
	// "Answer: A" / "the answer is b" — the format chain-of-thought
	// prompts pin; the LAST such marker wins (reasoning may restate both
	// options before settling, the failure mode the paper reports).
	if ms := reAnswerMarker.FindAllStringSubmatch(clean, -1); len(ms) > 0 {
		return strings.ToUpper(ms[len(ms)-1][1]), nil
	}
	// "Item A" / "option b" / "candidate A" style.
	if m := reChoiceNoun.FindStringSubmatch(clean); m != nil {
		return strings.ToUpper(m[1]), nil
	}
	// Last standalone token, case-insensitively — but a lowercase "a" is
	// almost always the article inside free-form reasoning, so lowercase
	// letters only count when the response has no other words.
	if ms := reChoiceUpper.FindAllStringSubmatch(clean, -1); len(ms) > 0 {
		return ms[len(ms)-1][1], nil
	}
	if ms := regexp.MustCompile(`(?i)\b([ab])\b`).FindAllStringSubmatch(clean, -1); len(ms) > 0 && len(strings.Fields(clean)) <= 6 {
		return strings.ToUpper(ms[len(ms)-1][1]), nil
	}
	return "", fmt.Errorf("no A/B choice in %q: %w", clean, ErrUnparseable)
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// ParseYesNo extracts a boolean from a Yes/No response. Per the paper's
// prompt design, the leading token is authoritative; if the response does
// not start with yes/no, the first occurrence anywhere is used.
func ParseYesNo(response string) (bool, error) {
	clean := strings.ToLower(strings.TrimSpace(response))
	if clean == "" {
		return false, fmt.Errorf("empty response: %w", ErrUnparseable)
	}
	if strings.HasPrefix(clean, "yes") {
		return true, nil
	}
	if strings.HasPrefix(clean, "no") {
		return false, nil
	}
	yi := strings.Index(clean, "yes")
	ni := strings.Index(clean, "no")
	switch {
	case yi >= 0 && (ni < 0 || yi < ni):
		return true, nil
	case ni >= 0:
		return false, nil
	}
	return false, fmt.Errorf("no yes/no in %q: %w", clean, ErrUnparseable)
}

// ParseRating extracts an integer rating, clamped to [1, scale].
func ParseRating(response string, scale int) (int, error) {
	m := ratingRe.FindString(response)
	if m == "" {
		return 0, fmt.Errorf("no rating in %q: %w", response, ErrUnparseable)
	}
	v, err := strconv.Atoi(m)
	if err != nil {
		return 0, fmt.Errorf("bad rating %q: %w", m, ErrUnparseable)
	}
	if v < 1 {
		v = 1
	}
	if v > scale {
		v = scale
	}
	return v, nil
}

// ParseValue extracts a short free-text answer: the first non-empty line,
// stripped of common courtesy prefixes ("The value is", "Answer:").
func ParseValue(response string) (string, error) {
	for _, line := range strings.Split(response, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for _, prefix := range []string{"answer:", "the value is", "value:", "output:"} {
			if len(line) > len(prefix) && strings.EqualFold(line[:len(prefix)], prefix) {
				line = strings.TrimSpace(line[len(prefix):])
			}
		}
		line = strings.Trim(line, `"'.`)
		if line != "" {
			return line, nil
		}
	}
	return "", fmt.Errorf("no value line: %w", ErrUnparseable)
}

// ParsePercent extracts a percentage as a fraction in [0, 1].
func ParsePercent(response string) (float64, error) {
	if m := percentRe.FindStringSubmatch(response); m != nil {
		v, err := strconv.ParseFloat(m[1], 64)
		if err == nil {
			if v < 0 {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			return v / 100, nil
		}
	}
	// Bare number fallback ("about 40").
	if m := ratingRe.FindString(response); m != "" {
		v, err := strconv.ParseFloat(m, 64)
		if err == nil && v >= 0 && v <= 100 {
			return v / 100, nil
		}
	}
	return 0, fmt.Errorf("no percentage in %q: %w", response, ErrUnparseable)
}

// ParseGroups extracts duplicate groups from a GroupRecords response as
// 0-based record indices. Records mentioned in no group are returned as
// singletons when total is positive (the caller passes the batch size);
// indices out of range are dropped.
func ParseGroups(response string, total int) [][]int {
	var groups [][]int
	seen := make(map[int]bool)
	for _, line := range strings.Split(response, "\n") {
		m := groupLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var g []int
		for _, ref := range recordRefRe.FindAllStringSubmatch(m[1], -1) {
			idx, err := strconv.Atoi(ref[1])
			if err != nil || idx < 1 || idx > total || seen[idx-1] {
				continue
			}
			seen[idx-1] = true
			g = append(g, idx-1)
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	for i := 0; i < total; i++ {
		if !seen[i] {
			groups = append(groups, []int{i})
		}
	}
	return groups
}

// PairItem is one pair in a batched comparison prompt.
type PairItem struct {
	A, B string
}

// CompareBatch renders several pairwise comparisons in one prompt — the
// batch-size cost lever of Section 4 ("one can ask the LLM to process a
// small number of comparison tasks in a single prompt, reducing cost and
// latency with implication on accuracy"). The answer format is one letter
// per line, "1: A" style.
func CompareBatch(pairs []PairItem, criterion string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "For each of the following %d pairs, decide which item ranks higher by %s.\n", len(pairs), criterion)
	b.WriteString("Answer with one line per pair in the form \"1: A\" or \"1: B\".\n\nPairs:\n")
	for i, p := range pairs {
		fmt.Fprintf(&b, "Pair %d. Item A: %s | Item B: %s\n", i+1, p.A, p.B)
	}
	return b.String()
}

var batchAnswerRe = regexp.MustCompile(`(?im)^\s*(?:pair\s*)?(\d+)\s*[:.)-]\s*(?:item\s*)?([AB])\b`)

// ParseChoices extracts the per-pair answers of a CompareBatch response
// as a map from 0-based pair index to "A"/"B". Pairs the model skipped are
// absent; out-of-range indices are dropped. An empty result is an
// ErrUnparseable.
func ParseChoices(response string, total int) (map[int]string, error) {
	out := make(map[int]string)
	for _, m := range batchAnswerRe.FindAllStringSubmatch(response, -1) {
		idx, err := strconv.Atoi(m[1])
		if err != nil || idx < 1 || idx > total {
			continue
		}
		out[idx-1] = strings.ToUpper(m[2])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no batch answers in %q: %w", response, ErrUnparseable)
	}
	return out, nil
}

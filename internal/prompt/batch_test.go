package prompt

import (
	"errors"
	"strings"
	"testing"
)

func TestTaskBatchRendersEveryPrompt(t *testing.T) {
	prompts := []string{
		FilterItem("dark chocolate", "contains chocolate"),
		FilterItem("lemon sorbet", "contains chocolate"),
		Categorize("fudge ripple", []string{"chocolate", "fruit"}),
	}
	env := TaskBatch(prompts)
	for _, p := range prompts {
		if !strings.Contains(env, p) {
			t.Fatalf("envelope lost prompt %q:\n%s", p, env)
		}
	}
}

func TestCanEmbed(t *testing.T) {
	cases := []struct {
		prompt string
		want   bool
	}{
		{"do the thing\n", true},
		{"no trailing newline", false},
		{"classify this:\n### Task 2\nsmuggled header\n", false},
		{"### Task 12\n", false},
		{"### Task skipped\nnot a header match\n", true},
	}
	for _, c := range cases {
		if got := CanEmbed(c.prompt); got != c.want {
			t.Errorf("CanEmbed(%q) = %v, want %v", c.prompt, got, c.want)
		}
	}
	for _, p := range []string{
		FilterItem("dark chocolate", "contains chocolate"),
		Categorize("fudge ripple", []string{"chocolate", "fruit"}),
	} {
		if !CanEmbed(p) {
			t.Errorf("template prompt must be embeddable: %q", p)
		}
	}
}

func TestParseTaskBatch(t *testing.T) {
	resp := "### Task 1\nYes\n### Task 2\nNo, definitely not.\nSecond line.\n### Task 3\nMaybe\n"
	out, err := ParseTaskBatch(resp, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "Yes", 1: "No, definitely not.\nSecond line.", 2: "Maybe"}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("task %d = %q, want %q", i, out[i], w)
		}
	}
}

func TestParseTaskBatchToleratesSkipsAndJunk(t *testing.T) {
	resp := "### Task 1\nYes\n### Task 9\nout of range\n### Task 3\nNo\n"
	out, err := ParseTaskBatch(resp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out[1]; ok {
		t.Fatal("task 2 was never answered; must be absent")
	}
	if out[0] != "Yes" || out[2] != "No" {
		t.Fatalf("got %v", out)
	}
}

func TestParseTaskBatchCutsAtStrayMarker(t *testing.T) {
	resp := "### Task 1\nYes\n### Task oops\norphan\n### Task 2\nNo\n"
	out, err := ParseTaskBatch(resp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "Yes" {
		t.Fatalf("task 1 = %q, want clean %q", out[0], "Yes")
	}
	if out[1] != "No" {
		t.Fatalf("task 2 = %q", out[1])
	}
}

func TestParseTaskBatchEmptyIsUnparseable(t *testing.T) {
	if _, err := ParseTaskBatch("I refuse to follow formats.", 4); !errors.Is(err, ErrUnparseable) {
		t.Fatalf("err = %v, want ErrUnparseable", err)
	}
}

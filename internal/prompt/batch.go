package prompt

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// TaskBatch renders several independent unit prompts as one multi-task
// envelope — the execution layer's batching lever (Section 4: "one can ask
// the LLM to process a small number of ... tasks in a single prompt,
// reducing cost and latency"). Unlike CompareBatch, the envelope is
// task-agnostic: any homogeneous unit prompts can ride in it, and the
// response carries one "### Task i" section per task so the batcher can
// split it back into per-task answers.
//
// Every prompt must satisfy CanEmbed (all templates in this package do),
// so the next header starts at a line boundary and the embedded prompts
// round-trip byte-for-byte.
func TaskBatch(prompts []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Below are %d independent tasks. Answer every task on its own.\n", len(prompts))
	b.WriteString("Before each answer, write a line of the form \"### Task i\", in order, starting at 1. Do not skip any task.\n\n")
	for i, p := range prompts {
		fmt.Fprintf(&b, "### Task %d\n%s", i+1, p)
		if !strings.HasSuffix(p, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String()
}

var (
	taskHeaderRe = regexp.MustCompile(`(?m)^### Task (\d+)[ \t]*$`)
	strayMarkRe  = regexp.MustCompile(`(?m)^### `)
)

// CanEmbed reports whether p can ride in a TaskBatch envelope losslessly:
// it must be newline-terminated (so the next header starts at a line
// boundary) and must not itself contain a line matching the section-header
// pattern — a prompt built from data that happens to contain "### Task 2"
// would make the envelope ambiguous to split, silently misassigning
// answers between neighbouring tasks.
func CanEmbed(p string) bool {
	return strings.HasSuffix(p, "\n") && !taskHeaderRe.MatchString(p)
}

// ParseTaskBatch extracts the per-task answers of a TaskBatch response as
// a map from 0-based task index to answer text (trailing newlines
// stripped). Tasks the model skipped are absent; out-of-range indices are
// dropped; on duplicate headers the first wins. An empty result is an
// ErrUnparseable, so the batcher can route the whole completion through
// the retry path.
func ParseTaskBatch(response string, total int) (map[int]string, error) {
	out := make(map[int]string)
	locs := taskHeaderRe.FindAllStringSubmatchIndex(response, -1)
	for i, loc := range locs {
		idx, err := strconv.Atoi(response[loc[2]:loc[3]])
		if err != nil || idx < 1 || idx > total {
			continue
		}
		start := loc[1]
		if start < len(response) && response[start] == '\n' {
			start++
		}
		end := len(response)
		if i+1 < len(locs) {
			end = locs[i+1][0]
		}
		if _, dup := out[idx-1]; dup {
			continue
		}
		section := response[start:end]
		// A garbled header ("### Task skipped") is not recognised above and
		// would otherwise be swallowed into the preceding answer, together
		// with the orphaned answer under it. Cut each section at the first
		// stray marker so the preceding task stays clean; the orphaned task
		// simply goes missing and takes the retry path.
		if m := strayMarkRe.FindStringIndex(section); m != nil {
			section = section[:m[0]]
		}
		out[idx-1] = strings.TrimRight(section, "\n")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no task sections in %q: %w", response, ErrUnparseable)
	}
	return out, nil
}

// Package dataset provides the data substrates for the paper's four case
// studies: ice-cream flavours with a chocolateyness ground truth (Table 1),
// an English word dictionary (Table 2), a DBLP/Google-Scholar-like citation
// corpus with labelled duplicate pairs (Table 3), and Restaurants/Buy-style
// record collections with missing-value masks (Table 4).
//
// The original experiments used proprietary snapshots of public datasets;
// this package generates synthetic equivalents with the same statistical
// structure. All generators are deterministic given a seed.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Field is one named attribute of a record.
type Field struct {
	Name  string
	Value string
}

// Record is a structured data item: an ordered list of attribute fields.
// Order is preserved because prompt serialization is order-sensitive.
type Record struct {
	ID     string
	Fields []Field
}

// Get returns the value of the named field and whether it exists.
func (r Record) Get(name string) (string, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return "", false
}

// Set replaces the value of the named field, or appends it if absent.
func (r *Record) Set(name, value string) {
	for i, f := range r.Fields {
		if f.Name == name {
			r.Fields[i].Value = value
			return
		}
	}
	r.Fields = append(r.Fields, Field{Name: name, Value: value})
}

// WithoutField returns a deep copy of r with the named field removed.
func (r Record) WithoutField(name string) Record {
	out := Record{ID: r.ID, Fields: make([]Field, 0, len(r.Fields))}
	for _, f := range r.Fields {
		if f.Name != name {
			out.Fields = append(out.Fields, f)
		}
	}
	return out
}

// Clone returns a deep copy of r.
func (r Record) Clone() Record {
	out := Record{ID: r.ID, Fields: make([]Field, len(r.Fields))}
	copy(out.Fields, r.Fields)
	return out
}

// String renders the record in the serialized form the paper uses for
// imputation prompts: "a1 is v1; a2 is v2; ...".
func (r Record) String() string {
	parts := make([]string, 0, len(r.Fields))
	for _, f := range r.Fields {
		parts = append(parts, fmt.Sprintf("%s is %s", f.Name, f.Value))
	}
	return strings.Join(parts, "; ")
}

// Pair is a labelled pair of records for entity-resolution benchmarks.
type Pair struct {
	A, B Record
	// Match reports whether A and B refer to the same real-world entity.
	Match bool
}

// Split divides items into train/validation/test partitions with the given
// fractions (test receives the remainder). The split is deterministic for a
// given seed and does not mutate the input.
func Split[T any](items []T, trainFrac, valFrac float64, seed int64) (train, val, test []T) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(items))
	nTrain := int(trainFrac * float64(len(items)))
	nVal := int(valFrac * float64(len(items)))
	for i, j := range idx {
		switch {
		case i < nTrain:
			train = append(train, items[j])
		case i < nTrain+nVal:
			val = append(val, items[j])
		default:
			test = append(test, items[j])
		}
	}
	return train, val, test
}

// Sample returns n items drawn without replacement, deterministically for a
// given seed. If n exceeds len(items), all items are returned (shuffled).
func Sample[T any](items []T, n int, seed int64) []T {
	idx := rand.New(rand.NewSource(seed)).Perm(len(items))
	if n > len(items) {
		n = len(items)
	}
	out := make([]T, 0, n)
	for _, j := range idx[:n] {
		out = append(out, items[j])
	}
	return out
}

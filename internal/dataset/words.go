package dataset

import (
	"math/rand"
	"strings"
)

// dictionary is an embedded list of common English words used for the
// alphabetical-sorting case study (Table 2). The paper sampled 100 random
// words from a system dictionary; this list plays that role offline.
const dictionary = `
abandon ability absence absolute absorb abstract absurd abundant academy
accent accept access accident acclaim account accuse achieve acid acoustic
acquire across action active actor actual adapt address adequate adjust
admire admit adopt advance advice aerial affair affect afford afraid agenda
agent agree ahead airport alarm album alcohol alert algebra alien alley
allow almond almost alone alpha already although always amateur amazing
ambient amber ambition among amount ample analyze ancient angle angry animal
ankle announce annual answer antenna antique anxiety apart apology apparent
appeal appear apple apply appoint approve april apron architect arctic arena
argue arise armor around arrange arrest arrive arrow artist aspect assault
asset assist assume athlete atlas atom attach attack attend attic auction
audit august aunt author autumn avenue average avocado avoid awake award
aware awful awkward axis bacon badge balance balcony ballad bamboo banana
banner banquet barely bargain barrel basket battle beach beacon beauty
because become bedroom before begin behalf behave behind believe belong
bench benefit berry beside better between beyond bicycle bidder bigger
billow biology birch birthday biscuit bishop bitter blanket blast blaze
bleach blend blossom blouse bluff board boast bonus border borrow bottle
bottom boulder bounce bracket branch brave breath breeze brick bridge brief
bright bring broad broken bronze brother brown brush bubble bucket budget
buffalo builder bullet bundle burden bureau burst bushel butter button
cabbage cabin cable cactus cadet cafeteria cage calcium calendar camel
camera campus canal cancel candle candy cannon canoe canvas canyon capable
capital captain capture carbon career cargo carpet carrot cartoon carve
cascade cashier castle casual catalog catch cattle caution cavern ceiling
celery cellar cement census center century cereal certain chain chair chalk
chamber change chaos chapter charge charity charm chase cheap check cheese
cherry chest chicken chief child chimney choice choose chorus chrome church
cinema circle citizen civil claim clarify class clause clean clear clerk
clever client cliff climate climb clinic clock closet cloth cloud clover
club cluster coach coast cobweb coconut coffee cogent coin collar college
colony column combine comedy comfort comic command comment common compass
compete complex concept concert conduct confirm connect consider console
contact contain content contest context control convert convince cookie
copper coral corner correct cosmic costume cottage cotton couch council
count country county couple courage course cousin cover coyote cradle
craft crane crater crayon cream create credit creek cricket crimson crisp
critic crop cross crowd crown crucial cruise crumble crystal cubic culture
cunning cupboard curious current curtain curve cushion custom cycle
daily dairy damage dance danger daring darkness data daughter dawn
dazzle debate debris decade decent decide declare decline decorate decrease
deed deep defend define degree delay deliver demand denial dense depart
depend deposit depth deputy derive describe desert design desire desk
despair dessert destiny detail detect develop device devote diagram dialect
diamond diary dictate diesel differ digital dignity dilemma dinner direct
disable discuss dismiss display distance divert divide doctor document
dolphin domain donate donkey double doubt dough dozen draft dragon drama
drastic drawer dream dress drift drink drive drizzle drop drought drum
duckling durable during dust duty dwarf dynamic
eager eagle early earnest earth easel east echo eclipse ecology
economy edge edit educate effect effort eight either elbow elder electric
elegant element elephant elevate eleven elite else embark emblem embrace
emerge emotion empire employ empty enable enact encode end endless endorse
enemy energy enforce engage engine enhance enjoy enlist enough enrich
enroll ensure enter entire entry envelope episode equal equip erase erode
errand escape essay estate eternal ethics evening event evidence evolve
exact example exceed excel except excess exchange excite exclude excuse
execute exercise exhaust exhibit exile exist exit exotic expand expect
expert explain explore export expose express extend extra eyebrow
fabric facade factor faculty fade faint fairy faith falcon family
famous fancy fantasy fashion father fatigue faucet fault favorite feature
federal feeble fellow fence fertile festival fever fiber fiction field
fierce figure filter final finance finger finish firefly fiscal fitness
flame flavor fleet flexible flight float flock floor floral flour flower
fluent fluid flute focus fog foil folder follow forest forget formal
format fortune forum forward fossil foster found fountain fragile frame
frantic freedom freeze frequent fresh friend fringe frost frozen fruit
fuel function fungus funnel furnace further future
gadget galaxy gallery gallon galore gamble garage garden garlic garment
gather gauge gazette gender general genius gentle genuine gesture giant
ginger giraffe give glacier glance glass glide glimpse globe glory glove
glow goblet goggle golden goodness gorilla gospel gossip govern grace
grain grand granite grant grape graph grasp grass gravel gravity great
green greet grid grief grill grind grocery group grove growth guard guess
guest guide guilt guitar gutter
habit hammer hamper handle hangar happen harbor hardly harmony harsh
harvest hassle hasten hatch haven hazard header health heart heavy hedge
height helmet helpful herald herb heron hidden highway hiking hill hinge
history hobby hockey holiday hollow honest honey horizon hornet horror
horse hospital hotel hour house hover huddle human humble humor hundred
hunger hunter hurdle hurry hybrid hydrogen hymn
iceberg icicle idea identify idle ignite ignore illegal illness image
imagine immense immune impact import impose improve impulse inch income
increase indeed index indicate indoor industry infant inform inhale inherit
initial inject injury inmate inner innocent input inquiry insect inside
insist inspect install instant instead insult intact intend interest into
invest invite involve iron island issue item ivory
jacket jaguar janitor jargon jasmine jealous jelly jersey jewel jigsaw
jingle joint jolly journal journey joyful judge juice jumble jungle junior
justice
kangaroo keen kennel kernel kettle keyboard kidney kindle kingdom
kitchen kitten knee knife knock knot
label labor ladder lagoon lake lamp language lantern laptop large
laser latch later laugh launch laundry lava lavish lawyer layer league
learn leather lecture ledger legacy legal legend leisure lemon length
lentil leopard lesson letter lettuce level liberty library license lift
light lilac limber limit linen linger liquid listen litter little lively
lizard lobby lobster local locate locket lodge lofty logic lonely longing
lottery lounge loyal lucky lumber lunar lunch luxury lyric
machine magnet maiden major makeup mammal manage mandate mango manner
mansion manual maple marble margin marine market marvel mascot massive
master match matrix matter mature maximum mayor meadow measure medal media
medical melody member memory mention mentor menu merchant mercy merge
merit message metal method middle midnight mighty mild million mimic mineral
minimum minor minute miracle mirror misery mission mistake mixture mobile
model modern modest module moment monitor monkey monster month moral morning
mosaic motion motor mountain mouse movie muffin muscle museum music mustard
mutual myself mystery myth
napkin narrow nation native nature nearby neat nectar needle neglect
neighbor neither nephew nerve nest network neutral never niche nickel
night nimble noble noise nominee noodle normal north notable notebook
nothing notice notion novel nuclear number nurse nutmeg
oasis object oblige obscure observe obtain obvious occasion occupy
ocean october odor offer office often olive omega onion online onset
opera opinion oppose option oracle orange orbit orchard order organ orient
origin ostrich other outcome outdoor outer output outside oval oven over
owner oxygen oyster
pacific package paddle pagoda palace palm panel panic panther paper
parade parcel pardon parent park parlor partner party passage patent path
patient patrol pattern pause payment peace peanut pearl pebble pedal
pelican penalty pencil penguin people pepper perfect perform perhaps period
permit person phase phone photo phrase physics piano picnic picture piece
pigeon pillar pillow pilot pinch pioneer pirate pistol pitch pivot pixel
pizza place plain planet plastic plate platform play plaza pledge plenty
plot plumber pocket poem point polar policy polish polite pollen pond
pony popular portion position possible postage poster potato pottery
pouch powder power praise predict prefer premium prepare present pretty
prevent price pride primary prince print prison private prize problem
process produce profit program project promise prompt proof proper protect
proud provide public pudding pulse pumpkin punch pupil puppy purchase
purple purpose pursue puzzle pyramid
quaint quality quantum quarter queen quench query question quick quiet
quilt quiver quote
rabbit raccoon radar radio raft rail rainbow raise rally ranch random
range rapid rare rather rattle ravine razor reach react reason rebel
recall receive recipe record recover recruit recycle reduce refer reflect
reform refuse region regret regular reject relax release relief rely
remain remark remedy remind remove render renew rent repair repeat replace
report request rescue research resist resolve resource respect respond
rest result retain retire retreat return reunion reveal review reward
rhythm ribbon ridge rifle right rigid ring ripple rise ritual rival river
road roast robin robust rocket romance roof rookie rooster rotate rough
round route royal rubber rugged ruin rule rumble runway rural rustic
saddle safari safety sailor salad salmon salon salute sample sandal
sandwich sapling sardine satisfy sauce sausage savage save scale scandal
scarce scatter scene scheme scholar school science scissors scoop scope
score scout scrap screen script scroll sculpture season second secret
section secure segment select seller seminar senior sense sentence sequel
series sermon service session settle seven shadow shaft shallow shampoo
shape share sharp shelf shell shelter sheriff shield shift shine shiver
shock shore short shoulder shovel shower shrimp shrink shuttle sibling
siege sight signal silence silver similar simple since singer single
sister sketch skill skirt slender slice slide slight slogan slope small
smart smile smoke smooth snack snake sneak snow soccer social socket sofa
solar soldier solid solve sonnet sorrow sort soul sound source south
space spare spark speak special speech speed spell spend sphere spice
spider spinach spiral spirit splash sponge spoon sport spray spread spring
sprout square squirrel stable stadium staff stage stair stamp stand staple
start state station statue steady steam steel stem step stereo stick
still sting stock stomach stone storage store storm story stove straight
strange strategy stream street stress stretch strike string stroll strong
struggle student studio study stumble style subject submit subtle suburb
subway sudden suffer sugar suggest summer summit sunny sunset super supply
support supreme surface surge surplus survey survive suspect sustain
swallow swamp swarm sweater sweet swift swing switch symbol symptom syrup
system
table tackle tactic tailor talent tangle tango tank target tattoo
tavern teach team tease tedious temper temple tenant tender tennis tent
term terrace thank theater theme theory thimble thing thirty thorn thought
thread thrive throne thunder ticket tidal tiger timber tiny tissue title
toast tobacco today toddler token tomato tongue tonight topic torch
tornado tortoise total tourist toward tower town trace track trade traffic
trail train transit travel treasure treat tremble trend trial tribute
trick trigger trim triumph trolley trophy tropical trouble trumpet trust
truth tuition tumble tundra tunnel turbine turkey turnip turtle tutor
twelve twenty twilight twist type typical
umbrella unable uncle uncover under unfair unfold uniform unique unit
unity universe unknown unlock until unusual unveil update upgrade uphold
upon upper upset urban urgent usage useful usher usual utility
vacant vacuum vague valid valley value vanilla vapor variety vast
vault vector vehicle velvet vendor venture venue verdict verify verse
version vessel veteran viable vibrant victory video view vigor village
vintage violet violin virtual virtue visible vision visit visual vital
vivid vocal voice volcano volume voyage
wafer wagon waist walnut walrus wander warden warm warrior wash
waste water wave wealth weapon weather weave wedding weekend welcome
west whale wheat wheel whisper whistle wicked widget width wild willow
window winter wisdom wish witness wizard wolf wonder wooden world worry
worth wound wrap wreck wrestle wrist write
yacht yard yarn yearly yeast yellow yield yogurt young youth
zebra zenith zephyr zero zigzag zinc zone
`

var dictWords = strings.Fields(dictionary)

// Dictionary returns the embedded English word list (a copy, in dictionary
// order). The list contains well over a thousand distinct lowercase words
// covering every letter of the alphabet.
func Dictionary() []string {
	out := make([]string, len(dictWords))
	copy(out, dictWords)
	return out
}

// RandomWords returns n distinct words sampled uniformly without
// replacement from the embedded dictionary, deterministically for the
// given seed. It panics if n exceeds the dictionary size, which indicates
// a programming error in the benchmark harness.
func RandomWords(n int, seed int64) []string {
	if n > len(dictWords) {
		panic("dataset: RandomWords n exceeds dictionary size")
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(dictWords))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = dictWords[idx[i]]
	}
	return out
}

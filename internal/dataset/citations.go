package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Citation is one bibliographic record. Entity identifies the real-world
// paper the record refers to: two citations with the same Entity are
// duplicates. The generator mimics the DBLP / Google-Scholar corpus used
// in Table 3, where the same paper appears under several noisy surface
// forms (truncated titles, typos, venue abbreviations, dropped authors).
type Citation struct {
	ID      string
	Title   string
	Authors string
	Venue   string
	Year    string
	// Entity is the ground-truth paper identifier.
	Entity int
}

// Record converts the citation to a generic dataset record.
func (c Citation) Record() Record {
	return Record{
		ID: c.ID,
		Fields: []Field{
			{"title", c.Title},
			{"authors", c.Authors},
			{"venue", c.Venue},
			{"year", c.Year},
		},
	}
}

// Text renders the citation as one line, the form embedded in match prompts.
func (c Citation) Text() string {
	return fmt.Sprintf("%s. %s. %s, %s", c.Authors, c.Title, c.Venue, c.Year)
}

// CitationPair is one labelled comparison question: indices into the
// corpus record slice plus the gold duplicate label.
type CitationPair struct {
	A, B  int
	Match bool
}

// CitationCorpus bundles the generated records with the labelled pair set.
type CitationCorpus struct {
	Records []Citation
	Pairs   []CitationPair
}

// CitationConfig controls corpus generation.
type CitationConfig struct {
	// Entities is the number of distinct real-world papers.
	Entities int
	// Pairs is the size of the labelled validation pair set.
	Pairs int
	// PositiveFrac is the fraction of pairs that are true duplicates.
	PositiveFrac float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultCitationConfig reproduces the scale of the paper's validation
// slice: 5742 labelled pairs over a corpus with sparse duplicates.
func DefaultCitationConfig() CitationConfig {
	return CitationConfig{Entities: 1200, Pairs: 5742, PositiveFrac: 0.24, Seed: 7}
}

var (
	titleNouns = []string{
		"indexing", "positions", "queries", "streams", "joins", "views",
		"transactions", "caching", "learning", "mining", "clustering",
		"ranking", "sampling", "graphs", "trees", "skyline", "cubes",
		"provenance", "workflows", "schemas", "integration", "cleaning",
		"deduplication", "crowdsourcing", "optimization", "estimation",
		"compression", "partitions", "replication", "consistency",
	}
	titleAdjs = []string{
		"continuous", "approximate", "scalable", "efficient", "adaptive",
		"distributed", "parallel", "incremental", "probabilistic", "dynamic",
		"robust", "declarative", "interactive", "streaming", "secure",
		"federated", "hierarchical", "semantic", "temporal", "spatial",
	}
	titleConnectives = []string{"of", "for", "over", "with", "in", "via", "under"}
	lastNames        = []string{
		"Wang", "Li", "Chen", "Garcia", "Kumar", "Smith", "Johnson", "Müller",
		"Silva", "Kim", "Patel", "Nguyen", "Brown", "Davis", "Lopez", "Sato",
		"Ivanov", "Hansen", "Rossi", "Novak", "Dubois", "Fischer", "Olsen",
		"Kowalski", "Haddad", "Okafor", "Mehta", "Tanaka", "Costa", "Weber",
	}
	venuePairs = [][]string{
		{"SIGMOD Conference", "SIGMOD", "Proc. SIGMOD", "ACM SIGMOD"},
		{"VLDB", "PVLDB", "Proc. VLDB Endow.", "Very Large Data Bases"},
		{"ICDE", "Proc. ICDE", "Int. Conf. on Data Engineering"},
		{"EDBT", "Proc. EDBT", "Extending Database Technology"},
		{"CIKM", "Proc. CIKM", "Conf. on Information and Knowledge Management"},
		{"KDD", "SIGKDD", "Proc. KDD", "Knowledge Discovery and Data Mining"},
		{"CIDR", "Proc. CIDR", "Conf. on Innovative Data Systems Research"},
		{"TKDE", "IEEE Trans. Knowl. Data Eng."},
		{"TODS", "ACM Trans. Database Syst."},
		{"WWW", "Proc. WWW", "World Wide Web Conference"},
	}
)

// GenerateCitations builds a deterministic synthetic citation corpus.
//
// Each entity receives a cluster of 1–5 surface forms: the first is the
// clean canonical record; the rest are perturbed through the channels
// observed in the real corpus (title truncation with an ellipsis, character
// typos, venue abbreviation, author initialisation or dropping, case drift,
// missing year). Labelled pairs mix true duplicate pairs with hard
// negatives (entities sharing title vocabulary) and random negatives.
func GenerateCitations(cfg CitationConfig) *CitationCorpus {
	if cfg.Entities <= 1 || cfg.Pairs <= 0 {
		panic("dataset: invalid CitationConfig")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := &CitationCorpus{}

	// byEntity[e] lists record indices for entity e.
	byEntity := make([][]int, cfg.Entities)
	type owned struct {
		entity  int
		title   string
		venue   string
		authors string
	}
	var originals []owned // earlier canonical papers, for confusable entities
	// confusablePairs links each confusable entity to the entity it apes.
	var confusablePairs [][2]int
	for e := 0; e < cfg.Entities; e++ {
		canon := makeCanonicalCitation(rng, e)
		// A slice of entities are "confusable": distinct papers that reuse
		// an earlier paper's title and venue (think extended versions,
		// reprints, or plain title collisions with different author teams).
		// These are the hard negatives that cost the matcher its perfect
		// precision.
		if len(originals) > 0 && rng.Float64() < 0.06 {
			src := originals[rng.Intn(len(originals))]
			canon.Title = src.title
			canon.Venue = src.venue
			if rng.Float64() < 0.5 {
				// Extended-version flavour: same author team, same title,
				// later year — labelled distinct, surface-near-identical.
				canon.Authors = src.authors
			}
			confusablePairs = append(confusablePairs, [2]int{e, src.entity})
		} else {
			originals = append(originals, owned{
				entity: e, title: canon.Title, venue: canon.Venue, authors: canon.Authors,
			})
		}
		size := clusterSize(rng)
		for m := 0; m < size; m++ {
			var c Citation
			if m == 0 {
				c = canon
			} else {
				c = perturbCitation(rng, canon, m)
			}
			c.ID = fmt.Sprintf("cit-%04d-%d", e, m)
			c.Entity = e
			byEntity[e] = append(byEntity[e], len(corpus.Records))
			corpus.Records = append(corpus.Records, c)
		}
	}

	// Positive pairs: all within-cluster pairs, shuffled, truncated.
	var positives []CitationPair
	for _, members := range byEntity {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				positives = append(positives, CitationPair{A: members[i], B: members[j], Match: true})
			}
		}
	}
	rng.Shuffle(len(positives), func(i, j int) { positives[i], positives[j] = positives[j], positives[i] })

	wantPos := int(cfg.PositiveFrac * float64(cfg.Pairs))
	if wantPos > len(positives) {
		wantPos = len(positives)
	}
	corpus.Pairs = append(corpus.Pairs, positives[:wantPos]...)

	seen := make(map[[2]int]bool, cfg.Pairs)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for _, p := range corpus.Pairs {
		seen[key(p.A, p.B)] = true
	}
	// Confusable negatives first: one cross pair per confusable entity,
	// between a member of each cluster.
	for _, cp := range confusablePairs {
		if len(corpus.Pairs) >= cfg.Pairs {
			break
		}
		ma, mb := byEntity[cp[0]], byEntity[cp[1]]
		a := ma[rng.Intn(len(ma))]
		b := mb[rng.Intn(len(mb))]
		k := key(a, b)
		if seen[k] {
			continue
		}
		seen[k] = true
		corpus.Pairs = append(corpus.Pairs, CitationPair{A: a, B: b, Match: false})
	}
	// Remaining negatives: half hard (shared title vocabulary), half random.
	for len(corpus.Pairs) < cfg.Pairs {
		a := rng.Intn(len(corpus.Records))
		b := rng.Intn(len(corpus.Records))
		if a == b || corpus.Records[a].Entity == corpus.Records[b].Entity {
			continue
		}
		// Bias toward hard negatives: retry until title words overlap for
		// half of the draws.
		if rng.Intn(2) == 0 && !titleOverlap(corpus.Records[a].Title, corpus.Records[b].Title) {
			continue
		}
		k := key(a, b)
		if seen[k] {
			continue
		}
		seen[k] = true
		corpus.Pairs = append(corpus.Pairs, CitationPair{A: a, B: b, Match: false})
	}
	rng.Shuffle(len(corpus.Pairs), func(i, j int) {
		corpus.Pairs[i], corpus.Pairs[j] = corpus.Pairs[j], corpus.Pairs[i]
	})
	return corpus
}

func makeCanonicalCitation(rng *rand.Rand, entity int) Citation {
	nWords := 4 + rng.Intn(4)
	words := make([]string, 0, nWords)
	for i := 0; i < nWords; i++ {
		switch {
		case i%3 == 1:
			words = append(words, titleConnectives[rng.Intn(len(titleConnectives))])
		case i%3 == 2:
			words = append(words, titleAdjs[rng.Intn(len(titleAdjs))])
		default:
			words = append(words, titleNouns[rng.Intn(len(titleNouns))])
		}
	}
	nAuth := 1 + rng.Intn(3)
	auths := make([]string, nAuth)
	for i := range auths {
		auths[i] = fmt.Sprintf("%c. %s", 'A'+rune(rng.Intn(26)), lastNames[rng.Intn(len(lastNames))])
	}
	venue := venuePairs[rng.Intn(len(venuePairs))]
	return Citation{
		Title:   strings.Join(words, " "),
		Authors: strings.Join(auths, ", "),
		Venue:   venue[0],
		Year:    fmt.Sprintf("%d", 1995+rng.Intn(25)),
	}
}

// clusterSize draws the number of surface forms per entity. The
// distribution is skewed toward singletons, matching the sparse duplicate
// structure of the real validation slice, but leaves enough ≥3 clusters
// for transitive evidence to exist.
func clusterSize(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.48:
		return 1
	case r < 0.78:
		return 2
	case r < 0.92:
		return 3
	case r < 0.98:
		return 4
	default:
		return 5
	}
}

// perturbCitation derives a noisy surface form of the canonical record.
// The member index m controls severity: later members are noisier, giving
// each cluster a mix of easy and hard duplicate pairs.
func perturbCitation(rng *rand.Rand, c Citation, m int) Citation {
	out := c
	severity := 1 + m // 2..5 perturbation attempts
	for i := 0; i < severity; i++ {
		switch rng.Intn(6) {
		case 0: // truncate title with ellipsis, as in the Scholar corpus
			if r := []rune(out.Title); len(r) > 18 {
				cut := 14 + rng.Intn(len(r)-16)
				out.Title = string(r[:cut]) + "..."
			}
		case 1: // character typo in the title
			out.Title = typo(rng, out.Title)
		case 2: // venue abbreviation swap
			for _, group := range venuePairs {
				for _, v := range group {
					if v == out.Venue {
						out.Venue = group[rng.Intn(len(group))]
						break
					}
				}
			}
		case 3: // drop trailing authors or initialise
			if idx := strings.Index(out.Authors, ", "); idx > 0 && rng.Intn(2) == 0 {
				out.Authors = out.Authors[:idx] + " et al."
			}
		case 4: // case drift
			if rng.Intn(2) == 0 {
				out.Title = strings.ToUpper(out.Title[:1]) + out.Title[1:]
			} else {
				out.Title = strings.ToLower(out.Title)
			}
		case 5: // missing year
			out.Year = ""
		}
	}
	return out
}

// typo applies one random character edit (swap, drop, or duplicate).
func typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 4 {
		return s
	}
	i := 1 + rng.Intn(len(r)-2)
	switch rng.Intn(3) {
	case 0: // swap adjacent
		r[i], r[i+1] = r[i+1], r[i]
		return string(r)
	case 1: // drop
		return string(r[:i]) + string(r[i+1:])
	default: // duplicate
		return string(r[:i]) + string(r[i]) + string(r[i:])
	}
}

func titleOverlap(a, b string) bool {
	wa := strings.Fields(strings.ToLower(a))
	wb := strings.Fields(strings.ToLower(b))
	set := make(map[string]bool, len(wa))
	for _, w := range wa {
		if len(w) > 4 { // content words only
			set[w] = true
		}
	}
	for _, w := range wb {
		if set[w] {
			return true
		}
	}
	return false
}

package dataset

import (
	"math/rand"
	"strings"
)

// GenerateSyntheticTexts produces n deterministic record texts for
// index-scale benchmarking — cheap enough to generate at N=1M, unlike
// the citation corpus whose cluster machinery dominates at that size.
// Each text is a short pseudo-record drawn from the embedded dictionary;
// roughly 30% of records are near-duplicate perturbations of an earlier
// record (a word swapped or appended), so nearest-neighbour recall over
// the corpus measures something meaningful rather than distances between
// uniformly random points.
func GenerateSyntheticTexts(n int, seed int64) []string {
	if n < 0 {
		panic("dataset: negative corpus size")
	}
	words := Dictionary()
	rng := rand.New(rand.NewSource(seed))
	texts := make([]string, n)
	var sb strings.Builder
	for i := range texts {
		if i > 0 && rng.Intn(10) < 3 {
			base := texts[rng.Intn(i)]
			if rng.Intn(2) == 0 {
				texts[i] = base + " " + words[rng.Intn(len(words))]
			} else {
				fields := strings.Split(base, " ")
				fields[rng.Intn(len(fields))] = words[rng.Intn(len(words))]
				texts[i] = strings.Join(fields, " ")
			}
			continue
		}
		sb.Reset()
		for w, k := 0, 4+rng.Intn(4); w < k; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		texts[i] = sb.String()
	}
	return texts
}

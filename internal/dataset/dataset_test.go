package dataset

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordGetSet(t *testing.T) {
	r := Record{ID: "x", Fields: []Field{{"a", "1"}, {"b", "2"}}}
	if v, ok := r.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := r.Get("zzz"); ok {
		t.Fatal("Get on missing field should report false")
	}
	r.Set("a", "9")
	if v, _ := r.Get("a"); v != "9" {
		t.Fatal("Set did not replace existing value")
	}
	r.Set("c", "3")
	if v, _ := r.Get("c"); v != "3" {
		t.Fatal("Set did not append new field")
	}
}

func TestRecordWithoutField(t *testing.T) {
	r := Record{ID: "x", Fields: []Field{{"a", "1"}, {"b", "2"}}}
	out := r.WithoutField("a")
	if _, ok := out.Get("a"); ok {
		t.Fatal("field a should be removed")
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("original record mutated")
	}
	if len(out.Fields) != 1 {
		t.Fatalf("fields = %d, want 1", len(out.Fields))
	}
}

func TestRecordCloneIndependence(t *testing.T) {
	r := Record{ID: "x", Fields: []Field{{"a", "1"}}}
	c := r.Clone()
	c.Set("a", "2")
	if v, _ := r.Get("a"); v != "1" {
		t.Fatal("Clone shares field storage with original")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Fields: []Field{{"name", "joe"}, {"city", "nyc"}}}
	want := "name is joe; city is nyc"
	if got := r.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestSplitPartitions(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	train, val, test := Split(items, 0.6, 0.2, 42)
	if len(train) != 60 || len(val) != 20 || len(test) != 20 {
		t.Fatalf("sizes = %d/%d/%d", len(train), len(val), len(test))
	}
	all := append(append(append([]int{}, train...), val...), test...)
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("partitions lost or duplicated item %d", i)
		}
	}
	// Determinism.
	train2, _, _ := Split(items, 0.6, 0.2, 42)
	if !reflect.DeepEqual(train, train2) {
		t.Fatal("Split is not deterministic for a fixed seed")
	}
}

func TestSample(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	s := Sample(items, 2, 1)
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	if got := Sample(items, 10, 1); len(got) != 4 {
		t.Fatalf("oversample len = %d, want 4", len(got))
	}
	if !reflect.DeepEqual(Sample(items, 3, 5), Sample(items, 3, 5)) {
		t.Fatal("Sample not deterministic")
	}
}

func TestFlavors(t *testing.T) {
	fs := Flavors()
	if len(fs) != 20 {
		t.Fatalf("flavor count = %d, want 20", len(fs))
	}
	if !sort.SliceIsSorted(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name }) {
		t.Fatal("Flavors() should be alphabetical")
	}
	gt := FlavorGroundTruth()
	if len(gt) != 20 {
		t.Fatalf("ground truth count = %d", len(gt))
	}
	// Ground truth must be strictly decreasing in chocolateyness.
	prev := 2.0
	for _, name := range gt {
		s, ok := FlavorScore(name)
		if !ok {
			t.Fatalf("unknown flavor %q in ground truth", name)
		}
		if s >= prev {
			t.Fatalf("ground truth not strictly decreasing at %q", name)
		}
		prev = s
	}
	// Paper property: chocolate-titled flavours at the head, lemon sorbet last.
	if !strings.Contains(gt[0], "chocolate") {
		t.Fatalf("top flavour %q should contain 'chocolate'", gt[0])
	}
	if gt[len(gt)-1] != "lemon sorbet" {
		t.Fatalf("last flavour = %q, want lemon sorbet", gt[len(gt)-1])
	}
	if _, ok := FlavorScore("no such flavor"); ok {
		t.Fatal("FlavorScore should miss unknown names")
	}
	if len(FlavorNames()) != 20 {
		t.Fatal("FlavorNames count")
	}
}

func TestDictionary(t *testing.T) {
	words := Dictionary()
	if len(words) < 1000 {
		t.Fatalf("dictionary too small: %d words", len(words))
	}
	seen := make(map[string]bool, len(words))
	letters := make(map[byte]bool)
	for _, w := range words {
		if w != strings.ToLower(w) {
			t.Fatalf("word %q is not lowercase", w)
		}
		if seen[w] {
			t.Fatalf("duplicate dictionary word %q", w)
		}
		seen[w] = true
		letters[w[0]] = true
	}
	for c := byte('a'); c <= 'z'; c++ {
		if c == 'x' { // no common x-words embedded; acceptable gap
			continue
		}
		if !letters[c] {
			t.Errorf("no dictionary word starts with %q", string(c))
		}
	}
}

func TestRandomWords(t *testing.T) {
	ws := RandomWords(100, 3)
	if len(ws) != 100 {
		t.Fatalf("len = %d", len(ws))
	}
	seen := make(map[string]bool)
	for _, w := range ws {
		if seen[w] {
			t.Fatalf("duplicate sampled word %q", w)
		}
		seen[w] = true
	}
	if !reflect.DeepEqual(ws, RandomWords(100, 3)) {
		t.Fatal("RandomWords not deterministic")
	}
	if reflect.DeepEqual(ws, RandomWords(100, 4)) {
		t.Fatal("different seeds should give different samples")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized n")
		}
	}()
	RandomWords(1<<20, 1)
}

func TestGenerateSyntheticTexts(t *testing.T) {
	texts := GenerateSyntheticTexts(5000, 9)
	if len(texts) != 5000 {
		t.Fatalf("len = %d", len(texts))
	}
	for i, s := range texts {
		if s == "" {
			t.Fatalf("empty text at %d", i)
		}
	}
	if !reflect.DeepEqual(texts, GenerateSyntheticTexts(5000, 9)) {
		t.Fatal("GenerateSyntheticTexts not deterministic")
	}
	if reflect.DeepEqual(texts[:100], GenerateSyntheticTexts(100, 10)) {
		t.Fatal("different seeds should give different corpora")
	}
	// The near-duplicate machinery must actually fire: a meaningful
	// fraction of texts share their full prefix with an earlier text.
	seen := make(map[string]bool)
	dups := 0
	for _, s := range texts {
		fields := strings.Split(s, " ")
		if seen[strings.Join(fields[:len(fields)-1], " ")] {
			dups++
		}
		seen[s] = true
	}
	if dups < 500 {
		t.Fatalf("only %d/5000 near-duplicate texts; generator should emit ~15%%+", dups)
	}
}

func TestGenerateCitations(t *testing.T) {
	cfg := CitationConfig{Entities: 200, Pairs: 800, PositiveFrac: 0.25, Seed: 11}
	corpus := GenerateCitations(cfg)
	if len(corpus.Pairs) != 800 {
		t.Fatalf("pairs = %d, want 800", len(corpus.Pairs))
	}
	pos := 0
	for _, p := range corpus.Pairs {
		if p.A == p.B {
			t.Fatal("self-pair generated")
		}
		sameEntity := corpus.Records[p.A].Entity == corpus.Records[p.B].Entity
		if p.Match != sameEntity {
			t.Fatal("pair label disagrees with entity ground truth")
		}
		if p.Match {
			pos++
		}
	}
	if pos == 0 || pos > 300 {
		t.Fatalf("positive count %d outside expected band", pos)
	}
	// Determinism.
	corpus2 := GenerateCitations(cfg)
	if !reflect.DeepEqual(corpus.Pairs, corpus2.Pairs) {
		t.Fatal("GenerateCitations not deterministic")
	}
	// Cluster structure: some entity must have >= 3 surface forms so
	// transitive evidence exists.
	count := make(map[int]int)
	for _, r := range corpus.Records {
		count[r.Entity]++
	}
	max := 0
	for _, c := range count {
		if c > max {
			max = c
		}
	}
	if max < 3 {
		t.Fatalf("largest cluster = %d, want >= 3", max)
	}
}

func TestCitationRecordAndText(t *testing.T) {
	c := Citation{ID: "x", Title: "t", Authors: "a", Venue: "v", Year: "2001"}
	r := c.Record()
	if v, _ := r.Get("title"); v != "t" {
		t.Fatal("Record() lost title")
	}
	if got := c.Text(); got != "a. t. v, 2001" {
		t.Fatalf("Text = %q", got)
	}
}

func TestGenerateCitationsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid config")
		}
	}()
	GenerateCitations(CitationConfig{Entities: 1, Pairs: 0})
}

func TestGenerateRestaurants(t *testing.T) {
	d := GenerateRestaurants(300, 86, 5)
	if len(d.Train) != 300 || len(d.Test) != 86 {
		t.Fatalf("sizes = %d/%d", len(d.Train), len(d.Test))
	}
	if d.TargetField != "city" {
		t.Fatalf("target = %q", d.TargetField)
	}
	gold := d.Gold()
	if len(gold) != 86 {
		t.Fatalf("gold len = %d", len(gold))
	}
	for _, g := range gold {
		if g == "" {
			t.Fatal("empty gold city")
		}
		if _, ok := LLMCityForm(g); !ok {
			t.Fatalf("gold city %q unknown to LLM form table", g)
		}
	}
	// Phone area codes map back to a city (possibly a noisy one).
	for _, r := range d.Test {
		phone, _ := r.Get("phone")
		code := strings.SplitN(phone, "-", 2)[0]
		if _, ok := CityForAreaCode(code); !ok {
			t.Fatalf("area code %q maps to no city", code)
		}
	}
}

func TestGenerateBuy(t *testing.T) {
	d := GenerateBuy(300, 65, 5)
	if len(d.Train) != 300 || len(d.Test) != 65 {
		t.Fatalf("sizes = %d/%d", len(d.Train), len(d.Test))
	}
	if d.TargetField != "manufacturer" {
		t.Fatalf("target = %q", d.TargetField)
	}
	branded := 0
	for _, r := range d.Test {
		name, _ := r.Get("name")
		if m, ok := ManufacturerForNameWord(name); ok {
			gold, _ := r.Get("manufacturer")
			if m != gold {
				t.Fatalf("brand token %q in %q disagrees with gold %q", m, name, gold)
			}
			branded++
		}
	}
	if branded == 0 {
		t.Fatal("no test product names carry a brand token")
	}
}

func TestFormDrift(t *testing.T) {
	// The formatting-drift pairs the paper cites must exist.
	if form, ok := LLMManufacturerForm("Tom Tom"); !ok || form != "TomTom" {
		t.Fatalf("Tom Tom drift missing: %q %v", form, ok)
	}
	if form, ok := LLMManufacturerForm("Elgato"); !ok || form != "Elgato Systems" {
		t.Fatalf("Elgato drift missing: %q %v", form, ok)
	}
	if _, ok := LLMManufacturerForm("NoBrand"); ok {
		t.Fatal("unknown brand should miss")
	}
	if form, ok := LLMCityForm("new york"); !ok || form != "New York City" {
		t.Fatalf("city drift missing: %q %v", form, ok)
	}
	if _, ok := LLMCityForm("atlantis"); ok {
		t.Fatal("unknown city should miss")
	}
}

func TestSplitProperty(t *testing.T) {
	// Property: Split never loses or duplicates items for any sizes.
	f := func(n uint8, seed int64) bool {
		items := make([]int, int(n))
		for i := range items {
			items[i] = i
		}
		tr, va, te := Split(items, 0.5, 0.25, seed)
		if len(tr)+len(va)+len(te) != len(items) {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range append(append(append([]int{}, tr...), va...), te...) {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// ImputationDataset is a record collection with one designated target
// attribute to impute. Train records keep their target value (they are the
// ground-truth pool for k-NN and for few-shot examples); Test records are
// the evaluation queries — callers mask the target field before prompting.
type ImputationDataset struct {
	// Name identifies the dataset ("restaurants" or "buy").
	Name string
	// TargetField is the attribute being imputed.
	TargetField string
	// Train records retain ground truth and seed the non-LLM strategies.
	Train []Record
	// Test records are evaluated; their TargetField value is the gold label.
	Test []Record
}

// Gold returns the ground-truth target values of the test records, in order.
func (d *ImputationDataset) Gold() []string {
	out := make([]string, len(d.Test))
	for i, r := range d.Test {
		v, _ := r.Get(d.TargetField)
		out[i] = v
	}
	return out
}

// city models one metro area: the gold label used in the dataset, the
// display form a general-knowledge LLM would naturally produce (which may
// disagree with the gold form — the formatting-drift failure mode the
// paper reports), area codes, street pool, and cuisine bias.
type city struct {
	gold    string
	display string
	// distinct is the probability that a record carries city-distinctive
	// address evidence (street / neighbourhood tag). Large metros are
	// highly recognisable — exactly the places where an LLM's canonical
	// city form drifts from the dataset's gold form, which is what makes
	// the paper's hybrid effective: k-NN confidently (and format-
	// correctly) handles the records where the zero-shot LLM would drift.
	distinct  float64
	areaCodes []string
	streets   []string
	districts []string
	cuisines  []string
}

var cities = []city{
	{"new york", "New York City", 0.88, []string{"212", "646"},
		[]string{"broadway", "lexington ave.", "mulberry st.", "houston st.", "5th ave."},
		[]string{"midtown", "soho", "tribeca"},
		[]string{"delis", "pizza", "steakhouses", "french"}},
	{"los angeles", "LA", 0.88, []string{"213", "310"},
		[]string{"sunset blvd.", "wilshire blvd.", "melrose ave.", "figueroa st."},
		[]string{"hollywood", "venice", "silver lake"},
		[]string{"californian", "mexican", "sushi", "health food"}},
	{"san francisco", "San Francisco", 0.45, []string{"415"},
		[]string{"mission st.", "geary blvd.", "columbus ave.", "market st."},
		[]string{"mission district", "nob hill", "the castro"},
		[]string{"seafood", "chinese", "italian", "vegetarian"}},
	{"atlanta", "Atlanta", 0.45, []string{"404", "770"},
		[]string{"peachtree st.", "ponce de leon ave.", "piedmont ave."},
		[]string{"buckhead", "midtown atl", "decatur"},
		[]string{"southern", "bbq", "soul food", "american"}},
	{"chicago", "Chicago", 0.45, []string{"312", "773"},
		[]string{"michigan ave.", "clark st.", "halsted st.", "wabash ave."},
		[]string{"the loop", "wicker park", "lincoln park"},
		[]string{"steakhouses", "hot dogs", "polish", "pizza"}},
	{"new orleans", "New Orleans", 0.45, []string{"504"},
		[]string{"bourbon st.", "magazine st.", "canal st.", "royal st."},
		[]string{"french quarter", "garden district", "uptown nola"},
		[]string{"cajun", "creole", "seafood", "southern"}},
	{"las vegas", "Las Vegas", 0.45, []string{"702"},
		[]string{"las vegas blvd.", "fremont st.", "paradise rd."},
		[]string{"the strip", "downtown lv", "summerlin"},
		[]string{"buffets", "steakhouses", "french", "american"}},
	{"seattle", "Seattle", 0.45, []string{"206"},
		[]string{"pike st.", "pine st.", "1st ave.", "rainier ave."},
		[]string{"capitol hill", "ballard", "fremont"},
		[]string{"seafood", "coffeehouses", "asian", "american"}},
}

var restaurantNameParts = struct{ first, second []string }{
	first: []string{
		"golden", "blue", "royal", "little", "grand", "old", "silver",
		"lucky", "corner", "harbor", "garden", "sunset", "union", "iron",
		"copper", "market", "river", "velvet", "crystal", "maple",
	},
	second: []string{
		"dragon", "bistro", "grill", "kitchen", "cafe", "tavern", "house",
		"table", "spoon", "oven", "terrace", "cellar", "diner", "palace",
		"brasserie", "cantina", "trattoria", "chophouse", "noodle bar",
		"oyster bar",
	},
}

// manufacturer models one brand for the Buy dataset: the gold label form,
// the form an LLM naturally produces (formatting drift, e.g. "TomTom" vs
// "Tom Tom"), a model-number prefix the LLM recognises (as real LLMs
// recognise vendor SKU patterns), a sampling weight, and the product
// categories the brand sells. Categories deliberately overlap across
// brands so description evidence is ambiguous.
type manufacturer struct {
	gold        string
	display     string
	modelPrefix string
	weight      float64
	products    []string
}

var manufacturers = []manufacturer{
	{"Sony", "Sony", "SN", 1.4, []string{"lcd tv", "digital camera", "mp3 player", "blu-ray player", "home theater system"}},
	{"Tom Tom", "TomTom", "TT", 0.45, []string{"gps navigator", "car mount kit"}},
	{"Elgato", "Elgato Systems", "EG", 0.35, []string{"video capture device", "tv tuner"}},
	{"Panasonic", "Panasonic", "PN", 1.2, []string{"lcd tv", "digital camera", "dvd recorder", "cordless phone"}},
	{"Canon", "Canon", "CN", 1.2, []string{"digital camera", "inkjet printer", "photo scanner", "camcorder"}},
	{"Garmin", "Garmin", "GR", 0.9, []string{"gps navigator", "fitness watch", "marine chartplotter"}},
	{"Belkin", "Belkin", "BK", 0.9, []string{"wireless router", "surge protector", "usb hub"}},
	{"Logitech", "Logitech", "LG", 1.0, []string{"wireless mouse", "webcam", "gaming keyboard", "speaker system"}},
	{"Netgear", "NETGEAR", "NG", 0.9, []string{"wireless router", "gigabit switch", "cable modem"}},
	{"Samsung", "Samsung", "SM", 1.3, []string{"lcd tv", "lcd monitor", "laser printer", "camcorder"}},
	{"D-Link", "D-Link", "DL", 0.8, []string{"gigabit switch", "ip camera", "wireless router"}},
	{"Philips", "Philips", "PH", 1.0, []string{"lcd tv", "dvd recorder", "digital photo frame"}},
}

// LLMCityForm returns the display (general-knowledge) form of the given
// gold city label, and whether the city is known. The simulator uses this
// to reproduce formatting drift.
func LLMCityForm(gold string) (string, bool) {
	for _, c := range cities {
		if c.gold == gold {
			return c.display, true
		}
	}
	return "", false
}

// CityForAreaCode returns the gold city label whose metro owns the given
// phone area code.
func CityForAreaCode(code string) (string, bool) {
	for _, c := range cities {
		for _, ac := range c.areaCodes {
			if ac == code {
				return c.gold, true
			}
		}
	}
	return "", false
}

// LLMManufacturerForm returns the display form of a gold manufacturer
// label, and whether the brand is known.
func LLMManufacturerForm(gold string) (string, bool) {
	for _, m := range manufacturers {
		if m.gold == gold {
			return m.display, true
		}
	}
	return "", false
}

// ManufacturerForNameWord scans a product name for a known brand token and
// returns the gold manufacturer label. Matching is case-insensitive on the
// display or gold form appearing anywhere in the product name.
func ManufacturerForNameWord(productName string) (string, bool) {
	lower := strings.ToLower(productName)
	for _, m := range manufacturers {
		if strings.Contains(lower, strings.ToLower(m.gold)) ||
			strings.Contains(lower, strings.ToLower(m.display)) {
			return m.gold, true
		}
	}
	return "", false
}

// sharedStreets appear in every metro; only a minority of addresses use a
// city-distinctive street, so neighbourhood evidence is informative but
// noisy — the regime in which k-NN imputation lands near the paper's 73%.
var sharedStreets = []string{
	"main st.", "oak ave.", "2nd ave.", "park blvd.", "washington st.",
	"maple dr.", "center st.", "lake ave.", "hill rd.", "college ave.",
}

// GenerateRestaurants builds the synthetic Restaurants imputation dataset:
// records with name/address/city/phone/cuisine where "city" is the target.
// The test partition has exactly testN records (the paper's slice has 86).
func GenerateRestaurants(trainN, testN int, seed int64) *ImputationDataset {
	rng := rand.New(rand.NewSource(seed))
	total := trainN + testN
	records := make([]Record, 0, total)
	for i := 0; i < total; i++ {
		c := cities[rng.Intn(len(cities))]
		name := fmt.Sprintf("%s %s",
			restaurantNameParts.first[rng.Intn(len(restaurantNameParts.first))],
			restaurantNameParts.second[rng.Intn(len(restaurantNameParts.second))])
		street := sharedStreets[rng.Intn(len(sharedStreets))]
		if rng.Float64() < c.distinct { // city-distinctive street
			street = c.streets[rng.Intn(len(c.streets))]
		}
		addr := fmt.Sprintf("%d %s", 10+rng.Intn(990), street)
		if rng.Float64() < c.distinct { // city-distinctive neighbourhood tag
			addr = fmt.Sprintf("%s, %s", addr, c.districts[rng.Intn(len(c.districts))])
		}
		// A small fraction of records carry a noisy (out-of-metro) area
		// code, so even the strongest evidence is imperfect.
		code := c.areaCodes[rng.Intn(len(c.areaCodes))]
		if rng.Float64() < 0.08 {
			other := cities[rng.Intn(len(cities))]
			code = other.areaCodes[rng.Intn(len(other.areaCodes))]
		}
		phone := fmt.Sprintf("%s-%03d-%04d", code, 100+rng.Intn(900), rng.Intn(10000))
		cuisine := c.cuisines[rng.Intn(len(c.cuisines))]
		if rng.Float64() < 0.35 { // cross-metro cuisine noise
			other := cities[rng.Intn(len(cities))]
			cuisine = other.cuisines[rng.Intn(len(other.cuisines))]
		}
		records = append(records, Record{
			ID: fmt.Sprintf("rest-%03d", i),
			Fields: []Field{
				{"name", name},
				{"addr", addr},
				{"city", c.gold},
				{"phone", phone},
				{"type", cuisine},
			},
		})
	}
	return &ImputationDataset{
		Name:        "restaurants",
		TargetField: "city",
		Train:       records[:trainN],
		Test:        records[trainN:],
	}
}

// GenerateBuy builds the synthetic Buy imputation dataset: product records
// with name/description/price where "manufacturer" is the target. The test
// partition has exactly testN records (the paper's slice has 65). Brands
// are drawn by popularity weight; a majority of product names lead with
// the brand, the rest leave only the SKU prefix and the (ambiguous)
// category as evidence.
func GenerateBuy(trainN, testN int, seed int64) *ImputationDataset {
	rng := rand.New(rand.NewSource(seed))
	var totalWeight float64
	for _, m := range manufacturers {
		totalWeight += m.weight
	}
	pick := func() manufacturer {
		r := rng.Float64() * totalWeight
		for _, m := range manufacturers {
			if r -= m.weight; r < 0 {
				return m
			}
		}
		return manufacturers[len(manufacturers)-1]
	}
	// Listing noise shared across every brand: marketing qualifiers and
	// colours that dilute the embedding signal the way real marketplace
	// titles do.
	qualifiers := []string{"brand new", "refurbished", "open box", "oem", "retail"}
	colors := []string{"black", "silver", "white", "graphite", "blue"}
	features := []string{
		"hdmi input", "usb port", "wifi ready", "bluetooth", "remote control",
		"hd display", "portable design", "compact body", "wireless link",
		"energy star", "wall mountable", "touch controls",
	}
	total := trainN + testN
	records := make([]Record, 0, total)
	for i := 0; i < total; i++ {
		m := pick()
		prod := m.products[rng.Intn(len(m.products))]
		model := fmt.Sprintf("%s%d", m.modelPrefix, 100+rng.Intn(900))
		parts := []string{qualifiers[rng.Intn(len(qualifiers))]}
		if rng.Float64() < 0.5 {
			parts = append(parts, m.display)
		}
		parts = append(parts, prod, colors[rng.Intn(len(colors))])
		name := strings.Join(parts, " ")
		f1 := features[rng.Intn(len(features))]
		f2 := features[rng.Intn(len(features))]
		desc := fmt.Sprintf("%s with %s and %s, model number %s", prod, f1, f2, model)
		price := fmt.Sprintf("$%d.%02d", 20+rng.Intn(980), rng.Intn(100))
		records = append(records, Record{
			ID: fmt.Sprintf("buy-%03d", i),
			Fields: []Field{
				{"name", name},
				{"description", desc},
				{"manufacturer", m.gold},
				{"price", price},
			},
		})
	}
	return &ImputationDataset{
		Name:        "buy",
		TargetField: "manufacturer",
		Train:       records[:trainN],
		Test:        records[trainN:],
	}
}

// CityGoldLabels returns every gold city label, in table order.
func CityGoldLabels() []string {
	out := make([]string, len(cities))
	for i, c := range cities {
		out[i] = c.gold
	}
	return out
}

// ManufacturerGoldLabels returns every gold manufacturer label, in table
// order.
func ManufacturerGoldLabels() []string {
	out := make([]string, len(manufacturers))
	for i, m := range manufacturers {
		out[i] = m.gold
	}
	return out
}

// ManufacturerForModelPrefix returns the brand whose SKU prefix starts
// the given model number (e.g. "SN482" -> Sony).
func ManufacturerForModelPrefix(model string) (string, bool) {
	upper := strings.ToUpper(model)
	for _, m := range manufacturers {
		if strings.HasPrefix(upper, m.modelPrefix) {
			return m.gold, true
		}
	}
	return "", false
}

// ManufacturerCandidates returns the gold labels of every brand whose
// product vocabulary appears in the given description text, in table
// order. Categories overlap across brands, so description-only inference
// is genuinely ambiguous.
func ManufacturerCandidates(description string) []string {
	lower := strings.ToLower(description)
	var out []string
	for _, m := range manufacturers {
		for _, p := range m.products {
			if strings.Contains(lower, p) {
				out = append(out, m.gold)
				break
			}
		}
	}
	return out
}

package dataset

import "sort"

// Flavor is one ice-cream flavour with its latent chocolateyness score in
// [0, 1]. The score is the ground truth used by Table 1: flavours whose
// names begin with "chocolate" score highest, cocoa-adjacent flavours sit
// in the middle, and fruit flavours score lowest — matching the
// human-labelled ordering described in the paper.
type Flavor struct {
	Name string
	// Chocolateyness is the latent ground-truth score in [0, 1].
	Chocolateyness float64
}

// flavors is the fixed 20-flavour benchmark set. Scores were assigned from
// an ingredient lexicon: explicit chocolate content dominates, then cocoa
// derivatives (fudge, brownie, mocha), then neutral creams, then fruit.
var flavors = []Flavor{
	{"chocolate fudge brownie", 1.00},
	{"triple chocolate", 0.98},
	{"chocolate chip cookie dough", 0.90},
	{"chocolate hazelnut swirl", 0.88},
	{"dark chocolate orange", 0.85},
	{"mocha almond fudge", 0.78},
	{"rocky road", 0.72},
	{"brownie batter", 0.70},
	{"cookies and cream", 0.58},
	{"mint chocolate chip", 0.55},
	{"tiramisu", 0.45},
	{"salted caramel", 0.35},
	{"butter pecan", 0.30},
	{"vanilla bean", 0.22},
	{"pistachio", 0.18},
	{"green tea", 0.12},
	{"strawberry cheesecake", 0.10},
	{"peach cobbler", 0.06},
	{"raspberry ripple", 0.04},
	{"lemon sorbet", 0.00},
}

// Flavors returns the 20-flavour benchmark in a fixed presentation order
// (alphabetical), so the ordering given to the LLM carries no signal.
func Flavors() []Flavor {
	out := make([]Flavor, len(flavors))
	copy(out, flavors)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FlavorGroundTruth returns flavour names ordered from most to least
// chocolatey — the human-verified ground-truth ranking of Table 1.
func FlavorGroundTruth() []string {
	out := make([]Flavor, len(flavors))
	copy(out, flavors)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Chocolateyness > out[j].Chocolateyness
	})
	names := make([]string, len(out))
	for i, f := range out {
		names[i] = f.Name
	}
	return names
}

// FlavorScore returns the latent chocolateyness of the named flavour and
// whether the flavour is part of the benchmark set.
func FlavorScore(name string) (float64, bool) {
	for _, f := range flavors {
		if f.Name == name {
			return f.Chocolateyness, true
		}
	}
	return 0, false
}

// FlavorNames returns the flavour names in presentation (alphabetical) order.
func FlavorNames() []string {
	fs := Flavors()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

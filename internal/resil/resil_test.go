package resil

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
)

// flakyModel fails the first failN attempts per prompt with err, then
// succeeds.
func flakyModel(failN int, err error) (llm.Model, *atomic.Int64) {
	var attempts atomic.Int64
	var perPrompt = map[string]*atomic.Int64{}
	m := llm.Func{ModelName: "flaky", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		attempts.Add(1)
		c, ok := perPrompt[req.Prompt]
		if !ok {
			c = &atomic.Int64{}
			perPrompt[req.Prompt] = c
		}
		if int(c.Add(1)) <= failN {
			return llm.Response{}, err
		}
		return llm.Response{Text: "ok: " + req.Prompt}, nil
	}}
	return m, &attempts
}

func TestRetryHealsTransient(t *testing.T) {
	inner, attempts := flakyModel(2, llm.ErrTransient)
	m := Wrap(inner, Policy{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "a"})
	if err != nil || resp.Text != "ok: a" {
		t.Fatalf("got %q, %v", resp.Text, err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
	s := m.Stats()
	if s.Calls != 1 || s.Retries != 2 || s.Attempts != 3 {
		t.Fatalf("stats %+v, want 1 call / 2 retries / 3 attempts", s)
	}
}

func TestRetriesExhaust(t *testing.T) {
	inner, attempts := flakyModel(99, llm.ErrTransient)
	m := Wrap(inner, Policy{MaxAttempts: 3})
	if _, err := m.Complete(context.Background(), llm.Request{Prompt: "a"}); !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("want transient after exhaustion, got %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
}

func TestPermanentNotRetried(t *testing.T) {
	inner, attempts := flakyModel(99, llm.ErrPermanent)
	m := Wrap(inner, Policy{MaxAttempts: 5})
	if _, err := m.Complete(context.Background(), llm.Request{Prompt: "a"}); !errors.Is(err, llm.ErrPermanent) {
		t.Fatalf("want permanent, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("permanent error retried: %d attempts", attempts.Load())
	}
}

func TestAllowRetryBudget(t *testing.T) {
	inner, attempts := flakyModel(99, llm.ErrTransient)
	budget := int32(1)
	m := Wrap(inner, Policy{
		MaxAttempts: 5,
		AllowRetry: func(context.Context) bool {
			return atomic.AddInt32(&budget, -1) >= 0
		},
	})
	if _, err := m.Complete(context.Background(), llm.Request{Prompt: "a"}); err == nil {
		t.Fatal("expected failure")
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempts = %d, want 2 (1 retry allowed)", attempts.Load())
	}
	if s := m.Stats(); s.RetryDenials != 1 || s.Retries != 1 {
		t.Fatalf("stats %+v, want 1 retry / 1 denial", s)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	failing := atomic.Bool{}
	failing.Store(true)
	inner := llm.Func{ModelName: "m", Fn: func(context.Context, llm.Request) (llm.Response, error) {
		if failing.Load() {
			return llm.Response{}, llm.ErrTransient
		}
		return llm.Response{Text: "ok"}, nil
	}}
	m := Wrap(inner, Policy{MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := m.Complete(ctx, llm.Request{Prompt: "x"}); !errors.Is(err, llm.ErrTransient) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if open, after := m.BreakerState(); !open || after <= 0 {
		t.Fatalf("breaker not open after threshold (open=%v after=%s)", open, after)
	}
	_, err := m.Complete(ctx, llm.Request{Prompt: "x"})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want breaker-open refusal, got %v", err)
	}
	var boe *BreakerOpenError
	if !errors.As(err, &boe) || boe.RetryAfter <= 0 {
		t.Fatalf("refusal carries no retry hint: %v", err)
	}

	// Probe while still failing: reopens.
	time.Sleep(35 * time.Millisecond)
	if _, err := m.Complete(ctx, llm.Request{Prompt: "x"}); !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("probe: %v", err)
	}
	if open, _ := m.BreakerState(); !open {
		t.Fatal("failed probe did not reopen breaker")
	}

	// Recover: cooldown, then a successful probe closes it.
	failing.Store(false)
	time.Sleep(35 * time.Millisecond)
	if resp, err := m.Complete(ctx, llm.Request{Prompt: "x"}); err != nil || resp.Text != "ok" {
		t.Fatalf("recovery probe: %q, %v", resp.Text, err)
	}
	if open, _ := m.BreakerState(); open {
		t.Fatal("breaker still open after successful probe")
	}
	if resp, err := m.Complete(ctx, llm.Request{Prompt: "y"}); err != nil || resp.Text != "ok" {
		t.Fatalf("post-recovery call: %q, %v", resp.Text, err)
	}
	if s := m.Stats(); s.BreakerOpens != 2 || s.BreakerDenials != 1 {
		t.Fatalf("stats %+v, want 2 opens / 1 denial", s)
	}
}

func TestHedgeWinsSlowPrimary(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		// First call is slow, the hedge is instant.
		if calls.Add(1) == 1 {
			select {
			case <-time.After(200 * time.Millisecond):
			case <-ctx.Done():
				return llm.Response{}, ctx.Err()
			}
		}
		return llm.Response{Text: "ok"}, nil
	}}
	m := Wrap(inner, Policy{MaxAttempts: 1, HedgeAfter: 5 * time.Millisecond})
	start := time.Now()
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "x"})
	if err != nil || resp.Text != "ok" {
		t.Fatalf("got %q, %v", resp.Text, err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("hedge did not cut latency: %s", elapsed)
	}
	if s := m.Stats(); s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("stats %+v, want 1 hedge / 1 win", s)
	}
}

func TestHedgeSurvivesPrimaryFailure(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		if calls.Add(1) == 1 {
			time.Sleep(10 * time.Millisecond)
			return llm.Response{}, llm.ErrTransient
		}
		time.Sleep(30 * time.Millisecond)
		return llm.Response{Text: "hedge"}, nil
	}}
	m := Wrap(inner, Policy{MaxAttempts: 1, HedgeAfter: time.Millisecond})
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "x"})
	if err != nil || resp.Text != "hedge" {
		t.Fatalf("got %q, %v (hedge result dropped after primary failure)", resp.Text, err)
	}
}

func TestAttemptTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang until the per-attempt deadline
			return llm.Response{}, ctx.Err()
		}
		return llm.Response{Text: "ok"}, nil
	}}
	m := Wrap(inner, Policy{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond})
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "x"})
	if err != nil || resp.Text != "ok" {
		t.Fatalf("got %q, %v", resp.Text, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestCallerCancellationStopsRetries(t *testing.T) {
	inner, attempts := flakyModel(99, llm.ErrTransient)
	m := Wrap(inner, Policy{MaxAttempts: 10, BaseBackoff: 20 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := m.Complete(ctx, llm.Request{Prompt: "x"}); err == nil {
		t.Fatal("expected error after cancellation")
	}
	if attempts.Load() > 2 {
		t.Fatalf("kept retrying after cancel: %d attempts", attempts.Load())
	}
}

func TestZeroPolicyPassthrough(t *testing.T) {
	inner := llm.Func{ModelName: "m", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Text: "v:" + req.Prompt}, nil
	}}
	m := Wrap(inner, Policy{})
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "p"})
	if err != nil || resp.Text != "v:p" {
		t.Fatalf("got %q, %v", resp.Text, err)
	}
	s := m.Stats()
	if s.Calls != 1 || s.Attempts != 1 || s.Retries != 0 || s.Hedges != 0 {
		t.Fatalf("zero policy stats %+v", s)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	m := Wrap(llm.Func{ModelName: "m"}, Policy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})
	for k := 1; k < 8; k++ {
		a, b := m.backoff("p", k), m.backoff("p", k)
		if a != b {
			t.Fatalf("jitter nondeterministic at k=%d: %s vs %s", k, a, b)
		}
		if a > 4*time.Millisecond {
			t.Fatalf("backoff uncapped at k=%d: %s", k, a)
		}
		if a < time.Millisecond/2 {
			t.Fatalf("backoff below half the base at k=%d: %s", k, a)
		}
	}
}

// Package resil wraps an llm.Model with the resilience mechanics a
// production service needs when the upstream flakes: bounded retries
// with capped exponential backoff and deterministic jitter, per-attempt
// deadlines, an optional hedged second request after a fixed latency
// trigger, and a circuit breaker with half-open probing. The wrapper
// sits *below* the cache and batcher (see docs/RESILIENCE.md): retried
// answers are cached once, batched envelopes retry
// whole-envelope-then-solo, and callers above see one logical call per
// ask however many physical attempts it took.
package resil

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/llm"
)

// ErrBreakerOpen reports a call refused without touching the upstream
// because the circuit breaker is open. Match with errors.Is; unwrap to
// *BreakerOpenError for the retry hint.
var ErrBreakerOpen = errors.New("resil: circuit breaker open")

// BreakerOpenError carries the remaining cooldown so servers can emit
// Retry-After.
type BreakerOpenError struct {
	// RetryAfter is how long until the breaker will admit a probe.
	RetryAfter time.Duration
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resil: circuit breaker open, retry after %s", e.RetryAfter.Round(time.Millisecond))
}

// Is matches ErrBreakerOpen.
func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// Policy configures the wrapper. The zero policy means one attempt, no
// hedging, no breaker — a passthrough.
type Policy struct {
	// MaxAttempts is the total number of attempts per call (1 = no
	// retries). 0 defaults to 1.
	MaxAttempts int
	// BaseBackoff seeds the capped exponential backoff between attempts:
	// attempt k waits jitter(BaseBackoff << (k-1)), capped at MaxBackoff.
	// 0 means no backoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff; 0 means 32x BaseBackoff.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each attempt with its own deadline; an attempt
	// that exceeds it counts as a timeout failure and is retryable. 0
	// means no per-attempt deadline.
	AttemptTimeout time.Duration
	// HedgeAfter launches a second identical request if the first has not
	// returned after this long, and takes whichever answers first — a
	// fixed-latency stand-in for the usual p95 trigger, kept deterministic
	// for tests. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// failed calls (calls, not attempts). 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// one half-open probe. 0 defaults to 100ms.
	BreakerCooldown time.Duration
	// AllowRetry, when non-nil, is consulted before every retry and every
	// hedge launch; returning false spends no further attempts on the
	// call. Servers use it to charge per-tenant retry budgets so one
	// tenant's flaky traffic cannot consume everyone's headroom.
	AllowRetry func(ctx context.Context) bool
	// OnEvent, when non-nil, observes resilience events as they happen
	// (see Event). Must be safe for concurrent use.
	OnEvent func(Event)
}

// Event is one resilience occurrence, delivered to Policy.OnEvent and
// folded into attribution ledgers.
type Event struct {
	Retries      int // retry attempts launched
	Hedges       int // hedged requests launched
	HedgeWins    int // hedged requests that answered first
	BreakerOpens int // closed->open transitions
	RetryDenials int // retries refused by AllowRetry
}

// Stats accumulates the wrapper's lifetime counters.
type Stats struct {
	Calls          int // logical calls through the wrapper
	Attempts       int // physical attempts against the upstream
	Retries        int
	Hedges         int
	HedgeWins      int
	BreakerOpens   int
	BreakerDenials int // calls refused while open
	RetryDenials   int
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Model applies a Policy around an inner llm.Model. Safe for concurrent
// use; breaker state is shared across all callers of the wrapper, which
// is the point — it protects one upstream.
type Model struct {
	inner  llm.Model
	policy Policy

	mu        sync.Mutex
	stats     Stats
	state     int       // breaker state
	failures  int       // consecutive failed calls while closed
	openUntil time.Time // when an open breaker admits a probe
	probing   bool      // a half-open probe is in flight
}

// Wrap applies the policy to m.
func Wrap(m llm.Model, p Policy) *Model {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 32 * p.BaseBackoff
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 100 * time.Millisecond
	}
	return &Model{inner: m, policy: p}
}

// Name implements llm.Model.
func (m *Model) Name() string { return m.inner.Name() }

// Stats returns a snapshot of the lifetime counters.
func (m *Model) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// BreakerState reports whether the breaker currently refuses calls and,
// if so, how long until it will admit a probe. Servers consult this at
// admission time to fail fast with Retry-After instead of accepting work
// that cannot run.
func (m *Model) BreakerState() (open bool, retryAfter time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == breakerOpen {
		if rem := time.Until(m.openUntil); rem > 0 {
			return true, rem
		}
	}
	return false, 0
}

// emit delivers an event to the observer outside the lock.
func (m *Model) emit(ev Event) {
	if m.policy.OnEvent != nil {
		m.policy.OnEvent(ev)
	}
}

// admit checks the breaker before a call. It returns an error to refuse
// the call, or probe=true when this call is the half-open probe.
func (m *Model) admit() (probe bool, err error) {
	if m.policy.BreakerThreshold <= 0 {
		return false, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case breakerOpen:
		if rem := time.Until(m.openUntil); rem > 0 {
			m.stats.BreakerDenials++
			return false, &BreakerOpenError{RetryAfter: rem}
		}
		// Cooldown elapsed: this call becomes the half-open probe.
		m.state = breakerHalfOpen
		m.probing = true
		return true, nil
	case breakerHalfOpen:
		if m.probing {
			m.stats.BreakerDenials++
			return false, &BreakerOpenError{RetryAfter: m.policy.BreakerCooldown}
		}
		m.probing = true
		return true, nil
	}
	return false, nil
}

// settle records a call outcome in the breaker. Only upstream-class
// failures (the retryable kinds, exhausted) count toward opening:
// permanent poisoned-prompt errors and caller cancellations say nothing
// about upstream health, so they neither trip nor reset the breaker.
func (m *Model) settle(probe bool, callErr error) {
	if m.policy.BreakerThreshold <= 0 {
		return
	}
	m.mu.Lock()
	opened := false
	if probe {
		m.probing = false
	}
	if callErr == nil {
		m.failures = 0
		m.state = breakerClosed
	} else if !retryable(callErr) {
		// Neutral outcome: leave the breaker where it is.
	} else {
		m.failures++
		if m.state == breakerHalfOpen || m.failures >= m.policy.BreakerThreshold {
			if m.state != breakerOpen {
				m.stats.BreakerOpens++
				opened = true
			}
			m.state = breakerOpen
			m.openUntil = time.Now().Add(m.policy.BreakerCooldown)
			m.failures = 0
		}
	}
	m.mu.Unlock()
	if opened {
		m.emit(Event{BreakerOpens: 1})
	}
}

// retryable classifies an error as worth another attempt. Permanent
// faults, context cancellation from the caller, and unknown errors stop
// the loop; typed transient/timeout/rate-limit faults (and per-attempt
// deadline blowouts) retry.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, llm.ErrPermanent):
		return false
	case errors.Is(err, llm.ErrTransient),
		errors.Is(err, llm.ErrTimeout),
		errors.Is(err, llm.ErrRateLimit),
		errors.Is(err, context.DeadlineExceeded):
		return true
	}
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// backoff returns the wait before attempt k (1-based retry index) with
// deterministic jitter in [50%,100%] of the capped exponential step,
// keyed by the prompt so replays are stable but calls don't thunder in
// lockstep.
func (m *Model) backoff(prompt string, k int) time.Duration {
	if m.policy.BaseBackoff <= 0 {
		return 0
	}
	d := m.policy.BaseBackoff << uint(k-1)
	if d <= 0 || d > m.policy.MaxBackoff {
		d = m.policy.MaxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", prompt, k)
	// Murmur-style finalizer: FNV alone barely avalanches the trailing
	// attempt index, so without it every retry of a prompt would jitter
	// identically.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	frac := 0.5 + 0.5*float64(x>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// attempt runs one physical attempt under the per-attempt deadline.
func (m *Model) attempt(ctx context.Context, req llm.Request) (llm.Response, error) {
	m.mu.Lock()
	m.stats.Attempts++
	m.mu.Unlock()
	if m.policy.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.policy.AttemptTimeout)
		defer cancel()
	}
	return m.inner.Complete(ctx, req)
}

// Complete implements llm.Model: breaker admission, then up to
// MaxAttempts attempts with backoff, each optionally hedged.
func (m *Model) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	probe, err := m.admit()
	if err != nil {
		return llm.Response{}, err
	}
	m.mu.Lock()
	m.stats.Calls++
	m.mu.Unlock()

	var resp llm.Response
	for k := 0; ; k++ {
		resp, err = m.attemptHedged(ctx, req)
		if err == nil || !retryable(err) {
			break
		}
		if k+1 >= m.policy.MaxAttempts || ctx.Err() != nil {
			break
		}
		if m.policy.AllowRetry != nil && !m.policy.AllowRetry(ctx) {
			m.mu.Lock()
			m.stats.RetryDenials++
			m.mu.Unlock()
			m.emit(Event{RetryDenials: 1})
			break
		}
		if d := m.backoff(req.Prompt, k+1); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				m.settle(probe, ctx.Err())
				return llm.Response{}, ctx.Err()
			}
			timer.Stop()
		}
		m.mu.Lock()
		m.stats.Retries++
		m.mu.Unlock()
		m.emit(Event{Retries: 1})
	}
	m.settle(probe, err)
	return resp, err
}

// attemptHedged runs one attempt, optionally racing a hedged duplicate
// launched HedgeAfter into the wait. The first completion wins; the
// loser's result is drained and dropped. Hedges spend the same
// AllowRetry budget as retries.
func (m *Model) attemptHedged(ctx context.Context, req llm.Request) (llm.Response, error) {
	if m.policy.HedgeAfter <= 0 {
		return m.attempt(ctx, req)
	}
	type result struct {
		resp   llm.Response
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	go func() {
		resp, err := m.attempt(ctx, req)
		ch <- result{resp, err, false}
	}()
	timer := time.NewTimer(m.policy.HedgeAfter)
	defer timer.Stop()
	launched := false
	for {
		select {
		case r := <-ch:
			if r.err != nil && launched {
				// Primary (or first finisher) failed but a twin is still in
				// flight — give it the chance to answer.
				launched = false
				continue
			}
			if r.hedged {
				m.mu.Lock()
				m.stats.HedgeWins++
				m.mu.Unlock()
				m.emit(Event{HedgeWins: 1})
			}
			return r.resp, r.err
		case <-timer.C:
			if launched {
				continue
			}
			if m.policy.AllowRetry != nil && !m.policy.AllowRetry(ctx) {
				m.mu.Lock()
				m.stats.RetryDenials++
				m.mu.Unlock()
				m.emit(Event{RetryDenials: 1})
				continue
			}
			launched = true
			m.mu.Lock()
			m.stats.Hedges++
			m.mu.Unlock()
			m.emit(Event{Hedges: 1})
			go func() {
				resp, err := m.attempt(ctx, req)
				ch <- result{resp, err, true}
			}()
		}
	}
}

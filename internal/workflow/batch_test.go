package workflow

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

var envTaskRe = regexp.MustCompile(`(?m)^### Task (\d+)[ \t]*$`)

// envelopeModel answers unit prompts with "ans:<prompt first line>" and
// multi-task envelopes with one section per task, so routing is
// observable. mangle, when set, rewrites the envelope completion to
// exercise the split/retry path. Counts upstream calls.
func envelopeModel(calls *atomic.Int64, mangle func(string) string) llm.Model {
	answer := func(p string) string {
		return "ans:" + strings.SplitN(strings.TrimRight(p, "\n"), "\n", 2)[0]
	}
	return llm.Func{
		ModelName: "env",
		Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			calls.Add(1)
			text := ""
			if strings.HasPrefix(req.Prompt, "Below are ") {
				locs := envTaskRe.FindAllStringSubmatchIndex(req.Prompt, -1)
				for i, loc := range locs {
					start := loc[1] + 1
					end := len(req.Prompt)
					if i+1 < len(locs) {
						end = locs[i+1][0]
					}
					text += fmt.Sprintf("### Task %d\n%s\n", i+1, answer(req.Prompt[start:end]))
				}
				if mangle != nil {
					text = mangle(text)
				}
			} else {
				text = answer(req.Prompt)
			}
			return llm.Response{
				Text:  text,
				Model: "env",
				Usage: token.Usage{PromptTokens: token.Count(req.Prompt), CompletionTokens: token.Count(text), Calls: 1},
			}, nil
		},
	}
}

// completeN fans n distinct unit prompts through m concurrently and
// returns the answer per index.
func completeN(t *testing.T, m llm.Model, n int) []string {
	t.Helper()
	ctx := context.Background()
	out, err := Map(ctx, n, n, func(ctx context.Context, i int) (string, error) {
		resp, err := m.Complete(ctx, llm.Request{Prompt: fmt.Sprintf("task %d\ndo it\n", i)})
		if err != nil {
			return "", err
		}
		return resp.Text, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBatchingPacksConcurrentTasks(t *testing.T) {
	var calls atomic.Int64
	b := NewBatching(envelopeModel(&calls, nil), BatchOptions{MaxBatch: 4, Linger: 50 * time.Millisecond})
	out := completeN(t, b, 4)
	for i, text := range out {
		if want := fmt.Sprintf("ans:task %d", i); text != want {
			t.Fatalf("task %d answer = %q, want %q (batch split misrouted)", i, text, want)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("upstream calls = %d, want 1 envelope", calls.Load())
	}
	if batches, packed, retried := b.Stats(); batches != 1 || packed != 4 || retried != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/4/0", batches, packed, retried)
	}
}

func TestBatchingFlushesStragglersAfterLinger(t *testing.T) {
	var calls atomic.Int64
	b := NewBatching(envelopeModel(&calls, nil), BatchOptions{MaxBatch: 64, Linger: 5 * time.Millisecond})
	out := completeN(t, b, 3)
	for i, text := range out {
		if want := fmt.Sprintf("ans:task %d", i); text != want {
			t.Fatalf("task %d answer = %q, want %q", i, text, want)
		}
	}
	if calls.Load() < 1 || calls.Load() > 3 {
		t.Fatalf("upstream calls = %d, want a linger-flushed batch (1..3)", calls.Load())
	}
}

func TestBatchingSoloRequestGoesVerbatim(t *testing.T) {
	var calls atomic.Int64
	var sawPrompt atomic.Value
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		sawPrompt.Store(req.Prompt)
		return llm.Response{Text: "ok", Model: "m"}, nil
	}}
	b := NewBatching(inner, BatchOptions{MaxBatch: 8, Linger: time.Millisecond})
	resp, err := b.Complete(context.Background(), llm.Request{Prompt: "lonely\n"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" || sawPrompt.Load() != "lonely\n" {
		t.Fatalf("solo request must pass through unmodified; upstream saw %q", sawPrompt.Load())
	}
}

// TestBatchingMalformedCompletionRetriesSolo: the model returns an
// unsplittable completion for the envelope; every task must round-trip
// through the retry path and still get its standalone answer.
func TestBatchingMalformedCompletionRetriesSolo(t *testing.T) {
	var calls atomic.Int64
	mangle := func(string) string { return "I answered everything at once, good luck." }
	b := NewBatching(envelopeModel(&calls, mangle), BatchOptions{MaxBatch: 4, Linger: 50 * time.Millisecond})
	out := completeN(t, b, 4)
	for i, text := range out {
		if want := fmt.Sprintf("ans:task %d", i); text != want {
			t.Fatalf("task %d answer = %q, want %q after retry", i, text, want)
		}
	}
	// 1 envelope + 4 solo retries.
	if calls.Load() != 5 {
		t.Fatalf("upstream calls = %d, want 5", calls.Load())
	}
	if _, _, retried := b.Stats(); retried != 4 {
		t.Fatalf("retried = %d, want 4", retried)
	}
}

// TestBatchingSkippedSectionRetriesJustThatTask: the model drops one
// section (real models do this on long batches); only that task re-issues.
func TestBatchingSkippedSectionRetriesJustThatTask(t *testing.T) {
	var calls atomic.Int64
	mangle := func(text string) string {
		return strings.Replace(text, "### Task 2\n", "### Task skipped\n", 1)
	}
	b := NewBatching(envelopeModel(&calls, mangle), BatchOptions{MaxBatch: 4, Linger: 50 * time.Millisecond})
	out := completeN(t, b, 4)
	for i, text := range out {
		if want := fmt.Sprintf("ans:task %d", i); text != want {
			t.Fatalf("task %d answer = %q, want %q", i, text, want)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("upstream calls = %d, want 2 (envelope + one retry)", calls.Load())
	}
}

// TestBatchingEnvelopeErrorRetriesEachWaiterSolo: the envelope call
// itself fails; the error must NOT fan out to every co-batched waiter —
// each task solo-retries with its own original request and still gets its
// standalone answer.
func TestBatchingEnvelopeErrorRetriesEachWaiterSolo(t *testing.T) {
	var calls atomic.Int64
	inner := envelopeModel(&calls, nil)
	failing := llm.Func{ModelName: "env", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.HasPrefix(req.Prompt, "Below are ") {
			calls.Add(1)
			return llm.Response{}, fmt.Errorf("upstream hiccup")
		}
		return inner.Complete(ctx, req)
	}}
	b := NewBatching(failing, BatchOptions{MaxBatch: 4, Linger: 50 * time.Millisecond})
	out := completeN(t, b, 4)
	for i, text := range out {
		if want := fmt.Sprintf("ans:task %d", i); text != want {
			t.Fatalf("task %d answer = %q, want %q after solo retry", i, text, want)
		}
	}
	// 1 failed envelope + 4 solo retries.
	if calls.Load() != 5 {
		t.Fatalf("upstream calls = %d, want 5", calls.Load())
	}
	// The failed envelope was still a real upstream call: batches counts
	// it, packed does not (no task was answered from it).
	if batches, packed, retried := b.Stats(); batches != 1 || packed != 0 || retried != 4 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/4", batches, packed, retried)
	}
}

// TestBatchingSoloRetriesRunConcurrently: after a failed envelope, the
// solo retries must overlap rather than serialize. The model's unit-task
// path blocks until two retries are simultaneously in flight; sequential
// retries would park the first one forever.
func TestBatchingSoloRetriesRunConcurrently(t *testing.T) {
	var envCalls, soloInFlight atomic.Int64
	release := make(chan struct{})
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.HasPrefix(req.Prompt, "Below are ") {
			envCalls.Add(1)
			return llm.Response{}, fmt.Errorf("bad envelope")
		}
		if soloInFlight.Add(1) == 2 {
			close(release)
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
			t.Error("solo retries did not run concurrently")
		}
		return llm.Response{Text: "ok:" + req.Prompt, Model: "m"}, nil
	}}
	b := NewBatching(inner, BatchOptions{MaxBatch: 2, Linger: 50 * time.Millisecond})
	out := completeN(t, b, 2)
	for i, text := range out {
		if want := fmt.Sprintf("ok:task %d\ndo it\n", i); text != want {
			t.Fatalf("task %d answer = %q, want %q", i, text, want)
		}
	}
	if envCalls.Load() != 1 {
		t.Fatalf("envelope calls = %d, want 1", envCalls.Load())
	}
}

// TestBatchingEnvelopeErrorKeepsWaiterContexts: a waiter whose own
// context is already cancelled gets its own context error from the solo
// retry, while the other waiters of the failed envelope still succeed.
func TestBatchingEnvelopeErrorKeepsWaiterContexts(t *testing.T) {
	var calls atomic.Int64
	inner := envelopeModel(&calls, nil)
	failing := llm.Func{ModelName: "env", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if strings.HasPrefix(req.Prompt, "Below are ") {
			return llm.Response{}, fmt.Errorf("upstream hiccup")
		}
		if err := ctx.Err(); err != nil {
			return llm.Response{}, err
		}
		return inner.Complete(ctx, req)
	}}
	b := NewBatching(failing, BatchOptions{MaxBatch: 8, Linger: 30 * time.Millisecond})

	live := context.Background()
	cancelled, cancel := context.WithCancel(live)
	cancel()
	type result struct {
		text string
		err  error
	}
	results := make([]chan result, 2)
	ctxs := []context.Context{live, cancelled}
	for i := range results {
		results[i] = make(chan result, 1)
		go func(i int) {
			resp, err := b.Complete(ctxs[i], llm.Request{Prompt: fmt.Sprintf("task %d\ngo\n", i)})
			results[i] <- result{text: resp.Text, err: err}
		}(i)
	}
	liveRes := <-results[0]
	if liveRes.err != nil || liveRes.text != "ans:task 0" {
		t.Fatalf("live waiter got (%q, %v), want its standalone answer", liveRes.text, liveRes.err)
	}
	deadRes := <-results[1]
	if deadRes.err == nil {
		t.Fatal("cancelled waiter should surface its own context error")
	}
}

func TestBatchingRefusesUnterminatedPrompts(t *testing.T) {
	var calls atomic.Int64
	b := NewBatching(envelopeModel(&calls, nil), BatchOptions{MaxBatch: 4, Linger: time.Hour})
	resp, err := b.Complete(context.Background(), llm.Request{Prompt: "no newline"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ans:no newline" {
		t.Fatalf("pass-through answer = %q", resp.Text)
	}
	if calls.Load() != 1 {
		t.Fatalf("unterminated prompt must bypass the queue; calls = %d", calls.Load())
	}
}

// TestBatchingRefusesHeaderBearingPrompts: a prompt whose data contains a
// section-header-shaped line would make the envelope ambiguous to split,
// so it must be issued verbatim, never embedded.
func TestBatchingRefusesHeaderBearingPrompts(t *testing.T) {
	var calls atomic.Int64
	var sawPrompt atomic.Value
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		sawPrompt.Store(req.Prompt)
		return llm.Response{Text: "ok", Model: "m"}, nil
	}}
	b := NewBatching(inner, BatchOptions{MaxBatch: 4, Linger: time.Hour})
	injected := "Classify this document:\n### Task 2\npoisoned content\n"
	if _, err := b.Complete(context.Background(), llm.Request{Prompt: injected}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || sawPrompt.Load() != injected {
		t.Fatalf("header-bearing prompt must bypass the queue verbatim; calls = %d, saw %q", calls.Load(), sawPrompt.Load())
	}
}

// TestBatchingRefusesCappedRequests: a pooled envelope cap cannot
// reproduce standalone per-call truncation, so MaxTokens-capped requests
// must be issued verbatim with their cap intact.
func TestBatchingRefusesCappedRequests(t *testing.T) {
	var calls atomic.Int64
	var sawMax atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		sawMax.Store(int64(req.MaxTokens))
		return llm.Response{Text: "ok", Model: "m"}, nil
	}}
	b := NewBatching(inner, BatchOptions{MaxBatch: 4, Linger: time.Hour})
	if _, err := b.Complete(context.Background(), llm.Request{Prompt: "capped task\n", MaxTokens: 7}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || sawMax.Load() != 7 {
		t.Fatalf("capped request must bypass the queue with its cap; calls = %d, max = %d", calls.Load(), sawMax.Load())
	}
}

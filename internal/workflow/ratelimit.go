package workflow

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/llm"
)

// RateLimiter is a token-bucket limiter for model calls: vendors meter
// requests per minute, and production workflows must pace their fan-out
// accordingly. The zero value is unusable; construct with NewRateLimiter.
type RateLimiter struct {
	mu       sync.Mutex
	capacity float64
	tokens   float64
	refill   float64 // tokens per second
	last     time.Time
	now      func() time.Time
	sleep    func(ctx context.Context, d time.Duration) error
}

// NewRateLimiter returns a limiter permitting ratePerSecond calls
// sustained with bursts of up to burst calls. Both must be positive.
func NewRateLimiter(ratePerSecond float64, burst int) *RateLimiter {
	if ratePerSecond <= 0 || burst <= 0 {
		panic("workflow: NewRateLimiter needs positive rate and burst")
	}
	l := &RateLimiter{
		capacity: float64(burst),
		tokens:   float64(burst),
		refill:   ratePerSecond,
		now:      time.Now,
		sleep: func(ctx context.Context, d time.Duration) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
				return nil
			}
		},
	}
	l.last = l.now()
	return l
}

// Wait blocks until one call is permitted or the context is cancelled.
func (l *RateLimiter) Wait(ctx context.Context) error {
	for {
		l.mu.Lock()
		now := l.now()
		l.tokens += now.Sub(l.last).Seconds() * l.refill
		if l.tokens > l.capacity {
			l.tokens = l.capacity
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		deficit := 1 - l.tokens
		l.mu.Unlock()
		wait := time.Duration(deficit / l.refill * float64(time.Second))
		if err := l.sleep(ctx, wait); err != nil {
			return fmt.Errorf("workflow: rate limit wait: %w", err)
		}
	}
}

// Allow reports whether a call is permitted right now, consuming a token
// if so. It never blocks.
func (l *RateLimiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.refill
	if l.tokens > l.capacity {
		l.tokens = l.capacity
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// RateLimitedModel wraps a model behind a RateLimiter: Complete blocks
// until the limiter admits the call.
type RateLimitedModel struct {
	inner   llm.Model
	limiter *RateLimiter
}

// NewRateLimited wraps m behind l.
func NewRateLimited(m llm.Model, l *RateLimiter) *RateLimitedModel {
	return &RateLimitedModel{inner: m, limiter: l}
}

// Name implements llm.Model.
func (m *RateLimitedModel) Name() string { return m.inner.Name() }

// Complete implements llm.Model.
func (m *RateLimitedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if err := m.limiter.Wait(ctx); err != nil {
		return llm.Response{}, err
	}
	return m.inner.Complete(ctx, req)
}

// FlakyModel wraps a model and injects transient failures: every failEvery-th
// call errors before reaching the inner model. It exists for failure-injection
// tests of retry and fallback paths; the injected error wraps ErrInjected.
type FlakyModel struct {
	inner     llm.Model
	failEvery int
	mu        sync.Mutex
	calls     int
	failures  int
}

// ErrInjected marks failures produced by FlakyModel.
var ErrInjected = fmt.Errorf("workflow: injected failure")

// NewFlaky wraps m; every failEvery-th call (1-based) fails. failEvery
// must be at least 2 so some calls succeed.
func NewFlaky(m llm.Model, failEvery int) *FlakyModel {
	if failEvery < 2 {
		panic("workflow: NewFlaky needs failEvery >= 2")
	}
	return &FlakyModel{inner: m, failEvery: failEvery}
}

// Name implements llm.Model.
func (f *FlakyModel) Name() string { return f.inner.Name() }

// Complete implements llm.Model with periodic injected failures.
func (f *FlakyModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls%f.failEvery == 0
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if fail {
		return llm.Response{}, fmt.Errorf("%w (call %d)", ErrInjected, f.calls)
	}
	return f.inner.Complete(ctx, req)
}

// Stats returns total calls seen and failures injected.
func (f *FlakyModel) Stats() (calls, failures int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.failures
}

package workflow

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
)

// echoModel answers every prompt with a deterministic transform and counts
// upstream calls.
func echoModel(name string, calls *atomic.Int64) llm.Model {
	return llm.Func{
		ModelName: name,
		Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			calls.Add(1)
			return llm.Response{
				Text:  "echo:" + req.Prompt,
				Model: name,
				Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1},
			}, nil
		},
	}
}

func TestCacheSpreadsAcrossShards(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 200; i++ {
		c.put(cacheKey{model: "m", prompt: fmt.Sprintf("p%d", i)}, llm.Response{Text: "x"})
	}
	populated := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		if len(c.shards[i].entries) > 0 {
			populated++
		}
		c.shards[i].mu.RUnlock()
	}
	if populated < 2 {
		t.Fatalf("200 keys landed in %d shard(s); hashing is not spreading", populated)
	}
	if size, _ := c.Stats(); size != 200 {
		t.Fatalf("size = %d, want 200", size)
	}
}

// TestCacheConcurrentAccess hammers one shared cache from many goroutines
// with overlapping keys; run under -race this is the concurrency-safety
// proof for the sharded rewrite.
func TestCacheConcurrentAccess(t *testing.T) {
	var calls atomic.Int64
	cache := NewCache(0)
	const workers, prompts = 16, 10
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := NewCachedWith(echoModel("m", &calls), cache)
			for i := 0; i < 50; i++ {
				p := fmt.Sprintf("prompt-%d", i%prompts)
				resp, err := m.Complete(ctx, llm.Request{Prompt: p})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if resp.Text != "echo:"+p {
					t.Errorf("worker %d: got %q", w, resp.Text)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every prompt was answered upstream at least once; without
	// coalescing, concurrent first requests may race to a handful of
	// duplicate upstream calls, but never more than workers per prompt.
	if n := calls.Load(); n < prompts || n > prompts*workers {
		t.Fatalf("upstream calls = %d, want within [%d, %d]", n, prompts, prompts*workers)
	}
	size, hits := cache.Stats()
	if size != prompts {
		t.Fatalf("cache size = %d, want %d", size, prompts)
	}
	if total := int64(workers * 50); int64(hits)+calls.Load() != total {
		t.Fatalf("hits (%d) + upstream (%d) != requests (%d)", hits, calls.Load(), total)
	}
}

func TestSharedCacheSpansModels(t *testing.T) {
	var calls atomic.Int64
	cache := NewCache(0)
	ctx := context.Background()
	a := NewCachedWith(echoModel("model-a", &calls), cache)
	b := NewCachedWith(echoModel("model-b", &calls), cache)
	if _, err := a.Complete(ctx, llm.Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	// Different model name: the shared store must keep the entries apart.
	if _, err := b.Complete(ctx, llm.Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("distinct models must not share entries: calls = %d, want 2", calls.Load())
	}
	// Same model again: served from the shared cache.
	if _, err := a.Complete(ctx, llm.Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("repeat should hit shared cache: calls = %d, want 2", calls.Load())
	}
}

// TestCacheSaveDeterministicAcrossModels: a shared multi-model cache with
// entries differing only in model, temperature, or max-tokens must
// serialize byte-identically regardless of insertion order — the property
// that makes persisted experiment caches diffable and reproducible.
func TestCacheSaveDeterministicAcrossModels(t *testing.T) {
	entries := []cacheKey{
		{model: "model-b", prompt: "p", temperature: 0.7, seed: 1},
		{model: "model-a", prompt: "p", temperature: 0.7, seed: 1},
		{model: "model-a", prompt: "p", temperature: 0, seed: 1},
		{model: "model-a", prompt: "p", temperature: 0.7, maxTokens: 32, seed: 1},
		{model: "model-b", prompt: "p", seed: 2},
		{model: "model-a", prompt: "q"},
	}
	save := func(order []int) string {
		c := NewCache(4)
		for _, i := range order {
			c.put(entries[i], llm.Response{Text: fmt.Sprintf("t%d", i)})
		}
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	forward := save([]int{0, 1, 2, 3, 4, 5})
	backward := save([]int{5, 4, 3, 2, 1, 0})
	if forward != backward {
		t.Fatalf("save output depends on insertion order:\n%s\nvs\n%s", forward, backward)
	}

	// Round trip: a fresh cache loaded from the file serves every entry,
	// keyed by the full (model, temperature, maxTokens, seed) identity.
	fresh := NewCache(4)
	if err := fresh.Load(bytes.NewReader([]byte(forward))); err != nil {
		t.Fatal(err)
	}
	for i, key := range entries {
		resp, ok := fresh.get(key)
		if !ok || resp.Text != fmt.Sprintf("t%d", i) {
			t.Fatalf("entry %d (%+v) round-tripped to (%q, %v)", i, key, resp.Text, ok)
		}
	}
	var buf bytes.Buffer
	if err := fresh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != forward {
		t.Fatal("save -> load -> save is not a fixed point")
	}
}

func TestExecLayerSaveLoadRoundTrip(t *testing.T) {
	var calls atomic.Int64
	layer := NewExecLayerShards(4)
	ctx := context.Background()
	m1 := layer.Wrap(echoModel("m", &calls))
	for i := 0; i < 5; i++ {
		if _, err := m1.Complete(ctx, llm.Request{Prompt: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := layer.Cache().Save(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewExecLayer()
	if err := fresh.Cache().Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	m2 := fresh.Wrap(echoModel("m", &calls))
	before := calls.Load()
	resp, err := m2.Complete(ctx, llm.Request{Prompt: "p3"})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatalf("loaded entry should serve without an upstream call")
	}
	if resp.Text != "echo:p3" {
		t.Fatalf("loaded text = %q", resp.Text)
	}
	if st := fresh.Stats(); st.CacheSize != 5 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want size 5 hits 1", st)
	}
}

package workflow

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
)

func TestStageTagRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := StageTag(ctx); got != "" {
		t.Fatalf("untagged ctx = %q", got)
	}
	if got := StageTag(TagStage(ctx, "filter-1")); got != "filter-1" {
		t.Fatalf("tag = %q", got)
	}
}

// TestAttributionSplitsByStageAndSumsToTotal drives one wrapped model from
// two tagged contexts plus an untagged one and checks the per-stage split,
// the total, and that the split agrees with an independent counter.
func TestAttributionSplitsByStageAndSumsToTotal(t *testing.T) {
	var calls atomic.Int64
	attr := NewAttribution()
	counting := llm.NewCounting(echoModel("m", &calls))
	m := NewAttributing(counting, attr)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := m.Complete(TagStage(ctx, "a"), llm.Request{Prompt: fmt.Sprintf("a%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Complete(TagStage(ctx, "b"), llm.Request{Prompt: "b0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Complete(ctx, llm.Request{Prompt: "untagged"}); err != nil {
		t.Fatal(err)
	}

	if u := attr.Usage("a"); u.Calls != 3 {
		t.Fatalf("stage a usage = %+v", u)
	}
	if u := attr.Usage("b"); u.Calls != 1 {
		t.Fatalf("stage b usage = %+v", u)
	}
	if u := attr.Usage(""); u.Calls != 1 {
		t.Fatalf("untagged usage = %+v", u)
	}
	if got := attr.Stages(); len(got) != 3 || got[0] != "" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("stages = %v", got)
	}
	total, cost := attr.Total()
	if total != counting.Total() {
		t.Fatalf("attribution total %+v != counted %+v", total, counting.Total())
	}
	if cost <= 0 {
		t.Fatalf("cost = %f", cost)
	}
	var sum token.Usage
	for _, s := range attr.Stages() {
		sum = sum.Add(attr.Usage(s))
	}
	if sum != total {
		t.Fatalf("per-stage sum %+v != total %+v", sum, total)
	}
}

// TestAttributionRecordsChargedErrors: the budget-exhaustion path returns
// a response together with an error after charging it; attribution must
// record that usage too, or the ledgers drift apart.
func TestAttributionRecordsChargedErrors(t *testing.T) {
	attr := NewAttribution()
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{
			Text:  "x",
			Model: "m",
			Usage: token.Usage{PromptTokens: 5, CompletionTokens: 5, Calls: 1},
		}, fmt.Errorf("budget exhausted after charging")
	}}
	m := NewAttributing(inner, attr)
	if _, err := m.Complete(TagStage(context.Background(), "s"), llm.Request{Prompt: "p"}); err == nil {
		t.Fatal("error should propagate")
	}
	if u := attr.Usage("s"); u.Calls != 1 || u.Total() != 10 {
		t.Fatalf("charged-error usage = %+v, want recorded", u)
	}
}

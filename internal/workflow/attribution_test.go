package workflow

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

func TestStageTagRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := StageTag(ctx); got != "" {
		t.Fatalf("untagged ctx = %q", got)
	}
	if got := StageTag(TagStage(ctx, "filter-1")); got != "filter-1" {
		t.Fatalf("tag = %q", got)
	}
}

// TestAttributionSplitsByStageAndSumsToTotal drives one wrapped model from
// two tagged contexts plus an untagged one and checks the per-stage split,
// the total, and that the split agrees with an independent counter.
func TestAttributionSplitsByStageAndSumsToTotal(t *testing.T) {
	var calls atomic.Int64
	attr := NewAttribution()
	counting := llm.NewCounting(echoModel("m", &calls))
	m := NewAttributing(counting, attr)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := m.Complete(TagStage(ctx, "a"), llm.Request{Prompt: fmt.Sprintf("a%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Complete(TagStage(ctx, "b"), llm.Request{Prompt: "b0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Complete(ctx, llm.Request{Prompt: "untagged"}); err != nil {
		t.Fatal(err)
	}

	if u := attr.Usage("a"); u.Calls != 3 {
		t.Fatalf("stage a usage = %+v", u)
	}
	if u := attr.Usage("b"); u.Calls != 1 {
		t.Fatalf("stage b usage = %+v", u)
	}
	if u := attr.Usage(""); u.Calls != 1 {
		t.Fatalf("untagged usage = %+v", u)
	}
	if got := attr.Stages(); len(got) != 3 || got[0] != "" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("stages = %v", got)
	}
	total, cost := attr.Total()
	if total != counting.Total() {
		t.Fatalf("attribution total %+v != counted %+v", total, counting.Total())
	}
	if cost <= 0 {
		t.Fatalf("cost = %f", cost)
	}
	var sum token.Usage
	for _, s := range attr.Stages() {
		sum = sum.Add(attr.Usage(s))
	}
	if sum != total {
		t.Fatalf("per-stage sum %+v != total %+v", sum, total)
	}
}

// TestAttributionRecordsChargedErrors: the budget-exhaustion path returns
// a response together with an error after charging it; attribution must
// record that usage too, or the ledgers drift apart.
func TestAttributionRecordsChargedErrors(t *testing.T) {
	attr := NewAttribution()
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{
			Text:  "x",
			Model: "m",
			Usage: token.Usage{PromptTokens: 5, CompletionTokens: 5, Calls: 1},
		}, fmt.Errorf("budget exhausted after charging")
	}}
	m := NewAttributing(inner, attr)
	if _, err := m.Complete(TagStage(context.Background(), "s"), llm.Request{Prompt: "p"}); err == nil {
		t.Fatal("error should propagate")
	}
	if u := attr.Usage("s"); u.Calls != 1 || u.Total() != 10 {
		t.Fatalf("charged-error usage = %+v, want recorded", u)
	}
}

// TestAttributionTimingAccumulates pins ObserveTiming's element-wise
// aggregation and that timings live in their own namespace: a stage with
// timings but no usage never appears in Stages().
func TestAttributionTimingAccumulates(t *testing.T) {
	attr := NewAttribution()
	attr.ObserveTiming("scan", StageTiming{Service: 3 * time.Millisecond, Wait: time.Millisecond, Chunks: 2, Records: 10})
	attr.ObserveTiming("scan", StageTiming{Service: time.Millisecond, Wait: 2 * time.Millisecond, Chunks: 1, Records: 5})
	got := attr.Timing("scan")
	want := StageTiming{Service: 4 * time.Millisecond, Wait: 3 * time.Millisecond, Chunks: 3, Records: 15}
	if got != want {
		t.Fatalf("Timing(scan) = %+v, want %+v", got, want)
	}
	if got := attr.Timing("never-observed"); got != (StageTiming{}) {
		t.Fatalf("Timing(unknown) = %+v, want zero", got)
	}
	if stages := attr.Stages(); len(stages) != 0 {
		t.Fatalf("Stages() = %v; timing-only labels must not leak into the usage ledger", stages)
	}
}

// TestAttributionConcurrentHammer drives ObserveTiming, Record, and every
// reader from many goroutines at once — the shape a parallel pipeline run
// produces, with each stage goroutine feeding the shared ledger while the
// run report polls it. Run under -race this doubles as the data-race
// check; afterwards the sums must be exact, not approximately right.
func TestAttributionConcurrentHammer(t *testing.T) {
	attr := NewAttribution()
	const (
		stages  = 7
		writers = 4   // goroutines per stage
		rounds  = 250 // observations per goroutine
	)
	stageName := func(i int) string { return fmt.Sprintf("stage-%d", i) }
	var wg sync.WaitGroup
	for s := 0; s < stages; s++ {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(stage string) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					attr.ObserveTiming(stage, StageTiming{
						Service: time.Microsecond, Wait: 2 * time.Microsecond, Chunks: 1, Records: 3,
					})
					attr.Record(stage, "sim-gpt-3.5-turbo",
						token.Usage{PromptTokens: 2, CompletionTokens: 1, Calls: 1})
				}
			}(stageName(s))
		}
	}
	// Concurrent readers: exercise every accessor while writers run.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for s := 0; s < stages; s++ {
					attr.Timing(stageName(s))
					attr.Usage(stageName(s))
					attr.Cost(stageName(s))
				}
				attr.Stages()
				attr.Total()
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	perStage := writers * rounds
	for s := 0; s < stages; s++ {
		tm := attr.Timing(stageName(s))
		want := StageTiming{
			Service: time.Duration(perStage) * time.Microsecond,
			Wait:    time.Duration(perStage) * 2 * time.Microsecond,
			Chunks:  perStage,
			Records: 3 * perStage,
		}
		if tm != want {
			t.Fatalf("%s timing = %+v, want %+v (lost updates under concurrency)", stageName(s), tm, want)
		}
		if u := attr.Usage(stageName(s)); u.Calls != perStage || u.Total() != 3*perStage {
			t.Fatalf("%s usage = %+v, want %d calls / %d tokens", stageName(s), u, perStage, 3*perStage)
		}
	}
	total, cost := attr.Total()
	if total.Calls != stages*perStage || total.Total() != 3*stages*perStage {
		t.Fatalf("total = %+v, want %d calls / %d tokens", total, stages*perStage, 3*stages*perStage)
	}
	if cost <= 0 {
		t.Fatalf("total cost = %v, want positive", cost)
	}
	if got := len(attr.Stages()); got != stages {
		t.Fatalf("Stages() has %d labels, want %d", got, stages)
	}
}

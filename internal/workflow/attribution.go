package workflow

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

// StageProbe is the reserved attribution label for the pipeline
// optimizer's selectivity probes. Probe calls run before the pipeline's
// stages execute, so they cannot borrow a stage's label; tagging them
// with their own reserved label keeps the ledger's invariant — every
// upstream call attributed somewhere, the per-label sum equal to the
// budget's total spend — while making probe overhead visible as its own
// line in the run report. Stage names beginning with "__" are rejected at
// Compile time so user stages can never collide with reserved labels.
const StageProbe = "__probe"

// stageTagKey is the context key carrying the current pipeline stage label.
type stageTagKey struct{}

// TagStage returns a context whose LLM calls are attributed to the given
// stage label. The pipeline executor tags each stage's context before
// running its operator; every wrapper below the engine's cache then sees
// the label via StageTag.
func TagStage(ctx context.Context, stage string) context.Context {
	return context.WithValue(ctx, stageTagKey{}, stage)
}

// StageTag returns the stage label attached to ctx, or "" when the call is
// untagged (an operator invoked outside a pipeline).
func StageTag(ctx context.Context) string {
	s, _ := ctx.Value(stageTagKey{}).(string)
	return s
}

// tenantTagKey is the context key carrying the current tenant label. It is
// distinct from stageTagKey so a multi-tenant service can attribute the
// same call twice along orthogonal axes: per stage inside one run's ledger
// and per tenant in a service-wide ledger, without either tag clobbering
// the other.
type tenantTagKey struct{}

// TagTenant returns a context whose LLM calls are attributed to the given
// tenant label. A pipeline service tags each job's context before running
// it; the executor then layers stage tags on top per stage, and both labels
// ride the same context to every wrapper below the cache.
func TagTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantTagKey{}, tenant)
}

// TenantTag returns the tenant label attached to ctx, or "" when the call
// is untagged (a run outside any multi-tenant service).
func TenantTag(ctx context.Context) string {
	s, _ := ctx.Value(tenantTagKey{}).(string)
	return s
}

// StageTiming aggregates one stage's observed streaming behaviour: how
// long it spent doing work versus waiting for input, and how many
// micro-batches (chunks) and records flowed through it. The pipeline
// executor's per-stage stats feed these observations into the run's
// Attribution, where they surface in the run report next to the stage's
// token spend — and where the adaptive chunker reads the service-time /
// queue-wait balance it tunes against.
type StageTiming struct {
	// Service is time spent processing chunks (operator work plus
	// downstream emission, i.e. backpressure).
	Service time.Duration
	// Wait is time spent blocked assembling input chunks — waiting on a
	// slow upstream.
	Wait time.Duration
	// Chunks counts the micro-batches processed (1 for a barrier stage).
	Chunks int
	// Records counts the input records consumed.
	Records int
}

// Add returns the element-wise sum of two timings.
func (t StageTiming) Add(o StageTiming) StageTiming {
	return StageTiming{
		Service: t.Service + o.Service,
		Wait:    t.Wait + o.Wait,
		Chunks:  t.Chunks + o.Chunks,
		Records: t.Records + o.Records,
	}
}

// Attribution accumulates real upstream usage and dollar cost per stage
// label, so one shared budget can be broken down into "which pipeline
// stage spent what". Only genuine upstream calls register: cache hits,
// coalesced followers, and split batch sections all carry zero usage and
// therefore add nothing. It also carries per-stage streaming timings
// (ObserveTiming), which the executor feeds and the run report surfaces.
// Safe for concurrent use.
type Attribution struct {
	mu     sync.Mutex
	usage  map[string]token.Usage
	cost   map[string]float64
	timing map[string]StageTiming
	resil  ResilienceStats
}

// NewAttribution returns an empty attribution ledger.
func NewAttribution() *Attribution {
	return &Attribution{
		usage:  make(map[string]token.Usage),
		cost:   make(map[string]float64),
		timing: make(map[string]StageTiming),
	}
}

// ObserveTiming accumulates streaming timings under the stage label.
func (a *Attribution) ObserveTiming(stage string, t StageTiming) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.timing[stage] = a.timing[stage].Add(t)
}

// Timing returns the timings recorded under one stage label.
func (a *Attribution) Timing(stage string) StageTiming {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.timing[stage]
}

// Record adds usage under the stage label, priced at the model's rate.
func (a *Attribution) Record(stage, model string, u token.Usage) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.usage[stage] = a.usage[stage].Add(u)
	a.cost[stage] += token.PriceFor(model).Cost(u)
}

// Usage returns the usage recorded under one stage label.
func (a *Attribution) Usage(stage string) token.Usage {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usage[stage]
}

// Cost returns the dollars recorded under one stage label.
func (a *Attribution) Cost(stage string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cost[stage]
}

// Stages returns the labels seen so far, sorted.
func (a *Attribution) Stages() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.usage))
	for s := range a.usage {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Total returns usage and cost summed across every stage. When every call
// of a workflow runs under a tagged context, this equals the budget's
// recorded spend — the invariant the pipeline experiments pin.
func (a *Attribution) Total() (token.Usage, float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var u token.Usage
	var c float64
	for _, v := range a.usage {
		u = u.Add(v)
	}
	for _, v := range a.cost {
		c += v
	}
	return u, c
}

// ResilienceStats counts the resilience machinery's activity — retried
// and hedged attempts, breaker transitions — alongside the ledger's
// usage maps. These are *physical* events below the logical-call
// accounting: a call that needed two retries still records its usage
// once, and the retry count explains what the healing cost.
type ResilienceStats struct {
	Retries      int
	Hedges       int
	HedgeWins    int
	BreakerOpens int
	RetryDenials int
}

// Add returns the element-wise sum.
func (s ResilienceStats) Add(o ResilienceStats) ResilienceStats {
	return ResilienceStats{
		Retries:      s.Retries + o.Retries,
		Hedges:       s.Hedges + o.Hedges,
		HedgeWins:    s.HedgeWins + o.HedgeWins,
		BreakerOpens: s.BreakerOpens + o.BreakerOpens,
		RetryDenials: s.RetryDenials + o.RetryDenials,
	}
}

// Zero reports whether nothing happened.
func (s ResilienceStats) Zero() bool { return s == ResilienceStats{} }

// AddResilience folds resilience events into the ledger.
func (a *Attribution) AddResilience(s ResilienceStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.resil = a.resil.Add(s)
}

// Resilience returns the resilience counters accumulated so far.
func (a *Attribution) Resilience() ResilienceStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resil
}

// AttributingModel wraps a model so every upstream call's usage is
// recorded in an Attribution under a label drawn from the call's context.
// It sits below the batcher and the cache (the engine's session wires it
// there), so it observes exactly the calls a vendor would bill: one record
// per envelope, none for cache hits.
type AttributingModel struct {
	inner llm.Model
	attr  *Attribution
	label func(context.Context) string
}

// NewAttributing wraps m, recording into a under the context's stage tag.
func NewAttributing(m llm.Model, a *Attribution) *AttributingModel {
	return NewAttributingBy(m, a, StageTag)
}

// NewAttributingBy wraps m, recording into a under label(ctx). The label
// function picks the rollup axis: StageTag breaks a run down per stage
// (the pipeline report), TenantTag breaks a service down per tenant (the
// declserver ledger). Both wrappers can stack on one model — each records
// the same genuine upstream calls into its own ledger.
func NewAttributingBy(m llm.Model, a *Attribution, label func(context.Context) string) *AttributingModel {
	return &AttributingModel{inner: m, attr: a, label: label}
}

// Name implements llm.Model.
func (m *AttributingModel) Name() string { return m.inner.Name() }

// Complete implements llm.Model. Usage is recorded even when the call
// returns an error alongside a response (the budget-exhaustion path
// charges such calls too, and attribution must stay in lockstep with the
// budget).
func (m *AttributingModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	resp, err := m.inner.Complete(ctx, req)
	if !resp.Usage.IsZero() {
		m.attr.Record(m.label(ctx), m.inner.Name(), resp.Usage)
	}
	return resp, err
}

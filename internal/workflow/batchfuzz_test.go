package workflow

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// FuzzFaultyBatchReplies throws arbitrary envelope completions at the
// batcher — truncated mid-answer, renumbered or duplicated section
// headers, NUL-ridden garbage, empty strings — and asserts the
// degradation contract: no panic, no wedged waiter, and every unit task
// gets either a parsed section or a solo-retry answer computed from its
// original prompt. All four tasks share one prompt, so even though
// goroutine arrival order permutes which envelope slot each task lands
// in, the multiset of delivered answers is exactly determined by
// ParseTaskBatch on the fuzzed reply. This is the parse-and-retry path
// a llm.FaultPlan's malformed/wrong-section faults exercise, fuzzed
// directly at the reply boundary.
func FuzzFaultyBatchReplies(f *testing.F) {
	f.Add("### Task 1\nYes\n### Task 2\nNo\n### Task 3\nYes\n### Task 4\nNo\n")
	f.Add("### Task 1\nYes\n### Task 2\nNo, defi\x00<<truncated>>")
	f.Add("### Task 9001\nYes\n### Task 9002\nNo\n### Task 9003\nYes\n### Task 9004\nNo\n")
	f.Add("### Task 1\nfirst\n### Task 1\ndup\n### Task oops\norphan\n")
	f.Add("")
	f.Add("no sections at all, just prose")
	f.Add("### Task 2\nonly the middle\n")
	f.Add("### Task 1\n\n### Task 2\n\n### Task 3\n\n### Task 4\n\n")
	f.Fuzz(func(t *testing.T, reply string) {
		const n = 4
		inner := llm.Func{ModelName: "fuzz-upstream", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			if strings.HasPrefix(req.Prompt, "Below are ") {
				return llm.Response{Text: reply, Model: "fuzz-upstream"}, nil
			}
			return llm.Response{Text: "solo:" + req.Prompt, Model: "fuzz-upstream"}, nil
		}}
		// An hour's linger means only the size trigger flushes: all n
		// tasks always ride one envelope, so the expected split is exactly
		// ParseTaskBatch(reply, n).
		b := NewBatching(inner, BatchOptions{MaxBatch: n, Linger: time.Hour})

		const taskPrompt = "classify the fuzz probe record\n"
		texts := make([]string, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := b.Complete(context.Background(), llm.Request{Prompt: taskPrompt})
				texts[i], errs[i] = resp.Text, err
			}(i)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("batcher wedged: waiters still blocked after 30s")
		}

		answers, _ := prompt.ParseTaskBatch(reply, n)
		want := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if a, ok := answers[i]; ok {
				want = append(want, a)
			} else {
				want = append(want, "solo:"+taskPrompt)
			}
		}
		sort.Strings(want)
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("task %d failed: %v (a garbled reply must degrade to a solo retry, not an error)", i, errs[i])
			}
		}
		got := append([]string(nil), texts...)
		sort.Strings(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("delivered answers %q, want %q (reply %q)", got, want, reply)
			}
		}
	})
}

package workflow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/llm"
	"repro/internal/token"
)

func fixedModel(name, text string) llm.Func {
	return llm.Func{
		ModelName: name,
		Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			return llm.Response{
				Text:  text,
				Model: name,
				Usage: token.Usage{PromptTokens: token.Count(req.Prompt), CompletionTokens: token.Count(text), Calls: 1},
			}, nil
		},
	}
}

func TestBudgetCharging(t *testing.T) {
	b := NewBudget(0, 100, 0)
	if err := b.Charge("sim-gpt-3.5-turbo", token.Usage{PromptTokens: 50, CompletionTokens: 10, Calls: 1}); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := b.Charge("sim-gpt-3.5-turbo", token.Usage{PromptTokens: 50, CompletionTokens: 10, Calls: 1})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	u, dollars := b.Spent()
	if u.Total() != 120 || dollars <= 0 {
		t.Fatalf("spent = %+v, $%f", u, dollars)
	}
	b.Reset()
	u, dollars = b.Spent()
	if !u.IsZero() || dollars != 0 {
		t.Fatal("Reset should zero accounting")
	}
}

func TestBudgetAllows(t *testing.T) {
	b := NewBudget(0, 0, 2)
	est := token.Usage{Calls: 1}
	if !b.Allows("m", est) {
		t.Fatal("fresh budget should allow")
	}
	b.Charge("m", token.Usage{Calls: 2})
	if b.Allows("m", est) {
		t.Fatal("full budget should refuse")
	}
	// Unlimited budget always allows.
	if !Unlimited().Allows("m", token.Usage{PromptTokens: 1 << 30, Calls: 1 << 30}) {
		t.Fatal("unlimited budget should allow anything")
	}
}

func TestBudgetDollarCap(t *testing.T) {
	token.RegisterPrice("exp-model", token.Price{InputPer1K: 1000, OutputPer1K: 1000})
	b := NewBudget(0.5, 0, 0)
	if b.Allows("exp-model", token.Usage{PromptTokens: 1000}) {
		t.Fatal("a $1000 call should not fit a $0.50 budget")
	}
}

func TestBudgetedModel(t *testing.T) {
	b := NewBudget(0, 0, 2)
	m := NewBudgeted(fixedModel("m", "hello"), b)
	if m.Name() != "m" {
		t.Fatal("name")
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Complete(context.Background(), llm.Request{Prompt: "hi"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	_, err := m.Complete(context.Background(), llm.Request{Prompt: "hi"})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("third call should be refused, got %v", err)
	}
	u, _ := b.Spent()
	if u.Calls != 2 {
		t.Fatalf("calls = %d, refused call must not be charged", u.Calls)
	}
}

func TestCachedModel(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		return llm.Response{Text: "v", Usage: token.Usage{PromptTokens: 1, Calls: 1}}, nil
	}}
	c := NewCached(inner)
	r1, err := c.Complete(context.Background(), llm.Request{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(context.Background(), llm.Request{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("inner calls = %d, want 1", calls.Load())
	}
	if r1.Text != r2.Text {
		t.Fatal("cached text must match")
	}
	if !r2.Usage.IsZero() {
		t.Fatal("cache hits must report zero usage")
	}
	size, hits := c.Stats()
	if size != 1 || hits != 1 {
		t.Fatalf("stats = %d, %d", size, hits)
	}
}

func TestCachedModelSeedSeparation(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		return llm.Response{Text: fmt.Sprintf("v%d", req.Seed)}, nil
	}}
	c := NewCached(inner)
	// Temperature > 0: different seeds are distinct requests.
	c.Complete(context.Background(), llm.Request{Prompt: "p", Temperature: 1, Seed: 1})
	c.Complete(context.Background(), llm.Request{Prompt: "p", Temperature: 1, Seed: 2})
	if calls.Load() != 2 {
		t.Fatalf("distinct seeds at temp>0 should miss the cache: calls = %d", calls.Load())
	}
	// Temperature 0: the seed is irrelevant; both map to one entry.
	c.Complete(context.Background(), llm.Request{Prompt: "q", Seed: 1})
	c.Complete(context.Background(), llm.Request{Prompt: "q", Seed: 2})
	if calls.Load() != 3 {
		t.Fatalf("temp-0 seeds should share a cache entry: calls = %d", calls.Load())
	}
}

func TestCachedModelDoesNotCacheErrors(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if calls.Add(1) == 1 {
			return llm.Response{}, fmt.Errorf("transient")
		}
		return llm.Response{Text: "ok"}, nil
	}}
	c := NewCached(inner)
	if _, err := c.Complete(context.Background(), llm.Request{Prompt: "p"}); err == nil {
		t.Fatal("first call should fail")
	}
	r, err := c.Complete(context.Background(), llm.Request{Prompt: "p"})
	if err != nil || r.Text != "ok" {
		t.Fatalf("second call should succeed: %v %v", r, err)
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	out, err := Map(context.Background(), 10, 4, func(ctx context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), 10, 2, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestMapRespectsParallelism(t *testing.T) {
	var cur, max atomic.Int64
	_, err := Map(context.Background(), 30, 3, func(ctx context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		defer cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max.Load() > 3 {
		t.Fatalf("max concurrency = %d, want <= 3", max.Load())
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 5, 2, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
}

func TestMapZeroTasks(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("zero tasks: %v %v", out, err)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	tr.Record("a", token.Usage{PromptTokens: 10, Calls: 1})
	tr.Record("a", token.Usage{PromptTokens: 5, Calls: 1})
	tr.Record("b", token.Usage{CompletionTokens: 7, Calls: 1})
	if got := tr.Usage("a"); got.PromptTokens != 15 || got.Calls != 2 {
		t.Fatalf("usage(a) = %+v", got)
	}
	total, cost := tr.Total()
	if total.Calls != 3 || cost <= 0 {
		t.Fatalf("total = %+v, $%f", total, cost)
	}
}

func TestTracedModel(t *testing.T) {
	tr := NewTrace()
	m := NewTraced(fixedModel("m", "out"), tr)
	if m.Name() != "m" {
		t.Fatal("name")
	}
	m.Complete(context.Background(), llm.Request{Prompt: "hello world"})
	if tr.Usage("m").Calls != 1 {
		t.Fatal("traced call not recorded")
	}
}

func TestBudgetChargeAccumulatesProperty(t *testing.T) {
	f := func(charges []uint8) bool {
		b := Unlimited()
		var want int
		for _, c := range charges {
			b.Charge("m", token.Usage{PromptTokens: int(c), Calls: 1})
			want += int(c)
		}
		u, _ := b.Spent()
		return u.PromptTokens == want && u.Calls == len(charges)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCachedModelSaveLoad(t *testing.T) {
	var calls atomic.Int64
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		return llm.Response{Text: "answer to " + req.Prompt, Model: "m",
			Usage: token.Usage{PromptTokens: 3, CompletionTokens: 2, Calls: 1}}, nil
	}}
	c1 := NewCached(inner)
	for _, p := range []string{"q1", "q2", "q3"} {
		if _, err := c1.Complete(context.Background(), llm.Request{Prompt: p}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh process: load the cache, repeats are free.
	c2 := NewCached(inner)
	if err := c2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	before := calls.Load()
	resp, err := c2.Complete(context.Background(), llm.Request{Prompt: "q2"})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("loaded cache should serve repeats without inner calls")
	}
	if resp.Text != "answer to q2" {
		t.Fatalf("text = %q", resp.Text)
	}
	if !resp.Usage.IsZero() {
		t.Fatal("loaded cache hits must report zero usage")
	}
	// Save is deterministic.
	var buf2 bytes.Buffer
	if err := c1.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("Save output not deterministic")
	}
}

func TestCachedModelLoadRejectsJunk(t *testing.T) {
	c := NewCached(fixedModel("m", "x"))
	if err := c.Load(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("junk input should error")
	}
}

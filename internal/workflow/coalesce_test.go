package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

// gatedModel blocks every upstream call until release is closed, so a test
// can guarantee N requests are simultaneously in flight.
func gatedModel(calls *atomic.Int64, release <-chan struct{}) llm.Model {
	return llm.Func{
		ModelName: "gated",
		Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			calls.Add(1)
			<-release
			return llm.Response{
				Text:  "echo:" + req.Prompt,
				Model: "gated",
				Usage: token.Usage{PromptTokens: 1, CompletionTokens: 1, Calls: 1},
			}, nil
		},
	}
}

// TestCoalescingCollapsesIdenticalConcurrent is the headline guarantee:
// N identical concurrent requests issue exactly one upstream call.
func TestCoalescingCollapsesIdenticalConcurrent(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	c := NewCoalescing(gatedModel(&calls, release))
	ctx := context.Background()

	const n = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		texts     []string
		usedCalls int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Complete(ctx, llm.Request{Prompt: "same"})
			if err != nil {
				t.Errorf("complete: %v", err)
				return
			}
			mu.Lock()
			texts = append(texts, resp.Text)
			usedCalls += resp.Usage.Calls
			mu.Unlock()
		}()
	}
	// Wait until the leader is inside the upstream call, give followers
	// time to pile onto the flight, then release.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("upstream calls = %d, want 1", calls.Load())
	}
	if c.Coalesced() != n-1 {
		t.Fatalf("coalesced = %d, want %d", c.Coalesced(), n-1)
	}
	for _, text := range texts {
		if text != "echo:same" {
			t.Fatalf("follower text = %q", text)
		}
	}
	// Exactly one caller (the leader) carries the usage of the real call.
	if usedCalls != 1 {
		t.Fatalf("summed usage calls = %d, want 1 (followers must be free)", usedCalls)
	}
}

func TestCoalescingKeepsDistinctRequestsApart(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release)
	c := NewCoalescing(gatedModel(&calls, release))
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Complete(ctx, llm.Request{Prompt: fmt.Sprintf("p%d", i)}); err != nil {
				t.Errorf("complete: %v", err)
			}
		}(i)
	}
	// Seed-distinct sampling requests must also stay apart.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Complete(ctx, llm.Request{Prompt: "sample", Temperature: 0.7, Seed: int64(i)}); err != nil {
				t.Errorf("complete: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 7 {
		t.Fatalf("upstream calls = %d, want 7", calls.Load())
	}
}

func TestCoalescingSharesLeaderError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	release := make(chan struct{})
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		<-release
		return llm.Response{}, boom
	}}
	c := NewCoalescing(inner)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Complete(ctx, llm.Request{Prompt: "p"})
		}(i)
	}
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want boom", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("upstream calls = %d, want 1", calls.Load())
	}
}

// TestCoalescingFollowerSurvivesLeaderCancellation: a cancelled leader
// must not poison followers from live sessions — the follower retries
// under its own context and becomes the new leader.
func TestCoalescingFollowerSurvivesLeaderCancellation(t *testing.T) {
	var calls atomic.Int64
	leaderIn := make(chan struct{}, 2)
	inner := llm.Func{ModelName: "m", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		calls.Add(1)
		leaderIn <- struct{}{}
		select {
		case <-ctx.Done():
			return llm.Response{}, fmt.Errorf("upstream: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
			return llm.Response{Text: "ok", Model: "m", Usage: token.Usage{Calls: 1}}, nil
		}
	}}
	c := NewCoalescing(inner)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Complete(leaderCtx, llm.Request{Prompt: "p"})
		leaderErr <- err
	}()
	<-leaderIn // leader is inside the upstream call

	followerDone := make(chan error, 1)
	var followerResp llm.Response
	go func() {
		var err error
		followerResp, err = c.Complete(context.Background(), llm.Request{Prompt: "p"})
		followerDone <- err
	}()
	for c.Coalesced() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want its own cancellation", err)
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower err = %v, want retry success", err)
	}
	if followerResp.Text != "ok" {
		t.Fatalf("follower text = %q", followerResp.Text)
	}
	if calls.Load() != 2 {
		t.Fatalf("upstream calls = %d, want 2 (dead leader + follower retry)", calls.Load())
	}
}

func TestCoalescingFollowerHonoursOwnContext(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	c := NewCoalescing(gatedModel(&calls, release))

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Complete(context.Background(), llm.Request{Prompt: "p"})
		leaderErr <- err
	}()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	followerCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Complete(followerCtx, llm.Request{Prompt: "p"})
		done <- err
	}()
	for c.Coalesced() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled follower still blocked on the flight")
	}
}

package workflow

import (
	"context"
	"errors"
	"sync"

	"repro/internal/llm"
	"repro/internal/token"
)

// flight is one in-progress upstream call that followers wait on.
type flight struct {
	done chan struct{}
	resp llm.Response
	err  error
}

// FlightGroup tracks in-flight completions so concurrent identical
// requests issue one upstream call (the singleflight pattern). A group
// keys by (model, prompt, temperature, max tokens, seed), so it can be
// shared by wrappers over different models. Safe for concurrent use.
type FlightGroup struct {
	mu        sync.Mutex
	inflight  map[cacheKey]*flight
	coalesced int
}

// NewFlightGroup returns an empty group.
func NewFlightGroup() *FlightGroup {
	return &FlightGroup{inflight: make(map[cacheKey]*flight)}
}

// Coalesced returns how many requests were answered by joining another
// caller's in-flight upstream call.
func (g *FlightGroup) Coalesced() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}

// do runs fn once per key among concurrent callers. The leader executes
// fn; followers block until the leader finishes and share its result with
// zero usage (no upstream call was made on their behalf). A follower whose
// own context is cancelled returns early with the context error.
//
// Upstream errors are shared with every follower of the flight — they
// were promised that call's outcome. The exception is the leader's own
// cancellation: a layer can be shared across sessions, and one session
// timing out must not poison identical requests from live sessions, so a
// follower whose leader was cancelled retries (and typically becomes the
// new leader under its own context).
func (g *FlightGroup) do(ctx context.Context, key cacheKey, fn func() (llm.Response, error)) (llm.Response, error) {
	for {
		g.mu.Lock()
		f, ok := g.inflight[key]
		if !ok {
			f = &flight{done: make(chan struct{})}
			g.inflight[key] = f
			g.mu.Unlock()

			f.resp, f.err = fn()
			g.mu.Lock()
			delete(g.inflight, key)
			g.mu.Unlock()
			close(f.done)
			if f.err != nil {
				return llm.Response{}, f.err
			}
			return f.resp, nil
		}
		g.coalesced++
		g.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				if ctx.Err() != nil {
					return llm.Response{}, ctx.Err()
				}
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue // the leader died, not the call; retry fresh
				}
				return llm.Response{}, f.err
			}
			resp := f.resp
			resp.Usage = token.Usage{}
			return resp, nil
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	}
}

// CoalescingModel wraps a model so concurrent identical requests collapse
// into one upstream call. Under workflow.Map's parallelism, N goroutines
// issuing the same unit task pay for exactly one completion; followers
// receive the shared response with zero usage, mirroring cache-hit
// accounting. Sequential repeats are NOT deduplicated — that is the
// cache's job; the coalescer only closes the window where identical
// requests are simultaneously in flight (and would all miss a cache).
type CoalescingModel struct {
	inner llm.Model
	group *FlightGroup
}

// NewCoalescing wraps m with a private flight group.
func NewCoalescing(m llm.Model) *CoalescingModel {
	return NewCoalescingWith(m, NewFlightGroup())
}

// NewCoalescingWith wraps m against an existing (possibly shared) group.
func NewCoalescingWith(m llm.Model, g *FlightGroup) *CoalescingModel {
	return &CoalescingModel{inner: m, group: g}
}

// Name implements llm.Model.
func (c *CoalescingModel) Name() string { return c.inner.Name() }

// Coalesced returns the group's coalesced-request count.
func (c *CoalescingModel) Coalesced() int { return c.group.Coalesced() }

// Complete implements llm.Model. The leader's context drives the upstream
// call; a follower cancelled while waiting gets its own context error, and
// a leader error is shared with every follower of that flight.
func (c *CoalescingModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return c.group.do(ctx, keyFor(c.inner.Name(), req), func() (llm.Response, error) {
		return c.inner.Complete(ctx, req)
	})
}

package workflow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/llm"
)

// fillCache inserts n deterministic entries (two models, mixed sampling
// parameters) and returns the keys in insertion order.
func fillCache(c *Cache, n, salt int) []cacheKey {
	keys := make([]cacheKey, 0, n)
	for i := 0; i < n; i++ {
		k := cacheKey{
			model:  fmt.Sprintf("m%d", i%2),
			prompt: fmt.Sprintf("prompt-%d-%d", salt, i),
		}
		if i%3 == 0 {
			k.temperature, k.seed = 0.7, int64(i)
		}
		c.put(k, llm.Response{Text: fmt.Sprintf("answer-%d-%d", salt, i), Model: k.model})
		keys = append(keys, k)
	}
	return keys
}

// saveBytes returns the cache's canonical snapshot form, the equivalence
// oracle for every log test: two caches with identical contents produce
// identical snapshots.
func saveBytes(t *testing.T, c *Cache) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

func openLog(t *testing.T, path string) *CacheLog {
	t.Helper()
	lg, err := OpenCacheLog(path)
	if err != nil {
		t.Fatalf("OpenCacheLog(%s): %v", path, err)
	}
	t.Cleanup(func() { lg.Close() })
	return lg
}

func TestCacheLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	c := NewCache(4)
	fillCache(c, 50, 1)
	lg := openLog(t, path)
	if n, err := lg.Flush(c); err != nil || n != 50 {
		t.Fatalf("Flush = (%d, %v), want (50, nil)", n, err)
	}

	restored := NewCache(4)
	lg2 := openLog(t, path)
	stats, err := lg2.Replay(restored)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.Records != 50 || stats.Recovered {
		t.Fatalf("ReplayStats = %+v, want 50 clean records", stats)
	}
	if got, want := saveBytes(t, restored), saveBytes(t, c); !bytes.Equal(got, want) {
		t.Fatalf("replayed contents differ from original:\n%s\nvs\n%s", got, want)
	}
}

// TestCacheLogAppendIsDelta pins the O(delta) contract: appending one
// entry extends the file without rewriting a single existing byte.
func TestCacheLogAppendIsDelta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	c := NewCache(4)
	fillCache(c, 40, 1)
	lg := openLog(t, path)
	if _, err := lg.Flush(c); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	c.put(cacheKey{model: "m0", prompt: "one more"}, llm.Response{Text: "delta", Model: "m0"})
	if n, err := lg.Flush(c); err != nil || n != 1 {
		t.Fatalf("delta Flush = (%d, %v), want (1, nil)", n, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("file did not grow: %d -> %d bytes", len(before), len(after))
	}
	if !bytes.Equal(after[:len(before)], before) {
		t.Fatal("existing log bytes were rewritten by an append")
	}
	// The growth is exactly one record: header(8) + payload.
	entry := cacheEntry{Model: "m0", Prompt: "one more", Text: "delta"}
	if want := len(appendRecord(nil, entry)); len(after)-len(before) != want {
		t.Fatalf("append grew file by %d bytes, want %d (one record)", len(after)-len(before), want)
	}
	// A flush with nothing new appends nothing.
	if n, err := lg.Flush(c); err != nil || n != 0 {
		t.Fatalf("empty Flush = (%d, %v), want (0, nil)", n, err)
	}
}

// TestCacheLogReplayCompactEquivalence is the property test: for random
// insert/overwrite workloads, (flush log; replay) and (compact; replay)
// both reconstruct exactly the snapshot contents.
func TestCacheLogReplayCompactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		path := filepath.Join(t.TempDir(), "cache.log")
		c := NewCache(4)
		lg := openLog(t, path)
		// Random interleaving of inserts, overwrites, and flushes.
		for op := 0; op < 120; op++ {
			switch rng.Intn(5) {
			case 0: // overwrite an existing-ish key
				k := cacheKey{model: "m", prompt: fmt.Sprintf("p%d", rng.Intn(30))}
				c.put(k, llm.Response{Text: fmt.Sprintf("v%d", op), Model: "m"})
			case 1:
				if _, err := lg.Flush(c); err != nil {
					t.Fatalf("trial %d: Flush: %v", trial, err)
				}
			default:
				k := cacheKey{model: "m", prompt: fmt.Sprintf("p%d-%d", trial, op)}
				if rng.Intn(4) == 0 {
					k.temperature, k.seed = 1, int64(op)
				}
				c.put(k, llm.Response{Text: fmt.Sprintf("v%d", op), Model: "m"})
			}
		}
		if _, err := lg.Flush(c); err != nil {
			t.Fatalf("trial %d: final Flush: %v", trial, err)
		}
		want := saveBytes(t, c)

		replayed := NewCache(4)
		lgr := openLog(t, path)
		if _, err := lgr.Replay(replayed); err != nil {
			t.Fatalf("trial %d: Replay: %v", trial, err)
		}
		if got := saveBytes(t, replayed); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: log replay diverged from snapshot", trial)
		}

		// Compact and replay again: same contents, no more records than
		// live entries.
		if err := lgr.Compact(replayed); err != nil {
			t.Fatalf("trial %d: Compact: %v", trial, err)
		}
		size, _ := replayed.Stats()
		if st := lgr.Stats(); st.Records != size {
			t.Fatalf("trial %d: compacted log has %d records, live size %d", trial, st.Records, size)
		}
		compacted := NewCache(4)
		lgc := openLog(t, path)
		if _, err := lgc.Replay(compacted); err != nil {
			t.Fatalf("trial %d: post-compact Replay: %v", trial, err)
		}
		if got := saveBytes(t, compacted); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: compacted replay diverged from snapshot", trial)
		}
	}
}

// TestCacheLogTornTailRecovery pins crash recovery: truncating the file
// at every byte boundary inside the final record loses at most that final
// entry, and the log stays appendable afterwards.
func TestCacheLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.log")
	c := NewCache(2)
	fillCache(c, 10, 3)
	lg := openLog(t, path)
	if _, err := lg.Flush(c); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lg.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last record's start: re-encode the sorted entries to learn
	// the final record length.
	entries := entryList(c.snapshot())
	lastLen := len(appendRecord(nil, entries[len(entries)-1]))
	lastStart := len(full) - lastLen

	for cut := lastStart + 1; cut < len(full); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		restored := NewCache(2)
		lgt := openLog(t, torn)
		stats, err := lgt.Replay(restored)
		if err != nil {
			t.Fatalf("cut %d: Replay: %v", cut, err)
		}
		if !stats.Recovered || stats.Records != 9 {
			t.Fatalf("cut %d: ReplayStats = %+v, want 9 records recovered", cut, stats)
		}
		if size, _ := restored.Stats(); size != 9 {
			t.Fatalf("cut %d: restored %d entries, want 9", cut, size)
		}
		// The file was truncated back to the intact prefix and appending
		// works: the re-added entry survives another replay.
		restored.put(entries[len(entries)-1].key(), llm.Response{Text: entries[len(entries)-1].Text})
		if n, err := lgt.Flush(restored); err != nil || n != 1 {
			t.Fatalf("cut %d: post-recovery Flush = (%d, %v)", cut, n, err)
		}
		again := NewCache(2)
		lga := openLog(t, torn)
		if st, err := lga.Replay(again); err != nil || st.Records != 10 || st.Recovered {
			t.Fatalf("cut %d: post-recovery replay = (%+v, %v), want 10 clean", cut, st, err)
		}
	}
}

// TestCacheLogBitFlipRecovery: a corrupted byte anywhere drops at most
// the suffix from the flipped record on — earlier entries always load.
func TestCacheLogBitFlipRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.log")
	c := NewCache(2)
	fillCache(c, 12, 5)
	lg := openLog(t, path)
	if _, err := lg.Flush(c); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lg.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		pos := cacheLogHeaderLen + rng.Intn(len(full)-cacheLogHeaderLen)
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x40
		flipped := filepath.Join(dir, fmt.Sprintf("flip-%d.log", trial))
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		restored := NewCache(2)
		lgf := openLog(t, flipped)
		stats, err := lgf.Replay(restored)
		if err != nil {
			t.Fatalf("trial %d: Replay: %v", trial, err)
		}
		size, _ := restored.Stats()
		if size > 12 {
			t.Fatalf("trial %d: corrupt log produced %d entries from 12", trial, size)
		}
		// Every restored entry must be genuine (CRC guarantees it): check
		// a flip never fabricates a key we didn't insert. Recovered should
		// be set since bytes were dropped (the flipped record is bad)
		// unless the flip landed in a record that still checksummed —
		// impossible for a single-byte flip with CRC-32C.
		if !stats.Recovered {
			t.Fatalf("trial %d: flip at %d not detected", trial, pos)
		}
		orig := c.snapshot()
		for k, v := range restored.snapshot() {
			if want, ok := orig[k]; !ok || want.Text != v.Text {
				t.Fatalf("trial %d: replay fabricated entry %+v", trial, k)
			}
		}
	}
}

// TestCacheLogConcurrentAppendsDuringQueries runs cache reads, writes,
// and log flushes concurrently; under -race this is the concurrency proof
// for the dirty-tracking flush path.
func TestCacheLogConcurrentAppendsDuringQueries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	lg := openLog(t, path)
	c := NewCache(0)
	var calls atomic.Int64
	model := NewCachedWith(echoModel("m", &calls), c)
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Overlapping prompts: half shared across workers (queries
				// hitting the cache mid-flush), half unique (appends).
				p := fmt.Sprintf("shared-%d", i%50)
				if i%2 == 0 {
					p = fmt.Sprintf("w%d-%d", w, i)
				}
				if _, err := model.Complete(ctx, llm.Request{Prompt: p}); err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
			}
		}(w)
	}
	var flushes sync.WaitGroup
	flushes.Add(1)
	go func() {
		defer flushes.Done()
		for i := 0; i < 50; i++ {
			if _, err := lg.Flush(c); err != nil {
				t.Errorf("concurrent Flush: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	flushes.Wait()
	if _, err := lg.Flush(c); err != nil {
		t.Fatalf("final Flush: %v", err)
	}

	restored := NewCache(0)
	lgr := openLog(t, path)
	if _, err := lgr.Replay(restored); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got, want := saveBytes(t, restored), saveBytes(t, c); !bytes.Equal(got, want) {
		t.Fatal("concurrent flushes lost or corrupted entries")
	}
}

func TestOpenCacheLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	if err := os.WriteFile(path, []byte(`[{"model":"m"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCacheLog(path); !errors.Is(err, ErrNotCacheLog) {
		t.Fatalf("OpenCacheLog on JSON snapshot = %v, want ErrNotCacheLog", err)
	}
}

func TestCacheLogFlushBeforeReplayRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	c := NewCache(2)
	fillCache(c, 3, 1)
	lg := openLog(t, path)
	if _, err := lg.Flush(c); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lg.Close()

	// Re-open: the tail is unvalidated, so appending must be refused
	// until a Replay validates (and possibly truncates) it.
	lg2 := openLog(t, path)
	c2 := NewCache(2)
	fillCache(c2, 1, 9)
	if _, err := lg2.Flush(c2); err == nil {
		t.Fatal("Flush before Replay succeeded; could append after a torn tail")
	}
	if _, err := lg2.Replay(NewCache(2)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if _, err := lg2.Flush(c2); err != nil {
		t.Fatalf("Flush after Replay: %v", err)
	}
}

// TestCacheLoadTypedErrors pins the snapshot loader's error contract:
// empty input is a valid empty cache, malformed input is a *SnapshotError
// and merges nothing.
func TestCacheLoadTypedErrors(t *testing.T) {
	c := NewCache(2)
	if err := c.Load(strings.NewReader("")); err != nil {
		t.Fatalf("Load(empty) = %v, want nil", err)
	}
	cases := []string{
		`[{"model":"m","prompt":"p","text":"t"}`, // truncated mid-stream
		`{"model":"m"}`,                          // wrong shape
		`not json at all`,
		`[{"model":"m","prompt":"p","text":"t"}] trailing garbage`,
	}
	for _, in := range cases {
		c := NewCache(2)
		err := c.Load(strings.NewReader(in))
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("Load(%q) = %v, want *SnapshotError", in, err)
		}
		if size, _ := c.Stats(); size != 0 {
			t.Fatalf("Load(%q) merged %d entries from a corrupt stream", in, size)
		}
	}
	// A valid snapshot still round-trips.
	good := NewCache(2)
	fillCache(good, 5, 2)
	var buf bytes.Buffer
	if err := good.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(&buf); err != nil {
		t.Fatalf("Load(valid) = %v", err)
	}
	if size, _ := c.Stats(); size != 5 {
		t.Fatalf("loaded %d entries, want 5", size)
	}
}

// TestExecLayerStatePersistence drives the layer-level wiring: warm start
// re-serves previous answers without upstream calls.
func TestExecLayerStatePersistence(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	var calls atomic.Int64
	layer := NewExecLayer()
	if _, err := layer.OpenState(dir); err != nil {
		t.Fatalf("OpenState: %v", err)
	}
	m := layer.Wrap(echoModel("m", &calls))
	for i := 0; i < 20; i++ {
		if _, err := m.Complete(ctx, llm.Request{Prompt: fmt.Sprintf("q%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := layer.FlushState(); err != nil || n != 20 {
		t.Fatalf("FlushState = (%d, %v), want (20, nil)", n, err)
	}
	if st, ok := layer.StateStats(); !ok || st.Records != 20 {
		t.Fatalf("StateStats = (%+v, %v)", st, ok)
	}
	if err := layer.CloseState(); err != nil {
		t.Fatalf("CloseState: %v", err)
	}

	// New process: same state dir, fresh layer. Every repeat is free.
	var calls2 atomic.Int64
	warm := NewExecLayer()
	stats, err := warm.OpenState(dir)
	if err != nil {
		t.Fatalf("warm OpenState: %v", err)
	}
	if stats.Records != 20 || stats.Recovered {
		t.Fatalf("warm ReplayStats = %+v, want 20 clean", stats)
	}
	m2 := warm.Wrap(echoModel("m", &calls2))
	for i := 0; i < 20; i++ {
		resp, err := m2.Complete(ctx, llm.Request{Prompt: fmt.Sprintf("q%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("echo:q%d", i); resp.Text != want {
			t.Fatalf("warm answer = %q, want %q", resp.Text, want)
		}
	}
	if calls2.Load() != 0 {
		t.Fatalf("warm start made %d upstream calls, want 0", calls2.Load())
	}
	// Replayed entries are not dirty: nothing to flush.
	if n, err := warm.FlushState(); err != nil || n != 0 {
		t.Fatalf("warm FlushState = (%d, %v), want (0, nil)", n, err)
	}
	if err := warm.CloseState(); err != nil {
		t.Fatal(err)
	}
}

// TestExecLayerAutoCompaction pins FlushState's size trigger: the log
// auto-compacts only once superseded records outnumber live entries
// past the floor, and the rewritten log replays to the same cache.
func TestExecLayerAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	layer := NewExecLayer()
	if _, err := layer.OpenState(dir); err != nil {
		t.Fatalf("OpenState: %v", err)
	}
	const n = compactMinRecords // live set: one overwrite round trips the trigger
	put := func(gen int) {
		for i := 0; i < n; i++ {
			layer.Cache().Put("m", fmt.Sprintf("p%d", i), llm.Response{Text: fmt.Sprintf("g%d", gen), Model: "m"})
		}
		if _, err := layer.FlushState(); err != nil {
			t.Fatalf("FlushState gen %d: %v", gen, err)
		}
	}
	put(0)
	if st, _ := layer.StateStats(); st.Records != n {
		t.Fatalf("fresh log has %d records, want %d", st.Records, n)
	}
	put(1) // 2n records, not > 2x live: no compaction yet
	if st, _ := layer.StateStats(); st.Records != 2*n {
		t.Fatalf("after one overwrite round: %d records, want %d (no auto-compact at exactly 2x)", st.Records, 2*n)
	}
	put(2) // 3n records > 2x live: compacts back to n
	if st, _ := layer.StateStats(); st.Records != n {
		t.Fatalf("after two overwrite rounds: %d records, want auto-compaction to %d", st.Records, n)
	}
	if err := layer.CloseState(); err != nil {
		t.Fatal(err)
	}

	// The compacted log replays to the final generation.
	warm := NewExecLayer()
	if _, err := warm.OpenState(dir); err != nil {
		t.Fatalf("warm OpenState: %v", err)
	}
	size, _ := warm.Cache().Stats()
	if size != n {
		t.Fatalf("replayed cache has %d entries, want %d", size, n)
	}
	if resp, ok := warm.Cache().get(cacheKey{model: "m", prompt: "p0"}); !ok || resp.Text != "g2" {
		t.Fatalf("replayed p0 = (%+v, %v), want the last generation", resp, ok)
	}
	warm.CloseState()
}

// FuzzCacheLogReplay throws arbitrary bytes at the log opener/replayer:
// it must never panic, never fabricate entries that fail their checksum,
// and always leave the file appendable after recovery.
func FuzzCacheLogReplay(f *testing.F) {
	// Seed with a valid log, a torn log, and junk.
	c := NewCache(2)
	c.put(cacheKey{model: "m", prompt: "p"}, llm.Response{Text: "t"})
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.log")
	lg, err := OpenCacheLog(path)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := lg.Flush(c); err != nil {
		f.Fatal(err)
	}
	lg.Close()
	valid, _ := os.ReadFile(path)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("DCLG\x01\x00\x00\x00garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		lg, err := OpenCacheLog(p)
		if err != nil {
			return // rejected header: fine
		}
		defer lg.Close()
		cache := NewCache(2)
		if _, err := lg.Replay(cache); err != nil {
			return
		}
		// Whatever was recovered, the log must now accept appends and
		// replay them back.
		cache.put(cacheKey{model: "fz", prompt: "after"}, llm.Response{Text: "ok"})
		if _, err := lg.Flush(cache); err != nil {
			t.Fatalf("post-recovery Flush: %v", err)
		}
		again := NewCache(2)
		lg2, err := OpenCacheLog(p)
		if err != nil {
			t.Fatalf("re-open after append: %v", err)
		}
		defer lg2.Close()
		if _, err := lg2.Replay(again); err != nil {
			t.Fatalf("re-replay after append: %v", err)
		}
		if _, ok := again.get(cacheKey{model: "fz", prompt: "after"}); !ok {
			t.Fatal("appended entry lost after recovery")
		}
	})
}

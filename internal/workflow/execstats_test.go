package workflow

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/llm"
)

// TestExecStatsDuringBatchedRun hammers ExecLayer.Stats while a batched
// workload is in flight: Stats is documented as safe under concurrent
// use, and every counter (cache, coalescer, batch observer) must be
// independently synchronized. Run with -race in CI.
func TestExecStatsDuringBatchedRun(t *testing.T) {
	var calls atomic.Int64
	layer := NewExecLayer()
	batcher := NewBatching(envelopeModel(&calls, nil), BatchOptions{MaxBatch: 4, Observer: layer})
	m := layer.Wrap(batcher)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 4; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := layer.Stats()
					if s.Batches < 0 || s.SoloRetries < 0 || s.CacheHits < 0 {
						t.Error("negative counter in mid-run stats snapshot")
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the prompts repeat, so the cache-hit and coalescing
			// counters move too, not just the batch observer.
			prompt := fmt.Sprintf("task %d\nbody\n", i%32)
			if _, err := m.Complete(context.Background(), llm.Request{Prompt: prompt}); err != nil {
				t.Errorf("complete: %v", err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()

	s := layer.Stats()
	if s.Batches == 0 {
		t.Fatalf("batched run reported no envelopes through the observer: %+v", s)
	}
	batches, packed, _ := batcher.Stats()
	if s.Batches != batches {
		t.Fatalf("layer batches %d != batcher batches %d", s.Batches, batches)
	}
	if packed == 0 {
		t.Fatalf("no unit tasks rode in an envelope: %+v", s)
	}
}

package workflow

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/llm"
	"repro/internal/token"
)

// DefaultCacheShards is the shard count used by NewCache(0) and NewCached.
// Sixteen shards keep lock contention negligible at the engine's default
// parallelism while costing nothing at low concurrency.
const DefaultCacheShards = 16

// cacheKey identifies a completion for caching and coalescing.
// Temperature-positive requests include the seed (distinct samples must
// stay distinct).
type cacheKey struct {
	model       string
	prompt      string
	temperature float64
	maxTokens   int
	seed        int64
}

// keyFor derives the cache/coalesce identity of a request against a model.
func keyFor(model string, req llm.Request) cacheKey {
	key := cacheKey{
		model:       model,
		prompt:      req.Prompt,
		temperature: req.Temperature,
		maxTokens:   req.MaxTokens,
	}
	if req.Temperature > 0 {
		key.seed = req.Seed
	}
	return key
}

// cacheShard is one lock domain of a Cache. hits is atomic so the hot
// path (a hit) completes entirely under the read lock.
type cacheShard struct {
	mu      sync.RWMutex
	entries map[cacheKey]llm.Response
	hits    atomic.Int64
}

// Cache is a sharded, concurrency-safe response store. Keys are spread
// across shards by a hash of the prompt, so concurrent lookups under
// workflow.Map's parallelism contend per shard rather than on one global
// mutex. A Cache can back any number of CachedModel wrappers at once —
// the key includes the model name — which is how one cache spans every
// operator of a session (see ExecLayer).
type Cache struct {
	shards []cacheShard
}

// NewCache returns an empty cache with the given shard count; shards <= 0
// selects DefaultCacheShards.
func NewCache(shards int) *Cache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	c := &Cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]llm.Response)
	}
	return c
}

// shard picks the lock domain of a key. Only the prompt and model feed the
// hash: temperature/seed variants of one prompt are rare enough that
// spreading them further buys nothing.
func (c *Cache) shard(key cacheKey) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key.model))
	h.Write([]byte{0})
	h.Write([]byte(key.prompt))
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// get returns the cached response for key, counting a hit.
func (c *Cache) get(key cacheKey) (llm.Response, bool) {
	s := c.shard(key)
	s.mu.RLock()
	resp, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	}
	return resp, ok
}

// put stores a response under key.
func (c *Cache) put(key cacheKey, resp llm.Response) {
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = resp
	s.mu.Unlock()
}

// Stats returns the total entry and hit counts across shards.
func (c *Cache) Stats() (size, hits int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		size += len(s.entries)
		s.mu.RUnlock()
		hits += int(s.hits.Load())
	}
	return size, hits
}

// cacheEntry is the JSON persistence form of one cached response.
type cacheEntry struct {
	Model       string  `json:"model"`
	Prompt      string  `json:"prompt"`
	Temperature float64 `json:"temperature,omitempty"`
	MaxTokens   int     `json:"max_tokens,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Text        string  `json:"text"`
}

// Save writes the cache contents as JSON, so long experiment sweeps can be
// resumed across process restarts without re-spending tokens.
func (c *Cache) Save(w io.Writer) error {
	var entries []cacheEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.entries {
			entries = append(entries, cacheEntry{
				Model:       k.model,
				Prompt:      k.prompt,
				Temperature: k.temperature,
				MaxTokens:   k.maxTokens,
				Seed:        k.seed,
				Text:        v.Text,
			})
		}
		s.mu.RUnlock()
	}
	// Deterministic order for reproducible files: the full cache key
	// participates, so a cache shared by several models (or mixed sampling
	// parameters) still serializes identically run after run.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Prompt != b.Prompt {
			return a.Prompt < b.Prompt
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Temperature != b.Temperature {
			return a.Temperature < b.Temperature
		}
		return a.MaxTokens < b.MaxTokens
	})
	if err := json.NewEncoder(w).Encode(entries); err != nil {
		return fmt.Errorf("workflow: save cache: %w", err)
	}
	return nil
}

// Load merges previously saved cache contents. Loaded entries carry zero
// usage, like any cache hit. Entries for other model names are kept too
// (the key includes the model), so one file can serve a registry.
func (c *Cache) Load(r io.Reader) error {
	var entries []cacheEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("workflow: load cache: %w", err)
	}
	for _, e := range entries {
		c.put(cacheKey{
			model:       e.Model,
			prompt:      e.Prompt,
			temperature: e.Temperature,
			maxTokens:   e.MaxTokens,
			seed:        e.Seed,
		}, llm.Response{Text: e.Text, Model: e.Model})
	}
	return nil
}

// CachedModel wraps a model with a response cache. Identical requests hit
// the cache and cost nothing — the standard production optimisation for
// temperature-0 workloads, and what makes re-running experiment sweeps
// cheap. Safe for concurrent use.
type CachedModel struct {
	inner llm.Model
	cache *Cache
}

// NewCached wraps m with a fresh private cache.
func NewCached(m llm.Model) *CachedModel {
	return NewCachedWith(m, NewCache(0))
}

// NewCachedWith wraps m against an existing (possibly shared) cache.
func NewCachedWith(m llm.Model, c *Cache) *CachedModel {
	return &CachedModel{inner: m, cache: c}
}

// Name implements llm.Model.
func (c *CachedModel) Name() string { return c.inner.Name() }

// Cache returns the backing store, for persistence and sharing.
func (c *CachedModel) Cache() *Cache { return c.cache }

// Complete implements llm.Model, serving repeats from cache. Cached
// responses are returned with zero usage, mirroring that no API call was
// made.
func (c *CachedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	key := keyFor(c.inner.Name(), req)
	if resp, ok := c.cache.get(key); ok {
		resp.Usage = token.Usage{}
		return resp, nil
	}
	resp, err := c.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	c.cache.put(key, resp)
	return resp, nil
}

// Stats returns cache size and hit count.
func (c *CachedModel) Stats() (size, hits int) { return c.cache.Stats() }

// Save writes the backing cache as JSON (see Cache.Save).
func (c *CachedModel) Save(w io.Writer) error { return c.cache.Save(w) }

// Load merges previously saved contents (see Cache.Load).
func (c *CachedModel) Load(r io.Reader) error { return c.cache.Load(r) }

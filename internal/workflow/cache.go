package workflow

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/llm"
	"repro/internal/token"
)

// DefaultCacheShards is the shard count used by NewCache(0) and NewCached.
// Sixteen shards keep lock contention negligible at the engine's default
// parallelism while costing nothing at low concurrency.
const DefaultCacheShards = 16

// cacheKey identifies a completion for caching and coalescing.
// Temperature-positive requests include the seed (distinct samples must
// stay distinct).
type cacheKey struct {
	model       string
	prompt      string
	temperature float64
	maxTokens   int
	seed        int64
}

// keyFor derives the cache/coalesce identity of a request against a model.
func keyFor(model string, req llm.Request) cacheKey {
	key := cacheKey{
		model:       model,
		prompt:      req.Prompt,
		temperature: req.Temperature,
		maxTokens:   req.MaxTokens,
	}
	if req.Temperature > 0 {
		key.seed = req.Seed
	}
	return key
}

// cacheShard is one lock domain of a Cache. hits is atomic so the hot
// path (a hit) completes entirely under the read lock. dirty records the
// keys inserted since the last log flush, so CacheLog.Flush appends only
// the delta (see cachelog.go); it costs one slice append per put and
// nothing at all on the read path.
type cacheShard struct {
	mu      sync.RWMutex
	entries map[cacheKey]llm.Response
	dirty   []cacheKey
	hits    atomic.Int64
}

// Cache is a sharded, concurrency-safe response store. Keys are spread
// across shards by a hash of the prompt, so concurrent lookups under
// workflow.Map's parallelism contend per shard rather than on one global
// mutex. A Cache can back any number of CachedModel wrappers at once —
// the key includes the model name — which is how one cache spans every
// operator of a session (see ExecLayer).
type Cache struct {
	shards []cacheShard
}

// NewCache returns an empty cache with the given shard count; shards <= 0
// selects DefaultCacheShards.
func NewCache(shards int) *Cache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	c := &Cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]llm.Response)
	}
	return c
}

// shard picks the lock domain of a key. Only the prompt and model feed the
// hash: temperature/seed variants of one prompt are rare enough that
// spreading them further buys nothing.
func (c *Cache) shard(key cacheKey) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key.model))
	h.Write([]byte{0})
	h.Write([]byte(key.prompt))
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// get returns the cached response for key, counting a hit.
func (c *Cache) get(key cacheKey) (llm.Response, bool) {
	s := c.shard(key)
	s.mu.RLock()
	resp, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	}
	return resp, ok
}

// put stores a response under key, marking it dirty for the next log
// flush. Overwrites are marked too: last-write-wins replay makes a
// duplicate log record harmless, and flushing dedupes within one delta.
func (c *Cache) put(key cacheKey, resp llm.Response) {
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = resp
	s.dirty = append(s.dirty, key)
	s.mu.Unlock()
}

// Put stores (or overwrites) the response served for prompt against the
// named model at default sampling parameters — the programmatic way to
// pre-seed a cache with known answers (migration from another store,
// canned responses in tests and benchmarks). The entry is marked dirty
// like any insert, so the next CacheLog flush persists it.
func (c *Cache) Put(model, prompt string, resp llm.Response) {
	c.put(cacheKey{model: model, prompt: prompt}, resp)
}

// loadEntry is put without dirty marking: entries arriving from persisted
// state (snapshot Load, log replay) are already durable and must not be
// re-appended by the next flush.
func (c *Cache) loadEntry(key cacheKey, resp llm.Response) {
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = resp
	s.mu.Unlock()
}

// drainDirty collects and clears every shard's dirty delta, deduplicated
// by key (the current value wins), returning the entries to append.
func (c *Cache) drainDirty() map[cacheKey]llm.Response {
	delta := make(map[cacheKey]llm.Response)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, k := range s.dirty {
			delta[k] = s.entries[k]
		}
		s.dirty = nil
		s.mu.Unlock()
	}
	return delta
}

// markDirty re-flags keys as pending for the next flush — the undo path
// when a compaction drained the dirty set but then failed to replace the
// log file.
func (c *Cache) markDirty(keys map[cacheKey]llm.Response) {
	for k := range keys {
		s := c.shard(k)
		s.mu.Lock()
		s.dirty = append(s.dirty, k)
		s.mu.Unlock()
	}
}

// snapshot copies the full live contents, for compaction and Save.
func (c *Cache) snapshot() map[cacheKey]llm.Response {
	all := make(map[cacheKey]llm.Response)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.entries {
			all[k] = v
		}
		s.mu.RUnlock()
	}
	return all
}

// Stats returns the total entry and hit counts across shards.
func (c *Cache) Stats() (size, hits int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		size += len(s.entries)
		s.mu.RUnlock()
		hits += int(s.hits.Load())
	}
	return size, hits
}

// cacheEntry is the JSON persistence form of one cached response.
type cacheEntry struct {
	Model       string  `json:"model"`
	Prompt      string  `json:"prompt"`
	Temperature float64 `json:"temperature,omitempty"`
	MaxTokens   int     `json:"max_tokens,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Text        string  `json:"text"`
}

// sortEntries orders persistence entries deterministically: the full
// cache key participates, so a cache shared by several models (or mixed
// sampling parameters) still serializes identically run after run. The
// snapshot Save, the log flush, and compaction all use this one order.
func sortEntries(entries []cacheEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Prompt != b.Prompt {
			return a.Prompt < b.Prompt
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Temperature != b.Temperature {
			return a.Temperature < b.Temperature
		}
		return a.MaxTokens < b.MaxTokens
	})
}

// entryList converts a contents map into the sorted persistence form.
func entryList(m map[cacheKey]llm.Response) []cacheEntry {
	entries := make([]cacheEntry, 0, len(m))
	for k, v := range m {
		entries = append(entries, cacheEntry{
			Model:       k.model,
			Prompt:      k.prompt,
			Temperature: k.temperature,
			MaxTokens:   k.maxTokens,
			Seed:        k.seed,
			Text:        v.Text,
		})
	}
	sortEntries(entries)
	return entries
}

// key returns the cache key of a persistence entry.
func (e cacheEntry) key() cacheKey {
	return cacheKey{
		model:       e.Model,
		prompt:      e.Prompt,
		temperature: e.Temperature,
		maxTokens:   e.MaxTokens,
		seed:        e.Seed,
	}
}

// Save writes the cache contents as a deterministic JSON snapshot, so long
// experiment sweeps can be resumed across process restarts without
// re-spending tokens. The snapshot is O(cache) per save; processes that
// save repeatedly should use a CacheLog instead (cachelog.go), whose flush
// is O(new entries).
func (c *Cache) Save(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(entryList(c.snapshot())); err != nil {
		return fmt.Errorf("workflow: save cache: %w", err)
	}
	return nil
}

// SnapshotError reports a corrupt or truncated cache snapshot handed to
// Load. Loading is all-or-nothing: no entries from the bad stream were
// merged, so the caller can keep running with whatever the cache already
// held. The actionable fix is to delete (or regenerate) the snapshot file;
// switching persistence to a CacheLog additionally makes partial writes
// recoverable instead of fatal (replay keeps the valid prefix).
type SnapshotError struct {
	// Reason describes what was wrong with the stream.
	Reason string
	// Err is the underlying decode error, when one exists.
	Err error
}

func (e *SnapshotError) Error() string {
	msg := "workflow: cache snapshot corrupt: " + e.Reason +
		" (no entries loaded; delete or regenerate the snapshot file," +
		" or persist via CacheLog for torn-write recovery)"
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// Load merges previously saved cache contents. Loaded entries carry zero
// usage, like any cache hit. Entries for other model names are kept too
// (the key includes the model), so one file can serve a registry.
//
// An empty stream loads nothing and returns nil (a fresh snapshot file is
// a valid empty cache). A malformed or truncated stream returns a
// *SnapshotError and merges nothing — loading is all-or-nothing, unlike
// CacheLog replay, which recovers the valid prefix of a torn log.
func (c *Cache) Load(r io.Reader) error {
	dec := json.NewDecoder(r)
	var entries []cacheEntry
	if err := dec.Decode(&entries); err != nil {
		if err == io.EOF {
			return nil // empty stream: a valid empty snapshot
		}
		return &SnapshotError{Reason: "malformed JSON", Err: err}
	}
	// A snapshot is exactly one array; trailing non-whitespace means the
	// file was corrupted (e.g. two interleaved writers) even though a
	// prefix parsed.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return &SnapshotError{Reason: "trailing data after snapshot array"}
	}
	for _, e := range entries {
		c.loadEntry(e.key(), llm.Response{Text: e.Text, Model: e.Model})
	}
	return nil
}

// CachedModel wraps a model with a response cache. Identical requests hit
// the cache and cost nothing — the standard production optimisation for
// temperature-0 workloads, and what makes re-running experiment sweeps
// cheap. Safe for concurrent use.
type CachedModel struct {
	inner llm.Model
	cache *Cache
}

// NewCached wraps m with a fresh private cache.
func NewCached(m llm.Model) *CachedModel {
	return NewCachedWith(m, NewCache(0))
}

// NewCachedWith wraps m against an existing (possibly shared) cache.
func NewCachedWith(m llm.Model, c *Cache) *CachedModel {
	return &CachedModel{inner: m, cache: c}
}

// Name implements llm.Model.
func (c *CachedModel) Name() string { return c.inner.Name() }

// Cache returns the backing store, for persistence and sharing.
func (c *CachedModel) Cache() *Cache { return c.cache }

// Complete implements llm.Model, serving repeats from cache. Cached
// responses are returned with zero usage, mirroring that no API call was
// made.
func (c *CachedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	key := keyFor(c.inner.Name(), req)
	if resp, ok := c.cache.get(key); ok {
		resp.Usage = token.Usage{}
		return resp, nil
	}
	resp, err := c.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	c.cache.put(key, resp)
	return resp, nil
}

// Stats returns cache size and hit count.
func (c *CachedModel) Stats() (size, hits int) { return c.cache.Stats() }

// Save writes the backing cache as JSON (see Cache.Save).
func (c *CachedModel) Save(w io.Writer) error { return c.cache.Save(w) }

// Load merges previously saved contents (see Cache.Load).
func (c *CachedModel) Load(r io.Reader) error { return c.cache.Load(r) }

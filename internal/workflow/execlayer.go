package workflow

import (
	"sync/atomic"

	"repro/internal/llm"
)

// ExecStats is a point-in-time snapshot of an ExecLayer's effect.
type ExecStats struct {
	// CacheSize and CacheHits describe the shared response cache.
	CacheSize, CacheHits int
	// Coalesced counts requests answered by joining another caller's
	// in-flight upstream call.
	Coalesced int
	// Batches counts multi-task envelope calls issued upstream by
	// batchers observing this layer (failed envelopes included — they
	// were real upstream calls).
	Batches int
	// SoloRetries counts unit tasks re-issued individually after a failed
	// envelope call or a missing/garbled answer section.
	SoloRetries int
}

// BatchObserver receives batching outcomes from a BatchingModel so a
// shared layer can aggregate them across every per-session batcher.
type BatchObserver interface {
	// ObserveBatch records one envelope call issued upstream (packed unit
	// tasks inside it) and any unit tasks that fell back to a solo retry.
	ObserveBatch(envelopes, packed, soloRetries int)
}

// ExecLayer is the shared high-throughput execution substrate: one
// sharded response cache plus one in-flight coalescer that span every
// operator (and every engine) wrapped against it. Without it, each
// operator invocation builds a private cache (core's per-session default),
// so nothing is reused across operators and concurrent identical requests
// all miss. With it, an identical unit task is answered upstream exactly
// once per process — first by coalescing while in flight, then by the
// cache forever after.
//
// The layer also implements BatchObserver: engines that batch below it
// (core.WithBatching) report envelope and solo-retry counts here, so
// Stats unifies cache, coalescing, and batching effects in one snapshot.
//
// Construct one layer per logical session or service and pass it to every
// engine via core.WithExecutionLayer. Safe for concurrent use.
type ExecLayer struct {
	cache   *Cache
	flights *FlightGroup

	batches     atomic.Int64
	soloRetries atomic.Int64
}

// NewExecLayer returns a layer with a DefaultCacheShards-way cache.
func NewExecLayer() *ExecLayer { return NewExecLayerShards(0) }

// NewExecLayerShards returns a layer whose cache has the given shard
// count; shards <= 0 selects DefaultCacheShards.
func NewExecLayerShards(shards int) *ExecLayer {
	return &ExecLayer{cache: NewCache(shards), flights: NewFlightGroup()}
}

// Cache returns the shared cache handle, for Save/Load persistence.
func (l *ExecLayer) Cache() *Cache { return l.cache }

// Wrap layers the shared cache and coalescer over m: lookups hit the cache
// first; misses coalesce with identical in-flight requests; only flight
// leaders reach m.
func (l *ExecLayer) Wrap(m llm.Model) llm.Model {
	return NewCachedWith(NewCoalescingWith(m, l.flights), l.cache)
}

// ObserveBatch implements BatchObserver.
func (l *ExecLayer) ObserveBatch(envelopes, packed, soloRetries int) {
	l.batches.Add(int64(envelopes))
	l.soloRetries.Add(int64(soloRetries))
}

// Stats snapshots the layer's counters. It is safe to call concurrently
// with in-flight requests (and with other Stats calls): every counter is
// independently synchronized, so a snapshot taken mid-run is a consistent
// point-in-time lower bound, never a torn read.
func (l *ExecLayer) Stats() ExecStats {
	size, hits := l.cache.Stats()
	return ExecStats{
		CacheSize:   size,
		CacheHits:   hits,
		Coalesced:   l.flights.Coalesced(),
		Batches:     int(l.batches.Load()),
		SoloRetries: int(l.soloRetries.Load()),
	}
}

package workflow

import (
	"repro/internal/llm"
)

// ExecStats is a point-in-time snapshot of an ExecLayer's effect.
type ExecStats struct {
	// CacheSize and CacheHits describe the shared response cache.
	CacheSize, CacheHits int
	// Coalesced counts requests answered by joining another caller's
	// in-flight upstream call.
	Coalesced int
}

// ExecLayer is the shared high-throughput execution substrate: one
// sharded response cache plus one in-flight coalescer that span every
// operator (and every engine) wrapped against it. Without it, each
// operator invocation builds a private cache (core's per-session default),
// so nothing is reused across operators and concurrent identical requests
// all miss. With it, an identical unit task is answered upstream exactly
// once per process — first by coalescing while in flight, then by the
// cache forever after.
//
// Construct one layer per logical session or service and pass it to every
// engine via core.WithExecutionLayer. Safe for concurrent use.
type ExecLayer struct {
	cache   *Cache
	flights *FlightGroup
}

// NewExecLayer returns a layer with a DefaultCacheShards-way cache.
func NewExecLayer() *ExecLayer { return NewExecLayerShards(0) }

// NewExecLayerShards returns a layer whose cache has the given shard
// count; shards <= 0 selects DefaultCacheShards.
func NewExecLayerShards(shards int) *ExecLayer {
	return &ExecLayer{cache: NewCache(shards), flights: NewFlightGroup()}
}

// Cache returns the shared cache handle, for Save/Load persistence.
func (l *ExecLayer) Cache() *Cache { return l.cache }

// Wrap layers the shared cache and coalescer over m: lookups hit the cache
// first; misses coalesce with identical in-flight requests; only flight
// leaders reach m.
func (l *ExecLayer) Wrap(m llm.Model) llm.Model {
	return NewCachedWith(NewCoalescingWith(m, l.flights), l.cache)
}

// Stats snapshots the layer's counters.
func (l *ExecLayer) Stats() ExecStats {
	size, hits := l.cache.Stats()
	return ExecStats{CacheSize: size, CacheHits: hits, Coalesced: l.flights.Coalesced()}
}

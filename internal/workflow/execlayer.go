package workflow

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/llm"
)

// ExecStats is a point-in-time snapshot of an ExecLayer's effect.
type ExecStats struct {
	// CacheSize and CacheHits describe the shared response cache.
	CacheSize, CacheHits int
	// Coalesced counts requests answered by joining another caller's
	// in-flight upstream call.
	Coalesced int
	// Batches counts multi-task envelope calls issued upstream by
	// batchers observing this layer (failed envelopes included — they
	// were real upstream calls).
	Batches int
	// SoloRetries counts unit tasks re-issued individually after a failed
	// envelope call or a missing/garbled answer section.
	SoloRetries int
}

// BatchObserver receives batching outcomes from a BatchingModel so a
// shared layer can aggregate them across every per-session batcher.
type BatchObserver interface {
	// ObserveBatch records one envelope call issued upstream (packed unit
	// tasks inside it) and any unit tasks that fell back to a solo retry.
	ObserveBatch(envelopes, packed, soloRetries int)
}

// ServeObserver receives every unit ask that passes through an ExecLayer's
// Wrap, with the ask's own context — which a multi-tenant service has
// tagged per tenant (TagTenant) — and whether the layer served it free.
// "Free" means the response carried zero usage: a cache hit or a coalesced
// follower (and, when an engine batches below the layer, a batch co-rider
// whose envelope was billed to its leader). The layer's global Stats can
// only report aggregate hit counts; this per-ask callback is what lets a
// service split them by tenant exactly, even under concurrent jobs.
type ServeObserver interface {
	ObserveServe(ctx context.Context, free bool)
}

// ExecLayer is the shared high-throughput execution substrate: one
// sharded response cache plus one in-flight coalescer that span every
// operator (and every engine) wrapped against it. Without it, each
// operator invocation builds a private cache (core's per-session default),
// so nothing is reused across operators and concurrent identical requests
// all miss. With it, an identical unit task is answered upstream exactly
// once per process — first by coalescing while in flight, then by the
// cache forever after.
//
// The layer also implements BatchObserver: engines that batch below it
// (core.WithBatching) report envelope and solo-retry counts here, so
// Stats unifies cache, coalescing, and batching effects in one snapshot.
//
// Construct one layer per logical session or service and pass it to every
// engine via core.WithExecutionLayer. Safe for concurrent use.
type ExecLayer struct {
	cache   *Cache
	flights *FlightGroup

	batches     atomic.Int64
	soloRetries atomic.Int64

	// serveObs holds the optional ServeObserver (serveObsBox), consulted
	// per ask by the wrapper Wrap layers on top of the cache.
	serveObs atomic.Value

	// stateMu guards the optional persistence attachment (OpenState).
	stateMu sync.Mutex
	log     *CacheLog
}

// serveObsBox gives atomic.Value one concrete type whatever the observer's
// dynamic type is.
type serveObsBox struct{ obs ServeObserver }

// NewExecLayer returns a layer with a DefaultCacheShards-way cache.
func NewExecLayer() *ExecLayer { return NewExecLayerShards(0) }

// NewExecLayerShards returns a layer whose cache has the given shard
// count; shards <= 0 selects DefaultCacheShards.
func NewExecLayerShards(shards int) *ExecLayer {
	return &ExecLayer{cache: NewCache(shards), flights: NewFlightGroup()}
}

// Cache returns the shared cache handle, for Save/Load persistence.
func (l *ExecLayer) Cache() *Cache { return l.cache }

// Wrap layers the shared cache and coalescer over m: lookups hit the cache
// first; misses coalesce with identical in-flight requests; only flight
// leaders reach m. When a ServeObserver is attached, every successful ask
// is additionally reported to it with the ask's context.
func (l *ExecLayer) Wrap(m llm.Model) llm.Model {
	return &observedModel{inner: NewCachedWith(NewCoalescingWith(m, l.flights), l.cache), layer: l}
}

// SetServeObserver attaches (or, with nil, detaches) the per-ask observer.
// Safe to call concurrently with in-flight requests; asks already past the
// observation point keep the observer they loaded.
func (l *ExecLayer) SetServeObserver(o ServeObserver) {
	l.serveObs.Store(serveObsBox{obs: o})
}

// observedModel sits on top of an ExecLayer's cache and reports each
// successful ask to the layer's ServeObserver, classifying it free when the
// response carried zero usage (served without a fresh billed upstream call).
type observedModel struct {
	inner llm.Model
	layer *ExecLayer
}

// Name implements llm.Model.
func (m *observedModel) Name() string { return m.inner.Name() }

// Complete implements llm.Model.
func (m *observedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	resp, err := m.inner.Complete(ctx, req)
	if err == nil {
		if box, ok := m.layer.serveObs.Load().(serveObsBox); ok && box.obs != nil {
			box.obs.ObserveServe(ctx, resp.Usage.IsZero())
		}
	}
	return resp, err
}

// ObserveBatch implements BatchObserver.
func (l *ExecLayer) ObserveBatch(envelopes, packed, soloRetries int) {
	l.batches.Add(int64(envelopes))
	l.soloRetries.Add(int64(soloRetries))
}

// Stats snapshots the layer's counters. It is safe to call concurrently
// with in-flight requests (and with other Stats calls): every counter is
// independently synchronized, so a snapshot taken mid-run is a consistent
// point-in-time lower bound, never a torn read.
func (l *ExecLayer) Stats() ExecStats {
	size, hits := l.cache.Stats()
	return ExecStats{
		CacheSize:   size,
		CacheHits:   hits,
		Coalesced:   l.flights.Coalesced(),
		Batches:     int(l.batches.Load()),
		SoloRetries: int(l.soloRetries.Load()),
	}
}

// CacheLogName is the file name of an ExecLayer's cache log inside a
// state directory (see OpenState and core.WithStateDir).
const CacheLogName = "cache.log"

// OpenState attaches an append-only cache log under dir (dir/cache.log,
// created if needed) and replays its contents into the layer's shared
// cache, so a new process starts warm: every previously answered unit
// task is re-served free. Returns the replay stats — Recovered set means
// a torn tail from a crashed predecessor was recovered (the valid prefix
// loaded). Call FlushState to persist new entries (O(delta)) and
// CompactState to reclaim superseded records. Calling OpenState on a
// layer that already has state is a no-op reporting zero stats.
func (l *ExecLayer) OpenState(dir string) (ReplayStats, error) {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	if l.log != nil {
		return ReplayStats{}, nil
	}
	lg, err := OpenCacheLog(filepath.Join(dir, CacheLogName))
	if err != nil {
		return ReplayStats{}, err
	}
	stats, err := lg.Replay(l.cache)
	if err != nil {
		lg.Close()
		return stats, err
	}
	l.log = lg
	return stats, nil
}

// HasState reports whether a cache log is attached.
func (l *ExecLayer) HasState() bool {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.log != nil
}

// compactMinRecords is the log size below which FlushState never
// auto-compacts: rewriting a small log saves nothing and churns the
// file under rapid flush cycles.
const compactMinRecords = 1024

// FlushState appends every cache entry inserted since the last flush to
// the attached log — O(delta), no rewrite of existing bytes — and syncs.
// Returns the number of records appended; without attached state it is a
// no-op. Safe to call concurrently with in-flight requests: entries
// inserted during the flush land in the next delta.
//
// FlushState also owns size-triggered compaction: when superseded
// records outnumber live entries (log records more than twice the cache
// size, past a small floor) the log is rewritten to live entries only,
// so a long-running service's log stays proportional to its cache
// without anyone scheduling maintenance.
func (l *ExecLayer) FlushState() (int, error) {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	if l.log == nil {
		return 0, nil
	}
	n, err := l.log.Flush(l.cache)
	if err != nil {
		return n, err
	}
	live, _ := l.cache.Stats()
	if st := l.log.Stats(); st.Records >= compactMinRecords && st.Records > 2*live {
		if err := l.log.Compact(l.cache); err != nil {
			return n, fmt.Errorf("auto-compact after flush: %w", err)
		}
	}
	return n, nil
}

// CompactState rewrites the attached log to the cache's live entries
// only, atomically, dropping superseded records. No-op without state.
func (l *ExecLayer) CompactState() error {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	if l.log == nil {
		return nil
	}
	return l.log.Compact(l.cache)
}

// StateStats returns the attached log's stats; ok is false when no state
// is attached.
func (l *ExecLayer) StateStats() (stats CacheLogStats, ok bool) {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	if l.log == nil {
		return CacheLogStats{}, false
	}
	return l.log.Stats(), true
}

// CloseState flushes pending entries and closes the log, detaching it.
// No-op without state.
func (l *ExecLayer) CloseState() error {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	if l.log == nil {
		return nil
	}
	_, ferr := l.log.Flush(l.cache)
	cerr := l.log.Close()
	l.log = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

package workflow

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/llm"
)

// fakeClock drives a RateLimiter deterministically.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time { return c.t }

func newTestLimiter(rate float64, burst int) (*RateLimiter, *fakeClock) {
	l := NewRateLimiter(rate, burst)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clock.now
	l.last = clock.t
	l.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		clock.t = clock.t.Add(d)
		return nil
	}
	return l, clock
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	l, clock := newTestLimiter(10, 3)
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("burst call %d refused", i)
		}
	}
	if l.Allow() {
		t.Fatal("burst exhausted; call should be refused")
	}
	// 100ms refills one token at 10/s.
	clock.t = clock.t.Add(100 * time.Millisecond)
	if !l.Allow() {
		t.Fatal("refilled token should be granted")
	}
	if l.Allow() {
		t.Fatal("only one token refilled")
	}
}

func TestRateLimiterWaitBlocksDeterministically(t *testing.T) {
	l, clock := newTestLimiter(100, 1)
	start := clock.t
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The second Wait must have advanced the (fake) clock ~10ms.
	if elapsed := clock.t.Sub(start); elapsed < 9*time.Millisecond {
		t.Fatalf("Wait did not pace: elapsed %v", elapsed)
	}
}

func TestRateLimiterWaitCancellation(t *testing.T) {
	l, _ := newTestLimiter(0.001, 1)
	l.Allow() // drain
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Wait(ctx); err == nil {
		t.Fatal("cancelled context should abort Wait")
	}
}

func TestRateLimiterCapsAtBurst(t *testing.T) {
	l, clock := newTestLimiter(1000, 2)
	clock.t = clock.t.Add(time.Hour) // massive idle period
	granted := 0
	for i := 0; i < 10; i++ {
		if l.Allow() {
			granted++
		}
	}
	if granted != 2 {
		t.Fatalf("granted %d, want burst cap 2", granted)
	}
}

func TestNewRateLimiterPanics(t *testing.T) {
	for _, bad := range []struct {
		rate  float64
		burst int
	}{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRateLimiter(%v, %d) should panic", bad.rate, bad.burst)
				}
			}()
			NewRateLimiter(bad.rate, bad.burst)
		}()
	}
}

func TestRateLimitedModel(t *testing.T) {
	l, _ := newTestLimiter(1000, 5)
	m := NewRateLimited(fixedModel("m", "ok"), l)
	if m.Name() != "m" {
		t.Fatal("name")
	}
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "x"})
	if err != nil || resp.Text != "ok" {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
}

func TestFlakyModel(t *testing.T) {
	f := NewFlaky(fixedModel("m", "ok"), 3)
	var errs int
	for i := 0; i < 9; i++ {
		if _, err := f.Complete(context.Background(), llm.Request{}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("injected %d failures in 9 calls, want 3", errs)
	}
	calls, failures := f.Stats()
	if calls != 9 || failures != 3 {
		t.Fatalf("stats = %d, %d", calls, failures)
	}
}

func TestNewFlakyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("failEvery < 2 should panic")
		}
	}()
	NewFlaky(fixedModel("m", "ok"), 1)
}

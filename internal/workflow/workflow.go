// Package workflow provides the execution machinery under the declarative
// engine: monetary/token budget enforcement (the paper's "within the
// specified monetary budget"), the shared execution layer (sharded
// response cache plus in-flight request coalescing, see ExecLayer),
// unit-task batching into envelope prompts (BatchingModel),
// bounded-concurrency fan-out (Map), client-side rate limiting,
// per-model usage tracing (Trace), and per-stage usage attribution
// (Attribution, TagStage) that lets one shared budget be broken down by
// pipeline stage — including the optimizer's selectivity probes under
// the reserved StageProbe label. See docs/EXECUTION.md.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/llm"
	"repro/internal/token"
)

// ErrBudgetExhausted reports that an LLM call was refused because it
// would exceed the configured budget. Strategies treat it as a terminal
// condition and return partial results with the error.
var ErrBudgetExhausted = errors.New("workflow: budget exhausted")

// Budget caps spending across a workflow. The zero value is unlimited;
// use NewBudget to set caps. Budget is safe for concurrent use.
type Budget struct {
	mu sync.Mutex
	// maxDollars <= 0 means no dollar cap; maxTokens <= 0 no token cap;
	// maxCalls <= 0 no call cap.
	maxDollars float64
	maxTokens  int
	maxCalls   int

	spentDollars float64
	spent        token.Usage
}

// NewBudget returns a budget with the given caps. Any cap <= 0 is
// unlimited.
func NewBudget(maxDollars float64, maxTokens, maxCalls int) *Budget {
	return &Budget{maxDollars: maxDollars, maxTokens: maxTokens, maxCalls: maxCalls}
}

// Unlimited returns a budget with no caps (but full accounting).
func Unlimited() *Budget { return &Budget{} }

// Charge records usage billed at the given model's price. It returns
// ErrBudgetExhausted if the charge pushes any cap strictly over its
// limit; the charge is still recorded (the call already happened).
func (b *Budget) Charge(model string, u token.Usage) error {
	cost := token.PriceFor(model).Cost(u)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spentDollars += cost
	b.spent = b.spent.Add(u)
	if b.exceededLocked() {
		return fmt.Errorf("%w after charging %q: spent $%.4f, %d tokens, %d calls",
			ErrBudgetExhausted, model, b.spentDollars, b.spent.Total(), b.spent.Calls)
	}
	return nil
}

// Allows reports whether another call of the estimated usage would fit.
// Strategies call it before issuing work they could skip.
func (b *Budget) Allows(model string, estimate token.Usage) bool {
	cost := token.PriceFor(model).Cost(estimate)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.maxDollars > 0 && b.spentDollars+cost > b.maxDollars {
		return false
	}
	if b.maxTokens > 0 && b.spent.Total()+estimate.Total() > b.maxTokens {
		return false
	}
	if b.maxCalls > 0 && b.spent.Calls+estimate.Calls > b.maxCalls {
		return false
	}
	return true
}

func (b *Budget) exceededLocked() bool {
	if b.maxDollars > 0 && b.spentDollars > b.maxDollars {
		return true
	}
	if b.maxTokens > 0 && b.spent.Total() > b.maxTokens {
		return true
	}
	if b.maxCalls > 0 && b.spent.Calls > b.maxCalls {
		return true
	}
	return false
}

// RemainingDollars returns the dollar headroom left under the cap (never
// negative) and whether a dollar cap is set at all. Pipeline-level
// planning uses it to hand the per-stage planner the budget that is
// actually still available.
func (b *Budget) RemainingDollars() (float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.maxDollars <= 0 {
		return 0, false
	}
	rem := b.maxDollars - b.spentDollars
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// Restore seeds the budget with spend recorded by an earlier process, so
// caps apply to a tenant's lifetime spend across restarts. Unlike Charge
// it does not price the usage: the dollars were computed when the spend
// actually happened, and re-pricing at today's rates would let a price
// change retroactively shrink (or inflate) what a tenant already paid.
func (b *Budget) Restore(u token.Usage, dollars float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spent = b.spent.Add(u)
	b.spentDollars += dollars
}

// Spent returns the usage and dollars recorded so far.
func (b *Budget) Spent() (token.Usage, float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent, b.spentDollars
}

// Reset zeroes the accounting, keeping the caps.
func (b *Budget) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spent = token.Usage{}
	b.spentDollars = 0
}

// BudgetedModel wraps a model with budget admission control: calls are
// refused with ErrBudgetExhausted once the budget no longer allows the
// estimated spend, and every completed call is charged.
type BudgetedModel struct {
	inner  llm.Model
	budget *Budget
	// EstimateCompletion is the completion-token allowance assumed at
	// admission time (prompt tokens are measured exactly).
	EstimateCompletion int
}

// NewBudgeted wraps m against budget b.
func NewBudgeted(m llm.Model, b *Budget) *BudgetedModel {
	return &BudgetedModel{inner: m, budget: b, EstimateCompletion: 64}
}

// Name implements llm.Model.
func (m *BudgetedModel) Name() string { return m.inner.Name() }

// Complete implements llm.Model with admission control and charging.
func (m *BudgetedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	estimate := token.Usage{
		PromptTokens:     token.Count(req.Prompt),
		CompletionTokens: m.EstimateCompletion,
		Calls:            1,
	}
	if !m.budget.Allows(m.inner.Name(), estimate) {
		return llm.Response{}, fmt.Errorf("refusing call to %q: %w", m.inner.Name(), ErrBudgetExhausted)
	}
	resp, err := m.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if cerr := m.budget.Charge(m.inner.Name(), resp.Usage); cerr != nil {
		// The response is still valid; surface the exhaustion so the
		// caller stops issuing further work.
		return resp, cerr
	}
	return resp, nil
}

// Map runs fn over indices 0..n-1 with at most parallelism concurrent
// invocations and collects the results in index order. The first error
// cancels outstanding work and is returned alongside the partial results
// (entries for failed or cancelled indices are the zero value).
func Map[T any](ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if parallelism <= 0 {
		parallelism = 1
	}
	results := make([]T, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, parallelism)
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop || ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			v, err := fn(ctx, i)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("workflow: task %d: %w", i, err)
					cancel()
				}
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = fmt.Errorf("workflow: %w", ctx.Err())
	}
	return results, firstErr
}

// Trace accumulates per-model usage for reporting. Safe for concurrent
// use.
type Trace struct {
	mu      sync.Mutex
	byModel map[string]token.Usage
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{byModel: make(map[string]token.Usage)} }

// Record adds usage under the given model name.
func (t *Trace) Record(model string, u token.Usage) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byModel[model] = t.byModel[model].Add(u)
}

// Usage returns the usage recorded for one model.
func (t *Trace) Usage(model string) token.Usage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byModel[model]
}

// Total returns usage summed across models, and the total dollar cost at
// list prices.
func (t *Trace) Total() (token.Usage, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var u token.Usage
	var cost float64
	for model, usage := range t.byModel {
		u = u.Add(usage)
		cost += token.PriceFor(model).Cost(usage)
	}
	return u, cost
}

// TracedModel wraps a model so every successful call is recorded in a
// Trace.
type TracedModel struct {
	inner llm.Model
	trace *Trace
}

// NewTraced wraps m, recording into tr.
func NewTraced(m llm.Model, tr *Trace) *TracedModel {
	return &TracedModel{inner: m, trace: tr}
}

// Name implements llm.Model.
func (m *TracedModel) Name() string { return m.inner.Name() }

// Complete implements llm.Model.
func (m *TracedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	resp, err := m.inner.Complete(ctx, req)
	if err == nil {
		m.trace.Record(m.inner.Name(), resp.Usage)
	}
	return resp, err
}

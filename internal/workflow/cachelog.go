package workflow

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/llm"
)

// CacheLog is the append-only persistence form of a Cache: one
// length-prefixed, checksummed binary record per inserted entry, appended
// in O(entry) — no rewrite of existing bytes — with an explicit
// compaction that rewrites live entries only. It replaces the O(cache)
// whole-file JSON snapshot (Cache.Save) for long-running or frequently
// flushed processes: a flush costs only the delta since the previous
// flush, and a crash mid-append loses at most the final partial record
// (Replay recovers the valid prefix and truncates the torn tail).
//
// Layout:
//
//	header:  "DCLG" magic | uint32 version (little-endian)
//	record:  uint32 payload length | uint32 CRC-32C of payload | payload
//	payload: model, prompt, text as (uint32 length | bytes) each,
//	         float64 temperature bits, int32 max tokens, int64 seed
//
// Replay applies records in order with last-write-wins semantics, so a
// re-inserted key simply appends a superseding record; Compact reclaims
// the dead ones. All integers are little-endian. See docs/PERSISTENCE.md.
//
// A CacheLog is safe for concurrent use, but file-level: two processes
// must not append to one log concurrently (last to replay wins nothing —
// their records interleave and both prefixes survive, but there is no
// cross-process locking).
type CacheLog struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int   // records currently in the file, superseded included
	size    int64 // bytes of valid log (header + records)
	// replayed reports whether the file's tail has been validated (a
	// fresh log trivially has; an existing one needs Replay). Appending
	// before validation could land records after a torn tail, where the
	// next replay would discard them, so Flush refuses until then.
	replayed bool
}

// CacheLogStats describes a log file: total records (superseded entries
// included — compare against the live cache size for the live ratio) and
// file bytes.
type CacheLogStats struct {
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// ReplayStats reports what a Replay recovered. Recovered is true when the
// log ended in a torn or corrupt record: the valid prefix was applied,
// DroppedBytes were discarded, and the file was truncated back to the
// last intact record so future appends extend a clean log.
type ReplayStats struct {
	Records      int
	Recovered    bool
	DroppedBytes int64
}

const (
	cacheLogMagic   = "DCLG"
	cacheLogVersion = 1
	// cacheLogMaxRecord bounds a single record's payload; a length prefix
	// beyond it is treated as corruption rather than attempted as an
	// allocation.
	cacheLogMaxRecord = 64 << 20
	cacheLogHeaderLen = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotCacheLog reports that a file exists at the log path but does not
// start with the cache-log magic — likely a JSON snapshot or an unrelated
// file, which OpenCacheLog refuses to append to.
var ErrNotCacheLog = errors.New("workflow: file is not a cache log")

// OpenCacheLog opens the log at path, creating it (and its parent
// directory) with a fresh header when absent or empty. The returned log
// is positioned for appends; call Replay to load its contents into a
// Cache first.
func OpenCacheLog(path string) (*CacheLog, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("workflow: open cache log: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("workflow: open cache log: %w", err)
	}
	lg := &CacheLog{f: f, path: path}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("workflow: open cache log: %w", err)
	}
	if st.Size() == 0 {
		if err := lg.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return lg, nil
	}
	var hdr [cacheLogHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[:4]) != cacheLogMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrNotCacheLog, path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != cacheLogVersion {
		f.Close()
		return nil, fmt.Errorf("workflow: cache log %s has version %d, this build reads %d", path, v, cacheLogVersion)
	}
	lg.size = cacheLogHeaderLen
	return lg, nil
}

// errReplayRequired: see CacheLog.replayed.
var errReplayRequired = errors.New("workflow: cache log has unvalidated contents; call Replay before Flush")

func (lg *CacheLog) writeHeader() error {
	var hdr [cacheLogHeaderLen]byte
	copy(hdr[:4], cacheLogMagic)
	binary.LittleEndian.PutUint32(hdr[4:], cacheLogVersion)
	if _, err := lg.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("workflow: write cache log header: %w", err)
	}
	lg.size = cacheLogHeaderLen
	lg.records = 0
	lg.replayed = true // a fresh log has no tail to validate
	return nil
}

// Path returns the log's file path.
func (lg *CacheLog) Path() string { return lg.path }

// Stats returns the log's record and byte counts as of the last Replay,
// Flush, or Compact.
func (lg *CacheLog) Stats() CacheLogStats {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return CacheLogStats{Records: lg.records, Bytes: lg.size}
}

// Close syncs and closes the log file.
func (lg *CacheLog) Close() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if err := lg.f.Sync(); err != nil {
		lg.f.Close()
		return err
	}
	return lg.f.Close()
}

// appendRecord encodes one record into buf (reusing its storage) and
// returns the encoded bytes.
func appendRecord(buf []byte, e cacheEntry) []byte {
	payload := len(e.Model) + len(e.Prompt) + len(e.Text) + 3*4 + 8 + 4 + 8
	need := 8 + payload
	buf = buf[:0]
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	buf = append(buf, 0, 0, 0, 0) // CRC placeholder
	str := func(s string) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	str(e.Model)
	str(e.Prompt)
	str(e.Text)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Temperature))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e.MaxTokens)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Seed))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:], crcTable))
	return buf
}

// decodeRecordPayload parses one checksummed payload.
func decodeRecordPayload(p []byte) (cacheEntry, bool) {
	var e cacheEntry
	str := func() (string, bool) {
		if len(p) < 4 {
			return "", false
		}
		n := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if uint32(len(p)) < n {
			return "", false
		}
		s := string(p[:n])
		p = p[n:]
		return s, true
	}
	var ok bool
	if e.Model, ok = str(); !ok {
		return e, false
	}
	if e.Prompt, ok = str(); !ok {
		return e, false
	}
	if e.Text, ok = str(); !ok {
		return e, false
	}
	if len(p) != 8+4+8 {
		return e, false
	}
	e.Temperature = math.Float64frombits(binary.LittleEndian.Uint64(p))
	e.MaxTokens = int(int32(binary.LittleEndian.Uint32(p[8:])))
	e.Seed = int64(binary.LittleEndian.Uint64(p[12:]))
	return e, true
}

// Replay reads the log from the start and applies every intact record
// into c, last write winning, without marking the entries dirty (they are
// already durable). A torn tail — a final record that is truncated or
// fails its checksum, the signature of a crash mid-append — is recovered:
// the valid prefix is applied, the file is truncated back to the last
// intact record, and ReplayStats.Recovered reports it. Corruption earlier
// in the file is handled the same way (everything after the first bad
// record is dropped), so at worst a flipped byte costs the suffix — never
// a crash, never a poisoned cache. Contrast Cache.Load, whose snapshot
// format is all-or-nothing.
func (lg *CacheLog) Replay(c *Cache) (ReplayStats, error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	var stats ReplayStats
	if _, err := lg.f.Seek(cacheLogHeaderLen, io.SeekStart); err != nil {
		return stats, fmt.Errorf("workflow: replay cache log: %w", err)
	}
	st, err := lg.f.Stat()
	if err != nil {
		return stats, fmt.Errorf("workflow: replay cache log: %w", err)
	}
	fileSize := st.Size()
	r := bufio.NewReaderSize(lg.f, 1<<20)
	valid := int64(cacheLogHeaderLen)
	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn header: prefix ends here
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > cacheLogMaxRecord || int64(n) > fileSize-valid-8 {
			break // absurd or past-EOF length: corrupt record
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
			break // checksum mismatch
		}
		e, ok := decodeRecordPayload(payload)
		if !ok {
			break // structurally invalid payload despite matching CRC
		}
		c.loadEntry(e.key(), llm.Response{Text: e.Text, Model: e.Model})
		stats.Records++
		valid += 8 + int64(n)
	}
	if valid < fileSize {
		stats.Recovered = true
		stats.DroppedBytes = fileSize - valid
		if err := lg.f.Truncate(valid); err != nil {
			return stats, fmt.Errorf("workflow: truncate torn cache log tail: %w", err)
		}
	}
	lg.records = stats.Records
	lg.size = valid
	lg.replayed = true
	return stats, nil
}

// Flush appends every entry inserted into c since the last Flush (or
// Compact) and syncs the file — O(delta): existing log bytes are never
// rewritten. Within one flush the delta is deduplicated by key and
// appended in the deterministic snapshot order, so one workload flushed
// once produces one byte-identical log. Returns the number of records
// appended.
func (lg *CacheLog) Flush(c *Cache) (int, error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if !lg.replayed {
		return 0, errReplayRequired
	}
	delta := c.drainDirty()
	if len(delta) == 0 {
		return 0, nil
	}
	entries := entryList(delta)
	// Appends go at the validated end of the log — Replay may have read
	// elsewhere, and a recovered tail truncation moved the end.
	if _, err := lg.f.Seek(lg.size, io.SeekStart); err != nil {
		return 0, fmt.Errorf("workflow: flush cache log: %w", err)
	}
	w := bufio.NewWriterSize(lg.f, 1<<20)
	var buf []byte
	var written int64
	for _, e := range entries {
		buf = appendRecord(buf, e)
		if _, err := w.Write(buf); err != nil {
			return 0, fmt.Errorf("workflow: flush cache log: %w", err)
		}
		written += int64(len(buf))
	}
	if err := w.Flush(); err != nil {
		return 0, fmt.Errorf("workflow: flush cache log: %w", err)
	}
	if err := lg.f.Sync(); err != nil {
		return 0, fmt.Errorf("workflow: flush cache log: %w", err)
	}
	lg.records += len(entries)
	lg.size += written
	return len(entries), nil
}

// Compact rewrites the log to exactly c's live entries (in deterministic
// snapshot order), atomically: the replacement is written beside the log
// and renamed over it, so a crash mid-compaction leaves the old log
// intact. Unflushed entries are included — compaction makes every pending
// delta durable — so the dirty state is cleared too. Compact when the
// live ratio (cache size / log records) drops well below 1; see
// docs/PERSISTENCE.md.
func (lg *CacheLog) Compact(c *Cache) error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	// Drain the pending delta first: the rewrite below includes it (the
	// snapshot is taken after), so it must not be re-appended by a later
	// Flush. An insert racing this compaction re-marks itself dirty after
	// the drain, so at worst its record is appended twice (harmless under
	// last-write-wins) — never lost. On failure the drained marks are
	// restored, since the old log file (which lacks them) stays in place.
	drained := c.drainDirty()
	entries := entryList(c.snapshot())
	err := lg.rewrite(entries)
	if err != nil {
		c.markDirty(drained)
		return err
	}
	return nil
}

// rewrite atomically replaces the log file with exactly these entries:
// the replacement is written beside the log and renamed over it, so a
// crash mid-rewrite leaves the old log intact. Caller holds lg.mu.
func (lg *CacheLog) rewrite(entries []cacheEntry) error {
	tmp, err := os.CreateTemp(filepath.Dir(lg.path), ".cachelog-compact-*")
	if err != nil {
		return fmt.Errorf("workflow: compact cache log: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriterSize(tmp, 1<<20)
	var hdr [cacheLogHeaderLen]byte
	copy(hdr[:4], cacheLogMagic)
	binary.LittleEndian.PutUint32(hdr[4:], cacheLogVersion)
	size := int64(cacheLogHeaderLen)
	if _, err := w.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("workflow: compact cache log: %w", err)
	}
	var buf []byte
	for _, e := range entries {
		buf = appendRecord(buf, e)
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			return fmt.Errorf("workflow: compact cache log: %w", err)
		}
		size += int64(len(buf))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("workflow: compact cache log: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("workflow: compact cache log: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("workflow: compact cache log: %w", err)
	}
	if err := os.Rename(tmp.Name(), lg.path); err != nil {
		return fmt.Errorf("workflow: compact cache log: %w", err)
	}
	f, err := os.OpenFile(lg.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("workflow: reopen compacted cache log: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("workflow: reopen compacted cache log: %w", err)
	}
	lg.f.Close()
	lg.f = f
	lg.records = len(entries)
	lg.size = size
	lg.replayed = true // the rewritten file is fully known
	return nil
}

package workflow

import (
	"context"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// BatchOptions configures a BatchingModel.
type BatchOptions struct {
	// MaxBatch is the most unit tasks packed into one envelope prompt
	// (default 8). Values <= 1 disable packing.
	MaxBatch int
	// Linger is how long the first request of a forming batch waits for
	// company before the batch is flushed anyway (default 2ms). The
	// trade-off is latency on straggler tasks versus packing density.
	Linger time.Duration
	// Observer, when set, additionally receives every envelope and
	// solo-retry count — typically the shared ExecLayer, so per-session
	// batchers aggregate into one ExecStats snapshot.
	Observer BatchObserver
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch == 0 {
		o.MaxBatch = 8
	}
	if o.Linger == 0 {
		o.Linger = 2 * time.Millisecond
	}
	return o
}

// batchGroup is the compatibility key of a forming batch: only requests
// that agree on sampling parameters may share an envelope, because the
// envelope is issued as a single request carrying those parameters. The
// attribution stage tag participates too: the envelope call runs on one
// leader's context, so mixing stages would bill one stage for another's
// tasks. (Each operator invocation builds its own BatchingModel today, so
// batches never span stages anyway; the key makes that invariant
// structural rather than incidental. Requests with a MaxTokens cap never
// enter a group — see Complete.)
type batchGroup struct {
	temperature float64
	seed        int64
	stage       string
}

// batchResult is delivered to one waiting caller.
type batchResult struct {
	resp llm.Response
	err  error
}

// batchItem is one enqueued unit task.
type batchItem struct {
	ctx context.Context
	req llm.Request
	ch  chan batchResult
}

// batchQueue is the forming batch of one compatibility group.
type batchQueue struct {
	items []*batchItem
	timer *time.Timer
}

// BatchingModel packs concurrently issued unit tasks into multi-task
// envelope prompts (prompt.TaskBatch) and splits the completion back into
// per-task responses. Under workflow.Map's fan-out, K compatible unit
// tasks cost one upstream round-trip instead of K.
//
// Requests accumulate per compatibility group (temperature, seed); a
// group flushes when it reaches MaxBatch or when the oldest
// request has lingered for Linger. A batch of one is issued verbatim, so
// stragglers pay only latency, never a changed prompt. Tasks whose answer
// section is missing or unsplittable are re-issued individually with their
// original prompt — the retry path — so a malformed batched completion
// degrades to per-task cost, never to a wrong or lost answer. A failed
// envelope call takes the same path: each waiter solo-retries under its
// own context with its original request (concurrently, bounded by
// soloRetryParallelism), so one co-batched caller's cancellation or a
// transient upstream fault never poisons the whole batch. At
// temperature 0 this makes batched results identical to unbatched ones
// whenever the upstream model answers each embedded task as it would
// standalone (the simulator guarantees this; see docs/EXECUTION.md).
//
// Split responses carry zero usage: the envelope call's real usage is
// observed by whatever accounting wraps the inner model (counting, budget,
// trace), exactly once.
type BatchingModel struct {
	inner llm.Model
	opts  BatchOptions

	mu      sync.Mutex
	queues  map[batchGroup]*batchQueue
	batches int // envelope calls issued upstream, failed ones included
	packed  int // unit tasks answered from inside an envelope
	retried int // unit tasks re-issued solo after a failed envelope or bad split
}

// soloRetryParallelism bounds the concurrent solo retries issued after a
// failed envelope call or a bad split, so a large batch degrades to a
// bounded fan-out rather than a serialized tail or an unbounded burst.
const soloRetryParallelism = 8

// NewBatching wraps m with batching under the given options.
func NewBatching(m llm.Model, opts BatchOptions) *BatchingModel {
	return &BatchingModel{
		inner:  m,
		opts:   opts.withDefaults(),
		queues: make(map[batchGroup]*batchQueue),
	}
}

// Name implements llm.Model.
func (b *BatchingModel) Name() string { return b.inner.Name() }

// Stats returns how many envelopes were issued upstream (including ones
// that failed), how many unit tasks rode in a successful envelope, and
// how many fell back to a solo retry.
func (b *BatchingModel) Stats() (batches, packed, retried int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.packed, b.retried
}

// Complete implements llm.Model. Two kinds of request are passed through
// verbatim rather than batched: prompts that cannot be embedded in an
// envelope losslessly (prompt.CanEmbed — unterminated, or containing a
// section-header-shaped line of their own), and requests with a MaxTokens
// cap — a pooled envelope cap cannot reproduce standalone per-call
// truncation, so a capped section could come back silently shortened
// instead of taking the retry path.
func (b *BatchingModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if b.opts.MaxBatch <= 1 || req.MaxTokens > 0 || !prompt.CanEmbed(req.Prompt) {
		return b.inner.Complete(ctx, req)
	}
	item := &batchItem{ctx: ctx, req: req, ch: make(chan batchResult, 1)}
	group := batchGroup{temperature: req.Temperature, stage: StageTag(ctx)}
	if req.Temperature > 0 {
		group.seed = req.Seed
	}

	b.mu.Lock()
	q := b.queues[group]
	if q == nil {
		q = &batchQueue{}
		b.queues[group] = q
		q.timer = time.AfterFunc(b.opts.Linger, func() { b.flushGroup(group, q) })
	}
	q.items = append(q.items, item)
	if len(q.items) >= b.opts.MaxBatch {
		items := b.detachLocked(group, q)
		b.mu.Unlock()
		b.flush(items)
	} else {
		b.mu.Unlock()
	}

	select {
	case r := <-item.ch:
		return r.resp, r.err
	case <-ctx.Done():
		// The flush will still deliver into the buffered channel; nothing
		// leaks. The upstream call (if any) runs on the batch leader's
		// context.
		return llm.Response{}, ctx.Err()
	}
}

// observe forwards batching outcomes to the configured observer, if any.
func (b *BatchingModel) observe(envelopes, packed, soloRetries int) {
	if b.opts.Observer != nil {
		b.opts.Observer.ObserveBatch(envelopes, packed, soloRetries)
	}
}

// detachLocked removes q from the forming set and stops its timer. Callers
// hold b.mu.
func (b *BatchingModel) detachLocked(group batchGroup, q *batchQueue) []*batchItem {
	if b.queues[group] == q {
		delete(b.queues, group)
	}
	q.timer.Stop()
	return q.items
}

// flushGroup is the linger-timer path: detach whatever has accumulated and
// flush it. A size-triggered flush may have emptied the group already.
func (b *BatchingModel) flushGroup(group batchGroup, q *batchQueue) {
	b.mu.Lock()
	if b.queues[group] != q {
		b.mu.Unlock()
		return
	}
	items := b.detachLocked(group, q)
	b.mu.Unlock()
	b.flush(items)
}

// flush issues one envelope for the items (or a verbatim call for a batch
// of one), splits the completion, and delivers per-item results. The first
// item's context drives the upstream call — in practice every item of a
// batch comes from one operator fan-out sharing a context.
func (b *BatchingModel) flush(items []*batchItem) {
	if len(items) == 0 {
		return
	}
	if len(items) == 1 {
		it := items[0]
		resp, err := b.inner.Complete(it.ctx, it.req)
		it.ch <- batchResult{resp: resp, err: err}
		return
	}

	ctx := items[0].ctx
	prompts := make([]string, len(items))
	for i, it := range items {
		prompts[i] = it.req.Prompt
	}
	breq := llm.Request{
		Prompt:      prompt.TaskBatch(prompts),
		Temperature: items[0].req.Temperature,
		Seed:        items[0].req.Seed,
	}
	resp, err := b.inner.Complete(ctx, breq)
	if err != nil {
		// A failed envelope is not a failed unit task: the error may be the
		// leader's cancellation or a transient upstream fault that has
		// nothing to do with most of the co-batched waiters. Solo-retry
		// every waiter with its own ctx and original request instead of
		// propagating the envelope error; FlightGroup already defends
		// against duplicated in-flight work one layer up. The envelope
		// still counts as issued — it was a real upstream call.
		b.mu.Lock()
		b.batches++
		b.mu.Unlock()
		b.observe(1, 0, 0)
		b.retrySolo(items)
		return
	}
	b.mu.Lock()
	b.batches++
	b.packed += len(items)
	b.mu.Unlock()
	b.observe(1, len(items), 0)

	answers, perr := prompt.ParseTaskBatch(resp.Text, len(items))
	var retry []*batchItem
	for i, it := range items {
		answer, ok := answers[i]
		if perr != nil || !ok {
			// Retry path: the model skipped or garbled this task's section;
			// re-issue it alone with its original prompt.
			retry = append(retry, it)
			continue
		}
		it.ch <- batchResult{resp: llm.Response{Text: answer, Model: resp.Model}}
	}
	b.retrySolo(retry)
}

// retrySolo re-issues each item's original request individually — at most
// soloRetryParallelism in flight at once — and delivers every waiter its
// own result (or its own error). Used after a failed envelope call and for
// tasks whose answer section was missing from a batched completion.
func (b *BatchingModel) retrySolo(items []*batchItem) {
	if len(items) == 0 {
		return
	}
	b.mu.Lock()
	b.retried += len(items)
	b.mu.Unlock()
	b.observe(0, 0, len(items))
	sem := make(chan struct{}, soloRetryParallelism)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(it *batchItem) {
			defer wg.Done()
			defer func() { <-sem }()
			solo, serr := b.inner.Complete(it.ctx, it.req)
			it.ch <- batchResult{resp: solo, err: serr}
		}(it)
	}
	wg.Wait()
}

package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/resil"
	"repro/internal/workflow"
)

// maxBodyBytes bounds a submission body; anything larger is a 400, not a
// wedged decoder.
const maxBodyBytes = 8 << 20

// apiError is the JSON error envelope, mirroring internal/llm/httpapi.
type apiError struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, typ, msg string) {
	var e apiError
	e.Error.Message = msg
	e.Error.Type = typ
	writeJSON(w, code, e)
}

// statusFor maps the server's sentinel errors onto HTTP semantics: the
// caller's fault (400), over the tenant's rate (429), over the tenant's
// budget (402), no capacity or shutting down (503), the upstream's
// breaker open (503 with Retry-After, see fail), unknown resource (404),
// everything else the server's fault (500).
func statusFor(err error) (code int, typ string) {
	switch {
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest, "invalid_request_error"
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests, "rate_limit_error"
	case errors.Is(err, workflow.ErrBudgetExhausted):
		return http.StatusPaymentRequired, "budget_exhausted_error"
	case errors.Is(err, resil.ErrBreakerOpen):
		return http.StatusServiceUnavailable, "upstream_unavailable_error"
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "overloaded_error"
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found_error"
	default:
		return http.StatusInternalServerError, "server_error"
	}
}

func fail(w http.ResponseWriter, err error) {
	// A breaker refusal knows when the upstream will accept a probe;
	// surface it the standard way so well-behaved clients back off for
	// exactly that long (ceiling to whole seconds, the header's unit).
	var boe *resil.BreakerOpenError
	if errors.As(err, &boe) && boe.RetryAfter > 0 {
		secs := int64((boe.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	code, typ := statusFor(err)
	writeError(w, code, typ, err.Error())
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/pipelines           submit a Spec (sync, or async with poll)
//	GET    /v1/jobs/{id}           job status and, when done, the result
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /v1/tenants/{id}/report tenant spend, latency, cache-hit share
//	GET    /v1/stats               service-wide counters
//	GET    /healthz                liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pipelines", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/tenants/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed request body: "+err.Error())
		return
	}
	st, err := s.Submit(r.Context(), req)
	if err != nil {
		fail(w, err)
		return
	}
	code := http.StatusOK
	if req.Async {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Report(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "overloaded_error", "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

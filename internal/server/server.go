// Package server is the multi-tenant pipeline service behind cmd/declserver:
// a long-running core that accepts declarative pipeline Specs from many
// tenants and runs them concurrently on one shared execution substrate —
// one ExecLayer (response cache + coalescer), one embedding-index registry,
// one optional persistent state directory — so tenant N's cache entries and
// warm indexes serve tenant N+1 for free. Where declctl cold-starts that
// substrate per invocation, the server keeps it resident.
//
// Fairness and accounting are per tenant: admission runs through a
// per-tenant token bucket (workflow.RateLimiter, refusal → ErrRateLimited →
// HTTP 429) and a global concurrency cap with bounded queueing (ErrBusy →
// HTTP 503); every job's context is tagged with its tenant
// (workflow.TagTenant), so a service-wide attribution ledger records each
// genuine upstream call under the tenant that caused it — the per-tenant
// sum equals the global upstream truth by construction, an invariant the
// test battery pins under concurrent load. Per-tenant budgets
// (workflow.Budget) ride below the shared cache, so tenants are charged
// only for calls the cache could not absorb, and one tenant's spend can
// never bleed into another's caps.
//
// The HTTP transport (Handler) is a sibling of internal/llm/httpapi's
// OpenAI-style JSON API: POST /v1/pipelines submits (sync or async),
// GET /v1/jobs/{id} polls, DELETE /v1/jobs/{id} cancels,
// GET /v1/tenants/{id}/report returns spend, latency percentiles, and the
// tenant's cache-hit share. See docs/SERVER.md.
package server

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/pipeline"
	"repro/internal/resil"
	"repro/internal/token"
	"repro/internal/workflow"
)

// Sentinel errors; the HTTP layer maps each to a status code.
var (
	// ErrBadSpec reports an unparseable or uncompilable submission (400).
	ErrBadSpec = errors.New("server: invalid submission")
	// ErrRateLimited reports a tenant over its token bucket (429).
	ErrRateLimited = errors.New("server: tenant rate limit exceeded")
	// ErrBusy reports the global concurrency cap and queue both full (503).
	ErrBusy = errors.New("server: at capacity and queue full")
	// ErrDraining reports a submission during graceful shutdown (503).
	ErrDraining = errors.New("server: draining")
	// ErrNotFound reports an unknown job or tenant (404).
	ErrNotFound = errors.New("server: not found")
)

// TenantCaps are one tenant's budget ceilings; zero values are unlimited.
type TenantCaps struct {
	Dollars float64
	Tokens  int
	Calls   int
}

// TenantLimits configure one tenant's admission and spend. Zero fields
// fall back to the Config defaults.
type TenantLimits struct {
	// Rate and Burst parameterise the tenant's token bucket (submissions
	// per second sustained, burst capacity).
	Rate  float64
	Burst int
	// Caps bound the tenant's cumulative genuine upstream spend.
	Caps TenantCaps
	// RetryBudget caps the physical retries and hedges the resilience
	// policy may spend on this tenant's behalf: 0 falls back to the
	// Config default, negative means none at all. Only meaningful when
	// Config.Resilience is set.
	RetryBudget int
}

// Config parameterises a Server.
type Config struct {
	// Model answers every unit task (required). The server wraps it with
	// its own upstream counter and the tenant ledger; pass the rawest
	// model you have.
	Model llm.Model
	// StateDir enables persistent warm state: the shared cache is backed
	// by an append-only log replayed at construction, and corpus indexes
	// warm-load from persisted files (core.WithStateDir's wiring). Drain
	// flushes and closes it.
	StateDir string
	// Batch, Parallelism, Chunk, and Adaptive pin the ExecConfig of every
	// job (zero values take the pipeline defaults). Note the tenant
	// reports' free-serve split is exact only with batching off: a batch
	// co-rider is also a zero-usage serve.
	Batch, Parallelism, Chunk int
	Adaptive                  bool
	// MaxConcurrent caps jobs running at once (default 4); MaxQueue bounds
	// jobs waiting for a slot (default 16; negative means no queue).
	MaxConcurrent, MaxQueue int
	// TenantRate/TenantBurst/TenantCaps are the admission and budget
	// defaults for tenants without an explicit entry in Tenants (defaults:
	// 100 submissions/s, burst 32, unlimited spend).
	TenantRate  float64
	TenantBurst int
	TenantCaps  TenantCaps
	// TenantRetryBudget is the default per-tenant retry/hedge allowance
	// (0 = unlimited, negative = no retries). See TenantLimits.RetryBudget.
	TenantRetryBudget int
	// Tenants overrides limits per tenant ID.
	Tenants map[string]TenantLimits
	// Resilience, when non-nil, wraps the raw model with retry/backoff,
	// optional hedging, and a per-upstream circuit breaker — below the
	// upstream counter and the tenant ledger, so retried attempts are
	// never double-billed. The policy's AllowRetry hook is composed with
	// the server's own per-tenant retry budgets; while the breaker is
	// open, Submit refuses with a *resil.BreakerOpenError that the HTTP
	// layer renders as 503 plus a Retry-After header.
	Resilience *resil.Policy
	// OnRecordError sets every job's degraded-mode policy (pipeline
	// OnRecordFail/Skip/Quarantine; empty = fail fast).
	OnRecordError string
	// JobRetention bounds how long a terminal job stays pollable before
	// the background sweeper drops it; MaxJobs caps the terminal jobs
	// retained regardless of age, oldest evicted first. Collection is off
	// until either field is set (no sweeper goroutine on a default
	// server); setting one enables it with the other defaulting
	// (retention 1h, cap 4096), and a negative value disables just that
	// axis. Running and queued jobs are never collected.
	JobRetention time.Duration
	MaxJobs      int
	// Exec, Registry, and Ledger inject shared substrate handles; nil
	// builds fresh ones. The scenario harness injects its session's so
	// server traffic shows up in the session counters.
	Exec     *workflow.ExecLayer
	Registry *embed.Registry
	Ledger   *workflow.Attribution
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// SubmitRequest is the wire format of POST /v1/pipelines.
type SubmitRequest struct {
	// Tenant identifies the submitting tenant (required; [A-Za-z0-9._-]).
	Tenant string `json:"tenant"`
	// Spec is the pipeline to run.
	Spec pipeline.Spec `json:"spec"`
	// Tables are the input tables (must include "source"); omitted, the
	// spec's Source dataset generates them.
	Tables map[string][]dataset.Record `json:"tables,omitempty"`
	// Async returns immediately with a queued/running job to poll;
	// otherwise Submit blocks until the job finishes.
	Async bool `json:"async,omitempty"`
	// Optimize runs the hint-driven optimizer over the spec first.
	Optimize bool `json:"optimize,omitempty"`
}

// JobStatus is the wire format of a job: submit responses and
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	Error  string   `json:"error,omitempty"`
	// Result is present once State is "done".
	Result *JobResult `json:"result,omitempty"`
	// WallMS is the run's wall clock, set on terminal states.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// JobResult is the wire view of a finished run.
type JobResult struct {
	Tables  map[string][]dataset.Record `json:"tables"`
	Scalars map[string]string           `json:"scalars,omitempty"`
	Stages  []StageStatus               `json:"stages,omitempty"`
	Calls   int                         `json:"calls"`
	Tokens  int                         `json:"tokens"`
	Cost    float64                     `json:"cost"`
	// Skipped/Quarantined count records dropped by degraded-mode
	// execution (Config.OnRecordError); zero on a fail-fast run.
	Skipped     int `json:"skipped,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
}

// StageStatus is one stage's accounting in a JobResult.
type StageStatus struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	In     int     `json:"in"`
	Out    int     `json:"out"`
	Calls  int     `json:"calls"`
	Tokens int     `json:"tokens"`
	Cost   float64 `json:"cost"`
	Detail string  `json:"detail,omitempty"`
}

// JobResultOf converts a pipeline result to its wire view. Exported so the
// conformance tests (and any in-process caller) can render a local run
// exactly the way the server renders a remote one and compare bytes.
func JobResultOf(res *pipeline.Result) *JobResult {
	out := &JobResult{
		Tables:      res.Tables,
		Scalars:     res.Scalars,
		Calls:       res.Usage.Calls,
		Tokens:      res.Usage.Total(),
		Cost:        res.Cost,
		Skipped:     res.Skipped,
		Quarantined: res.Quarantined,
	}
	for _, st := range res.Stages {
		out.Stages = append(out.Stages, StageStatus{
			Name: st.Name, Kind: st.Kind, In: st.In, Out: st.Out,
			Calls: st.Usage.Calls, Tokens: st.Usage.Total(), Cost: st.Cost,
			Detail: st.Detail,
		})
	}
	return out
}

// TenantReport is the wire format of GET /v1/tenants/{id}/report.
type TenantReport struct {
	Tenant string `json:"tenant"`
	// Job counters.
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Throttled counts submissions refused by the tenant's token bucket
	// (429); RejectedBusy counts refusals by the global gate (503).
	Throttled    int `json:"throttled"`
	RejectedBusy int `json:"rejected_busy"`
	// Calls/Tokens/Cost are the tenant's genuine upstream spend from the
	// service ledger — cache hits and coalesced serves cost nothing.
	Calls  int     `json:"calls"`
	Tokens int     `json:"tokens"`
	Cost   float64 `json:"cost"`
	// BudgetCalls/BudgetTokens/BudgetDollars mirror the tenant budget's
	// own accounting; they equal the ledger fields (no cross-tenant
	// bleed), which the battery asserts.
	BudgetCalls   int     `json:"budget_calls"`
	BudgetTokens  int     `json:"budget_tokens"`
	BudgetDollars float64 `json:"budget_dollars"`
	// Served counts unit asks the shared layer answered for this tenant;
	// FreeServed the subset answered without a fresh upstream call.
	// HitShare = FreeServed/Served — the tenant's cache-hit share.
	Served     int     `json:"served"`
	FreeServed int     `json:"free_served"`
	HitShare   float64 `json:"hit_share"`
	// RetriesUsed counts the physical retries and hedges the resilience
	// policy spent on this tenant's behalf (charged against the tenant's
	// RetryBudget when one is set).
	RetriesUsed int `json:"retries_used,omitempty"`
	// Latency percentiles over the tenant's completed jobs' wall clocks.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`
}

// Stats is the wire format of GET /v1/stats: the service-wide view.
type Stats struct {
	UpstreamCalls  int  `json:"upstream_calls"`
	UpstreamTokens int  `json:"upstream_tokens"`
	LedgerCalls    int  `json:"ledger_calls"`
	LedgerTokens   int  `json:"ledger_tokens"`
	Balanced       bool `json:"balanced"`
	CacheSize      int  `json:"cache_size"`
	CacheHits      int  `json:"cache_hits"`
	Coalesced      int  `json:"coalesced"`
	Tenants        int  `json:"tenants"`
	Jobs           int  `json:"jobs"`
	Running        int  `json:"running"`
	Waiting        int  `json:"waiting"`
	Draining       bool `json:"draining"`
	// Resilience counters, present when Config.Resilience is set.
	Retries      int  `json:"retries,omitempty"`
	Hedges       int  `json:"hedges,omitempty"`
	BreakerOpens int  `json:"breaker_opens,omitempty"`
	BreakerOpen  bool `json:"breaker_open,omitempty"`
}

// tenant is one tenant's admission, budget, and accounting state.
type tenant struct {
	id      string
	limiter *workflow.RateLimiter
	budget  *workflow.Budget
	// retryBudget caps retries/hedges spent on this tenant (0 unlimited,
	// negative none); restored/restoredCost carry spend loaded from a
	// previous process's tenants.json — both set before the tenant takes
	// traffic and immutable afterwards.
	retryBudget  int
	restored     token.Usage
	restoredCost float64

	served, free atomic.Int64

	mu           sync.Mutex
	submitted    int
	completed    int
	failed       int
	cancelled    int
	throttled    int
	rejectedBusy int
	retriesUsed  int
	latencies    []time.Duration
}

// spendRetry charges one retry or hedge against the tenant's allowance.
func (t *tenant) spendRetry() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case t.retryBudget < 0:
		return false
	case t.retryBudget > 0 && t.retriesUsed >= t.retryBudget:
		return false
	}
	t.retriesUsed++
	return true
}

// job is one submission's server-side record.
type job struct {
	id, tenant string

	cancel context.CancelFunc

	mu     sync.Mutex
	state  JobState
	err    error
	result *pipeline.Result
	wall   time.Duration
	// done is when the job reached a terminal state; the retention
	// sweeper measures age from it.
	done time.Time
}

func (j *job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		j.state = s
	}
}

func (j *job) finish(s JobState, res *pipeline.Result, err error, wall time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state, j.result, j.err, j.wall = s, res, err, wall
	j.done = time.Now()
}

// status renders the job's wire view.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{ID: j.id, Tenant: j.tenant, State: j.state}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state.terminal() {
		st.WallMS = float64(j.wall) / float64(time.Millisecond)
	}
	if j.state == JobDone && j.result != nil {
		st.Result = JobResultOf(j.result)
	}
	return st
}

// Server is the multi-tenant pipeline service core. Construct with New;
// safe for concurrent use. The HTTP transport is Handler; the same methods
// serve in-process callers (the scenario harness, the tests).
type Server struct {
	cfg      Config
	exec     *workflow.ExecLayer
	registry *embed.Registry
	counting *llm.CountingModel
	ledger   *workflow.Attribution
	model    llm.Model
	resil    *resil.Model
	gate     *gate

	// Job GC: effective retention (negative = disabled) and terminal-job
	// cap (0 = none), plus the sweeper goroutine's lifecycle.
	retention time.Duration
	maxJobs   int
	sweepStop chan struct{}
	sweepDone chan struct{}
	sweepOnce sync.Once

	// baseCtx parents every async job, so jobs outlive their submitting
	// HTTP request; Drain's hard-stop path cancels it.
	baseCtx  context.Context
	baseStop context.CancelFunc
	wg       sync.WaitGroup

	mu       sync.RWMutex
	tenants  map[string]*tenant
	jobs     map[string]*job
	seq      int64
	draining bool
	stateErr error
}

// tenantIDPattern bounds tenant IDs: they appear in URL paths and as
// ledger labels, so keep them to one safe token.
var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// New builds a server over cfg.Model. The shared substrate (exec layer,
// registry, ledger) is built fresh unless injected; with StateDir set the
// cache log is replayed and index persistence enabled before the first
// job. State-attach failures degrade to a stateless server, reported by
// StateError — mirroring core.WithStateDir's contract.
func New(cfg Config) *Server {
	if cfg.Model == nil {
		panic("server: Config.Model is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 16
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.TenantRate <= 0 {
		cfg.TenantRate = 100
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 32
	}
	retention, maxJobs := cfg.JobRetention, cfg.MaxJobs
	gcConfigured := retention != 0 || maxJobs != 0
	switch {
	case retention == 0:
		retention = time.Hour
	case retention < 0:
		retention = -1
	}
	switch {
	case maxJobs == 0:
		maxJobs = 4096
	case maxJobs < 0:
		maxJobs = 0
	}
	if !gcConfigured {
		retention, maxJobs = -1, 0
	}
	s := &Server{
		cfg:       cfg,
		exec:      cfg.Exec,
		registry:  cfg.Registry,
		ledger:    cfg.Ledger,
		gate:      newGate(cfg.MaxConcurrent, cfg.MaxQueue),
		retention: retention,
		maxJobs:   maxJobs,
		tenants:   make(map[string]*tenant),
		jobs:      make(map[string]*job),
	}
	if s.exec == nil {
		s.exec = workflow.NewExecLayer()
	}
	if s.registry == nil {
		s.registry = embed.NewRegistry()
	}
	if s.ledger == nil {
		s.ledger = workflow.NewAttribution()
	}
	if cfg.StateDir != "" {
		s.registry.SetStateDir(cfg.StateDir)
		if _, err := s.exec.OpenState(cfg.StateDir); err != nil {
			s.stateErr = fmt.Errorf("server: attaching state under %s: %w", cfg.StateDir, err)
		}
	}
	// The engine stack every job shares, bottom-up: the raw model, the
	// optional resilience wrapper (retry/hedge/breaker — *below* the
	// counter, so only the winning attempt of each logical call is ever
	// billed), the upstream-truth counter, then the tenant ledger keyed by
	// the context's tenant tag. Each job's ExecConfig layers its own
	// budget, per-stage attribution, and the shared cache on top, so only
	// genuine upstream calls reach this stack — which is exactly what
	// makes ledger total == counter total an invariant.
	base := llm.Model(cfg.Model)
	if cfg.Resilience != nil {
		p := *cfg.Resilience
		user := p.AllowRetry
		p.AllowRetry = func(ctx context.Context) bool {
			if user != nil && !user(ctx) {
				return false
			}
			return s.allowRetry(ctx)
		}
		s.resil = resil.Wrap(base, p)
		base = s.resil
	}
	s.counting = llm.NewCounting(base)
	s.model = workflow.NewAttributingBy(s.counting, s.ledger, workflow.TenantTag)
	s.exec.SetServeObserver(s)
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	if cfg.StateDir != "" {
		if err := s.loadTenants(); err != nil && s.stateErr == nil {
			s.stateErr = fmt.Errorf("server: restoring tenant spend: %w", err)
		}
	}
	if s.retention >= 0 || s.maxJobs > 0 {
		s.sweepStop, s.sweepDone = make(chan struct{}), make(chan struct{})
		go s.sweeper()
	}
	return s
}

// allowRetry is the resilience policy's per-tenant retry-budget hook: a
// retry or hedge on behalf of a known tenant spends that tenant's
// allowance; untenanted calls (none, in practice — every job's context is
// tagged) are not charged.
func (s *Server) allowRetry(ctx context.Context) bool {
	id := workflow.TenantTag(ctx)
	if id == "" {
		return true
	}
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		return true
	}
	return t.spendRetry()
}

// StateError reports what went wrong attaching Config.StateDir, or nil.
func (s *Server) StateError() error { return s.stateErr }

// ObserveServe implements workflow.ServeObserver: it splits the shared
// layer's serves per tenant. Asks from contexts without a tenant tag (or
// from tenants this server never admitted — possible when the exec layer
// is injected and shared with non-server traffic) are not counted.
func (s *Server) ObserveServe(ctx context.Context, free bool) {
	id := workflow.TenantTag(ctx)
	if id == "" {
		return
	}
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		return
	}
	t.served.Add(1)
	if free {
		t.free.Add(1)
	}
}

// limitsFor resolves one tenant's effective limits.
func (s *Server) limitsFor(id string) TenantLimits {
	l := s.cfg.Tenants[id]
	if l.Rate <= 0 {
		l.Rate = s.cfg.TenantRate
	}
	if l.Burst <= 0 {
		l.Burst = s.cfg.TenantBurst
	}
	if l.Caps == (TenantCaps{}) {
		l.Caps = s.cfg.TenantCaps
	}
	if l.RetryBudget == 0 {
		l.RetryBudget = s.cfg.TenantRetryBudget
	}
	return l
}

// tenantFor returns the tenant record, creating it on first contact.
// Callers must hold s.mu.
func (s *Server) tenantFor(id string) *tenant {
	if t := s.tenants[id]; t != nil {
		return t
	}
	l := s.limitsFor(id)
	t := &tenant{
		id:          id,
		limiter:     workflow.NewRateLimiter(l.Rate, l.Burst),
		budget:      workflow.NewBudget(l.Caps.Dollars, l.Caps.Tokens, l.Caps.Calls),
		retryBudget: l.RetryBudget,
	}
	s.tenants[id] = t
	return t
}

// Submit admits and runs one pipeline submission. Sync submissions block
// until the job finishes (or ctx dies, which cancels the job); async
// submissions return a queued/running JobStatus to poll. Refusals:
// ErrBadSpec, ErrRateLimited, ErrBusy, ErrDraining, or the tenant budget's
// workflow.ErrBudgetExhausted.
func (s *Server) Submit(ctx context.Context, req SubmitRequest) (*JobStatus, error) {
	if !tenantIDPattern.MatchString(req.Tenant) {
		return nil, fmt.Errorf("%w: tenant must match %s", ErrBadSpec, tenantIDPattern)
	}
	spec := req.Spec
	if req.Optimize {
		optimized, _, err := pipeline.Optimize(spec)
		if err != nil {
			return nil, fmt.Errorf("%w: optimize: %v", ErrBadSpec, err)
		}
		spec = optimized
	}
	p, err := pipeline.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	tables := req.Tables
	if tables == nil {
		tables, err = spec.Source.Tables()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	if _, ok := tables["source"]; !ok {
		return nil, fmt.Errorf("%w: tables lack %q", ErrBadSpec, "source")
	}
	// With the upstream breaker open, every job would fail on its first
	// genuinely-uncached call anyway; refuse at the door with the retry
	// hint instead of burning a slot (HTTP: 503 + Retry-After).
	if s.resil != nil {
		if open, after := s.resil.BreakerState(); open {
			return nil, fmt.Errorf("server: refusing submission: %w",
				&resil.BreakerOpenError{RetryAfter: after})
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	t := s.tenantFor(req.Tenant)
	if !t.limiter.Allow() {
		t.mu.Lock()
		t.throttled++
		t.mu.Unlock()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q", ErrRateLimited, req.Tenant)
	}
	if !t.budget.Allows(s.counting.Name(), token.Usage{}) {
		s.mu.Unlock()
		return nil, fmt.Errorf("tenant %q: %w", req.Tenant, workflow.ErrBudgetExhausted)
	}
	tk, err := s.gate.reserve()
	if err != nil {
		t.mu.Lock()
		t.rejectedBusy++
		t.mu.Unlock()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (tenant %q)", err, req.Tenant)
	}
	// Sync jobs live under the caller's context (a dead client cancels
	// them); async jobs under the server's, so they outlive the request.
	// The context exists before the job is visible in the jobs map, so a
	// concurrent Cancel always has a cancel func to call.
	parent := ctx
	if req.Async {
		parent = s.baseCtx
	}
	jctx, jcancel := context.WithCancel(workflow.TagTenant(parent, req.Tenant))
	s.seq++
	j := &job{id: fmt.Sprintf("job-%06d", s.seq), tenant: req.Tenant, state: JobQueued, cancel: jcancel}
	s.jobs[j.id] = j
	t.mu.Lock()
	t.submitted++
	t.mu.Unlock()
	s.wg.Add(1)
	s.mu.Unlock()

	if req.Async {
		go s.runJob(jctx, j, t, tk, p, tables)
		return j.status(), nil
	}
	s.runJob(jctx, j, t, tk, p, tables)
	return j.status(), nil
}

// runJob waits out the queue, runs the pipeline via a cancellable handle,
// and records the outcome. It owns the job's gate ticket and WaitGroup
// slot.
func (s *Server) runJob(ctx context.Context, j *job, t *tenant, tk *ticket, p *pipeline.Pipeline, tables map[string][]dataset.Record) {
	defer s.wg.Done()
	defer j.cancel()
	if err := s.gate.wait(ctx, tk); err != nil {
		j.finish(JobCancelled, nil, err, 0)
		return
	}
	defer s.gate.release(tk)
	j.setState(JobRunning)
	start := time.Now()
	cfg := pipeline.ExecConfig{
		Model:         s.model,
		Exec:          s.exec,
		Registry:      s.registry,
		Budget:        t.budget,
		Attribution:   workflow.NewAttribution(),
		Batch:         s.cfg.Batch,
		Parallelism:   s.cfg.Parallelism,
		Chunk:         s.cfg.Chunk,
		Adaptive:      s.cfg.Adaptive,
		OnRecordError: s.cfg.OnRecordError,
	}
	h := p.Start(ctx, cfg, tables)
	// The handle's context is this job's: cancellation reaches the run
	// directly, so waiting on Background never blocks past the run's end.
	res, err := h.Wait(context.Background())
	wall := time.Since(start)

	t.mu.Lock()
	switch {
	case err == nil:
		t.completed++
		t.latencies = append(t.latencies, wall)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		t.cancelled++
	default:
		t.failed++
	}
	t.mu.Unlock()
	switch {
	case err == nil:
		j.finish(JobDone, res, nil, wall)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(JobCancelled, nil, err, wall)
	default:
		j.finish(JobFailed, nil, err, wall)
	}
}

// Job returns a job's current status.
func (s *Server) Job(id string) (*JobStatus, error) {
	s.mu.RLock()
	j := s.jobs[id]
	s.mu.RUnlock()
	if j == nil {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	return j.status(), nil
}

// Cancel aborts a job. Cancelling a finished job is a no-op; the returned
// status tells the caller which happened.
func (s *Server) Cancel(id string) (*JobStatus, error) {
	s.mu.RLock()
	j := s.jobs[id]
	s.mu.RUnlock()
	if j == nil {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	j.cancel()
	return j.status(), nil
}

// Report renders one tenant's accounting.
func (s *Server) Report(id string) (*TenantReport, error) {
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: tenant %q", ErrNotFound, id)
	}
	// The ledger is process-local; folding in the spend restored from a
	// previous process keeps Calls == BudgetCalls across restarts (the
	// budget was re-seeded with the same restored spend at load).
	usage := s.ledger.Usage(id).Add(t.restored)
	cost := s.ledger.Cost(id) + t.restoredCost
	spent, dollars := t.budget.Spent()
	r := &TenantReport{
		Tenant: id,
		Calls:  usage.Calls, Tokens: usage.Total(), Cost: cost,
		BudgetCalls: spent.Calls, BudgetTokens: spent.Total(), BudgetDollars: dollars,
		Served: int(t.served.Load()), FreeServed: int(t.free.Load()),
	}
	if r.Served > 0 {
		r.HitShare = float64(r.FreeServed) / float64(r.Served)
	}
	t.mu.Lock()
	r.Submitted, r.Completed, r.Failed, r.Cancelled = t.submitted, t.completed, t.failed, t.cancelled
	r.Throttled, r.RejectedBusy = t.throttled, t.rejectedBusy
	r.RetriesUsed = t.retriesUsed
	lats := append([]time.Duration(nil), t.latencies...)
	t.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		r.LatencyP50MS = ms(lats[(len(lats)-1)*50/100])
		r.LatencyP95MS = ms(lats[(len(lats)-1)*95/100])
		r.LatencyMaxMS = ms(lats[len(lats)-1])
	}
	return r, nil
}

// Balanced compares the tenant ledger's total against the server's own
// upstream counter: equal means every billed call was attributed to some
// tenant and nothing was double-counted — the invariant the battery and
// the declserver scenario assert.
func (s *Server) Balanced() (ledger, upstream token.Usage, ok bool) {
	u, _ := s.ledger.Total()
	total := s.counting.Total()
	return u, total, u.Calls == total.Calls && u.Total() == total.Total()
}

// Stats snapshots the service-wide counters.
func (s *Server) Stats() *Stats {
	ledger, upstream, balanced := s.Balanced()
	es := s.exec.Stats()
	running, waiting := s.gate.load()
	s.mu.RLock()
	tenants, jobs, draining := len(s.tenants), len(s.jobs), s.draining
	s.mu.RUnlock()
	st := &Stats{
		UpstreamCalls: upstream.Calls, UpstreamTokens: upstream.Total(),
		LedgerCalls: ledger.Calls, LedgerTokens: ledger.Total(),
		Balanced:  balanced,
		CacheSize: es.CacheSize, CacheHits: es.CacheHits, Coalesced: es.Coalesced,
		Tenants: tenants, Jobs: jobs,
		Running: running, Waiting: waiting, Draining: draining,
	}
	if s.resil != nil {
		rs := s.resil.Stats()
		st.Retries, st.Hedges, st.BreakerOpens = rs.Retries, rs.Hedges, rs.BreakerOpens
		st.BreakerOpen, _ = s.resil.BreakerState()
	}
	return st
}

// Drain is the graceful shutdown: refuse new submissions, wait for running
// and queued jobs to finish (bounded by ctx — on expiry the remaining jobs
// are cancelled and awaited), then flush and close the persistent state so
// the cache log and index files are durable before exit.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: drain cut short, cancelling jobs: %w", ctx.Err())
		s.baseStop()
		s.mu.RLock()
		for _, j := range s.jobs {
			if j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.RUnlock()
		<-done
	}
	s.baseStop()
	s.stopSweeper()
	s.exec.SetServeObserver(nil)
	if s.cfg.StateDir != "" {
		if err := s.saveTenants(); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("server: persisting tenant spend: %w", err)
		}
	}
	if err := s.exec.CloseState(); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("server: closing state: %w", err)
	}
	return drainErr
}

package server

import (
	"context"
	"sync"
)

// gate is the service-wide concurrency cap with bounded queueing: at most
// cap jobs run at once, at most queue more wait for a slot, and anything
// beyond that is refused outright (ErrBusy → HTTP 503). Admission is split
// in two so the 503 decision is synchronous at submit time even for async
// jobs: reserve either takes a free slot or books a queue position (or
// refuses), and wait blocks a queued ticket until a slot frees. Slots are
// a buffered-channel semaphore, so out-of-order releases — jobs finishing
// in any order — are naturally correct; the fuzz harness hammers exactly
// that property.
type gate struct {
	slots chan struct{}

	mu      sync.Mutex
	queue   int
	waiting int
}

func newGate(capacity, queue int) *gate {
	return &gate{slots: make(chan struct{}, capacity), queue: queue}
}

// ticket is one reservation's state. Zero value is invalid; obtain from
// reserve.
type ticket struct {
	acquired bool
}

// reserve takes a running slot if one is free, otherwise books a queue
// position, otherwise fails with ErrBusy.
func (g *gate) reserve() (*ticket, error) {
	select {
	case g.slots <- struct{}{}:
		return &ticket{acquired: true}, nil
	default:
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.waiting >= g.queue {
		return nil, ErrBusy
	}
	g.waiting++
	return &ticket{}, nil
}

// wait blocks a queued ticket until a slot frees or ctx is cancelled. The
// queue position is surrendered either way; on success the ticket holds a
// running slot. No-op for tickets that acquired their slot at reserve.
func (g *gate) wait(ctx context.Context, t *ticket) error {
	if t.acquired {
		return nil
	}
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		t.acquired = true
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the ticket's slot. Safe for any completion order and
// idempotent per ticket; a never-acquired ticket (cancelled in queue)
// releases nothing.
func (g *gate) release(t *ticket) {
	if !t.acquired {
		return
	}
	t.acquired = false
	<-g.slots
}

// load snapshots the gate: slots in use and tickets waiting.
func (g *gate) load() (running, waiting int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.slots), g.waiting
}

package server

import (
	"sort"
	"time"
)

// sweeper is the background job collector: it wakes on a fraction of the
// retention window and drops terminal jobs that aged out or overflowed
// the cap. Drain stops it; running and queued jobs are never touched, so
// a sweep racing a long job is harmless.
func (s *Server) sweeper() {
	defer close(s.sweepDone)
	every := time.Minute
	if s.retention > 0 && s.retention/4 < every {
		every = s.retention / 4
	}
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-tick.C:
			s.sweepJobs(now)
		}
	}
}

// stopSweeper shuts the sweeper down exactly once and waits for it to
// exit, so Drain leaves no goroutine behind (the leak pin asserts this).
func (s *Server) stopSweeper() {
	if s.sweepStop == nil {
		return
	}
	s.sweepOnce.Do(func() { close(s.sweepStop) })
	<-s.sweepDone
}

// sweepJobs removes terminal jobs older than the retention window, then —
// if a cap is set — the oldest surviving terminal jobs beyond it. It
// returns how many jobs it dropped. Polling a swept job ID reports
// ErrNotFound, the same as a never-submitted one; callers that need a
// result longer than the window must copy it out.
func (s *Server) sweepJobs(now time.Time) int {
	type aged struct {
		id string
		at time.Time
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	var terminal []aged
	for id, j := range s.jobs {
		j.mu.Lock()
		term, at := j.state.terminal(), j.done
		j.mu.Unlock()
		if !term {
			continue
		}
		if s.retention >= 0 && now.Sub(at) > s.retention {
			delete(s.jobs, id)
			removed++
			continue
		}
		terminal = append(terminal, aged{id, at})
	}
	if s.maxJobs > 0 && len(terminal) > s.maxJobs {
		sort.Slice(terminal, func(i, k int) bool { return terminal[i].at.Before(terminal[k].at) })
		for _, a := range terminal[:len(terminal)-s.maxJobs] {
			delete(s.jobs, a.id)
			removed++
		}
	}
	return removed
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/workflow"
)

// post submits raw JSON and returns the response code and decoded body.
func post(t *testing.T, ts *httptest.Server, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func do(t *testing.T, ts *httptest.Server, method, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestHTTPLifecycle drives the wire surface end to end: sync submit
// (200), async submit (202) polled to done, tenant report, stats, and
// health.
func TestHTTPLifecycle(t *testing.T) {
	srv := New(Config{Model: testOracle()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tables := kindTable("http", 8, "tool", "toy", "tool", "gadget")

	// Sync submit completes inline with the result attached.
	raw, _ := json.Marshal(SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables})
	code, body := post(t, ts, "/v1/pipelines", raw)
	if code != http.StatusOK {
		t.Fatalf("sync submit: %d %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Result == nil || st.Result.Tables["keep"] == nil {
		t.Fatalf("sync job = %+v, want done with a keep table", st)
	}
	if got := st.Result.Scalars["tally"]; got != "4" {
		t.Fatalf("tally = %q, want 4", got)
	}

	// Async submit returns 202 immediately; poll the job to done.
	raw, _ = json.Marshal(SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables, Async: true})
	code, body = post(t, ts, "/v1/pipelines", raw)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = do(t, ts, "GET", "/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != JobDone {
		t.Fatalf("async job ended %s: %s", st.State, st.Error)
	}

	// Tenant report over the wire.
	code, body = do(t, ts, "GET", "/v1/tenants/t/report")
	if code != http.StatusOK {
		t.Fatalf("report: %d %s", code, body)
	}
	var rep TenantReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 || rep.Calls != 3 {
		t.Fatalf("report = %+v, want 2 completed at 3 upstream calls", rep)
	}
	if rep.FreeServed == 0 || rep.HitShare <= 0 {
		t.Fatalf("report shows no free serves after a warm replay: %+v", rep)
	}

	// Stats and health.
	code, body = do(t, ts, "GET", "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Balanced || stats.UpstreamCalls != 3 {
		t.Fatalf("stats = %+v, want balanced at 3 upstream calls", stats)
	}
	if code, _ = do(t, ts, "GET", "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
}

// TestHTTPStatusMapping drives the refusals reachable over the wire:
// 400 for malformed and invalid submissions, 404 for unknown jobs and
// tenants, 429 for throttled tenants, and a mid-run budget exhaustion
// reported in the job; TestStatusForMapping pins the rest of the table.
func TestHTTPStatusMapping(t *testing.T) {
	srv := New(Config{Model: testOracle(), MaxConcurrent: 4, MaxQueue: 0, Tenants: map[string]TenantLimits{
		"free":   {Rate: 1e-9, Burst: 1},
		"broke":  {Caps: TenantCaps{Calls: 1}},
		"normal": {Burst: 64},
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tables := kindTable("map", 4, "tool", "toy")
	body := func(req SubmitRequest) []byte {
		raw, _ := json.Marshal(req)
		return raw
	}

	if code, b := post(t, ts, "/v1/pipelines", []byte("{not json")); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d %s", code, b)
	} else if !strings.Contains(string(b), "invalid_request_error") {
		t.Fatalf("malformed JSON error envelope: %s", b)
	}
	if code, b := post(t, ts, "/v1/pipelines", body(SubmitRequest{Tenant: "no way", Spec: toolSpec(), Tables: tables})); code != http.StatusBadRequest {
		t.Fatalf("hostile tenant ID: %d %s", code, b)
	}
	if code, b := post(t, ts, "/v1/pipelines", body(SubmitRequest{Tenant: "t", Tables: tables})); code != http.StatusBadRequest {
		t.Fatalf("empty spec: %d %s", code, b)
	}
	if code, b := do(t, ts, "GET", "/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s", code, b)
	}
	if code, b := do(t, ts, "GET", "/v1/tenants/ghost/report"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d %s", code, b)
	}

	// Throttled: burst 1 admits the first, bounces the second with 429.
	if code, b := post(t, ts, "/v1/pipelines", body(SubmitRequest{Tenant: "free", Spec: toolSpec(), Tables: tables})); code != http.StatusOK {
		t.Fatalf("free tenant's first submission: %d %s", code, b)
	}
	if code, b := post(t, ts, "/v1/pipelines", body(SubmitRequest{Tenant: "free", Spec: toolSpec(), Tables: tables})); code != http.StatusTooManyRequests {
		t.Fatalf("free tenant's burst overflow: %d %s, want 429", code, b)
	} else if !strings.Contains(string(b), "rate_limit_error") {
		t.Fatalf("429 envelope: %s", b)
	}

	// Budget: a 1-call cap on a run that needs several genuine upstream
	// calls (fresh tables, so the shared cache cannot absorb them) fails
	// mid-run; the sync response is still 200 — the submission was
	// admitted — with the exhaustion reported in the job itself.
	code, b := post(t, ts, "/v1/pipelines", body(SubmitRequest{Tenant: "broke", Spec: toolSpec(), Tables: kindTable("brk", 4, "brk-a", "brk-b", "brk-c", "brk-d")}))
	if code != http.StatusOK {
		t.Fatalf("over-budget run: %d %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "budget") {
		t.Fatalf("over-budget run = %+v, want a failed job naming the budget", st)
	}

	// Normal tenant is unaffected by its neighbours' refusals.
	if code, b := post(t, ts, "/v1/pipelines", body(SubmitRequest{Tenant: "normal", Spec: toolSpec(), Tables: tables})); code != http.StatusOK {
		t.Fatalf("normal tenant: %d %s", code, b)
	}
}

// TestStatusForMapping pins the error→wire translation table, including
// the budget (402) and drain (503) arms the lifecycle tests cannot reach
// deterministically (a call cap never overshoots: BudgetedModel refuses
// before issuing, so admission sees spend at — not past — the cap).
func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		code int
		typ  string
	}{
		{fmt.Errorf("spec: %w", ErrBadSpec), http.StatusBadRequest, "invalid_request_error"},
		{fmt.Errorf("tenant: %w", ErrRateLimited), http.StatusTooManyRequests, "rate_limit_error"},
		{fmt.Errorf("tenant: %w", workflow.ErrBudgetExhausted), http.StatusPaymentRequired, "budget_exhausted_error"},
		{ErrBusy, http.StatusServiceUnavailable, "overloaded_error"},
		{ErrDraining, http.StatusServiceUnavailable, "overloaded_error"},
		{fmt.Errorf("job: %w", ErrNotFound), http.StatusNotFound, "not_found_error"},
		{errors.New("disk on fire"), http.StatusInternalServerError, "server_error"},
	}
	for _, tc := range cases {
		if code, typ := statusFor(tc.err); code != tc.code || typ != tc.typ {
			t.Errorf("statusFor(%v) = %d %q, want %d %q", tc.err, code, typ, tc.code, tc.typ)
		}
	}
}

package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/workflow"
)

// fuzzTS lazily builds one server + test listener shared across fuzz
// iterations: a wedged or corrupted server surfaces as later iterations
// failing, which is exactly the robustness property under test.
var (
	fuzzOnce sync.Once
	fuzzSrv  *httptest.Server
)

func fuzzServer() *httptest.Server {
	fuzzOnce.Do(func() {
		fuzzSrv = httptest.NewServer(New(Config{Model: testOracle()}).Handler())
	})
	return fuzzSrv
}

// FuzzServerSpecSubmit throws hostile bodies at POST /v1/pipelines: the
// server must answer every one with a deliberate status — 400 for
// garbage, the admission codes for valid-but-refused submissions, 200/202
// for runnable ones — and never a 500, a panic, or a wedged listener.
func FuzzServerSpecSubmit(f *testing.F) {
	f.Add([]byte(`{"tenant":"t","spec":{"stages":[{"name":"keep","kind":"filter","field":"kind","predicate":"the kind is tool"}]},"tables":{"source":[{"ID":"a","Fields":[{"Name":"kind","Value":"tool"}]}]}}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"tenant":"../../etc/passwd","spec":{"stages":[]}}`))
	f.Add([]byte(`{"tenant":"t","spec":{"stages":[{"kind":"no-such-operator"}]}}`))
	f.Add([]byte(`{"tenant":"t","async":true}`))
	f.Add([]byte(`{"tenant":"t","spec":{"stages":[{"name":"a","kind":"filter"},{"name":"a","kind":"filter"}]}}`))
	f.Add(bytes.Repeat([]byte(`{"spec":`), 2000))

	ts := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/v1/pipelines", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (wedged server?): %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted, http.StatusBadRequest,
			http.StatusPaymentRequired, http.StatusTooManyRequests,
			http.StatusServiceUnavailable:
		default:
			t.Fatalf("submit answered %d for %q — hostile input must map to a deliberate status", resp.StatusCode, body)
		}
		health, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz unreachable after %q: %v", body, err)
		}
		health.Body.Close()
		if health.StatusCode != http.StatusOK {
			t.Fatalf("healthz %d after %q — a bad submission must not degrade the service", health.StatusCode, body)
		}
	})
}

// FuzzAdmissionGate drives the gate through byte-decoded op sequences —
// reserve, wait-with-cancelled-context, release (including double
// release) — and checks exact accounting after every step: the slot
// count equals the live tickets, the waiting count equals the queued
// ones, neither ever exceeds its bound, and draining every ticket at the
// end leaves the gate empty. This is the out-of-order-release property
// the concurrent battery exercises with real jobs, minimized.
func FuzzAdmissionGate(f *testing.F) {
	f.Add([]byte{1, 1, 0, 0, 0, 2, 1, 2})
	f.Add([]byte{3, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 2, 0, 0, 1, 1, 2, 2, 2})
	f.Add([]byte{2, 3, 0, 1, 0, 2, 0, 1, 2, 0, 1, 2})

	const stateQueued, stateRunning, stateDone = 0, 1, 2
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		capacity := 1 + int(data[0]%4)
		queue := int(data[1] % 4)
		g := newGate(capacity, queue)
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()

		type slot struct {
			tk    *ticket
			state int
		}
		var tickets []slot
		count := func(state int) int {
			n := 0
			for _, s := range tickets {
				if s.state == state {
					n++
				}
			}
			return n
		}
		check := func(op string) {
			t.Helper()
			running, waiting := g.load()
			if running != count(stateRunning) || waiting != count(stateQueued) {
				t.Fatalf("after %s: load (%d, %d) disagrees with tickets (%d running, %d queued)",
					op, running, waiting, count(stateRunning), count(stateQueued))
			}
			if running > capacity || waiting > queue {
				t.Fatalf("after %s: load (%d, %d) exceeds bounds (cap %d, queue %d)", op, running, waiting, capacity, queue)
			}
		}

		for _, b := range data[2:] {
			switch b % 3 {
			case 0: // reserve
				tk, err := g.reserve()
				if err != nil {
					running, waiting := g.load()
					if running < capacity || waiting < queue {
						t.Fatalf("ErrBusy with free capacity: load (%d, %d) under (cap %d, queue %d)", running, waiting, capacity, queue)
					}
				} else if tk.acquired {
					tickets = append(tickets, slot{tk, stateRunning})
				} else {
					tickets = append(tickets, slot{tk, stateQueued})
				}
				check("reserve")
			case 1: // cancelled wait on the oldest queued ticket
				for i := range tickets {
					if tickets[i].state != stateQueued {
						continue
					}
					// With a free slot the select may legitimately pick
					// either arm; both outcomes must keep the books.
					if err := g.wait(cancelled, tickets[i].tk); err == nil {
						tickets[i].state = stateRunning
					} else {
						tickets[i].state = stateDone
					}
					break
				}
				check("wait")
			case 2: // release the oldest running ticket, then once more
				for i := range tickets {
					if tickets[i].state != stateRunning {
						continue
					}
					g.release(tickets[i].tk)
					g.release(tickets[i].tk) // idempotent per ticket
					tickets[i].state = stateDone
					break
				}
				check("release")
			}
		}

		// Drain: surrender every queued position, return every slot.
		for i := range tickets {
			if tickets[i].state == stateQueued {
				if err := g.wait(cancelled, tickets[i].tk); err == nil {
					tickets[i].state = stateRunning
				} else {
					tickets[i].state = stateDone
				}
			}
			if tickets[i].state == stateRunning {
				g.release(tickets[i].tk)
				tickets[i].state = stateDone
			}
		}
		if running, waiting := g.load(); running != 0 || waiting != 0 {
			t.Fatalf("drained gate still loaded: (%d, %d)", running, waiting)
		}
	})
}

// TestRateLimiterBurstExactUnderConcurrency pins the admission property
// the 429 semantics rest on: a bucket with negligible refill admits
// exactly its burst under concurrent contention — no double-spend of a
// token when Allow races, no lost admission either.
func TestRateLimiterBurstExactUnderConcurrency(t *testing.T) {
	const burst = 8
	l := workflow.NewRateLimiter(1e-9, burst)
	var wg sync.WaitGroup
	results := make([]bool, 3*burst)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = l.Allow()
		}(i)
	}
	wg.Wait()
	admitted := 0
	for _, ok := range results {
		if ok {
			admitted++
		}
	}
	if admitted != burst {
		t.Fatalf("admitted %d of %d concurrent calls, want exactly the burst %d", admitted, len(results), burst)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/pipeline"
	"repro/internal/resil"
	"repro/internal/workflow"
)

// flakyFunc fails the first failN attempts of every distinct prompt with
// a transient fault, then answers "Yes".
func flakyFunc(failN int) llm.Func {
	var mu sync.Mutex
	attempts := map[string]int{}
	return llm.Func{ModelName: "flaky", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		mu.Lock()
		attempts[req.Prompt]++
		n := attempts[req.Prompt]
		mu.Unlock()
		if n <= failN {
			return llm.Response{}, fmt.Errorf("%w: warming up", llm.ErrTransient)
		}
		return unit("Yes"), nil
	}}
}

// postSubmit sends one submission through the HTTP handler.
func postSubmit(t *testing.T, h http.Handler, req SubmitRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/pipelines", bytes.NewReader(body)))
	return w
}

// TestBreakerOpen503RetryAfter pins the outage surface: once the breaker
// opens, submissions are refused at the door with 503 and a Retry-After
// header telling the client when a probe will be admitted.
func TestBreakerOpen503RetryAfter(t *testing.T) {
	down := llm.Func{ModelName: "down", Fn: func(context.Context, llm.Request) (llm.Response, error) {
		return llm.Response{}, fmt.Errorf("%w: outage", llm.ErrTransient)
	}}
	srv := New(Config{Model: down, Resilience: &resil.Policy{
		MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Minute,
	}})
	h := srv.Handler()
	tables := kindTable("br", 2, "tool", "toy")

	// The first submission is admitted (breaker closed), runs, and fails —
	// which trips the breaker.
	st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables})
	if err != nil || st.State != JobFailed {
		t.Fatalf("outage job: err %v, state %+v", err, st)
	}
	if s := srv.Stats(); !s.BreakerOpen || s.BreakerOpens != 1 {
		t.Fatalf("breaker not open after the outage job: %+v", s)
	}

	// In-process: the refusal is typed.
	if _, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables}); !errors.Is(err, resil.ErrBreakerOpen) {
		t.Fatalf("open-breaker submission: err %v, want ErrBreakerOpen", err)
	}

	// Over HTTP: 503, the upstream-unavailable type, and a Retry-After
	// within the configured cooldown.
	w := postSubmit(t, h, SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q (%v), want 1..60 seconds", w.Header().Get("Retry-After"), err)
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Type != "upstream_unavailable_error" {
		t.Fatalf("error envelope = %s (%v), want upstream_unavailable_error", w.Body, err)
	}
}

// TestTenantRetryBudget: retries are a tenant-scoped resource. A tenant
// with no retry allowance fails on the first transient fault; a default
// (unlimited) tenant heals, and its report shows what the healing spent.
func TestTenantRetryBudget(t *testing.T) {
	srv := New(Config{
		Model:      flakyFunc(1),
		Resilience: &resil.Policy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
		Tenants:    map[string]TenantLimits{"frugal": {RetryBudget: -1}},
	})
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "frugal", Spec: toolSpec(), Tables: kindTable("fr", 2, "fr-a", "fr-b"),
	})
	if err != nil || st.State != JobFailed {
		t.Fatalf("no-retry tenant: err %v, state %+v (want failed on the first fault)", err, st)
	}
	st, err = srv.Submit(context.Background(), SubmitRequest{
		Tenant: "rich", Spec: toolSpec(), Tables: kindTable("ri", 2, "ri-a", "ri-b"),
	})
	if err != nil || st.State != JobDone {
		t.Fatalf("unlimited tenant: err %v, state %+v (want healed by retries)", err, st)
	}
	frugal, _ := srv.Report("frugal")
	rich, _ := srv.Report("rich")
	if frugal.RetriesUsed != 0 {
		t.Fatalf("frugal tenant spent %d retries with a zero allowance", frugal.RetriesUsed)
	}
	if rich.RetriesUsed == 0 {
		t.Fatal("rich tenant's report shows no retries despite healing transient faults")
	}
	if s := srv.Stats(); s.Retries != rich.RetriesUsed {
		t.Fatalf("service retries %d != rich tenant's %d (frugal spent none)", s.Retries, rich.RetriesUsed)
	}
}

// TestTenantSpendSurvivesRestart pins the persistence satellite: a
// drained server writes tenants.json, and a successor over the same state
// dir resumes each tenant's lifetime spend — reports agree and budget
// caps bind across the restart.
func TestTenantSpendSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	tables := kindTable("sp", 6, "tool", "toy", "gadget")

	srv := New(Config{Model: testOracle(), StateDir: dir})
	if st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "acct", Spec: toolSpec(), Tables: tables}); err != nil || st.State != JobDone {
		t.Fatalf("cold run: err %v, state %+v", err, st)
	}
	before, err := srv.Report("acct")
	if err != nil {
		t.Fatal(err)
	}
	if before.Calls != 3 {
		t.Fatalf("cold run cost %d calls, want 3", before.Calls)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, TenantsFileName)); err != nil {
		t.Fatalf("drain left no tenant ledger: %v", err)
	}

	// The successor caps the tenant at exactly its restored spend.
	successor := New(Config{Model: testOracle(), StateDir: dir, Tenants: map[string]TenantLimits{
		"acct": {Caps: TenantCaps{Calls: 3}},
	}})
	if err := successor.StateError(); err != nil {
		t.Fatal(err)
	}
	after, err := successor.Report("acct")
	if err != nil {
		t.Fatalf("restored tenant unknown to the successor: %v", err)
	}
	if after.Calls != before.Calls || after.Tokens != before.Tokens {
		t.Fatalf("restored spend {%d calls, %d tokens} != drained {%d, %d}",
			after.Calls, after.Tokens, before.Calls, before.Tokens)
	}
	if after.Calls != after.BudgetCalls || after.Cost != after.BudgetDollars {
		t.Fatalf("restored ledger and budget disagree: %+v", after)
	}
	// A warm replay is upstream-free, so it fits under the exhausted cap...
	if st, err := successor.Submit(context.Background(), SubmitRequest{Tenant: "acct", Spec: toolSpec(), Tables: tables}); err != nil || st.State != JobDone {
		t.Fatalf("warm replay: err %v, state %+v", err, st)
	}
	// ...but an unseen kind needs a 4th lifetime call, which the restored
	// budget must refuse.
	over, err := successor.Submit(context.Background(), SubmitRequest{
		Tenant: "acct", Spec: toolSpec(), Tables: kindTable("sp2", 1, "widget"),
	})
	switch {
	case err != nil && errors.Is(err, workflow.ErrBudgetExhausted):
	case err == nil && over.State == JobFailed && strings.Contains(over.Error, "budget"):
	default:
		t.Fatalf("restart forgot the tenant's spend: err %v, state %+v", err, over)
	}
	if err := successor.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestJobSweep drives the collector by hand: terminal jobs past the
// retention window vanish, the cap evicts oldest-first, and a swept job
// polls as not found.
func TestJobSweep(t *testing.T) {
	srv := New(Config{Model: testOracle(), JobRetention: time.Hour, MaxJobs: 2})
	tables := kindTable("gc", 2, "tool", "toy")
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables})
		if err != nil || st.State != JobDone {
			t.Fatalf("run %d: err %v, state %+v", i, err, st)
		}
		ids = append(ids, st.ID)
	}
	// Within retention, the cap evicts only the oldest job.
	if n := srv.sweepJobs(time.Now()); n != 1 {
		t.Fatalf("cap sweep removed %d jobs, want 1", n)
	}
	if _, err := srv.Job(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job survived the cap: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := srv.Job(id); err != nil {
			t.Fatalf("young job %s swept early: %v", id, err)
		}
	}
	// Past retention, everything terminal goes.
	if n := srv.sweepJobs(time.Now().Add(2 * time.Hour)); n != 2 {
		t.Fatalf("age sweep removed %d jobs, want 2", n)
	}
	if s := srv.Stats(); s.Jobs != 0 {
		t.Fatalf("%d jobs survive a full sweep", s.Jobs)
	}

	// Negative retention and cap disable collection entirely.
	keeper := New(Config{Model: testOracle(), JobRetention: -1, MaxJobs: -1})
	st, err := keeper.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables})
	if err != nil || st.State != JobDone {
		t.Fatalf("keeper run: err %v, state %+v", err, st)
	}
	if n := keeper.sweepJobs(time.Now().Add(24 * 365 * time.Hour)); n != 0 {
		t.Fatalf("disabled sweeper still removed %d jobs", n)
	}
}

// TestSweeperStopsOnDrain is the goroutine-leak pin for the background
// collector: Drain must stop it and wait it out.
func TestSweeperStopsOnDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Model: testOracle(), JobRetention: 20 * time.Millisecond})
	if st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t", Spec: toolSpec(), Tables: kindTable("sw", 1, "tool"),
	}); err != nil || st.State != JobDone {
		t.Fatalf("run: err %v, state %+v", err, st)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitLeak(t, before)
}

// TestCancelledJobUnderFaultsNoLeak cancels a job whose model stack has
// live fault injection, retries, and hedging: whatever mix of faulted,
// hanging, and hedged attempts is in flight, cancellation must unwind
// every goroutine and free the slot.
func TestCancelledJobUnderFaultsNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	started := make(chan struct{})
	var once sync.Once
	inner := llm.Func{ModelName: "hang", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	}}
	srv := New(Config{
		Model: llm.WithFaults(inner, llm.FaultPlan{Seed: 11, Transient: 0.3}),
		Resilience: &resil.Policy{
			MaxAttempts: 4, BaseBackoff: time.Millisecond, HedgeAfter: 2 * time.Millisecond,
		},
	})
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t", Spec: toolSpec(), Tables: kindTable("cf", 2, "tool", "toy"), Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no attempt ever reached the upstream")
	}
	if _, err := srv.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	// Injected faults may fail the job before the cancel lands; either
	// terminal state is fine — the pin is that nothing leaks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := srv.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitLeak(t, before)
	if s := srv.Stats(); s.Running != 0 || s.Waiting != 0 {
		t.Fatalf("cancelled faulty job wedged the gate: running %d waiting %d", s.Running, s.Waiting)
	}
}

// TestQuarantinedJobCompletes wires Config.OnRecordError through to job
// execution: records poisoned by a permanent fault are quarantined, the
// job completes, and the wire result carries the count.
func TestQuarantinedJobCompletes(t *testing.T) {
	model := llm.Func{ModelName: "poison", Fn: func(_ context.Context, req llm.Request) (llm.Response, error) {
		if strings.Contains(req.Prompt, "gremlin") {
			return llm.Response{}, fmt.Errorf("%w: cursed value", llm.ErrPermanent)
		}
		return unit("Yes"), nil
	}}
	srv := New(Config{Model: model, OnRecordError: pipeline.OnRecordQuarantine})
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t", Spec: toolSpec(), Tables: kindTable("q", 4, "tool", "gremlin"),
	})
	if err != nil || st.State != JobDone {
		t.Fatalf("quarantine run: err %v, state %+v", err, st)
	}
	if st.Result == nil || st.Result.Quarantined != 2 {
		t.Fatalf("result quarantined = %+v, want 2", st.Result)
	}
	if got := len(st.Result.Tables["keep"]); got != 2 {
		t.Fatalf("keep has %d records, want 2 (gremlins quarantined)", got)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/pipeline"
)

// TestServerConformanceByteIdentical pins the service against the
// library: at temperature zero (the sim oracle is deterministic), a spec
// submitted through the server must produce byte-for-byte the same wire
// result as the same spec run cold through pipeline.Run with the same
// knobs — the server adds tenancy, not semantics. JobResultOf renders
// both sides identically, and encoding/json sorts map keys, so the
// comparison is stable.
func TestServerConformanceByteIdentical(t *testing.T) {
	tables := kindTable("conf", 8, "tool", "toy", "tool", "gadget")

	srv := New(Config{Model: testOracle()})
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t", Spec: toolSpec(), Tables: tables,
	})
	if err != nil || st.State != JobDone {
		t.Fatalf("server run: err %v, state %+v", err, st)
	}
	remote, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}

	// The cold local run: a fresh compile against a fresh substrate, with
	// the zero ExecConfig knobs the server defaults to.
	p, err := pipeline.Compile(toolSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), pipeline.ExecConfig{Model: testOracle()}, tables)
	if err != nil {
		t.Fatal(err)
	}
	local, err := json.Marshal(JobResultOf(res))
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(remote, local) {
		t.Fatalf("server and cold library runs diverge:\nserver: %s\nlocal:  %s", remote, local)
	}

	// Warm conformance: replaying the submission serves entirely from the
	// shared cache — zero new upstream calls — and the content (tables,
	// scalars, stage shapes) must not move. The spend counters legitimately
	// drop to zero on a warm run (they count genuine upstream calls only),
	// so the byte comparison runs on spend-normalized copies.
	before := srv.Stats().UpstreamCalls
	st2, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t2", Spec: toolSpec(), Tables: tables,
	})
	if err != nil || st2.State != JobDone {
		t.Fatalf("warm run: err %v, state %+v", err, st2)
	}
	if after := srv.Stats().UpstreamCalls; after != before {
		t.Fatalf("warm replay cost %d upstream calls, want 0", after-before)
	}
	warm, cold := stripSpend(st2.Result), stripSpend(st.Result)
	warmB, _ := json.Marshal(warm)
	coldB, _ := json.Marshal(cold)
	if !bytes.Equal(warmB, coldB) {
		t.Fatalf("warm replay content diverges from the cold run:\nwarm: %s\ncold: %s", warmB, coldB)
	}
}

// stripSpend copies a result with the genuine-upstream spend counters
// zeroed, leaving only content: tables, scalars, and stage shapes.
func stripSpend(r *JobResult) *JobResult {
	out := *r
	out.Calls, out.Tokens, out.Cost = 0, 0, 0
	out.Stages = append([]StageStatus(nil), r.Stages...)
	for i := range out.Stages {
		out.Stages[i].Calls, out.Stages[i].Tokens, out.Stages[i].Cost = 0, 0, 0
	}
	return &out
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/token"
)

// TenantsFileName is the per-tenant spend ledger persisted under
// Config.StateDir: Drain writes it, New replays it, so a tenant's budget
// caps apply to its lifetime spend rather than resetting on every
// restart. It rides next to the cache log — the two together are what
// make a drain→restart cycle accounting-transparent.
const TenantsFileName = "tenants.json"

// persistedTenants is the file's schema.
type persistedTenants struct {
	Tenants map[string]persistedSpend `json:"tenants"`
}

// persistedSpend is one tenant's lifetime upstream spend.
type persistedSpend struct {
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	Calls            int     `json:"calls"`
	Dollars          float64 `json:"dollars"`
}

// saveTenants writes every known tenant's lifetime spend — the restored
// baseline plus this process's ledger — to StateDir/tenants.json via
// tmp+rename, so a crash mid-write never leaves a torn file.
func (s *Server) saveTenants() error {
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	out := persistedTenants{Tenants: make(map[string]persistedSpend, len(tenants))}
	for _, t := range tenants {
		u := s.ledger.Usage(t.id).Add(t.restored)
		out.Tenants[t.id] = persistedSpend{
			PromptTokens:     u.PromptTokens,
			CompletionTokens: u.CompletionTokens,
			Calls:            u.Calls,
			Dollars:          s.ledger.Cost(t.id) + t.restoredCost,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.StateDir, TenantsFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadTenants restores tenant spend from StateDir/tenants.json: each
// entry gets its tenant record created up front (with its configured
// limits) and its budget seeded with the persisted spend, so caps bind
// across restarts. A missing file is a fresh deployment, not an error.
func (s *Server) loadTenants() error {
	data, err := os.ReadFile(filepath.Join(s.cfg.StateDir, TenantsFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var in persistedTenants
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("parsing %s: %w", TenantsFileName, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sp := range in.Tenants {
		if !tenantIDPattern.MatchString(id) {
			return fmt.Errorf("%s names invalid tenant %q", TenantsFileName, id)
		}
		u := token.Usage{
			PromptTokens:     sp.PromptTokens,
			CompletionTokens: sp.CompletionTokens,
			Calls:            sp.Calls,
		}
		t := s.tenantFor(id)
		t.restored, t.restoredCost = u, sp.Dollars
		t.budget.Restore(u, sp.Dollars)
	}
	return nil
}

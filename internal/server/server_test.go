package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/pipeline"
	"repro/internal/token"
	"repro/internal/workflow"
)

// testOracle is a fresh deterministic sim model with the battery's one
// predicate registered: "the kind is tool" is true exactly for the value
// "tool", with margin 1 so the oracle's noise never reaches the decision.
func testOracle() *sim.Oracle {
	o := sim.NewNamed("sim-gpt-3.5-turbo")
	o.RegisterPredicate(sim.Predicate{
		Name:  "is-tool",
		Match: func(s string) bool { return strings.Contains(s, "kind is tool") },
		Truth: func(item string) (bool, float64) { return item == "tool", 1 },
	})
	return o
}

// toolSpec filters on the predicate and tallies the keepers; the tally
// re-asks the filter's prompts, so on a shared cache it is upstream-free.
func toolSpec() pipeline.Spec {
	return pipeline.Spec{Stages: []pipeline.StageSpec{
		{Name: "keep", Kind: pipeline.KindFilter, Field: "kind", Predicate: "the kind is tool"},
		{Name: "tally", Kind: pipeline.KindCount, Field: "kind", Predicate: "the kind is tool", Strategy: "per-item"},
	}}
}

// kindTable builds a source table whose records cycle through the given
// kind values. Distinct values mean distinct unit-task prompts, so the
// upstream cost of a cold run is exactly the distinct-value count.
func kindTable(prefix string, n int, kinds ...string) map[string][]dataset.Record {
	recs := make([]dataset.Record, n)
	for i := range recs {
		recs[i] = dataset.Record{
			ID:     fmt.Sprintf("%s-%02d", prefix, i),
			Fields: []dataset.Field{{Name: "kind", Value: kinds[i%len(kinds)]}},
		}
	}
	return map[string][]dataset.Record{"source": recs}
}

// unit is a minimal billed yes-response for llm.Func test models.
func unit(text string) llm.Response {
	return llm.Response{Text: text, Model: "func",
		Usage: token.Usage{PromptTokens: 5, CompletionTokens: 1, Calls: 1}}
}

// waitLeak asserts the goroutine population returns to the baseline,
// mirroring TestStreamingCancellationNoLeak's pin.
func waitLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, s *Server, id string, want JobState) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s ended %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentTenantsLedgerBalances is the battery's core invariant
// under load: 4 tenants × 6 concurrent submissions on one engine, where
// every tenant shares one unit task ("tool") with the others and owns two
// private ones. Whatever interleaving happens, the per-tenant attribution
// must sum exactly to the global upstream ledger, every job must
// complete, and the gate must end empty. Run with -race.
func TestConcurrentTenantsLedgerBalances(t *testing.T) {
	srv := New(Config{Model: testOracle(), MaxConcurrent: 8, MaxQueue: 64, TenantBurst: 64})
	const tenants, subs = 4, 6
	var wg sync.WaitGroup
	errs := make([]error, tenants*subs)
	for ti := 0; ti < tenants; ti++ {
		id := fmt.Sprintf("tenant-%d", ti)
		tables := kindTable(id, 8, "tool", id+"-a", id+"-b")
		for k := 0; k < subs; k++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				st, err := srv.Submit(context.Background(), SubmitRequest{
					Tenant: id, Spec: toolSpec(), Tables: tables,
				})
				if err == nil && st.State != JobDone {
					err = fmt.Errorf("job ended %s: %s", st.State, st.Error)
				}
				errs[slot] = err
			}(ti*subs + k)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	ledger, upstream, ok := srv.Balanced()
	if !ok {
		t.Fatalf("ledger {calls %d, tokens %d} does not balance upstream {calls %d, tokens %d}",
			ledger.Calls, ledger.Total(), upstream.Calls, upstream.Total())
	}
	// Re-derive the balance from the public per-tenant reports: their sum
	// must also equal the upstream truth, with every tenant's jobs counted.
	var sumCalls, sumTokens int
	for ti := 0; ti < tenants; ti++ {
		rep, err := srv.Report(fmt.Sprintf("tenant-%d", ti))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Submitted != subs || rep.Completed != subs {
			t.Fatalf("%s: submitted %d completed %d, want %d/%d", rep.Tenant, rep.Submitted, rep.Completed, subs, subs)
		}
		if rep.Calls != rep.BudgetCalls || rep.Tokens != rep.BudgetTokens {
			t.Fatalf("%s: ledger {%d calls, %d tokens} disagrees with its budget {%d, %d}",
				rep.Tenant, rep.Calls, rep.Tokens, rep.BudgetCalls, rep.BudgetTokens)
		}
		sumCalls += rep.Calls
		sumTokens += rep.Tokens
	}
	if sumCalls != upstream.Calls || sumTokens != upstream.Total() {
		t.Fatalf("per-tenant reports sum to {%d calls, %d tokens}, upstream is {%d, %d}",
			sumCalls, sumTokens, upstream.Calls, upstream.Total())
	}
	// 1 shared value + 2 private per tenant: 9 unique unit tasks, ever.
	if upstream.Calls != 1+2*tenants {
		t.Fatalf("upstream calls = %d, want %d", upstream.Calls, 1+2*tenants)
	}
	st := srv.Stats()
	if st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("gate not empty after the battery: running %d waiting %d", st.Running, st.Waiting)
	}
}

// TestNoCrossTenantBudgetBleed gives tenant A a budget of exactly its own
// cold cost (3 calls) and lets tenant B spend first on disjoint prompts.
// If any of B's spend leaked into A's budget, A's run would exhaust
// mid-flight; it must complete, and each tenant's budget must equal its
// ledger line.
func TestNoCrossTenantBudgetBleed(t *testing.T) {
	srv := New(Config{Model: testOracle(), Tenants: map[string]TenantLimits{
		"capped": {Caps: TenantCaps{Calls: 3}},
	}})
	for i := 0; i < 3; i++ {
		st, err := srv.Submit(context.Background(), SubmitRequest{
			Tenant: "spender", Spec: toolSpec(),
			Tables: kindTable("sp", 6, "sp-x", "sp-y", "sp-z"),
		})
		if err != nil || st.State != JobDone {
			t.Fatalf("spender run %d: err %v, state %v", i, err, st)
		}
	}
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "capped", Spec: toolSpec(),
		Tables: kindTable("cap", 6, "tool", "cap-a", "cap-b"),
	})
	if err != nil || st.State != JobDone {
		t.Fatalf("capped tenant's exactly-affordable run failed: err %v, state %+v", err, st)
	}
	for _, id := range []string{"spender", "capped"} {
		rep, err := srv.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Calls != 3 || rep.BudgetCalls != 3 {
			t.Fatalf("%s: ledger %d calls, budget %d calls, want 3/3 (no bleed)", id, rep.Calls, rep.BudgetCalls)
		}
	}
	// The cap is now fully consumed: one more record with an unseen kind
	// needs a 4th call, and the budget must refuse it for "capped" only.
	// The refusal lands either at admission (ErrBudgetExhausted from
	// Submit) or mid-run (a failed job whose error names the budget).
	over, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "capped", Spec: toolSpec(), Tables: kindTable("cap2", 1, "cap-c"),
	})
	switch {
	case err != nil && errors.Is(err, workflow.ErrBudgetExhausted):
	case err == nil && over.State == JobFailed && strings.Contains(over.Error, "budget"):
	default:
		t.Fatalf("capped tenant ran past its call budget: err %v, state %+v", err, over)
	}
	if st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "spender", Spec: toolSpec(), Tables: kindTable("sp2", 1, "sp-w"),
	}); err != nil || st.State != JobDone {
		t.Fatalf("unlimited tenant blocked by the capped tenant's exhaustion: err %v, state %+v", err, st)
	}
}

// TestThrottleExactness pins the 429 semantics: a burst-2 bucket with a
// negligible refill admits exactly 2 of 6 submissions and refuses 4 with
// ErrRateLimited, without touching another tenant's bucket.
func TestThrottleExactness(t *testing.T) {
	srv := New(Config{Model: testOracle(), Tenants: map[string]TenantLimits{
		"free": {Rate: 1e-9, Burst: 2},
	}})
	tables := kindTable("th", 4, "tool", "toy")
	var done, throttled int
	for i := 0; i < 6; i++ {
		st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "free", Spec: toolSpec(), Tables: tables})
		switch {
		case err == nil && st.State == JobDone:
			done++
		case errors.Is(err, ErrRateLimited):
			throttled++
		default:
			t.Fatalf("submission %d: err %v, state %+v", i, err, st)
		}
	}
	if done != 2 || throttled != 4 {
		t.Fatalf("admitted %d, throttled %d; want 2 admitted, 4 throttled", done, throttled)
	}
	rep, err := srv.Report("free")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throttled != 4 || rep.Completed != 2 {
		t.Fatalf("report throttled %d completed %d, want 4/2", rep.Throttled, rep.Completed)
	}
	if st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "other", Spec: toolSpec(), Tables: tables}); err != nil || st.State != JobDone {
		t.Fatalf("default-limit tenant caught the throttled tenant's 429: err %v, state %+v", err, st)
	}
}

// TestBusyQueueFull pins the 503 path: with one slot and a one-deep
// queue, a third concurrent job is refused with ErrBusy while the queued
// one eventually runs.
func TestBusyQueueFull(t *testing.T) {
	release := make(chan struct{})
	model := llm.Func{ModelName: "slow", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-release:
			return unit("Yes"), nil
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	}}
	srv := New(Config{Model: model, MaxConcurrent: 1, MaxQueue: 1})
	tables := kindTable("busy", 1, "tool")
	spec := toolSpec()

	first, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: spec, Tables: tables, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: spec, Tables: tables, Async: true})
	if err != nil {
		t.Fatalf("queue-depth submission refused: %v", err)
	}
	if _, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: spec, Tables: tables, Async: true}); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-queue submission: err %v, want ErrBusy", err)
	}
	close(release)
	waitState(t, srv, first.ID, JobDone)
	waitState(t, srv, second.ID, JobDone)
	rep, err := srv.Report("t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedBusy != 1 || rep.Completed != 2 {
		t.Fatalf("report rejectedBusy %d completed %d, want 1/2", rep.RejectedBusy, rep.Completed)
	}
}

// TestCancelledJobNoLeak mirrors TestStreamingCancellationNoLeak for the
// service: cancelling a running job must unwind every stage goroutine and
// the job's own runner, leaving the goroutine population at its baseline
// and the slot free.
func TestCancelledJobNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	started := make(chan struct{})
	var once sync.Once
	model := llm.Func{ModelName: "hang", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	}}
	srv := New(Config{Model: model})
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t", Spec: toolSpec(), Tables: kindTable("c", 2, "tool", "toy"), Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := srv.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, srv, st.ID, JobCancelled)
	if got.Error == "" {
		t.Fatal("cancelled job carries no error")
	}
	waitLeak(t, before)
	rep, err := srv.Report("t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cancelled != 1 {
		t.Fatalf("report cancelled = %d, want 1", rep.Cancelled)
	}
	if s := srv.Stats(); s.Running != 0 || s.Waiting != 0 {
		t.Fatalf("cancelled job wedged the gate: running %d waiting %d", s.Running, s.Waiting)
	}
}

// TestFailedJobNoLeak is the same pin for a job that dies of a model
// error: failed state, error surfaced, no goroutines left, slot free.
func TestFailedJobNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	model := llm.Func{ModelName: "poison", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{}, fmt.Errorf("synthetic upstream failure")
	}}
	srv := New(Config{Model: model})
	st, err := srv.Submit(context.Background(), SubmitRequest{
		Tenant: "t", Spec: toolSpec(), Tables: kindTable("f", 2, "tool", "toy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "synthetic upstream failure") {
		t.Fatalf("job = %+v, want failed with the model's error", st)
	}
	waitLeak(t, before)
	rep, err := srv.Report("t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("report failed = %d, want 1", rep.Failed)
	}
	if s := srv.Stats(); s.Running != 0 || s.Waiting != 0 {
		t.Fatalf("failed job wedged the gate: running %d waiting %d", s.Running, s.Waiting)
	}
}

// TestWarmSecondSubmission pins the shared-substrate property the server
// exists for: an identical second submission must add zero upstream
// calls, and the tenant's report must show the free serves.
func TestWarmSecondSubmission(t *testing.T) {
	srv := New(Config{Model: testOracle()})
	tables := kindTable("warm", 8, "tool", "toy", "tool", "gadget")
	submit := func() *JobStatus {
		t.Helper()
		st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables})
		if err != nil || st.State != JobDone {
			t.Fatalf("submit: err %v, state %+v", err, st)
		}
		return st
	}
	submit()
	cold := srv.Stats().UpstreamCalls
	if cold != 3 {
		t.Fatalf("cold run cost %d upstream calls, want 3", cold)
	}
	repBefore, _ := srv.Report("t")
	submit()
	if warm := srv.Stats().UpstreamCalls; warm != cold {
		t.Fatalf("second submission grew upstream calls %d -> %d; want unchanged", cold, warm)
	}
	repAfter, err := srv.Report("t")
	if err != nil {
		t.Fatal(err)
	}
	if repAfter.FreeServed <= repBefore.FreeServed {
		t.Fatalf("free serves did not grow on the warm run: %d -> %d", repBefore.FreeServed, repAfter.FreeServed)
	}
	if repAfter.HitShare <= 0 {
		t.Fatalf("hit share = %v, want > 0 after a warm replay", repAfter.HitShare)
	}
}

// TestDrainFlushesState covers graceful shutdown end to end: drain
// refuses new work, persists the cache log, and a successor server over
// the same state directory answers the same workload upstream-free.
func TestDrainFlushesState(t *testing.T) {
	dir := t.TempDir()
	tables := kindTable("st", 6, "tool", "toy", "gadget")

	srv := New(Config{Model: testOracle(), StateDir: dir})
	if err := srv.StateError(); err != nil {
		t.Fatal(err)
	}
	if st, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables}); err != nil || st.State != JobDone {
		t.Fatalf("cold run: err %v, state %+v", err, st)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submission: err %v, want ErrDraining", err)
	}
	if _, err := os.Stat(filepath.Join(dir, workflow.CacheLogName)); err != nil {
		t.Fatalf("drain left no cache log: %v", err)
	}

	successor := New(Config{Model: testOracle(), StateDir: dir})
	if err := successor.StateError(); err != nil {
		t.Fatal(err)
	}
	if st, err := successor.Submit(context.Background(), SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: tables}); err != nil || st.State != JobDone {
		t.Fatalf("warm run: err %v, state %+v", err, st)
	}
	if calls := successor.Stats().UpstreamCalls; calls != 0 {
		t.Fatalf("successor spent %d upstream calls, want 0 (warm from the drained log)", calls)
	}
	if err := successor.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitRejectsBadInput covers the ErrBadSpec surface: hostile tenant
// IDs, uncompilable specs, and missing source tables must all refuse
// before any admission state is touched.
func TestSubmitRejectsBadInput(t *testing.T) {
	srv := New(Config{Model: testOracle()})
	cases := []struct {
		name string
		req  SubmitRequest
	}{
		{"bad tenant", SubmitRequest{Tenant: "no spaces allowed", Spec: toolSpec(), Tables: kindTable("x", 1, "tool")}},
		{"empty tenant", SubmitRequest{Spec: toolSpec(), Tables: kindTable("x", 1, "tool")}},
		{"bad spec", SubmitRequest{Tenant: "t", Spec: pipeline.Spec{}, Tables: kindTable("x", 1, "tool")}},
		{"no source table", SubmitRequest{Tenant: "t", Spec: toolSpec(), Tables: map[string][]dataset.Record{"other": nil}}},
		{"unknown dataset", SubmitRequest{Tenant: "t", Spec: toolSpec()}},
	}
	for _, tc := range cases {
		if _, err := srv.Submit(context.Background(), tc.req); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: err %v, want ErrBadSpec", tc.name, err)
		}
	}
	// Spec and tenant validation both precede admission, so nothing —
	// no job, no tenant record — may exist after only refused input.
	if s := srv.Stats(); s.Jobs != 0 || s.Tenants != 0 {
		t.Fatalf("bad input left state behind: %+v", s)
	}
}

// Package metrics implements the evaluation measures used across the
// paper's case studies: rank correlation for sorting (Kendall Tau-b),
// precision/recall/F1 for entity resolution, and accuracy for imputation
// and classification, plus cost summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// KendallTauB computes the tie-aware Kendall rank correlation coefficient
// (Tau-b) between two paired score slices. It is the metric the paper calls
// "Kendall Tau-β". The result lies in [-1, 1]; 1 means perfectly
// concordant, -1 perfectly discordant. The slices must have equal length
// of at least 2; otherwise KendallTauB returns an error.
//
// Tau-b = (C - D) / sqrt((C + D + Tx) * (C + D + Ty))
// where C/D are concordant/discordant pair counts and Tx/Ty count pairs
// tied only in x (resp. only in y).
func KendallTauB(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 observations, got %d", n)
	}
	var concordant, discordant, tiesX, tiesY int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(x[j] - x[i])
			dy := sign(y[j] - y[i])
			switch {
			case dx == 0 && dy == 0:
				// Tied in both: excluded from every term.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx == dy:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt(float64(concordant+discordant+tiesX)) *
		math.Sqrt(float64(concordant+discordant+tiesY))
	if denom == 0 {
		return 0, fmt.Errorf("metrics: degenerate input (all values tied)")
	}
	return float64(concordant-discordant) / denom, nil
}

// KendallTauRanks computes Tau-b between a ground-truth ordering and a
// predicted ordering of (a subset of) the same items. Both slices list item
// identifiers from best to worst. Items present in truth but absent from
// pred are ignored (the caller decides how to penalise omissions, e.g. by
// random insertion, as the paper does). Unknown items in pred are ignored.
func KendallTauRanks(truth, pred []string) (float64, error) {
	truthPos := make(map[string]int, len(truth))
	for i, id := range truth {
		truthPos[id] = i
	}
	var x, y []float64
	seen := make(map[string]bool, len(pred))
	for i, id := range pred {
		pos, ok := truthPos[id]
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		x = append(x, float64(pos))
		y = append(y, float64(i))
	}
	return KendallTauB(x, y)
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Confusion tallies binary classification outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction against the gold label.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP / (TP + FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions, or 0 on no data.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Total returns the number of observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns the fraction of positions where pred matches gold.
// The slices must have equal length; mismatched lengths yield an error.
func Accuracy(pred, gold []string) (float64, error) {
	if len(pred) != len(gold) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(pred), len(gold))
	}
	if len(gold) == 0 {
		return 0, fmt.Errorf("metrics: empty input")
	}
	correct := 0
	for i := range gold {
		if pred[i] == gold[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(gold)), nil
}

// SpearmanFootrule returns the normalised Spearman footrule distance
// between two orderings of the same item set: the mean absolute rank
// displacement divided by the maximum possible mean displacement. 0 means
// identical orderings, 1 maximally displaced. Items missing from either
// slice are ignored.
func SpearmanFootrule(truth, pred []string) (float64, error) {
	truthPos := make(map[string]int, len(truth))
	for i, id := range truth {
		truthPos[id] = i
	}
	var displacement, count int
	for i, id := range pred {
		if pos, ok := truthPos[id]; ok {
			d := pos - i
			if d < 0 {
				d = -d
			}
			displacement += d
			count++
		}
	}
	if count < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 shared items, got %d", count)
	}
	// Max footrule for n items is floor(n^2/2).
	maxD := count * count / 2
	return float64(displacement) / float64(maxD), nil
}

// ListDiff compares a predicted list against the expected item set and
// reports how many expected items are missing from pred and how many
// predicted items are hallucinated (absent from expected). Duplicate
// predictions beyond the first are counted as hallucinations too, matching
// how the paper audits LLM sort outputs.
type ListDiff struct {
	Missing      int
	Hallucinated int
	Duplicated   int
}

// DiffLists computes a ListDiff for pred versus expected.
func DiffLists(expected, pred []string) ListDiff {
	want := make(map[string]bool, len(expected))
	for _, id := range expected {
		want[id] = true
	}
	seen := make(map[string]bool, len(pred))
	var d ListDiff
	for _, id := range pred {
		switch {
		case !want[id]:
			d.Hallucinated++
		case seen[id]:
			d.Duplicated++
		default:
			seen[id] = true
		}
	}
	for _, id := range expected {
		if !seen[id] {
			d.Missing++
		}
	}
	return d
}

// MeanStd returns the mean and (population) standard deviation of vs.
func MeanStd(vs []float64) (mean, std float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	for _, v := range vs {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vs)))
	return mean, std
}

// Percentile returns the p-th percentile (0..100) of vs using nearest-rank.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestKendallTauBPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	tau, err := KendallTauB(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, 1) {
		t.Fatalf("tau = %f, want 1", tau)
	}
}

func TestKendallTauBReversed(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	tau, err := KendallTauB(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, -1) {
		t.Fatalf("tau = %f, want -1", tau)
	}
}

func TestKendallTauBKnownValue(t *testing.T) {
	// Hand-computed example with ties.
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 1, 3, 4}
	// Pairs: (1,2): dx=1 dy=0 -> tieY; (1,3): C; (1,4): C; (2,3): C; (2,4): C; (3,4): C.
	// C=5, D=0, Tx=0, Ty=1. tau = 5 / sqrt(6*5) = 5/sqrt(30).
	want := 5 / math.Sqrt(30)
	tau, err := KendallTauB(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, want) {
		t.Fatalf("tau = %f, want %f", tau, want)
	}
}

func TestKendallTauBErrors(t *testing.T) {
	if _, err := KendallTauB([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error on single observation")
	}
	if _, err := KendallTauB([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := KendallTauB([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Fatal("want error on fully tied input")
	}
}

func TestKendallTauBSymmetry(t *testing.T) {
	// Property: tau(x,y) == tau(y,x).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(10))
			y[i] = float64(rng.Intn(10))
		}
		a, errA := KendallTauB(x, y)
		b, errB := KendallTauB(y, x)
		if errA != nil || errB != nil {
			return (errA == nil) == (errB == nil)
		}
		return almostEq(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKendallTauBRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		tau, err := KendallTauB(x, y)
		if err != nil {
			return true
		}
		return tau >= -1-1e-9 && tau <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKendallTauRanks(t *testing.T) {
	truth := []string{"a", "b", "c", "d"}
	tau, err := KendallTauRanks(truth, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, 1) {
		t.Fatalf("tau = %f, want 1", tau)
	}
	tau, err = KendallTauRanks(truth, []string{"d", "c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, -1) {
		t.Fatalf("tau = %f, want -1", tau)
	}
	// Unknown and duplicate predictions are ignored.
	tau, err = KendallTauRanks(truth, []string{"a", "zzz", "b", "a", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, 1) {
		t.Fatalf("tau with noise = %f, want 1", tau)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // TP
	c.Observe(true, true)   // TP
	c.Observe(true, false)  // FP
	c.Observe(false, true)  // FN
	c.Observe(false, false) // TN
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if !almostEq(c.Precision(), 2.0/3.0) {
		t.Fatalf("precision = %f", c.Precision())
	}
	if !almostEq(c.Recall(), 2.0/3.0) {
		t.Fatalf("recall = %f", c.Recall())
	}
	if !almostEq(c.F1(), 2.0/3.0) {
		t.Fatalf("f1 = %f", c.F1())
	}
	if !almostEq(c.Accuracy(), 3.0/5.0) {
		t.Fatalf("accuracy = %f", c.Accuracy())
	}
	if c.Total() != 5 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion should yield zeros, not NaN")
	}
}

func TestF1BetweenPrecisionAndRecall(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		f1 := c.F1()
		lo, hi := c.Precision(), c.Recall()
		if lo > hi {
			lo, hi = hi, lo
		}
		return f1 >= lo-1e-9 && f1 <= hi+1e-9 || (c.TP == 0 && f1 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]string{"a", "b", "c"}, []string{"a", "x", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(acc, 2.0/3.0) {
		t.Fatalf("acc = %f", acc)
	}
	if _, err := Accuracy([]string{"a"}, []string{}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("want empty input error")
	}
}

func TestSpearmanFootrule(t *testing.T) {
	truth := []string{"a", "b", "c", "d"}
	d, err := SpearmanFootrule(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 0) {
		t.Fatalf("identical orderings: d = %f, want 0", d)
	}
	d, err = SpearmanFootrule(truth, []string{"d", "c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 1) {
		t.Fatalf("reversed: d = %f, want 1", d)
	}
}

func TestDiffLists(t *testing.T) {
	expected := []string{"a", "b", "c"}
	d := DiffLists(expected, []string{"a", "b", "c"})
	if d.Missing != 0 || d.Hallucinated != 0 || d.Duplicated != 0 {
		t.Fatalf("identical: %+v", d)
	}
	d = DiffLists(expected, []string{"a", "zzz", "a"})
	if d.Missing != 2 { // b and c missing
		t.Fatalf("missing = %d, want 2", d.Missing)
	}
	if d.Hallucinated != 1 {
		t.Fatalf("hallucinated = %d, want 1", d.Hallucinated)
	}
	if d.Duplicated != 1 {
		t.Fatalf("duplicated = %d, want 1", d.Duplicated)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(m, 5) {
		t.Fatalf("mean = %f", m)
	}
	if !almostEq(s, 2) {
		t.Fatalf("std = %f", s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vs, 0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := Percentile(vs, 100); got != 5 {
		t.Fatalf("p100 = %f", got)
	}
	if got := Percentile(vs, 50); got != 3 {
		t.Fatalf("p50 = %f", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %f", got)
	}
	// Input must not be mutated.
	if vs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}
